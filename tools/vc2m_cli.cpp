// vc2m — command-line front end to the allocator.
//
//   vc2m profiles
//       List the PARSEC profile library and key slowdown figures.
//
//   vc2m solutions
//       List the registered allocation strategies: key, paper name, and the
//       VM-level / hypervisor-level policy composition behind each.
//
//   vc2m generate --util U [--dist uniform|light|medium|heavy] [--vms N]
//                 [--seed S] [--platform A|B|C]
//       Emit a random §5.1 taskset as CSV (vm,period_ms,ref_wcet_ms,benchmark).
//
//   vc2m solve --file tasks.csv [--platform A|B|C] [--solution flat|ovf|
//              existing|even|baseline] [--seed S]
//       Read a taskset CSV, run the chosen solution, print the allocation
//       (VCPUs, cores, cache/BW partitions and the CAT capacity bitmasks).
//
//   vc2m simulate --file tasks.csv [--platform P] [--solution S] [--seed S]
//                 [--trace out.json|out.csv] [--report]
//                 [--faults SPEC] [--policy strict|kill|throttle|degrade]
//       Solve as above, then deploy the allocation onto the simulated
//       hypervisor and execute three hyperperiods, reporting deadline
//       misses and core utilization. --trace writes the scheduling trace
//       (Chrome/Perfetto JSON, or CSV by extension); --report prints the
//       full metrics report (per-core utilization/throttle, per-task
//       response-time ratios, allocator effort) and runs the trace
//       invariant checker over the run. --faults injects a deterministic
//       fault plan (sim/faults.h), e.g.
//       "overrun-factor=1.2,overrun-prob=0.5,jitter-ms=2,seed=7";
//       --policy selects the enforcement response to budget exhaustion.
//       A faulty run exits 0 even with deadline misses (they are the
//       experiment) unless --report's invariant checker fails.
//
//   vc2m check --trace out.json|out.csv
//       Re-import an exported trace and verify the scheduling invariants
//       (single VCPU per core, no execution while throttled, release/
//       completion matching).
//
//   vc2m perfdiff base.json current.json [--max-regress 10%]
//       Compare two BENCH_*.json reports (written by the bench binaries
//       with --json) per phase, per allocator counter and per histogram
//       p95; exits nonzero when any tracked quantity regressed by more
//       than the threshold (default 10%, accepted as "10%" or "0.1").
//
//   vc2m serve --trace SPEC [--platform P] [--seed S] [--journal FILE]
//              [--recover] [--snapshot-every N] [--deadline-us D]
//              [--shed-policy reject-newest|reject-largest|criticality]
//              [--queue-cap N] [--max-retries N] [--backoff-us B]
//              [--crash-at POINT:N] [--json report.json]
//       Run the crash-safe online admission-control service (docs/
//       service.md) over a generated request trace, e.g.
//       "poisson:requests=100000,interarrival-us=300,util=0.1..0.4".
//       --journal appends every decision to a checksummed write-ahead
//       journal (fsync'd) and snapshots full state every N commits;
//       --recover replays journal-over-snapshot and reproduces the
//       uninterrupted run bit for bit (the --json report is diffed byte
//       for byte in CI). --deadline-us enables the overload downgrade
//       ladder (full solver -> headroom probe); --shed-policy picks the
//       victim when the bounded queue overflows. --crash-at kills the
//       process at an injected crash point (before-append:SEQ,
//       after-append:SEQ, mid-snapshot:K) for the recovery tests.
//       SIGINT/SIGTERM stop the service between requests: the journal is
//       already durable, the report is written marked "interrupted", and
//       the exit code is 130. Runtime telemetry (docs/telemetry.md):
//       --timeline FILE appends a framed, checksummed metrics timeline
//       sampled every --sample-every decisions (bit-identical at any
//       --jobs and across --recover); --stats-every N renders a
//       deterministic stats snapshot to stderr every N decisions, and
//       SIGUSR1 renders one on demand; --span-ring K keeps the last K
//       request spans and dumps them to <journal>.spans on crash or
//       interrupt; --span-trace writes every request span as a Perfetto
//       trace with per-request tracks.
//
//   vc2m timeline FILE... [--diff BASE] [--csv]
//       Read vc2m-metrics-timeline/1 files (tolerantly: torn tails and
//       malformed samples warn and truncate, never crash). Prints a
//       per-file summary and per-outcome-class latency quantile tables
//       (merged across files when several are given). --diff BASE compares
//       the first FILE against BASE sample by sample and exits nonzero on
//       divergence; --csv emits one scalar row per sample.
//
//   vc2m scenario run PATH... [--jobs N] [--shard i/m] [--resume]
//                    [--json report.json] [--checkpoint ckpt.json]
//       Execute a directory (or explicit files) of declarative scenarios
//       (docs/scenarios.md) over the experiment thread pool and judge each
//       against its pinned expectations. --shard i/m runs the i-th of m
//       disjoint slices of the sorted corpus; --json writes the merged
//       vc2m-scenario-report/1 artifact, bit-identical for any --jobs.
//       --checkpoint records completed scenarios after each finishes;
//       --resume reuses them instead of re-running. Exits nonzero when any
//       scenario fails its expectations.
//   vc2m scenario validate PATH...
//       Load + strictly validate scenario files/directories; no execution.
//   vc2m scenario show FILE
//       Run one scenario and print its actual outcome as a paste-ready
//       "expect" block (for pinning a new scenario's expectations).
//   vc2m scenario merge shard.json... --json merged.json
//       Merge disjoint shard reports into one corpus report.
//
//   vc2m experiment [--platform P] [--dist D] [--vms N] [--seed S]
//                   [--tasksets N] [--step S] [--util-lo U] [--util-hi U]
//                   [--jobs N] [--solutions NAME[,NAME...]]
//                   [--faults SPEC] [--policy P] [--fault-horizon H]
//       Run the §5 schedulability sweep (the Fig. 2/3 experiment) over a
//       work-stealing thread pool and print the fraction-schedulable table
//       plus per-solution breakdown utilizations. --jobs 0 (the default)
//       uses all hardware threads; results are bit-identical for any
//       --jobs value. --solutions restricts the sweep to the named
//       strategies (any keys `vc2m solutions` lists), in column order.
//       With --faults, every schedulable allocation is also
//       replayed in the simulator for H hyperperiods under the fault plan
//       and enforcement policy, and the table gains a "+f" column per
//       solution: the fraction that stays schedulable under faults
//       (critical tasks free of misses and kills).
//
//   --profile (simulate, experiment) enables the hierarchical phase
//   profiler and prints the merged allocator phase tree (counts, total and
//   self wall seconds) after the run; experiment also prints per-worker
//   thread-pool telemetry (tasks executed, steals, idle time, peak queue
//   depth). --pool-trace FILE (experiment) additionally writes the pool
//   telemetry time series as Perfetto counter tracks, viewable in
//   https://ui.perfetto.dev alongside any scheduling trace.
//
// CSV tasks reference a PARSEC profile by name; WCET surfaces are derived
// from the profile's slowdown vectors scaled to the given reference WCET.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/solutions.h"
#include "scenario/digest.h"
#include "scenario/report.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "hw/cat.h"
#include "obs/bench_report.h"
#include "obs/explain.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/request_span.h"
#include "obs/trace_check.h"
#include "obs/trace_export.h"
#include "service/service.h"
#include "service/telemetry.h"
#include "sim/deploy.h"
#include "sim/enforcement.h"
#include "sim/faults.h"
#include "sim/simulation.h"
#include "model/platform.h"
#include "util/error.h"
#include "util/file.h"
#include "util/phase_profiler.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/thread_pool.h"
#include "workload/generator.h"
#include "workload/parsec.h"
#include "workload/taskset_io.h"

namespace {

using namespace vc2m;

struct Args {
  std::string command;
  std::string file;
  std::string trace;
  bool report = false;
  std::string platform = "A";
  std::string solution = "flat";
  std::string dist = "uniform";
  double util = 1.0;
  int vms = 1;
  std::uint64_t seed = 42;
  // experiment sweep parameters
  int tasksets = 20;
  double step = 0.1;
  double util_lo = 0.1;
  double util_hi = 2.0;
  int jobs = 0;  ///< sweep worker threads; 0 = hardware concurrency
  /// Intra-solve stripes for the min-budget surface batches; 1 = serial,
  /// 0 = hardware. Bit-identical results at any value.
  int inner_jobs = 1;
  // fault injection (simulate + experiment)
  std::string faults;            ///< sim/faults.h spec, empty = none
  std::string policy = "strict"; ///< enforcement policy name
  int fault_horizon = 1;         ///< hyperperiods per fault validation run
  std::string solutions;         ///< comma-separated sweep keys, empty = all
  // profiling / perf reports
  bool profile = false;          ///< render the phase tree after the run
  std::string pool_trace;        ///< experiment: counter-track trace file
  std::string max_regress;       ///< perfdiff threshold, "10%" or "0.1"
  std::string min_abs_sec;       ///< perfdiff noise floor for time deltas
  // explain
  std::string json_out;          ///< write the explain report here
  bool events = false;           ///< render every recorded decision event
  // scenario matrix runner
  std::string shard;             ///< "i/m" slice of the sorted corpus
  bool resume = false;           ///< reuse checkpointed records
  std::string checkpoint;        ///< checkpoint file (default from --json)
  // serve (admission-control service)
  std::string journal;                 ///< write-ahead journal path
  bool recover = false;                ///< replay journal before going live
  std::uint64_t snapshot_every = 1000; ///< commits per snapshot; 0 = off
  std::int64_t deadline_us = 0;        ///< per-request budget; 0 = off
  std::string shed_policy = "reject-newest";
  std::uint64_t queue_cap = 64;
  std::uint64_t max_retries = 3;
  std::int64_t backoff_us = 10000;
  std::string crash_at;                ///< injected crash point spec
  // serve telemetry (docs/telemetry.md) + the timeline subcommand
  std::string timeline;                ///< metrics timeline file; empty = off
  std::uint64_t sample_every = 100;    ///< decisions per timeline sample
  std::uint64_t stats_every = 0;       ///< stderr stats cadence; 0 = off
  std::uint64_t span_ring = 64;        ///< post-mortem span ring capacity
  std::string span_trace;              ///< request-span Perfetto trace file
  std::string diff;                    ///< timeline: baseline to diff against
  bool csv = false;                    ///< timeline: emit CSV rows
  std::vector<std::string> positional;  ///< perfdiff report files / explain
                                        ///< taskset / scenario verb+paths
};

[[noreturn]] void usage(int code) {
  std::cerr << "usage: vc2m profiles\n"
               "       vc2m solutions\n"
               "       vc2m generate --util U [--dist D] [--vms N] [--seed S]"
               " [--platform P]\n"
               "       vc2m solve --file tasks.csv [--platform P] "
               "[--solution S] [--seed S]\n"
               "       vc2m simulate --file tasks.csv [--platform P] "
               "[--solution S] [--seed S]\n"
               "                     [--trace out.json|out.csv] [--report] "
               "[--profile]\n"
               "                     [--faults SPEC] "
               "[--policy strict|kill|throttle|degrade]\n"
               "       vc2m explain tasks.csv [--platform P] [--solution S] "
               "[--seed S]\n"
               "                    [--json out.json] [--events]\n"
               "       vc2m check --trace out.json|out.csv\n"
               "       vc2m perfdiff base.json current.json "
               "[--max-regress 10%|0.1] [--min-abs-sec S]\n"
               "       vc2m serve --trace SPEC [--platform P] [--seed S]\n"
               "                  [--journal FILE] [--recover] "
               "[--snapshot-every N]\n"
               "                  [--deadline-us D] [--shed-policy "
               "reject-newest|reject-largest|criticality]\n"
               "                  [--queue-cap N] [--max-retries N] "
               "[--backoff-us B]\n"
               "                  [--crash-at POINT:N] [--json report.json]\n"
               "                  [--timeline FILE] [--sample-every N] "
               "[--stats-every N]\n"
               "                  [--span-ring K] [--span-trace out.json]\n"
               "       vc2m timeline FILE... [--diff BASE] [--csv]\n"
               "       vc2m scenario run PATH... [--jobs N] [--shard i/m] "
               "[--resume]\n"
               "                         [--json report.json] "
               "[--checkpoint ckpt.json]\n"
               "       vc2m scenario validate PATH...\n"
               "       vc2m scenario show FILE\n"
               "       vc2m scenario merge shard.json... --json merged.json\n"
               "       vc2m experiment [--platform P] [--dist D] [--vms N] "
               "[--seed S]\n"
               "                       [--tasksets N] [--step S] "
               "[--util-lo U] [--util-hi U]\n"
               "                       [--jobs N] [--inner-jobs N] "
               "[--solutions NAME[,NAME...]]\n"
               "                       [--faults SPEC] "
               "[--policy P] [--fault-horizon H]\n"
               "                       [--profile] [--pool-trace out.json]\n";
  std::exit(code);
}

/// Strict numeric flag parsing. The predecessors of these helpers were bare
/// std::stoi/std::stod calls: `--vms x` aborted with an uncaught
/// std::invalid_argument, and `--util 1.5x` silently parsed the prefix. A
/// flag value must now consume the whole token or the process prints
/// "<flag>: bad value '<token>'" and exits 2 (the usage exit code).
[[noreturn]] void bad_value(const std::string& flag, const std::string& s) {
  std::cerr << flag << ": bad value '" << s << "'\n";
  std::exit(2);
}

std::int64_t i64_flag(const std::string& flag, const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (s.empty() || end != s.c_str() + s.size() || errno != 0)
    bad_value(flag, s);
  return v;
}

int int_flag(const std::string& flag, const std::string& s) {
  const std::int64_t v = i64_flag(flag, s);
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max())
    bad_value(flag, s);
  return static_cast<int>(v);
}

std::uint64_t u64_flag(const std::string& flag, const std::string& s) {
  // strtoull accepts "-1" (wrapping it); reject any sign explicitly.
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0])))
    bad_value(flag, s);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno != 0) bad_value(flag, s);
  return v;
}

double double_flag(const std::string& flag, const std::string& s) {
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (s.empty() || end != s.c_str() + s.size() || errno != 0 ||
      !std::isfinite(v))
    bad_value(flag, s);
  return v;
}

Args parse(int argc, char** argv) {
  if (argc < 2) usage(2);
  Args a;
  a.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(2);
      return argv[++i];
    };
    if (arg == "--file") a.file = next();
    else if (arg == "--trace") a.trace = next();
    else if (arg == "--report") a.report = true;
    else if (arg == "--platform") a.platform = next();
    else if (arg == "--solution") a.solution = next();
    else if (arg == "--dist") a.dist = next();
    else if (arg == "--util") a.util = double_flag(arg, next());
    else if (arg == "--vms") a.vms = int_flag(arg, next());
    else if (arg == "--seed") a.seed = u64_flag(arg, next());
    else if (arg == "--tasksets") a.tasksets = int_flag(arg, next());
    else if (arg == "--step") a.step = double_flag(arg, next());
    else if (arg == "--util-lo") a.util_lo = double_flag(arg, next());
    else if (arg == "--util-hi") a.util_hi = double_flag(arg, next());
    else if (arg == "--jobs") a.jobs = int_flag(arg, next());
    else if (arg == "--inner-jobs") a.inner_jobs = int_flag(arg, next());
    else if (arg == "--faults") a.faults = next();
    else if (arg == "--policy") a.policy = next();
    else if (arg == "--fault-horizon") a.fault_horizon = int_flag(arg, next());
    else if (arg == "--solutions") a.solutions = next();
    else if (arg == "--profile") a.profile = true;
    else if (arg == "--pool-trace") a.pool_trace = next();
    else if (arg == "--max-regress") a.max_regress = next();
    else if (arg == "--min-abs-sec") a.min_abs_sec = next();
    else if (arg == "--json") a.json_out = next();
    else if (arg == "--events") a.events = true;
    else if (arg == "--shard") a.shard = next();
    else if (arg == "--resume") a.resume = true;
    else if (arg == "--checkpoint") a.checkpoint = next();
    else if (arg == "--journal") a.journal = next();
    else if (arg == "--recover") a.recover = true;
    else if (arg == "--snapshot-every") a.snapshot_every = u64_flag(arg, next());
    else if (arg == "--deadline-us") a.deadline_us = i64_flag(arg, next());
    else if (arg == "--shed-policy") a.shed_policy = next();
    else if (arg == "--queue-cap") a.queue_cap = u64_flag(arg, next());
    else if (arg == "--max-retries") a.max_retries = u64_flag(arg, next());
    else if (arg == "--backoff-us") a.backoff_us = i64_flag(arg, next());
    else if (arg == "--crash-at") a.crash_at = next();
    else if (arg == "--timeline") a.timeline = next();
    else if (arg == "--sample-every") a.sample_every = u64_flag(arg, next());
    else if (arg == "--stats-every") a.stats_every = u64_flag(arg, next());
    else if (arg == "--span-ring") a.span_ring = u64_flag(arg, next());
    else if (arg == "--span-trace") a.span_trace = next();
    else if (arg == "--diff") a.diff = next();
    else if (arg == "--csv") a.csv = true;
    else if (!arg.empty() && arg[0] != '-') a.positional.push_back(arg);
    else usage(2);
  }
  return a;
}

/// Parse a perfdiff threshold: "10%" means 10 percent, a bare number is a
/// fraction ("0.1" == "10%").
double regress_of(const std::string& s) {
  std::string num = s;
  double scale = 1.0;
  if (!num.empty() && num.back() == '%') {
    num.pop_back();
    scale = 0.01;
  }
  std::size_t used = 0;
  double v = 0;
  try {
    v = std::stod(num, &used);
  } catch (const std::exception&) {
    used = 0;
  }
  if (num.empty() || used != num.size() || v < 0)
    throw util::Error("--max-regress: bad threshold '" + s +
                      "' (want e.g. 10% or 0.1)");
  return v * scale;
}

model::PlatformSpec platform_of(const std::string& name) {
  if (name == "A" || name == "a") return model::PlatformSpec::A();
  if (name == "B" || name == "b") return model::PlatformSpec::B();
  if (name == "C" || name == "c") return model::PlatformSpec::C();
  throw util::Error("unknown platform '" + name + "' (A, B, or C)");
}

std::string known_solution_keys() {
  std::string keys;
  for (const auto* s : core::StrategyRegistry::instance().all()) {
    if (!keys.empty()) keys += '|';
    keys += s->key;
  }
  return keys;
}

const core::Strategy& strategy_of(const std::string& name) {
  if (const auto* s = core::StrategyRegistry::instance().find(name))
    return *s;
  throw util::Error("unknown solution '" + name + "' (" +
                    known_solution_keys() + ")");
}

std::vector<std::string> solutions_of(const std::string& list) {
  std::vector<std::string> keys;
  std::string item;
  std::istringstream is(list);
  while (std::getline(is, item, ',')) {
    if (item.empty())
      throw util::Error("--solutions: empty name in '" + list + "'");
    strategy_of(item);  // validate eagerly for a friendly error
    keys.push_back(item);
  }
  if (keys.empty()) throw util::Error("--solutions: no names given");
  return keys;
}

sim::EnforcementConfig enforcement_of(const std::string& name) {
  const auto p = sim::enforcement_policy_from_string(name);
  if (!p)
    throw util::Error("unknown policy '" + name +
                      "' (strict|kill|throttle|degrade)");
  sim::EnforcementConfig ec;
  ec.policy = *p;
  return ec;
}

workload::UtilDist dist_of(const std::string& name) {
  if (name == "uniform") return workload::UtilDist::kUniform;
  if (name == "light") return workload::UtilDist::kBimodalLight;
  if (name == "medium") return workload::UtilDist::kBimodalMedium;
  if (name == "heavy") return workload::UtilDist::kBimodalHeavy;
  throw util::Error("unknown distribution '" + name + "'");
}

/// Render the merged phase tree captured by the profiler (--profile).
void print_profile() {
  std::cout << '\n';
  obs::write_profile(std::cout, obs::merged_profile());
}

/// Per-worker thread-pool telemetry table (--profile on experiment).
void print_pool(const util::PoolTelemetry& t) {
  if (t.workers.empty()) return;
  util::Table table({"worker", "executed", "steals", "idle(s)", "max queue"});
  table.set_precision(3);
  for (std::size_t w = 0; w < t.workers.size(); ++w)
    table.add_row(static_cast<int>(w), t.workers[w].executed,
                  t.workers[w].steals, t.workers[w].idle_ns * 1e-9,
                  t.workers[w].max_queue);
  table.add_row(std::string("total"), t.total_executed(), t.total_steals(),
                t.total_idle_ns() * 1e-9, t.max_queue_depth());
  std::cout << '\n';
  table.print(std::cout, "thread-pool telemetry");
}

int cmd_profiles() {
  const auto grid = model::PlatformSpec::A().grid;
  util::Table table({"benchmark", "mem share", "s(Cmin,Bmin)", "s(C/4,B/4)",
                     "s_max"});
  table.set_precision(2);
  for (const auto& p : workload::parsec_suite())
    table.add_row(p.name, p.mem_frac,
                  p.slowdown(grid.c_min, grid.b_min, grid),
                  p.slowdown(grid.c_max / 4.0, grid.b_max / 4.0, grid),
                  p.max_slowdown(grid));
  table.print(std::cout, "PARSEC profile library (Platform A grid)");
  return 0;
}

int cmd_solutions() {
  auto all = core::StrategyRegistry::instance().all();
  // Deterministic listing regardless of registration order (late-registered
  // downstream strategies would otherwise shuffle the table).
  std::sort(all.begin(), all.end(),
            [](const core::Strategy* x, const core::Strategy* y) {
              return x->key < y->key;
            });
  util::Table table({"key", "solution", "description"});
  for (const auto* s : all)
    table.add_row(s->key, s->display,
                  s->description.empty()
                      ? std::string(s->vm->name()) + " + " +
                            std::string(s->hv->name())
                      : s->description);
  table.print(std::cout, "registered allocation strategies");
  return 0;
}

int cmd_generate(const Args& a) {
  workload::GeneratorConfig cfg;
  cfg.grid = platform_of(a.platform).grid;
  cfg.target_ref_utilization = a.util;
  cfg.dist = dist_of(a.dist);
  cfg.num_vms = a.vms;
  util::Rng rng(a.seed);
  workload::write_taskset_csv(std::cout,
                              workload::generate_taskset(cfg, rng));
  return 0;
}

int cmd_solve(const Args& a) {
  if (a.file.empty()) usage(2);
  const auto platform = platform_of(a.platform);
  const auto tasks = workload::read_taskset_csv(a.file, platform.grid);
  std::cout << "Loaded " << tasks.size() << " tasks (reference utilization "
            << model::total_reference_utilization(tasks) << ") onto "
            << platform.name << "\n";

  util::Rng rng(a.seed);
  const auto& strat = strategy_of(a.solution);
  const auto res = core::solve(strat, tasks, platform, {}, rng);
  if (!res.schedulable) {
    std::cout << "NOT schedulable under " << strat.display << "\n";
    return 1;
  }

  std::cout << "Schedulable on " << res.mapping.cores_used
            << " core(s) with " << strat.display
            << " (" << res.seconds << " s analysis)\n\n";
  util::Table table({"core", "cache", "bw", "CBM", "VCPUs (Pi/Theta ms)"});
  hw::MsrFile msr(platform.cores);
  hw::Cat cat(msr, platform.total_cache(), 16, platform.grid.c_min);
  std::vector<unsigned> ways(platform.cores, 0);
  for (unsigned k = 0; k < res.mapping.cores_used; ++k)
    ways[k] = res.mapping.cache[k];
  cat.program_disjoint_plan(ways);

  for (unsigned k = 0; k < res.mapping.cores_used; ++k) {
    std::ostringstream vcpus;
    for (const auto vi : res.mapping.vcpus_on_core[k]) {
      const auto& v = res.vcpus[vi];
      char buf[48];
      std::snprintf(buf, sizeof buf, " [%.0f/%.2f]", v.period.to_ms(),
                    v.budget.at(res.mapping.cache[k], res.mapping.bw[k])
                        .to_ms());
      vcpus << buf;
    }
    char cbm[24];
    std::snprintf(cbm, sizeof cbm, "0x%05llx",
                  static_cast<unsigned long long>(cat.effective_mask(k)));
    table.add_row(static_cast<int>(k), static_cast<int>(res.mapping.cache[k]),
                  static_cast<int>(res.mapping.bw[k]), cbm, vcpus.str());
  }
  table.print(std::cout);
  return 0;
}

int cmd_explain(const Args& a) {
  std::string file = a.file;
  if (file.empty() && !a.positional.empty()) file = a.positional.front();
  if (file.empty()) usage(2);
  if (!a.json_out.empty())
    util::ensure_output_path_writable(a.json_out, "explain report");
  const auto platform = platform_of(a.platform);
  const auto tasks = workload::read_taskset_csv(file, platform.grid);
  const auto& strat = strategy_of(a.solution);
  util::Rng rng(a.seed);
  // Single-solve path: stripe the min-budget surface search over the
  // hardware threads (bit-identical results at any inner-jobs value).
  core::SolveConfig scfg;
  scfg.inner_jobs = 0;
  const auto report =
      obs::explain_solve(strat, tasks, platform, scfg, rng);
  obs::render_explain(std::cout, report, a.events);
  if (!a.json_out.empty()) {
    obs::write_explain_report_file(a.json_out, report);
    // Round-trip through the strict reader so a report we cannot re-read
    // never lands on disk unnoticed.
    (void)obs::read_explain_report_file(a.json_out);
    std::cout << "wrote " << a.json_out << "\n";
  }
  // Both verdicts are successful explanations; only usage/IO errors fail.
  return 0;
}

int cmd_simulate(const Args& a) {
  if (a.file.empty()) usage(2);
  // Probe output destinations before the (potentially long) run: a missing
  // directory or unwritable file must fail now, not after the simulation.
  if (!a.trace.empty())
    util::ensure_output_path_writable(a.trace, "trace file");
  if (a.profile) util::PhaseProfiler::set_enabled(true);
  const auto platform = platform_of(a.platform);
  const auto tasks = workload::read_taskset_csv(a.file, platform.grid);
  util::Rng rng(a.seed);
  const auto& strat = strategy_of(a.solution);
  const auto res = core::solve(strat, tasks, platform, {}, rng);
  if (!res.schedulable) {
    std::cout << "NOT schedulable under " << strat.display
              << " — nothing to simulate\n";
    return 1;
  }

  sim::DeployConfig dc;
  dc.release_sync = strat.vm->release_sync();
  dc.capture_trace = !a.trace.empty() || a.report;
  auto sim_cfg = sim::deploy(tasks, res.vcpus, res.mapping, platform, dc);
  sim_cfg.enforcement = enforcement_of(a.policy);
  const bool faulty = !a.faults.empty();
  if (faulty) sim_cfg.faults = sim::parse_fault_spec(a.faults);
  sim::Simulation s(sim_cfg);

  obs::MetricsRegistry registry;
  obs::MetricsRecorder recorder(registry);
  if (a.report) s.set_observer(&recorder);

  const auto horizon = model::hyperperiod(tasks) * 3;
  s.run(horizon);
  const auto st = s.stats();

  if (!a.trace.empty()) {
    obs::write_trace_file(a.trace, s.trace().events(),
                          obs::TraceMeta::from_config(sim_cfg));
    std::cout << "Wrote " << s.trace().events().size() << " trace events to "
              << a.trace << "\n";
  }

  if (a.report) {
    recorder.finalize(st, horizon);
    obs::record_alloc_counters(registry, res.counters);
    obs::write_report(std::cout, sim_cfg, st, registry, horizon,
                      &res.counters);
    const auto check = obs::check_trace(
        s.trace().events(),
        obs::TraceCheckConfig::from_sim(sim_cfg, horizon));
    std::cout << "Trace invariants: " << check.summary() << "\n";
    for (const auto& v : check.violations)
      std::cout << "  at " << v.when.to_ms() << " ms: " << v.what << "\n";
    if (!check.ok()) return 1;
  } else {
    std::cout << "Simulated " << horizon.to_ms() << " ms on "
              << res.mapping.cores_used << " core(s)\n";
    util::Table table({"metric", "value"});
    table.add_row("jobs released", static_cast<int>(st.jobs_released));
    table.add_row("jobs completed", static_cast<int>(st.jobs_completed));
    table.add_row("deadline misses", static_cast<int>(st.deadline_misses));
    table.add_row("VCPU context switches",
                  static_cast<int>(st.vcpu_context_switches));
    if (faulty) {
      table.add_row("faults injected", static_cast<int>(st.faults_injected));
      table.add_row("jobs killed", static_cast<int>(st.jobs_killed));
      table.add_row("jobs deferred", static_cast<int>(st.jobs_deferred));
      table.add_row("task suspensions",
                    static_cast<int>(st.task_suspensions));
      table.add_row("VCPU budget overruns",
                    static_cast<int>(st.vcpu_budget_overruns));
    }
    for (std::size_t k = 0; k < st.core_busy_fraction.size(); ++k)
      table.add_row("core " + std::to_string(k) + " busy",
                    st.core_busy_fraction[k]);
    table.print(std::cout);
  }
  if (a.profile) print_profile();
  // Under injected faults, misses/kills are the experiment, not a failure;
  // only a trace-invariant violation (checked under --report) is an error.
  if (faulty) return 0;
  return st.deadline_misses == 0 ? 0 : 1;
}

int cmd_experiment(const Args& a) {
  if (a.jobs < 0)
    throw util::Error("--jobs must be >= 0 (0 = hardware concurrency)");
  if (a.inner_jobs < 0)
    throw util::Error("--inner-jobs must be >= 0 (0 = hardware concurrency)");
  if (!a.pool_trace.empty())
    util::ensure_output_path_writable(a.pool_trace, "pool trace");
  if (a.profile) util::PhaseProfiler::set_enabled(true);
  core::ExperimentConfig cfg;
  cfg.platform = platform_of(a.platform);
  cfg.dist = dist_of(a.dist);
  cfg.util_lo = a.util_lo;
  cfg.util_hi = a.util_hi;
  cfg.util_step = a.step;
  cfg.tasksets_per_point = a.tasksets;
  cfg.num_vms = a.vms;
  cfg.seed = a.seed;
  cfg.jobs = a.jobs;
  cfg.solve.inner_jobs = a.inner_jobs;
  if (!a.solutions.empty()) cfg.solutions = solutions_of(a.solutions);
  if (!a.faults.empty()) {
    if (a.fault_horizon <= 0)
      throw util::Error("--fault-horizon must be >= 1");
    cfg.validate = sim::make_fault_validator(
        cfg.platform, sim::parse_fault_spec(a.faults),
        enforcement_of(a.policy), a.fault_horizon);
    std::cout << "Fault validation: " << a.faults << ", policy " << a.policy
              << ", " << a.fault_horizon
              << " hyperperiod(s) — '+f' columns show the fraction still "
                 "schedulable under faults\n";
  }

  std::cout << "Schedulability sweep on " << cfg.platform.name << ", dist "
            << to_string(cfg.dist) << ", util " << cfg.util_lo << ".."
            << cfg.util_hi << " step " << cfg.util_step << ", "
            << cfg.tasksets_per_point << " tasksets/point, seed " << cfg.seed
            << ", jobs "
            << (cfg.jobs == 0
                    ? util::ThreadPool::hardware_workers()
                    : static_cast<unsigned>(cfg.jobs))
            << "\n";
  const auto result = core::run_schedulability_experiment(
      cfg, [](int done, int total) {
        std::cerr << "\r" << done << "/" << total
                  << (done == total ? "\n" : "") << std::flush;
      });

  result.to_table().print(std::cout, "fraction of schedulable tasksets");
  util::Table summary({"solution", "breakdown util"});
  summary.set_precision(2);
  for (std::size_t si = 0; si < cfg.solutions.size(); ++si)
    summary.add_row(strategy_of(cfg.solutions[si]).display,
                    result.breakdown_utilization(si));
  std::cout << '\n';
  summary.print(std::cout);

  if (a.profile) {
    print_profile();
    print_pool(result.pool);
  }
  if (!a.pool_trace.empty()) {
    obs::TraceMeta meta;
    obs::CounterTrack executed{"pool/executed", {}};
    obs::CounterTrack steals{"pool/steals", {}};
    obs::CounterTrack pending{"pool/pending", {}};
    for (const auto& s : result.pool_samples) {
      executed.samples.emplace_back(s.at, static_cast<double>(s.executed));
      steals.samples.emplace_back(s.at, static_cast<double>(s.steals));
      pending.samples.emplace_back(s.at, static_cast<double>(s.pending));
    }
    meta.counters = {std::move(executed), std::move(steals),
                     std::move(pending)};
    obs::write_trace_file(a.pool_trace, {}, meta);
    std::cout << "Wrote " << result.pool_samples.size()
              << " pool telemetry samples to " << a.pool_trace << "\n";
  }
  return 0;
}

int cmd_perfdiff(const Args& a) {
  if (a.positional.size() != 2) {
    std::cerr << "perfdiff wants exactly two report files "
                 "(base.json current.json)\n";
    usage(2);
  }
  const auto base = obs::read_bench_report_file(a.positional[0]);
  const auto current = obs::read_bench_report_file(a.positional[1]);
  obs::PerfDiffOptions opt;
  if (!a.max_regress.empty()) opt.max_regress = regress_of(a.max_regress);
  if (!a.min_abs_sec.empty()) {
    // Raising the floor lets wall-clock gates ignore micro-phases
    // (sub-millisecond bookkeeping spans) whose run-to-run jitter exceeds
    // any sane relative threshold.
    opt.min_abs_sec = double_flag("--min-abs-sec", a.min_abs_sec.c_str());
    if (opt.min_abs_sec < 0)
      throw util::Error("--min-abs-sec must be >= 0");
  }
  const auto diff = obs::diff_reports(base, current, opt);
  std::cout << "perfdiff " << a.positional[0] << " (" << base.git_rev
            << ") -> " << a.positional[1] << " (" << current.git_rev
            << "), threshold " << opt.max_regress * 100 << "%\n\n";
  obs::write_perfdiff(std::cout, diff);
  if (diff.has_regression()) {
    std::cout << "\nFAIL: performance regression above "
              << opt.max_regress * 100 << "%\n";
    return 1;
  }
  std::cout << "\nOK: no regression above " << opt.max_regress * 100
            << "%\n";
  return 0;
}

/// Parse "--shard i/m" into (index, count); (0, 1) when unset.
std::pair<int, int> shard_of(const std::string& s) {
  if (s.empty()) return {0, 1};
  const auto slash = s.find('/');
  bool ok = slash != std::string::npos;
  long index = -1, count = 0;
  if (ok) {
    const std::string is = s.substr(0, slash), ms = s.substr(slash + 1);
    char* end = nullptr;
    errno = 0;
    index = std::strtol(is.c_str(), &end, 10);
    ok = !is.empty() && end == is.c_str() + is.size() && errno == 0;
    if (ok) {
      errno = 0;
      count = std::strtol(ms.c_str(), &end, 10);
      ok = !ms.empty() && end == ms.c_str() + ms.size() && errno == 0;
    }
  }
  if (!ok || count < 1 || index < 0 || index >= count)
    throw util::Error("--shard: want INDEX/COUNT with 0 <= INDEX < COUNT, "
                      "got '" + s + "'");
  return {static_cast<int>(index), static_cast<int>(count)};
}

/// SIGINT/SIGTERM land here; the service and scenario runner poll the flag
/// between requests/scenarios, flush whatever is pending (the journal is
/// already durable, checkpoints are rewritten per scenario), write the
/// partial report marked "interrupted", and exit 130.
std::atomic<bool> g_interrupted{false};

void install_signal_handlers() {
  struct sigaction sa{};
  sa.sa_handler = [](int) { g_interrupted.store(true); };
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

constexpr int kInterruptedExit = 130;  // 128 + SIGINT, the shell convention

/// SIGUSR1 asks the service for a live stats snapshot: the handler only
/// latches the flag, the service renders at the next decision boundary.
std::atomic<bool> g_stats_requested{false};

void install_stats_signal() {
  struct sigaction sa{};
  sa.sa_handler = [](int) { g_stats_requested.store(true); };
  sigemptyset(&sa.sa_mask);
  ::sigaction(SIGUSR1, &sa, nullptr);
}

int cmd_serve(const Args& a) {
  if (a.trace.empty()) usage(2);
  if (!a.json_out.empty())
    util::ensure_output_path_writable(a.json_out, "serve report");
  if (!a.timeline.empty())
    util::ensure_output_path_writable(a.timeline, "metrics timeline");
  if (!a.span_trace.empty())
    util::ensure_output_path_writable(a.span_trace, "span trace");
  if (!a.timeline.empty() && a.sample_every == 0)
    throw util::Error("--sample-every must be >= 1 when --timeline is set");

  service::ServiceConfig cfg;
  cfg.platform = platform_of(a.platform);
  cfg.platform_name = a.platform;
  // One admission decision at a time: use intra-decision parallelism
  // (0 = hardware threads; decisions and digests are bit-identical).
  cfg.vm_cfg.inner_jobs = 0;
  cfg.trace = service::parse_trace_spec(a.trace);
  cfg.seed = a.seed;
  if (a.deadline_us < 0) throw util::Error("--deadline-us must be >= 0");
  cfg.deadline = util::Time::us(a.deadline_us);
  if (!service::shed_policy_from_string(a.shed_policy, cfg.shed))
    throw util::Error("unknown shed policy '" + a.shed_policy +
                      "' (reject-newest|reject-largest|criticality)");
  if (a.queue_cap < 1) throw util::Error("--queue-cap must be >= 1");
  cfg.queue_cap = static_cast<std::size_t>(a.queue_cap);
  cfg.max_retries = static_cast<unsigned>(a.max_retries);
  if (a.backoff_us < 0) throw util::Error("--backoff-us must be >= 0");
  cfg.backoff = util::Time::us(a.backoff_us);
  cfg.snapshot_every = a.snapshot_every;
  cfg.journal_path = a.journal;
  if (a.recover && a.journal.empty())
    throw util::Error("--recover needs --journal FILE");
  cfg.recover = a.recover;
  if (!a.crash_at.empty()) cfg.crash = service::parse_crash_spec(a.crash_at);
  cfg.timeline_path = a.timeline;
  cfg.sample_every = a.sample_every;
  cfg.stats_every = a.stats_every;
  cfg.span_ring = static_cast<std::size_t>(a.span_ring);
  cfg.collect_spans = !a.span_trace.empty();
  install_signal_handlers();
  install_stats_signal();
  cfg.cancel = &g_interrupted;
  cfg.stats_signal = &g_stats_requested;

  const auto res = service::run_service(cfg);
  for (const auto& w : res.warnings) std::cerr << "warning: " << w << "\n";
  const auto& r = res.report;

  std::cout << "served " << r.requests << " request(s) (" << r.trace
            << ", seed " << r.seed << ") on platform " << r.platform << "\n";
  util::Table table({"metric", "value"});
  table.add_row("admitted", r.admitted);
  table.add_row("rejected", r.rejected);
  table.add_row("probe rejected", r.probe_rejected);
  table.add_row("removed", r.removed);
  table.add_row("resized", r.resized);
  table.add_row("resize rejected", r.resize_rejected);
  table.add_row("not present", r.not_present);
  table.add_row("shed", r.shed);
  table.add_row("timed out", r.timed_out);
  table.add_row("deferred", r.deferred);
  table.add_row("downgrades", r.downgrades);
  table.add_row("queue max depth", r.queue_max_depth);
  table.add_row("backpressure", r.backpressure);
  table.add_row("commits", r.commits);
  table.add_row("snapshots", r.snapshots);
  auto add_latency = [&](const char* label, const obs::HistogramSummary& h) {
    if (h.count == 0) return;
    table.add_row(std::string("latency ") + label + " p50 (us)", h.p50);
    table.add_row(std::string("latency ") + label + " p95 (us)", h.p95);
    table.add_row(std::string("latency ") + label + " max (us)", h.max);
  };
  add_latency("admitted", r.latency_admitted_us);
  add_latency("rejected", r.latency_rejected_us);
  add_latency("deferred", r.latency_deferred_us);
  add_latency("shed", r.latency_shed_us);
  table.print(std::cout);
  std::cout << "final state: " << r.vms << " VM(s), " << r.vcpus
            << " VCPU(s) on " << r.cores_used << " core(s)\n"
            << "digest: " << r.digest << "\n";

  if (!a.span_trace.empty()) {
    obs::write_span_trace_file(a.span_trace, res.spans);
    // Round-trip and run the span invariant checker: a trace we cannot
    // re-read, or whose spans violate the lifecycle rules, fails loudly.
    const auto back = obs::read_span_trace_file(a.span_trace);
    const auto chk = obs::check_request_spans(back);
    std::cout << "wrote " << res.spans.size() << " request span(s) to "
              << a.span_trace << " (" << chk.summary() << ")\n";
    for (const auto& v : chk.violations)
      std::cout << "  seq " << v.seq << " attempt " << v.attempt << ": "
                << v.what << "\n";
    if (!chk.ok()) return 1;
  }
  if (!a.json_out.empty()) {
    service::write_serve_report_file(a.json_out, r);
    // Round-trip through the strict reader so a report we cannot re-read
    // never lands on disk unnoticed; fields a newer writer added are
    // surfaced, not fatal.
    std::vector<std::string> notes;
    (void)service::read_serve_report_file(a.json_out, &notes);
    for (const auto& n : notes) std::cerr << "note: " << n << "\n";
    std::cout << "wrote " << a.json_out << "\n";
  }
  if (res.interrupted) {
    std::cerr << "interrupted: served " << (r.arrivals + r.retries)
              << " of " << r.requests << " request(s); report marked "
                 "interrupted\n";
    return kInterruptedExit;
  }
  return 0;
}

/// "scenarios/" and "scenarios" must label the same corpus: reports from a
/// sharded and an unsharded invocation are diffed byte-for-byte.
std::string corpus_label(const std::vector<std::string>& paths) {
  std::string label;
  for (const auto& p : paths) {
    std::string trimmed = p;
    while (trimmed.size() > 1 && trimmed.back() == '/') trimmed.pop_back();
    if (!label.empty()) label += ',';
    label += trimmed;
  }
  return label;
}

int cmd_scenario_run(const Args& a,
                     const std::vector<std::string>& paths) {
  if (paths.empty()) usage(2);
  scenario::MatrixConfig cfg;
  for (const auto& p : paths) {
    auto files = scenario::discover_scenario_files(p);
    cfg.files.insert(cfg.files.end(), files.begin(), files.end());
  }
  std::sort(cfg.files.begin(), cfg.files.end());
  cfg.corpus = corpus_label(paths);
  cfg.jobs = a.jobs;
  std::tie(cfg.shard_index, cfg.shard_count) = shard_of(a.shard);
  cfg.checkpoint = a.checkpoint;
  if (cfg.checkpoint.empty() && a.resume)
    throw util::Error("--resume needs --checkpoint FILE (the file records "
                      "completed scenarios)");
  cfg.resume = a.resume;

  // Fail fast on unwritable outputs before any scenario runs.
  if (!a.json_out.empty())
    util::ensure_output_path_writable(a.json_out, "scenario report");
  if (!cfg.checkpoint.empty())
    util::ensure_output_path_writable(cfg.checkpoint, "scenario checkpoint");

  install_signal_handlers();
  cfg.cancel = &g_interrupted;

  const auto result = scenario::run_matrix(
      cfg, [](int done, int total, const std::string& name) {
        std::cerr << "\r[" << done << "/" << total << "] " << name
                  << std::string(24, ' ') << (done == total ? "\n" : "")
                  << std::flush;
      });

  for (const auto& w : result.warnings)
    std::cerr << "warning: " << w << "\n";

  util::Table table({"scenario", "verdict", "run", "result"});
  for (const auto& r : result.report.records)
    table.add_row(r.name,
                  r.schedulable ? std::string("schedulable")
                                : std::string("unschedulable"),
                  r.simulated ? std::string("solve+sim")
                              : std::string("solve"),
                  r.passed ? std::string("pass") : std::string("FAIL"));
  table.print(std::cout, "scenario corpus: " + result.report.corpus);
  for (const auto& r : result.report.records)
    for (const auto& f : r.failures)
      std::cout << "  " << r.name << ": " << f << "\n";
  std::cout << result.report.passed() << "/" << result.report.records.size()
            << " scenarios passed";
  if (cfg.shard_count > 1)
    std::cout << " (shard " << cfg.shard_index << "/" << cfg.shard_count
              << ")";
  if (result.resumed > 0)
    std::cout << ", " << result.resumed << " resumed from checkpoint";
  std::cout << "\n";

  if (!a.json_out.empty()) {
    scenario::write_scenario_report_file(a.json_out, result.report);
    // Round-trip through the strict reader: a report we cannot re-read
    // must never land on disk unnoticed; fields a newer writer added are
    // surfaced, not fatal.
    std::vector<std::string> notes;
    (void)scenario::read_scenario_report_file(a.json_out, &notes);
    for (const auto& n : notes) std::cerr << "note: " << n << "\n";
    std::cout << "wrote " << a.json_out << "\n";
  }
  if (result.interrupted) {
    std::cerr << "interrupted: " << result.report.records.size()
              << " scenario(s) finished; report marked interrupted\n";
    return kInterruptedExit;
  }
  return result.report.all_passed() ? 0 : 1;
}

int cmd_scenario_validate(const std::vector<std::string>& paths) {
  if (paths.empty()) usage(2);
  int checked = 0;
  for (const auto& p : paths) {
    for (const auto& file : scenario::discover_scenario_files(p)) {
      const auto sc = scenario::load_scenario_file(file);
      std::cout << file << ": OK (" << sc.name << ")\n";
      ++checked;
    }
  }
  std::cout << checked << " scenario file(s) valid\n";
  return 0;
}

int cmd_scenario_show(const std::vector<std::string>& paths) {
  if (paths.size() != 1) usage(2);
  const auto sc = scenario::load_scenario_file(paths.front());
  const auto r = scenario::run_scenario(sc);
  std::cout << "scenario: " << r.name << "\n"
            << "verdict:  "
            << (r.schedulable ? "schedulable" : "unschedulable") << "\n"
            << "digest:   " << r.digest << "\n";
  if (r.simulated)
    std::cout << "simulate: " << r.jobs_released << " released, "
              << r.deadline_misses << " misses, " << r.faults_injected
              << " faults, " << r.trace_violations
              << " trace violation(s) over " << r.trace_events
              << " events\n";
  for (const auto& c : r.rejection_constraints)
    std::cout << "rejected: " << c << "\n";
  std::cout << (r.passed ? "expectations: pass"
                         : "expectations: FAIL") << "\n";
  for (const auto& f : r.failures) std::cout << "  " << f << "\n";
  // Paste-ready pinning block for scenario authors.
  std::cout << "\n\"expect\": {\n  \"verdict\": \""
            << (r.schedulable ? "schedulable" : "unschedulable") << "\",\n"
            << "  \"digest\": \"" << r.digest << "\"";
  if (r.simulated)
    std::cout << ",\n  \"trace_clean\": "
              << (r.trace_violations == 0 ? "true" : "false");
  std::cout << "\n}\n";
  return 0;
}

int cmd_scenario_merge(const Args& a,
                       const std::vector<std::string>& paths) {
  if (paths.size() < 2 || a.json_out.empty()) {
    std::cerr << "scenario merge wants two or more shard reports and "
                 "--json OUT\n";
    usage(2);
  }
  std::vector<scenario::ScenarioReport> shards;
  std::vector<std::string> notes;
  for (const auto& p : paths)
    shards.push_back(scenario::read_scenario_report_file(p, &notes));
  for (const auto& n : notes) std::cerr << "note: " << n << "\n";
  const auto merged = scenario::merge_scenario_reports(shards);
  scenario::write_scenario_report_file(a.json_out, merged);
  std::cout << "merged " << shards.size() << " shard report(s): "
            << merged.passed() << "/" << merged.records.size()
            << " passed -> " << a.json_out << "\n";
  return 0;
}

int cmd_scenario(const Args& a) {
  if (a.positional.empty()) usage(2);
  const std::string verb = a.positional.front();
  const std::vector<std::string> paths(a.positional.begin() + 1,
                                       a.positional.end());
  if (verb == "run") return cmd_scenario_run(a, paths);
  if (verb == "validate") return cmd_scenario_validate(paths);
  if (verb == "show") return cmd_scenario_show(paths);
  if (verb == "merge") return cmd_scenario_merge(a, paths);
  std::cerr << "unknown scenario verb '" << verb << "'\n";
  usage(2);
}

/// Tolerant scan wrapper for `vc2m timeline`: a missing file or a file
/// that is not a timeline is fatal; torn tails and malformed samples are
/// stderr warnings with the valid prefix kept, matching the service's own
/// reopen behaviour.
service::TimelineScan scan_timeline_or_die(const std::string& path) {
  service::TimelineScan s = service::scan_timeline(path);
  if (!s.exists) throw util::Error("cannot open timeline '" + path + "'");
  if (!s.header_ok)
    throw util::Error("'" + path + "' is not a " +
                      std::string(service::kTimelineSchema) + " file");
  for (const auto& w : s.warnings)
    std::cerr << "warning: " << path << ": " << w << "\n";
  if (s.torn)
    std::cerr << "warning: " << path << ": torn tail past " << s.valid_bytes
              << " valid byte(s) — ignored\n";
  return s;
}

int cmd_timeline(const Args& a) {
  if (a.positional.empty()) usage(2);

  if (!a.diff.empty()) {
    if (a.positional.size() != 1) {
      std::cerr << "timeline --diff wants exactly one FILE and one BASE\n";
      usage(2);
    }
    const auto x = scan_timeline_or_die(a.positional.front());
    const auto y = scan_timeline_or_die(a.diff);
    if (x.config_digest != y.config_digest || x.every != y.every) {
      std::cout << "DIFF: headers disagree (config " << x.config_digest
                << " every " << x.every << " vs config " << y.config_digest
                << " every " << y.every << ")\n";
      return 1;
    }
    const std::size_t n = std::min(x.raw.size(), y.raw.size());
    for (std::size_t i = 0; i < n; ++i)
      if (x.raw[i] != y.raw[i]) {
        std::cout << "DIFF: sample " << i << " diverges\n  "
                  << a.positional.front() << ": " << x.raw[i].substr(0, 120)
                  << "...\n  " << a.diff << ": " << y.raw[i].substr(0, 120)
                  << "...\n";
        return 1;
      }
    if (x.raw.size() != y.raw.size()) {
      std::cout << "DIFF: sample counts disagree (" << x.raw.size() << " vs "
                << y.raw.size() << ")\n";
      return 1;
    }
    std::cout << "OK: " << x.raw.size()
              << " sample(s), byte-identical payloads\n";
    return 0;
  }

  if (a.csv) {
    std::cout << "file,sample,served,vt_ns,queue_depth,retry_depth,"
                 "est_ns_per_task,arrivals,admitted,rejected,probe_rejected,"
                 "deferred,timed_out,shed,downgrades,backpressure,commits,"
                 "dbf_evals,budget_evals,admission_tests,"
                 "lat_admitted_count,lat_rejected_count,lat_deferred_count,"
                 "lat_shed_count\n";
    for (const auto& path : a.positional) {
      const auto s = scan_timeline_or_die(path);
      for (const auto& ms : s.samples)
        std::cout << path << ',' << ms.index << ',' << ms.served << ','
                  << ms.vt_ns << ',' << ms.queue_depth << ','
                  << ms.retry_depth << ',' << ms.est_ns_per_task << ','
                  << ms.arrivals << ',' << ms.admitted << ',' << ms.rejected
                  << ',' << ms.probe_rejected << ',' << ms.deferred << ','
                  << ms.timed_out << ',' << ms.shed << ',' << ms.downgrades
                  << ',' << ms.backpressure << ',' << ms.commits << ','
                  << ms.dbf_evals << ',' << ms.budget_evals << ','
                  << ms.admission_tests << ',' << ms.lat_admitted.count()
                  << ',' << ms.lat_rejected.count() << ','
                  << ms.lat_deferred.count() << ',' << ms.lat_shed.count()
                  << '\n';
    }
    return 0;
  }

  // Summary mode: per-file overview, then per-outcome-class latency
  // quantiles from the final samples (merged across files).
  util::LogHistogram m_adm, m_rej, m_def, m_shed;
  std::uint64_t served = 0;
  for (const auto& path : a.positional) {
    const auto s = scan_timeline_or_die(path);
    std::cout << path << ": " << s.samples.size() << " sample(s), every "
              << s.every << " decision(s), config " << s.config_digest
              << "\n";
    if (s.samples.empty()) continue;
    const auto& last = s.samples.back();
    char vt[40];
    std::snprintf(vt, sizeof vt, "%.3f",
                  static_cast<double>(last.vt_ns) / 1e6);
    std::cout << "  last: served=" << last.served << " vt_ms=" << vt
              << " queue=" << last.queue_depth << " retry="
              << last.retry_depth << " admitted=" << last.admitted
              << " rejected=" << last.rejected << " shed=" << last.shed
              << " commits=" << last.commits << "\n";
    served += last.served;
    m_adm.merge(last.lat_admitted);
    m_rej.merge(last.lat_rejected);
    m_def.merge(last.lat_deferred);
    m_shed.merge(last.lat_shed);
  }
  util::Table table({"class", "count", "p50", "p90", "p95", "p99", "max"});
  table.set_precision(1);
  auto add = [&](const char* label, const util::LogHistogram& h) {
    if (h.empty()) return;
    const auto sum = obs::HistogramSummary::of(h);
    table.add_row(std::string(label), sum.count, sum.p50, sum.p90, sum.p95,
                  sum.p99, sum.max);
  };
  add("admitted", m_adm);
  add("rejected", m_rej);
  add("deferred", m_def);
  add("shed", m_shed);
  std::cout << '\n';
  table.print(std::cout, "latency quantiles (us), " +
                             std::to_string(served) + " decision(s)");
  return 0;
}

int cmd_check(const Args& a) {
  if (a.trace.empty()) usage(2);
  const auto events = obs::read_trace_file(a.trace);
  const auto res = obs::check_trace(events);
  std::cout << a.trace << ": " << res.summary() << "\n";
  for (const auto& v : res.violations)
    std::cout << "  at " << v.when.to_ms() << " ms: " << v.what << "\n";
  if (res.total_violations > res.violations.size())
    std::cout << "  ... and "
              << res.total_violations - res.violations.size() << " more\n";
  return res.ok() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const Args a = parse(argc, argv);
    if (a.command == "profiles") return cmd_profiles();
    if (a.command == "solutions") return cmd_solutions();
    if (a.command == "generate") return cmd_generate(a);
    if (a.command == "solve") return cmd_solve(a);
    if (a.command == "explain") return cmd_explain(a);
    if (a.command == "simulate") return cmd_simulate(a);
    if (a.command == "check") return cmd_check(a);
    if (a.command == "experiment") return cmd_experiment(a);
    if (a.command == "serve") return cmd_serve(a);
    if (a.command == "timeline") return cmd_timeline(a);
    if (a.command == "scenario") return cmd_scenario(a);
    if (a.command == "perfdiff") return cmd_perfdiff(a);
    usage(2);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
