// VM-count sensitivity (extension, not in the paper).
//
// The paper's evaluation does not fix the number of VMs per taskset. This
// bench repeats the Fig. 2(a) sweep with the tasks split round-robin over
// 1, 2, and 4 VMs. Flattening is insensitive by construction (one VCPU per
// task either way). The overhead-free solution *improves* with more VMs at
// high utilization: each VM brings its own min(#tasks, M) VCPUs, so more
// VMs mean more, smaller servers — finer-grained packing that approaches
// flattening's granularity (at the runtime cost of more servers and
// context switches, which is exactly the trade-off §3.1 describes).
#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "model/platform.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vc2m;
  const auto opt = bench::Options::parse(argc, argv);

  std::vector<core::ExperimentResult> results;
  util::AllocCounterScope effort;  // aggregate effort over all VM splits
  core::ExperimentConfig last_cfg;
  for (const int vms : {1, 2, 4}) {
    core::ExperimentConfig cfg;
    cfg.platform = model::PlatformSpec::A();
    cfg.util_lo = 0.8;
    cfg.util_step = opt.step * 2;
    cfg.tasksets_per_point = opt.tasksets;
    cfg.num_vms = vms;
    cfg.seed = opt.seed;
    cfg.jobs = opt.jobs;
    cfg.solve.inner_jobs = opt.inner_jobs;
    cfg.solutions = {"flat", "ovf", "baseline"};
    const std::string label = "vms=" + std::to_string(vms);
    results.push_back(core::run_schedulability_experiment(
        cfg, [&](int d, int t) { bench::progress(label, d, t); }));
    last_cfg = cfg;
  }

  std::cout << "\nVM-count sensitivity on Platform A (fractions "
               "schedulable)\n\n";
  util::Table table({"util", "flat 1VM", "flat 2VM", "flat 4VM", "ovf 1VM",
                     "ovf 2VM", "ovf 4VM"});
  table.set_precision(3);
  for (std::size_t pi = 0; pi < results[0].points.size(); ++pi) {
    table.add_row(results[0].points[pi].target_util,
                  results[0].points[pi].per_solution[0].fraction(),
                  results[1].points[pi].per_solution[0].fraction(),
                  results[2].points[pi].per_solution[0].fraction(),
                  results[0].points[pi].per_solution[1].fraction(),
                  results[1].points[pi].per_solution[1].fraction(),
                  results[2].points[pi].per_solution[1].fraction());
  }
  table.print(std::cout);
  table.write_csv(opt.csv_path("vm_count.csv"));
  std::cout << "\nFlattening columns coincide (identical VCPUs regardless "
               "of VM split); the\noverhead-free columns *rise* with VM "
               "count at high utilization — more VMs\nmean more, smaller "
               "servers, i.e. packing granularity closer to flattening's\n"
               "(paid for at runtime with more servers and context "
               "switches).\n";

  if (!opt.json.empty()) {
    auto report = bench::experiment_report("vm_count", opt, last_cfg,
                                           results.back(), effort.counters());
    report.config["num_vms"] = "1,2,4";
    util::LogHistogram merged = results[0].solve_seconds;
    for (std::size_t i = 1; i < results.size(); ++i)
      merged.merge(results[i].solve_seconds);
    report.histograms["solve_seconds"] = obs::HistogramSummary::of(merged);
    bench::maybe_write_report(opt, report);
  }
  return 0;
}
