// Figure 4 — average analysis running time of the five solutions.
//
// Re-runs the Figure 2(a) sweep and reports the mean wall-clock time each
// solution spends per taskset as a function of taskset reference
// utilization. The paper's observations to reproduce: the overhead-free
// analyses stay fast and flat (< 3 s there, far less here), while the
// existing-CSA variants are orders of magnitude slower and grow with
// utilization (they binary-search a PRM budget at every (c,b) grid point
// for every VCPU).
#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "model/platform.h"
#include "util/instrument.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vc2m;
  const auto opt = bench::Options::parse(argc, argv);

  core::ExperimentConfig cfg;
  cfg.platform = model::PlatformSpec::A();
  cfg.dist = workload::UtilDist::kUniform;
  cfg.util_step = opt.step;
  cfg.tasksets_per_point = opt.tasksets;
  cfg.seed = opt.seed;
  cfg.jobs = opt.jobs;
  cfg.solve.inner_jobs = opt.inner_jobs;
  util::AllocCounterScope effort;  // aggregate allocator work over the sweep
  const auto result = core::run_schedulability_experiment(
      cfg, [&](int d, int t) { bench::progress("fig4", d, t); });

  std::cout << "\nFigure 4: average running time (seconds per taskset) on "
               "Platform A\n\n";
  util::Table table({"util", "Heur(flat)", "Heur(ovf-free)", "Heur(existing)",
                     "Evenly-part", "Baseline"});
  table.set_precision(6);
  for (const auto& pt : result.points)
    table.add_row(pt.target_util, pt.per_solution[0].avg_seconds(),
                  pt.per_solution[1].avg_seconds(),
                  pt.per_solution[2].avg_seconds(),
                  pt.per_solution[3].avg_seconds(),
                  pt.per_solution[4].avg_seconds());
  table.print(std::cout);
  table.write_csv(opt.csv_path("fig4_running_time.csv"));

  // Aggregate comparison (the paper quotes averages over the sweep).
  double ovf_max = 0, existing_max = 0;
  for (const auto& pt : result.points) {
    ovf_max = std::max(ovf_max, pt.per_solution[1].avg_seconds());
    existing_max = std::max(existing_max, pt.per_solution[2].avg_seconds());
  }
  std::cout << "\nPeak average runtime — Heuristic (overhead-free CSA): "
            << ovf_max << " s; Heuristic (existing CSA): " << existing_max
            << " s (" << (ovf_max > 0 ? existing_max / ovf_max : 0)
            << "x slower).\nPaper: overhead-free < 3 s always; existing CSA "
               "up to 25 s and growing with utilization.\n";

  // Where the time went: aggregate allocator effort across the whole sweep
  // (all solutions, all tasksets).
  const auto& c = effort.counters();
  util::Table et({"allocator effort (sweep total)", "value"});
  et.add_row("k-means runs", c.kmeans_runs);
  et.add_row("k-means iterations", c.kmeans_iterations);
  et.add_row("candidate packings", c.candidate_packings);
  et.add_row("admission tests", c.admission_tests);
  et.add_row("admission passed", c.admission_passed);
  et.add_row("dbf evaluations", c.dbf_evaluations);
  et.add_row("min-budget searches", c.budget_evaluations);
  et.add_row("budget memo hits", c.budget_cache_hits);
  et.add_row("core-load memo hits", c.load_cache_hits);
  et.add_row("partition grants", c.partition_grants);
  et.add_row("vcpu migrations", c.vcpu_migrations);
  et.add_row("VM-level alloc seconds", c.vm_alloc_seconds);
  et.add_row("HV-level alloc seconds", c.hv_alloc_seconds);
  std::cout << '\n';
  et.print(std::cout);

  bench::maybe_write_report(
      opt, bench::experiment_report("fig4_runtime", opt, cfg, result, c));
  return 0;
}
