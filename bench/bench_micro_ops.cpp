// Micro-benchmarks of the analysis and allocation primitives
// (google-benchmark). Complements Figure 4: shows *why* the existing CSA
// is orders of magnitude slower — a single PRM minimum-budget search costs
// as much as an entire overhead-free VCPU computation over the whole grid.
//
// `--smoke` (used by scripts/check.sh) skips the benchmarks and instead
// runs one existing-CSA solve under an AllocCounterScope, asserting the
// memoization machinery (AnalysisContext + CoreLoad) is actually engaged:
// budget searches happened, dbf work was done, and repeated per-core
// Σ Θ/Π probes were served from the CoreLoad caches.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/dbf.h"
#include "analysis/prm.h"
#include "analysis/schedulability.h"
#include "analysis/theorems.h"
#include "core/kmeans.h"
#include "core/solutions.h"
#include "model/platform.h"
#include "obs/bench_report.h"
#include "util/instrument.h"
#include "util/log_histogram.h"
#include "util/phase_profiler.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace vc2m;
using util::Time;

model::Taskset make_taskset(double util, std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.grid = model::PlatformSpec::A().grid;
  cfg.target_ref_utilization = util;
  util::Rng rng(seed);
  return workload::generate_taskset(cfg, rng);
}

void BM_DbfEvaluation(benchmark::State& state) {
  std::vector<analysis::PTask> tasks;
  for (int i = 1; i <= 8; ++i)
    tasks.push_back({Time::ms(100 * (1 << (i % 4))), Time::ms(i)});
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::dbf(tasks, Time::ms(800)));
}
BENCHMARK(BM_DbfEvaluation);

void BM_DbfDemandAtSoA(benchmark::State& state) {
  // The branchless SoA demand sweep over a merged checkpoint set — the
  // inner loop of the fast min-budget kernel. Compare per-point cost with
  // BM_DbfEvaluation (one AoS dbf() call per point).
  std::vector<analysis::PTask> tasks;
  for (int i = 1; i <= 8; ++i)
    tasks.push_back({Time::ms(100 * (1 << (i % 4))), Time::ms(i)});
  analysis::TaskArrays soa;
  soa.assign(tasks);
  std::vector<Time> points;
  analysis::merge_checkpoints(soa.period, soa.hyperperiod(), points);
  std::vector<Time> demand(points.size());
  for (auto _ : state) {
    analysis::demand_at(soa.period, soa.wcet, points, demand);
    benchmark::DoNotOptimize(demand.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(points.size()));
}
BENCHMARK(BM_DbfDemandAtSoA);

void BM_MergeCheckpoints(benchmark::State& state) {
  // Building the sorted + deduplicated checkpoint stream once per
  // (periods, Π) — amortized over every grid cell by the checkpoint cache.
  std::vector<analysis::PTask> tasks;
  for (int i = 1; i <= static_cast<int>(state.range(0)); ++i)
    tasks.push_back({Time::ms(100 * (1 << (i % 4))), Time::ms(3 * i)});
  analysis::TaskArrays soa;
  soa.assign(tasks);
  std::vector<Time> points;
  for (auto _ : state) {
    analysis::merge_checkpoints(soa.period, soa.hyperperiod(), points);
    benchmark::DoNotOptimize(points.data());
  }
}
BENCHMARK(BM_MergeCheckpoints)->Arg(2)->Arg(8)->Arg(24);

void BM_PrmSbf(benchmark::State& state) {
  const analysis::Prm prm{Time::ms(100), Time::ms(37)};
  for (auto _ : state)
    benchmark::DoNotOptimize(prm.sbf(Time::ms(731)));
}
BENCHMARK(BM_PrmSbf);

void BM_PrmMinBudget(benchmark::State& state) {
  // One existing-CSA budget search — this runs once per (c,b) grid point
  // per VCPU (380 times per VCPU on Platform A).
  std::vector<analysis::PTask> tasks;
  for (int i = 1; i <= static_cast<int>(state.range(0)); ++i)
    tasks.push_back({Time::ms(100 * (1 << (i % 4))), Time::ms(3 * i)});
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::min_budget_edf(tasks, Time::ms(100)));
}
BENCHMARK(BM_PrmMinBudget)->Arg(2)->Arg(8)->Arg(24);

void BM_PrmMinBudgetOnCurve(benchmark::State& state) {
  // The fast-path equivalent of BM_PrmMinBudget: checkpoints and demand
  // precomputed once (as the checkpoint cache + Θ-independent demand sweep
  // make them per cell), leaving only the sbf binary search per call.
  std::vector<analysis::PTask> tasks;
  for (int i = 1; i <= static_cast<int>(state.range(0)); ++i)
    tasks.push_back({Time::ms(100 * (1 << (i % 4))), Time::ms(3 * i)});
  analysis::TaskArrays soa;
  soa.assign(tasks);
  const Time pi = Time::ms(100);
  const Time horizon = util::lcm(soa.hyperperiod(), pi);
  std::vector<Time> points;
  analysis::merge_checkpoints(soa.period, horizon, points);
  std::vector<Time> demand(points.size());
  analysis::demand_at(soa.period, soa.wcet, points, demand);
  const analysis::DemandCurve curve{points, demand};
  for (auto _ : state)
    benchmark::DoNotOptimize(
        analysis::min_budget_on_curve(curve, soa.total_util, pi));
}
BENCHMARK(BM_PrmMinBudgetOnCurve)->Arg(2)->Arg(8)->Arg(24);

void BM_RegulatedVcpu(benchmark::State& state) {
  // One overhead-free (Theorem 2) VCPU computation over the FULL grid.
  const auto tasks = make_taskset(1.0, 11);
  std::vector<std::size_t> idx(tasks.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (auto _ : state)
    benchmark::DoNotOptimize(analysis::regulated_vcpu(tasks, idx));
}
BENCHMARK(BM_RegulatedVcpu);

void BM_KMeansSlowdownVectors(benchmark::State& state) {
  const auto tasks = make_taskset(2.0, 12);
  std::vector<std::vector<double>> points;
  for (const auto& t : tasks) points.push_back(t.slowdown().flat());
  util::Rng rng(3);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::kmeans(points, 4, rng));
}
BENCHMARK(BM_KMeansSlowdownVectors);

void BM_SolveEndToEnd(benchmark::State& state) {
  const auto solution = static_cast<core::Solution>(state.range(0));
  const auto tasks = make_taskset(1.0, 13);
  const auto platform = model::PlatformSpec::A();
  util::Rng rng(5);
  for (auto _ : state)
    benchmark::DoNotOptimize(core::solve(solution, tasks, platform, {}, rng));
  state.SetLabel(core::to_string(solution));
}
BENCHMARK(BM_SolveEndToEnd)
    ->Arg(static_cast<int>(core::Solution::kHeuristicFlattening))
    ->Arg(static_cast<int>(core::Solution::kHeuristicOverheadFree))
    ->Arg(static_cast<int>(core::Solution::kHeuristicExistingCsa))
    ->Arg(static_cast<int>(core::Solution::kEvenPartitionOverheadFree))
    ->Arg(static_cast<int>(core::Solution::kBaselineExistingCsa))
    ->Unit(benchmark::kMillisecond);

/// --smoke: one existing-CSA solve; fail (exit 1) unless the memoization
/// counters show the shared-context machinery at work. With --json PATH,
/// additionally profile the solve, time a dbf-evaluation loop into a
/// LogHistogram and emit a BenchReport.
int run_smoke(const std::string& json_path) {
  if (!json_path.empty()) util::PhaseProfiler::set_enabled(true);
  const auto tasks = make_taskset(1.0, 13);
  const auto platform = model::PlatformSpec::A();
  util::Rng rng(5);
  util::AllocCounterScope scope;
  const auto res = core::solve("existing", tasks, platform, {}, rng);
  const auto& c = scope.counters();
  std::cout << "smoke: existing-CSA solve " << res.seconds << " s, "
            << "schedulable=" << res.schedulable << "\n"
            << "  dbf evaluations:     " << c.dbf_evaluations << "\n"
            << "  min-budget searches: " << c.budget_evaluations << "\n"
            << "  budget memo hits:    " << c.budget_cache_hits << "\n"
            << "  core-load memo hits: " << c.load_cache_hits << "\n";
  bool ok = true;
  auto expect = [&](bool cond, const char* what) {
    if (!cond) {
      std::cout << "smoke FAIL: " << what << "\n";
      ok = false;
    }
  };
  expect(c.budget_evaluations > 0,
         "no min-budget searches — existing CSA did not run");
  expect(c.dbf_evaluations > 0, "no dbf evaluations");
  expect(c.load_cache_hits > 0,
         "no core-load memo hits — CoreLoad caching is disengaged");
  if (ok) std::cout << "smoke OK: memoization engaged\n";

  if (ok && !json_path.empty()) {
    // Per-call dbf latency distribution: cheap, high-volume, exactly what
    // the log-bucketed histogram is for.
    std::vector<analysis::PTask> ptasks;
    for (int i = 1; i <= 8; ++i)
      ptasks.push_back({Time::ms(100 * (1 << (i % 4))), Time::ms(i)});
    util::LogHistogram dbf_seconds;
    for (int i = 0; i < 2000; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(analysis::dbf(ptasks, Time::ms(800)));
      dbf_seconds.add(std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
    }

    obs::BenchReport r;
    r.name = "micro_ops_smoke";
    r.git_rev = obs::build_git_rev();
    r.config["solution"] = "existing";
    r.config["platform"] = "A";
    r.config["target_util"] = "1.0";
    r.config["seed"] = "13";
    obs::set_counters(r, c);
    r.phases = obs::merged_profile();
    r.histograms["solve_seconds"] = [&] {
      util::LogHistogram h;
      h.add(res.seconds);
      return obs::HistogramSummary::of(h);
    }();
    r.histograms["dbf_eval_seconds"] = obs::HistogramSummary::of(dbf_seconds);
    obs::write_bench_report_file(json_path, r);
    std::cout << "bench report: " << json_path << "\n";
  }
  return ok ? 0 : 1;
}

}  // namespace

// BENCHMARK_MAIN(), plus the --smoke escape hatch for scripts/check.sh.
int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    }
  }
  if (smoke) return run_smoke(json_path);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
