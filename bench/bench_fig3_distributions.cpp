// Figure 3 — schedulability under bimodal utilization distributions on
// Platform A.
//
// Same sweep as Figure 2(a) but with task utilizations drawn from the
// bimodal-light, bimodal-medium, and bimodal-heavy distributions of §5.1
// (U[0.1,0.4] vs U[0.5,0.9] with probabilities 8/9, 6/9, 4/9 respectively).
// The paper's observation: vC2M's advantage is consistent across all
// distributions.
#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "model/platform.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vc2m;
  const auto opt = bench::Options::parse(argc, argv);

  const workload::UtilDist dists[] = {workload::UtilDist::kBimodalLight,
                                      workload::UtilDist::kBimodalMedium,
                                      workload::UtilDist::kBimodalHeavy};
  const char* csv_names[] = {"fig3a_bimodal_light.csv",
                             "fig3b_bimodal_medium.csv",
                             "fig3c_bimodal_heavy.csv"};

  std::vector<core::ExperimentResult> results;
  util::AllocCounterScope effort;  // aggregate effort over all 3 dists
  core::ExperimentConfig last_cfg;
  for (int d = 0; d < 3; ++d) {
    core::ExperimentConfig cfg;
    cfg.platform = model::PlatformSpec::A();
    cfg.dist = dists[d];
    cfg.util_step = opt.step;
    cfg.tasksets_per_point = opt.tasksets;
    cfg.seed = opt.seed;
    cfg.jobs = opt.jobs;
    cfg.solve.inner_jobs = opt.inner_jobs;
    const std::string label = to_string(dists[d]);
    results.push_back(core::run_schedulability_experiment(
        cfg, [&](int done, int total) { bench::progress(label, done, total); }));
    last_cfg = cfg;

    std::cout << "\nFigure 3(" << static_cast<char>('a' + d) << "): "
              << to_string(dists[d])
              << " on Platform A, fraction of schedulable tasksets\n\n";
    results.back().to_table().print(std::cout);
    results.back().to_table().write_csv(opt.csv_path(csv_names[d]));
  }

  std::cout << "\nBreakdown utilizations per distribution:\n\n";
  util::Table summary({"distribution", "Heur(flat)", "Heur(ovf-free)",
                       "Heur(existing)", "Evenly-part", "Baseline"});
  summary.set_precision(2);
  for (int d = 0; d < 3; ++d)
    summary.add_row(to_string(dists[d]), results[d].breakdown_utilization(0),
                    results[d].breakdown_utilization(1),
                    results[d].breakdown_utilization(2),
                    results[d].breakdown_utilization(3),
                    results[d].breakdown_utilization(4));
  summary.print(std::cout);
  std::cout << "\nPaper: the vC2M ordering is consistent across all "
               "bimodal parameters (Fig. 3).\nCSV series written to "
            << opt.csv_dir << "/.\n";

  if (!opt.json.empty()) {
    auto report = bench::experiment_report("fig3_distributions", opt, last_cfg,
                                           results.back(), effort.counters());
    report.config["distributions"] = "bimodal-light,bimodal-medium,bimodal-heavy";
    util::LogHistogram merged = results[0].solve_seconds;
    for (std::size_t d = 1; d < results.size(); ++d)
      merged.merge(results[d].solve_seconds);
    report.histograms["solve_seconds"] = obs::HistogramSummary::of(merged);
    bench::maybe_write_report(opt, report);
  }
  return 0;
}
