// Figure 2 — schedulability on Platforms A, B, and C (uniform utilization).
//
// Reproduces the paper's headline experiment: for each platform, tasksets
// with reference utilization 0.1..2.0 (step 0.05), 50 tasksets per point,
// task utilizations uniform in [0.1, 0.4], harmonic periods in [100, 1100]
// ms, WCETs from the PARSEC surfaces; each taskset analyzed by all five
// solutions. Prints the fraction-schedulable series per platform (one CSV
// each) plus the breakdown-utilization summary the paper quotes (baseline
// 0.5 vs vC2M >= 1.3 => 2.6x on Platform A).
#include <iostream>

#include "bench_common.h"
#include "core/experiment.h"
#include "model/platform.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vc2m;
  const auto opt = bench::Options::parse(argc, argv);

  const model::PlatformSpec platforms[] = {model::PlatformSpec::A(),
                                           model::PlatformSpec::B(),
                                           model::PlatformSpec::C()};
  const char* csv_names[] = {"fig2a_platform_A.csv", "fig2b_platform_B.csv",
                             "fig2c_platform_C.csv"};

  std::vector<core::ExperimentResult> results;
  util::AllocCounterScope effort;  // aggregate effort over all 3 platforms
  core::ExperimentConfig last_cfg;
  for (int p = 0; p < 3; ++p) {
    core::ExperimentConfig cfg;
    cfg.platform = platforms[p];
    cfg.dist = workload::UtilDist::kUniform;
    cfg.util_step = opt.step;
    cfg.tasksets_per_point = opt.tasksets;
    cfg.seed = opt.seed;
    cfg.jobs = opt.jobs;
    cfg.solve.inner_jobs = opt.inner_jobs;
    const std::string label = platforms[p].name;
    results.push_back(core::run_schedulability_experiment(
        cfg, [&](int d, int t) { bench::progress(label, d, t); }));
    last_cfg = cfg;

    std::cout << "\nFigure 2(" << static_cast<char>('a' + p) << "): "
              << platforms[p].name << " (" << platforms[p].cores << " cores, "
              << platforms[p].total_cache()
              << " partitions), fraction of schedulable tasksets\n\n";
    results.back().to_table().print(std::cout);
    results.back().to_table().write_csv(opt.csv_path(csv_names[p]));
  }

  std::cout << "\nBreakdown utilization (largest utilization with every "
               "taskset schedulable):\n\n";
  util::Table summary({"platform", "Heur(flat)", "Heur(ovf-free)",
                       "Heur(existing)", "Evenly-part", "Baseline",
                       "vC2M/baseline"});
  summary.set_precision(2);
  for (int p = 0; p < 3; ++p) {
    const auto& r = results[p];
    const double flat = r.breakdown_utilization(0);
    const double base = r.breakdown_utilization(4);
    summary.add_row(platforms[p].name, flat, r.breakdown_utilization(1),
                    r.breakdown_utilization(2), r.breakdown_utilization(3),
                    base, base > 0 ? flat / base : 0.0);
  }
  summary.print(std::cout);
  std::cout << "\nPaper (Platform A): baseline breaks at 0.5, vC2M at >= "
               "1.3 — a 2.6x workload increase.\nCSV series written to "
            << opt.csv_dir << "/.\n";

  if (!opt.json.empty()) {
    auto report = bench::experiment_report("fig2_platforms", opt, last_cfg,
                                           results.back(), effort.counters());
    report.config["platform"] = "A,B,C";
    util::LogHistogram merged = results[0].solve_seconds;
    for (std::size_t p = 1; p < results.size(); ++p)
      merged.merge(results[p].solve_seconds);
    report.histograms["solve_seconds"] = obs::HistogramSummary::of(merged);
    bench::maybe_write_report(opt, report);
  }
  return 0;
}
