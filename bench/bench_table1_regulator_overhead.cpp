// Table 1 — memory-bandwidth regulator overhead (µs).
//
// The paper instruments its Xen prototype and reports, over many events:
//     Throttle:           min 0.33   avg 0.37   max 1.15    (µs)
//     BW budget replenish: min 8.81  avg 52.22  max 108.65  (µs)
//
// This bench instruments the simulator's implementations of the same two
// handlers with the host's steady clock: the BW-enforcer handler (runs on
// every PC-overflow interrupt: mark the core throttled, clear the overflow
// status, de-schedule) and the BW refiller (runs every regulation period:
// re-preset every core's counter, clear status, replenish budgets).
// Absolute numbers reflect this host, not Xen; the shape to reproduce is
// refill ≫ throttle (the refiller touches every core) and both far below
// the millisecond regulation period.
#include <iostream>

#include "bench_common.h"
#include "sim/simulation.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace vc2m;
  using util::Time;
  (void)bench::Options::parse(argc, argv);

  // Eight cores, each running a streaming task that overruns its bandwidth
  // budget every regulation period — maximal regulator activity.
  sim::SimConfig cfg;
  cfg.num_cores = 8;
  cfg.cache_partitions = 20;
  cfg.cache_alloc.assign(8, 10);
  cfg.bw_alloc.assign(8, 2);
  cfg.bw_regulation = true;
  cfg.regulation_period = Time::ms(1);
  cfg.requests_per_partition = 1000;
  for (unsigned k = 0; k < 8; ++k) {
    sim::SimVcpuSpec v;
    v.period = Time::ms(100);
    v.budget = Time::ms(100);
    v.core = k;
    cfg.vcpus.push_back(v);
    sim::SimTaskSpec t;
    t.period = Time::ms(100);
    t.cpu_work = Time::ms(10);
    t.mem_work_ref = Time::ms(40);
    t.mem_requests_ref = 500'000;  // 10k req/ms vs 2k/ms budget
    t.vcpu = k;
    cfg.tasks.push_back(t);
  }

  sim::Simulation simulation(cfg);
  sim::HostProbe probe;
  simulation.set_probe(&probe);
  simulation.run(Time::sec(5));

  std::cout << "Table 1: memory bandwidth regulator's overhead (µs)\n"
            << "         (" << probe.throttle.count() << " throttle events, "
            << probe.refill.count() << " refills over 5 s simulated on 8 "
               "cores)\n\n";
  util::Table table({"handler", "min", "avg", "max", "p99"});
  table.add_row("Throttle (BW enforcer)", probe.throttle.min(),
                probe.throttle.mean(), probe.throttle.max(),
                probe.throttle.percentile(0.99));
  table.add_row("BW budget replenishment", probe.refill.min(),
                probe.refill.mean(), probe.refill.max(),
                probe.refill.percentile(0.99));
  table.print(std::cout);

  std::cout << "\nPaper (Xen on Xeon E5-2618L v3):\n"
               "  Throttle                min 0.33  avg 0.37   max 1.15\n"
               "  BW budget replenishment min 8.81  avg 52.22  max 108.65\n"
               "Shape checks: refill avg/throttle avg = "
            << probe.refill.mean() / probe.throttle.mean()
            << "x (paper: ~141x); both well below the 1 ms regulation "
               "period.\n";
  return 0;
}
