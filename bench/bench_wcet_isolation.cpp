// §3.3 — impact of cache and bandwidth isolation on WCET.
//
// The paper measures PARSEC WCETs on its prototype with and without vC2M's
// cache/BW isolation and reports that isolation substantially reduces WCETs
// and that sensitivity to (c, b) varies across benchmarks. This bench runs
// the same experiment on the simulated prototype: a victim benchmark on one
// core with three streaming co-runners on the remaining cores, under
//   - "no isolation": shared cache (each core effectively gets C/4 ways)
//     and an unregulated shared bus;
//   - "vC2M isolation": dedicated cache ways + bandwidth budgets enforced
//     by the regulator (co-runners throttled);
//   - "solo": the victim alone with full resources (lower bound).
#include <iostream>

#include "bench_common.h"
#include "sim/profiling.h"
#include "sim/simulation.h"
#include "util/table.h"
#include "workload/parsec.h"

namespace {

using namespace vc2m;
using util::Time;

constexpr unsigned kCachePartitions = 20;
constexpr double kReqPerPartition = 1000;

sim::SimTaskSpec task_from_model(const sim::WorkloadModel& w, Time period,
                                 std::size_t vcpu) {
  sim::SimTaskSpec t;
  t.period = period;
  t.cpu_work = w.cpu_work;
  t.mem_work_ref = w.mem_work_ref;
  t.miss_amp = w.miss_amp;
  t.ws_decay = w.ws_decay;
  t.mem_requests_ref = w.mem_requests_ref;
  t.vcpu = vcpu;
  return t;
}

/// Measured victim WCET with three streaming co-runners.
Time victim_wcet(const sim::WorkloadModel& victim, bool isolated) {
  sim::SimConfig cfg;
  cfg.num_cores = 4;
  cfg.cache_partitions = kCachePartitions;
  cfg.requests_per_partition = kReqPerPartition;
  cfg.regulation_period = Time::ms(1);
  cfg.bus_contention = true;
  cfg.bus_requests_per_period = kCachePartitions * kReqPerPartition;
  if (isolated) {
    // vC2M: victim gets 8 dedicated ways and 8 BW partitions; co-runners
    // split the remaining ways and get tight bandwidth budgets (the
    // regulator throttles their bursts early in each period).
    cfg.bw_regulation = true;
    cfg.cache_alloc = {8, 4, 4, 4};
    cfg.bw_alloc = {8, 2, 2, 2};
  } else {
    // No isolation: everyone thrashes the shared cache (effectively C/4
    // ways each) and the bus is unregulated.
    cfg.bw_regulation = false;
    cfg.cache_alloc = {5, 5, 5, 5};
    cfg.bw_alloc = {5, 5, 5, 5};
  }

  const Time period = Time::ms(97);  // misaligned with the 1ms regulation
  sim::SimVcpuSpec v;
  v.period = period;
  v.budget = period;
  v.core = 0;
  cfg.vcpus.push_back(v);
  cfg.tasks.push_back(task_from_model(victim, period, 0));

  const auto& hog_profile = workload::find_profile("streamcluster");
  sim::ProfilingConfig pc;
  pc.cache_partitions = kCachePartitions;
  pc.requests_per_partition = kReqPerPartition;
  const auto hog = sim::workload_from_profile(hog_profile, Time::ms(60), pc);
  for (unsigned k = 1; k < 4; ++k) {
    sim::SimVcpuSpec hv;
    hv.period = Time::ms(80);
    hv.budget = Time::ms(80);
    hv.core = k;
    cfg.vcpus.push_back(hv);
    cfg.tasks.push_back(task_from_model(hog, Time::ms(80), k));
  }

  sim::Simulation s(std::move(cfg));
  s.run(Time::sec(3));
  return s.stats().per_task[0].max_response;
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::Options::parse(argc, argv);

  const char* names[] = {"swaptions",     "bodytrack", "freqmine",
                         "streamcluster", "ferret",    "canneal"};

  std::cout << "Impact of cache & bandwidth isolation on WCET (§3.3)\n"
               "Victim + 3 streaming co-runners, 4 cores, 20 partitions; "
               "reference WCET 10 ms\n\n";
  util::Table table({"benchmark", "solo (ms)", "no isolation (ms)",
                     "vC2M isolation (ms)", "reduction"});
  table.set_precision(2);

  sim::ProfilingConfig pc;
  pc.cache_partitions = kCachePartitions;
  pc.requests_per_partition = kReqPerPartition;
  pc.jobs = 8;
  for (const char* name : names) {
    const auto w = sim::workload_from_profile(workload::find_profile(name),
                                              util::Time::ms(10), pc);
    const auto solo = sim::profile_wcet(w, kCachePartitions,
                                        kCachePartitions, pc);
    const auto noiso = victim_wcet(w, /*isolated=*/false);
    const auto iso = victim_wcet(w, /*isolated=*/true);
    table.add_row(name, solo.to_ms(), noiso.to_ms(), iso.to_ms(),
                  iso > util::Time::zero()
                      ? static_cast<double>(noiso.raw_ns()) /
                            static_cast<double>(iso.raw_ns())
                      : 0.0);
  }
  table.print(std::cout);

  std::cout
      << "\nPaper: isolation effectively mitigates interference from\n"
         "concurrent cache/bus accesses and reduces task WCETs; the exact\n"
         "(c, b) sensitivity varies across benchmarks. Shape checks: the\n"
         "no-isolation column exceeds the isolated one for every memory-\n"
         "sensitive benchmark, and compute-bound benchmarks are hurt "
         "least.\n";
  return 0;
}
