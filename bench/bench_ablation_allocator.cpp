// Ablation study of the hypervisor-level allocator's design choices.
//
// §5.2 shows that removing the abstraction overhead *and* allocating
// resources effectively are both necessary. This bench drills into the
// allocator itself: starting from the full Heuristic (overhead-free CSA)
// solution it disables one mechanism at a time —
//   - slowdown-vector clustering (Phase 1 grouping),
//   - max-gain partition granting (Phase 2 → round-robin),
//   - load balancing (Phase 3 off),
//   - permutation restarts (1 instead of 8),
// and reports the schedulable fraction per utilization, quantifying each
// mechanism's contribution.
#include <iostream>

#include "bench_common.h"
#include "core/solutions.h"
#include "model/platform.h"
#include "util/table.h"
#include "workload/generator.h"

namespace {

using namespace vc2m;

struct Variant {
  const char* name;
  core::SolveConfig cfg;
};

std::vector<Variant> variants() {
  std::vector<Variant> out;
  out.push_back({"full heuristic", {}});

  core::SolveConfig no_cluster;
  no_cluster.clusters = 1;
  no_cluster.hv.cluster_vcpus = false;
  out.push_back({"no clustering", no_cluster});

  core::SolveConfig rr;
  rr.hv.phase2 = core::HvAllocConfig::Phase2Policy::kRoundRobin;
  out.push_back({"round-robin phase 2", rr});

  core::SolveConfig no_balance;
  no_balance.hv.load_balance = false;
  out.push_back({"no load balancing", no_balance});

  core::SolveConfig one_perm;
  one_perm.hv.max_permutations = 1;
  out.push_back({"single permutation", one_perm});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  const auto platform = model::PlatformSpec::A();
  const auto vars = variants();

  std::vector<std::string> header{"util"};
  for (const auto& v : vars) header.emplace_back(v.name);
  util::Table table(std::move(header));

  const double lo = 0.8, hi = 2.0;
  const double step = opt.step * 2;  // coarser grid: ablation trends
  const int n_points = static_cast<int>((hi - lo) / step + 1e-9) + 1;
  util::Rng master(opt.seed);

  for (int pi = 0; pi < n_points; ++pi) {
    const double target = lo + step * pi;
    std::vector<int> ok(vars.size(), 0);
    for (int rep = 0; rep < opt.tasksets; ++rep) {
      workload::GeneratorConfig gen;
      gen.grid = platform.grid;
      gen.target_ref_utilization = target;
      util::Rng gen_rng = master.fork();
      const auto tasks = workload::generate_taskset(gen, gen_rng);
      for (std::size_t v = 0; v < vars.size(); ++v) {
        util::Rng solve_rng = master.fork();
        ok[v] += core::solve(core::Solution::kHeuristicOverheadFree, tasks,
                             platform, vars[v].cfg, solve_rng)
                     .schedulable;
      }
    }
    std::vector<std::string> row;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", target);
    row.emplace_back(buf);
    for (const int o : ok) {
      std::snprintf(buf, sizeof buf, "%.3f",
                    static_cast<double>(o) / opt.tasksets);
      row.emplace_back(buf);
    }
    table.add_row_vec(std::move(row));
    bench::progress("ablation", pi + 1, n_points);
  }

  std::cout << "\nAllocator ablation — Heuristic (overhead-free CSA) on "
            << platform.name << ", fraction of schedulable tasksets\n\n";
  table.print(std::cout);
  table.write_csv(opt.csv_path("ablation_allocator.csv"));
  std::cout << "\nEach column disables one mechanism of the three-phase "
               "allocator; the gap to\n'full heuristic' is that mechanism's "
               "contribution.\n";
  return 0;
}
