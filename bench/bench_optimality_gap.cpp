// Optimality gap of the three-phase heuristic (extension, not in the paper).
//
// On instances small enough for exhaustive search, compare the heuristic
// allocator's accept rate against exact feasibility: "gap" tasksets are
// feasible mappings the heuristic failed to find within its iteration
// budget. The paper argues the heuristic is effective; this quantifies how
// close to complete it is on the §5.1 workload family.
#include <iostream>

#include "bench_common.h"
#include "core/exact.h"
#include "core/vm_alloc.h"
#include "model/platform.h"
#include "util/table.h"
#include "workload/generator.h"

int main(int argc, char** argv) {
  using namespace vc2m;
  const auto opt = bench::Options::parse(argc, argv);
  const auto platform = model::PlatformSpec::C();  // tightest platform

  util::Table table({"util", "heuristic", "exact", "gap tasksets",
                     "instances"});
  table.set_precision(3);

  util::Rng master(opt.seed);
  const double utils[] = {0.6, 0.8, 1.0, 1.2, 1.4};
  for (const double target : utils) {
    int heuristic_ok = 0, exact_ok = 0, gap = 0, instances = 0;
    for (int rep = 0; rep < opt.tasksets; ++rep) {
      workload::GeneratorConfig gen;
      gen.grid = platform.grid;
      gen.target_ref_utilization = target;
      util::Rng gen_rng = master.fork();
      const auto tasks = workload::generate_taskset(gen, gen_rng);

      core::VmAllocConfig vm;
      vm.analysis = core::VcpuAnalysis::kRegulated;
      vm.max_vcpus_per_vm = 3;  // keep instances exhaustively searchable
      util::Rng vm_rng = master.fork();
      const auto vcpus = core::allocate_vms_heuristic(tasks, vm, vm_rng);
      if (vcpus.size() > 8) continue;  // too large for the exact search
      ++instances;

      util::Rng hv_rng = master.fork();
      const bool h =
          core::allocate_heuristic(vcpus, platform, {}, hv_rng).schedulable;
      const bool e = core::allocate_exact(vcpus, platform).schedulable;
      heuristic_ok += h;
      exact_ok += e;
      gap += (!h && e) ? 1 : 0;
    }
    table.add_row(target,
                  instances ? static_cast<double>(heuristic_ok) / instances
                            : 0.0,
                  instances ? static_cast<double>(exact_ok) / instances : 0.0,
                  gap, instances);
    bench::progress("optimality", static_cast<int>(&target - utils) + 1, 5);
  }

  std::cout << "\nHeuristic vs exact feasibility — " << platform.name
            << ", well-regulated VCPUs (max 3 per VM)\n\n";
  table.print(std::cout);
  table.write_csv(opt.csv_path("optimality_gap.csv"));
  std::cout << "\n'gap tasksets' are instances a feasible mapping exists "
               "for but the heuristic\nmissed within its iteration budget "
               "(the exact column is a true upper bound).\n";
  return 0;
}
