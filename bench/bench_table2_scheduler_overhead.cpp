// Table 2 — scheduler overhead (µs) with 24 and 96 VCPUs.
//
// The paper instruments its modified RTDS scheduler:
//                       24 VCPUs              96 VCPUs
//                   min   avg   max       min   avg   max
//   budget replen.  0.29  0.74  2.95      0.34  1.26  3.73
//   scheduling      0.13  0.57  1.73      0.13  0.55  2.03
//   context switch  0.04  0.23  32.07     0.04  0.27  24.67
//
// This bench times the simulator's implementations of the same three hot
// paths (periodic-server replenishment, the EDF pick, and the VCPU-switch
// bookkeeping) under 24 and 96 VCPUs spread over 4 cores. The shape to
// reproduce: all three stay in the microsecond-or-below range and grow
// only slowly (sub-linearly) from 24 to 96 VCPUs.
#include <iostream>

#include "bench_common.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "util/table.h"

namespace {

using namespace vc2m;
using util::Time;

sim::HostProbe run_with_vcpus(unsigned num_vcpus) {
  constexpr unsigned kCores = 4;
  sim::SimConfig cfg;
  cfg.num_cores = kCores;
  cfg.cache_partitions = 20;

  // Harmonic periods and per-VCPU bandwidth sized so every core is busy
  // but schedulable: per VCPU utilization ~ 0.9 * cores / num_vcpus.
  util::Rng rng(7);
  const std::int64_t periods_ms[] = {10, 20, 40, 80};
  for (unsigned i = 0; i < num_vcpus; ++i) {
    const Time period = Time::ms(periods_ms[rng.index(4)]);
    const double share = 0.9 * static_cast<double>(kCores) / num_vcpus;
    const auto budget = Time::ns(static_cast<std::int64_t>(
        share * static_cast<double>(period.raw_ns())));
    sim::SimVcpuSpec v;
    v.period = period;
    v.budget = util::max(budget, Time::us(50));
    v.core = i % kCores;
    cfg.vcpus.push_back(v);

    sim::SimTaskSpec t;
    t.period = period;
    t.cpu_work = util::max(budget - Time::us(10), Time::us(20));
    t.vcpu = i;
    cfg.tasks.push_back(t);
  }

  sim::Simulation simulation(cfg);
  sim::HostProbe probe;
  simulation.set_probe(&probe);
  simulation.run(Time::sec(5));
  return probe;
}

}  // namespace

int main(int argc, char** argv) {
  (void)bench::Options::parse(argc, argv);

  std::cout << "Table 2: scheduler's overhead (µs), 4 cores\n"
               "(p99 is the noise-robust tail; raw maxima include host "
               "scheduler jitter,\n just as the paper's context-switch "
               "maxima include Xen's)\n\n";
  util::Table table(
      {"operation", "VCPUs", "min", "avg", "p99", "max", "samples"});
  for (const unsigned n : {24u, 96u}) {
    const auto probe = run_with_vcpus(n);
    auto add = [&](const char* name, const util::SampleStats& s) {
      table.add_row(name, static_cast<int>(n), s.min(), s.mean(),
                    s.percentile(0.99), s.max(),
                    static_cast<int>(s.count()));
    };
    add("CPU budget replenishment", probe.replenish);
    add("Scheduling", probe.schedule);
    add("Context switching", probe.context_switch);
  }
  table.print(std::cout);

  std::cout << "\nPaper (Xen RTDS, µs):\n"
               "                          24 VCPUs             96 VCPUs\n"
               "  budget replenishment  0.29/0.74/2.95      0.34/1.26/3.73\n"
               "  scheduling            0.13/0.57/1.73      0.13/0.55/2.03\n"
               "  context switching     0.04/0.23/32.07     0.04/0.27/24.67\n"
               "Shape checks: microsecond scale; slow growth 24 -> 96; the\n"
               "scheduling pick grows with per-core queue length.\n";
  return 0;
}
