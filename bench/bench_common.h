// Shared helpers for the table/figure bench binaries.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

#include "core/experiment.h"
#include "obs/bench_report.h"
#include "util/phase_profiler.h"

namespace vc2m::bench {

/// Strict numeric parsing for bench flags: the whole token must be a valid
/// number (atoi's silent-zero on "--tasksets abc" produced empty sweeps).
inline double parse_double_arg(const char* flag, const char* s) {
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !std::isfinite(v)) {
    std::cerr << "bad value for " << flag << ": '" << s
              << "' (not a finite number)\n";
    std::exit(2);
  }
  return v;
}

inline long parse_int_arg(const char* flag, const char* s) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    std::cerr << "bad value for " << flag << ": '" << s
              << "' (not an integer)\n";
    std::exit(2);
  }
  return v;
}

inline std::uint64_t parse_uint64_arg(const char* flag, const char* s) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0' || s[0] == '-') {
    std::cerr << "bad value for " << flag << ": '" << s
              << "' (not an unsigned integer)\n";
    std::exit(2);
  }
  return v;
}

/// Command-line options shared by the schedulability benches. The defaults
/// reproduce the paper's setup exactly (50 tasksets per utilization point,
/// utilization 0.1..2.0 step 0.05); --quick trades fidelity for speed when
/// smoke-testing. --json additionally enables the phase profiler and makes
/// the bench emit a machine-readable BenchReport at the given path.
struct Options {
  int tasksets = 50;
  double step = 0.05;
  std::uint64_t seed = 42;
  int jobs = 0;  ///< sweep worker threads; 0 = hardware concurrency
  /// Intra-solve stripes for the min-budget surface batches (1 = serial,
  /// 0 = hardware); results are bit-identical at any value.
  int inner_jobs = 1;
  std::string csv_dir = "bench_results";
  std::string json;  ///< empty = no JSON report

  static Options parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&](const char* what) -> const char* {
        if (i + 1 >= argc) {
          std::cerr << "missing value for " << what << "\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--tasksets") {
        opt.tasksets =
            static_cast<int>(parse_int_arg("--tasksets", next("--tasksets")));
        if (opt.tasksets <= 0) {
          std::cerr << "--tasksets must be > 0\n";
          std::exit(2);
        }
      } else if (arg == "--step") {
        opt.step = parse_double_arg("--step", next("--step"));
        if (opt.step <= 0) {
          std::cerr << "--step must be > 0\n";
          std::exit(2);
        }
      } else if (arg == "--seed") {
        opt.seed = parse_uint64_arg("--seed", next("--seed"));
      } else if (arg == "--jobs") {
        opt.jobs = static_cast<int>(parse_int_arg("--jobs", next("--jobs")));
        if (opt.jobs < 0) {
          std::cerr << "--jobs must be >= 0 (0 = hardware concurrency)\n";
          std::exit(2);
        }
      } else if (arg == "--inner-jobs") {
        opt.inner_jobs = static_cast<int>(
            parse_int_arg("--inner-jobs", next("--inner-jobs")));
        if (opt.inner_jobs < 0) {
          std::cerr << "--inner-jobs must be >= 0 (0 = hardware "
                       "concurrency)\n";
          std::exit(2);
        }
      } else if (arg == "--csv-dir") {
        opt.csv_dir = next("--csv-dir");
      } else if (arg == "--json") {
        opt.json = next("--json");
      } else if (arg == "--quick") {
        opt.tasksets = 10;
        opt.step = 0.1;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "options: --tasksets N  --step S  --seed S  --jobs N  "
                     "--inner-jobs N  --csv-dir DIR  --json PATH  --quick\n";
        std::exit(0);
      } else {
        std::cerr << "unknown option " << arg << "\n";
        std::exit(2);
      }
    }
    if (!opt.json.empty()) util::PhaseProfiler::set_enabled(true);
    return opt;
  }

  /// Ensure the CSV directory exists; returns the path for `name`.
  std::string csv_path(const std::string& name) const {
    std::error_code ec;
    std::filesystem::create_directories(csv_dir, ec);
    return csv_dir + "/" + name;
  }
};

/// Progress meter on stderr (the tables go to stdout).
inline void progress(const std::string& label, int done, int total) {
  std::cerr << "\r[" << label << "] " << done << "/" << total
            << (done == total ? "\n" : "") << std::flush;
}

/// Build the standard BenchReport for one experiment sweep: options +
/// experiment config, effort counters, merged phase profile, per-solve
/// seconds histogram and pool telemetry.
inline obs::BenchReport experiment_report(
    const std::string& name, const Options& opt,
    const core::ExperimentConfig& cfg, const core::ExperimentResult& result,
    const util::AllocCounters& counters) {
  obs::BenchReport r;
  r.name = name;
  r.git_rev = obs::build_git_rev();
  r.config["platform"] = cfg.platform.name;
  r.config["tasksets"] = std::to_string(cfg.tasksets_per_point);
  r.config["util_lo"] = std::to_string(cfg.util_lo);
  r.config["util_hi"] = std::to_string(cfg.util_hi);
  r.config["step"] = std::to_string(cfg.util_step);
  r.config["seed"] = std::to_string(opt.seed);
  r.config["jobs"] = std::to_string(cfg.jobs);
  r.config["inner_jobs"] = std::to_string(cfg.solve.inner_jobs);
  std::string solutions;
  for (const auto& s : cfg.solutions)
    solutions += (solutions.empty() ? "" : ",") + s;
  r.config["solutions"] = solutions;
  obs::set_counters(r, counters);
  r.phases = obs::merged_profile();
  r.histograms["solve_seconds"] =
      obs::HistogramSummary::of(result.solve_seconds);
  r.pool = obs::PoolSummary::of(result.pool);
  return r;
}

/// Write the report when --json was given; announces the path on stderr.
inline void maybe_write_report(const Options& opt, const obs::BenchReport& r) {
  if (opt.json.empty()) return;
  obs::write_bench_report_file(opt.json, r);
  std::cerr << "bench report: " << opt.json << "\n";
}

}  // namespace vc2m::bench
