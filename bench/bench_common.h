// Shared helpers for the table/figure bench binaries.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>

namespace vc2m::bench {

/// Command-line options shared by the schedulability benches. The defaults
/// reproduce the paper's setup exactly (50 tasksets per utilization point,
/// utilization 0.1..2.0 step 0.05); --quick trades fidelity for speed when
/// smoke-testing.
struct Options {
  int tasksets = 50;
  double step = 0.05;
  std::uint64_t seed = 42;
  int jobs = 0;  ///< sweep worker threads; 0 = hardware concurrency
  std::string csv_dir = "bench_results";

  static Options parse(int argc, char** argv) {
    Options opt;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto next = [&](const char* what) -> const char* {
        if (i + 1 >= argc) {
          std::cerr << "missing value for " << what << "\n";
          std::exit(2);
        }
        return argv[++i];
      };
      if (arg == "--tasksets") {
        opt.tasksets = std::atoi(next("--tasksets"));
      } else if (arg == "--step") {
        opt.step = std::atof(next("--step"));
      } else if (arg == "--seed") {
        opt.seed = std::strtoull(next("--seed"), nullptr, 10);
      } else if (arg == "--jobs") {
        opt.jobs = std::atoi(next("--jobs"));
        if (opt.jobs < 0) {
          std::cerr << "--jobs must be >= 0 (0 = hardware concurrency)\n";
          std::exit(2);
        }
      } else if (arg == "--csv-dir") {
        opt.csv_dir = next("--csv-dir");
      } else if (arg == "--quick") {
        opt.tasksets = 10;
        opt.step = 0.1;
      } else if (arg == "--help" || arg == "-h") {
        std::cout << "options: --tasksets N  --step S  --seed S  --jobs N  "
                     "--csv-dir DIR  --quick\n";
        std::exit(0);
      } else {
        std::cerr << "unknown option " << arg << "\n";
        std::exit(2);
      }
    }
    return opt;
  }

  /// Ensure the CSV directory exists; returns the path for `name`.
  std::string csv_path(const std::string& name) const {
    std::error_code ec;
    std::filesystem::create_directories(csv_dir, ec);
    return csv_dir + "/" + name;
  }
};

/// Progress meter on stderr (the tables go to stdout).
inline void progress(const std::string& label, int done, int total) {
  std::cerr << "\r[" << label << "] " << done << "/" << total
            << (done == total ? "\n" : "") << std::flush;
}

}  // namespace vc2m::bench
