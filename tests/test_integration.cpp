// End-to-end validation: workloads generated per §5.1 are allocated by the
// paper's solutions and then *executed* on the simulated prototype; a
// mapping the analysis certifies must produce zero deadline misses.
#include <gtest/gtest.h>

#include <tuple>

#include "core/solutions.h"
#include "model/platform.h"
#include "obs/trace_check.h"
#include "sim/deploy.h"
#include "sim/profiling.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vc2m {
namespace {

using util::Rng;
using util::Time;

model::Taskset generated(double util, std::uint64_t seed, int vms = 1) {
  workload::GeneratorConfig cfg;
  cfg.grid = model::PlatformSpec::A().grid;
  cfg.target_ref_utilization = util;
  cfg.num_vms = vms;
  Rng rng(seed);
  return workload::generate_taskset(cfg, rng);
}

Time sim_horizon(const model::Taskset& tasks) {
  // Two hyperperiods (harmonic => the largest period) of steady state.
  return model::hyperperiod(tasks) * 2;
}

/// Every captured trace must satisfy the scheduling invariants (single
/// occupancy, no execution while throttled, budget compliance, release /
/// completion matching).
void expect_trace_invariants(const sim::Simulation& simulation,
                             Time horizon) {
  const auto res = obs::check_trace(
      simulation.trace().events(),
      obs::TraceCheckConfig::from_sim(simulation.config(), horizon));
  EXPECT_TRUE(res.ok()) << (res.violations.empty()
                                ? res.summary()
                                : res.violations[0].what);
}

// ---------------- certified mappings execute without misses ----------------

class CertifiedExecutionTest
    : public ::testing::TestWithParam<std::tuple<core::Solution, int>> {};

TEST_P(CertifiedExecutionTest, NoDeadlineMissesUnderCpuOnlyExecution) {
  const auto [solution, seed] = GetParam();
  const auto platform = model::PlatformSpec::A();
  const auto tasks = generated(0.9, 100 + static_cast<std::uint64_t>(seed));
  Rng rng(200 + static_cast<std::uint64_t>(seed));
  const auto res = core::solve(solution, tasks, platform, {}, rng);
  if (!res.schedulable) GTEST_SKIP() << "not certified for this seed";

  sim::DeployConfig dc;
  dc.exec = sim::ExecModel::kCpuOnly;
  dc.capture_trace = true;
  sim::Simulation simulation(
      sim::deploy(tasks, res.vcpus, res.mapping, platform, dc));
  simulation.run(sim_horizon(tasks));
  const auto stats = simulation.stats();
  EXPECT_EQ(stats.deadline_misses, 0u) << core::to_string(solution);
  EXPECT_GT(stats.jobs_completed, 0u);
  expect_trace_invariants(simulation, sim_horizon(tasks));
}

INSTANTIATE_TEST_SUITE_P(
    SolutionsBySeeds, CertifiedExecutionTest,
    ::testing::Combine(::testing::ValuesIn(core::all_solutions()),
                       ::testing::Range(0, 4)),
    [](const auto& info) {
      const core::Solution solution = std::get<0>(info.param);
      const int seed = std::get<1>(info.param);
      std::string name;
      switch (solution) {
        case core::Solution::kHeuristicFlattening: name = "Flat"; break;
        case core::Solution::kHeuristicOverheadFree: name = "OvfFree"; break;
        case core::Solution::kHeuristicExistingCsa: name = "Existing"; break;
        case core::Solution::kEvenPartitionOverheadFree: name = "Even"; break;
        case core::Solution::kBaselineExistingCsa: name = "Baseline"; break;
      }
      return name + "_seed" + std::to_string(seed);
    });

TEST(CertifiedExecution, MultiVmWorkloadRunsClean) {
  const auto platform = model::PlatformSpec::B();
  const auto tasks = generated(1.2, 7, /*vms=*/3);
  Rng rng(8);
  const auto res = core::solve(core::Solution::kHeuristicOverheadFree, tasks,
                               platform, {}, rng);
  ASSERT_TRUE(res.schedulable);
  sim::DeployConfig dc;
  dc.capture_trace = true;
  sim::Simulation simulation(
      sim::deploy(tasks, res.vcpus, res.mapping, platform, dc));
  simulation.run(sim_horizon(tasks));
  EXPECT_EQ(simulation.stats().deadline_misses, 0u);
  expect_trace_invariants(simulation, sim_horizon(tasks));
}

TEST(CertifiedExecution, FlatteningWithReleaseSyncAndTaskOffsets) {
  // Theorem 1 end to end: tasks with non-zero first releases; the
  // hypercall-based synchronization keeps every VCPU aligned to its task.
  const auto platform = model::PlatformSpec::A();
  auto tasks = generated(0.7, 9);
  Rng rng(10);
  const auto res = core::solve(core::Solution::kHeuristicFlattening, tasks,
                               platform, {}, rng);
  ASSERT_TRUE(res.schedulable);

  sim::DeployConfig dc;
  dc.release_sync = true;
  dc.capture_trace = true;
  auto cfg = sim::deploy(tasks, res.vcpus, res.mapping, platform, dc);
  // Stagger the task releases; the VCPUs must follow via hypercalls.
  Rng offsets(11);
  for (auto& t : cfg.tasks)
    t.offset = Time::ms(offsets.uniform_int(0, 50));
  sim::Simulation simulation(std::move(cfg));
  simulation.run(sim_horizon(tasks) + Time::ms(100));
  const auto stats = simulation.stats();
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_GE(simulation.trace().count(sim::TraceKind::kHypercall),
            tasks.size());
  expect_trace_invariants(simulation, sim_horizon(tasks) + Time::ms(100));
}

TEST(CertifiedExecution, DeployRejectsUnschedulableMapping) {
  const auto tasks = generated(0.5, 12);
  core::HvAllocResult bogus;  // schedulable == false
  EXPECT_THROW(sim::deploy(tasks, {}, bogus, model::PlatformSpec::A(), {}),
               util::Error);
}

// ------------- physical execution with sim-profiled surfaces ---------------

TEST(PhysicalExecution, ProfiledSurfacesCertifyAndRunClean) {
  // Tiny platform so the full profiling sweep stays fast: 2 cores, 4 cache
  // partitions, 3 bandwidth partitions.
  model::PlatformSpec platform;
  platform.name = "tiny";
  platform.cores = 2;
  platform.grid = model::ResourceGrid{2, 4, 1, 3};

  sim::ProfilingConfig pc;
  pc.cache_partitions = platform.grid.c_max;
  pc.jobs = 6;

  const char* benchmarks[] = {"swaptions", "ferret", "bodytrack"};
  model::Taskset tasks;
  std::vector<sim::WorkloadModel> workloads;
  const Time periods[] = {Time::ms(100), Time::ms(200), Time::ms(200)};
  const Time refs[] = {Time::ms(20), Time::ms(10), Time::ms(15)};
  for (int i = 0; i < 3; ++i) {
    const auto w = sim::workload_from_profile(
        workload::find_profile(benchmarks[i]), refs[i], pc);
    model::Task t;
    t.period = periods[i];
    t.wcet = sim::profile_surface(w, platform.grid, pc);  // §5.1 methodology
    t.max_wcet = t.wcet.at(platform.grid.c_min, platform.grid.b_min) * 2;
    t.label = benchmarks[i];
    tasks.push_back(std::move(t));
    workloads.push_back(w);
  }

  Rng rng(13);
  // Solo profiling cannot see cross-core bus bursts within a regulation
  // period; the paper's §4.1 Remarks account for such residual intra-core
  // overheads by inflating task WCETs before allocation. A few regulation
  // periods of margin cover the boundary effects here.
  core::SolveConfig sc;
  sc.task_inflation = Time::ms(3);
  const auto res = core::solve(core::Solution::kHeuristicFlattening, tasks,
                               platform, sc, rng);
  ASSERT_TRUE(res.schedulable);

  sim::DeployConfig dc;
  dc.exec = sim::ExecModel::kPhysical;
  dc.workloads = workloads;
  dc.requests_per_partition = pc.requests_per_partition;
  dc.regulation_period = pc.regulation_period;
  dc.capture_trace = true;
  sim::Simulation simulation(
      sim::deploy(tasks, res.vcpus, res.mapping, platform, dc));
  simulation.run(Time::sec(2));
  const auto stats = simulation.stats();
  EXPECT_EQ(stats.deadline_misses, 0u);
  EXPECT_GT(stats.jobs_completed, 10u);
  expect_trace_invariants(simulation, Time::sec(2));
}

}  // namespace
}  // namespace vc2m
