// Observability layer: metrics registry, trace export/import, the metrics
// recorder, the trace invariant checker, profiler merge/rendering, bench
// reports and the perfdiff gate.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "obs/bench_report.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/recorder.h"
#include "obs/report.h"
#include "obs/trace_check.h"
#include "obs/trace_export.h"
#include "sim/simulation.h"
#include "util/error.h"
#include "util/log_histogram.h"

namespace vc2m::obs {
namespace {

using sim::TraceEvent;
using sim::TraceKind;
using util::Time;

// ------------------------------------------------------------ metrics ----

TEST(Histogram, BucketsAreInclusiveUpperEdges) {
  Histogram h({1.0, 2.0, 4.0});
  for (const double x : {0.5, 1.0, 1.5, 2.0, 4.0, 5.0}) h.add(x);
  ASSERT_EQ(h.num_buckets(), 4u);  // three finite + overflow
  EXPECT_EQ(h.bucket_count(0), 2u);  // 0.5, 1.0
  EXPECT_EQ(h.bucket_count(1), 2u);  // 1.5, 2.0
  EXPECT_EQ(h.bucket_count(2), 1u);  // 4.0
  EXPECT_EQ(h.bucket_count(3), 1u);  // 5.0 overflows
  EXPECT_EQ(h.count(), 6u);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.mean(), 14.0 / 6.0);
}

TEST(Histogram, QuantileReportsBucketUpperEdge) {
  Histogram h({1.0, 2.0, 4.0});
  for (int i = 0; i < 90; ++i) h.add(0.5);
  for (int i = 0; i < 10; ++i) h.add(3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.95), 4.0);
}

TEST(Histogram, OverflowQuantileIsObservedMax) {
  Histogram h({1.0});
  h.add(7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 7.5);
}

TEST(Histogram, EmptyIsZeroed) {
  Histogram h({1.0});
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(MetricsRegistry, GetOrCreateReturnsSameMetric) {
  MetricsRegistry reg;
  reg.counter("a").inc(2);
  reg.counter("a").inc(3);
  EXPECT_EQ(reg.counter("a").value(), 5u);
  reg.gauge("g").set(1.5);
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 1.5);
  reg.histogram("h", {1.0}).add(0.5);
  reg.histogram("h", {9.0}).add(0.7);  // bounds of the first call stick
  EXPECT_EQ(reg.histogram("h", {1.0}).count(), 2u);
  EXPECT_EQ(reg.size(), 3u);
}

TEST(MetricsRegistry, NameCollisionAcrossKindsThrows) {
  MetricsRegistry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), util::Error);
  EXPECT_THROW(reg.histogram("x", {1.0}), util::Error);
  EXPECT_EQ(reg.find_gauge("x"), nullptr);
  EXPECT_NE(reg.find_counter("x"), nullptr);
}

TEST(MetricsRegistry, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.gauge("zeta").set(1);
  reg.counter("alpha").inc();
  reg.histogram("mid", {1.0}).add(0.5);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].name, "alpha");
  EXPECT_EQ(snap[1].name, "mid");
  EXPECT_EQ(snap[2].name, "zeta");
  EXPECT_EQ(snap[0].kind, MetricSample::Kind::kCounter);
  EXPECT_EQ(snap[1].kind, MetricSample::Kind::kHistogram);
  EXPECT_EQ(snap[2].kind, MetricSample::Kind::kGauge);
}

TEST(MetricsRecorder, StreamsSemanticEventsIntoRegistry) {
  MetricsRegistry reg;
  MetricsRecorder rec(reg);
  rec.on_job_complete(0, Time::ms(5), Time::ms(10), false);
  rec.on_job_complete(0, Time::ms(12), Time::ms(10), true);
  rec.on_vcpu_period_end(1, Time::ms(3), Time::ms(4), false);
  rec.on_vcpu_period_end(1, Time::ms(4), Time::ms(4), true);
  rec.on_throttle_end(2, Time::us(250));

  const auto* ratios = reg.find_histogram("task.0.response_ratio");
  ASSERT_NE(ratios, nullptr);
  EXPECT_EQ(ratios->count(), 2u);
  EXPECT_DOUBLE_EQ(ratios->max(), 1.2);
  EXPECT_EQ(reg.find_counter("task.0.misses")->value(), 1u);
  EXPECT_EQ(reg.find_histogram("vcpu.1.budget_fraction")->count(), 2u);
  EXPECT_EQ(reg.find_counter("vcpu.1.overruns")->value(), 1u);
  EXPECT_EQ(reg.find_counter("core.2.throttles")->value(), 1u);
  EXPECT_EQ(reg.find_counter("core.2.throttled_ns")->value(), 250'000u);
}

// ------------------------------------------------------- trace export ----

std::vector<TraceEvent> tiny_trace() {
  return {
      {Time::zero(), TraceKind::kVcpuSchedule, 0, 0},
      {Time::zero(), TraceKind::kJobRelease, 0, 0, 0, 0},
      {Time::zero(), TraceKind::kTaskDispatch, 0, 0, 0},
      {Time::us(1), TraceKind::kJobComplete, 0, 0, 0, 0},
      {Time::us(2), TraceKind::kVcpuDeschedule, 0, 0},
  };
}

TEST(TraceExport, GoldenChromeJson) {
  // The exact serialized form is part of the contract: stable field order,
  // microsecond timestamps with three decimals, events in recorded order.
  const std::string expected =
      "{\n"
      "\"displayTimeUnit\": \"ms\",\n"
      "\"otherData\": {\"generator\": \"vc2m\", \"events\": \"5\"},\n"
      "\"vc2mEvents\": [\n"
      "{\"t\":0,\"k\":5,\"c\":0,\"v\":0,\"x\":-1,\"j\":-1},\n"
      "{\"t\":0,\"k\":0,\"c\":0,\"v\":0,\"x\":0,\"j\":0},\n"
      "{\"t\":0,\"k\":7,\"c\":0,\"v\":0,\"x\":0,\"j\":-1},\n"
      "{\"t\":1000,\"k\":1,\"c\":0,\"v\":0,\"x\":0,\"j\":0},\n"
      "{\"t\":2000,\"k\":6,\"c\":0,\"v\":0,\"x\":-1,\"j\":-1}\n"
      "],\n"
      "\"traceEvents\": [\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"cores\"}},\n"
      "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\","
      "\"args\":{\"name\":\"VCPUs\"}},\n"
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"core 0\"}},\n"
      "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"thread_name\","
      "\"args\":{\"name\":\"vcpu 0\"}},\n"
      "{\"ph\":\"i\",\"pid\":2,\"tid\":0,\"ts\":0.000,\"s\":\"t\","
      "\"cat\":\"job\",\"name\":\"release task 0\","
      "\"args\":{\"task\":0,\"job\":0}},\n"
      "{\"ph\":\"i\",\"pid\":2,\"tid\":0,\"ts\":1.000,\"s\":\"t\","
      "\"cat\":\"job\",\"name\":\"complete task 0\","
      "\"args\":{\"task\":0,\"job\":0}},\n"
      "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"dur\":2.000,"
      "\"cat\":\"sched\",\"name\":\"vcpu 0\"},\n"
      "{\"ph\":\"X\",\"pid\":2,\"tid\":0,\"ts\":0.000,\"dur\":2.000,"
      "\"cat\":\"task\",\"name\":\"task 0\"}\n"
      "]\n"
      "}\n";
  std::ostringstream os;
  write_chrome_trace(os, tiny_trace());
  EXPECT_EQ(os.str(), expected);
}

void expect_same_events(const std::vector<TraceEvent>& a,
                        const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].when, b[i].when) << i;
    EXPECT_EQ(a[i].kind, b[i].kind) << i;
    EXPECT_EQ(a[i].core, b[i].core) << i;
    EXPECT_EQ(a[i].vcpu, b[i].vcpu) << i;
    EXPECT_EQ(a[i].task, b[i].task) << i;
    EXPECT_EQ(a[i].job, b[i].job) << i;
  }
}

TEST(TraceExport, CsvRoundTrip) {
  const auto events = tiny_trace();
  std::stringstream ss;
  write_trace_csv(ss, events);
  expect_same_events(read_trace_csv(ss), events);
}

TEST(TraceExport, ChromeJsonRoundTripViaVc2mEvents) {
  const auto events = tiny_trace();
  std::stringstream ss;
  write_chrome_trace(ss, events);
  expect_same_events(read_chrome_trace(ss), events);
}

TEST(TraceExport, CsvRejectsGarbage) {
  std::stringstream ss("not,a,trace\n1,2,3\n");
  EXPECT_THROW(read_trace_csv(ss), util::Error);
  std::stringstream js("{\"traceEvents\": []}\n");
  EXPECT_THROW(read_chrome_trace(js), util::Error);
}

TEST(TraceKindStrings, RoundTrip) {
  for (int k = 0; k < static_cast<int>(TraceKind::kCount_); ++k) {
    const auto kind = static_cast<TraceKind>(k);
    const auto back = sim::trace_kind_from_string(sim::to_string(kind));
    ASSERT_TRUE(back.has_value()) << sim::to_string(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(sim::trace_kind_from_string("no-such-kind").has_value());
}

// ------------------------------------------------------------ checker ----

TEST(TraceCheck, AcceptsWellFormedTrace) {
  const auto res = check_trace(tiny_trace());
  EXPECT_TRUE(res.ok()) << res.summary();
  EXPECT_EQ(res.events, 5u);
  EXPECT_EQ(res.releases, 1u);
  EXPECT_EQ(res.completions, 1u);
}

TEST(TraceCheck, DetectsOverlappingVcpusOnOneCore) {
  const std::vector<TraceEvent> events = {
      {Time::zero(), TraceKind::kVcpuSchedule, 0, 0},
      {Time::us(10), TraceKind::kVcpuSchedule, 0, 1},  // vcpu 0 never left
  };
  const auto res = check_trace(events);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].what.find("still occupies"), std::string::npos)
      << res.violations[0].what;
}

TEST(TraceCheck, DetectsDescheduleOfIdleCore) {
  const std::vector<TraceEvent> events = {
      {Time::us(5), TraceKind::kVcpuDeschedule, 0, 3},
  };
  EXPECT_FALSE(check_trace(events).ok());
}

TEST(TraceCheck, DetectsExecutionDuringThrottleWindow) {
  const std::vector<TraceEvent> events = {
      {Time::zero(), TraceKind::kVcpuSchedule, 0, 0},
      {Time::ms(1), TraceKind::kCoreThrottle, 0},
      // The VCPU keeps running for 1ms inside the throttle window.
      {Time::ms(2), TraceKind::kVcpuDeschedule, 0, 0},
      {Time::ms(3), TraceKind::kCoreUnthrottle, 0},
  };
  const auto res = check_trace(events);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].what.find("throttle window"),
            std::string::npos);
}

TEST(TraceCheck, AcceptsSameInstantThrottleDeschedule) {
  // The simulator's causal order: the throttle fires, then the scheduler
  // deschedules at the same timestamp — zero execution overlap.
  const std::vector<TraceEvent> events = {
      {Time::zero(), TraceKind::kVcpuSchedule, 0, 0},
      {Time::ms(1), TraceKind::kCoreThrottle, 0},
      {Time::ms(1), TraceKind::kVcpuDeschedule, 0, 0},
      {Time::ms(2), TraceKind::kCoreUnthrottle, 0},
      {Time::ms(2), TraceKind::kVcpuSchedule, 0, 0},
      {Time::ms(3), TraceKind::kVcpuDeschedule, 0, 0},
  };
  const auto res = check_trace(events);
  EXPECT_TRUE(res.ok()) << (res.violations.empty()
                                ? res.summary()
                                : res.violations[0].what);
}

TEST(TraceCheck, DetectsScheduleOntoThrottledCore) {
  const std::vector<TraceEvent> events = {
      {Time::ms(1), TraceKind::kCoreThrottle, 0},
      {Time::ms(1), TraceKind::kVcpuSchedule, 0, 0},
  };
  EXPECT_FALSE(check_trace(events).ok());
}

TEST(TraceCheck, DetectsBudgetOverdraw) {
  TraceCheckConfig cfg;
  cfg.vcpu_budgets = {Time::ms(4)};
  const std::vector<TraceEvent> events = {
      {Time::zero(), TraceKind::kVcpuRelease, 0, 0},
      {Time::zero(), TraceKind::kVcpuSchedule, 0, 0},
      {Time::ms(6), TraceKind::kVcpuDeschedule, 0, 0},  // 6ms of a 4ms budget
  };
  const auto res = check_trace(events, cfg);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].what.find("overdrew"), std::string::npos);
  // The same trace passes without the budget configuration.
  EXPECT_TRUE(check_trace(events).ok());
}

TEST(TraceCheck, BudgetMeterResetsAtReplenishment) {
  TraceCheckConfig cfg;
  cfg.vcpu_budgets = {Time::ms(4)};
  const std::vector<TraceEvent> events = {
      {Time::zero(), TraceKind::kVcpuRelease, 0, 0},
      {Time::zero(), TraceKind::kVcpuSchedule, 0, 0},
      {Time::ms(3), TraceKind::kVcpuDeschedule, 0, 0},
      {Time::ms(10), TraceKind::kVcpuRelease, 0, 0},
      {Time::ms(10), TraceKind::kVcpuSchedule, 0, 0},
      {Time::ms(13), TraceKind::kVcpuDeschedule, 0, 0},
  };
  EXPECT_TRUE(check_trace(events, cfg).ok());
}

TEST(TraceCheck, DetectsVcpuOnWrongCore) {
  TraceCheckConfig cfg;
  cfg.vcpu_cores = {1};  // vcpu 0 is partitioned to core 1
  const std::vector<TraceEvent> events = {
      {Time::zero(), TraceKind::kVcpuSchedule, 0, 0},
  };
  EXPECT_FALSE(check_trace(events, cfg).ok());
}

TEST(TraceCheck, DetectsCompletionWithoutRelease) {
  const std::vector<TraceEvent> events = {
      {Time::ms(1), TraceKind::kJobComplete, 0, 0, 0, 0},
  };
  const auto res = check_trace(events);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].what.find("never released"),
            std::string::npos);
}

TEST(TraceCheck, DetectsUnmatchedReleaseWithinHorizon) {
  TraceCheckConfig cfg;
  cfg.task_periods = {Time::ms(10)};
  cfg.horizon = Time::ms(100);
  const std::vector<TraceEvent> events = {
      {Time::zero(), TraceKind::kJobRelease, 0, 0, 0, 0},
  };
  const auto res = check_trace(events, cfg);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].what.find("neither completed nor missed"),
            std::string::npos);
  // A release whose deadline lies beyond the horizon is legitimately open.
  TraceCheckConfig late = cfg;
  late.horizon = Time::ms(5);
  EXPECT_TRUE(check_trace(events, late).ok());
}

// -------------------------------------- fault / enforcement invariants ----

TEST(TraceCheck, KilledJobIsTerminal) {
  TraceCheckConfig cfg;
  cfg.task_periods = {Time::ms(10)};
  cfg.horizon = Time::ms(100);
  // A kill satisfies the horizon invariant on its own...
  const std::vector<TraceEvent> killed_only = {
      {Time::zero(), TraceKind::kJobRelease, 0, 0, 0, 0},
      {Time::ms(2), TraceKind::kJobKilled, 0, 0, 0, 0},
  };
  EXPECT_TRUE(check_trace(killed_only, cfg).ok());
  // ...but the killed job must never execute afterwards.
  const std::vector<TraceEvent> kill_then_complete = {
      {Time::zero(), TraceKind::kJobRelease, 0, 0, 0, 0},
      {Time::ms(2), TraceKind::kJobKilled, 0, 0, 0, 0},
      {Time::ms(4), TraceKind::kJobComplete, 0, 0, 0, 0},
  };
  const auto res = check_trace(kill_then_complete, cfg);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].what.find("after being killed"),
            std::string::npos)
      << res.violations[0].what;
  // A kill of a job that was never released is bogus too.
  const std::vector<TraceEvent> phantom = {
      {Time::ms(2), TraceKind::kJobKilled, 0, 0, 0, 7},
  };
  EXPECT_FALSE(check_trace(phantom, cfg).ok());
}

TEST(TraceCheck, KilledJobCannotMissItsDeadline) {
  const std::vector<TraceEvent> events = {
      {Time::zero(), TraceKind::kJobRelease, 0, 0, 0, 0},
      {Time::ms(2), TraceKind::kJobKilled, 0, 0, 0, 0},
      {Time::ms(10), TraceKind::kDeadlineMiss, 0, 0, 0, 0},
  };
  const auto res = check_trace(events);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].what.find("after being killed"),
            std::string::npos);
}

TEST(TraceCheck, SuspendedTaskMustNotBeDispatched) {
  const std::vector<TraceEvent> events = {
      {Time::zero(), TraceKind::kVcpuSchedule, 0, 0},
      {Time::ms(1), TraceKind::kTaskSuspend, 0, 0, 3},
      {Time::ms(2), TraceKind::kTaskDispatch, 0, 0, 3},
  };
  const auto res = check_trace(events);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].what.find("while suspended"),
            std::string::npos);
  // After a resume, dispatching the task is legitimate again.
  const std::vector<TraceEvent> resumed = {
      {Time::zero(), TraceKind::kVcpuSchedule, 0, 0},
      {Time::ms(1), TraceKind::kTaskSuspend, 0, 0, 3},
      {Time::ms(2), TraceKind::kTaskResume, 0, 0, 3},
      {Time::ms(3), TraceKind::kTaskDispatch, 0, 0, 3},
  };
  EXPECT_TRUE(check_trace(resumed).ok());
}

TEST(TraceCheck, SuspendResumePairingIsEnforced) {
  const std::vector<TraceEvent> double_suspend = {
      {Time::ms(1), TraceKind::kTaskSuspend, 0, 0, 3},
      {Time::ms(2), TraceKind::kTaskSuspend, 0, 0, 3},
  };
  EXPECT_FALSE(check_trace(double_suspend).ok());
  const std::vector<TraceEvent> orphan_resume = {
      {Time::ms(1), TraceKind::kTaskResume, 0, 0, 3},
  };
  EXPECT_FALSE(check_trace(orphan_resume).ok());
}

TEST(TraceCheck, RevokedPartitionMustNotReappearInCosBindings) {
  // While core 0 is revoked to 1 way, a COS binding granting it 4 ways is
  // a violation; the post-restore rebinding is fine.
  const std::vector<TraceEvent> events = {
      {Time::ms(1), TraceKind::kPartitionRevoke, 0, -1, -1, 1},
      {Time::ms(1), TraceKind::kCosProgram, 0, -1, -1, 1},   // shrink: ok
      {Time::ms(2), TraceKind::kCosProgram, 0, -1, -1, 4},   // regrow: bad
      {Time::ms(3), TraceKind::kPartitionRestore, 0, -1, -1, 4},
      {Time::ms(3), TraceKind::kCosProgram, 0, -1, -1, 4},   // restored: ok
  };
  const auto res = check_trace(events);
  EXPECT_EQ(res.total_violations, 1u);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].what.find("revoked"), std::string::npos);
}

TEST(TraceCheck, RevocationWindowsCannotNestOrDangle) {
  const std::vector<TraceEvent> nested = {
      {Time::ms(1), TraceKind::kPartitionRevoke, 0, -1, -1, 1},
      {Time::ms(2), TraceKind::kPartitionRevoke, 0, -1, -1, 1},
  };
  EXPECT_FALSE(check_trace(nested).ok());
  const std::vector<TraceEvent> dangling = {
      {Time::ms(1), TraceKind::kPartitionRestore, 0, -1, -1, 4},
  };
  EXPECT_FALSE(check_trace(dangling).ok());
}

TEST(TraceCheck, DeclaredVcpuOverrunLicensesTheOverdraw) {
  TraceCheckConfig cfg;
  cfg.vcpu_budgets = {Time::ms(4)};
  // 6 ms of a 4 ms budget, but the simulator declared the overrun (a
  // non-strict enforcement run): no violation until the next period.
  const std::vector<TraceEvent> declared = {
      {Time::zero(), TraceKind::kVcpuRelease, 0, 0},
      {Time::zero(), TraceKind::kVcpuSchedule, 0, 0},
      {Time::ms(5), TraceKind::kVcpuBudgetOverrun, 0, 0},
      {Time::ms(6), TraceKind::kVcpuDeschedule, 0, 0},
  };
  EXPECT_TRUE(check_trace(declared, cfg).ok());
  // The license expires at the next replenishment.
  std::vector<TraceEvent> next_period = declared;
  next_period.push_back({Time::ms(10), TraceKind::kVcpuRelease, 0, 0});
  next_period.push_back({Time::ms(10), TraceKind::kVcpuSchedule, 0, 0});
  next_period.push_back({Time::ms(16), TraceKind::kVcpuDeschedule, 0, 0});
  const auto res = check_trace(next_period, cfg);
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.violations[0].what.find("overdrew"), std::string::npos);
}

TEST(TraceCheck, ViolationReportingIsCapped) {
  TraceCheckConfig cfg;
  cfg.max_violations = 3;
  std::vector<TraceEvent> events;
  for (int i = 0; i < 10; ++i)
    events.push_back({Time::us(i), TraceKind::kJobComplete, 0, 0, i, 0});
  const auto res = check_trace(events, cfg);
  EXPECT_EQ(res.total_violations, 10u);
  EXPECT_EQ(res.violations.size(), 3u);
}

// --------------------------------------------- end to end with the sim ----

sim::SimConfig two_server_config() {
  sim::SimConfig cfg;
  cfg.num_cores = 1;
  cfg.capture_trace = true;
  sim::SimVcpuSpec v0;
  v0.period = Time::ms(10);
  v0.budget = Time::ms(4);
  sim::SimVcpuSpec v1 = v0;
  v1.budget = Time::ms(5);
  cfg.vcpus = {v0, v1};
  sim::SimTaskSpec t0;
  t0.period = Time::ms(10);
  t0.cpu_work = Time::ms(3);
  t0.vcpu = 0;
  sim::SimTaskSpec t1;
  t1.period = Time::ms(20);
  t1.cpu_work = Time::ms(8);
  t1.vcpu = 1;
  cfg.tasks = {t0, t1};
  return cfg;
}

TEST(TraceCheck, SimulatorTraceSatisfiesAllInvariants) {
  auto cfg = two_server_config();
  sim::Simulation s(cfg);
  const auto horizon = Time::ms(200);
  s.run(horizon);
  const auto res = check_trace(s.trace().events(),
                               TraceCheckConfig::from_sim(cfg, horizon));
  EXPECT_TRUE(res.ok()) << (res.violations.empty()
                                ? res.summary()
                                : res.violations[0].what);
  EXPECT_GT(res.releases, 20u);
}

TEST(TraceCheck, RegulatedSimulatorTraceSatisfiesAllInvariants) {
  // Bandwidth-starved workload: dozens of throttle windows; the trace must
  // still show zero execution inside them.
  sim::SimConfig cfg;
  cfg.num_cores = 1;
  cfg.capture_trace = true;
  cfg.bw_regulation = true;
  cfg.bw_alloc = {2};
  cfg.regulation_period = Time::ms(1);
  cfg.requests_per_partition = 1000;
  sim::SimVcpuSpec v;
  v.period = Time::ms(100);
  v.budget = Time::ms(100);
  cfg.vcpus = {v};
  sim::SimTaskSpec t;
  t.period = Time::ms(100);
  t.cpu_work = Time::ms(5);
  t.mem_work_ref = Time::ms(15);
  t.mem_requests_ref = 200'000;
  cfg.tasks = {t};

  sim::Simulation s(cfg);
  const auto horizon = Time::ms(400);
  s.run(horizon);
  EXPECT_GT(s.stats().throttles, 50u);
  const auto res = check_trace(s.trace().events(),
                               TraceCheckConfig::from_sim(cfg, horizon));
  EXPECT_TRUE(res.ok()) << (res.violations.empty()
                                ? res.summary()
                                : res.violations[0].what);
}

TEST(TraceCheck, CorruptedSimulatorTraceIsRejected) {
  auto cfg = two_server_config();
  sim::Simulation s(cfg);
  s.run(Time::ms(100));
  auto events = s.trace().events();
  // Corrupt the trace: clone a schedule event onto an occupied core.
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == TraceKind::kVcpuSchedule) {
      TraceEvent dup = events[i];
      dup.vcpu = dup.vcpu == 0 ? 1 : 0;
      events.insert(events.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                    dup);
      break;
    }
  }
  EXPECT_FALSE(check_trace(events).ok());
}

TEST(Recorder, EndToEndWithSimulator) {
  auto cfg = two_server_config();
  MetricsRegistry reg;
  MetricsRecorder rec(reg);
  sim::Simulation s(cfg);
  s.set_observer(&rec);
  const auto horizon = Time::ms(200);
  s.run(horizon);
  rec.finalize(s.stats(), horizon);

  const auto* ratios = reg.find_histogram("task.0.response_ratio");
  ASSERT_NE(ratios, nullptr);
  EXPECT_EQ(ratios->count(), s.stats().per_task[0].completed);
  EXPECT_GT(ratios->max(), 0.0);
  EXPECT_LE(ratios->max(), 1.0);  // schedulable setup: no overruns
  ASSERT_NE(reg.find_gauge("core.0.busy_fraction"), nullptr);
  EXPECT_NEAR(reg.find_gauge("core.0.busy_fraction")->value(),
              s.stats().core_busy_fraction[0], 1e-12);
  EXPECT_EQ(reg.find_counter("sim.jobs_completed")->value(),
            s.stats().jobs_completed);

  std::ostringstream report;
  write_report(report, cfg, s.stats(), reg, horizon);
  EXPECT_NE(report.str().find("## Cores"), std::string::npos);
  EXPECT_NE(report.str().find("## Tasks"), std::string::npos);
  std::ostringstream dump;
  write_metrics_dump(dump, reg);
  EXPECT_NE(dump.str().find("sim.jobs_completed"), std::string::npos);
}

TEST(MetricsDump, HistogramsEmitQuantileCompanionLines) {
  MetricsRegistry reg;
  auto& h = reg.histogram("lat", {1.0, 2.0, 4.0});
  for (int i = 0; i < 90; ++i) h.add(0.5);
  for (int i = 0; i < 10; ++i) h.add(3.0);
  std::ostringstream dump;
  write_metrics_dump(dump, reg);
  const std::string out = dump.str();
  EXPECT_NE(out.find("lat.p50 1.000000"), std::string::npos) << out;
  EXPECT_NE(out.find("lat.p95 4.000000"), std::string::npos) << out;
  EXPECT_NE(out.find("lat.p99 4.000000"), std::string::npos) << out;
}

// -------------------------------------------- profiler merge & reports ----

/// Hand-built per-thread tree: root -> {phases...} with given counts and
/// per-phase total nanoseconds.
std::shared_ptr<util::PhaseNode> thread_tree(
    const std::vector<std::pair<std::string, std::int64_t>>& phases) {
  auto root = std::make_shared<util::PhaseNode>();
  for (const auto& [name, ns] : phases) {
    auto* n = root->child(name);
    ++n->count;
    n->total_ns += ns;
  }
  return root;
}

TEST(ProfilerMerge, StructureAndCountsAreOrderInvariant) {
  // Worker threads register trees in a nondeterministic order; the merged
  // result must not depend on it.
  const auto a = thread_tree({{"solve", 4'000'000}, {"generate", 1'000'000}});
  const auto b = thread_tree({{"solve", 6'000'000}});
  auto* deep = a->child("solve")->child("hv_alloc");
  deep->count = 4;
  deep->total_ns = 3'000'000;

  const auto ab = merge_trees({a, b});
  const auto ba = merge_trees({b, a});
  const auto fa = flatten_profile(ab);
  const auto fb = flatten_profile(ba);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].path, fb[i].path);
    EXPECT_EQ(fa[i].count, fb[i].count);
    EXPECT_DOUBLE_EQ(fa[i].total_sec, fb[i].total_sec);
  }
  // Children are name-sorted, counts and times sum across threads.
  ASSERT_EQ(fa.size(), 3u);
  EXPECT_EQ(fa[0].path, "generate");
  EXPECT_EQ(fa[1].path, "solve");
  EXPECT_EQ(fa[2].path, "solve/hv_alloc");
  EXPECT_EQ(fa[1].count, 2u);  // one "solve" entry on each thread
  EXPECT_DOUBLE_EQ(fa[1].total_sec, 0.010);
  EXPECT_EQ(fa[2].count, 4u);
}

TEST(ProfilerMerge, SelfTimeIsTotalMinusChildren) {
  const auto t = thread_tree({{"outer", 10'000'000}});
  auto* inner = t->child("outer")->child("inner");
  inner->count = 2;
  inner->total_ns = 4'000'000;
  const auto merged = merge_trees({t});
  ASSERT_EQ(merged.children.size(), 1u);
  const auto& outer = merged.children[0];
  EXPECT_DOUBLE_EQ(outer.total_sec, 0.010);
  EXPECT_DOUBLE_EQ(outer.self_sec, 0.006);
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_DOUBLE_EQ(outer.children[0].self_sec, 0.004);
}

TEST(ProfilerMerge, WriteProfileRendersIndentedTable) {
  const auto t = thread_tree({{"experiment", 2'000'000}});
  t->child("experiment")->child("sweep")->count = 1;
  t->child("experiment")->child("sweep")->total_ns = 1'000'000;
  std::ostringstream os;
  write_profile(os, merge_trees({t}));
  const std::string out = os.str();
  EXPECT_NE(out.find("experiment"), std::string::npos);
  EXPECT_NE(out.find("  sweep"), std::string::npos);  // indented child
  EXPECT_NE(out.find("0.0020"), std::string::npos);
  EXPECT_NE(out.find("0.0010"), std::string::npos);
}

/// A fully-populated report with values that survive %.9g round-trips.
BenchReport sample_report() {
  BenchReport r;
  r.name = "unit";
  r.git_rev = "deadbeef0123";
  r.config["platform"] = "A";
  r.config["note"] = "quotes \" and \\ and\nnewlines";
  r.counters["dbf_evaluations"] = 8192;
  r.counters["vm_alloc_seconds"] = 0.125;
  r.counters["budget_cache_hits"] = 512;
  PhaseStats solve;
  solve.name = "solve";
  solve.count = 9;
  solve.total_sec = 1.5;
  solve.self_sec = 0.25;
  PhaseStats inner;
  inner.name = "hv_alloc";
  inner.count = 9;
  inner.total_sec = 1.25;
  inner.self_sec = 1.25;
  solve.children.push_back(inner);
  r.phases.children.push_back(solve);
  HistogramSummary h;
  h.count = 100;
  h.mean = 0.5;
  h.min = 0.125;
  h.max = 2.0;
  h.p50 = 0.5;
  h.p90 = 1.0;
  h.p95 = 1.5;
  h.p99 = 2.0;
  r.histograms["solve_seconds"] = h;
  r.pool.workers.push_back({40, 3, 0.25, 17});
  r.pool.workers.push_back({38, 5, 0.5, 12});
  return r;
}

TEST(BenchReport, JsonRoundTrip) {
  const auto r = sample_report();
  std::stringstream ss;
  write_bench_report(ss, r);
  const auto back = read_bench_report(ss);
  EXPECT_EQ(back.schema, r.schema);
  EXPECT_EQ(back.name, r.name);
  EXPECT_EQ(back.git_rev, r.git_rev);
  EXPECT_EQ(back.config, r.config);
  EXPECT_EQ(back.counters, r.counters);
  ASSERT_EQ(back.phases.children.size(), 1u);
  EXPECT_EQ(back.phases.children[0].name, "solve");
  EXPECT_EQ(back.phases.children[0].count, 9u);
  EXPECT_DOUBLE_EQ(back.phases.children[0].total_sec, 1.5);
  ASSERT_EQ(back.phases.children[0].children.size(), 1u);
  EXPECT_EQ(back.phases.children[0].children[0].name, "hv_alloc");
  ASSERT_EQ(back.histograms.count("solve_seconds"), 1u);
  const auto& h = back.histograms.at("solve_seconds");
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.p95, 1.5);
  ASSERT_EQ(back.pool.workers.size(), 2u);
  EXPECT_EQ(back.pool.workers[1].executed, 38u);
  EXPECT_DOUBLE_EQ(back.pool.workers[1].idle_sec, 0.5);
  EXPECT_EQ(back.pool.workers[0].max_queue, 17u);
}

TEST(BenchReport, ReaderRejectsGarbageAndForeignSchemas) {
  std::stringstream garbage("this is not json");
  EXPECT_THROW(read_bench_report(garbage), util::Error);
  std::stringstream wrong("{\"schema\": \"somebody-elses/9\"}");
  EXPECT_THROW(read_bench_report(wrong), util::Error);
  std::stringstream trailing("{\"schema\": \"vc2m-bench-report/1\"} junk");
  EXPECT_THROW(read_bench_report(trailing), util::Error);
}

TEST(BenchReport, ReaderRejectsDuplicateKeysWithFilePosition) {
  // A truncated-then-rewritten report would silently shadow one value under
  // a lenient parser; the reader must instead name the second occurrence.
  const std::string doc =
      "{\"schema\": \"vc2m-bench-report/1\", \"name\": \"a\", "
      "\"name\": \"b\"}";
  std::stringstream ss(doc);
  try {
    read_bench_report(ss);
    FAIL() << "duplicate key accepted";
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate key 'name'"), std::string::npos) << what;
    const std::size_t second = doc.find("\"name\": \"b\"");
    EXPECT_NE(what.find("offset " + std::to_string(second)),
              std::string::npos)
        << what;
  }
}

TEST(BenchReport, ReaderRejectsNonFiniteNumbersWithFilePosition) {
  for (const char* bad : {"NaN", "Infinity", "-Infinity", "1e999"}) {
    const std::string doc =
        std::string("{\"schema\": \"vc2m-bench-report/1\", \"x\": ") + bad +
        "}";
    std::stringstream ss(doc);
    try {
      read_bench_report(ss);
      FAIL() << "accepted " << bad;
    } catch (const util::Error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("non-finite number"), std::string::npos)
          << bad << ": " << what;
      EXPECT_NE(what.find("offset " + std::to_string(doc.find(bad))),
                std::string::npos)
          << bad << ": " << what;
    }
  }
}

TEST(BenchReport, SummarisesLogHistogramQuantiles) {
  util::LogHistogram lh;
  for (int i = 1; i <= 1000; ++i) lh.add(static_cast<double>(i));
  const auto s = HistogramSummary::of(lh);
  EXPECT_EQ(s.count, 1000u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1000.0);
  // Log-bucketed estimates: within one bucket ratio of the exact ranks.
  EXPECT_NEAR(s.p50, 500.0, 500.0 * (lh.bucket_ratio() - 1 + 1e-9));
  EXPECT_NEAR(s.p99, 990.0, 990.0 * (lh.bucket_ratio() - 1 + 1e-9));
}

// ----------------------------------------------------------- perfdiff ----

TEST(PerfDiff, SelfCompareIsClean) {
  const auto r = sample_report();
  const auto d = diff_reports(r, r);
  EXPECT_FALSE(d.has_regression());
  EXPECT_TRUE(d.notes.empty());
  EXPECT_FALSE(d.entries.empty());
  for (const auto& e : d.entries) {
    EXPECT_FALSE(e.regression) << e.kind << ":" << e.key;
    EXPECT_DOUBLE_EQ(e.base, e.current) << e.kind << ":" << e.key;
  }
}

TEST(PerfDiff, DoubledPhaseTimeTripsTheGate) {
  const auto base = sample_report();
  auto cur = base;
  cur.phases.children[0].total_sec *= 2;  // "solve": 1.5 s -> 3.0 s
  const auto d = diff_reports(base, cur);
  EXPECT_TRUE(d.has_regression());
  bool flagged = false;
  for (const auto& e : d.entries)
    if (e.kind == "phase" && e.key == "solve") {
      flagged = true;
      EXPECT_TRUE(e.regression);
      EXPECT_DOUBLE_EQ(e.base, 1.5);
      EXPECT_DOUBLE_EQ(e.current, 3.0);
    }
  EXPECT_TRUE(flagged);
  std::ostringstream os;
  write_perfdiff(os, d);
  EXPECT_NE(os.str().find("REGRESS"), std::string::npos);
  // A generous threshold lets the same pair through.
  PerfDiffOptions lax;
  lax.max_regress = 1.5;
  EXPECT_FALSE(diff_reports(base, cur, lax).has_regression());
}

TEST(PerfDiff, HistogramP95GatesButMeanIsInformational) {
  const auto base = sample_report();
  auto cur = base;
  cur.histograms["solve_seconds"].mean *= 10;
  EXPECT_FALSE(diff_reports(base, cur).has_regression());
  cur = base;
  cur.histograms["solve_seconds"].p95 *= 2;
  EXPECT_TRUE(diff_reports(base, cur).has_regression());
}

TEST(PerfDiff, ImprovementsExemptCountersAndPoolNeverTrip) {
  const auto base = sample_report();
  auto cur = base;
  cur.phases.children[0].total_sec /= 2;        // faster is fine
  cur.counters["budget_cache_hits"] = 1;        // more-is-better: exempt
  cur.pool.workers[0].steals += 1000;           // telemetry: informational
  cur.pool.workers[0].executed += 1000;
  EXPECT_FALSE(diff_reports(base, cur).has_regression());
}

TEST(PerfDiff, TinyAbsoluteDeltasAreNoise) {
  // +50% on a 20 µs phase is under the 100 µs absolute floor: not a
  // regression, however large the relative growth.
  BenchReport base;
  PhaseStats p;
  p.name = "blip";
  p.count = 1;
  p.total_sec = 2e-5;
  p.self_sec = 2e-5;
  base.phases.children.push_back(p);
  auto cur = base;
  cur.phases.children[0].total_sec = 3e-5;
  EXPECT_FALSE(diff_reports(base, cur).has_regression());
}

TEST(PerfDiff, OneSidedKeysBecomeNotes) {
  const auto base = sample_report();
  auto cur = base;
  cur.counters.erase("dbf_evaluations");
  cur.counters["brand_new_counter"] = 7;
  const auto d = diff_reports(base, cur);
  EXPECT_FALSE(d.has_regression());
  EXPECT_FALSE(d.notes.empty());
  bool missing = false, fresh = false;
  for (const auto& n : d.notes) {
    if (n.find("dbf_evaluations") != std::string::npos) missing = true;
    if (n.find("brand_new_counter") != std::string::npos) fresh = true;
  }
  EXPECT_TRUE(missing);
  EXPECT_TRUE(fresh);
}

// ------------------------------------------------- pool counter tracks ----

TEST(TraceExport, CounterTracksRenderAsTelemetryProcess) {
  TraceMeta meta;
  meta.counters.push_back(
      {"pool/executed", {{Time::ms(1), 5.0}, {Time::ms(2), 9.0}}});
  meta.counters.push_back({"pool/pending", {{Time::ms(1), 3.0}}});
  std::ostringstream os;
  write_chrome_trace(os, {}, meta);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"name\":\"process_name\",\"args\":{\"name\":"
                     "\"telemetry\"}"),
            std::string::npos);
  EXPECT_NE(out.find("{\"ph\":\"C\",\"pid\":3,\"tid\":0,\"ts\":1000.000,"
                     "\"name\":\"pool/executed\",\"args\":{\"value\":5.000}}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"value\":9.000"), std::string::npos);
  EXPECT_NE(out.find("\"name\":\"pool/pending\""), std::string::npos);
  // Empty tracks emit nothing: the golden serialisation stays untouched.
  TraceMeta with_empty;
  with_empty.counters.push_back({"pool/executed", {}});
  std::ostringstream plain, empty_tracks;
  write_chrome_trace(plain, {});
  write_chrome_trace(empty_tracks, {}, with_empty);
  EXPECT_EQ(plain.str(), empty_tracks.str());
}

}  // namespace
}  // namespace vc2m::obs
