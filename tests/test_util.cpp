#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "util/error.h"
#include "util/log_histogram.h"
#include "util/phase_profiler.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/time.h"

namespace vc2m::util {
namespace {

// ---------------------------------------------------------------- Time ----

TEST(Time, NamedConstructorsScale) {
  EXPECT_EQ(Time::ns(1).raw_ns(), 1);
  EXPECT_EQ(Time::us(1).raw_ns(), 1'000);
  EXPECT_EQ(Time::ms(1).raw_ns(), 1'000'000);
  EXPECT_EQ(Time::sec(1).raw_ns(), 1'000'000'000);
}

TEST(Time, ArithmeticAndComparison) {
  const Time a = Time::ms(10);
  const Time b = Time::ms(3);
  EXPECT_EQ((a + b).raw_ns(), Time::ms(13).raw_ns());
  EXPECT_EQ((a - b).raw_ns(), Time::ms(7).raw_ns());
  EXPECT_EQ((a * 3).raw_ns(), Time::ms(30).raw_ns());
  EXPECT_EQ(a / b, 3);
  EXPECT_EQ((a % b).raw_ns(), Time::ms(1).raw_ns());
  EXPECT_LT(b, a);
  EXPECT_EQ(min(a, b), b);
  EXPECT_EQ(max(a, b), a);
}

TEST(Time, RatioIsExactForRepresentableFractions) {
  EXPECT_DOUBLE_EQ(Time::ms(1).ratio(Time::ms(10)), 0.1);
  EXPECT_DOUBLE_EQ(Time::ms(55).ratio(Time::ms(10)), 5.5);
}

TEST(Time, ConversionHelpers) {
  EXPECT_DOUBLE_EQ(Time::us(1500).to_ms(), 1.5);
  EXPECT_DOUBLE_EQ(Time::ns(2500).to_us(), 2.5);
  EXPECT_DOUBLE_EQ(Time::ms(1500).to_sec(), 1.5);
}

TEST(Time, LcmOfHarmonicPairIsLargerPeriod) {
  EXPECT_EQ(lcm(Time::ms(100), Time::ms(400)), Time::ms(400));
  EXPECT_EQ(lcm(Time::ms(6), Time::ms(4)), Time::ms(12));
}

TEST(Time, LcmOverflowFailsLoudlyInsteadOfWrapping) {
  // 2^62 ns and a coprime 3 ns: the true LCM (3·2^62) exceeds 64-bit
  // nanoseconds. The old implementation wrapped silently into a bogus
  // small horizon; now the product check must throw.
  const Time big = Time::ns(std::int64_t{1} << 62);
  EXPECT_THROW(lcm(big, Time::ns(3)), Error);
  EXPECT_THROW(lcm(Time::ns(3), big), Error);
  // The same magnitude with a harmonic partner stays exact and in range.
  EXPECT_EQ(lcm(big, Time::ns(2)), big);
}

TEST(Time, LcmRejectsNonPositivePeriods) {
  EXPECT_THROW(lcm(Time::zero(), Time::ms(1)), Error);
  EXPECT_THROW(lcm(Time::ms(1), Time::ns(-5)), Error);
}

TEST(Time, RoundUp) {
  EXPECT_EQ(round_up(Time::ns(10), Time::ns(4)), Time::ns(12));
  EXPECT_EQ(round_up(Time::ns(12), Time::ns(4)), Time::ns(12));
  EXPECT_EQ(round_up(Time::zero(), Time::ns(4)), Time::zero());
}

TEST(Time, HarmonicPair) {
  EXPECT_TRUE(harmonic_pair(Time::ms(100), Time::ms(200)));
  EXPECT_TRUE(harmonic_pair(Time::ms(200), Time::ms(100)));
  EXPECT_TRUE(harmonic_pair(Time::ms(100), Time::ms(100)));
  EXPECT_FALSE(harmonic_pair(Time::ms(100), Time::ms(150)));
  EXPECT_FALSE(harmonic_pair(Time::zero(), Time::ms(100)));
}

TEST(Time, MaxActsAsNever) {
  EXPECT_GT(Time::max(), Time::sec(1'000'000));
}

// ----------------------------------------------------------------- Rng ----

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b()) ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double x = rng.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformIntCoversFullInclusiveRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2'000; ++i) {
    const std::int64_t x = rng.uniform_int(3, 7);
    EXPECT_GE(x, 3);
    EXPECT_LE(x, 7);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100'000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform(10.0, 20.0);
  EXPECT_NEAR(sum / kN, 15.0, 0.05);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(3);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(9);
  Rng child = a.fork();
  // The child must not replay the parent's stream.
  Rng parent_copy(9);
  (void)parent_copy();  // parent consumed one draw for the fork
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (child() == parent_copy()) ? 1 : 0;
  EXPECT_LT(equal, 2);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

// --------------------------------------------------------------- stats ----

TEST(SampleStats, MinMeanMax) {
  SampleStats s;
  for (const double x : {4.0, 1.0, 7.0, 2.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.count(), 4u);
}

TEST(SampleStats, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
}

TEST(SampleStats, EmptyThrows) {
  SampleStats s;
  EXPECT_THROW(s.min(), Error);
  EXPECT_THROW(s.mean(), Error);
}

TEST(SampleStats, AggregatesSurvivePercentileSortAndLaterAdds) {
  // min/max/mean come from running accumulators; a percentile query sorts
  // the sample buffer in place, and additions after that must keep every
  // aggregate consistent with the full sample set.
  SampleStats s;
  for (const double x : {5.0, 2.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 5.0);  // forces the sort
  s.add(1.0);
  s.add(12.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 12.0);
  EXPECT_DOUBLE_EQ(s.mean(), 29.0 / 5.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 12.0);
  EXPECT_DOUBLE_EQ(s.p(0.0), 1.0);  // p() shorthand
}

TEST(OnlineStats, MatchesBatchComputation) {
  OnlineStats o;
  SampleStats s;
  Rng rng(13);
  for (int i = 0; i < 1'000; ++i) {
    const double x = rng.uniform(-5, 5);
    o.add(x);
    s.add(x);
  }
  EXPECT_NEAR(o.mean(), s.mean(), 1e-9);
  EXPECT_NEAR(o.stddev(), s.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(o.min(), s.min());
  EXPECT_DOUBLE_EQ(o.max(), s.max());
}

TEST(SampleStats, StddevCacheInvalidatedByLaterAdds) {
  // stddev() caches its two-pass scan; additions must invalidate the cache
  // so later queries see the full sample set, not the stale value.
  SampleStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // cached path
  s.add(5.0);  // mean stays 5, spread shrinks
  const double m = s.mean();
  double sq = 0;
  for (const double x : s.samples()) sq += (x - m) * (x - m);
  EXPECT_DOUBLE_EQ(s.stddev(),
                   std::sqrt(sq / static_cast<double>(s.count())));
  EXPECT_LT(s.stddev(), 2.0);
}

TEST(SampleStats, StddevMatchesWelfordOnOffsetData) {
  // Accuracy check for the naive two-pass stddev against Welford on data
  // with a large common offset — the regime where a single-pass
  // sum-of-squares formula catastrophically cancels. Both implementations
  // here must agree to many digits.
  SampleStats naive;
  OnlineStats welford;
  Rng rng(99);
  for (int i = 0; i < 10'000; ++i) {
    const double x = 1e9 + rng.uniform(0, 1);  // stddev ~0.2887
    naive.add(x);
    welford.add(x);
  }
  EXPECT_NEAR(naive.stddev(), welford.stddev(), 1e-6);
  EXPECT_NEAR(naive.stddev(), 1.0 / std::sqrt(12.0), 5e-3);
}

// ------------------------------------------------------- log histogram ----

TEST(LogHistogram, QuantileWithinBucketRatioOfExactRank) {
  // The histogram promises any quantile is within one bucket ratio of a
  // true sample at that rank. Compare against the exact nearest-rank
  // statistic over the same samples.
  LogHistogram h;
  std::vector<double> v;
  Rng rng(7);
  for (int i = 0; i < 20'000; ++i) {
    const double x = std::exp(rng.uniform(-10, 3));  // ~45 µs .. ~20 s
    h.add(x);
    v.push_back(x);
  }
  std::sort(v.begin(), v.end());
  const double tol = h.bucket_ratio();  // 2^(1/32) ≈ 1.0219
  for (const double q : {0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999}) {
    const auto rank =
        static_cast<std::size_t>(q * static_cast<double>(v.size() - 1));
    const double exact = v[rank];
    const double est = h.quantile(q);
    EXPECT_LE(est, exact * tol) << "q=" << q;
    EXPECT_GE(est, exact / tol) << "q=" << q;
  }
  // The extreme quantiles are bucket-midpoint estimates too: within one
  // bucket ratio of the observed extremes, never outside [min, max].
  EXPECT_LE(h.quantile(0.0), h.min() * tol);
  EXPECT_GE(h.quantile(0.0), h.min());
  EXPECT_LE(h.quantile(1.0), h.max());
  EXPECT_GE(h.quantile(1.0), h.max() / tol);
}

TEST(LogHistogram, MergeIsAssociativeAndCommutative) {
  Rng rng(21);
  LogHistogram parts[3];
  for (int p = 0; p < 3; ++p)
    for (int i = 0; i < 500; ++i)
      parts[p].add(std::exp(rng.uniform(-8, 2)));

  LogHistogram ab_c = parts[0];   // (a + b) + c
  ab_c.merge(parts[1]);
  ab_c.merge(parts[2]);
  LogHistogram a_bc = parts[1];   // a + (b + c), built right-to-left
  a_bc.merge(parts[2]);
  LogHistogram left = parts[0];
  left.merge(a_bc);
  LogHistogram cba = parts[2];    // reversed order
  cba.merge(parts[1]);
  cba.merge(parts[0]);

  for (const auto* h : {&left, &cba}) {
    EXPECT_EQ(h->count(), ab_c.count());
    EXPECT_EQ(h->bucket_counts(), ab_c.bucket_counts());
    EXPECT_DOUBLE_EQ(h->min(), ab_c.min());
    EXPECT_DOUBLE_EQ(h->max(), ab_c.max());
    EXPECT_NEAR(h->sum(), ab_c.sum(), 1e-9 * std::abs(ab_c.sum()));
    EXPECT_DOUBLE_EQ(h->quantile(0.5), ab_c.quantile(0.5));
  }
}

TEST(LogHistogram, NonpositiveSamplesReportAsObservedMinimum) {
  LogHistogram h;
  h.add(-1.0);
  h.add(0.0);
  h.add(2.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.nonpositive_count(), 2u);
  EXPECT_DOUBLE_EQ(h.min(), -1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), -1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 2.0);
}

TEST(LogHistogram, MergeRejectsMismatchedLayouts) {
  LogHistogram a;
  LogHistogram b(LogHistogram::Config{6, -30, 34});
  b.add(1.0);
  EXPECT_THROW(a.merge(b), Error);
}

TEST(LogHistogram, EmptyAndWeightedAdds) {
  LogHistogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  h.add(3.0, 10);
  h.add(3.0, 0);  // zero weight is a no-op
  EXPECT_EQ(h.count(), 10u);
  EXPECT_DOUBLE_EQ(h.mean(), 3.0);
}

// ------------------------------------------------------ phase profiler ----

TEST(PhaseProfiler, DisabledSpansRecordNothing) {
  PhaseProfiler::reset();
  PhaseProfiler::set_enabled(false);
  { VC2M_PROFILE_PHASE("should_not_appear"); }
  EXPECT_TRUE(PhaseProfiler::trees().empty());
}

TEST(PhaseProfiler, SpansNestIntoACallTree) {
  PhaseProfiler::reset();
  PhaseProfiler::set_enabled(true);
  for (int i = 0; i < 3; ++i) {
    VC2M_PROFILE_PHASE("outer");
    { VC2M_PROFILE_PHASE("inner"); }
    { VC2M_PROFILE_PHASE("inner"); }
  }
  PhaseProfiler::set_enabled(false);
  const auto trees = PhaseProfiler::trees();
  ASSERT_EQ(trees.size(), 1u);  // one thread registered
  const auto& root = *trees[0];
  ASSERT_EQ(root.children.size(), 1u);
  const auto& outer = *root.children.begin()->second;
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.count, 3u);
  ASSERT_EQ(outer.children.size(), 1u);
  const auto& inner = *outer.children.begin()->second;
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(inner.count, 6u);
  EXPECT_GE(outer.total_ns, inner.total_ns);
  PhaseProfiler::reset();
}

TEST(PhaseProfiler, ResetDropsRegisteredTrees) {
  PhaseProfiler::reset();
  PhaseProfiler::set_enabled(true);
  { VC2M_PROFILE_PHASE("ephemeral"); }
  EXPECT_EQ(PhaseProfiler::trees().size(), 1u);
  PhaseProfiler::set_enabled(false);
  PhaseProfiler::reset();
  EXPECT_TRUE(PhaseProfiler::trees().empty());
  // A new span after reset re-registers the thread's tree.
  PhaseProfiler::set_enabled(true);
  { VC2M_PROFILE_PHASE("fresh"); }
  PhaseProfiler::set_enabled(false);
  const auto trees = PhaseProfiler::trees();
  ASSERT_EQ(trees.size(), 1u);
  EXPECT_EQ(trees[0]->children.count("fresh"), 1u);
  PhaseProfiler::reset();
}

// --------------------------------------------------------------- table ----

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add_row("alpha", 1.5);
  t.add_row("b", 22);
  std::ostringstream os;
  t.print(os, "demo");
  const std::string out = os.str();
  EXPECT_NE(out.find("demo"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("1.500"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row("only-one"), Error);
  EXPECT_THROW(t.add_row_vec({"x", "y", "z"}), Error);
}

TEST(Table, RespectsPrecision) {
  Table t({"v"});
  t.set_precision(1);
  t.add_row(3.14159);
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.1"), std::string::npos);
  EXPECT_EQ(os.str().find("3.14"), std::string::npos);
}

// --------------------------------------------------------------- error ----

TEST(Check, ThrowsWithLocation) {
  try {
    VC2M_CHECK_MSG(1 == 2, "impossible " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("impossible 42"), std::string::npos);
  }
}

}  // namespace
}  // namespace vc2m::util
