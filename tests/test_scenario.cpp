// Scenario engine suite: the strict loader (unknown keys, wrong types,
// duplicate keys, non-finite numbers, truncation — each rejected with a
// byte offset), the shipped corpus (round-trips, pinned expectations hold),
// digest compatibility with the frozen golden format, and the matrix runner
// (bit-identical reports at any --jobs, disjoint/exhaustive shards whose
// merge equals the unsharded run, resume-from-checkpoint identity), plus
// the output-path regression tests for every artifact writer.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "golden_util.h"
#include "obs/trace_export.h"
#include "scenario/digest.h"
#include "scenario/report.h"
#include "scenario/runner.h"
#include "scenario/scenario.h"
#include "util/error.h"
#include "util/file.h"
#include "util/rng.h"

#ifndef VC2M_SCENARIO_DIR
#error "VC2M_SCENARIO_DIR must point at the shipped scenarios/ corpus"
#endif

namespace vc2m {
namespace {

const char* const kCorpusDir = VC2M_SCENARIO_DIR;

std::string minimal_scenario() {
  return R"({
  "schema": "vc2m-scenario/1",
  "name": "minimal",
  "workload": { "util": 0.5 },
  "expect": { "verdict": "schedulable" }
})";
}

/// Expected message fragment for the offset of `needle` in `text`.
std::string at_offset_of(const std::string& text, const std::string& needle) {
  const auto pos = text.find(needle);
  EXPECT_NE(pos, std::string::npos) << needle;
  return "at offset " + std::to_string(pos);
}

std::string error_of(const std::string& text) {
  try {
    (void)scenario::load_scenario(text, "doc");
  } catch (const util::Error& e) {
    return e.what();
  }
  ADD_FAILURE() << "expected util::Error for: " << text;
  return "";
}

// ---------------------------------------------------------------------------
// Loader: defaults and strictness

TEST(ScenarioLoader, MinimalScenarioGetsDocumentedDefaults) {
  const auto sc = scenario::load_scenario(minimal_scenario(), "doc");
  EXPECT_EQ(sc.name, "minimal");
  EXPECT_EQ(sc.platform, "A");
  EXPECT_EQ(sc.solution, "flat");
  EXPECT_EQ(sc.seed, 42u);
  EXPECT_EQ(sc.policy, "strict");
  EXPECT_EQ(sc.workload.kind, scenario::WorkloadSpec::Kind::kGenerate);
  EXPECT_EQ(sc.workload.vms, 1);
  EXPECT_FALSE(sc.simulate.has_value());
  EXPECT_TRUE(sc.expect.schedulable);
  EXPECT_TRUE(sc.expect.digest.empty());
}

TEST(ScenarioLoader, UnknownTopLevelKeyIsRejectedWithItsByteOffset) {
  std::string text = minimal_scenario();
  text.insert(text.rfind('}'), R"(, "bogus": 1)");
  const std::string err = error_of(text);
  EXPECT_NE(err.find("unknown key 'bogus'"), std::string::npos) << err;
  EXPECT_NE(err.find(at_offset_of(text, "\"bogus\"")), std::string::npos)
      << err;
}

TEST(ScenarioLoader, UnknownNestedKeyIsRejectedWithItsByteOffset) {
  std::string text = R"({
  "schema": "vc2m-scenario/1",
  "name": "x",
  "workload": { "util": 0.5, "tasks": 9 },
  "expect": { "verdict": "schedulable" }
})";
  const std::string err = error_of(text);
  EXPECT_NE(err.find("unknown key 'tasks'"), std::string::npos) << err;
  EXPECT_NE(err.find(at_offset_of(text, "\"tasks\"")), std::string::npos)
      << err;
}

TEST(ScenarioLoader, WrongTypeIsRejectedWithTheValueOffset) {
  std::string text = R"({
  "schema": "vc2m-scenario/1",
  "name": "x",
  "platform": 4,
  "workload": { "util": 0.5 },
  "expect": { "verdict": "schedulable" }
})";
  const std::string err = error_of(text);
  EXPECT_NE(err.find("'platform' must be a string"), std::string::npos)
      << err;
  EXPECT_NE(err.find(at_offset_of(text, "4,")), std::string::npos) << err;
}

TEST(ScenarioLoader, MalformedDocumentMatrixAllThrowCleanErrors) {
  const std::string base = minimal_scenario();
  std::vector<std::string> bad;
  // Truncations at every prefix length exercise the parser's EOF paths the
  // same way the test_workload CSV fuzz loop does for tasksets.
  for (std::size_t n = 0; n < base.size(); n += 7)
    bad.push_back(base.substr(0, n));
  bad.push_back("");
  bad.push_back("null");
  bad.push_back("[1,2,3]");
  bad.push_back("{\"schema\": \"vc2m-scenario/1\"}");       // missing keys
  bad.push_back("{\"schema\": \"vc2m-scenario/9\", \"name\": \"x\", "
                "\"workload\": {\"util\": 1}, "
                "\"expect\": {\"verdict\": \"schedulable\"}}");
  // Duplicate keys, non-finite numbers, wrong-typed fields.
  std::string dup = base;
  dup.insert(dup.rfind('}'), R"(, "seed": 1, "seed": 2)");
  bad.push_back(dup);
  bad.push_back("{\"schema\": \"vc2m-scenario/1\", \"name\": \"x\", "
                "\"workload\": {\"util\": NaN}, "
                "\"expect\": {\"verdict\": \"schedulable\"}}");
  bad.push_back("{\"schema\": \"vc2m-scenario/1\", \"name\": \"x\", "
                "\"workload\": {\"util\": Infinity}, "
                "\"expect\": {\"verdict\": \"schedulable\"}}");
  bad.push_back("{\"schema\": \"vc2m-scenario/1\", \"name\": \"x\", "
                "\"workload\": {\"util\": 1e999}, "
                "\"expect\": {\"verdict\": \"schedulable\"}}");
  bad.push_back("{\"schema\": \"vc2m-scenario/1\", \"name\": \"x\", "
                "\"workload\": \"generate\", "
                "\"expect\": {\"verdict\": \"schedulable\"}}");
  bad.push_back("{\"schema\": \"vc2m-scenario/1\", \"name\": \"x\", "
                "\"seed\": -3, \"workload\": {\"util\": 1}, "
                "\"expect\": {\"verdict\": \"schedulable\"}}");
  bad.push_back("{\"schema\": \"vc2m-scenario/1\", \"name\": \"x\", "
                "\"seed\": 1.5, \"workload\": {\"util\": 1}, "
                "\"expect\": {\"verdict\": \"schedulable\"}}");
  bad.push_back("{\"schema\": \"vc2m-scenario/1\", \"name\": \"UPPER\", "
                "\"workload\": {\"util\": 1}, "
                "\"expect\": {\"verdict\": \"schedulable\"}}");
  // Integer fields outside their domain caps, including values past
  // INT_MAX that would wrap into range if narrowed before bound-checking.
  bad.push_back("{\"schema\": \"vc2m-scenario/1\", \"name\": \"x\", "
                "\"workload\": {\"util\": 1, \"vms\": 0}, "
                "\"expect\": {\"verdict\": \"schedulable\"}}");
  bad.push_back("{\"schema\": \"vc2m-scenario/1\", \"name\": \"x\", "
                "\"workload\": {\"util\": 1, \"vms\": 4294967297}, "
                "\"expect\": {\"verdict\": \"schedulable\"}}");
  bad.push_back("{\"schema\": \"vc2m-scenario/1\", \"name\": \"x\", "
                "\"workload\": {\"util\": 1}, "
                "\"simulate\": {\"hyperperiods\": 4294967297}, "
                "\"expect\": {\"verdict\": \"schedulable\"}}");

  for (const auto& text : bad)
    EXPECT_THROW((void)scenario::load_scenario(text, "doc"), util::Error)
        << "accepted: " << text;
}

TEST(ScenarioLoader, IntegerFieldsPastTheDomainCapDoNotWrapIntoRange) {
  // 2^32 + 1 narrowed through a 32-bit cast would wrap to 1 and pass the
  // old >= 1 check; the loader must reject it at its byte offset instead.
  const std::string text = R"({
  "schema": "vc2m-scenario/1",
  "name": "x",
  "workload": { "util": 0.5, "vms": 4294967297 },
  "expect": { "verdict": "schedulable" }
})";
  const std::string err = error_of(text);
  EXPECT_NE(err.find("'vms' must be an integer in 1.."), std::string::npos)
      << err;
  EXPECT_NE(err.find(at_offset_of(text, "4294967297")), std::string::npos)
      << err;
}

TEST(ScenarioLoader, SemanticCrossFieldRulesFailAtLoadTime) {
  // simulate under an unschedulable expectation.
  EXPECT_NE(error_of(R"({"schema": "vc2m-scenario/1", "name": "x",
    "workload": {"util": 9.0}, "simulate": {},
    "expect": {"verdict": "unschedulable"}})")
                .find("requires an expected verdict of schedulable"),
            std::string::npos);
  // Runtime expectation without a simulate block.
  EXPECT_NE(error_of(R"({"schema": "vc2m-scenario/1", "name": "x",
    "workload": {"util": 0.5},
    "expect": {"verdict": "schedulable", "trace_clean": true}})")
                .find("no 'simulate' block"),
            std::string::npos);
  // min_faults_injected without a fault plan.
  EXPECT_NE(error_of(R"({"schema": "vc2m-scenario/1", "name": "x",
    "workload": {"util": 0.5}, "simulate": {},
    "expect": {"verdict": "schedulable", "min_faults_injected": 1}})")
                .find("requires a 'faults' plan"),
            std::string::npos);
  // rejection_constraints under a schedulable verdict.
  EXPECT_NE(error_of(R"({"schema": "vc2m-scenario/1", "name": "x",
    "workload": {"util": 0.5},
    "expect": {"verdict": "schedulable",
               "rejection_constraints": ["core_limit"]}})")
                .find("requires an unschedulable verdict"),
            std::string::npos);
  // Unknown constraint, solution, policy, platform, dist — each named.
  EXPECT_NE(error_of(R"({"schema": "vc2m-scenario/1", "name": "x",
    "workload": {"util": 9.0},
    "expect": {"verdict": "unschedulable",
               "rejection_constraints": ["gremlins"]}})")
                .find("unknown rejection constraint 'gremlins'"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"schema": "vc2m-scenario/1", "name": "x",
    "solution": "magic", "workload": {"util": 0.5},
    "expect": {"verdict": "schedulable"}})")
                .find("names no registered strategy"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"schema": "vc2m-scenario/1", "name": "x",
    "policy": "wish", "workload": {"util": 0.5},
    "expect": {"verdict": "schedulable"}})")
                .find("'policy' must be"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"schema": "vc2m-scenario/1", "name": "x",
    "platform": "D", "workload": {"util": 0.5},
    "expect": {"verdict": "schedulable"}})")
                .find("'platform' must be A, B, or C"),
            std::string::npos);
  EXPECT_NE(error_of(R"({"schema": "vc2m-scenario/1", "name": "x",
    "workload": {"util": 0.5, "dist": "spiky"},
    "expect": {"verdict": "schedulable"}})")
                .find("'dist' must be one of"),
            std::string::npos);
  // A fault spec is validated through the real sim/faults parser.
  EXPECT_NE(error_of(R"({"schema": "vc2m-scenario/1", "name": "x",
    "faults": "overrun-factor=0.5", "workload": {"util": 0.5},
    "expect": {"verdict": "schedulable"}})")
                .find("'faults':"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Shipped corpus

TEST(ScenarioCorpus, EveryShippedScenarioLoadsWithAPinnedDigest) {
  const auto files = scenario::discover_scenario_files(kCorpusDir);
  ASSERT_GE(files.size(), 10u) << "curated corpus shrank";
  std::set<std::string> names;
  for (const auto& file : files) {
    const auto sc = scenario::load_scenario_file(file);
    EXPECT_TRUE(names.insert(sc.name).second)
        << "duplicate scenario name " << sc.name;
    EXPECT_FALSE(sc.description.empty()) << file;
    EXPECT_FALSE(sc.expect.digest.empty())
        << file << ": shipped scenarios must pin their solve digest";
  }
}

TEST(ScenarioCorpus, CorpusCoversEveryEnforcementPolicyAndBothVerdicts) {
  const auto files = scenario::discover_scenario_files(kCorpusDir);
  std::set<std::string> policies;
  bool saw_unschedulable = false, saw_file_workload = false;
  std::set<std::string> constraints;
  for (const auto& file : files) {
    const auto sc = scenario::load_scenario_file(file);
    if (sc.simulate) policies.insert(sc.policy);
    if (!sc.expect.schedulable) saw_unschedulable = true;
    if (sc.workload.kind == scenario::WorkloadSpec::Kind::kFile)
      saw_file_workload = true;
    for (const auto& c : sc.expect.rejection_constraints)
      constraints.insert(c);
  }
  EXPECT_EQ(policies,
            (std::set<std::string>{"strict", "kill", "throttle", "degrade"}));
  EXPECT_TRUE(saw_unschedulable);
  EXPECT_TRUE(saw_file_workload);
  EXPECT_GE(constraints.size(), 3u)
      << "infeasible scenarios should pin distinct rejection constraints";
}

TEST(ScenarioCorpus, AllPinnedExpectationsHold) {
  for (const auto& file : scenario::discover_scenario_files(kCorpusDir)) {
    const auto rec = scenario::run_scenario(scenario::load_scenario_file(file));
    EXPECT_TRUE(rec.passed) << file << ": "
                            << (rec.failures.empty() ? "?"
                                                     : rec.failures.front());
    EXPECT_EQ(rec.scenario_hash.size(), 16u)
        << file << ": records must carry the scenario content hash";
  }
}

// ---------------------------------------------------------------------------
// Digest compatibility with the frozen golden format

TEST(ScenarioDigest, MatchesFrozenGoldenDigestOnTheGoldenGrid) {
  for (const auto& sc : golden::scenarios()) {
    const auto tasks = golden::scenario_taskset(sc);
    const auto platform = golden::platform_of(sc.platform);
    for (std::size_t si = 0; si < core::all_solutions().size(); ++si) {
      util::Rng rng(sc.seed * 1000 + si);
      const auto res =
          core::solve(core::all_solutions()[si], tasks, platform, {}, rng);
      EXPECT_EQ(scenario::solve_digest(res), golden::solve_digest(res));
    }
  }
}

// ---------------------------------------------------------------------------
// Matrix runner determinism

std::string serialized(const scenario::ScenarioReport& r) {
  std::ostringstream os;
  scenario::write_scenario_report(os, r);
  return os.str();
}

scenario::MatrixConfig corpus_config(int jobs) {
  scenario::MatrixConfig cfg;
  cfg.files = scenario::discover_scenario_files(kCorpusDir);
  cfg.corpus = "scenarios";
  cfg.jobs = jobs;
  return cfg;
}

TEST(ScenarioMatrix, ReportIsBitIdenticalAtJobs128) {
  const auto r1 = serialized(scenario::run_matrix(corpus_config(1)).report);
  const auto r2 = serialized(scenario::run_matrix(corpus_config(2)).report);
  const auto r8 = serialized(scenario::run_matrix(corpus_config(8)).report);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r8);
}

TEST(ScenarioMatrix, ShardsAreDisjointAndExhaustive) {
  for (const std::size_t total : {0u, 1u, 5u, 12u, 13u}) {
    for (const int count : {1, 2, 3, 8}) {
      std::set<std::size_t> seen;
      for (int index = 0; index < count; ++index) {
        for (const std::size_t i :
             scenario::shard_indices(total, index, count))
          EXPECT_TRUE(seen.insert(i).second)
              << "index " << i << " in two shards";
      }
      EXPECT_EQ(seen.size(), total) << "total " << total << "/" << count;
    }
  }
}

TEST(ScenarioMatrix, TwoWayShardedMergeEqualsUnshardedRun) {
  auto unsharded = scenario::run_matrix(corpus_config(4)).report;
  std::vector<scenario::ScenarioReport> shards;
  for (int index = 0; index < 2; ++index) {
    auto cfg = corpus_config(4);
    cfg.shard_index = index;
    cfg.shard_count = 2;
    shards.push_back(scenario::run_matrix(cfg).report);
  }
  EXPECT_EQ(serialized(scenario::merge_scenario_reports(shards)),
            serialized(unsharded));
}

TEST(ScenarioMatrix, ResumeFromCheckpointReproducesTheReportWithoutRerun) {
  const std::string ckpt =
      testing::TempDir() + "/vc2m_scenario_resume_ckpt.json";
  std::remove(ckpt.c_str());

  auto cold = corpus_config(2);
  cold.checkpoint = ckpt;
  const auto first = scenario::run_matrix(cold);
  EXPECT_EQ(first.resumed, 0);
  EXPECT_EQ(static_cast<std::size_t>(first.executed),
            first.report.records.size());

  auto warm = corpus_config(2);
  warm.checkpoint = ckpt;
  warm.resume = true;
  const auto second = scenario::run_matrix(warm);
  EXPECT_EQ(second.executed, 0) << "resume re-ran scenarios";
  EXPECT_EQ(static_cast<std::size_t>(second.resumed),
            second.report.records.size());
  EXPECT_EQ(serialized(second.report), serialized(first.report));
  EXPECT_FALSE(std::filesystem::exists(ckpt + ".tmp"))
      << "atomic checkpoint write leaked its temp file";
  std::remove(ckpt.c_str());
}

TEST(ScenarioMatrix, ResumeWithACorruptCheckpointColdStartsWithAWarning) {
  const std::string ckpt =
      testing::TempDir() + "/vc2m_scenario_torn_ckpt.json";
  {
    // A checkpoint torn mid-write — the crash case resume exists for.
    std::ofstream out(ckpt);
    out << "{\"schema\": \"vc2m-scenario-report/1\", \"git_re";
  }
  auto cfg = corpus_config(2);
  cfg.checkpoint = ckpt;
  cfg.resume = true;
  const auto result = scenario::run_matrix(cfg);
  EXPECT_EQ(result.resumed, 0);
  EXPECT_EQ(static_cast<std::size_t>(result.executed),
            result.report.records.size());
  ASSERT_EQ(result.warnings.size(), 1u);
  EXPECT_NE(result.warnings.front().find("cold start"), std::string::npos)
      << result.warnings.front();
  // The cold run rewrote the checkpoint; it must be readable again.
  const auto rewritten = scenario::read_scenario_report_file(ckpt);
  EXPECT_EQ(rewritten.records.size(), result.report.records.size());
  std::remove(ckpt.c_str());
}

TEST(ScenarioMatrix, ResumeRerunsAScenarioWhoseFileChangedSinceCheckpoint) {
  const std::string dir = testing::TempDir() + "/vc2m_scenario_stale";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const std::string file = dir + "/one.json";
  {
    std::ofstream out(file);
    out << minimal_scenario();
  }

  scenario::MatrixConfig cfg;
  cfg.files = {file};
  cfg.checkpoint = dir + "/ckpt.json";
  (void)scenario::run_matrix(cfg);

  // Same scenario name, same file name, different content: reusing the
  // checkpointed record would carry a verdict the file no longer pins.
  std::string changed = minimal_scenario();
  changed.replace(changed.find("0.5"), 3, "0.6");
  {
    std::ofstream out(file);
    out << changed;
  }
  auto warm = cfg;
  warm.resume = true;
  const auto second = scenario::run_matrix(warm);
  EXPECT_EQ(second.resumed, 0) << "resume reused a stale record";
  EXPECT_EQ(second.executed, 1);
  std::filesystem::remove_all(dir);
}

TEST(ScenarioMatrix, DuplicateScenarioNamesAcrossFilesAreRejected) {
  const std::string dir = testing::TempDir() + "/vc2m_scenario_dup";
  std::filesystem::create_directories(dir);
  for (const char* f : {"a.json", "b.json"}) {
    std::ofstream out(dir + "/" + f);
    out << minimal_scenario();
  }
  scenario::MatrixConfig cfg;
  cfg.files = scenario::discover_scenario_files(dir);
  EXPECT_THROW((void)scenario::run_matrix(cfg), util::Error);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Report artifact

TEST(ScenarioReport, RoundTripsThroughTheStrictReader) {
  const auto report = scenario::run_matrix(corpus_config(2)).report;
  std::istringstream in(serialized(report));
  const auto back = scenario::read_scenario_report(in);
  EXPECT_EQ(serialized(back), serialized(report));
  EXPECT_EQ(back.passed(), report.passed());
}

TEST(ScenarioReport, ReaderRejectsForeignSchemaAndUnknownKeys) {
  std::istringstream wrong(R"({"schema": "vc2m-bench-report/1"})");
  EXPECT_THROW((void)scenario::read_scenario_report(wrong), util::Error);
  std::istringstream extra(
      R"({"schema": "vc2m-scenario-report/1", "git_rev": "x", "corpus": "c",
          "shard_index": 0, "shard_count": 1, "total": 0, "passed": 0,
          "failed": 0, "surprise": 1, "records": []})");
  EXPECT_THROW((void)scenario::read_scenario_report(extra), util::Error);
}

TEST(ScenarioReport, UnknownFieldInAValidReportIsSurfacedNotRejected) {
  const auto report = scenario::run_matrix(corpus_config(1)).report;
  std::string text = serialized(report);
  const std::size_t at = text.find("\"corpus\"");
  ASSERT_NE(at, std::string::npos);
  text.insert(at, "\"from_the_future\": true,\n");
  std::vector<std::string> notes;
  std::istringstream in(text);
  scenario::ScenarioReport back;
  ASSERT_NO_THROW(back = scenario::read_scenario_report(
                      in, "scenario report", &notes));
  EXPECT_EQ(back.passed(), report.passed());
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].find("from_the_future"), std::string::npos);
  EXPECT_NE(notes[0].find("ignored"), std::string::npos);
  // Without a notes sink the field is silently skipped, still no throw.
  std::istringstream in2(text);
  EXPECT_NO_THROW((void)scenario::read_scenario_report(in2));
}

TEST(ScenarioReport, MergeRejectsOverlappingShardsAndForeignCorpora) {
  auto a = scenario::run_matrix(corpus_config(2)).report;
  EXPECT_THROW((void)scenario::merge_scenario_reports({a, a}), util::Error);
  auto b = a;
  b.corpus = "elsewhere";
  b.records.clear();
  EXPECT_THROW((void)scenario::merge_scenario_reports({a, b}), util::Error);
}

// ---------------------------------------------------------------------------
// Output-path regressions: artifact writers must fail loudly

TEST(OutputPaths, WritersThrowForAMissingDirectoryInsteadOfSilentSuccess) {
  const std::string missing = testing::TempDir() + "/vc2m_no_such_dir/x.json";
  EXPECT_THROW(scenario::write_scenario_report_file(missing, {}),
               util::Error);
  EXPECT_THROW(obs::write_trace_file(missing, {}, {}), util::Error);
  EXPECT_THROW(util::ensure_output_path_writable(missing, "probe"),
               util::Error);
  try {
    util::ensure_output_path_writable(missing, "probe");
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cannot open probe"), std::string::npos) << what;
    EXPECT_NE(what.find(missing), std::string::npos) << what;
  }
}

TEST(OutputPaths, WritableProbeLeavesNoStrayFileBehind) {
  // The probe must not manufacture an empty artifact: a command that
  // fails after the probe (e.g. a scenario load error) would otherwise
  // leave a zero-byte output where the user expected nothing.
  const std::string path = testing::TempDir() + "/vc2m_probe_fresh.json";
  std::remove(path.c_str());
  util::ensure_output_path_writable(path, "probe");
  EXPECT_FALSE(std::filesystem::exists(path))
      << "probe left an empty file behind";
}

TEST(OutputPaths, WritableProbeDoesNotClobberAnExistingFile) {
  const std::string path = testing::TempDir() + "/vc2m_probe_keep.json";
  {
    std::ofstream out(path);
    out << "precious";
  }
  util::ensure_output_path_writable(path, "probe");
  std::ifstream in(path);
  std::string content;
  std::getline(in, content);
  EXPECT_EQ(content, "precious");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace vc2m
