// Profiling + telemetry over the real experiment engine: the phase
// profiler must not perturb the determinism contract (bit-identical
// results with profiling on or off, at any --jobs), and the merged phase
// tree's *structure and counts* must themselves be deterministic across
// job counts — only wall times may vary run to run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "model/platform.h"
#include "obs/profiler.h"
#include "util/instrument.h"
#include "util/phase_profiler.h"

namespace vc2m {
namespace {

core::ExperimentConfig small_sweep(std::uint64_t seed, int jobs) {
  core::ExperimentConfig cfg;
  cfg.platform = model::PlatformSpec::A();
  cfg.util_lo = 0.4;
  cfg.util_hi = 1.0;
  cfg.util_step = 0.3;
  cfg.tasksets_per_point = 4;
  cfg.seed = seed;
  cfg.jobs = jobs;
  // One representative of every fast analysis family (skip existing-CSA).
  cfg.solutions = {"flat", "ovf", "even", "baseline"};
  return cfg;
}

constexpr int kPoints = 3;      // utils 0.4, 0.7, 1.0
constexpr int kTasksets = 4;
constexpr int kSolutions = 4;
constexpr int kCells = kPoints * kTasksets * kSolutions;

/// Run one profiled sweep and return its flattened merged phase tree.
struct ProfiledSweep {
  core::ExperimentResult result;
  std::vector<obs::FlatPhase> phases;
};

ProfiledSweep profiled_sweep(std::uint64_t seed, int jobs) {
  util::PhaseProfiler::reset();
  util::PhaseProfiler::set_enabled(true);
  ProfiledSweep out;
  out.result = core::run_schedulability_experiment(small_sweep(seed, jobs));
  out.phases = obs::flatten_profile(obs::merged_profile());
  util::PhaseProfiler::set_enabled(false);
  util::PhaseProfiler::reset();
  return out;
}

std::uint64_t count_of(const std::vector<obs::FlatPhase>& phases,
                       const std::string& path) {
  for (const auto& p : phases)
    if (p.path == path) return p.count;
  return 0;
}

TEST(ProfilingDeterminism, PhaseTreeStructureIdenticalAcrossJobCounts) {
  const auto r1 = profiled_sweep(42, 1);
  const auto r2 = profiled_sweep(42, 2);
  const auto r8 = profiled_sweep(42, 8);
  for (const auto* other : {&r2, &r8}) {
    ASSERT_EQ(r1.phases.size(), other->phases.size());
    for (std::size_t i = 0; i < r1.phases.size(); ++i) {
      EXPECT_EQ(r1.phases[i].path, other->phases[i].path) << i;
      EXPECT_EQ(r1.phases[i].count, other->phases[i].count)
          << r1.phases[i].path;
    }
  }
}

TEST(ProfilingDeterminism, MergedCountsMatchTheWorkload) {
  const auto r = profiled_sweep(7, 3);
  EXPECT_EQ(count_of(r.phases, "experiment"), 1u);
  EXPECT_EQ(count_of(r.phases, "experiment/sweep"), 1u);
  // Tasksets are generated once per (point, taskset) via call_once.
  EXPECT_EQ(count_of(r.phases, "generate"),
            static_cast<std::uint64_t>(kPoints * kTasksets));
  // Every (point, taskset) cell solves each named solution exactly once.
  for (const std::string key : {"flat", "ovf", "even", "baseline"})
    EXPECT_EQ(count_of(r.phases, "solve/" + key),
              static_cast<std::uint64_t>(kPoints * kTasksets))
        << key;
}

TEST(ProfilingDeterminism, ProfilerOnOffPreservesBitIdentity) {
  util::PhaseProfiler::reset();
  util::PhaseProfiler::set_enabled(false);
  util::AllocCounterScope off_scope;
  const auto off = core::run_schedulability_experiment(small_sweep(42, 4));
  const auto off_counters = off_scope.counters();

  util::PhaseProfiler::set_enabled(true);
  util::AllocCounterScope on_scope;
  const auto on = core::run_schedulability_experiment(small_sweep(42, 4));
  const auto on_counters = on_scope.counters();
  util::PhaseProfiler::set_enabled(false);
  util::PhaseProfiler::reset();

  std::ostringstream t_off, t_on;
  off.to_table().print(t_off);
  on.to_table().print(t_on);
  EXPECT_EQ(t_off.str(), t_on.str());
  EXPECT_EQ(off_counters.kmeans_runs, on_counters.kmeans_runs);
  EXPECT_EQ(off_counters.kmeans_final_shift, on_counters.kmeans_final_shift);
  EXPECT_EQ(off_counters.admission_tests, on_counters.admission_tests);
  EXPECT_EQ(off_counters.dbf_evaluations, on_counters.dbf_evaluations);
  EXPECT_EQ(off_counters.budget_evaluations, on_counters.budget_evaluations);
  EXPECT_EQ(off_counters.candidate_packings, on_counters.candidate_packings);
  EXPECT_EQ(off_counters.partition_grants, on_counters.partition_grants);
  // The per-cell schedulable verdicts match bitwise, not just in aggregate.
  ASSERT_EQ(off.points.size(), on.points.size());
  for (std::size_t pi = 0; pi < off.points.size(); ++pi)
    for (std::size_t si = 0; si < off.points[pi].per_solution.size(); ++si)
      EXPECT_EQ(off.points[pi].per_solution[si].schedulable,
                on.points[pi].per_solution[si].schedulable)
          << "point " << pi << " solution " << si;
}

TEST(ProfilingTelemetry, PoolAccountsEveryWorkItem) {
  const auto result = core::run_schedulability_experiment(small_sweep(11, 3));
  ASSERT_EQ(result.pool.workers.size(), 3u);
  // One work item per (point, taskset, solution) cell; every one executed
  // exactly once, wherever it ran.
  EXPECT_EQ(result.pool.total_executed(),
            static_cast<std::uint64_t>(kCells));
  EXPECT_GT(result.pool.max_queue_depth(), 0u);

  // One telemetry sample per completed sweep point, nondecreasing in both
  // time and cumulative counts; the last sample saw all work submitted.
  ASSERT_EQ(result.pool_samples.size(), static_cast<std::size_t>(kPoints));
  for (std::size_t i = 1; i < result.pool_samples.size(); ++i) {
    EXPECT_GE(result.pool_samples[i].at.raw_ns(),
              result.pool_samples[i - 1].at.raw_ns());
    EXPECT_GE(result.pool_samples[i].executed,
              result.pool_samples[i - 1].executed);
    EXPECT_GE(result.pool_samples[i].steals,
              result.pool_samples[i - 1].steals);
  }
  EXPECT_LE(result.pool_samples.back().executed,
            static_cast<std::uint64_t>(kCells));
}

TEST(ProfilingTelemetry, SolveSecondsHistogramCoversEveryCell) {
  const auto result = core::run_schedulability_experiment(small_sweep(5, 2));
  EXPECT_EQ(result.solve_seconds.count(),
            static_cast<std::uint64_t>(kCells));
  EXPECT_FALSE(result.solve_seconds.empty());
  EXPECT_GT(result.solve_seconds.max(), 0.0);
  EXPECT_GE(result.solve_seconds.quantile(0.95),
            result.solve_seconds.quantile(0.50));
}

}  // namespace
}  // namespace vc2m
