// Unit tests for the shared bin-packing primitives (core/packing.h) — the
// edge-case contract both allocation levels rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "core/packing.h"
#include "util/error.h"

namespace vc2m::core::packing {
namespace {

// ------------------------------------------------- best_fit_decreasing ----

TEST(BestFitDecreasing, EmptyInputYieldsZeroBins) {
  const auto bins = best_fit_decreasing({}, 1.0, 0);
  ASSERT_TRUE(bins.has_value());
  EXPECT_TRUE(bins->empty());
}

TEST(BestFitDecreasing, MaxBinsZeroRejectsAnyItem) {
  EXPECT_FALSE(best_fit_decreasing({0.1}, 1.0, 0).has_value());
  EXPECT_FALSE(best_fit_decreasing({0.0}, 1.0, 0).has_value());
}

TEST(BestFitDecreasing, CapacityExactFitsCount) {
  // 0.7 + 0.3 fills a unit bin exactly (within the 1e-12 tolerance);
  // best fit must co-locate them rather than open a third bin.
  const auto bins = best_fit_decreasing({0.7, 0.6, 0.3, 0.4}, 1.0, 2);
  ASSERT_TRUE(bins.has_value());
  EXPECT_EQ(bins->size(), 2u);
}

TEST(BestFitDecreasing, ItemEqualToCapacityIsPlaced) {
  const auto bins = best_fit_decreasing({1.0}, 1.0, 1);
  ASSERT_TRUE(bins.has_value());
  ASSERT_EQ(bins->size(), 1u);
  EXPECT_EQ((*bins)[0], std::vector<std::size_t>{0});
}

TEST(BestFitDecreasing, ItemBarelyOverCapacityIsRejected) {
  EXPECT_FALSE(best_fit_decreasing({1.0 + 1e-9}, 1.0, 5).has_value());
  // ... but within the rounding tolerance it still places.
  EXPECT_TRUE(best_fit_decreasing({1.0 + 1e-13}, 1.0, 1).has_value());
}

TEST(BestFitDecreasing, ZeroWeightItemsPlaceLikeAnyOther) {
  // Zero-weight items sort last and best-fit into the fullest bin; they
  // must neither vanish nor open bins of their own.
  const auto bins = best_fit_decreasing({0.9, 0.8, 0.0, 0.0}, 1.0, 2);
  ASSERT_TRUE(bins.has_value());
  EXPECT_EQ(bins->size(), 2u);
  std::size_t placed = 0;
  for (const auto& b : *bins) placed += b.size();
  EXPECT_EQ(placed, 4u);
}

TEST(BestFitDecreasing, AllZeroWeightsOpenExactlyOneBin) {
  const auto bins = best_fit_decreasing({0.0, 0.0, 0.0}, 1.0, 7);
  ASSERT_TRUE(bins.has_value());
  ASSERT_EQ(bins->size(), 1u);
  EXPECT_EQ((*bins)[0].size(), 3u);
}

TEST(BestFitDecreasing, PrefersFullestFeasibleBin) {
  // Decreasing order: 0.5, 0.45, 0.35. The 0.35 fits both open bins and
  // must join the fuller one (0.5 → residual 0.05 < 0.45 → residual 0.1).
  const auto bins = best_fit_decreasing({0.5, 0.45, 0.35}, 0.9, 3);
  ASSERT_TRUE(bins.has_value());
  ASSERT_EQ(bins->size(), 2u);
  EXPECT_EQ((*bins)[0], (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ((*bins)[1], (std::vector<std::size_t>{1}));
}

TEST(BestFitDecreasing, BinLimitRespected) {
  EXPECT_FALSE(best_fit_decreasing({0.9, 0.9, 0.9}, 1.0, 2).has_value());
  EXPECT_TRUE(best_fit_decreasing({0.9, 0.9, 0.9}, 1.0, 3).has_value());
}

TEST(BestFitDecreasing, RejectsNonFiniteAndNegativeWeights) {
  EXPECT_THROW(
      best_fit_decreasing({std::numeric_limits<double>::quiet_NaN()}, 1.0, 1),
      util::Error);
  EXPECT_THROW(
      best_fit_decreasing({std::numeric_limits<double>::infinity()}, 1.0, 1),
      util::Error);
  EXPECT_THROW(best_fit_decreasing({-0.1}, 1.0, 1), util::Error);
  EXPECT_THROW(best_fit_decreasing({0.5}, 0.0, 1), util::Error);
}

// ---------------------------------------------------- decreasing_order ----

TEST(DecreasingOrder, SortsIndicesByWeightDescending) {
  const std::vector<double> w{0.2, 0.9, 0.5};
  EXPECT_EQ(decreasing_order(w), (std::vector<std::size_t>{1, 2, 0}));
}

TEST(DecreasingOrder, EmptyInput) {
  EXPECT_TRUE(decreasing_order(std::span<const double>{}).empty());
}

// ------------------------------------------------------- worst_fit_bin ----

TEST(WorstFitBin, PicksLeastLoadedBin) {
  const std::vector<double> loads{0.5, 0.2, 0.8};
  EXPECT_EQ(worst_fit_bin(loads), 1u);
}

TEST(WorstFitBin, FirstMinimumWinsOnTies) {
  const std::vector<double> loads{0.3, 0.1, 0.1};
  EXPECT_EQ(worst_fit_bin(loads), 1u);
}

TEST(WorstFitBin, BonusShiftsTheChoice) {
  const std::vector<double> loads{0.5, 0.45};
  // Without bonus the second bin wins; a 0.1 affinity bonus on the first
  // makes its score 0.4 < 0.45.
  EXPECT_EQ(worst_fit_bin(loads), 1u);
  EXPECT_EQ(worst_fit_bin(loads,
                          [](std::size_t bi) { return bi == 0 ? 0.1 : 0.0; }),
            0u);
}

}  // namespace
}  // namespace vc2m::core::packing
