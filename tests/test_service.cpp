// Admission-control service suite: trace generation, the write-ahead
// journal, crash-free recovery equivalence (stop_after + --recover must
// reproduce the uninterrupted run's report byte for byte), snapshot
// rotation, the overload ladder, shed policies, and the strict
// vc2m-serve-report/1 round trip. scripts/check.sh additionally crash-kills
// the real binary at every injected crash point and diffs the recovered
// report (this suite covers the in-process equivalents).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "service/journal.h"
#include "service/report.h"
#include "service/service.h"
#include "service/trace_gen.h"
#include "util/error.h"

namespace vc2m::service {
namespace {

std::string report_text(const ServeReport& r) {
  std::ostringstream os;
  write_serve_report(os, r);
  return os.str();
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

ServiceConfig small_config(const std::string& spec =
                               "poisson:requests=300,interarrival-us=300,"
                               "util=0.1..0.4") {
  ServiceConfig cfg;
  cfg.trace = parse_trace_spec(spec);
  cfg.seed = 7;
  return cfg;
}

// ---------------------------------------------------------------------------
// Trace generation.

TEST(TraceGen, DeterministicAndComplete) {
  const TraceConfig cfg = parse_trace_spec(
      "poisson:requests=2000,interarrival-us=250,util=0.1..0.5,"
      "remove-frac=0.3,resize-frac=0.1");
  const auto a = generate_trace(cfg, 11);
  const auto b = generate_trace(cfg, 11);
  ASSERT_EQ(a.size(), 2000u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seq, i);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].vm, b[i].vm);
    EXPECT_EQ(a[i].at.raw_ns(), b[i].at.raw_ns());
    EXPECT_EQ(a[i].taskset_seed, b[i].taskset_seed);
    if (i > 0) {
      EXPECT_GE(a[i].at.raw_ns(), a[i - 1].at.raw_ns());
    }
  }
  const auto c = generate_trace(cfg, 12);
  bool differs = false;
  for (std::size_t i = 0; i < a.size() && !differs; ++i)
    differs = a[i].kind != c[i].kind || a[i].at != c[i].at;
  EXPECT_TRUE(differs) << "seed does not influence the trace";
}

TEST(TraceGen, PatternsAndSpecErrors) {
  for (const char* p : {"poisson", "flash", "diurnal"})
    EXPECT_EQ(parse_trace_spec(p).spec, p);
  EXPECT_EQ(parse_trace_spec("flash:flash-x=12").flash_x, 12.0);
  const auto u = parse_trace_spec("poisson:util=0.2..0.6");
  EXPECT_DOUBLE_EQ(u.util_lo, 0.2);
  EXPECT_DOUBLE_EQ(u.util_hi, 0.6);
  EXPECT_THROW(parse_trace_spec("bursty"), util::Error);
  EXPECT_THROW(parse_trace_spec("poisson:wat=1"), util::Error);
  EXPECT_THROW(parse_trace_spec("poisson:requests=x"), util::Error);
  EXPECT_THROW(parse_trace_spec("poisson:util=0.5"), util::Error);
  EXPECT_THROW(parse_trace_spec("poisson:requests=0"), util::Error);
}

// ---------------------------------------------------------------------------
// Journal framing.

TEST(Journal, RoundTripAndHeader) {
  const std::string path = testing::TempDir() + "/vc2m_journal_rt.wal";
  JournalWriter w;
  w.open_fresh(path, "cafebabecafebabe", 3);
  w.append("alpha");
  w.append("beta|gamma");
  w.close();
  const JournalScan scan = scan_journal(path);
  EXPECT_TRUE(scan.exists);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_EQ(scan.config_digest, "cafebabecafebabe");
  EXPECT_EQ(scan.base, 3u);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.records[0], "alpha");
  EXPECT_EQ(scan.records[1], "beta|gamma");
  EXPECT_FALSE(scan.torn);
  std::remove(path.c_str());
}

TEST(Journal, TornTailYieldsValidPrefix) {
  const std::string path = testing::TempDir() + "/vc2m_journal_torn.wal";
  JournalWriter w;
  w.open_fresh(path, "d1", 0);
  w.append("one");
  w.append("two");
  w.close();
  const auto full = scan_journal(path);
  ASSERT_EQ(full.records.size(), 2u);
  // Simulate a crash mid-append: chop bytes off the last frame.
  const std::string bytes = read_file(path);
  std::ofstream(path, std::ios::binary)
      << bytes.substr(0, bytes.size() - 3);
  const auto torn = scan_journal(path);
  EXPECT_TRUE(torn.header_ok);
  EXPECT_TRUE(torn.torn);
  ASSERT_EQ(torn.records.size(), 1u);
  EXPECT_EQ(torn.records[0], "one");
  EXPECT_LT(torn.valid_bytes, bytes.size());
  // open_append at valid_bytes drops the tail; the next append is clean.
  JournalWriter w2;
  w2.open_append(path, torn.valid_bytes);
  w2.append("three");
  w2.close();
  const auto healed = scan_journal(path);
  EXPECT_FALSE(healed.torn);
  ASSERT_EQ(healed.records.size(), 2u);
  EXPECT_EQ(healed.records[1], "three");
  std::remove(path.c_str());
}

TEST(Journal, CorruptByteInvalidatesFrameAndSuffix) {
  const std::string path = testing::TempDir() + "/vc2m_journal_corrupt.wal";
  JournalWriter w;
  w.open_fresh(path, "d2", 0);
  w.append("first-record");
  w.append("second-record");
  w.close();
  std::string bytes = read_file(path);
  // Flip one byte inside the first data record's payload (header frame is
  // first; find the payload text).
  const auto pos = bytes.find("first-record");
  ASSERT_NE(pos, std::string::npos);
  bytes[pos] ^= 0x20;
  std::ofstream(path, std::ios::binary) << bytes;
  const auto scan = scan_journal(path);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_TRUE(scan.torn);
  EXPECT_TRUE(scan.records.empty());  // nothing after the bad frame counts
  std::remove(path.c_str());
}

TEST(Journal, MissingFileAndGarbageHeader) {
  const auto missing =
      scan_journal(testing::TempDir() + "/vc2m_no_such_journal.wal");
  EXPECT_FALSE(missing.exists);
  const std::string path = testing::TempDir() + "/vc2m_journal_garbage.wal";
  std::ofstream(path, std::ios::binary) << "this is not a journal at all";
  const auto scan = scan_journal(path);
  EXPECT_TRUE(scan.exists);
  EXPECT_FALSE(scan.header_ok);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_TRUE(scan.torn);
  EXPECT_EQ(scan.valid_bytes, 0u);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Journal records & crash specs.

TEST(JournalRecord, SerializeParseRoundTrip) {
  JournalRecord r;
  r.seq = 41;
  r.attempt = 2;
  r.kind = RequestKind::kResize;
  r.outcome = Outcome::kResizeRejected;
  r.vm = -3;
  r.tasks = 9;
  r.events = 17;
  r.cost_ns = 123456;
  r.latency_ns = 7890;
  const JournalRecord p = parse_journal_record(serialize(r));
  EXPECT_EQ(p.seq, r.seq);
  EXPECT_EQ(p.attempt, r.attempt);
  EXPECT_EQ(p.kind, r.kind);
  EXPECT_EQ(p.outcome, r.outcome);
  EXPECT_EQ(p.vm, r.vm);
  EXPECT_EQ(p.tasks, r.tasks);
  EXPECT_EQ(p.events, r.events);
  EXPECT_EQ(p.cost_ns, r.cost_ns);
  EXPECT_EQ(p.latency_ns, r.latency_ns);
}

TEST(JournalRecord, ParseRejectsMalformedPayloads) {
  const std::string good = serialize(JournalRecord{});
  EXPECT_NO_THROW(parse_journal_record(good));
  EXPECT_THROW(parse_journal_record(""), util::Error);
  EXPECT_THROW(parse_journal_record("seq=1"), util::Error);
  EXPECT_THROW(parse_journal_record(good + "|extra=1"), util::Error);
  std::string wrong_key = good;
  wrong_key.replace(wrong_key.find("seq="), 4, "sqe=");
  EXPECT_THROW(parse_journal_record(wrong_key), util::Error);
  std::string bad_outcome = good;
  const auto at = bad_outcome.find("outcome=");
  bad_outcome.replace(at, bad_outcome.find('|', at) - at, "outcome=exploded");
  EXPECT_THROW(parse_journal_record(bad_outcome), util::Error);
}

TEST(CrashSpec, ParseAndErrors) {
  EXPECT_EQ(parse_crash_spec("before-append:250").point,
            CrashPoint::kBeforeAppend);
  EXPECT_EQ(parse_crash_spec("after-append:7").at, 7u);
  EXPECT_EQ(parse_crash_spec("mid-snapshot:2").point,
            CrashPoint::kMidSnapshot);
  EXPECT_THROW(parse_crash_spec("before-append"), util::Error);
  EXPECT_THROW(parse_crash_spec("sideways:3"), util::Error);
  EXPECT_THROW(parse_crash_spec("mid-snapshot:x"), util::Error);
}

// ---------------------------------------------------------------------------
// Shed policies.

TEST(ShedPolicy, VictimSelection) {
  // Build a tiny synthetic trace: seq -> (kind, util, criticality).
  std::vector<ServeRequest> trace(5);
  trace[0] = {0, util::Time::zero(), RequestKind::kAdmit, 10, 0.8, 1, 0};
  trace[1] = {1, util::Time::zero(), RequestKind::kRemove, 11, 0.0, 1, 0};
  trace[2] = {2, util::Time::zero(), RequestKind::kAdmit, 12, 0.3, 0, 0};
  trace[3] = {3, util::Time::zero(), RequestKind::kAdmit, 13, 0.5, 0, 0};
  trace[4] = {4, util::Time::zero(), RequestKind::kAdmit, 14, 0.4, 1, 0};
  const std::vector<QueueEntry> queue = {
      {0, 0, util::Time::zero()},
      {1, 0, util::Time::zero()},
      {2, 0, util::Time::zero()},
      {3, 0, util::Time::zero()},
  };
  const QueueEntry incoming{4, 0, util::Time::zero()};

  // reject-newest: always the incoming entry.
  EXPECT_EQ(shed_victim(ShedPolicy::kRejectNewest, queue, incoming, trace),
            queue.size());
  // reject-largest: seq 0 has the largest utilization (0.8).
  EXPECT_EQ(shed_victim(ShedPolicy::kRejectLargest, queue, incoming, trace),
            0u);
  // criticality: best-effort entries first — seq 3 (util 0.5) beats seq 2
  // (util 0.3); both beat every critical entry.
  EXPECT_EQ(shed_victim(ShedPolicy::kCriticality, queue, incoming, trace),
            3u);
  // Removes are never shed: a queue of only removes sheds the incoming
  // admit under reject-largest.
  const std::vector<QueueEntry> removes = {{1, 0, util::Time::zero()}};
  EXPECT_EQ(shed_victim(ShedPolicy::kRejectLargest, removes, incoming, trace),
            removes.size());
}

TEST(ShedPolicy, Names) {
  ShedPolicy p;
  EXPECT_TRUE(shed_policy_from_string("reject-largest", p));
  EXPECT_EQ(p, ShedPolicy::kRejectLargest);
  EXPECT_FALSE(shed_policy_from_string("reject-oldest", p));
  EXPECT_STREQ(to_string(ShedPolicy::kCriticality), "criticality");
}

// ---------------------------------------------------------------------------
// The service loop.

TEST(Service, DeterministicReports) {
  const auto a = run_service(small_config());
  const auto b = run_service(small_config());
  EXPECT_FALSE(a.interrupted);
  EXPECT_EQ(report_text(a.report), report_text(b.report));
  EXPECT_GT(a.report.admitted, 0u);
  EXPECT_GT(a.report.commits, 0u);
  // Terminal outcomes + deferrals partition the enqueued attempts.
  const auto& r = a.report;
  const std::uint64_t terminal = r.admitted + r.rejected + r.probe_rejected +
                                 r.removed + r.resized + r.resize_rejected +
                                 r.not_present + r.shed + r.timed_out;
  EXPECT_EQ(terminal + r.deferred, r.arrivals + r.retries);
  EXPECT_EQ(r.requests, 300u);
  EXPECT_EQ(r.arrivals, 300u);
}

TEST(Service, DeadlinePressureDowngrades) {
  auto cfg = small_config(
      "flash:requests=400,interarrival-us=50,flash-x=20,util=0.1..0.4");
  cfg.deadline = util::Time::us(100);
  cfg.queue_cap = 8;
  const auto res = run_service(cfg);
  const auto& r = res.report;
  EXPECT_GT(r.downgrades, 0u);
  EXPECT_GT(r.deferred + r.timed_out + r.probe_rejected, 0u);
  EXPECT_LE(r.queue_max_depth, 8u);
  // No deadline: the same trace never downgrades.
  auto relaxed = small_config(
      "flash:requests=400,interarrival-us=50,flash-x=20,util=0.1..0.4");
  const auto base = run_service(relaxed);
  EXPECT_EQ(base.report.downgrades, 0u);
  EXPECT_EQ(base.report.timed_out, 0u);
}

TEST(Service, StopAfterMarksInterrupted) {
  auto cfg = small_config();
  cfg.stop_after = 50;
  const auto res = run_service(cfg);
  EXPECT_TRUE(res.interrupted);
  EXPECT_TRUE(res.report.interrupted);
  // An interrupted report still round-trips through the strict reader.
  std::istringstream is(report_text(res.report));
  const ServeReport back = read_serve_report(is);
  EXPECT_TRUE(back.interrupted);
}

TEST(Service, RecoverAfterStopReproducesUninterruptedRun) {
  const std::string wal = testing::TempDir() + "/vc2m_service_stop.wal";
  std::remove(wal.c_str());
  std::remove((wal + ".snap").c_str());

  auto base_cfg = small_config();
  base_cfg.journal_path = wal + ".base";
  base_cfg.snapshot_every = 10;
  std::remove(base_cfg.journal_path.c_str());
  std::remove((base_cfg.journal_path + ".snap").c_str());
  const auto base = run_service(base_cfg);

  auto cfg = small_config();
  cfg.journal_path = wal;
  cfg.snapshot_every = 10;
  cfg.stop_after = 120;
  const auto cut = run_service(cfg);
  ASSERT_TRUE(cut.interrupted);

  cfg.stop_after = 0;
  cfg.recover = true;
  const auto rec = run_service(cfg);
  EXPECT_FALSE(rec.interrupted);
  EXPECT_EQ(report_text(rec.report), report_text(base.report));
  // Snapshot rotation happened: the journal's base moved past 0 and the
  // snapshot file exists.
  const auto scan = scan_journal(wal);
  EXPECT_TRUE(scan.header_ok);
  EXPECT_GT(scan.base, 0u);
  EXPECT_TRUE(std::ifstream(wal + ".snap").good());

  // Recovering a *finished* journal is also clean and byte-identical.
  const auto again = run_service(cfg);
  EXPECT_EQ(report_text(again.report), report_text(base.report));

  std::remove(wal.c_str());
  std::remove((wal + ".snap").c_str());
  std::remove(base_cfg.journal_path.c_str());
  std::remove((base_cfg.journal_path + ".snap").c_str());
}

TEST(Service, RecoverToleratesTornTailAndForeignJournal) {
  const std::string wal = testing::TempDir() + "/vc2m_service_torn.wal";
  std::remove(wal.c_str());
  std::remove((wal + ".snap").c_str());

  auto cfg = small_config();
  cfg.journal_path = wal;
  cfg.snapshot_every = 0;
  const auto base = run_service(cfg);

  // Torn tail: recovery warns, truncates, and reproduces the full report
  // (the tail records are recomputed from the trace).
  const std::string bytes = read_file(wal);
  std::ofstream(wal, std::ios::binary)
      << bytes.substr(0, bytes.size() - 4);
  cfg.recover = true;
  const auto rec = run_service(cfg);
  EXPECT_EQ(report_text(rec.report), report_text(base.report));
  bool warned = false;
  for (const auto& w : rec.warnings)
    warned = warned || w.find("torn tail") != std::string::npos;
  EXPECT_TRUE(warned);

  // A journal from a different configuration is ignored with a warning —
  // never merged into the wrong run.
  auto other = small_config();
  other.journal_path = wal;
  other.seed = 8;
  other.recover = true;
  const auto foreign = run_service(other);
  bool ignored = false;
  for (const auto& w : foreign.warnings)
    ignored =
        ignored || w.find("different configuration") != std::string::npos;
  EXPECT_TRUE(ignored);

  std::remove(wal.c_str());
  std::remove((wal + ".snap").c_str());
}

// ---------------------------------------------------------------------------
// Serve report artifact.

TEST(ServeReport, RoundTripAndStrictness) {
  const auto res = run_service(small_config());
  const std::string text = report_text(res.report);
  std::istringstream is(text);
  const ServeReport back = read_serve_report(is);
  EXPECT_EQ(report_text(back), text);

  // Strictness: a wrong schema or a missing section must throw.
  std::string bad_schema = text;
  bad_schema.replace(bad_schema.find(kServeReportSchema),
                     std::string(kServeReportSchema).size(),
                     "vc2m-serve-report/9");
  std::istringstream bs(bad_schema);
  EXPECT_THROW(read_serve_report(bs), util::Error);
  std::istringstream garbage("{\"schema\": \"vc2m-serve-report/1\"}");
  EXPECT_THROW(read_serve_report(garbage), util::Error);
  std::istringstream not_json("not json");
  EXPECT_THROW(read_serve_report(not_json), util::Error);
}

}  // namespace
}  // namespace vc2m::service
