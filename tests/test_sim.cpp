#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/event_queue.h"
#include "sim/profiling.h"
#include "sim/simulation.h"
#include "util/error.h"
#include "util/rng.h"
#include "workload/parsec.h"

namespace vc2m::sim {
namespace {

using util::Time;

// ---------------------------------------------------------- EventQueue ----

TEST(EventQueue, DispatchesInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::ms(3), [&] { order.push_back(3); });
  q.schedule(Time::ms(1), [&] { order.push_back(1); });
  q.schedule(Time::ms(2), [&] { order.push_back(2); });
  q.run_until(Time::ms(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), Time::ms(10));
}

TEST(EventQueue, FifoAtEqualTimestamps) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(Time::ms(1), [&] { order.push_back(1); });
  q.schedule(Time::ms(1), [&] { order.push_back(2); });
  q.schedule(Time::ms(1), [&] { order.push_back(3); });
  q.run_until(Time::ms(1));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, CancelPreventsDispatch) {
  EventQueue q;
  int fired = 0;
  const auto id = q.schedule(Time::ms(1), [&] { ++fired; });
  q.schedule(Time::ms(2), [&] { ++fired; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // already gone
  EXPECT_FALSE(q.cancel(EventQueue::kInvalidId));
  q.run_until(Time::ms(5));
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> tick = [&] {
    if (++count < 5) q.schedule_after(Time::ms(1), tick);
  };
  q.schedule(Time::zero(), tick);
  q.run_until(Time::ms(10));
  EXPECT_EQ(count, 5);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(Time::ms(5), [] {});
  q.run_until(Time::ms(5));
  EXPECT_THROW(q.schedule(Time::ms(1), [] {}), util::Error);
}

TEST(EventQueue, FuzzAgainstReferenceModel) {
  // Random schedule/cancel/advance operations; dispatch order must match a
  // straightforward reference (sorted by time, FIFO within a timestamp).
  vc2m::util::Rng rng(99);
  for (int round = 0; round < 20; ++round) {
    EventQueue q;
    struct Ref {
      Time when;
      std::uint64_t seq;
      int id;
      bool cancelled = false;
    };
    std::vector<Ref> ref;
    std::vector<EventQueue::Id> ids;
    std::vector<int> fired;

    const int n = 30 + static_cast<int>(rng.index(40));
    for (int i = 0; i < n; ++i) {
      const Time when = Time::us(rng.uniform_int(0, 500));
      ids.push_back(q.schedule(when, [&fired, i] { fired.push_back(i); }));
      ref.push_back({when, static_cast<std::uint64_t>(i), i});
    }
    // Cancel a random third.
    for (int i = 0; i < n / 3; ++i) {
      const auto pick = rng.index(ref.size());
      if (!ref[pick].cancelled) {
        EXPECT_TRUE(q.cancel(ids[pick]));
        ref[pick].cancelled = true;
      }
    }
    q.run_until(Time::ms(1));

    std::vector<Ref> expected;
    for (const auto& r : ref)
      if (!r.cancelled) expected.push_back(r);
    std::sort(expected.begin(), expected.end(), [](const Ref& a, const Ref& b) {
      return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    });
    ASSERT_EQ(fired.size(), expected.size()) << "round " << round;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(fired[i], expected[i].id) << "round " << round;
  }
}

// ------------------------------------------------------- basic running ----

SimTaskSpec cpu_task(Time period, Time work, std::size_t vcpu = 0,
                     Time offset = Time::zero()) {
  SimTaskSpec t;
  t.period = period;
  t.offset = offset;
  t.cpu_work = work;
  t.vcpu = vcpu;
  return t;
}

SimVcpuSpec server(Time period, Time budget, std::size_t core = 0) {
  SimVcpuSpec v;
  v.period = period;
  v.budget = budget;
  v.core = core;
  return v;
}

TEST(Simulation, SingleTaskOnDedicatedVcpuCompletesEveryJob) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(10), Time::ms(10))};  // full budget
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2))};
  Simulation sim(cfg);
  sim.run(Time::ms(100));
  const auto s = sim.stats();
  // Releases at 0, 10, ..., 100 (the release at the horizon still fires).
  EXPECT_EQ(s.jobs_released, 11u);
  EXPECT_EQ(s.jobs_completed, 10u);
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_EQ(s.per_task[0].max_response, Time::ms(2));
  EXPECT_NEAR(s.core_busy_fraction[0], 1.0, 1e-9);  // idling server burns all
}

TEST(Simulation, NonIdlingServerOnlyRunsWithWork) {
  SimConfig cfg;
  cfg.num_cores = 1;
  auto v = server(Time::ms(10), Time::ms(10));
  v.idling_server = false;
  cfg.vcpus = {v};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2))};
  Simulation sim(cfg);
  sim.run(Time::ms(100));
  EXPECT_NEAR(sim.stats().core_busy_fraction[0], 0.2, 1e-9);
}

TEST(Simulation, BudgetSmallerThanDemandMissesDeadlines) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(10), Time::ms(2))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(3))};  // needs 3, gets 2
  Simulation sim(cfg);
  sim.run(Time::ms(200));
  const auto s = sim.stats();
  EXPECT_GT(s.deadline_misses, 0u);
  EXPECT_GT(s.max_tardiness, Time::zero());
}

TEST(Simulation, ExactBudgetMeetsDeadlinesWhenAligned) {
  // Theorem 1 with synchronized (zero) offsets: Θ = e, Π = p.
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(10), Time::ms(6))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(6))};
  Simulation sim(cfg);
  sim.run(Time::ms(500));
  const auto s = sim.stats();
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_EQ(s.jobs_completed, 50u);
}

// ---------------------------------------------------- release synchron. ----

TEST(Simulation, UnsyncedOffsetCausesPersistentMisses) {
  // Task released at 0 but its VCPU (Π = p, Θ = e) released at 5ms: every
  // job finishes 1ms late — the abstraction overhead in action.
  SimConfig cfg;
  cfg.num_cores = 1;
  auto v = server(Time::ms(10), Time::ms(6));
  v.offset = Time::ms(5);
  cfg.vcpus = {v};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(6))};
  Simulation sim(cfg);
  sim.run(Time::ms(300));
  const auto s = sim.stats();
  EXPECT_GT(s.deadline_misses, 20u);
}

TEST(Simulation, ReleaseSyncRemovesTheMisses) {
  // Same scenario but with the hypercall-based synchronization: the VCPU's
  // first release tracks the task's offset (plus the tiny hypercall delay).
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.release_sync = true;
  cfg.hypercall_delay = Time::us(1);
  auto v = server(Time::ms(10), Time::ms(6));
  v.offset = Time::ms(5);  // ignored: the hypercall re-arms the release
  cfg.vcpus = {v};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(6), 0, /*offset=*/Time::ms(3))};
  Simulation sim(cfg);
  sim.run(Time::ms(300));
  const auto s = sim.stats();
  EXPECT_EQ(s.deadline_misses, 0u);
  EXPECT_GT(s.jobs_completed, 25u);
  EXPECT_GE(sim.trace().count(TraceKind::kHypercall), 1u);
}

TEST(Simulation, IntervalSyncIsImmuneToClockSkew) {
  // VM clock 3.7s ahead of the hypervisor: the interval protocol still
  // aligns the VCPU perfectly (only L crosses the boundary).
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.release_sync = true;
  cfg.vm_clock_skew = Time::ms(3'700);
  cfg.vcpus = {server(Time::ms(10), Time::ms(6))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(6), 0, Time::ms(4))};
  Simulation sim(cfg);
  sim.run(Time::ms(300));
  EXPECT_EQ(sim.stats().deadline_misses, 0u);
}

TEST(Simulation, AbsoluteTimeSyncBreaksUnderClockSkew) {
  // The naive protocol the paper rejects: passing the absolute VM-time
  // release mis-arms the VCPU by the skew, and the tight budget misses.
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.release_sync = true;
  cfg.sync_mode = SimConfig::SyncMode::kAbsoluteTime;
  cfg.vm_clock_skew = Time::ms(7);  // VM clock 7ms ahead
  cfg.vcpus = {server(Time::ms(10), Time::ms(6))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(6), 0, Time::ms(4))};
  Simulation sim(cfg);
  sim.run(Time::ms(300));
  EXPECT_GT(sim.stats().deadline_misses, 10u);

  // With synchronized clocks the same protocol works.
  cfg.vm_clock_skew = Time::zero();
  Simulation aligned(cfg);
  aligned.run(Time::ms(300));
  EXPECT_EQ(aligned.stats().deadline_misses, 0u);
}

TEST(Simulation, SyncToleratesLargeTaskOffsets) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.release_sync = true;
  cfg.vcpus = {server(Time::ms(20), Time::ms(5))};
  cfg.tasks = {cpu_task(Time::ms(20), Time::ms(5), 0, Time::ms(17))};
  Simulation sim(cfg);
  sim.run(Time::ms(600));
  EXPECT_EQ(sim.stats().deadline_misses, 0u);
}

// --------------------------------------------------------- EDF details ----

TEST(Simulation, HypervisorEdfPreemptsOnEarlierDeadline) {
  // VCPU 1 (Π = 40) starts first; VCPU 0 (Π = 10) released at t = 0 too but
  // with an earlier deadline, so it runs first; when it exhausts, VCPU 1
  // resumes.
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.capture_trace = true;
  cfg.vcpus = {server(Time::ms(10), Time::ms(4)),
               server(Time::ms(40), Time::ms(8))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(4), 0),
               cpu_task(Time::ms(40), Time::ms(8), 1)};
  Simulation sim(cfg);
  sim.run(Time::ms(400));
  const auto s = sim.stats();
  EXPECT_EQ(s.deadline_misses, 0u);
  const auto scheds = sim.trace().events_of(TraceKind::kVcpuSchedule);
  ASSERT_GE(scheds.size(), 2u);
  EXPECT_EQ(scheds[0].vcpu, 0);  // earlier deadline first
  EXPECT_EQ(scheds[1].vcpu, 1);
}

TEST(Simulation, TieBreakBySmallerPeriodThenIndex) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.capture_trace = true;
  // Same absolute deadline at t=0 (Π equal for 1 & 2; VCPU 0 has smaller Π
  // — wait: all must share the deadline): use Π = 20 everywhere except
  // VCPU 0 with Π = 20 as well; distinguish via index.
  cfg.vcpus = {server(Time::ms(20), Time::ms(2)),
               server(Time::ms(20), Time::ms(2)),
               server(Time::ms(20), Time::ms(2))};
  cfg.tasks = {cpu_task(Time::ms(20), Time::ms(1), 0),
               cpu_task(Time::ms(20), Time::ms(1), 1),
               cpu_task(Time::ms(20), Time::ms(1), 2)};
  Simulation sim(cfg);
  sim.run(Time::ms(20));
  const auto scheds = sim.trace().events_of(TraceKind::kVcpuSchedule);
  ASSERT_GE(scheds.size(), 3u);
  EXPECT_EQ(scheds[0].vcpu, 0);
  EXPECT_EQ(scheds[1].vcpu, 1);
  EXPECT_EQ(scheds[2].vcpu, 2);
}

TEST(Simulation, GuestEdfPreemptsWithinVcpu) {
  // Long task starts; a short-deadline task released later preempts it
  // inside the same VCPU.
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(40), Time::ms(40))};
  cfg.tasks = {cpu_task(Time::ms(40), Time::ms(20), 0),
               cpu_task(Time::ms(10), Time::ms(2), 0, Time::ms(1))};
  Simulation sim(cfg);
  sim.run(Time::ms(400));
  const auto s = sim.stats();
  EXPECT_EQ(s.deadline_misses, 0u);
  // The short task would miss without preemption (20ms head start).
  EXPECT_EQ(s.per_task[1].completed, s.per_task[1].released);
}

TEST(Simulation, WellRegulatedVcpuPatternRepeatsEachPeriod) {
  // Harmonic periods, same offset, idling servers, deterministic tie-break:
  // each VCPU's schedule/deschedule times repeat modulo its period
  // (well-regulated execution, the Theorem 2 prerequisite).
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.capture_trace = true;
  cfg.vcpus = {server(Time::ms(10), Time::ms(3)),
               server(Time::ms(20), Time::ms(8)),
               server(Time::ms(40), Time::ms(12))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2), 0),
               cpu_task(Time::ms(20), Time::ms(7), 1),
               cpu_task(Time::ms(40), Time::ms(11), 2)};
  Simulation sim(cfg);
  sim.run(Time::ms(400));
  EXPECT_EQ(sim.stats().deadline_misses, 0u);

  // Collect per-VCPU busy intervals and check period-translation symmetry.
  std::map<int, std::vector<std::pair<Time, Time>>> busy;
  std::map<int, Time> open;
  for (const auto& ev : sim.trace().events()) {
    if (ev.kind == TraceKind::kVcpuSchedule) open[ev.vcpu] = ev.when;
    if (ev.kind == TraceKind::kVcpuDeschedule && open.count(ev.vcpu)) {
      busy[ev.vcpu].push_back({open[ev.vcpu], ev.when});
      open.erase(ev.vcpu);
    }
  }
  const Time horizon = Time::ms(400);
  for (std::size_t vi = 0; vi < cfg.vcpus.size(); ++vi) {
    const Time pi = cfg.vcpus[vi].period;
    // Build the busy signature of period k as offsets within the period.
    std::map<std::int64_t, std::vector<std::pair<Time, Time>>> by_period;
    for (const auto& [a, b] : busy[static_cast<int>(vi)]) {
      if (b > horizon - pi) continue;  // skip the final partial period
      by_period[a / pi].push_back({a % pi, a % pi + (b - a)});
    }
    ASSERT_GE(by_period.size(), 3u);
    const auto& first = by_period.begin()->second;
    for (const auto& [k, sig] : by_period)
      EXPECT_EQ(sig, first) << "VCPU " << vi << " period " << k;
  }
}

// ----------------------------------------------- context-switch overhead ----

TEST(SwitchOverhead, ChargedOncePerVcpuSwitch) {
  // Two VCPUs alternating on one core; every switch burns 100µs of budget
  // and wall time during which no task progresses.
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpu_switch_cost = Time::us(100);
  cfg.vcpus = {server(Time::ms(10), Time::ms(4)),
               server(Time::ms(10), Time::ms(4))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(3), 0),
               cpu_task(Time::ms(10), Time::ms(3), 1)};
  Simulation sim(cfg);
  sim.run(Time::ms(100));
  const auto s = sim.stats();
  // 4ms budget - 0.1ms switch = 3.9ms service ≥ 3ms demand: still meets.
  EXPECT_EQ(s.deadline_misses, 0u);
  // Each job's response includes the switch overhead.
  EXPECT_GE(s.per_task[0].max_response, Time::ms(3) + Time::us(100));
}

TEST(SwitchOverhead, UnaccountedOverheadBreaksTightBudgets) {
  // Budgets exactly equal to demand: the switch cost makes jobs late —
  // the overhead the analysis must inflate for (§4.1 Remarks).
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpu_switch_cost = Time::us(200);
  cfg.vcpus = {server(Time::ms(10), Time::ms(5)),
               server(Time::ms(10), Time::ms(5))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(5), 0),
               cpu_task(Time::ms(10), Time::ms(5), 1)};
  Simulation broken(cfg);
  broken.run(Time::ms(200));
  EXPECT_GT(broken.stats().deadline_misses, 0u);

  // Inflating the budgets by the per-period overhead (and shrinking the
  // demand accordingly, as the analysis would require util <= 1) fixes it.
  cfg.vcpus[0].budget = Time::ms(5);
  cfg.vcpus[1].budget = Time::ms(5);
  cfg.tasks[0].cpu_work = Time::ms(5) - Time::us(400);
  cfg.tasks[1].cpu_work = Time::ms(5) - Time::us(400);
  Simulation inflated(cfg);
  inflated.run(Time::ms(200));
  EXPECT_EQ(inflated.stats().deadline_misses, 0u);
}

TEST(SwitchOverhead, IdleCoreChargesNothing) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpu_switch_cost = Time::us(100);
  cfg.vcpus = {server(Time::ms(10), Time::ms(2))};
  auto v = cfg.vcpus[0];
  cfg.vcpus[0].idling_server = false;
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(1), 0)};
  Simulation sim(cfg);
  sim.run(Time::ms(100));
  // One switch per period (idle -> VCPU): busy = (1ms work + 0.1ms switch)
  // per 10ms.
  EXPECT_NEAR(sim.stats().core_busy_fraction[0], 0.11, 0.005);
  (void)v;
}

// ------------------------------------------- Theorem 2 property checks ----

// Random harmonic tasksets served by well-regulated VCPUs with bandwidth
// exactly equal to taskset utilization must never miss (Theorem 2), even
// with several such VCPUs competing on one core under the deterministic
// tie-break.
class Theorem2PropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(Theorem2PropertyTest, RegulatedVcpusAtExactUtilizationNeverMiss) {
  vc2m::util::Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const std::int64_t base_ms = rng.uniform_int(4, 9);
  const std::int64_t menu_ms[] = {base_ms, base_ms * 2, base_ms * 4};

  SimConfig cfg;
  cfg.num_cores = 1;
  double core_util = 0;
  // 2-3 VCPUs, each serving 1-4 harmonic tasks.
  const std::size_t n_vcpus = 2 + rng.index(2);
  for (std::size_t vi = 0; vi < n_vcpus; ++vi) {
    const std::size_t n_tasks = 1 + rng.index(4);
    // Build the task specs first, then the Theorem-2 budget.
    std::vector<SimTaskSpec> specs;
    double vcpu_util = 0;
    Time pi = Time::max();
    for (std::size_t t = 0; t < n_tasks; ++t) {
      SimTaskSpec spec;
      spec.period = Time::ms(menu_ms[rng.index(3)]);
      const double u = rng.uniform(0.02, 0.25 / static_cast<double>(n_tasks));
      spec.cpu_work = Time::ns(static_cast<std::int64_t>(
          u * static_cast<double>(spec.period.raw_ns())));
      if (spec.cpu_work < Time::us(10)) spec.cpu_work = Time::us(10);
      spec.vcpu = cfg.vcpus.size();
      vcpu_util += spec.cpu_work.ratio(spec.period);
      pi = util::min(pi, spec.period);
      specs.push_back(spec);
    }
    if (core_util + vcpu_util > 0.98) break;
    core_util += vcpu_util;

    // Θ = Π · Σ e_i/p_i, rounded up (the Theorem 2 budget).
    std::int64_t theta_ns = 0;
    for (const auto& spec : specs)
      theta_ns += spec.cpu_work.raw_ns() / (spec.period / pi);
    SimVcpuSpec v;
    v.period = pi;
    v.budget = Time::ns(theta_ns) + Time::ns(static_cast<std::int64_t>(specs.size()));
    v.core = 0;
    v.idling_server = true;  // periodic server: well-regulated execution
    cfg.vcpus.push_back(v);
    for (auto& spec : specs) cfg.tasks.push_back(spec);
  }
  ASSERT_FALSE(cfg.tasks.empty());

  Simulation sim(cfg);
  sim.run(Time::ms(menu_ms[2] * 50));
  const auto s = sim.stats();
  EXPECT_EQ(s.deadline_misses, 0u)
      << "seed " << GetParam() << " core_util " << core_util;
  EXPECT_GT(s.jobs_completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2PropertyTest,
                         ::testing::Range(0, 12));

TEST(Simulation, NonIdlingServersBreakWellRegulation) {
  // Design choice §3.2(i): periodic (idling) servers are required for
  // well-regulated execution. A deferrable-style (non-idling) server's
  // busy pattern shifts with task arrivals, so it does NOT repeat each
  // period when a task arrives mid-period.
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.capture_trace = true;
  auto v0 = server(Time::ms(10), Time::ms(4));
  v0.idling_server = false;
  cfg.vcpus = {v0, server(Time::ms(20), Time::ms(8))};
  // VCPU 0's only task arrives 3ms into every second period of the VCPU.
  cfg.tasks = {cpu_task(Time::ms(20), Time::ms(3), 0, Time::ms(3)),
               cpu_task(Time::ms(20), Time::ms(7), 1)};
  Simulation sim(cfg);
  sim.run(Time::ms(200));

  // Collect VCPU 0's busy signature per period; it must differ between
  // periods with and without an arrival.
  std::map<std::int64_t, Time> busy_per_period;
  Time open = Time::max();
  for (const auto& ev : sim.trace().events()) {
    if (ev.vcpu != 0) continue;
    if (ev.kind == TraceKind::kVcpuSchedule) open = ev.when;
    if (ev.kind == TraceKind::kVcpuDeschedule && open != Time::max()) {
      busy_per_period[open / Time::ms(10)] += ev.when - open;
      open = Time::max();
    }
  }
  // Even-indexed VCPU periods host an arrival; odd ones are empty.
  EXPECT_GT(busy_per_period[0], Time::zero());
  EXPECT_EQ(busy_per_period.count(1), 0u);  // no work, no execution
}

// ------------------------------------------------------- cache scaling ----

TEST(Simulation, FewerCachePartitionsInflateExecution) {
  auto run_with_cache = [](unsigned ways) {
    SimConfig cfg;
    cfg.num_cores = 1;
    cfg.cache_partitions = 20;
    cfg.cache_alloc = {ways};
    cfg.vcpus = {server(Time::ms(50), Time::ms(50))};
    SimTaskSpec t;
    t.period = Time::ms(50);
    t.cpu_work = Time::ms(2);
    t.mem_work_ref = Time::ms(3);
    t.miss_amp = 3.0;
    t.ws_decay = 4.0;
    cfg.tasks = {t};
    Simulation sim(cfg);
    sim.run(Time::ms(500));
    return sim.stats().per_task[0].max_response;
  };
  const Time full = run_with_cache(20);
  const Time half = run_with_cache(10);
  const Time min = run_with_cache(2);
  EXPECT_EQ(full, Time::ms(5));  // 2 + 3·1.0
  EXPECT_GT(half, full);
  EXPECT_GT(min, half);
}

// ---------------------------------------------- runtime VCPU parameters ----

TEST(VcpuUpdate, BudgetIncreaseStopsMisses) {
  // Under-provisioned server (2ms for a 3ms task): misses until the
  // runtime update raises the budget at t = 200ms.
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.capture_trace = true;
  cfg.vcpus = {server(Time::ms(10), Time::ms(2))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(3))};
  Simulation sim(cfg);
  sim.schedule_vcpu_update(Time::ms(200), 0, Time::ms(10), Time::ms(5));
  sim.run(Time::ms(600));

  std::uint64_t misses_before = 0, misses_after = 0;
  for (const auto& ev : sim.trace().events_of(TraceKind::kDeadlineMiss))
    (ev.when <= Time::ms(250) ? misses_before : misses_after) += 1;
  EXPECT_GT(misses_before, 10u);
  // A backlog drains shortly after the update; steady state is clean.
  EXPECT_LT(misses_after, 5u);
}

TEST(VcpuUpdate, TakesEffectAtNextReleaseNotMidPeriod) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.capture_trace = true;
  cfg.vcpus = {server(Time::ms(10), Time::ms(2))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2))};
  Simulation sim(cfg);
  // Staged mid-period at t = 13ms; the period starting at 20ms uses it.
  sim.schedule_vcpu_update(Time::ms(13), 0, Time::ms(20), Time::ms(8));
  sim.run(Time::ms(100));
  // Releases: 0, 10, 20 (old 10ms period until then), then 40, 60, 80, 100
  // under the new 20ms period.
  const auto releases = sim.trace().events_of(TraceKind::kVcpuRelease);
  ASSERT_GE(releases.size(), 6u);
  EXPECT_EQ(releases[1].when, Time::ms(10));
  EXPECT_EQ(releases[2].when, Time::ms(20));
  EXPECT_EQ(releases[3].when, Time::ms(40));
}

TEST(VcpuUpdate, RejectsInvalidParameters) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(10), Time::ms(2))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(1))};
  Simulation sim(cfg);
  EXPECT_THROW(sim.schedule_vcpu_update(Time::ms(1), 5, Time::ms(10),
                                        Time::ms(2)),
               util::Error);
  EXPECT_THROW(sim.schedule_vcpu_update(Time::ms(1), 0, Time::ms(10),
                                        Time::ms(11)),
               util::Error);
}

// ---------------------------------------------------- sporadic arrivals ----

TEST(Sporadic, JitterStretchesInterArrivals) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.jitter_seed = 5;
  cfg.vcpus = {server(Time::ms(10), Time::ms(10))};
  auto t = cpu_task(Time::ms(10), Time::ms(1));
  t.arrival_jitter = Time::ms(5);
  cfg.tasks = {t};
  Simulation sim(cfg);
  sim.run(Time::ms(1'000));
  const auto released = sim.stats().jobs_released;
  // Expected inter-arrival 12.5ms: ~80 jobs instead of 100.
  EXPECT_LT(released, 95u);
  EXPECT_GT(released, 65u);
  EXPECT_EQ(sim.stats().deadline_misses, 0u);
}

TEST(Sporadic, JitterIsSeededAndReproducible) {
  auto releases = [](std::uint64_t seed) {
    SimConfig cfg;
    cfg.num_cores = 1;
    cfg.jitter_seed = seed;
    cfg.vcpus = {server(Time::ms(10), Time::ms(10))};
    auto t = cpu_task(Time::ms(10), Time::ms(1));
    t.arrival_jitter = Time::ms(4);
    cfg.tasks = {t};
    Simulation sim(cfg);
    sim.run(Time::ms(500));
    return sim.stats().jobs_released;
  };
  EXPECT_EQ(releases(7), releases(7));
  // (Different seeds usually differ, but equality is not impossible;
  // assert only determinism.)
}

TEST(Sporadic, FlatteningBudgetIsRobustToSporadicArrivals) {
  // Theorem 1's interface (Θ = e, Π = p) keeps meeting deadlines when the
  // task turns sporadic: arrivals are at least p apart, so each job finds
  // at least one full budget window before its deadline.
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.jitter_seed = 11;
  cfg.vcpus = {server(Time::ms(10), Time::ms(6))};
  auto t = cpu_task(Time::ms(10), Time::ms(6));
  t.arrival_jitter = Time::ms(7);
  cfg.tasks = {t};
  Simulation sim(cfg);
  sim.run(Time::sec(2));
  EXPECT_EQ(sim.stats().deadline_misses, 0u);
  EXPECT_GT(sim.stats().jobs_completed, 80u);
}

TEST(Sporadic, RegulatedMultiTaskVcpuToleratesJitter) {
  // A harmonic pair on one Theorem-2 VCPU (Θ = Π·U) with sporadic
  // arrivals: the regulated supply analysis covers sporadic dbf too.
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.jitter_seed = 13;
  cfg.vcpus = {server(Time::ms(10), Time::ms(4))};  // U = 0.2 + 0.2
  auto a = cpu_task(Time::ms(10), Time::ms(2));
  a.arrival_jitter = Time::ms(3);
  auto b = cpu_task(Time::ms(20), Time::ms(4));
  b.arrival_jitter = Time::ms(6);
  cfg.tasks = {a, b};
  Simulation sim(cfg);
  sim.run(Time::sec(2));
  EXPECT_EQ(sim.stats().deadline_misses, 0u);
}

// ------------------------------------------- dynamic cache repartition ----

TEST(CacheRepartition, MoreWaysShrinkResponseTimes) {
  // Cache-sensitive task starts with 2 ways; at t = 250ms the core is
  // repartitioned to all 20 (a vCAT region resize). Responses shrink.
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.cache_partitions = 20;
  cfg.cache_alloc = {2};
  cfg.vcpus = {server(Time::ms(50), Time::ms(50))};
  SimTaskSpec t;
  t.period = Time::ms(50);
  t.cpu_work = Time::ms(2);
  t.mem_work_ref = Time::ms(4);
  t.miss_amp = 3.0;
  cfg.tasks = {t};
  Simulation sim(cfg);
  sim.schedule_cache_update(Time::ms(250), 0, 20);
  sim.run(Time::ms(500));

  const auto events = sim.trace().count(TraceKind::kJobComplete);
  EXPECT_GE(events, 9u);
  // Requirement with 2 ways: 2 + 4·miss(2) > 2 + 4 = 6ms; with 20 ways
  // exactly 6ms. Max response reflects the early phase; after the switch
  // jobs complete in 6ms — check via stats on a second run without update.
  SimConfig rich = cfg;
  rich.cache_alloc = {20};
  Simulation rich_sim(rich);
  rich_sim.run(Time::ms(500));
  EXPECT_GT(sim.stats().per_task[0].max_response,
            rich_sim.stats().per_task[0].max_response);
}

TEST(CacheRepartition, InFlightJobKeepsExecutedFraction) {
  // A 10ms-cpu + 10ms-mem job under full cache; halfway through, the core
  // is cut to 1 way (miss_amp 2 → remaining work doubles its memory part).
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.cache_partitions = 20;
  cfg.cache_alloc = {20};
  cfg.vcpus = {server(Time::ms(100), Time::ms(100))};
  SimTaskSpec t;
  t.period = Time::ms(100);
  t.cpu_work = Time::ms(10);
  t.mem_work_ref = Time::ms(10);
  t.miss_amp = 2.0;
  cfg.tasks = {t};
  Simulation sim(cfg);
  sim.schedule_cache_update(Time::ms(10), 0, 1);
  sim.run(Time::ms(100));
  // R(20) = 20ms; at 10ms half remains; new R(1) = 10 + 10·2 = 30ms, so
  // remaining 0.5 · 30 = 15ms → completion at 25ms.
  EXPECT_EQ(sim.stats().per_task[0].max_response, Time::ms(25));
}

TEST(CacheRepartition, RejectsBadArguments) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(10), Time::ms(5))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2))};
  Simulation sim(cfg);
  EXPECT_THROW(sim.schedule_cache_update(Time::ms(1), 7, 4), util::Error);
  EXPECT_THROW(sim.schedule_cache_update(Time::ms(1), 0, 0), util::Error);
  EXPECT_THROW(sim.schedule_cache_update(Time::ms(1), 0, 99), util::Error);
}

// ------------------------------------------------------- BW regulation ----

SimConfig memory_hog_config(unsigned bw_partitions) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.cache_partitions = 20;
  cfg.bw_regulation = true;
  cfg.bw_alloc = {bw_partitions};
  cfg.regulation_period = Time::ms(1);
  cfg.requests_per_partition = 1000;
  cfg.vcpus = {server(Time::ms(100), Time::ms(100))};
  SimTaskSpec t;
  t.period = Time::ms(100);
  t.cpu_work = Time::ms(5);
  t.mem_work_ref = Time::ms(15);
  t.mem_requests_ref = 200'000;  // 10k requests/ms while executing
  cfg.tasks = {t};
  return cfg;
}

TEST(Simulation, TightBandwidthBudgetThrottles) {
  Simulation sim(memory_hog_config(2));  // 2k requests/ms vs 10k demanded
  sim.run(Time::ms(400));
  const auto s = sim.stats();
  EXPECT_GT(s.throttles, 50u);
  EXPECT_GT(s.refills, 300u);
  // Throttling leaves the core idle: busy fraction well below 1.
  EXPECT_LT(s.core_busy_fraction[0], 0.9);
}

TEST(Simulation, AmpleBandwidthBudgetNeverThrottles) {
  Simulation sim(memory_hog_config(15));  // 15k requests/ms vs 10k
  sim.run(Time::ms(400));
  EXPECT_EQ(sim.stats().throttles, 0u);
}

TEST(Simulation, RegulatorEnforcesPerPeriodBudget) {
  // Total requests can never exceed budget · (periods + 1).
  Simulation sim(memory_hog_config(3));
  sim.run(Time::ms(400));
  const auto s = sim.stats();
  const double budget_per_period = 3 * 1000;
  EXPECT_LE(s.total_mem_requests,
            budget_per_period * static_cast<double>(s.refills + 1) + 1.0);
  EXPECT_GT(s.total_mem_requests, 0.0);
}

TEST(Simulation, ThrottlingStretchesResponseTimes) {
  Simulation tight(memory_hog_config(2));
  tight.run(Time::ms(400));
  Simulation ample(memory_hog_config(15));
  ample.run(Time::ms(400));
  EXPECT_GT(tight.stats().per_task[0].max_response,
            ample.stats().per_task[0].max_response);
}

TEST(Simulation, IsolationAcrossCores) {
  // A memory hog on core 0 must not delay a CPU-bound task on core 1.
  SimConfig cfg = memory_hog_config(2);
  cfg.num_cores = 2;
  cfg.cache_alloc = {10, 10};
  cfg.bw_alloc = {2, 10};
  cfg.vcpus.push_back(server(Time::ms(10), Time::ms(10), /*core=*/1));
  cfg.tasks.push_back(cpu_task(Time::ms(10), Time::ms(3), /*vcpu=*/1));
  Simulation sim(cfg);
  sim.run(Time::ms(400));
  const auto s = sim.stats();
  EXPECT_EQ(s.per_task[1].deadline_misses, 0u);
  EXPECT_EQ(s.per_task[1].max_response, Time::ms(3));
}

// ------------------------------------------------------- bus contention ----

SimConfig contention_pair(bool regulated, bool contention) {
  // Two streaming tasks, each demanding ~8k requests/ms while running, on a
  // bus that carries 10k/ms total.
  SimConfig cfg;
  cfg.num_cores = 2;
  cfg.cache_partitions = 10;
  cfg.cache_alloc = {5, 5};
  cfg.bw_alloc = {5, 5};
  cfg.requests_per_partition = 1000;
  cfg.bw_regulation = regulated;
  cfg.bus_contention = contention;
  cfg.bus_requests_per_period = 10'000;
  for (unsigned k = 0; k < 2; ++k) {
    cfg.vcpus.push_back(server(Time::ms(40), Time::ms(40), k));
    SimTaskSpec t;
    t.period = Time::ms(40);
    t.cpu_work = Time::ms(2);
    t.mem_work_ref = Time::ms(8);
    t.mem_requests_ref = 80'000;  // 8k/ms while executing
    t.vcpu = k;
    cfg.tasks.push_back(t);
  }
  return cfg;
}

TEST(BusContention, UnregulatedSharingStretchesBothTasks) {
  // Run the pair: aggregate demand 16k/ms > 10k/ms capacity → both slow.
  Simulation pair(contention_pair(false, true));
  pair.run(Time::ms(400));
  const auto together = pair.stats().per_task[0].max_response;
  // Solo reference: same model with the second task removed.
  SimConfig solo_cfg = contention_pair(false, true);
  solo_cfg.tasks.pop_back();
  solo_cfg.vcpus.pop_back();
  solo_cfg.num_cores = 1;
  solo_cfg.cache_alloc = {5};
  solo_cfg.bw_alloc = {5};
  Simulation solo(solo_cfg);
  solo.run(Time::ms(400));
  const auto alone_resp = solo.stats().per_task[0].max_response;
  EXPECT_EQ(alone_resp, Time::ms(10));  // 2 + 8, no stall (8k < 10k)
  EXPECT_GT(together, alone_resp + Time::ms(2));  // visible interference
}

TEST(BusContention, RegulationRestoresIsolation) {
  // With an ample bus (20k/ms) the regulator is the binding constraint:
  // each task is throttled to its own 5k/ms budget instead of stealing from
  // the other core, so response times follow the *allocated* BW only.
  SimConfig cfg = contention_pair(true, true);
  cfg.bus_requests_per_period = 20'000;
  Simulation sim(cfg);
  sim.run(Time::ms(400));
  const auto s = sim.stats();
  // Each task: demand 8k/ms vs budget 5k/ms → throttled, stretch factor
  // 8/5 on the memory-active execution → response ≈ 10ms · 1.6 ± rounding.
  EXPECT_GT(s.throttles, 0u);
  EXPECT_LT(s.per_task[0].max_response, Time::ms(18));
  EXPECT_LT(s.per_task[1].max_response, Time::ms(18));
  EXPECT_EQ(s.deadline_misses, 0u);
}

TEST(BusContention, ProportionalSharingSlowsEvenLightVictims) {
  // The bus serves requests proportionally to issue rate, so even the
  // light consumer (3k/ms) is stretched when the bus is oversubscribed
  // (3k + 8k > 10k capacity) — the interference vC2M's regulation removes.
  SimConfig cfg = contention_pair(false, true);
  cfg.tasks[0].mem_requests_ref = 30'000;  // 3k/ms
  Simulation sim(cfg);
  sim.run(Time::ms(400));
  const auto s = sim.stats();
  EXPECT_GT(s.per_task[0].max_response, Time::ms(10));
  EXPECT_GT(s.per_task[1].max_response, Time::ms(10));
}

// ----------------------------------------------------------- profiling ----

TEST(Profiling, WorkloadFromProfileSplitsReferenceWcet) {
  const auto& p = workload::find_profile("ferret");
  ProfilingConfig cfg;
  const auto w = workload_from_profile(p, Time::ms(10), cfg);
  EXPECT_EQ(w.cpu_work + w.mem_work_ref, Time::ms(10));
  EXPECT_NEAR(w.cpu_work.to_ms(), (1.0 - p.mem_frac) * 10.0, 0.01);
  EXPECT_GT(w.mem_requests_ref, 0.0);
}

TEST(Profiling, MeasuredWcetEqualsRequirementWithoutStalls) {
  WorkloadModel w;
  w.cpu_work = Time::ms(4);
  w.mem_work_ref = Time::ms(2);
  w.miss_amp = 2.0;
  ProfilingConfig cfg;
  // Full allocation: no misses beyond reference, no throttling.
  EXPECT_EQ(profile_wcet(w, 20, 20, cfg), Time::ms(6));
}

TEST(Profiling, MeasuredSurfaceIsMonotone) {
  const auto& p = workload::find_profile("dedup");
  ProfilingConfig cfg;
  cfg.jobs = 6;  // keep the test fast
  const auto w = workload_from_profile(p, Time::ms(8), cfg);
  const model::ResourceGrid grid{2, 20, 1, 20};
  // Sample a coarse sub-grid (the full sweep belongs to the bench).
  for (const unsigned c : {2u, 8u, 20u}) {
    for (const unsigned b : {1u, 6u, 20u}) {
      const Time e_cb = profile_wcet(w, c, b, cfg);
      EXPECT_GE(e_cb, profile_wcet(w, 20, 20, cfg) - Time::us(1));
      if (c < 20) {
        EXPECT_GE(profile_wcet(w, 2, b, cfg), e_cb - Time::us(1));
      }
      if (b < 20) {
        EXPECT_GE(profile_wcet(w, c, 1, cfg), e_cb - Time::us(1));
      }
    }
  }
  (void)grid;
}

TEST(Profiling, ThrottlingDominatesAtTinyBandwidth) {
  const auto& p = workload::find_profile("streamcluster");
  ProfilingConfig cfg;
  cfg.jobs = 6;
  const auto w = workload_from_profile(p, Time::ms(8), cfg);
  const Time rich = profile_wcet(w, 20, 20, cfg);
  const Time starved = profile_wcet(w, 20, 1, cfg);
  EXPECT_GT(starved, rich * 2);  // bw_sat 5.5 → heavy stretch at b = 1
}

// ----------------------------------------------------------- accounting ----

TEST(Simulation, ResponseStatisticsAreCoherent) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(10), Time::ms(5))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2)),
               cpu_task(Time::ms(20), Time::ms(3))};
  Simulation sim(cfg);
  sim.run(Time::ms(400));
  const auto s = sim.stats();
  for (const auto& t : s.per_task) {
    ASSERT_EQ(t.response_ms.count(), t.completed);
    EXPECT_LE(t.response_ms.mean(), t.max_response.to_ms() + 1e-9);
    EXPECT_NEAR(t.response_ms.max(), t.max_response.to_ms(), 1e-9);
    EXPECT_GT(t.response_ms.min(), 0.0);
  }
  // Task 0 runs first every period (earlier deadline): constant 2ms
  // response, zero variance.
  EXPECT_NEAR(s.per_task[0].response_ms.stddev(), 0.0, 1e-9);
  EXPECT_NEAR(s.per_task[0].response_ms.mean(), 2.0, 1e-9);
}

TEST(Simulation, PerVcpuStatsTrackServerActivity) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(10), Time::ms(4)),
               server(Time::ms(20), Time::ms(6))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(3), 0),
               cpu_task(Time::ms(20), Time::ms(5), 1)};
  Simulation sim(cfg);
  sim.run(Time::ms(200));
  const auto s = sim.stats();
  ASSERT_EQ(s.per_vcpu.size(), 2u);
  EXPECT_EQ(s.per_vcpu[0].releases, 21u);  // 0, 10, ..., 200
  EXPECT_EQ(s.per_vcpu[1].releases, 11u);
  // Idling servers consume their whole budget every period they complete.
  EXPECT_EQ(s.per_vcpu[0].exhaustions, 20u);
  EXPECT_GE(s.per_vcpu[0].switches_in, 20u);
  // Budget consumed ≈ 20 periods · 4ms.
  EXPECT_EQ(s.per_vcpu[0].budget_consumed, Time::ms(80));
}

TEST(Simulation, ThrottledTimeAccounted) {
  Simulation sim(memory_hog_config(2));
  sim.run(Time::ms(400));
  const auto s = sim.stats();
  ASSERT_EQ(s.core_throttled_time.size(), 1u);
  // Demand 10k/ms against a 2k/ms budget: throttled ~80% of each period.
  const double frac = s.core_throttled_time[0].ratio(Time::ms(400));
  EXPECT_GT(frac, 0.5);
  EXPECT_LT(frac, 0.95);
}

TEST(Simulation, StatsAreInternallyConsistent) {
  SimConfig cfg;
  cfg.num_cores = 2;
  cfg.vcpus = {server(Time::ms(10), Time::ms(5), 0),
               server(Time::ms(20), Time::ms(10), 1)};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(4), 0),
               cpu_task(Time::ms(20), Time::ms(9), 1)};
  Simulation sim(cfg);
  sim.run(Time::ms(200));
  const auto s = sim.stats();
  EXPECT_EQ(s.jobs_released, 21u + 11u);  // horizon releases included
  EXPECT_GE(s.jobs_released, s.jobs_completed);
  EXPECT_EQ(s.per_task.size(), 2u);
  EXPECT_EQ(s.core_busy_fraction.size(), 2u);
}

// --------------------------------------------------------------- trace ----

TEST(Trace, EventsOfFiltersOneKindInTimeOrder) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.capture_trace = true;
  cfg.vcpus = {server(Time::ms(10), Time::ms(4)),
               server(Time::ms(20), Time::ms(6))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(3), 0),
               cpu_task(Time::ms(20), Time::ms(5), 1)};
  Simulation sim(cfg);
  sim.run(Time::ms(400));
  const auto& trace = sim.trace();
  ASSERT_GT(trace.events().size(), 100u);
  for (int k = 0; k < static_cast<int>(TraceKind::kCount_); ++k) {
    const auto kind = static_cast<TraceKind>(k);
    const auto evs = trace.events_of(kind);
    // The per-kind counter sizes the filtered copy exactly.
    EXPECT_EQ(evs.size(), trace.count(kind)) << to_string(kind);
    for (const auto& ev : evs) EXPECT_EQ(ev.kind, kind);
    // Recorded order is time order (the DES never goes backwards).
    for (std::size_t i = 0; i + 1 < evs.size(); ++i)
      EXPECT_LE(evs[i].when, evs[i + 1].when) << to_string(kind);
  }
}

}  // namespace
}  // namespace vc2m::sim
