#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "analysis/schedulability.h"
#include "core/admission.h"
#include "core/solutions.h"
#include "model/platform.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vc2m::core {
namespace {

using model::PlatformSpec;
using model::Taskset;
using util::Rng;

Taskset vm_taskset(double util, int vm_id, std::uint64_t seed) {
  workload::GeneratorConfig cfg;
  cfg.grid = PlatformSpec::A().grid;
  cfg.target_ref_utilization = util;
  Rng rng(seed);
  auto tasks = workload::generate_taskset(cfg, rng);
  for (auto& t : tasks) t.vm = vm_id;
  return tasks;
}

AdmissionState boot_system(double util, std::uint64_t seed) {
  const auto platform = PlatformSpec::A();
  const auto tasks = vm_taskset(util, 0, seed);
  Rng rng(seed + 1);
  const auto res =
      solve(Solution::kHeuristicOverheadFree, tasks, platform, {}, rng);
  AdmissionState state;
  state.vcpus = res.vcpus;
  state.mapping = res.mapping;
  return state;
}

void expect_consistent(const AdmissionState& st,
                       const PlatformSpec& platform) {
  EXPECT_LE(st.mapping.total_cache(), platform.total_cache());
  EXPECT_LE(st.mapping.total_bw(), platform.total_bw());
  EXPECT_LE(st.mapping.cores_used, platform.cores);
  std::size_t placed = 0;
  for (unsigned k = 0; k < st.mapping.cores_used; ++k) {
    placed += st.mapping.vcpus_on_core[k].size();
    EXPECT_TRUE(analysis::core_schedulable(st.vcpus,
                                           st.mapping.vcpus_on_core[k],
                                           st.mapping.cache[k],
                                           st.mapping.bw[k]))
        << "core " << k;
  }
  EXPECT_EQ(placed, st.vcpus.size());
}

TEST(Admission, SmallVmJoinsRunningSystem) {
  const auto platform = PlatformSpec::A();
  const auto base = boot_system(0.8, 10);
  ASSERT_TRUE(base.mapping.schedulable);

  const auto newcomer = vm_taskset(0.3, 1, 11);
  Rng rng(12);
  VmAllocConfig vm;
  vm.max_vcpus_per_vm = platform.cores;
  const auto res = admit_vm(base, newcomer, 1, platform, vm, rng);
  ASSERT_TRUE(res.admitted);
  expect_consistent(res.state, platform);
  EXPECT_GT(res.state.vcpus.size(), base.vcpus.size());
}

TEST(Admission, ExistingVcpusAreNeverMovedOrShrunk) {
  const auto platform = PlatformSpec::A();
  const auto base = boot_system(0.9, 20);
  const auto newcomer = vm_taskset(0.4, 1, 21);
  Rng rng(22);
  VmAllocConfig vm;
  vm.max_vcpus_per_vm = platform.cores;
  const auto res = admit_vm(base, newcomer, 1, platform, vm, rng);
  if (!res.admitted) GTEST_SKIP();

  // Every pre-existing VCPU stays on its core; its core never lost
  // partitions.
  for (unsigned k = 0; k < base.mapping.cores_used; ++k) {
    EXPECT_GE(res.state.mapping.cache[k], base.mapping.cache[k]);
    EXPECT_GE(res.state.mapping.bw[k], base.mapping.bw[k]);
    for (const std::size_t v : base.mapping.vcpus_on_core[k]) {
      const auto& now = res.state.mapping.vcpus_on_core[k];
      EXPECT_NE(std::find(now.begin(), now.end(), v), now.end());
    }
  }
}

TEST(Admission, OverloadIsRejectedAtomically) {
  const auto platform = PlatformSpec::A();
  const auto base = boot_system(1.2, 30);
  ASSERT_TRUE(base.mapping.schedulable);
  const auto monster = vm_taskset(3.5, 1, 31);
  Rng rng(32);
  VmAllocConfig vm;
  vm.max_vcpus_per_vm = platform.cores;
  const auto res = admit_vm(base, monster, 1, platform, vm, rng);
  EXPECT_FALSE(res.admitted);
  // Rejection leaves no partial state behind.
  EXPECT_TRUE(res.state.vcpus.empty());
}

TEST(Admission, DuplicateVmIdRejected) {
  const auto platform = PlatformSpec::A();
  const auto base = boot_system(0.5, 40);
  const auto dup = vm_taskset(0.2, 0, 41);  // vm id 0 already running
  Rng rng(42);
  EXPECT_THROW(admit_vm(base, dup, 0, platform, {}, rng), util::Error);
}

TEST(Admission, RemoveVmCompactsState) {
  const auto platform = PlatformSpec::A();
  auto base = boot_system(0.7, 50);
  const auto newcomer = vm_taskset(0.3, 1, 51);
  Rng rng(52);
  VmAllocConfig vm;
  vm.max_vcpus_per_vm = platform.cores;
  const auto admitted = admit_vm(base, newcomer, 1, platform, vm, rng);
  ASSERT_TRUE(admitted.admitted);

  const auto after = remove_vm(admitted.state, 1);
  EXPECT_EQ(after.vcpus.size(), base.vcpus.size());
  for (const auto& v : after.vcpus) EXPECT_NE(v.vm, 1);
  expect_consistent(after, platform);
}

TEST(Admission, RemoveUnknownVmThrows) {
  const auto base = boot_system(0.5, 60);
  EXPECT_THROW(remove_vm(base, 77), util::Error);
}

/// Canonical byte-exact rendering of an AdmissionState: every VCPU (vm,
/// period, task indices, full budget surface) and every core (cache, bw,
/// residents). Two states with equal fingerprints are indistinguishable to
/// the analysis.
std::string fingerprint(const AdmissionState& st) {
  std::ostringstream os;
  for (const auto& v : st.vcpus) {
    os << v.vm << ":" << v.period.raw_ns() << ":";
    for (const std::size_t t : v.tasks) os << t << ",";
    const auto& g = v.budget.grid();
    for (unsigned c = g.c_min; c <= g.c_max; ++c)
      for (unsigned b = g.b_min; b <= g.b_max; ++b)
        os << v.budget.at(c, b).raw_ns() << ";";
    os << "|";
  }
  const auto& m = st.mapping;
  os << m.schedulable << "/" << m.cores_used << "/";
  for (std::size_t k = 0; k < m.vcpus_on_core.size(); ++k) {
    os << m.cache[k] << "+" << m.bw[k] << "[";
    for (const std::size_t vi : m.vcpus_on_core[k]) os << vi << ",";
    os << "]";
  }
  return os.str();
}

TEST(AdmissionProperty, RandomChurnEndingEmptyFreesEverything) {
  // Property: any admit/remove sequence that ends with every admitted VM
  // removed must return the system to the empty state — all cores trimmed,
  // every cache way and BW partition back in the free pools. A leak here
  // means remove_vm strands capacity a long-running service never gets
  // back.
  const auto platform = PlatformSpec::A();
  Rng rng(123);
  VmAllocConfig vm;
  vm.max_vcpus_per_vm = platform.cores;
  AdmissionState state;
  std::vector<int> live;
  int next_vm = 0;
  int admitted = 0;
  for (int step = 0; step < 40; ++step) {
    if (!live.empty() && rng.bernoulli(0.4)) {
      const std::size_t i = rng.index(live.size());
      state = remove_vm(state, live[i]);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
      expect_consistent(state, platform);
    } else {
      const int id = next_vm++;
      const auto tasks =
          vm_taskset(0.15 + 0.25 * rng.uniform01(), id, 1000 + id);
      const auto res = admit_vm(state, tasks, id, platform, vm, rng);
      if (res.admitted) {
        state = res.state;
        live.push_back(id);
        ++admitted;
        expect_consistent(state, platform);
      }
    }
  }
  ASSERT_GT(admitted, 0) << "churn never admitted anything";
  while (!live.empty()) {
    state = remove_vm(state, live.back());
    live.pop_back();
  }
  EXPECT_TRUE(state.vcpus.empty());
  EXPECT_EQ(state.mapping.cores_used, 0u);
  EXPECT_EQ(state.mapping.total_cache(), 0u);
  EXPECT_EQ(state.mapping.total_bw(), 0u);
  // The schedulable verdict is history, not held capacity; everything else
  // must match a pristine empty system exactly.
  AdmissionState empty;
  empty.mapping.schedulable = state.mapping.schedulable;
  EXPECT_EQ(fingerprint(state), fingerprint(empty));
}

TEST(AdmissionProperty, RejectionLeavesCallerStateByteIdentical) {
  // Property: a rejected admission is a pure no-op — the caller's state is
  // byte-identical afterwards, across many randomized oversized requests.
  const auto platform = PlatformSpec::A();
  const auto base = boot_system(1.2, 90);
  ASSERT_TRUE(base.mapping.schedulable);
  const std::string before = fingerprint(base);
  Rng rng(91);
  VmAllocConfig vm;
  vm.max_vcpus_per_vm = platform.cores;
  int rejections = 0;
  for (int i = 1; i <= 8; ++i) {
    const auto monster = vm_taskset(2.5 + 0.5 * i, i, 92 + i);
    const auto res = admit_vm(base, monster, i, platform, vm, rng);
    if (!res.admitted) {
      ++rejections;
      EXPECT_TRUE(res.state.vcpus.empty());
    }
    EXPECT_EQ(fingerprint(base), before) << "request " << i;
  }
  EXPECT_GT(rejections, 0) << "no request was large enough to be rejected";
}

TEST(AdmissionProperty, ResizeRollbackKeepsOriginalByteIdentical) {
  const auto platform = PlatformSpec::A();
  auto state = boot_system(0.6, 95);
  Rng rng(96);
  VmAllocConfig vm;
  vm.max_vcpus_per_vm = platform.cores;
  const auto small = vm_taskset(0.25, 1, 97);
  const auto admitted = admit_vm(state, small, 1, platform, vm, rng);
  ASSERT_TRUE(admitted.admitted);
  state = admitted.state;
  const std::string before = fingerprint(state);

  // A resize to an impossible workload must be rejected and roll back: the
  // original VM keeps running exactly as it was.
  const auto monster = vm_taskset(4.0, 1, 98);
  const auto rejected = resize_vm(state, monster, 1, platform, vm, rng);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_TRUE(rejected.state.vcpus.empty());
  EXPECT_EQ(fingerprint(state), before);

  // A feasible resize commits: vm 1 present, system consistent.
  const auto grown = vm_taskset(0.35, 1, 99);
  const auto resized = resize_vm(state, grown, 1, platform, vm, rng);
  if (resized.admitted) {
    expect_consistent(resized.state, platform);
    EXPECT_TRUE(std::any_of(
        resized.state.vcpus.begin(), resized.state.vcpus.end(),
        [](const model::Vcpu& v) { return v.vm == 1; }));
  }
  EXPECT_EQ(fingerprint(state), before);  // input state never mutated

  // Resizing an absent VM is an error, not a silent admit.
  EXPECT_THROW(resize_vm(state, vm_taskset(0.2, 9, 100), 9, platform, vm, rng),
               util::Error);
}

TEST(Admission, AdmitRemoveCycleIsStable) {
  // Admit and remove a sequence of VMs; the system must stay consistent
  // and end with only the original VM.
  const auto platform = PlatformSpec::A();
  AdmissionState state = boot_system(0.6, 70);
  const std::size_t original = state.vcpus.size();
  Rng rng(71);
  VmAllocConfig vm;
  vm.max_vcpus_per_vm = platform.cores;
  for (int round = 1; round <= 4; ++round) {
    const auto tasks = vm_taskset(0.25, round, 72 + round);
    const auto res = admit_vm(state, tasks, round, platform, vm, rng);
    if (res.admitted) {
      state = res.state;
      expect_consistent(state, platform);
    }
  }
  for (int round = 1; round <= 4; ++round) {
    const bool present = std::any_of(
        state.vcpus.begin(), state.vcpus.end(),
        [&](const model::Vcpu& v) { return v.vm == round; });
    if (present) state = remove_vm(state, round);
  }
  EXPECT_EQ(state.vcpus.size(), original);
  expect_consistent(state, platform);
}

}  // namespace
}  // namespace vc2m::core
