// Golden-equivalence suite for the allocation engine.
//
// The golden file (tests/golden/engine.golden) was captured from the
// pre-registry allocator (the closed `Solution` enum dispatched inside
// core::solve) immediately before the pluggable-engine refactor. Every
// refactor of the allocation stack must keep the engine *bit-identical* on
// these scenarios: the schedulable flag, the full VCPU→core mapping, the
// per-core partition counts, and the VCPU parameter surfaces all enter the
// digest. The sweep section additionally pins the parallel experiment at
// --jobs 1/2/8 and records the seed allocator's total dbf-evaluation count,
// against which the memoizing engine must be *strictly* cheaper.
//
// Regenerating (only when an intentional behavior change is accepted):
//   VC2M_GOLDEN_CAPTURE=1 ./test_golden
// Note the `seed-effort` line is a pre-refactor measurement: recapturing
// with the memoizing engine would overwrite the baseline the strict-
// improvement assertion compares against, so a recapture must either keep
// that line or consciously re-baseline it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/admission.h"
#include "core/exact.h"
#include "core/experiment.h"
#include "core/solutions.h"
#include "model/platform.h"
#include "util/instrument.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace vc2m;

#ifndef VC2M_GOLDEN_DIR
#error "VC2M_GOLDEN_DIR must point at tests/golden"
#endif

const char* const kGoldenFile = VC2M_GOLDEN_DIR "/engine.golden";

bool capture_mode() { return std::getenv("VC2M_GOLDEN_CAPTURE") != nullptr; }

// ---------------------------------------------------------------------------
// Digest helpers

std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Hash of everything that defines a VCPU vector: periods, owners, served
/// task lists, and the full budget surface in raw nanoseconds.
std::uint64_t vcpu_hash(const std::vector<model::Vcpu>& vcpus) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const auto& v : vcpus) {
    h = fnv1a(h, static_cast<std::uint64_t>(v.period.raw_ns()));
    h = fnv1a(h, static_cast<std::uint64_t>(v.vm));
    for (const std::size_t t : v.tasks) h = fnv1a(h, t);
    const auto& g = v.budget.grid();
    for (unsigned c = g.c_min; c <= g.c_max; ++c)
      for (unsigned b = g.b_min; b <= g.b_max; ++b)
        h = fnv1a(h, static_cast<std::uint64_t>(v.budget.at(c, b).raw_ns()));
  }
  return h;
}

std::string mapping_digest(const core::HvAllocResult& m) {
  std::ostringstream os;
  os << "cores=" << m.cores_used << "|cache=";
  for (std::size_t k = 0; k < m.cache.size(); ++k)
    os << (k ? "," : "") << m.cache[k];
  os << "|bw=";
  for (std::size_t k = 0; k < m.bw.size(); ++k)
    os << (k ? "," : "") << m.bw[k];
  os << "|map=";
  for (std::size_t k = 0; k < m.vcpus_on_core.size(); ++k) {
    if (k) os << ";";
    for (std::size_t i = 0; i < m.vcpus_on_core[k].size(); ++i)
      os << (i ? "," : "") << m.vcpus_on_core[k][i];
  }
  return os.str();
}

std::string solve_digest(const core::SolveResult& res) {
  std::ostringstream os;
  char hex[24];
  os << "sched=" << (res.schedulable ? 1 : 0) << "|" << mapping_digest(res.mapping);
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(vcpu_hash(res.vcpus)));
  os << "|vhash=" << hex;
  return os.str();
}

// ---------------------------------------------------------------------------
// Scenario grid (fixed forever — golden lines are positional)

struct Scenario {
  const char* platform;  // "A" or "C"
  workload::UtilDist dist;
  double util;
  int num_vms;
  std::uint64_t seed;
};

const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"A", workload::UtilDist::kUniform, 0.5, 1, 9001},
      {"A", workload::UtilDist::kUniform, 0.5, 1, 9002},
      {"A", workload::UtilDist::kUniform, 1.0, 1, 9003},
      {"A", workload::UtilDist::kUniform, 1.0, 2, 9004},
      {"A", workload::UtilDist::kUniform, 1.5, 1, 9005},
      {"A", workload::UtilDist::kUniform, 1.5, 2, 9006},
      {"A", workload::UtilDist::kBimodalHeavy, 1.0, 1, 9007},
      {"A", workload::UtilDist::kBimodalHeavy, 1.4, 1, 9008},
      {"C", workload::UtilDist::kUniform, 0.8, 1, 9009},
      {"C", workload::UtilDist::kBimodalLight, 1.2, 2, 9010},
  };
  return kScenarios;
}

model::PlatformSpec platform_of(const std::string& name) {
  return name == "A" ? model::PlatformSpec::A() : model::PlatformSpec::C();
}

model::Taskset scenario_taskset(const Scenario& sc) {
  workload::GeneratorConfig gen;
  gen.grid = platform_of(sc.platform).grid;
  gen.target_ref_utilization = sc.util;
  gen.dist = sc.dist;
  gen.num_vms = sc.num_vms;
  util::Rng rng(sc.seed);
  return workload::generate_taskset(gen, rng);
}

std::vector<std::string> solve_lines() {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < scenarios().size(); ++i) {
    const Scenario& sc = scenarios()[i];
    const auto tasks = scenario_taskset(sc);
    const auto platform = platform_of(sc.platform);
    for (std::size_t si = 0; si < core::all_solutions().size(); ++si) {
      util::Rng rng(sc.seed * 1000 + si);
      const auto res = core::solve(core::all_solutions()[si], tasks, platform,
                                   {}, rng);
      std::ostringstream os;
      os << "solve|" << i << "|" << si << "|" << solve_digest(res);
      lines.push_back(os.str());
    }
  }
  return lines;
}

/// Admission scenarios: place one VM offline, then admit a second VM online.
std::vector<std::string> admission_lines() {
  std::vector<std::string> lines;
  const auto platform = model::PlatformSpec::A();
  for (int rep = 0; rep < 3; ++rep) {
    workload::GeneratorConfig gen;
    gen.grid = platform.grid;
    gen.target_ref_utilization = 0.8;
    util::Rng gen_rng(7100 + rep);
    auto base = workload::generate_taskset(gen, gen_rng);

    util::Rng rng(7200 + rep);
    const auto res = core::solve(core::Solution::kHeuristicOverheadFree, base,
                                 platform, {}, rng);
    std::ostringstream os;
    os << "admit|" << rep << "|";
    if (!res.schedulable) {
      os << "base-unschedulable";
      lines.push_back(os.str());
      continue;
    }
    core::AdmissionState state{res.vcpus, res.mapping};

    gen.target_ref_utilization = 0.5;
    util::Rng gen2(7300 + rep);
    auto extra = workload::generate_taskset(gen, gen2);
    for (auto& t : extra) t.vm = 101;

    core::VmAllocConfig vm_cfg;
    vm_cfg.max_vcpus_per_vm = platform.cores;
    util::Rng admit_rng(7400 + rep);
    const auto admit =
        core::admit_vm(state, extra, 101, platform, vm_cfg, admit_rng);
    os << "admitted=" << (admit.admitted ? 1 : 0);
    if (admit.admitted) {
      char hex[24];
      os << "|" << mapping_digest(admit.state.mapping);
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(vcpu_hash(admit.state.vcpus)));
      os << "|vhash=" << hex;
    }
    lines.push_back(os.str());
  }
  return lines;
}

/// Exact-search scenarios: the exhaustive allocator on small VCPU sets.
std::vector<std::string> exact_lines() {
  std::vector<std::string> lines;
  const auto platform = model::PlatformSpec::C();
  for (int rep = 0; rep < 3; ++rep) {
    workload::GeneratorConfig gen;
    gen.grid = platform.grid;
    gen.target_ref_utilization = 0.6 + 0.2 * rep;
    util::Rng gen_rng(8100 + rep);
    const auto tasks = workload::generate_taskset(gen, gen_rng);

    util::Rng rng(8200 + rep);
    const auto res = core::solve(core::Solution::kHeuristicOverheadFree, tasks,
                                 platform, {}, rng);
    std::ostringstream os;
    os << "exact|" << rep << "|";
    if (res.vcpus.empty() || res.vcpus.size() > 8) {
      os << "skipped";  // keep line positional even if generation drifts
      lines.push_back(os.str());
      continue;
    }
    core::ExactConfig ec;
    const auto exact = core::allocate_exact(res.vcpus, platform, ec);
    os << "sched=" << (exact.schedulable ? 1 : 0) << "|"
       << mapping_digest(exact);
    lines.push_back(os.str());
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Sweep section (Fig. 2-shaped, must be jobs-independent)

core::ExperimentConfig sweep_config(int jobs) {
  core::ExperimentConfig cfg;
  cfg.platform = model::PlatformSpec::A();
  cfg.dist = workload::UtilDist::kUniform;
  cfg.util_lo = 0.3;
  cfg.util_hi = 1.5;
  cfg.util_step = 0.3;
  cfg.tasksets_per_point = 3;
  cfg.seed = 20260806;
  cfg.jobs = jobs;
  return cfg;
}

struct SweepRun {
  std::vector<std::string> lines;       ///< sweep-point digest lines
  util::AllocCounters effort;           ///< totals over the whole sweep
};

SweepRun run_sweep(int jobs) {
  SweepRun out;
  util::AllocCounterScope scope;
  const auto result = core::run_schedulability_experiment(sweep_config(jobs));
  out.effort = scope.counters();
  for (const auto& pt : result.points) {
    std::ostringstream os;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", pt.target_util);
    os << "sweep-point|" << buf << "|";
    for (std::size_t si = 0; si < pt.per_solution.size(); ++si)
      os << (si ? "," : "") << pt.per_solution[si].schedulable << "/"
         << pt.per_solution[si].total;
    out.lines.push_back(os.str());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Golden file I/O

struct GoldenFile {
  std::vector<std::string> solve;
  std::vector<std::string> admission;
  std::vector<std::string> exact;
  std::vector<std::string> sweep;
  std::uint64_t seed_dbf_evaluations = 0;
  bool loaded = false;
};

GoldenFile load_golden() {
  GoldenFile g;
  std::ifstream in(kGoldenFile);
  if (!in) return g;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("solve|", 0) == 0) g.solve.push_back(line);
    else if (line.rfind("admit|", 0) == 0) g.admission.push_back(line);
    else if (line.rfind("exact|", 0) == 0) g.exact.push_back(line);
    else if (line.rfind("sweep-point|", 0) == 0) g.sweep.push_back(line);
    else if (line.rfind("seed-effort|dbf_evaluations=", 0) == 0)
      g.seed_dbf_evaluations = std::strtoull(
          line.c_str() + std::string("seed-effort|dbf_evaluations=").size(),
          nullptr, 10);
  }
  g.loaded = true;
  return g;
}

void expect_lines_equal(const std::vector<std::string>& golden,
                        const std::vector<std::string>& got,
                        const char* section) {
  ASSERT_EQ(golden.size(), got.size()) << "section " << section;
  for (std::size_t i = 0; i < golden.size(); ++i)
    EXPECT_EQ(golden[i], got[i]) << "section " << section << " line " << i;
}

// ---------------------------------------------------------------------------
// Tests

TEST(GoldenEquivalence, CaptureOrCompareEngineDigests) {
  if (capture_mode()) {
    const auto solve = solve_lines();
    const auto admission = admission_lines();
    const auto exact = exact_lines();
    const auto sweep = run_sweep(1);
    std::ofstream out(kGoldenFile);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenFile;
    out << "# vc2m engine golden — captured from the pre-registry allocator.\n"
           "# Lines are positional; see tests/test_golden.cpp for the "
           "scenario grid.\n";
    for (const auto& l : solve) out << l << "\n";
    for (const auto& l : admission) out << l << "\n";
    for (const auto& l : exact) out << l << "\n";
    for (const auto& l : sweep.lines) out << l << "\n";
    out << "seed-effort|dbf_evaluations=" << sweep.effort.dbf_evaluations
        << "|admission_tests=" << sweep.effort.admission_tests << "\n";
    std::cout << "captured golden to " << kGoldenFile << "\n";
    return;
  }

  const GoldenFile g = load_golden();
  ASSERT_TRUE(g.loaded) << "golden file missing: " << kGoldenFile
                        << " (capture with VC2M_GOLDEN_CAPTURE=1)";
  expect_lines_equal(g.solve, solve_lines(), "solve");
  expect_lines_equal(g.admission, admission_lines(), "admission");
  expect_lines_equal(g.exact, exact_lines(), "exact");
}

class GoldenSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldenSweepTest, SweepBitIdenticalToSeedAtAnyJobs) {
  if (capture_mode()) GTEST_SKIP() << "capture handled by GoldenEquivalence";
  const GoldenFile g = load_golden();
  ASSERT_TRUE(g.loaded) << "golden file missing: " << kGoldenFile;
  const SweepRun run = run_sweep(GetParam());
  expect_lines_equal(g.sweep, run.lines, "sweep");

  // The memoizing engine must do strictly less demand-bound work than the
  // seed allocator did on the identical sweep (captured pre-refactor).
  ASSERT_GT(g.seed_dbf_evaluations, 0u);
  EXPECT_LT(run.effort.dbf_evaluations, g.seed_dbf_evaluations)
      << "engine no longer cheaper than the pre-refactor seed";
}

INSTANTIATE_TEST_SUITE_P(Jobs, GoldenSweepTest, ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "jobs" + std::to_string(info.param);
                         });

}  // namespace
