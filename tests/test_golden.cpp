// Golden-equivalence suite for the allocation engine.
//
// The golden file (tests/golden/engine.golden) was captured from the
// pre-registry allocator (the closed `Solution` enum dispatched inside
// core::solve) immediately before the pluggable-engine refactor. Every
// refactor of the allocation stack must keep the engine *bit-identical* on
// these scenarios: the schedulable flag, the full VCPU→core mapping, the
// per-core partition counts, and the VCPU parameter surfaces all enter the
// digest. The sweep section additionally pins the parallel experiment at
// --jobs 1/2/8 and records the seed allocator's total dbf-evaluation count,
// against which the memoizing engine must be *strictly* cheaper.
//
// The digest helpers, scenario grid, and golden-file loader live in
// tests/golden_util.h, shared with test_explain.cpp (decision recording must
// reproduce these digests bit-identically).
//
// Regenerating (only when an intentional behavior change is accepted):
//   VC2M_GOLDEN_CAPTURE=1 ./test_golden
// Note the `seed-effort` line is a pre-refactor measurement: recapturing
// with the memoizing engine would overwrite the baseline the strict-
// improvement assertion compares against, so a recapture must either keep
// that line or consciously re-baseline it.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/context.h"
#include "core/admission.h"
#include "core/exact.h"
#include "core/experiment.h"
#include "core/solutions.h"
#include "golden_util.h"
#include "model/platform.h"
#include "util/instrument.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace vc2m;
using namespace vc2m::golden;

bool capture_mode() { return std::getenv("VC2M_GOLDEN_CAPTURE") != nullptr; }

/// Admission scenarios: place one VM offline, then admit a second VM online.
std::vector<std::string> admission_lines() {
  std::vector<std::string> lines;
  const auto platform = model::PlatformSpec::A();
  for (int rep = 0; rep < 3; ++rep) {
    workload::GeneratorConfig gen;
    gen.grid = platform.grid;
    gen.target_ref_utilization = 0.8;
    util::Rng gen_rng(7100 + rep);
    auto base = workload::generate_taskset(gen, gen_rng);

    util::Rng rng(7200 + rep);
    const auto res = core::solve(core::Solution::kHeuristicOverheadFree, base,
                                 platform, {}, rng);
    std::ostringstream os;
    os << "admit|" << rep << "|";
    if (!res.schedulable) {
      os << "base-unschedulable";
      lines.push_back(os.str());
      continue;
    }
    core::AdmissionState state{res.vcpus, res.mapping};

    gen.target_ref_utilization = 0.5;
    util::Rng gen2(7300 + rep);
    auto extra = workload::generate_taskset(gen, gen2);
    for (auto& t : extra) t.vm = 101;

    core::VmAllocConfig vm_cfg;
    vm_cfg.max_vcpus_per_vm = platform.cores;
    util::Rng admit_rng(7400 + rep);
    const auto admit =
        core::admit_vm(state, extra, 101, platform, vm_cfg, admit_rng);
    os << "admitted=" << (admit.admitted ? 1 : 0);
    if (admit.admitted) {
      char hex[24];
      os << "|" << mapping_digest(admit.state.mapping);
      std::snprintf(hex, sizeof hex, "%016llx",
                    static_cast<unsigned long long>(
                        vcpu_hash(admit.state.vcpus)));
      os << "|vhash=" << hex;
    }
    lines.push_back(os.str());
  }
  return lines;
}

/// Exact-search scenarios: the exhaustive allocator on small VCPU sets.
std::vector<std::string> exact_lines() {
  std::vector<std::string> lines;
  const auto platform = model::PlatformSpec::C();
  for (int rep = 0; rep < 3; ++rep) {
    workload::GeneratorConfig gen;
    gen.grid = platform.grid;
    gen.target_ref_utilization = 0.6 + 0.2 * rep;
    util::Rng gen_rng(8100 + rep);
    const auto tasks = workload::generate_taskset(gen, gen_rng);

    util::Rng rng(8200 + rep);
    const auto res = core::solve(core::Solution::kHeuristicOverheadFree, tasks,
                                 platform, {}, rng);
    std::ostringstream os;
    os << "exact|" << rep << "|";
    if (res.vcpus.empty() || res.vcpus.size() > 8) {
      os << "skipped";  // keep line positional even if generation drifts
      lines.push_back(os.str());
      continue;
    }
    core::ExactConfig ec;
    const auto exact = core::allocate_exact(res.vcpus, platform, ec);
    os << "sched=" << (exact.schedulable ? 1 : 0) << "|"
       << mapping_digest(exact);
    lines.push_back(os.str());
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Sweep section (Fig. 2-shaped, must be jobs-independent)

core::ExperimentConfig sweep_config(int jobs, int inner_jobs = 1) {
  core::ExperimentConfig cfg;
  cfg.platform = model::PlatformSpec::A();
  cfg.dist = workload::UtilDist::kUniform;
  cfg.util_lo = 0.3;
  cfg.util_hi = 1.5;
  cfg.util_step = 0.3;
  cfg.tasksets_per_point = 3;
  cfg.seed = 20260806;
  cfg.jobs = jobs;
  cfg.solve.inner_jobs = inner_jobs;
  return cfg;
}

struct SweepRun {
  std::vector<std::string> lines;       ///< sweep-point digest lines
  util::AllocCounters effort;           ///< totals over the whole sweep
};

SweepRun run_sweep(int jobs, int inner_jobs = 1) {
  SweepRun out;
  util::AllocCounterScope scope;
  const auto result =
      core::run_schedulability_experiment(sweep_config(jobs, inner_jobs));
  out.effort = scope.counters();
  for (const auto& pt : result.points) {
    std::ostringstream os;
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.2f", pt.target_util);
    os << "sweep-point|" << buf << "|";
    for (std::size_t si = 0; si < pt.per_solution.size(); ++si)
      os << (si ? "," : "") << pt.per_solution[si].schedulable << "/"
         << pt.per_solution[si].total;
    out.lines.push_back(os.str());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tests

TEST(GoldenEquivalence, CaptureOrCompareEngineDigests) {
  if (capture_mode()) {
    const auto solve = solve_lines();
    const auto admission = admission_lines();
    const auto exact = exact_lines();
    const auto sweep = run_sweep(1);
    std::ofstream out(kGoldenFile);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenFile;
    out << "# vc2m engine golden — captured from the pre-registry allocator.\n"
           "# Lines are positional; see tests/golden_util.h for the "
           "scenario grid.\n";
    for (const auto& l : solve) out << l << "\n";
    for (const auto& l : admission) out << l << "\n";
    for (const auto& l : exact) out << l << "\n";
    for (const auto& l : sweep.lines) out << l << "\n";
    out << "seed-effort|dbf_evaluations=" << sweep.effort.dbf_evaluations
        << "|admission_tests=" << sweep.effort.admission_tests << "\n";
    std::cout << "captured golden to " << kGoldenFile << "\n";
    return;
  }

  const GoldenFile g = load_golden();
  ASSERT_TRUE(g.loaded) << "golden file missing: " << kGoldenFile
                        << " (capture with VC2M_GOLDEN_CAPTURE=1)";
  expect_lines_equal(g.solve, solve_lines(), "solve");
  expect_lines_equal(g.admission, admission_lines(), "admission");
  expect_lines_equal(g.exact, exact_lines(), "exact");
}

class GoldenSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(GoldenSweepTest, SweepBitIdenticalToSeedAtAnyJobs) {
  if (capture_mode()) GTEST_SKIP() << "capture handled by GoldenEquivalence";
  const GoldenFile g = load_golden();
  ASSERT_TRUE(g.loaded) << "golden file missing: " << kGoldenFile;
  const SweepRun run = run_sweep(GetParam());
  expect_lines_equal(g.sweep, run.lines, "sweep");

  // The memoizing engine must do strictly less demand-bound work than the
  // seed allocator did on the identical sweep (captured pre-refactor).
  ASSERT_GT(g.seed_dbf_evaluations, 0u);
  EXPECT_LT(run.effort.dbf_evaluations, g.seed_dbf_evaluations)
      << "engine no longer cheaper than the pre-refactor seed";
}

INSTANTIATE_TEST_SUITE_P(Jobs, GoldenSweepTest, ::testing::Values(1, 2, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "jobs" + std::to_string(info.param);
                         });

// ---------------------------------------------------------------------------
// Fast-path determinism grid: the SoA + arena + inner-parallel engine must
// be bit-identical to the golden sweep at every (--jobs, --inner-jobs)
// combination, including the effort counters the perfdiff gate compares
// (budget_evaluations = memoization misses in serial query order).

/// The serial single-threaded run is the reference every grid cell (and the
/// legacy-kernel run below) must match exactly. Computed once.
const SweepRun& reference_sweep() {
  static const SweepRun ref = run_sweep(1, 1);
  return ref;
}

class GoldenSweepGridTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(GoldenSweepGridTest, SweepAndCountersBitIdenticalAtAnyInnerJobs) {
  if (capture_mode()) GTEST_SKIP() << "capture handled by GoldenEquivalence";
  const GoldenFile g = load_golden();
  ASSERT_TRUE(g.loaded) << "golden file missing: " << kGoldenFile;
  const auto [jobs, inner] = GetParam();
  const SweepRun run = run_sweep(jobs, inner);
  expect_lines_equal(g.sweep, run.lines, "sweep");

  const SweepRun& ref = reference_sweep();
  EXPECT_EQ(run.effort.budget_evaluations, ref.effort.budget_evaluations)
      << "budget searches depend on jobs=" << jobs << " inner=" << inner;
  EXPECT_EQ(run.effort.budget_cache_hits, ref.effort.budget_cache_hits);
  EXPECT_EQ(run.effort.dbf_evaluations, ref.effort.dbf_evaluations);
  EXPECT_EQ(run.effort.arena_bytes, ref.effort.arena_bytes);
  EXPECT_EQ(run.effort.soa_rebuilds, ref.effort.soa_rebuilds);
  EXPECT_EQ(run.effort.inner_tasks, ref.effort.inner_tasks);
}

INSTANTIATE_TEST_SUITE_P(
    JobsByInner, GoldenSweepGridTest,
    ::testing::Values(std::pair{1, 2}, std::pair{1, 8}, std::pair{2, 2},
                      std::pair{2, 8}, std::pair{8, 1}, std::pair{8, 8}),
    [](const ::testing::TestParamInfo<std::pair<int, int>>& info) {
      return "jobs" + std::to_string(info.param.first) + "_inner" +
             std::to_string(info.param.second);
    });

TEST(GoldenEquivalence, FastKernelsMatchLegacyKernelsExactly) {
  if (capture_mode()) GTEST_SKIP() << "capture handled by GoldenEquivalence";
  const GoldenFile g = load_golden();
  ASSERT_TRUE(g.loaded) << "golden file missing: " << kGoldenFile;
  const SweepRun& fast = reference_sweep();

  analysis::set_fast_kernels(false);
  const SweepRun legacy = run_sweep(1, 1);
  analysis::set_fast_kernels(true);

  expect_lines_equal(g.sweep, legacy.lines, "sweep(legacy kernels)");
  // The memo-miss count is layout-independent: both engines consult the
  // same per-context memo in the same serial query order.
  EXPECT_EQ(fast.effort.budget_evaluations, legacy.effort.budget_evaluations);
  EXPECT_EQ(fast.effort.budget_cache_hits, legacy.effort.budget_cache_hits);
  // The fast path's whole point: checkpoint reuse must make it do strictly
  // less demand-bound work than the hinted per-cell searches.
  EXPECT_LT(fast.effort.dbf_evaluations, legacy.effort.dbf_evaluations);
  // Legacy kernels never touch the arena or the checkpoint cache.
  EXPECT_EQ(legacy.effort.arena_bytes, 0u);
  EXPECT_EQ(legacy.effort.soa_rebuilds, 0u);
  EXPECT_GT(fast.effort.arena_bytes, 0u);
  EXPECT_GT(fast.effort.soa_rebuilds, 0u);
}

}  // namespace
