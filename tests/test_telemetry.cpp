// Runtime-telemetry suite (docs/telemetry.md): the metrics-timeline
// artifact (exact sample round trip, tolerant scanning under truncation
// and byte corruption, bit-identity across --inner-jobs and across
// crash + --recover), the span ring and its post-mortem dump (including
// fork-based real crashes at the injected kill sites, checking the dump's
// tail against the journal's tail), request-span export/check round
// trips, the request-id echo through core::admit_vm, stats-snapshot
// rendering, and the forward-compatible serve-report reader notes.
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/admission.h"
#include "model/platform.h"
#include "obs/request_span.h"
#include "service/journal.h"
#include "service/report.h"
#include "service/service.h"
#include "service/telemetry.h"
#include "service/trace_gen.h"
#include "util/error.h"
#include "util/log_histogram.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vc2m::service {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  std::ostringstream buf;
  buf << f.rdbuf();
  return buf.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  f << bytes;
}

std::string report_text(const ServeReport& r) {
  std::ostringstream os;
  write_serve_report(os, r);
  return os.str();
}

ServiceConfig small_config(const std::string& spec =
                               "poisson:requests=300,interarrival-us=300,"
                               "util=0.1..0.4") {
  ServiceConfig cfg;
  cfg.trace = parse_trace_spec(spec);
  cfg.seed = 7;
  return cfg;
}

void remove_run_files(const std::string& stem) {
  std::remove(stem.c_str());
  std::remove((stem + ".snap").c_str());
  std::remove((stem + ".spans").c_str());
}

// ---------------------------------------------------------------------------
// Sample and histogram text round trips.

TEST(TelemetryText, HistogramRoundTripIsExact) {
  util::LogHistogram h;
  for (double x : {0.5, 21.4, 21.4, 1e6, 3.3, 0.0, -2.0}) h.add(x);
  const std::string text = serialize_histogram(h);
  const util::LogHistogram back = parse_histogram(text);
  EXPECT_EQ(serialize_histogram(back), text);
  EXPECT_EQ(back.count(), h.count());
  EXPECT_EQ(back.nonpositive_count(), h.nonpositive_count());
  EXPECT_DOUBLE_EQ(back.sum(), h.sum());
  EXPECT_DOUBLE_EQ(back.min(), h.min());
  EXPECT_DOUBLE_EQ(back.max(), h.max());
  EXPECT_DOUBLE_EQ(back.quantile(0.5), h.quantile(0.5));
  // Empty histograms round-trip too.
  const util::LogHistogram empty;
  EXPECT_EQ(serialize_histogram(parse_histogram(serialize_histogram(empty))),
            serialize_histogram(empty));
  // Strictness: malformed inputs throw, never mis-parse.
  EXPECT_THROW(parse_histogram(""), util::Error);
  EXPECT_THROW(parse_histogram("7 x"), util::Error);
  EXPECT_THROW(parse_histogram(text + " trailing"), util::Error);
}

TEST(TelemetryText, MetricsSampleRoundTripIsExact) {
  MetricsSample s;
  s.index = 4;
  s.served = 500;
  s.vt_ns = 123456789;
  s.queue_depth = 3;
  s.retry_depth = 1;
  s.est_ns_per_task = 4242;
  s.arrivals = 480;
  s.admitted = 40;
  s.rejected = 300;
  s.probe_rejected = 5;
  s.deferred = 12;
  s.timed_out = 2;
  s.shed = 7;
  s.downgrades = 9;
  s.backpressure = 11;
  s.commits = 77;
  s.dbf_evals = 1000;
  s.budget_evals = 2000;
  s.admission_tests = 3000;
  s.lat_admitted.add(21.5);
  s.lat_rejected.add(20.1);
  s.lat_rejected.add(33.0);
  s.lat_shed.add(5.0);
  const std::string payload = serialize(s);
  const MetricsSample back = parse_metrics_sample(payload);
  EXPECT_EQ(serialize(back), payload);
  EXPECT_EQ(back.index, 4u);
  EXPECT_EQ(back.served, 500u);
  EXPECT_EQ(back.lat_rejected.count(), 2u);
  EXPECT_THROW(parse_metrics_sample(""), util::Error);
  EXPECT_THROW(parse_metrics_sample(payload.substr(0, payload.size() / 2)),
               util::Error);
  EXPECT_THROW(parse_metrics_sample("wat=1|" + payload), util::Error);
}

// ---------------------------------------------------------------------------
// The timeline artifact.

TEST(Timeline, WriteScanHeaderAndCadence) {
  const std::string path = testing::TempDir() + "/vc2m_tl_basic.bin";
  std::remove(path.c_str());
  auto cfg = small_config();
  cfg.timeline_path = path;
  cfg.sample_every = 25;
  const auto res = run_service(cfg);
  ASSERT_FALSE(res.interrupted);

  const TimelineScan tls = scan_timeline(path);
  EXPECT_TRUE(tls.exists);
  EXPECT_TRUE(tls.header_ok);
  EXPECT_EQ(tls.config_digest, config_digest(cfg));
  EXPECT_EQ(tls.every, 25u);
  EXPECT_FALSE(tls.torn);
  ASSERT_GT(tls.samples.size(), 5u);
  for (std::size_t i = 0; i < tls.samples.size(); ++i) {
    const MetricsSample& ms = tls.samples[i];
    EXPECT_EQ(ms.index, i);
    EXPECT_EQ(ms.served, (i + 1) * 25);
    if (i > 0) {
      // Cumulative counters never move backwards between samples.
      const MetricsSample& prev = tls.samples[i - 1];
      EXPECT_GE(ms.vt_ns, prev.vt_ns);
      EXPECT_GE(ms.arrivals, prev.arrivals);
      EXPECT_GE(ms.admission_tests, prev.admission_tests);
      EXPECT_GE(ms.lat_admitted.count() + ms.lat_rejected.count() +
                    ms.lat_deferred.count() + ms.lat_shed.count(),
                prev.lat_admitted.count() + prev.lat_rejected.count() +
                    prev.lat_deferred.count() + prev.lat_shed.count());
    }
  }
  // The last sample agrees with the report's cumulative totals.
  const MetricsSample& last = tls.samples.back();
  EXPECT_EQ(last.admitted, res.report.admitted);
  EXPECT_EQ(last.commits, res.report.commits);
  EXPECT_LE(last.arrivals, res.report.arrivals);
  std::remove(path.c_str());
}

TEST(Timeline, TruncationAlwaysYieldsValidPrefix) {
  const std::string path = testing::TempDir() + "/vc2m_tl_trunc.bin";
  std::remove(path.c_str());
  auto cfg = small_config();
  cfg.timeline_path = path;
  cfg.sample_every = 25;
  run_service(cfg);
  const std::string bytes = read_file(path);
  const std::size_t full_samples = scan_timeline(path).samples.size();
  ASSERT_GT(full_samples, 0u);

  const std::string cut_path = path + ".cut";
  for (std::size_t len = 0; len <= bytes.size(); len += 3) {
    write_file(cut_path, bytes.substr(0, len));
    TimelineScan tls;
    ASSERT_NO_THROW(tls = scan_timeline(cut_path)) << "len=" << len;
    EXPECT_LE(tls.valid_bytes, len);
    EXPECT_LE(tls.samples.size(), full_samples);
    if (tls.header_ok && len < bytes.size()) {
      EXPECT_TRUE(tls.torn || tls.valid_bytes == len) << "len=" << len;
    }
    for (std::size_t i = 0; i < tls.samples.size(); ++i)
      EXPECT_EQ(tls.samples[i].index, i);
  }
  std::remove(path.c_str());
  std::remove(cut_path.c_str());
}

TEST(Timeline, ByteFlipsNeverCrashTheScanner) {
  const std::string path = testing::TempDir() + "/vc2m_tl_flip.bin";
  std::remove(path.c_str());
  auto cfg = small_config();
  cfg.timeline_path = path;
  cfg.sample_every = 25;
  run_service(cfg);
  const std::string bytes = read_file(path);
  const std::size_t full_samples = scan_timeline(path).samples.size();

  const std::string flip_path = path + ".flip";
  for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string mutated = bytes;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    write_file(flip_path, mutated);
    TimelineScan tls;
    ASSERT_NO_THROW(tls = scan_timeline(flip_path)) << "pos=" << pos;
    // A flip either hits the header (scan rejects the file as foreign) or
    // a frame (checksum or strict parse truncates the valid prefix there);
    // samples before the flip always survive intact.
    EXPECT_LE(tls.samples.size(), full_samples);
    for (std::size_t i = 0; i < tls.samples.size(); ++i)
      EXPECT_EQ(tls.samples[i].index, i);
  }
  std::remove(path.c_str());
  std::remove(flip_path.c_str());
}

TEST(Timeline, BitIdenticalAcrossInnerJobs) {
  std::string reference;
  for (int jobs : {1, 2, 8}) {
    const std::string path = testing::TempDir() + "/vc2m_tl_jobs" +
                             std::to_string(jobs) + ".bin";
    std::remove(path.c_str());
    auto cfg = small_config();
    cfg.timeline_path = path;
    cfg.sample_every = 25;
    cfg.vm_cfg.inner_jobs = jobs;
    run_service(cfg);
    const std::string bytes = read_file(path);
    ASSERT_FALSE(bytes.empty());
    if (reference.empty())
      reference = bytes;
    else
      EXPECT_EQ(bytes, reference) << "inner_jobs=" << jobs;
    std::remove(path.c_str());
  }
}

TEST(Timeline, TelemetryPerturbsNeitherReportNorJournal) {
  const std::string plain_wal = testing::TempDir() + "/vc2m_tl_off.wal";
  const std::string telem_wal = testing::TempDir() + "/vc2m_tl_on.wal";
  const std::string tl = testing::TempDir() + "/vc2m_tl_on.bin";
  remove_run_files(plain_wal);
  remove_run_files(telem_wal);
  std::remove(tl.c_str());

  auto plain = small_config();
  plain.journal_path = plain_wal;
  plain.snapshot_every = 10;
  const auto base = run_service(plain);

  auto telem = small_config();
  telem.journal_path = telem_wal;
  telem.snapshot_every = 10;
  telem.timeline_path = tl;
  telem.sample_every = 25;
  telem.stats_every = 50;
  std::ostringstream stats;
  telem.stats_out = &stats;
  telem.collect_spans = true;
  const auto full = run_service(telem);

  EXPECT_EQ(report_text(full.report), report_text(base.report));
  EXPECT_EQ(read_file(telem_wal), read_file(plain_wal));
  EXPECT_EQ(read_file(telem_wal + ".snap"), read_file(plain_wal + ".snap"));
  EXPECT_FALSE(stats.str().empty());
  EXPECT_FALSE(full.spans.empty());
  remove_run_files(plain_wal);
  remove_run_files(telem_wal);
  std::remove(tl.c_str());
}

TEST(Timeline, RecoverReproducesUninterruptedTimeline) {
  const std::string base_wal = testing::TempDir() + "/vc2m_tl_rec_base.wal";
  const std::string base_tl = testing::TempDir() + "/vc2m_tl_rec_base.bin";
  const std::string wal = testing::TempDir() + "/vc2m_tl_rec.wal";
  const std::string tl = testing::TempDir() + "/vc2m_tl_rec.bin";
  remove_run_files(base_wal);
  remove_run_files(wal);
  std::remove(base_tl.c_str());
  std::remove(tl.c_str());

  auto base_cfg = small_config();
  base_cfg.journal_path = base_wal;
  base_cfg.snapshot_every = 10;
  base_cfg.timeline_path = base_tl;
  base_cfg.sample_every = 25;
  run_service(base_cfg);
  const std::string want = read_file(base_tl);
  ASSERT_FALSE(want.empty());

  auto cfg = small_config();
  cfg.journal_path = wal;
  cfg.snapshot_every = 10;
  cfg.timeline_path = tl;
  cfg.sample_every = 25;
  cfg.stop_after = 120;
  const auto cut = run_service(cfg);
  ASSERT_TRUE(cut.interrupted);
  ASSERT_NE(read_file(tl), want);

  cfg.stop_after = 0;
  cfg.recover = true;
  const auto rec = run_service(cfg);
  EXPECT_FALSE(rec.interrupted);
  EXPECT_EQ(read_file(tl), want);

  // Recovering a finished run re-verifies every sample in place.
  const auto again = run_service(cfg);
  EXPECT_EQ(read_file(tl), want);
  for (const auto& w : again.warnings)
    EXPECT_EQ(w.find("diverges"), std::string::npos) << w;

  remove_run_files(base_wal);
  remove_run_files(wal);
  std::remove(base_tl.c_str());
  std::remove(tl.c_str());
}

TEST(Timeline, DivergentSampleIsRewrittenFromThatPoint) {
  const std::string wal = testing::TempDir() + "/vc2m_tl_div.wal";
  const std::string tl = testing::TempDir() + "/vc2m_tl_div.bin";
  remove_run_files(wal);
  std::remove(tl.c_str());

  auto cfg = small_config();
  cfg.journal_path = wal;
  cfg.snapshot_every = 0;  // keep the full journal so replay covers run 0
  cfg.timeline_path = tl;
  cfg.sample_every = 25;
  run_service(cfg);
  const std::string want = read_file(tl);

  // Rewrite the file with one mid-stream sample altered but still
  // checksummed and parseable: recovery must detect the divergence and
  // rewrite from that sample, reproducing the pristine bytes.
  TimelineScan tls = scan_timeline(tl);
  ASSERT_GT(tls.samples.size(), 3u);
  const std::size_t victim = tls.samples.size() / 2;
  MetricsSample doctored = tls.samples[victim];
  doctored.queue_depth += 1;
  JournalWriter w;
  w.open_with_header(tl, timeline_header_payload(tls.config_digest,
                                                 tls.every));
  for (std::size_t i = 0; i < tls.raw.size(); ++i)
    w.append(i == victim ? serialize(doctored) : tls.raw[i]);
  w.close();
  ASSERT_NE(read_file(tl), want);

  cfg.recover = true;
  const auto rec = run_service(cfg);
  EXPECT_EQ(read_file(tl), want);
  bool warned = false;
  for (const auto& w2 : rec.warnings)
    warned = warned || w2.find("diverges") != std::string::npos;
  EXPECT_TRUE(warned);

  // A timeline from a different configuration is restarted, not merged.
  auto foreign = cfg;
  foreign.seed = 8;
  foreign.journal_path.clear();
  const auto other = run_service(foreign);
  bool restarted = false;
  for (const auto& w2 : other.warnings)
    restarted =
        restarted || w2.find("does not match") != std::string::npos;
  EXPECT_TRUE(restarted);
  EXPECT_EQ(scan_timeline(tl).config_digest, config_digest(foreign));

  remove_run_files(wal);
  std::remove(tl.c_str());
}

// ---------------------------------------------------------------------------
// The span ring and its post-mortem dump.

TEST(SpanRing, EvictsOldestAndDumpsInOrder) {
  SpanRing ring(4);
  for (std::uint64_t i = 0; i < 7; ++i) {
    obs::RequestSpan s;
    s.seq = i;
    s.kind = "admit";
    s.outcome = "admitted";
    ring.push(s);
  }
  ASSERT_EQ(ring.size(), 4u);
  const auto spans = ring.snapshot();
  for (std::size_t i = 0; i < spans.size(); ++i)
    EXPECT_EQ(spans[i].seq, i + 3) << "oldest-first order";

  SpanRing off(0);
  off.push(obs::RequestSpan{});
  EXPECT_EQ(off.size(), 0u);

  const std::string path = testing::TempDir() + "/vc2m_ring_dump.spans";
  write_span_dump(path, ring);
  const auto back = read_span_dump(path);
  ASSERT_EQ(back.size(), 4u);
  for (std::size_t i = 0; i < back.size(); ++i)
    EXPECT_EQ(obs::serialize(back[i]), obs::serialize(spans[i]));
  write_file(path, "vc2m-span-dump/9 1\n");
  EXPECT_THROW(read_span_dump(path), util::Error);
  std::remove(path.c_str());
}

/// Fork-based crash matrix: really kill the process at the injected kill
/// sites and check that the ring dump next to the journal matches the
/// journal's surviving tail record for record — the dump never claims a
/// decision the journal does not have, and vice versa within ring
/// capacity. scripts/check.sh runs the same check against the binary.
TEST(SpanRing, CrashDumpMatchesJournalTail) {
  struct Case {
    const char* spec;
    std::uint64_t snapshot_every;
  };
  const Case cases[] = {
      {"before-append:3", 0},   {"after-append:3", 0},
      {"before-append:57", 0},  {"after-append:57", 0},
      {"before-append:130", 0}, {"after-append:130", 0},
      {"mid-snapshot:2", 10},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.spec);
    const std::string wal = testing::TempDir() + "/vc2m_crash_tail.wal";
    remove_run_files(wal);

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      // Child: run until the injected kill site fires. Any other exit is
      // a test failure the parent detects through the status code.
      try {
        auto cfg = small_config();
        cfg.journal_path = wal;
        cfg.snapshot_every = c.snapshot_every;
        cfg.span_ring = 16;
        cfg.crash = parse_crash_spec(c.spec);
        run_service(cfg);
      } catch (...) {
      }
      std::_Exit(42);  // crash point never fired
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 137) << "injected crash did not fire";

    const JournalScan scan = scan_journal(wal);
    ASSERT_TRUE(scan.header_ok);
    std::vector<obs::RequestSpan> dump;
    ASSERT_NO_THROW(dump = read_span_dump(wal + ".spans"));
    ASSERT_FALSE(dump.empty());
    const std::size_t overlap = std::min(dump.size(), scan.records.size());
    ASSERT_GT(overlap, 0u);
    for (std::size_t i = 0; i < overlap; ++i) {
      const obs::RequestSpan& span = dump[dump.size() - overlap + i];
      const JournalRecord rec = parse_journal_record(
          scan.records[scan.records.size() - overlap + i]);
      EXPECT_EQ(span.seq, rec.seq);
      EXPECT_EQ(span.attempt, rec.attempt);
      EXPECT_EQ(span.kind, to_string(rec.kind));
      EXPECT_EQ(span.outcome, to_string(rec.outcome));
      EXPECT_EQ(span.cost_ns, rec.cost_ns);
      EXPECT_EQ(span.latency_ns, rec.latency_ns);
    }
    remove_run_files(wal);
  }
}

// ---------------------------------------------------------------------------
// Request spans: round trips, the Perfetto export, and the checker.

TEST(Spans, CollectedSpansRoundTripAndPassTheChecker) {
  auto cfg = small_config();
  cfg.collect_spans = true;
  const auto res = run_service(cfg);
  ASSERT_FALSE(res.spans.empty());
  for (const auto& s : res.spans) {
    const obs::RequestSpan back = obs::parse_request_span(obs::serialize(s));
    EXPECT_EQ(obs::serialize(back), obs::serialize(s));
  }
  const auto check = obs::check_request_spans(res.spans);
  EXPECT_TRUE(check.ok()) << check.summary();
  EXPECT_EQ(check.spans, res.spans.size());

  std::ostringstream os;
  obs::write_span_trace(os, res.spans);
  std::istringstream is(os.str());
  const auto back = obs::read_span_trace(is);
  ASSERT_EQ(back.size(), res.spans.size());
  for (std::size_t i = 0; i < back.size(); ++i)
    EXPECT_EQ(obs::serialize(back[i]), obs::serialize(res.spans[i]));
}

TEST(Spans, CheckerFlagsStructuralViolations) {
  obs::RequestSpan ok;
  ok.seq = 1;
  ok.kind = "admit";
  ok.outcome = "admitted";
  ok.queued_ns = 100;
  ok.dequeued_ns = 150;
  ok.solved_ns = 250;
  ok.cost_ns = 100;

  obs::RequestSpan unordered = ok;
  unordered.seq = 2;
  unordered.dequeued_ns = 50;  // dequeued before queued
  obs::RequestSpan bad_cost = ok;
  bad_cost.seq = 3;
  bad_cost.cost_ns = 1;  // != solved - dequeued
  obs::RequestSpan dup = ok;  // same (seq, attempt) as `ok`

  const obs::RequestSpan bad[] = {ok, unordered, bad_cost, dup};
  const auto res = obs::check_request_spans(bad);
  EXPECT_FALSE(res.ok());
  EXPECT_GE(res.total_violations, 3u);

  // Violations past the cap are counted but not stored.
  std::vector<obs::RequestSpan> many;
  for (std::uint64_t i = 0; i < 40; ++i) {
    obs::RequestSpan s = bad_cost;
    s.seq = 100 + i;
    many.push_back(s);
  }
  const auto capped = obs::check_request_spans(many, 8);
  EXPECT_EQ(capped.violations.size(), 8u);
  EXPECT_EQ(capped.total_violations, 40u);
}

TEST(Spans, RequestIdEchoesThroughAdmission) {
  const auto platform = model::PlatformSpec::A();
  workload::GeneratorConfig gen;
  gen.grid = platform.grid;
  gen.target_ref_utilization = 0.3;
  util::Rng grng(11);
  auto tasks = workload::generate_taskset(gen, grng);
  for (auto& t : tasks) t.vm = 1;

  core::VmAllocConfig vm;
  vm.max_vcpus_per_vm = platform.cores;
  util::Rng rng(12);
  core::AdmissionState empty;
  const auto anon = core::admit_vm(empty, tasks, 1, platform, vm, rng);
  EXPECT_EQ(anon.request_id, -1) << "default stays anonymous";
  vm.request_id = 42;
  util::Rng rng2(12);
  const auto tagged = core::admit_vm(empty, tasks, 1, platform, vm, rng2);
  EXPECT_EQ(tagged.request_id, 42);
  EXPECT_EQ(tagged.admitted, anon.admitted)
      << "the request id must not influence the decision";
}

// ---------------------------------------------------------------------------
// Stats snapshots and forward-compatible report reading.

TEST(StatsSnapshot, CadenceAndSignalLatch) {
  auto cfg = small_config();
  cfg.stats_every = 50;
  std::ostringstream out;
  cfg.stats_out = &out;
  run_service(cfg);
  const std::string text = out.str();
  std::size_t snapshots = 0;
  for (std::size_t pos = text.find("[vc2m serve]"); pos != std::string::npos;
       pos = text.find("[vc2m serve]", pos + 1))
    ++snapshots;
  EXPECT_GT(snapshots, 2u);

  // Deterministic: the same run renders byte-identical snapshots.
  std::ostringstream out2;
  auto cfg2 = small_config();
  cfg2.stats_every = 50;
  cfg2.stats_out = &out2;
  run_service(cfg2);
  EXPECT_EQ(out2.str(), text);

  // The SIGUSR1 latch renders exactly one snapshot and clears itself.
  std::atomic<bool> poke{true};
  std::ostringstream out3;
  auto cfg3 = small_config();
  cfg3.stats_signal = &poke;
  cfg3.stats_out = &out3;
  run_service(cfg3);
  EXPECT_FALSE(poke.load());
  EXPECT_EQ(out3.str().find("[vc2m serve]"), 0u);
  EXPECT_EQ(out3.str().find("[vc2m serve]", 1), std::string::npos);
}

TEST(ServeReportNotes, UnknownFieldSurfacedNotRejected) {
  const auto res = run_service(small_config());
  std::string text = report_text(res.report);
  const std::string anchor = "\"git_rev\"";
  const std::size_t at = text.find(anchor);
  ASSERT_NE(at, std::string::npos);
  text.insert(at, "\"from_the_future\": {\"x\": 1},\n");

  std::vector<std::string> notes;
  std::istringstream is(text);
  ServeReport back;
  ASSERT_NO_THROW(back = read_serve_report(is, "serve report", &notes));
  EXPECT_EQ(back.admitted, res.report.admitted);
  ASSERT_EQ(notes.size(), 1u);
  EXPECT_NE(notes[0].find("from_the_future"), std::string::npos);
  EXPECT_NE(notes[0].find("ignored"), std::string::npos);

  // Without a notes sink the field is silently skipped, still no throw.
  std::istringstream is2(text);
  EXPECT_NO_THROW(read_serve_report(is2));
}

}  // namespace
}  // namespace vc2m::service
