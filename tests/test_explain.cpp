// Decision-log and explain-report suite.
//
// Pins the three guarantees the provenance layer makes:
//  1. Recording never perturbs the engine — the golden digests of
//     tests/golden/engine.golden reproduce bit-identically with a
//     DecisionLogScope open (the golden file was captured without one).
//  2. The merged event stream of a parallel experiment is bit-identical at
//     any --jobs count (serial per-work-item merge, like AllocCounters).
//  3. `vc2m explain` on an infeasible profile names a binding constraint
//     and a positive numeric margin for every rejected VM, and the JSON
//     artifact round-trips byte-identically through the strict reader.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/strategy.h"
#include "golden_util.h"
#include "model/platform.h"
#include "obs/decision_log.h"
#include "obs/explain.h"
#include "util/error.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace vc2m;
using namespace vc2m::golden;

model::Taskset generated(double util, int vms, std::uint64_t seed,
                         const model::PlatformSpec& platform) {
  workload::GeneratorConfig gen;
  gen.grid = platform.grid;
  gen.target_ref_utilization = util;
  gen.num_vms = vms;
  util::Rng rng(seed);
  return workload::generate_taskset(gen, rng);
}

// ------------------------------------------------------------- the log ----

TEST(DecisionLog, BoundedEmitCountsDrops) {
  obs::DecisionLog log(2);
  obs::DecisionEvent e;
  e.kind = obs::DecisionKind::kVerdict;
  log.emit(e);
  log.emit(e);
  log.emit(e);
  EXPECT_EQ(log.events().size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);

  obs::DecisionLog other(8);
  other.append(log);
  EXPECT_EQ(other.events().size(), 2u);
  EXPECT_EQ(other.dropped(), 1u);
}

TEST(DecisionLog, ScopeMergesIntoEnclosingScope) {
  obs::DecisionLogScope outer;
  {
    obs::DecisionLogScope inner;
    obs::DecisionEvent e;
    e.kind = obs::DecisionKind::kSolveBegin;
    e.accepted = true;
    obs::decision_log()->emit(e);
    EXPECT_EQ(inner.log().events().size(), 1u);
    EXPECT_TRUE(outer.log().events().empty());
  }
  ASSERT_EQ(outer.log().events().size(), 1u);
  EXPECT_EQ(outer.log().events()[0].kind, obs::DecisionKind::kSolveBegin);
}

TEST(DecisionLog, NamesRoundTripThroughStrings) {
  for (int k = 0; k <= static_cast<int>(obs::DecisionKind::kVerdict); ++k) {
    const auto kind = static_cast<obs::DecisionKind>(k);
    obs::DecisionKind back{};
    ASSERT_TRUE(obs::decision_kind_from_string(obs::to_string(kind), back))
        << "kind " << k;
    EXPECT_EQ(back, kind);
  }
  for (int c = 0;
       c <= static_cast<int>(obs::DecisionConstraint::kNoFeasiblePartition);
       ++c) {
    const auto constraint = static_cast<obs::DecisionConstraint>(c);
    obs::DecisionConstraint back{};
    ASSERT_TRUE(
        obs::decision_constraint_from_string(obs::to_string(constraint), back))
        << "constraint " << c;
    EXPECT_EQ(back, constraint);
  }
  obs::DecisionKind k{};
  EXPECT_FALSE(obs::decision_kind_from_string("not_a_kind", k));
  obs::DecisionConstraint c{};
  EXPECT_FALSE(obs::decision_constraint_from_string("not_a_constraint", c));
}

// ------------------------------------------- verdicts are never perturbed ----

TEST(DecisionRecording, GoldenSolveDigestsBitIdenticalWithRecordingOn) {
  const GoldenFile g = load_golden();
  ASSERT_TRUE(g.loaded) << "golden file missing: " << kGoldenFile;

  obs::DecisionLogScope scope;
  const auto lines = solve_lines();
  expect_lines_equal(g.solve, lines, "solve(recording on)");
  // The scope must actually have recorded the solves it watched — a silent
  // no-op recorder would make this whole suite vacuous.
  EXPECT_GT(scope.log().events().size(), 100u);
}

core::ExperimentConfig small_sweep(int jobs) {
  core::ExperimentConfig cfg;
  cfg.platform = model::PlatformSpec::A();
  cfg.util_lo = 0.4;
  cfg.util_hi = 1.2;
  cfg.util_step = 0.4;
  cfg.tasksets_per_point = 2;
  cfg.seed = 20260808;
  cfg.jobs = jobs;
  cfg.solutions = {"ovf", "even"};
  return cfg;
}

TEST(DecisionRecording, ExperimentEventStreamBitIdenticalAcrossJobs) {
  std::vector<std::vector<obs::DecisionEvent>> streams;
  for (const int jobs : {1, 2, 8}) {
    obs::DecisionLogScope scope;
    (void)core::run_schedulability_experiment(small_sweep(jobs));
    streams.push_back(scope.log().events());
  }
  ASSERT_FALSE(streams[0].empty());
  EXPECT_EQ(streams[0], streams[1]) << "--jobs 2 diverged from --jobs 1";
  EXPECT_EQ(streams[0], streams[2]) << "--jobs 8 diverged from --jobs 1";
}

// ------------------------------------------------------------ explain ----

TEST(Explain, InfeasibleProfileNamesBindingConstraintPerVm) {
  const auto platform = model::PlatformSpec::A();
  const auto tasks = generated(3.5, 3, 9, platform);
  const auto& strat = core::StrategyRegistry::instance().require("ovf");
  util::Rng rng(42);
  core::SolveResult result;
  const auto report =
      obs::explain_solve(strat, tasks, platform, {}, rng, &result);

  ASSERT_FALSE(result.schedulable);
  EXPECT_FALSE(report.schedulable);
  ASSERT_EQ(report.rejections.size(), 3u);  // one entry per VM
  for (const auto& rej : report.rejections) {
    EXPECT_NE(rej.constraint, obs::DecisionConstraint::kNone)
        << "VM " << rej.vm << " has no binding constraint";
    EXPECT_GT(rej.margin, 0.0) << "VM " << rej.vm << " has no numeric margin";
    EXPECT_FALSE(rej.detail.empty());
  }
  EXPECT_FALSE(report.events.empty());
  EXPECT_EQ(report.events_dropped, 0u);
}

TEST(Explain, FeasibleProfileReportsConsistentHeadroom) {
  const auto platform = model::PlatformSpec::A();
  const auto tasks = generated(0.8, 2, 7, platform);
  const auto& strat = core::StrategyRegistry::instance().require("ovf");
  util::Rng rng(42);
  core::SolveResult result;
  const auto report =
      obs::explain_solve(strat, tasks, platform, {}, rng, &result);

  ASSERT_TRUE(result.schedulable);
  EXPECT_TRUE(report.rejections.empty());
  ASSERT_EQ(report.headroom.cores.size(), result.mapping.cores_used);
  unsigned used_cache = 0, used_bw = 0;
  for (const auto& c : report.headroom.cores) {
    EXPECT_LE(c.utilization, 1.0);
    EXPECT_NEAR(c.slack, 1.0 - c.utilization, 1e-12);
    EXPECT_LE(c.reclaimable_cache, c.cache);
    EXPECT_LE(c.reclaimable_bw, c.bw);
    used_cache += c.cache;
    used_bw += c.bw;
  }
  EXPECT_EQ(report.headroom.spare_cache, platform.total_cache() - used_cache);
  EXPECT_EQ(report.headroom.spare_bw, platform.total_bw() - used_bw);
}

TEST(Explain, SolveResultBitIdenticalWithAndWithoutRecording) {
  const auto platform = model::PlatformSpec::A();
  const auto tasks = generated(1.0, 2, 11, platform);
  const auto& strat = core::StrategyRegistry::instance().require("flat");

  util::Rng bare_rng(5);
  const auto bare = core::solve(strat, tasks, platform, {}, bare_rng);

  util::Rng rec_rng(5);
  core::SolveResult recorded;
  (void)obs::explain_solve(strat, tasks, platform, {}, rec_rng, &recorded);

  EXPECT_EQ(solve_digest(bare), solve_digest(recorded));
}

TEST(Explain, JsonRoundTripIsByteIdentical) {
  const auto platform = model::PlatformSpec::C();
  const auto tasks = generated(2.5, 2, 3, platform);
  const auto& strat = core::StrategyRegistry::instance().require("even");
  util::Rng rng(1);
  const auto report = obs::explain_solve(strat, tasks, platform, {}, rng);

  std::ostringstream first;
  obs::write_explain_report(first, report);
  std::istringstream in(first.str());
  const auto reread = obs::read_explain_report(in);
  std::ostringstream second;
  obs::write_explain_report(second, reread);
  EXPECT_EQ(first.str(), second.str());

  EXPECT_EQ(reread.schema, report.schema);
  EXPECT_EQ(reread.strategy, report.strategy);
  EXPECT_EQ(reread.schedulable, report.schedulable);
  EXPECT_EQ(reread.cores_used, report.cores_used);
  EXPECT_EQ(reread.rejections.size(), report.rejections.size());
  EXPECT_EQ(reread.headroom.cores.size(), report.headroom.cores.size());
  // The JSON carries doubles at %.9g, so identity fields must survive
  // exactly and the numeric fields to nine significant digits.
  ASSERT_EQ(reread.events.size(), report.events.size());
  for (std::size_t i = 0; i < report.events.size(); ++i) {
    const auto& a = report.events[i];
    const auto& b = reread.events[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.accepted, b.accepted) << "event " << i;
    EXPECT_EQ(a.constraint, b.constraint) << "event " << i;
    EXPECT_EQ(a.vm, b.vm) << "event " << i;
    EXPECT_EQ(a.entity, b.entity) << "event " << i;
    EXPECT_EQ(a.core, b.core) << "event " << i;
    EXPECT_EQ(a.cache, b.cache) << "event " << i;
    EXPECT_EQ(a.bw, b.bw) << "event " << i;
    EXPECT_NEAR(a.value, b.value, 1e-8 * (1.0 + std::abs(a.value)))
        << "event " << i;
    EXPECT_NEAR(a.margin, b.margin, 1e-8 * (1.0 + std::abs(a.margin)))
        << "event " << i;
  }
}

TEST(Explain, ReaderRejectsForeignSchemaAndUnknownNames) {
  std::istringstream wrong_schema(
      R"({"schema": "vc2m-bench-report/1", "strategy": "x", "git_rev": "y",
          "schedulable": false, "cores_used": 0,
          "headroom": {"spare_cache": 0, "spare_bw": 0, "cores": []},
          "events_dropped": 0})");
  EXPECT_THROW((void)obs::read_explain_report(wrong_schema), util::Error);

  std::istringstream bad_kind(
      R"({"schema": "vc2m-explain-report/1", "strategy": "x", "git_rev": "y",
          "schedulable": false, "cores_used": 0,
          "headroom": {"spare_cache": 0, "spare_bw": 0, "cores": []},
          "events_dropped": 0,
          "events": [{"kind": "warp_drive", "accepted": true,
                      "constraint": "none", "vm": -1, "entity": -1,
                      "core": -1, "cache": -1, "bw": -1,
                      "value": 0, "margin": 0}]})");
  EXPECT_THROW((void)obs::read_explain_report(bad_kind), util::Error);
}

}  // namespace
