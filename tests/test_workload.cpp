#include <gtest/gtest.h>

#include <sstream>

#include "model/platform.h"
#include "util/rng.h"
#include "workload/generator.h"
#include "workload/parsec.h"
#include "workload/profile_io.h"
#include "workload/taskset_io.h"

namespace vc2m::workload {
namespace {

using model::PlatformSpec;
using model::ResourceGrid;
using util::Rng;
using util::Time;

// -------------------------------------------------------------- PARSEC ----

TEST(Parsec, SuiteHasTwelveDistinctBenchmarks) {
  const auto& suite = parsec_suite();
  EXPECT_EQ(suite.size(), 12u);
  for (std::size_t i = 0; i < suite.size(); ++i)
    for (std::size_t j = i + 1; j < suite.size(); ++j)
      EXPECT_NE(suite[i].name, suite[j].name);
}

TEST(Parsec, FindProfile) {
  EXPECT_EQ(find_profile("streamcluster").name, "streamcluster");
  EXPECT_THROW(find_profile("does-not-exist"), util::Error);
}

TEST(Parsec, MissCurvePinnedAtEndpoints) {
  EXPECT_NEAR(miss_curve(1.0, 20.0, 3.0, 4.0), 3.0, 1e-12);
  EXPECT_NEAR(miss_curve(20.0, 20.0, 3.0, 4.0), 1.0, 1e-12);
}

TEST(Parsec, MissCurveMonotone) {
  for (double c = 1; c < 20; c += 0.5)
    EXPECT_GE(miss_curve(c, 20, 2.5, 4.0), miss_curve(c + 0.5, 20, 2.5, 4.0));
}

class ParsecSurfaceTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ParsecSurfaceTest, SurfaceIsNormalizedMonotoneAndAboveOne) {
  const auto& p = parsec_suite()[GetParam()];
  const auto grid = PlatformSpec::A().grid;
  const auto s = p.surface(grid);
  EXPECT_NEAR(s.reference(), 1.0, 1e-12) << p.name;
  EXPECT_TRUE(s.monotone_nonincreasing()) << p.name;
  for (unsigned c = grid.c_min; c <= grid.c_max; ++c)
    for (unsigned b = grid.b_min; b <= grid.b_max; ++b)
      EXPECT_GE(s.at(c, b), 1.0 - 1e-12) << p.name;
}

TEST_P(ParsecSurfaceTest, MaxSlowdownDominatesTheGrid) {
  const auto& p = parsec_suite()[GetParam()];
  const auto grid = PlatformSpec::A().grid;
  EXPECT_GE(p.max_slowdown(grid), p.surface(grid).max_value() - 1e-9)
      << p.name;
}

TEST_P(ParsecSurfaceTest, SmallerPlatformStillNormalized) {
  const auto& p = parsec_suite()[GetParam()];
  const auto grid = PlatformSpec::C().grid;  // 12 partitions
  EXPECT_NEAR(p.surface(grid).reference(), 1.0, 1e-12) << p.name;
  EXPECT_TRUE(p.surface(grid).monotone_nonincreasing()) << p.name;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, ParsecSurfaceTest,
                         ::testing::Range<std::size_t>(0, 12),
                         [](const auto& info) {
                           return parsec_suite()[info.param].name;
                         });

TEST(Parsec, BenchmarksDifferInCharacter) {
  const auto grid = PlatformSpec::A().grid;
  // Compute-bound swaptions barely slows down; streaming streamcluster
  // slows down heavily at minimum bandwidth.
  const double swaptions = find_profile("swaptions").surface(grid).max_value();
  const double stream = find_profile("streamcluster").surface(grid).max_value();
  EXPECT_LT(swaptions, 1.5);
  EXPECT_GT(stream, 3.0);
}

// ----------------------------------------------------------- generator ----

GeneratorConfig config_for(double target, UtilDist dist = UtilDist::kUniform,
                           int vms = 1) {
  GeneratorConfig cfg;
  cfg.grid = PlatformSpec::A().grid;
  cfg.target_ref_utilization = target;
  cfg.dist = dist;
  cfg.num_vms = vms;
  return cfg;
}

TEST(Generator, DrawUtilizationRespectsRanges) {
  Rng rng(5);
  for (int i = 0; i < 2'000; ++i) {
    const double u = draw_utilization(UtilDist::kUniform, rng);
    EXPECT_GE(u, 0.1);
    EXPECT_LT(u, 0.4);
    const double b = draw_utilization(UtilDist::kBimodalHeavy, rng);
    EXPECT_TRUE((b >= 0.1 && b < 0.4) || (b >= 0.5 && b < 0.9));
  }
}

TEST(Generator, BimodalHeavyDrawsMoreHeavyTasks) {
  Rng rng(6);
  int heavy_light = 0, heavy_heavy = 0;
  for (int i = 0; i < 20'000; ++i) {
    if (draw_utilization(UtilDist::kBimodalLight, rng) >= 0.5) ++heavy_light;
    if (draw_utilization(UtilDist::kBimodalHeavy, rng) >= 0.5) ++heavy_heavy;
  }
  // Expected proportions 1/9 vs 5/9.
  EXPECT_NEAR(heavy_light / 20'000.0, 1.0 / 9.0, 0.02);
  EXPECT_NEAR(heavy_heavy / 20'000.0, 5.0 / 9.0, 0.02);
}

TEST(Generator, HarmonicMenuWithinRangeAndHarmonic) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto menu = harmonic_period_menu(config_for(1.0), rng);
    ASSERT_EQ(menu.size(), 4u);
    for (std::size_t k = 0; k < menu.size(); ++k) {
      EXPECT_GE(menu[k], Time::ms(100));
      EXPECT_LE(menu[k], Time::ms(1100));
      if (k > 0) {
        EXPECT_EQ(menu[k], menu[k - 1] * 2);
      }
    }
  }
}

TEST(Generator, TasksetHitsTargetReferenceUtilizationExactly) {
  Rng rng(8);
  for (const double target : {0.3, 1.0, 2.0}) {
    const auto ts = generate_taskset(config_for(target), rng);
    EXPECT_NEAR(model::total_reference_utilization(ts), target, 1e-3);
  }
}

TEST(Generator, TasksetsAreHarmonic) {
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    const auto ts = generate_taskset(config_for(1.5), rng);
    EXPECT_TRUE(model::harmonic(ts));
  }
}

TEST(Generator, WcetSurfacesAreMonotoneWithDominatingMax) {
  Rng rng(10);
  const auto ts = generate_taskset(config_for(1.0), rng);
  for (const auto& t : ts) {
    EXPECT_TRUE(t.wcet.monotone_nonincreasing());
    EXPECT_GE(t.max_wcet, t.wcet.at(2, 1));
    EXPECT_LE(t.max_wcet, t.period);  // drawn utilization < 1
    EXPECT_GT(t.reference_wcet(), Time::zero());
  }
}

TEST(Generator, RoundRobinVmAssignment) {
  Rng rng(11);
  const auto ts = generate_taskset(config_for(1.5, UtilDist::kUniform, 3), rng);
  ASSERT_GE(ts.size(), 3u);
  for (std::size_t i = 0; i < ts.size(); ++i)
    EXPECT_EQ(ts[i].vm, static_cast<int>(i % 3));
}

TEST(Generator, DeterministicGivenSeed) {
  Rng a(12), b(12);
  const auto ts1 = generate_taskset(config_for(1.0), a);
  const auto ts2 = generate_taskset(config_for(1.0), b);
  ASSERT_EQ(ts1.size(), ts2.size());
  for (std::size_t i = 0; i < ts1.size(); ++i) {
    EXPECT_EQ(ts1[i].period, ts2[i].period);
    EXPECT_EQ(ts1[i].reference_wcet(), ts2[i].reference_wcet());
    EXPECT_EQ(ts1[i].label, ts2[i].label);
  }
}

TEST(Generator, TaskLabelsComeFromTheSuite) {
  Rng rng(13);
  const auto ts = generate_taskset(config_for(2.0), rng);
  for (const auto& t : ts) EXPECT_NO_THROW(find_profile(t.label));
}

// ----------------------------------------------------------- CSV I/O ----

TEST(TasksetIo, RoundTripPreservesTasks) {
  Rng rng(14);
  const auto grid = PlatformSpec::A().grid;
  const auto original = generate_taskset(config_for(1.0), rng);

  std::stringstream buf;
  write_taskset_csv(buf, original);
  const auto loaded = read_taskset_csv(buf, grid);

  ASSERT_EQ(loaded.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded[i].vm, original[i].vm);
    EXPECT_EQ(loaded[i].period, original[i].period);
    EXPECT_EQ(loaded[i].label, original[i].label);
    // Reference WCETs round-trip through decimal ms: sub-microsecond slop.
    EXPECT_NEAR(loaded[i].reference_wcet().to_ms(),
                original[i].reference_wcet().to_ms(), 1e-3);
    // Surfaces are regenerated from the same profile: identical shape.
    EXPECT_NEAR(loaded[i].wcet.slowdown().at(grid.c_min, grid.b_min),
                original[i].wcet.slowdown().at(grid.c_min, grid.b_min),
                1e-6);
  }
}

TEST(TasksetIo, SkipsCommentsAndHeader) {
  const auto grid = PlatformSpec::A().grid;
  std::stringstream buf;
  buf << "# a comment\n"
      << "vm,period_ms,ref_wcet_ms,benchmark\n"
      << "0,100,5,ferret\n"
      << "# another\n"
      << "1,200,8,swaptions\n";
  const auto tasks = read_taskset_csv(buf, grid);
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].label, "ferret");
  EXPECT_EQ(tasks[1].vm, 1);
  EXPECT_EQ(tasks[1].period, util::Time::ms(200));
}

TEST(TasksetIo, RejectsMalformedInput) {
  const auto grid = PlatformSpec::A().grid;
  const auto parse = [&](const std::string& text) {
    std::stringstream buf(text);
    return read_taskset_csv(buf, grid);
  };
  EXPECT_THROW(parse(""), util::Error);                        // empty
  EXPECT_THROW(parse("0,100,5\n"), util::Error);               // few fields
  EXPECT_THROW(parse("0,abc,5,ferret\n"), util::Error);        // non-numeric
  EXPECT_THROW(parse("0,100,5,nonexistent\n"), util::Error);   // bad profile
  EXPECT_THROW(parse("0,100,150,ferret\n"), util::Error);      // e > p
  EXPECT_THROW(parse("0,-5,1,ferret\n"), util::Error);         // negative
}

TEST(TasksetIo, RejectsTheHardenedMalformedMatrix) {
  const auto grid = PlatformSpec::A().grid;
  const auto parse = [&](const std::string& text) {
    std::stringstream buf(text);
    return read_taskset_csv(buf, grid);
  };
  // Truncated trailing line (no benchmark field).
  EXPECT_THROW(parse("0,100,5,ferret\n1,200,8\n"), util::Error);
  // Too many fields.
  EXPECT_THROW(parse("0,100,5,ferret,extra\n"), util::Error);
  // NaN / infinity.
  EXPECT_THROW(parse("0,nan,5,ferret\n"), util::Error);
  EXPECT_THROW(parse("0,100,inf,ferret\n"), util::Error);
  // Trailing characters after a number.
  EXPECT_THROW(parse("0,100x,5,ferret\n"), util::Error);
  // Negative vm id.
  EXPECT_THROW(parse("-1,100,5,ferret\n"), util::Error);
  // Empty benchmark name.
  EXPECT_THROW(parse("0,100,5,\n"), util::Error);
  // Exact duplicate row.
  EXPECT_THROW(parse("0,100,5,ferret\n0,100,5,ferret\n"), util::Error);
  // ...but distinct rows with the same benchmark are fine.
  EXPECT_NO_THROW(parse("0,100,5,ferret\n0,200,5,ferret\n"));
}

TEST(TasksetIo, ErrorsCarrySourceAndLineNumber) {
  const auto grid = PlatformSpec::A().grid;
  std::stringstream buf("0,100,5,ferret\n0,bogus,5,ferret\n");
  try {
    read_taskset_csv(buf, grid, "tasks.csv");
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tasks.csv:2:"), std::string::npos) << what;
    EXPECT_NE(what.find("bogus"), std::string::npos) << what;
  }
}

TEST(TasksetIo, FuzzedMutationsThrowCleanErrorsOnly) {
  // Robustness contract: any byte-level corruption of a valid taskset CSV
  // either still parses or throws util::Error — never crashes, never
  // reports through another exception type. (scripts/check.sh repeats
  // this under ASan/UBSan from the CLI.)
  const auto grid = PlatformSpec::A().grid;
  Rng rng(20260806);
  const auto tasks = generate_taskset(config_for(1.0), rng);
  std::stringstream buf;
  write_taskset_csv(buf, tasks);
  const std::string valid = buf.str();

  for (int iter = 0; iter < 200; ++iter) {
    std::string mutated = valid;
    const int flips = 1 + static_cast<int>(rng.index(4));
    for (int f = 0; f < flips; ++f) {
      const std::size_t pos = rng.index(mutated.size());
      mutated[pos] = static_cast<char>(rng.uniform_int(1, 255));
    }
    std::stringstream in(mutated);
    try {
      const auto ts = read_taskset_csv(in, grid);
      EXPECT_FALSE(ts.empty());  // parsed → must be a real taskset
    } catch (const util::Error&) {
      // acceptable: strict parser rejected the corruption
    }
  }
}

TEST(SurfaceIo, ErrorsCarrySourceAndLineNumber) {
  const model::ResourceGrid grid{2, 3, 1, 2};
  std::stringstream buf("2,1,4\n2,2,nan\n3,1,3.5\n3,2,2\n");
  try {
    read_surface_csv(buf, grid, "surface.csv");
    FAIL() << "expected util::Error";
  } catch (const util::Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("surface.csv:2:"), std::string::npos) << what;
  }
}

TEST(SurfaceIo, RejectsTheHardenedMalformedMatrix) {
  const model::ResourceGrid grid{2, 3, 1, 2};
  auto parse = [&](const std::string& text) {
    std::stringstream buf(text);
    return read_surface_csv(buf, grid);
  };
  // Too many fields.
  EXPECT_THROW(parse("2,1,4,9\n2,2,3\n3,1,3.5\n3,2,2\n"), util::Error);
  // Negative coordinate (stoul would silently wrap it).
  EXPECT_THROW(parse("-2,1,4\n2,2,3\n3,1,3.5\n3,2,2\n"), util::Error);
  // Non-finite WCET.
  EXPECT_THROW(parse("2,1,inf\n2,2,3\n3,1,3.5\n3,2,2\n"), util::Error);
  // Trailing characters.
  EXPECT_THROW(parse("2,1,4z\n2,2,3\n3,1,3.5\n3,2,2\n"), util::Error);
}

TEST(SurfaceIo, RoundTripIsExactToTheMicrosecond) {
  const model::ResourceGrid grid{2, 5, 1, 4};
  const auto& p = find_profile("ferret");
  const auto original =
      model::WcetFn::from_slowdown(util::Time::ms(10), p.surface(grid));
  std::stringstream buf;
  write_surface_csv(buf, original);
  const auto loaded = read_surface_csv(buf, grid);
  for (unsigned c = grid.c_min; c <= grid.c_max; ++c)
    for (unsigned b = grid.b_min; b <= grid.b_max; ++b)
      EXPECT_NEAR(loaded.at(c, b).to_ms(), original.at(c, b).to_ms(), 1e-3);
}

TEST(SurfaceIo, RejectsIncompleteAndCorruptSurfaces) {
  const model::ResourceGrid grid{2, 3, 1, 2};
  auto parse = [&](const std::string& text) {
    std::stringstream buf(text);
    return read_surface_csv(buf, grid);
  };
  // Complete, monotone: ok.
  EXPECT_NO_THROW(parse("2,1,4\n2,2,3\n3,1,3.5\n3,2,2\n"));
  // Missing point.
  EXPECT_THROW(parse("2,1,4\n2,2,3\n3,1,3.5\n"), util::Error);
  // Duplicate point.
  EXPECT_THROW(parse("2,1,4\n2,1,4\n2,2,3\n3,1,3.5\n3,2,2\n"), util::Error);
  // Out-of-grid point.
  EXPECT_THROW(parse("9,1,4\n2,1,4\n2,2,3\n3,1,3.5\n3,2,2\n"), util::Error);
  // Non-monotone (more cache, larger WCET).
  EXPECT_THROW(parse("2,1,4\n2,2,3\n3,1,5\n3,2,2\n"), util::Error);
  // Negative WCET.
  EXPECT_THROW(parse("2,1,-4\n2,2,3\n3,1,3.5\n3,2,2\n"), util::Error);
}

TEST(SurfaceIo, ImportedSurfaceDrivesATask) {
  // The adoption path: a measured surface becomes a schedulable task.
  const model::ResourceGrid grid{2, 3, 1, 2};
  std::stringstream buf("2,1,8\n2,2,6\n3,1,7\n3,2,5\n");
  model::Task t;
  t.period = util::Time::ms(100);
  t.wcet = read_surface_csv(buf, grid);
  t.max_wcet = util::Time::ms(12);
  EXPECT_DOUBLE_EQ(t.reference_utilization(), 0.05);
  EXPECT_DOUBLE_EQ(t.utilization(2, 1), 0.08);
}

TEST(TasksetIo, UnlabeledTaskCannotBeWritten) {
  model::Taskset tasks(1);
  tasks[0].period = util::Time::ms(100);
  std::stringstream buf;
  EXPECT_THROW(write_taskset_csv(buf, tasks), util::Error);
}

}  // namespace
}  // namespace vc2m::workload
