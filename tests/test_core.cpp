#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "analysis/schedulability.h"
#include "analysis/theorems.h"
#include "core/hv_alloc.h"
#include "core/kmeans.h"
#include "core/vm_alloc.h"
#include "model/platform.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vc2m::core {
namespace {

using model::PlatformSpec;
using model::ResourceGrid;
using model::Surface;
using model::Task;
using model::Taskset;
using model::Vcpu;
using model::WcetFn;
using util::Rng;
using util::Time;

// -------------------------------------------------------------- kmeans ----

TEST(KMeans, SeparatesObviousClusters) {
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({0.0 + i * 0.01, 0.0});
  for (int i = 0; i < 10; ++i) pts.push_back({10.0 + i * 0.01, 10.0});
  Rng rng(1);
  const auto res = kmeans(pts, 2, rng);
  // All points of one blob share a cluster, and the blobs differ.
  for (int i = 1; i < 10; ++i) {
    EXPECT_EQ(res.assignment[i], res.assignment[0]);
    EXPECT_EQ(res.assignment[10 + i], res.assignment[10]);
  }
  EXPECT_NE(res.assignment[0], res.assignment[10]);
}

TEST(KMeans, KEqualsOnePutsEverythingTogether) {
  std::vector<std::vector<double>> pts{{1, 2}, {3, 4}, {5, 6}};
  Rng rng(2);
  const auto res = kmeans(pts, 1, rng);
  for (const auto a : res.assignment) EXPECT_EQ(a, 0u);
  EXPECT_NEAR(res.centroids[0][0], 3.0, 1e-12);
}

TEST(KMeans, KEqualsNSeparatesDistinctPoints) {
  std::vector<std::vector<double>> pts{{0, 0}, {5, 5}, {9, 0}};
  Rng rng(3);
  const auto res = kmeans(pts, 3, rng);
  std::set<std::size_t> clusters(res.assignment.begin(),
                                 res.assignment.end());
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(KMeans, EveryClusterNonEmptyEvenWithDuplicatePoints) {
  std::vector<std::vector<double>> pts(6, std::vector<double>{1.0, 1.0});
  pts.push_back({2.0, 2.0});
  Rng rng(4);
  const auto res = kmeans(pts, 3, rng);
  const auto members = cluster_members(res, 3);
  for (const auto& m : members) EXPECT_FALSE(m.empty());
}

TEST(KMeans, InvalidKThrows) {
  std::vector<std::vector<double>> pts{{1.0}};
  Rng rng(5);
  EXPECT_THROW(kmeans(pts, 0, rng), util::Error);
  EXPECT_THROW(kmeans(pts, 2, rng), util::Error);
}

TEST(KMeans, ClusterMembersPartitionTheInput) {
  Rng rng(6);
  std::vector<std::vector<double>> pts;
  for (int i = 0; i < 40; ++i)
    pts.push_back({rng.uniform(0, 1), rng.uniform(0, 1)});
  const auto res = kmeans(pts, 5, rng);
  const auto members = cluster_members(res, 5);
  std::size_t total = 0;
  for (const auto& m : members) total += m.size();
  EXPECT_EQ(total, pts.size());
}

// -------------------------------------------------- best-fit packing ----

TEST(BestFit, PacksTightBeforeOpeningNewBins) {
  // Weights 0.6, 0.3, 0.3, 0.3: decreasing order packs 0.6 then the 0.3s;
  // best-fit fills bin 0 to 0.9 before opening bin 1.
  const auto bins = best_fit_decreasing({0.6, 0.3, 0.3, 0.3}, 1.0, 10);
  ASSERT_TRUE(bins.has_value());
  EXPECT_EQ(bins->size(), 2u);
}

TEST(BestFit, RespectsMaxBins) {
  EXPECT_FALSE(best_fit_decreasing({0.9, 0.9, 0.9}, 1.0, 2).has_value());
  EXPECT_TRUE(best_fit_decreasing({0.9, 0.9, 0.9}, 1.0, 3).has_value());
}

TEST(BestFit, OverweightItemFails) {
  EXPECT_FALSE(best_fit_decreasing({1.5}, 1.0, 10).has_value());
}

TEST(BestFit, ExactFitAccepted) {
  const auto bins = best_fit_decreasing({0.5, 0.5}, 1.0, 1);
  ASSERT_TRUE(bins.has_value());
  EXPECT_EQ(bins->size(), 1u);
}

TEST(BestFit, EveryItemPlacedExactlyOnce) {
  std::vector<double> w;
  Rng rng(7);
  for (int i = 0; i < 30; ++i) w.push_back(rng.uniform(0.05, 0.6));
  const auto bins = best_fit_decreasing(w, 1.0, 30);
  ASSERT_TRUE(bins.has_value());
  std::set<std::size_t> seen;
  for (const auto& bin : *bins) {
    double load = 0;
    for (const auto i : bin) {
      EXPECT_TRUE(seen.insert(i).second);
      load += w[i];
    }
    EXPECT_LE(load, 1.0 + 1e-9);
  }
  EXPECT_EQ(seen.size(), w.size());
}

// ----------------------------------------------------------- vm_alloc ----

Taskset generated_taskset(double util, int vms = 1, std::uint64_t seed = 42) {
  workload::GeneratorConfig cfg;
  cfg.grid = PlatformSpec::A().grid;
  cfg.target_ref_utilization = util;
  cfg.num_vms = vms;
  Rng rng(seed);
  return workload::generate_taskset(cfg, rng);
}

VmAllocConfig vm_cfg(VcpuAnalysis a, unsigned max_vcpus = 4) {
  VmAllocConfig cfg;
  cfg.analysis = a;
  cfg.max_vcpus_per_vm = max_vcpus;
  return cfg;
}

TEST(VmAlloc, FlatteningMakesOneVcpuPerTask) {
  const auto ts = generated_taskset(1.0);
  Rng rng(1);
  const auto vcpus =
      allocate_vms_heuristic(ts, vm_cfg(VcpuAnalysis::kFlattening), rng);
  ASSERT_EQ(vcpus.size(), ts.size());
  for (const auto& v : vcpus) EXPECT_EQ(v.tasks.size(), 1u);
}

TEST(VmAlloc, RegulatedUsesAtMostMaxVcpus) {
  const auto ts = generated_taskset(1.5);
  Rng rng(2);
  const auto vcpus =
      allocate_vms_heuristic(ts, vm_cfg(VcpuAnalysis::kRegulated, 4), rng);
  EXPECT_LE(vcpus.size(), 4u);
  EXPECT_GE(vcpus.size(), 1u);
}

TEST(VmAlloc, EveryTaskAssignedExactlyOnce) {
  const auto ts = generated_taskset(1.8);
  Rng rng(3);
  for (const auto analysis :
       {VcpuAnalysis::kFlattening, VcpuAnalysis::kRegulated,
        VcpuAnalysis::kExistingCsa}) {
    const auto vcpus = allocate_vms_heuristic(ts, vm_cfg(analysis), rng);
    std::set<std::size_t> seen;
    for (const auto& v : vcpus)
      for (const auto t : v.tasks) EXPECT_TRUE(seen.insert(t).second);
    EXPECT_EQ(seen.size(), ts.size());
  }
}

TEST(VmAlloc, RegulatedVcpuBandwidthMatchesTaskUtilization) {
  // Zero abstraction overhead: total VCPU reference bandwidth equals total
  // task reference utilization (up to nanosecond round-up).
  const auto ts = generated_taskset(1.2);
  Rng rng(4);
  const auto vcpus =
      allocate_vms_heuristic(ts, vm_cfg(VcpuAnalysis::kRegulated), rng);
  EXPECT_NEAR(model::total_reference_utilization(vcpus),
              model::total_reference_utilization(ts), 1e-6);
}

TEST(VmAlloc, ExistingCsaCarriesAbstractionOverhead) {
  const auto ts = generated_taskset(1.0);
  Rng rng(5);
  const auto vcpus =
      allocate_vms_heuristic(ts, vm_cfg(VcpuAnalysis::kExistingCsa), rng);
  // The PRM budgets strictly exceed the utilization share whenever more
  // than zero slack exists.
  EXPECT_GT(model::total_reference_utilization(vcpus),
            model::total_reference_utilization(ts) + 0.01);
}

TEST(VmAlloc, VmBoundariesRespected) {
  const auto ts = generated_taskset(1.5, /*vms=*/3);
  Rng rng(6);
  const auto vcpus =
      allocate_vms_heuristic(ts, vm_cfg(VcpuAnalysis::kRegulated), rng);
  for (const auto& v : vcpus)
    for (const auto t : v.tasks) EXPECT_EQ(ts[t].vm, v.vm);
}

TEST(VmAlloc, LoadsAreBalancedAcrossVcpus) {
  const auto ts = generated_taskset(1.6);
  Rng rng(7);
  const auto vcpus =
      allocate_vms_heuristic(ts, vm_cfg(VcpuAnalysis::kRegulated, 4), rng);
  if (vcpus.size() < 2) return;
  double lo = 1e9, hi = 0;
  for (const auto& v : vcpus) {
    lo = std::min(lo, v.reference_utilization());
    hi = std::max(hi, v.reference_utilization());
  }
  // Worst-fit decreasing within clusters keeps the spread bounded by the
  // largest single task utilization (≤ 0.4 reference here).
  EXPECT_LE(hi - lo, 0.45);
}

TEST(VmAlloc, NonHarmonicTasksetsSplitIntoHarmonicChains) {
  // Hand-built taskset with two incompatible period chains: the regulated
  // path must not throw — it builds one well-regulated VCPU per chain.
  auto task_with_period = [](Time p) {
    model::Task t;
    t.period = p;
    model::Surface s(PlatformSpec::A().grid, 1.0);
    t.wcet = model::WcetFn::from_slowdown(Time::ms(5), s);
    t.max_wcet = Time::ms(10);
    return t;
  };
  Taskset ts{task_with_period(Time::ms(100)),
             task_with_period(Time::ms(150)),
             task_with_period(Time::ms(200)),
             task_with_period(Time::ms(300))};
  Rng rng(21);
  const auto vcpus =
      allocate_vms_heuristic(ts, vm_cfg(VcpuAnalysis::kRegulated, 2), rng);
  std::set<std::size_t> seen;
  for (const auto& v : vcpus) {
    // Each VCPU serves a harmonic set (regulated_vcpu would have thrown).
    for (const auto t : v.tasks) EXPECT_TRUE(seen.insert(t).second);
  }
  EXPECT_EQ(seen.size(), ts.size());
  EXPECT_GE(vcpus.size(), 2u);  // at least one split was necessary
}

TEST(VmAlloc, ExistingCsaMaxWcetVcpuHasConstantBudget) {
  const auto ts = generated_taskset(0.5);
  std::vector<std::size_t> idx(ts.size());
  for (std::size_t i = 0; i < ts.size(); ++i) idx[i] = i;
  const auto v = vcpu_existing_csa_max_wcet(ts, idx);
  const auto& g = v.budget.grid();
  const Time ref = v.budget.at(g.c_max, g.b_max);
  EXPECT_EQ(v.budget.at(g.c_min, g.b_min), ref);
  EXPECT_GT(ref, Time::zero());
}

// ----------------------------------------------------------- hv_alloc ----

std::vector<Vcpu> regulated_vcpus(const Taskset& ts, unsigned max_vcpus,
                                  std::uint64_t seed) {
  Rng rng(seed);
  return allocate_vms_heuristic(
      ts, vm_cfg(VcpuAnalysis::kRegulated, max_vcpus), rng);
}

void expect_valid_mapping(const HvAllocResult& res,
                          const std::vector<Vcpu>& vcpus,
                          const PlatformSpec& platform) {
  ASSERT_TRUE(res.schedulable);
  ASSERT_EQ(res.vcpus_on_core.size(), res.cores_used);
  ASSERT_EQ(res.cache.size(), res.cores_used);
  ASSERT_EQ(res.bw.size(), res.cores_used);
  EXPECT_LE(res.cores_used, platform.cores);
  EXPECT_LE(res.total_cache(), platform.total_cache());
  EXPECT_LE(res.total_bw(), platform.total_bw());
  std::set<std::size_t> seen;
  for (unsigned k = 0; k < res.cores_used; ++k) {
    EXPECT_GE(res.cache[k], platform.grid.c_min);
    EXPECT_GE(res.bw[k], platform.grid.b_min);
    for (const auto v : res.vcpus_on_core[k])
      EXPECT_TRUE(seen.insert(v).second);
    EXPECT_TRUE(analysis::core_schedulable(vcpus, res.vcpus_on_core[k],
                                           res.cache[k], res.bw[k]));
  }
  EXPECT_EQ(seen.size(), vcpus.size());
}

TEST(HvAlloc, EasyWorkloadIsSchedulableWithValidMapping) {
  const auto platform = PlatformSpec::A();
  const auto ts = generated_taskset(1.0);
  const auto vcpus = regulated_vcpus(ts, platform.cores, 10);
  Rng rng(11);
  const auto res = allocate_heuristic(vcpus, platform, {}, rng);
  expect_valid_mapping(res, vcpus, platform);
}

TEST(HvAlloc, ImpossibleWorkloadReportsFailure) {
  const auto platform = PlatformSpec::A();
  // Reference utilization above the core count can never fit.
  const auto ts = generated_taskset(4.5);
  const auto vcpus = regulated_vcpus(ts, platform.cores, 12);
  Rng rng(13);
  const auto res = allocate_heuristic(vcpus, platform, {}, rng);
  EXPECT_FALSE(res.schedulable);
}

TEST(HvAlloc, SingleLightVcpuFitsOneCore) {
  const auto platform = PlatformSpec::A();
  const auto ts = generated_taskset(0.2);
  const auto vcpus = regulated_vcpus(ts, platform.cores, 14);
  Rng rng(15);
  const auto res = allocate_heuristic(vcpus, platform, {}, rng);
  ASSERT_TRUE(res.schedulable);
  EXPECT_EQ(res.cores_used, 1u);
}

TEST(HvAlloc, EvenPartitionProducesValidMappingWhenSchedulable) {
  const auto platform = PlatformSpec::A();
  const auto ts = generated_taskset(0.8);
  const auto vcpus = regulated_vcpus(ts, platform.cores, 16);
  const auto res = allocate_even_partition(vcpus, platform);
  if (!res.schedulable) return;  // even split may legitimately fail
  const unsigned c_even = platform.total_cache() / platform.cores;
  for (unsigned k = 0; k < res.cores_used; ++k) {
    EXPECT_EQ(res.cache[k], c_even);
    EXPECT_TRUE(analysis::core_schedulable(vcpus, res.vcpus_on_core[k],
                                           res.cache[k], res.bw[k]));
  }
}

TEST(HvAlloc, HeuristicDominatesEvenPartition) {
  // Over a batch of workloads, the heuristic must schedule at least as many
  // tasksets as the even-partition packing (it searches a superset of
  // configurations).
  const auto platform = PlatformSpec::A();
  int heuristic_wins = 0, even_wins = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    const auto ts = generated_taskset(1.3, 1, 100 + seed);
    const auto vcpus = regulated_vcpus(ts, platform.cores, 200 + seed);
    Rng rng(300 + seed);
    const bool h = allocate_heuristic(vcpus, platform, {}, rng).schedulable;
    const bool e = allocate_even_partition(vcpus, platform).schedulable;
    heuristic_wins += (h && !e) ? 1 : 0;
    even_wins += (e && !h) ? 1 : 0;
  }
  EXPECT_GE(heuristic_wins, even_wins);
}

TEST(HvAlloc, PlatformCExtraCoreConstraint) {
  // Platform C has only 12 partitions: at most 6 cores could receive the
  // 2-partition cache minimum, and the allocator must respect the pool.
  const auto platform = PlatformSpec::C();
  const auto ts = generated_taskset(1.0);
  const auto vcpus = regulated_vcpus(ts, platform.cores, 17);
  Rng rng(18);
  const auto res = allocate_heuristic(vcpus, platform, {}, rng);
  if (res.schedulable) expect_valid_mapping(res, vcpus, platform);
}

TEST(HvAlloc, DeterministicGivenSeed) {
  const auto platform = PlatformSpec::A();
  const auto ts = generated_taskset(1.2);
  const auto vcpus = regulated_vcpus(ts, platform.cores, 19);
  Rng rng1(20), rng2(20);
  const auto r1 = allocate_heuristic(vcpus, platform, {}, rng1);
  const auto r2 = allocate_heuristic(vcpus, platform, {}, rng2);
  EXPECT_EQ(r1.schedulable, r2.schedulable);
  EXPECT_EQ(r1.cores_used, r2.cores_used);
  EXPECT_EQ(r1.cache, r2.cache);
  EXPECT_EQ(r1.bw, r2.bw);
  EXPECT_EQ(r1.vcpus_on_core, r2.vcpus_on_core);
}

}  // namespace
}  // namespace vc2m::core
