#include <gtest/gtest.h>

#include "hw/cat.h"
#include "hw/lapic.h"
#include "hw/msr.h"
#include "hw/perf_counter.h"
#include "util/error.h"

namespace vc2m::hw {
namespace {

// ----------------------------------------------------------------- MSR ----

TEST(Msr, CoreScopedRegistersAreIndependent) {
  MsrFile msr(4);
  msr.write(0, IA32_PMC0, 11);
  msr.write(1, IA32_PMC0, 22);
  EXPECT_EQ(msr.read(0, IA32_PMC0), 11u);
  EXPECT_EQ(msr.read(1, IA32_PMC0), 22u);
  EXPECT_EQ(msr.read(2, IA32_PMC0), 0u);
}

TEST(Msr, CbmArrayIsPackageScoped) {
  MsrFile msr(4);
  msr.write(2, IA32_L3_MASK_0 + 3, 0xF0);
  EXPECT_EQ(msr.read(0, IA32_L3_MASK_0 + 3), 0xF0u);
}

TEST(Msr, BitHelpers) {
  MsrFile msr(1);
  msr.set_bits(0, IA32_PERF_GLOBAL_STATUS, 0b101);
  msr.clear_bits(0, IA32_PERF_GLOBAL_STATUS, 0b001);
  EXPECT_EQ(msr.read(0, IA32_PERF_GLOBAL_STATUS), 0b100u);
}

// ----------------------------------------------------------------- CAT ----

TEST(Cat, MaskHelpers) {
  EXPECT_TRUE(contiguous_mask(0b00111000));
  EXPECT_TRUE(contiguous_mask(0b1));
  EXPECT_FALSE(contiguous_mask(0b101));
  EXPECT_FALSE(contiguous_mask(0));
  EXPECT_EQ(make_mask(2, 3), 0b11100u);
}

class CatTest : public ::testing::Test {
 protected:
  MsrFile msr_{4};
  Cat cat_{msr_, /*num_ways=*/20, /*num_cos=*/16, /*min_ways=*/2};
};

TEST_F(CatTest, DefaultStateIsFullMaskCosZero) {
  for (unsigned core = 0; core < 4; ++core) {
    EXPECT_EQ(cat_.cos_of_core(core), 0u);
    EXPECT_EQ(cat_.ways_of_core(core), 20u);
  }
}

TEST_F(CatTest, RejectsInvalidMasks) {
  EXPECT_THROW(cat_.write_cbm(1, 0), util::Error);             // empty
  EXPECT_THROW(cat_.write_cbm(1, 0b101), util::Error);         // holes
  EXPECT_THROW(cat_.write_cbm(1, 1ull << 20), util::Error);    // too high
  EXPECT_THROW(cat_.write_cbm(1, 0b1), util::Error);           // < min_ways
  EXPECT_THROW(cat_.write_cbm(99, 0b11), util::Error);         // bad COS
}

TEST_F(CatTest, BindAndEffectiveMask) {
  cat_.write_cbm(3, make_mask(4, 6));
  cat_.bind_core(2, 3);
  EXPECT_EQ(cat_.cos_of_core(2), 3u);
  EXPECT_EQ(cat_.effective_mask(2), make_mask(4, 6));
  EXPECT_EQ(cat_.ways_of_core(2), 6u);
}

TEST_F(CatTest, DisjointPlanProgramsDisjointContiguousRegions) {
  cat_.program_disjoint_plan({6, 6, 4, 4});
  EXPECT_TRUE(cat_.cores_disjoint());
  std::uint64_t all = 0;
  for (unsigned core = 0; core < 4; ++core) {
    const std::uint64_t m = cat_.effective_mask(core);
    EXPECT_TRUE(contiguous_mask(m));
    all |= m;
  }
  EXPECT_EQ(all, make_mask(0, 20));
}

TEST_F(CatTest, PlanWithUnusedCoreAndNoLeftoverWays) {
  cat_.program_disjoint_plan({10, 0, 10});
  EXPECT_EQ(cat_.ways_of_core(0), 10u);
  EXPECT_EQ(cat_.ways_of_core(2), 10u);
  // No ways remain for core 1: it stays on the default full-mask COS 0 —
  // the allocator never schedules anything there.
  EXPECT_EQ(cat_.cos_of_core(1), 0u);
}

TEST_F(CatTest, UnusedCoresParkedOnLeftoverRegion) {
  cat_.program_disjoint_plan({6, 0, 6});
  // Cores 1 and 3 share the 8 leftover ways, disjoint from cores 0 and 2.
  EXPECT_EQ(cat_.ways_of_core(1), 8u);
  EXPECT_EQ(cat_.effective_mask(1), cat_.effective_mask(3));
  EXPECT_EQ(cat_.effective_mask(0) & cat_.effective_mask(1), 0u);
  EXPECT_EQ(cat_.effective_mask(2) & cat_.effective_mask(1), 0u);
  // Shared parking is one isolation domain: the plan counts as disjoint.
  EXPECT_TRUE(cat_.cores_disjoint());
}

TEST_F(CatTest, PlanOverCapacityThrows) {
  EXPECT_THROW(cat_.program_disjoint_plan({10, 10, 10}), util::Error);
  EXPECT_THROW(cat_.program_disjoint_plan({1, 2, 2}), util::Error);  // < min
}

TEST_F(CatTest, DefaultStateIsOneSharedDomain) {
  // All cores share COS 0 with the full mask: a single isolation domain,
  // trivially "disjoint" (no *cross-domain* overlap).
  EXPECT_TRUE(cat_.cores_disjoint());
}

TEST_F(CatTest, OverlappingDistinctCosIsNotDisjoint) {
  cat_.write_cbm(1, make_mask(0, 6));
  cat_.write_cbm(2, make_mask(4, 6));  // overlaps ways 4-5 of COS 1
  cat_.bind_core(0, 1);
  cat_.bind_core(1, 2);
  // Cores 2, 3 remain on the full-mask COS 0, which also overlaps.
  EXPECT_FALSE(cat_.cores_disjoint());
}

// ------------------------------------------------------------------ PMU ----

class PmuTest : public ::testing::Test {
 protected:
  MsrFile msr_{2};
  PerfCounter pc_{msr_, 0};
};

TEST_F(PmuTest, DisabledCounterIgnoresEvents) {
  EXPECT_FALSE(pc_.enabled());
  EXPECT_FALSE(pc_.count(1'000));
  EXPECT_EQ(pc_.value(), 0u);
}

TEST_F(PmuTest, PresetOverflowsAfterExactBudget) {
  pc_.program_llc_misses();
  pc_.preset_for_budget(100);
  EXPECT_EQ(pc_.remaining_before_overflow(), 100u);
  EXPECT_FALSE(pc_.count(99));
  EXPECT_FALSE(pc_.overflow_pending());
  EXPECT_TRUE(pc_.count(1));  // crosses the boundary exactly
  EXPECT_TRUE(pc_.overflow_pending());
}

TEST_F(PmuTest, OverflowBitIsStickyUntilCleared) {
  pc_.program_llc_misses();
  pc_.preset_for_budget(10);
  EXPECT_TRUE(pc_.count(10));
  EXPECT_TRUE(pc_.overflow_pending());
  pc_.clear_overflow();
  EXPECT_FALSE(pc_.overflow_pending());
}

TEST_F(PmuTest, CounterWrapsAtWidth) {
  pc_.program_llc_misses();
  pc_.preset_for_budget(1);
  EXPECT_TRUE(pc_.count(1));
  EXPECT_EQ(pc_.value(), 0u);  // wrapped to zero
  // After the wrap a full 2^48 events are needed for the next overflow.
  EXPECT_EQ(pc_.remaining_before_overflow(), kPmcMask + 1);
}

TEST_F(PmuTest, BudgetOutOfRangeThrows) {
  EXPECT_THROW(pc_.preset_for_budget(0), util::Error);
  EXPECT_THROW(pc_.preset_for_budget(kPmcMask + 1), util::Error);
}

// ---------------------------------------------------------------- LAPIC ----

TEST(Lapic, MaskedPmiIsDropped) {
  Lapic lapic(2);
  int delivered = 0;
  lapic.set_handler([&](unsigned, std::uint8_t) { ++delivered; });
  // Architectural reset state: masked.
  EXPECT_FALSE(lapic.deliver_pmi(0));
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(lapic.delivery_attempts(), 1u);
  EXPECT_EQ(lapic.deliveries(), 0u);
}

TEST(Lapic, UnmaskedPmiReachesHandlerWithVector) {
  Lapic lapic(2);
  unsigned got_core = 99;
  std::uint8_t got_vector = 0;
  lapic.set_handler([&](unsigned core, std::uint8_t v) {
    got_core = core;
    got_vector = v;
  });
  lapic.configure_pmi(1, 0xEE, /*masked=*/false);
  EXPECT_TRUE(lapic.deliver_pmi(1));
  EXPECT_EQ(got_core, 1u);
  EXPECT_EQ(got_vector, 0xEE);
}

TEST(Lapic, PerCoreMasking) {
  Lapic lapic(2);
  lapic.set_handler([](unsigned, std::uint8_t) {});
  lapic.configure_pmi(0, 0xEE, false);
  EXPECT_FALSE(lapic.masked(0));
  EXPECT_TRUE(lapic.masked(1));
}

}  // namespace
}  // namespace vc2m::hw
