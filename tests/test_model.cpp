#include <gtest/gtest.h>

#include "model/platform.h"
#include "model/resource_grid.h"
#include "model/surface.h"
#include "model/task.h"
#include "util/error.h"

namespace vc2m::model {
namespace {

using util::Time;

ResourceGrid small_grid() { return ResourceGrid{2, 4, 1, 3}; }

// -------------------------------------------------------- ResourceGrid ----

TEST(ResourceGrid, LevelsAndSize) {
  const auto g = small_grid();
  EXPECT_EQ(g.cache_levels(), 3u);
  EXPECT_EQ(g.bw_levels(), 3u);
  EXPECT_EQ(g.size(), 9u);
}

TEST(ResourceGrid, ContainsAndIndex) {
  const auto g = small_grid();
  EXPECT_TRUE(g.contains(2, 1));
  EXPECT_TRUE(g.contains(4, 3));
  EXPECT_FALSE(g.contains(1, 1));
  EXPECT_FALSE(g.contains(2, 4));
  EXPECT_EQ(g.index(2, 1), 0u);
  EXPECT_EQ(g.index(2, 2), 1u);
  EXPECT_EQ(g.index(3, 1), 3u);
  EXPECT_EQ(g.index(4, 3), 8u);
  EXPECT_THROW(g.index(5, 1), util::Error);
}

TEST(ResourceGrid, ValidateRejectsInvertedBounds) {
  ResourceGrid g{3, 2, 1, 1};
  EXPECT_THROW(g.validate(), util::Error);
}

// ------------------------------------------------------------- Surface ----

TEST(Surface, SetGetAndReference) {
  Surface s(small_grid(), 1.0);
  s.set(2, 1, 3.0);
  EXPECT_DOUBLE_EQ(s.at(2, 1), 3.0);
  EXPECT_DOUBLE_EQ(s.at(3, 2), 1.0);
  EXPECT_DOUBLE_EQ(s.reference(), 1.0);  // value at (c_max, b_max)
  EXPECT_DOUBLE_EQ(s.max_value(), 3.0);
}

TEST(Surface, MonotonicityCheck) {
  Surface s(small_grid(), 1.0);
  EXPECT_TRUE(s.monotone_nonincreasing());  // constant
  s.set(2, 1, 2.0);
  s.set(2, 2, 1.5);
  EXPECT_TRUE(s.monotone_nonincreasing());
  s.set(4, 3, 5.0);  // larger at the richest allocation: violates
  EXPECT_FALSE(s.monotone_nonincreasing());
}

// -------------------------------------------------------------- WcetFn ----

Surface demo_slowdown() {
  Surface s(small_grid());
  for (unsigned c = 2; c <= 4; ++c)
    for (unsigned b = 1; b <= 3; ++b)
      s.set(c, b, 1.0 + 0.5 * (4 - c) + 0.25 * (3 - b));
  return s;
}

TEST(WcetFn, FromSlowdownRoundTrips) {
  const auto f = WcetFn::from_slowdown(Time::ms(10), demo_slowdown());
  EXPECT_EQ(f.reference(), Time::ms(10));
  EXPECT_EQ(f.at(2, 1), Time::ms(25));  // 10ms * (1 + 0.5*2 + 0.25*2)
  const auto s = f.slowdown();
  EXPECT_DOUBLE_EQ(s.reference(), 1.0);
  EXPECT_NEAR(s.at(2, 1), 2.5, 1e-9);
  EXPECT_TRUE(f.monotone_nonincreasing());
}

TEST(WcetFn, PointwiseSum) {
  auto f = WcetFn(small_grid(), Time::ms(1));
  const auto g = WcetFn(small_grid(), Time::ms(2));
  f += g;
  EXPECT_EQ(f.at(3, 2), Time::ms(3));
}

TEST(WcetFn, SumRejectsGridMismatch) {
  auto f = WcetFn(small_grid());
  const auto g = WcetFn(ResourceGrid{2, 5, 1, 3});
  EXPECT_THROW(f += g, util::Error);
}

// ---------------------------------------------------------------- Task ----

Task make_task(Time period, Time ref_wcet, int vm = 0) {
  Task t;
  t.period = period;
  t.wcet = WcetFn::from_slowdown(ref_wcet, demo_slowdown());
  t.max_wcet = ref_wcet * 2;
  t.vm = vm;
  return t;
}

TEST(Task, ReferenceUtilization) {
  const auto t = make_task(Time::ms(100), Time::ms(10));
  EXPECT_DOUBLE_EQ(t.reference_utilization(), 0.1);
  EXPECT_NEAR(t.utilization(2, 1), 0.25, 1e-9);
}

TEST(Taskset, TotalReferenceUtilization) {
  Taskset ts{make_task(Time::ms(100), Time::ms(10)),
             make_task(Time::ms(200), Time::ms(30))};
  EXPECT_DOUBLE_EQ(total_reference_utilization(ts), 0.25);
}

TEST(Taskset, HarmonicDetection) {
  Taskset h{make_task(Time::ms(100), Time::ms(1)),
            make_task(Time::ms(200), Time::ms(1)),
            make_task(Time::ms(400), Time::ms(1))};
  EXPECT_TRUE(harmonic(h));
  h.push_back(make_task(Time::ms(300), Time::ms(1)));
  EXPECT_FALSE(harmonic(h));
}

TEST(Taskset, HyperperiodOfHarmonicSetIsMaxPeriod) {
  Taskset h{make_task(Time::ms(100), Time::ms(1)),
            make_task(Time::ms(400), Time::ms(1))};
  EXPECT_EQ(hyperperiod(h), Time::ms(400));
}

// ---------------------------------------------------------------- Vcpu ----

TEST(Vcpu, UtilizationFollowsBudgetSurface) {
  Vcpu v;
  v.period = Time::ms(100);
  v.budget = WcetFn::from_slowdown(Time::ms(20), demo_slowdown());
  EXPECT_DOUBLE_EQ(v.reference_utilization(), 0.2);
  EXPECT_NEAR(v.utilization(2, 1), 0.5, 1e-9);
  const std::vector<Vcpu> vs{v, v};
  EXPECT_DOUBLE_EQ(total_reference_utilization(vs), 0.4);
}

// ------------------------------------------------------------ Platform ----

TEST(Platform, SpecsMatchThePaper) {
  const auto a = PlatformSpec::A();
  EXPECT_EQ(a.cores, 4u);
  EXPECT_EQ(a.total_cache(), 20u);
  EXPECT_EQ(a.total_bw(), 20u);
  EXPECT_EQ(a.grid.c_min, 2u);
  EXPECT_EQ(a.grid.b_min, 1u);

  const auto b = PlatformSpec::B();
  EXPECT_EQ(b.cores, 6u);
  EXPECT_EQ(b.total_cache(), 20u);

  const auto c = PlatformSpec::C();
  EXPECT_EQ(c.cores, 4u);
  EXPECT_EQ(c.total_cache(), 12u);
  EXPECT_EQ(c.total_bw(), 12u);
}

}  // namespace
}  // namespace vc2m::model
