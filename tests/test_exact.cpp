#include <gtest/gtest.h>

#include <set>

#include "analysis/schedulability.h"
#include "analysis/theorems.h"
#include "core/exact.h"
#include "core/vm_alloc.h"
#include "model/platform.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vc2m::core {
namespace {

using model::PlatformSpec;
using model::Taskset;
using model::Vcpu;
using util::Rng;
using util::Time;

std::vector<Vcpu> small_vcpu_set(double util, std::uint64_t seed,
                                 unsigned max_vcpus) {
  workload::GeneratorConfig gen;
  gen.grid = PlatformSpec::A().grid;
  gen.target_ref_utilization = util;
  Rng rng(seed);
  const auto tasks = workload::generate_taskset(gen, rng);
  VmAllocConfig cfg;
  cfg.analysis = VcpuAnalysis::kRegulated;
  cfg.max_vcpus_per_vm = max_vcpus;
  return allocate_vms_heuristic(tasks, cfg, rng);
}

void expect_valid(const HvAllocResult& res, const std::vector<Vcpu>& vcpus,
                  const PlatformSpec& platform) {
  ASSERT_TRUE(res.schedulable);
  EXPECT_LE(res.cores_used, platform.cores);
  EXPECT_LE(res.total_cache(), platform.total_cache());
  EXPECT_LE(res.total_bw(), platform.total_bw());
  std::set<std::size_t> seen;
  for (unsigned k = 0; k < res.cores_used; ++k) {
    EXPECT_GE(res.cache[k], platform.grid.c_min);
    EXPECT_GE(res.bw[k], platform.grid.b_min);
    for (const auto v : res.vcpus_on_core[k]) seen.insert(v);
    EXPECT_TRUE(analysis::core_schedulable(
        vcpus, res.vcpus_on_core[k], res.cache[k], res.bw[k]));
  }
  EXPECT_EQ(seen.size(), vcpus.size());
}

TEST(Exact, FindsValidMappingOnEasyInstance) {
  const auto platform = PlatformSpec::A();
  const auto vcpus = small_vcpu_set(0.8, 1, 4);
  ASSERT_LE(vcpus.size(), 10u);
  const auto res = allocate_exact(vcpus, platform);
  expect_valid(res, vcpus, platform);
}

TEST(Exact, ProvesInfeasibilityOfOverload) {
  const auto platform = PlatformSpec::A();
  // Four VCPUs whose utilization exceeds 1 even at the full allocation on
  // more cores than exist cannot fit.
  const auto tasks_util = 4.8;
  const auto vcpus = small_vcpu_set(tasks_util, 2, 4);
  if (vcpus.size() > 10) GTEST_SKIP();
  EXPECT_FALSE(allocate_exact(vcpus, platform).schedulable);
}

TEST(Exact, SingleVcpuUsesOneCore) {
  const auto platform = PlatformSpec::A();
  const auto vcpus = small_vcpu_set(0.3, 3, 1);
  ASSERT_EQ(vcpus.size(), 1u);
  const auto res = allocate_exact(vcpus, platform);
  ASSERT_TRUE(res.schedulable);
  EXPECT_EQ(res.cores_used, 1u);
}

TEST(Exact, RefusesOversizedInstances) {
  const auto platform = PlatformSpec::A();
  const auto vcpus = small_vcpu_set(0.5, 4, 2);
  ExactConfig cfg;
  cfg.max_vcpus = 1;
  if (vcpus.size() > 1)
    EXPECT_THROW(allocate_exact(vcpus, platform, cfg), util::Error);
}

// Whenever the heuristic certifies an instance, the exact search must too
// (the heuristic's mapping is itself a witness) — and the exact search may
// additionally certify instances the heuristic missed, never the reverse.
class ExactDominanceTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactDominanceTest, ExactCertifiesEverythingTheHeuristicDoes) {
  const auto platform = PlatformSpec::C();  // tight platform: 12 partitions
  const std::uint64_t seed = 400 + static_cast<std::uint64_t>(GetParam());
  const auto vcpus =
      small_vcpu_set(0.6 + 0.15 * GetParam(), seed, /*max_vcpus=*/3);
  if (vcpus.size() > 8) GTEST_SKIP();

  Rng rng(seed);
  const auto heuristic = allocate_heuristic(vcpus, platform, {}, rng);
  const auto exact = allocate_exact(vcpus, platform);
  if (heuristic.schedulable) {
    EXPECT_TRUE(exact.schedulable) << "exact missed a feasible instance";
  }
  if (exact.schedulable) expect_valid(exact, vcpus, platform);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactDominanceTest, ::testing::Range(0, 10));

// Regression: the search result must not depend on the VCPU input order
// (an earlier version iterated a vector being mutated by deeper recursion
// levels and silently skipped partitions for some orders).
class ExactOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(ExactOrderTest, ResultIsOrderInsensitive) {
  const auto platform = PlatformSpec::C();
  const std::uint64_t seed = 800 + static_cast<std::uint64_t>(GetParam());
  auto vcpus = small_vcpu_set(1.1, seed, 3);
  if (vcpus.size() > 7) GTEST_SKIP();
  const bool forward = allocate_exact(vcpus, platform).schedulable;

  Rng rng(seed);
  for (int shuffle = 0; shuffle < 3; ++shuffle) {
    rng.shuffle(vcpus);
    EXPECT_EQ(allocate_exact(vcpus, platform).schedulable, forward)
        << "seed " << seed << " shuffle " << shuffle;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactOrderTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace vc2m::core
