#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "analysis/dbf.h"
#include "analysis/prm.h"
#include "analysis/regulated.h"
#include "analysis/schedulability.h"
#include "analysis/theorems.h"
#include "model/task.h"
#include "util/error.h"

namespace vc2m::analysis {
namespace {

using model::ResourceGrid;
using model::Surface;
using model::Task;
using model::Taskset;
using model::WcetFn;
using util::Time;

ResourceGrid grid() { return ResourceGrid{2, 4, 1, 3}; }

Surface flat_slowdown(double worst = 2.0) {
  Surface s(grid());
  for (unsigned c = 2; c <= 4; ++c)
    for (unsigned b = 1; b <= 3; ++b) {
      const double frac =
          (static_cast<double>(4 - c) / 2.0 + static_cast<double>(3 - b) / 2.0) / 2.0;
      s.set(c, b, 1.0 + (worst - 1.0) * frac);
    }
  return s;
}

Task make_task(Time period, Time ref_wcet, int vm = 0) {
  Task t;
  t.period = period;
  t.wcet = WcetFn::from_slowdown(ref_wcet, flat_slowdown());
  t.max_wcet = ref_wcet * 2;
  t.vm = vm;
  return t;
}

// ----------------------------------------------------------------- dbf ----

TEST(Dbf, ImplicitDeadlineDemand) {
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(2)},
                              {Time::ms(20), Time::ms(5)}};
  EXPECT_EQ(dbf(ts, Time::ms(5)), Time::zero());
  EXPECT_EQ(dbf(ts, Time::ms(10)), Time::ms(2));
  EXPECT_EQ(dbf(ts, Time::ms(20)), Time::ms(2 * 2 + 5));
  EXPECT_EQ(dbf(ts, Time::ms(40)), Time::ms(4 * 2 + 2 * 5));
}

TEST(Dbf, TotalUtilization) {
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(2)},
                              {Time::ms(20), Time::ms(5)}};
  EXPECT_DOUBLE_EQ(total_utilization(ts), 0.45);
}

TEST(Dbf, CheckpointsAreDeadlinesUpToHorizon) {
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(1)},
                              {Time::ms(25), Time::ms(1)}};
  const auto pts = dbf_checkpoints(ts, Time::ms(50));
  const std::vector<Time> expected{Time::ms(10), Time::ms(20), Time::ms(25),
                                   Time::ms(30), Time::ms(40), Time::ms(50)};
  EXPECT_EQ(pts, expected);
}

TEST(Dbf, HyperperiodLcm) {
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(1)},
                              {Time::ms(25), Time::ms(1)}};
  EXPECT_EQ(hyperperiod(ts), Time::ms(50));
}

TEST(Dbf, CheckpointCapRejectsPathologicalPeriodHorizonRatios) {
  // A 1 ns period against a 100 ms horizon means 10⁸ pre-dedup points
  // (~800 MB of Time values). The cap must refuse before allocating, for
  // both the reference enumerator and the SoA k-way merge.
  const std::vector<PTask> ts{{Time::ns(1), Time::ns(1)},
                              {Time::ms(10), Time::ms(1)}};
  EXPECT_THROW(dbf_checkpoints(ts, Time::ms(100)), util::Error);

  const std::vector<std::int64_t> periods{1, Time::ms(10).raw_ns()};
  std::vector<Time> out;
  EXPECT_THROW(merge_checkpoints(periods, Time::ms(100), out), util::Error);

  // Just under the cap still works: a single 1 us period over 1 s is 10⁶
  // points, well inside 2²².
  const std::vector<PTask> ok{{Time::us(1), Time::ns(10)}};
  EXPECT_EQ(dbf_checkpoints(ok, Time::sec(1)).size(), 1'000'000u);
}

TEST(Dbf, SoaKernelsMatchReferenceKernels) {
  // TaskArrays + merge_checkpoints + demand_at must reproduce the
  // reference span-of-PTask kernels exactly on an awkward period mix
  // (duplicates, coprime pairs, a task whose period exceeds the horizon).
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(2)},
                              {Time::ms(10), Time::ms(1)},
                              {Time::ms(15), Time::ms(4)},
                              {Time::ms(7), Time::us(1500)},
                              {Time::sec(2), Time::ms(100)}};
  TaskArrays soa;
  soa.assign(ts);
  EXPECT_DOUBLE_EQ(soa.total_util, total_utilization(ts));
  EXPECT_EQ(soa.hyperperiod(), hyperperiod(ts));

  const Time horizon = Time::ms(420);
  const auto ref_points = dbf_checkpoints(ts, horizon);
  std::vector<Time> points;
  merge_checkpoints(soa.period, horizon, points);
  EXPECT_EQ(points, ref_points);

  std::vector<Time> demand(points.size());
  demand_at(soa.period, soa.wcet, points, demand);
  for (std::size_t k = 0; k < points.size(); ++k)
    EXPECT_EQ(demand[k], dbf(ts, points[k])) << "at " << points[k];
}

// ----------------------------------------------------------------- PRM ----

TEST(Prm, SbfOfFullProcessorIsIdentity) {
  const Prm prm{Time::ms(10), Time::ms(10)};
  for (int t = 0; t <= 40; t += 3)
    EXPECT_EQ(prm.sbf(Time::ms(t)), Time::ms(t));
}

TEST(Prm, SbfWorstCaseDelayAndRamps) {
  // Π = 10, Θ = 4: no supply before 2(Π−Θ) = 12, then ramps of length Θ.
  const Prm prm{Time::ms(10), Time::ms(4)};
  EXPECT_EQ(prm.sbf(Time::ms(6)), Time::zero());
  EXPECT_EQ(prm.sbf(Time::ms(12)), Time::zero());
  EXPECT_EQ(prm.sbf(Time::ms(14)), Time::ms(2));
  EXPECT_EQ(prm.sbf(Time::ms(16)), Time::ms(4));  // one full chunk
  EXPECT_EQ(prm.sbf(Time::ms(22)), Time::ms(4));  // plateau
  EXPECT_EQ(prm.sbf(Time::ms(26)), Time::ms(8));
}

TEST(Prm, SbfIsMonotoneAndDominatesLsbf) {
  const Prm prm{Time::ms(10), Time::ms(55) - Time::ms(49)};  // Θ = 6ms
  Time prev = Time::zero();
  for (int t = 0; t <= 100; ++t) {
    const Time s = prm.sbf(Time::ms(t));
    EXPECT_GE(s, prev);
    EXPECT_GE(static_cast<double>(s.raw_ns()) + 1e-6, prm.lsbf(Time::ms(t)));
    prev = s;
  }
}

TEST(Prm, PaperExampleTask10_1NeedsBudget5_5) {
  // The motivating example of §1: a single task (p=10, e=1) requires a
  // minimum PRM budget of 5.5 at Π = 10 — 55× the task's utilization.
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(1)}};
  const auto theta = min_budget_edf(ts, Time::ms(10));
  ASSERT_TRUE(theta.has_value());
  EXPECT_EQ(*theta, Time::us(5'500));
}

TEST(Prm, MinBudgetIsTightAtTheSchedulabilityBoundary) {
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(2)},
                              {Time::ms(20), Time::ms(4)}};
  const auto theta = min_budget_edf(ts, Time::ms(10));
  ASSERT_TRUE(theta.has_value());
  EXPECT_TRUE(edf_schedulable_on_prm(ts, {Time::ms(10), *theta}));
  EXPECT_FALSE(edf_schedulable_on_prm(
      ts, {Time::ms(10), *theta - Time::ns(1)}));
}

TEST(Prm, MinBudgetAtLeastUtilizationShare) {
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(3)},
                              {Time::ms(40), Time::ms(8)}};
  const auto theta = min_budget_edf(ts, Time::ms(10));
  ASSERT_TRUE(theta.has_value());
  EXPECT_GE(theta->ratio(Time::ms(10)), total_utilization(ts) - 1e-12);
}

TEST(Prm, OverloadedTasksetHasNoBudget) {
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(8)},
                              {Time::ms(10), Time::ms(8)}};
  EXPECT_FALSE(min_budget_edf(ts, Time::ms(10)).has_value());
}

TEST(Prm, EmptyTasksetNeedsNothing) {
  const std::vector<PTask> ts;
  EXPECT_EQ(min_budget_edf(ts, Time::ms(10)), Time::zero());
  EXPECT_TRUE(edf_schedulable_on_prm(ts, {Time::ms(10), Time::zero()}));
}

TEST(Prm, FullBandwidthTasksetNeedsFullProcessor) {
  // U = 1 requires Θ = Π (any supply gap breaks it).
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(10)}};
  const auto theta = min_budget_edf(ts, Time::ms(10));
  ASSERT_TRUE(theta.has_value());
  EXPECT_EQ(*theta, Time::ms(10));
}

TEST(Prm, MinBudgetOnCurveMatchesReferenceSearchEverywhere) {
  // The fast path (precomputed checkpoints + demand, then the identical
  // binary search) must return the reference minimum bit-for-bit across a
  // spread of periods, utilizations, and infeasible sets.
  const Time pi = Time::ms(10);
  std::vector<std::vector<PTask>> cases;
  cases.push_back({});  // empty set
  cases.push_back({{Time::ms(10), Time::ms(10)}});  // U = 1 exactly
  cases.push_back({{Time::ms(10), Time::ms(11)}});  // infeasible
  cases.push_back({{Time::ms(100), Time::us(137)}});
  cases.push_back({{Time::ms(10), Time::ms(2)},
                   {Time::ms(15), Time::ms(3)},
                   {Time::ms(35), Time::us(4200)}});
  cases.push_back({{Time::ms(7), Time::us(900)},
                   {Time::ms(21), Time::ms(5)},
                   {Time::ms(12), Time::us(3100)},
                   {Time::ms(12), Time::us(250)}});
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& ts = cases[i];
    const auto ref = min_budget_edf(ts, pi);

    std::optional<Time> fast;
    if (ts.empty()) {
      fast = min_budget_on_curve(DemandCurve{}, 0.0, pi);
    } else {
      TaskArrays soa;
      soa.assign(ts);
      std::vector<Time> points;
      if (soa.total_util <= 1.0 + 1e-12)
        merge_checkpoints(soa.period, util::lcm(soa.hyperperiod(), pi),
                          points);
      std::vector<Time> demand(points.size());
      demand_at(soa.period, soa.wcet, points, demand);
      fast = min_budget_on_curve(DemandCurve{points, demand}, soa.total_util,
                                 pi);
    }
    ASSERT_EQ(fast.has_value(), ref.has_value()) << "case " << i;
    if (ref) {
      EXPECT_EQ(*fast, *ref) << "case " << i;
    }
  }
}

// A parameterized sweep: the abstraction overhead (Θ/Π vs utilization) of a
// single task (p, e) grows as utilization shrinks — the phenomenon vC2M
// eliminates.
class AbstractionOverheadTest : public ::testing::TestWithParam<int> {};

TEST_P(AbstractionOverheadTest, BudgetExceedsUtilizationShare) {
  const Time p = Time::ms(10);
  const Time e = Time::us(GetParam());
  const std::vector<PTask> ts{{p, e}};
  const auto theta = min_budget_edf(ts, p);
  ASSERT_TRUE(theta.has_value());
  const double bandwidth = theta->ratio(p);
  const double util = e.ratio(p);
  EXPECT_GE(bandwidth, util);
  // (Π + e)/2 is the analytic minimum for a single task with Π = p:
  // sbf(p) = 2Θ − (Π − ... ) ⇒ Θ = (p + e)/2.
  EXPECT_EQ(*theta, Time::ns((p.raw_ns() + e.raw_ns()) / 2));
}

INSTANTIATE_TEST_SUITE_P(Utilizations, AbstractionOverheadTest,
                         ::testing::Values(100, 500, 1000, 2000, 5000, 9000));

// ---------------------------------------------------- regulated supply ----

TEST(RegulatedSupply, SbfExposesOneGapOnly) {
  // Π = 10, Θ = 4: within one period the worst window loses Π−Θ = 6.
  const RegulatedSupply wr{Time::ms(10), Time::ms(4)};
  EXPECT_EQ(wr.sbf(Time::ms(6)), Time::zero());
  EXPECT_EQ(wr.sbf(Time::ms(8)), Time::ms(2));
  EXPECT_EQ(wr.sbf(Time::ms(10)), Time::ms(4));  // full period: exactly Θ
  EXPECT_EQ(wr.sbf(Time::ms(20)), Time::ms(8));
  EXPECT_EQ(wr.sbf(Time::ms(26)), Time::ms(8));  // gap inside period 3
  EXPECT_EQ(wr.sbf(Time::ms(28)), Time::ms(10));
}

TEST(RegulatedSupply, DominatesPrmSupplyEverywhere) {
  for (int theta_ms = 1; theta_ms <= 10; ++theta_ms) {
    const RegulatedSupply wr{Time::ms(10), Time::ms(theta_ms)};
    const Prm prm{Time::ms(10), Time::ms(theta_ms)};
    for (int t = 0; t <= 100; ++t)
      EXPECT_GE(wr.sbf(Time::ms(t)), prm.sbf(Time::ms(t)))
          << "theta " << theta_ms << " t " << t;
  }
}

TEST(RegulatedSupply, SbfIsMonotone) {
  const RegulatedSupply wr{Time::ms(7), Time::ms(3)};
  Time prev = Time::zero();
  for (int t = 0; t < 70; ++t) {
    const Time s = wr.sbf(Time::us(t * 500));
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(RegulatedSupply, HarmonicAlignedNeedsOnlyUtilizationBandwidth) {
  // Theorem 2's interface passes the general regulated test: a harmonic
  // taskset with Π = min period and Θ = Π·U is schedulable.
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(1)},
                              {Time::ms(20), Time::ms(3)},
                              {Time::ms(40), Time::ms(4)}};
  const Time theta = Time::us(3'500);  // 10ms · 0.35
  EXPECT_TRUE(edf_schedulable_on_regulated(ts, {Time::ms(10), theta}));
  // And it is tight: one nanosecond less fails at the hyperperiod.
  EXPECT_FALSE(edf_schedulable_on_regulated(
      ts, {Time::ms(10), theta - Time::ns(1)}));
}

TEST(RegulatedSupply, MinBudgetNeverExceedsPrmMinBudget) {
  const std::vector<std::vector<PTask>> cases = {
      {{Time::ms(10), Time::ms(1)}},
      {{Time::ms(10), Time::ms(2)}, {Time::ms(20), Time::ms(4)}},
      {{Time::ms(15), Time::ms(3)}, {Time::ms(10), Time::ms(1)}},
  };
  for (const auto& ts : cases) {
    const auto wr = min_budget_regulated(ts, Time::ms(10));
    const auto prm = min_budget_edf(ts, Time::ms(10));
    ASSERT_TRUE(wr.has_value());
    ASSERT_TRUE(prm.has_value());
    EXPECT_LE(*wr, *prm);
  }
}

TEST(RegulatedSupply, MotivatingExampleNeedsLessThanPrm) {
  // (p=10, e=1): PRM needs Θ = 5.5; a well-regulated VCPU needs only
  // Θ with sbf(10) = Θ − ... : 10 − (10−Θ) ≥ 1 → Θ ≥ 1... but dbf at
  // 10 requires sbf(10) = Θ ≥ 1, so Θ = 1: fully overhead-free.
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(1)}};
  const auto wr = min_budget_regulated(ts, Time::ms(10));
  ASSERT_TRUE(wr.has_value());
  EXPECT_EQ(*wr, Time::ms(1));
}

TEST(RegulatedSupply, NonHarmonicTasksStillBenefit) {
  // Periods 10 and 15 are not harmonic, so Theorem 2 does not apply, but
  // the regulated supply still beats the PRM abstraction.
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(2)},
                              {Time::ms(15), Time::ms(3)}};
  const auto wr = min_budget_regulated(ts, Time::ms(5));
  const auto prm = min_budget_edf(ts, Time::ms(5));
  ASSERT_TRUE(wr.has_value());
  ASSERT_TRUE(prm.has_value());
  EXPECT_LT(*wr, *prm);
}

TEST(RegulatedSupply, OverloadRejected) {
  const std::vector<PTask> ts{{Time::ms(10), Time::ms(6)},
                              {Time::ms(10), Time::ms(6)}};
  EXPECT_FALSE(min_budget_regulated(ts, Time::ms(10)).has_value());
}

// ------------------------------------------------------------ theorems ----

TEST(Theorem1, FlattenedVcpuMirrorsTask) {
  const auto t = make_task(Time::ms(10), Time::ms(1));
  const auto v = flattened_vcpu(t, 7);
  EXPECT_EQ(v.period, t.period);
  EXPECT_EQ(v.tasks, (std::vector<std::size_t>{7}));
  for (unsigned c = 2; c <= 4; ++c)
    for (unsigned b = 1; b <= 3; ++b)
      EXPECT_EQ(v.budget.at(c, b), t.wcet.at(c, b));
  // Zero abstraction overhead: bandwidth equals utilization everywhere.
  EXPECT_DOUBLE_EQ(v.reference_utilization(), t.reference_utilization());
}

TEST(Theorem1, FlattenWholeTaskset) {
  const Taskset ts{make_task(Time::ms(10), Time::ms(1)),
                   make_task(Time::ms(20), Time::ms(2))};
  const auto vs = flatten(ts);
  ASSERT_EQ(vs.size(), 2u);
  EXPECT_EQ(vs[0].tasks[0], 0u);
  EXPECT_EQ(vs[1].tasks[0], 1u);
}

TEST(Theorem2, RegulatedVcpuBandwidthEqualsUtilization) {
  const Taskset ts{make_task(Time::ms(10), Time::ms(1)),
                   make_task(Time::ms(20), Time::ms(3)),
                   make_task(Time::ms(40), Time::ms(4))};
  const std::vector<std::size_t> idx{0, 1, 2};
  const auto v = regulated_vcpu(ts, idx);
  EXPECT_EQ(v.period, Time::ms(10));  // min period
  // Θ* = Π · (1/10 + 3/20 + 4/40) = 10 · 0.35 = 3.5ms.
  EXPECT_EQ(v.reference_budget(), Time::us(3'500));
  // And the same identity holds at every grid point.
  for (unsigned c = 2; c <= 4; ++c)
    for (unsigned b = 1; b <= 3; ++b) {
      double u = 0;
      for (const auto& t : ts) u += t.utilization(c, b);
      EXPECT_NEAR(v.utilization(c, b), u, 1e-6);
      // Rounded up, never down.
      EXPECT_GE(v.utilization(c, b), u - 1e-12);
    }
}

TEST(Theorem2, SingleTaskReducesToFlattening) {
  const Taskset ts{make_task(Time::ms(10), Time::ms(2))};
  const std::vector<std::size_t> idx{0};
  const auto v = regulated_vcpu(ts, idx);
  EXPECT_EQ(v.period, Time::ms(10));
  EXPECT_EQ(v.reference_budget(), Time::ms(2));
}

TEST(Theorem2, RejectsNonHarmonicTasks) {
  const Taskset ts{make_task(Time::ms(10), Time::ms(1)),
                   make_task(Time::ms(15), Time::ms(1))};
  const std::vector<std::size_t> idx{0, 1};
  EXPECT_THROW(regulated_vcpu(ts, idx), util::Error);
}

TEST(Theorem2, OverheadFreeBeatsExistingCsaOnTheMotivatingExample)
{
  // Existing CSA needs Θ = 5.5 for the (10, 1) task; Theorem 2 needs 1.
  const Taskset ts{make_task(Time::ms(10), Time::ms(1))};
  const std::vector<std::size_t> idx{0};
  const auto v = regulated_vcpu(ts, idx);
  EXPECT_EQ(v.reference_budget(), Time::ms(1));
  const std::vector<PTask> pt{{Time::ms(10), Time::ms(1)}};
  const auto theta = min_budget_edf(pt, Time::ms(10));
  ASSERT_TRUE(theta.has_value());
  EXPECT_EQ(*theta / v.reference_budget(), 5);  // 5.5ms vs 1ms
}

// ------------------------------------------------------ harmonic chains ----

TEST(HarmonicGroups, FullyHarmonicStaysOneGroup) {
  const Taskset ts{make_task(Time::ms(100), Time::ms(1)),
                   make_task(Time::ms(400), Time::ms(1)),
                   make_task(Time::ms(200), Time::ms(1))};
  const std::vector<std::size_t> idx{0, 1, 2};
  const auto groups = harmonic_groups(ts, idx);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

TEST(HarmonicGroups, MixedPeriodsSplitIntoChains) {
  const Taskset ts{make_task(Time::ms(100), Time::ms(1)),   // chain A
                   make_task(Time::ms(150), Time::ms(1)),   // chain B
                   make_task(Time::ms(200), Time::ms(1)),   // chain A
                   make_task(Time::ms(300), Time::ms(1))};  // chain B
  const std::vector<std::size_t> idx{0, 1, 2, 3};
  const auto groups = harmonic_groups(ts, idx);
  ASSERT_EQ(groups.size(), 2u);
  // Every group is internally harmonic and the groups partition the input.
  std::size_t total = 0;
  for (const auto& g : groups) {
    total += g.size();
    for (std::size_t a = 0; a < g.size(); ++a)
      for (std::size_t b = a + 1; b < g.size(); ++b)
        EXPECT_TRUE(util::harmonic_pair(ts[g[a]].period, ts[g[b]].period));
  }
  EXPECT_EQ(total, idx.size());
}

TEST(HarmonicGroups, PairwiseCoprimePeriodsAllSeparate) {
  const Taskset ts{make_task(Time::ms(7), Time::ms(1)),
                   make_task(Time::ms(11), Time::ms(1)),
                   make_task(Time::ms(13), Time::ms(1))};
  const std::vector<std::size_t> idx{0, 1, 2};
  EXPECT_EQ(harmonic_groups(ts, idx).size(), 3u);
}

// ------------------------------------------------------ schedulability ----

std::vector<model::Vcpu> two_vcpus(Time ref1, Time ref2) {
  const Taskset ts{make_task(Time::ms(10), ref1),
                   make_task(Time::ms(10), ref2)};
  return flatten(ts);
}

TEST(CoreSched, UtilizationSumsAcrossVcpus) {
  const auto vs = two_vcpus(Time::ms(3), Time::ms(4));
  EXPECT_DOUBLE_EQ(core_utilization(vs, 4, 3), 0.7);
  EXPECT_TRUE(core_schedulable(vs, 4, 3));
}

TEST(CoreSched, ExactBoundaryIsSchedulable) {
  const auto vs = two_vcpus(Time::ms(5), Time::ms(5));
  EXPECT_TRUE(core_schedulable(vs, 4, 3));   // exactly 1.0
  const auto over = two_vcpus(Time::ms(5), Time::ms(5) + Time::ns(1));
  EXPECT_FALSE(core_schedulable(over, 4, 3));
}

TEST(CoreSched, SubsetSelection) {
  const auto vs = two_vcpus(Time::ms(6), Time::ms(6));
  const std::vector<std::size_t> only_first{0};
  EXPECT_FALSE(core_schedulable(vs, 4, 3));  // 1.2 together
  EXPECT_TRUE(core_schedulable(vs, only_first, 4, 3));
}

TEST(CoreSched, ResourceStarvedAllocationRaisesUtilization) {
  const auto vs = two_vcpus(Time::ms(3), Time::ms(3));
  EXPECT_GT(core_utilization(vs, 2, 1), core_utilization(vs, 4, 3));
}

TEST(Inflation, AddsConstantEverywhere) {
  Taskset ts{make_task(Time::ms(10), Time::ms(1))};
  const Time before_max = ts[0].max_wcet;
  inflate_tasks(ts, Time::us(50));
  EXPECT_EQ(ts[0].wcet.at(4, 3), Time::ms(1) + Time::us(50));
  EXPECT_EQ(ts[0].max_wcet, before_max + Time::us(50));

  auto vs = flatten(ts);
  const Time theta_before = vs[0].budget.at(2, 1);
  inflate_vcpus(vs, Time::us(25));
  EXPECT_EQ(vs[0].budget.at(2, 1), theta_before + Time::us(25));
}

TEST(Inflation, ZeroIsNoOp) {
  Taskset ts{make_task(Time::ms(10), Time::ms(1))};
  const Time before = ts[0].wcet.at(3, 2);
  inflate_tasks(ts, Time::zero());
  EXPECT_EQ(ts[0].wcet.at(3, 2), before);
}

}  // namespace
}  // namespace vc2m::analysis
