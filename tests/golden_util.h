// Shared golden-equivalence machinery: engine digests, the pinned scenario
// grid, and the tests/golden/engine.golden loader.
//
// Used by test_golden.cpp (the engine bit-identity suite) and
// test_explain.cpp (decision recording must leave these digests untouched).
// The scenario grid and digest formats are FROZEN — golden lines are
// positional, so any change here invalidates the captured file.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/solutions.h"
#include "model/platform.h"
#include "util/rng.h"
#include "workload/generator.h"

#ifndef VC2M_GOLDEN_DIR
#error "VC2M_GOLDEN_DIR must point at tests/golden"
#endif

namespace vc2m::golden {

inline const char* const kGoldenFile = VC2M_GOLDEN_DIR "/engine.golden";

// ---------------------------------------------------------------------------
// Digest helpers

inline std::uint64_t fnv1a(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= 0x100000001B3ull;
  }
  return h;
}

/// Hash of everything that defines a VCPU vector: periods, owners, served
/// task lists, and the full budget surface in raw nanoseconds.
inline std::uint64_t vcpu_hash(const std::vector<model::Vcpu>& vcpus) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const auto& v : vcpus) {
    h = fnv1a(h, static_cast<std::uint64_t>(v.period.raw_ns()));
    h = fnv1a(h, static_cast<std::uint64_t>(v.vm));
    for (const std::size_t t : v.tasks) h = fnv1a(h, t);
    const auto& g = v.budget.grid();
    for (unsigned c = g.c_min; c <= g.c_max; ++c)
      for (unsigned b = g.b_min; b <= g.b_max; ++b)
        h = fnv1a(h, static_cast<std::uint64_t>(v.budget.at(c, b).raw_ns()));
  }
  return h;
}

inline std::string mapping_digest(const core::HvAllocResult& m) {
  std::ostringstream os;
  os << "cores=" << m.cores_used << "|cache=";
  for (std::size_t k = 0; k < m.cache.size(); ++k)
    os << (k ? "," : "") << m.cache[k];
  os << "|bw=";
  for (std::size_t k = 0; k < m.bw.size(); ++k)
    os << (k ? "," : "") << m.bw[k];
  os << "|map=";
  for (std::size_t k = 0; k < m.vcpus_on_core.size(); ++k) {
    if (k) os << ";";
    for (std::size_t i = 0; i < m.vcpus_on_core[k].size(); ++i)
      os << (i ? "," : "") << m.vcpus_on_core[k][i];
  }
  return os.str();
}

inline std::string solve_digest(const core::SolveResult& res) {
  std::ostringstream os;
  char hex[24];
  os << "sched=" << (res.schedulable ? 1 : 0) << "|"
     << mapping_digest(res.mapping);
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(vcpu_hash(res.vcpus)));
  os << "|vhash=" << hex;
  return os.str();
}

// ---------------------------------------------------------------------------
// Scenario grid (fixed forever — golden lines are positional)

struct Scenario {
  const char* platform;  // "A" or "C"
  workload::UtilDist dist;
  double util;
  int num_vms;
  std::uint64_t seed;
};

inline const std::vector<Scenario>& scenarios() {
  static const std::vector<Scenario> kScenarios = {
      {"A", workload::UtilDist::kUniform, 0.5, 1, 9001},
      {"A", workload::UtilDist::kUniform, 0.5, 1, 9002},
      {"A", workload::UtilDist::kUniform, 1.0, 1, 9003},
      {"A", workload::UtilDist::kUniform, 1.0, 2, 9004},
      {"A", workload::UtilDist::kUniform, 1.5, 1, 9005},
      {"A", workload::UtilDist::kUniform, 1.5, 2, 9006},
      {"A", workload::UtilDist::kBimodalHeavy, 1.0, 1, 9007},
      {"A", workload::UtilDist::kBimodalHeavy, 1.4, 1, 9008},
      {"C", workload::UtilDist::kUniform, 0.8, 1, 9009},
      {"C", workload::UtilDist::kBimodalLight, 1.2, 2, 9010},
  };
  return kScenarios;
}

inline model::PlatformSpec platform_of(const std::string& name) {
  return name == "A" ? model::PlatformSpec::A() : model::PlatformSpec::C();
}

inline model::Taskset scenario_taskset(const Scenario& sc) {
  workload::GeneratorConfig gen;
  gen.grid = platform_of(sc.platform).grid;
  gen.target_ref_utilization = sc.util;
  gen.dist = sc.dist;
  gen.num_vms = sc.num_vms;
  util::Rng rng(sc.seed);
  return workload::generate_taskset(gen, rng);
}

/// The golden "solve" section, recomputed live: one digest line per
/// (scenario, solution) pair, in the frozen grid order.
inline std::vector<std::string> solve_lines() {
  std::vector<std::string> lines;
  for (std::size_t i = 0; i < scenarios().size(); ++i) {
    const Scenario& sc = scenarios()[i];
    const auto tasks = scenario_taskset(sc);
    const auto platform = platform_of(sc.platform);
    for (std::size_t si = 0; si < core::all_solutions().size(); ++si) {
      util::Rng rng(sc.seed * 1000 + si);
      const auto res =
          core::solve(core::all_solutions()[si], tasks, platform, {}, rng);
      std::ostringstream os;
      os << "solve|" << i << "|" << si << "|" << solve_digest(res);
      lines.push_back(os.str());
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Golden file I/O

struct GoldenFile {
  std::vector<std::string> solve;
  std::vector<std::string> admission;
  std::vector<std::string> exact;
  std::vector<std::string> sweep;
  std::uint64_t seed_dbf_evaluations = 0;
  bool loaded = false;
};

inline GoldenFile load_golden() {
  GoldenFile g;
  std::ifstream in(kGoldenFile);
  if (!in) return g;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("solve|", 0) == 0) g.solve.push_back(line);
    else if (line.rfind("admit|", 0) == 0) g.admission.push_back(line);
    else if (line.rfind("exact|", 0) == 0) g.exact.push_back(line);
    else if (line.rfind("sweep-point|", 0) == 0) g.sweep.push_back(line);
    else if (line.rfind("seed-effort|dbf_evaluations=", 0) == 0)
      g.seed_dbf_evaluations = std::strtoull(
          line.c_str() + std::string("seed-effort|dbf_evaluations=").size(),
          nullptr, 10);
  }
  g.loaded = true;
  return g;
}

inline void expect_lines_equal(const std::vector<std::string>& golden,
                               const std::vector<std::string>& got,
                               const char* section) {
  ASSERT_EQ(golden.size(), got.size()) << "section " << section;
  for (std::size_t i = 0; i < golden.size(); ++i)
    EXPECT_EQ(golden[i], got[i]) << "section " << section << " line " << i;
}

}  // namespace vc2m::golden
