// Cross-module property and stress tests: randomized workloads hammer the
// allocator and simulator, asserting structural invariants rather than
// specific values.
#include <gtest/gtest.h>

#include <set>

#include "analysis/prm.h"
#include "analysis/regulated.h"
#include "analysis/schedulability.h"
#include "core/solutions.h"
#include "model/platform.h"
#include "sim/deploy.h"
#include "sim/simulation.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vc2m {
namespace {

using util::Rng;
using util::Time;

// ------------------------------------------------------- rng forking ----

// The parallel experiment engine pre-forks every stream serially from the
// master seed and hands them to workers that consume them in an arbitrary
// order. That is only sound if a forked stream's output depends solely on
// the fork (its position in the serial fork sequence), never on when or in
// what order the streams are later consumed.
TEST(RngForkOrderPropertyTest, StreamsAreIndependentOfConsumptionOrder) {
  constexpr std::size_t kStreams = 16;
  constexpr std::size_t kDraws = 64;
  for (const std::uint64_t seed : {3ull, 42ull, 0xDEADBEEFull}) {
    // Reference: fork all streams serially, consume them in fork order.
    Rng master(seed);
    std::vector<Rng> streams;
    for (std::size_t s = 0; s < kStreams; ++s) streams.push_back(master.fork());
    std::vector<std::vector<std::uint64_t>> expected(kStreams);
    for (std::size_t s = 0; s < kStreams; ++s)
      for (std::size_t d = 0; d < kDraws; ++d)
        expected[s].push_back(streams[s]());

    // Re-fork identically, then consume the streams in several shuffled
    // orders, interleaved a few draws at a time: every stream must still
    // produce exactly its reference sequence.
    Rng perm_rng(seed ^ 0x5bf0'3635ull);
    for (int round = 0; round < 4; ++round) {
      Rng master2(seed);
      std::vector<Rng> streams2;
      for (std::size_t s = 0; s < kStreams; ++s)
        streams2.push_back(master2.fork());
      std::vector<std::vector<std::uint64_t>> got(kStreams);
      // Interleaving schedule: each stream appears kDraws/4 times, drawing
      // 4 values per visit, with visit order shuffled.
      std::vector<std::size_t> schedule;
      for (std::size_t s = 0; s < kStreams; ++s)
        for (std::size_t v = 0; v < kDraws / 4; ++v) schedule.push_back(s);
      perm_rng.shuffle(schedule);
      for (const std::size_t s : schedule)
        for (int d = 0; d < 4; ++d) got[s].push_back(streams2[s]());
      for (std::size_t s = 0; s < kStreams; ++s) {
        EXPECT_EQ(got[s], expected[s])
            << "seed " << seed << " round " << round << " stream " << s;
      }
    }
  }
}

// ----------------------------------------------------- supply functions ----

class SupplyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SupplyPropertyTest, SbfBoundsAndOrderings) {
  Rng rng(42 + static_cast<std::uint64_t>(GetParam()));
  const Time period = Time::us(rng.uniform_int(500, 50'000));
  const Time budget = Time::ns(rng.uniform_int(1, period.raw_ns()));
  const analysis::Prm prm{period, budget};
  const analysis::RegulatedSupply wr{period, budget};

  Time prev_prm = Time::zero();
  Time prev_wr = Time::zero();
  for (int i = 0; i <= 200; ++i) {
    const Time t = Time::ns(period.raw_ns() * i / 23);
    const Time s_prm = prm.sbf(t);
    const Time s_wr = wr.sbf(t);
    // 0 <= sbf <= t, monotone, and regulated dominates PRM.
    EXPECT_GE(s_prm, Time::zero());
    EXPECT_LE(s_prm, t);
    EXPECT_LE(s_wr, t);
    EXPECT_GE(s_prm, prev_prm);
    EXPECT_GE(s_wr, prev_wr);
    EXPECT_GE(s_wr, s_prm);
    // Long-run rate: sbf(t) >= bandwidth * t - 2(period - budget) * bw.
    EXPECT_GE(static_cast<double>(s_prm.raw_ns()) + 1e-6, prm.lsbf(t));
    prev_prm = s_prm;
    prev_wr = s_wr;
  }
  // Over whole periods the regulated supply is exact.
  EXPECT_EQ(wr.sbf(period * 7), budget * 7);
}

INSTANTIATE_TEST_SUITE_P(Random, SupplyPropertyTest, ::testing::Range(0, 10));

// ------------------------------------------------------ allocator stress ----

class AllocatorStressTest : public ::testing::TestWithParam<int> {};

TEST_P(AllocatorStressTest, InvariantsHoldForRandomWorkloads) {
  const std::uint64_t seed = 7'000 + static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const auto platform =
      GetParam() % 3 == 0 ? model::PlatformSpec::C()
      : GetParam() % 3 == 1 ? model::PlatformSpec::B()
                            : model::PlatformSpec::A();
  workload::GeneratorConfig gen;
  gen.grid = platform.grid;
  gen.target_ref_utilization = rng.uniform(0.3, 2.2);
  gen.dist = static_cast<workload::UtilDist>(rng.index(4));
  gen.num_vms = 1 + static_cast<int>(rng.index(3));
  const auto tasks = workload::generate_taskset(gen, rng);

  for (const auto solution : core::all_solutions()) {
    Rng solve_rng = rng.fork();
    const auto res = core::solve(solution, tasks, platform, {}, solve_rng);
    if (!res.schedulable) continue;

    // Every task appears on exactly one VCPU.
    std::set<std::size_t> seen_tasks;
    for (const auto& v : res.vcpus)
      for (const auto t : v.tasks)
        EXPECT_TRUE(seen_tasks.insert(t).second) << core::to_string(solution);
    EXPECT_EQ(seen_tasks.size(), tasks.size()) << core::to_string(solution);

    // Every VCPU on exactly one core; resource pools respected; every
    // core schedulable under its allocation.
    std::set<std::size_t> seen_vcpus;
    EXPECT_LE(res.mapping.cores_used, platform.cores);
    EXPECT_LE(res.mapping.total_cache(), platform.total_cache());
    EXPECT_LE(res.mapping.total_bw(), platform.total_bw());
    for (unsigned k = 0; k < res.mapping.cores_used; ++k) {
      EXPECT_GE(res.mapping.cache[k], platform.grid.c_min);
      EXPECT_LE(res.mapping.cache[k], platform.grid.c_max);
      EXPECT_GE(res.mapping.bw[k], platform.grid.b_min);
      EXPECT_LE(res.mapping.bw[k], platform.grid.b_max);
      for (const auto vi : res.mapping.vcpus_on_core[k])
        EXPECT_TRUE(seen_vcpus.insert(vi).second);
      EXPECT_TRUE(analysis::core_schedulable(res.vcpus,
                                             res.mapping.vcpus_on_core[k],
                                             res.mapping.cache[k],
                                             res.mapping.bw[k]))
          << core::to_string(solution) << " core " << k;
    }
    EXPECT_EQ(seen_vcpus.size(), res.vcpus.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Random, AllocatorStressTest, ::testing::Range(0, 15));

// ------------------------------------------------------ simulator stress ----

class SimulatorStressTest : public ::testing::TestWithParam<int> {};

TEST_P(SimulatorStressTest, AccountingInvariantsUnderRandomMixes) {
  const std::uint64_t seed = 9'000 + static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);

  sim::SimConfig cfg;
  cfg.num_cores = 1 + static_cast<unsigned>(rng.index(3));
  cfg.cache_partitions = 20;
  cfg.cache_alloc.assign(cfg.num_cores, 0);
  cfg.bw_alloc.assign(cfg.num_cores, 0);
  for (unsigned k = 0; k < cfg.num_cores; ++k) {
    cfg.cache_alloc[k] = 2 + static_cast<unsigned>(rng.index(19));
    cfg.bw_alloc[k] = 1 + static_cast<unsigned>(rng.index(8));
  }
  cfg.bw_regulation = rng.bernoulli(0.7);
  cfg.bus_contention = rng.bernoulli(0.5);
  cfg.vcpu_switch_cost = rng.bernoulli(0.3) ? Time::us(50) : Time::zero();
  cfg.release_sync = rng.bernoulli(0.3);

  const std::int64_t base = rng.uniform_int(4, 12);
  const std::size_t n_vcpus = 1 + rng.index(4);
  for (std::size_t vi = 0; vi < n_vcpus; ++vi) {
    sim::SimVcpuSpec v;
    v.period = Time::ms(base * (std::int64_t{1} << rng.index(3)));
    v.budget = Time::ns(rng.uniform_int(
        v.period.raw_ns() / 10, v.period.raw_ns() / 2));
    v.core = static_cast<std::size_t>(rng.index(cfg.num_cores));
    v.idling_server = rng.bernoulli(0.8);
    cfg.vcpus.push_back(v);

    const std::size_t n_tasks = rng.index(3);  // 0-2 tasks per VCPU
    for (std::size_t t = 0; t < n_tasks; ++t) {
      sim::SimTaskSpec ts;
      ts.period = v.period * (std::int64_t{1} << rng.index(2));
      ts.offset = Time::ms(rng.uniform_int(0, 5));
      ts.cpu_work = Time::us(rng.uniform_int(100, 2'000));
      if (rng.bernoulli(0.5)) {
        ts.mem_work_ref = Time::us(rng.uniform_int(100, 2'000));
        ts.miss_amp = rng.uniform(1.0, 3.0);
        ts.mem_requests_ref = rng.uniform(1'000, 50'000);
      }
      ts.vcpu = cfg.vcpus.size() - 1;
      cfg.tasks.push_back(ts);
    }
  }

  sim::Simulation s(cfg);
  s.run(Time::ms(500));  // must not throw or hang
  const auto st = s.stats();
  EXPECT_GE(st.jobs_released, st.jobs_completed);
  for (const double busy : st.core_busy_fraction) {
    EXPECT_GE(busy, -1e-9);
    EXPECT_LE(busy, 1.0 + 1e-9);
  }
  for (const auto& t : st.per_task) {
    EXPECT_LE(t.deadline_misses, t.released);
    EXPECT_LE(t.completed, t.released);
  }
  if (!cfg.bw_regulation) EXPECT_EQ(st.throttles, 0u);
}

INSTANTIATE_TEST_SUITE_P(Random, SimulatorStressTest,
                         ::testing::Range(0, 20));

// --------------------------------------- analysis vs execution coherence ----

class AnalysisVsExecutionTest : public ::testing::TestWithParam<int> {};

TEST_P(AnalysisVsExecutionTest, CertifiedImpliesNoMisses) {
  const std::uint64_t seed = 11'000 + static_cast<std::uint64_t>(GetParam());
  Rng rng(seed);
  const auto platform = model::PlatformSpec::A();
  workload::GeneratorConfig gen;
  gen.grid = platform.grid;
  gen.target_ref_utilization = rng.uniform(0.5, 1.6);
  const auto tasks = workload::generate_taskset(gen, rng);

  const auto solution =
      core::all_solutions()[GetParam() % core::all_solutions().size()];
  Rng solve_rng = rng.fork();
  const auto res = core::solve(solution, tasks, platform, {}, solve_rng);
  if (!res.schedulable) GTEST_SKIP();

  sim::Simulation s(
      sim::deploy(tasks, res.vcpus, res.mapping, platform, {}));
  s.run(model::hyperperiod(tasks) * 3);
  EXPECT_EQ(s.stats().deadline_misses, 0u)
      << core::to_string(solution) << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Random, AnalysisVsExecutionTest,
                         ::testing::Range(0, 15));

}  // namespace
}  // namespace vc2m
