// Arena bump-allocator suite: alignment, reset/rewind semantics, the
// large-block fallback, and allocation-pattern reuse (the steady-state
// "no heap traffic after warm-up" property the analysis hot path relies
// on). The suite runs under ASan in scripts/check.sh, so the reuse tests
// double as use-after-rewind poison checks: every byte written here is
// within spans the arena currently considers live.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "util/arena.h"
#include "util/error.h"
#include "util/instrument.h"

namespace {

using vc2m::util::AllocCounterScope;
using vc2m::util::Arena;
using vc2m::util::ArenaAllocator;

TEST(Arena, AlignmentHonoredForEveryPowerOfTwo) {
  Arena arena(256);
  // Interleave odd sizes with aligned requests so the bump pointer is
  // frequently misaligned right before an aligned allocation.
  for (std::size_t align = 1; align <= Arena::kMaxAlign; align *= 2) {
    for (int i = 0; i < 16; ++i) {
      arena.allocate(3);
      void* p = arena.allocate(align * 2, align);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align=" << align << " i=" << i;
    }
  }
}

TEST(Arena, TypedArraysAreAlignedAndDisjoint) {
  Arena arena(128);
  const auto a = arena.alloc_array<std::int64_t>(10);
  const auto b = arena.alloc_array<double>(10);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(a.data()) %
                alignof(std::int64_t),
            0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b.data()) % alignof(double), 0u);
  // Fill both fully; overlapping spans would corrupt each other.
  for (std::size_t i = 0; i < 10; ++i) a[i] = static_cast<std::int64_t>(i);
  for (std::size_t i = 0; i < 10; ++i) b[i] = 0.5 * static_cast<double>(i);
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_EQ(a[i], static_cast<std::int64_t>(i));
}

TEST(Arena, ResetKeepsCapacityAndReusesChunks) {
  Arena arena(1024);
  for (int i = 0; i < 8; ++i) arena.allocate(512);
  const std::size_t warm_capacity = arena.capacity();
  EXPECT_GT(warm_capacity, 0u);
  EXPECT_GT(arena.in_use(), 0u);

  arena.reset();
  EXPECT_EQ(arena.in_use(), 0u);
  EXPECT_EQ(arena.capacity(), warm_capacity) << "reset released chunks";

  // The steady-state property: repeating the identical allocation pattern
  // after reset must be served entirely from the warm chunks.
  for (int round = 0; round < 4; ++round) {
    for (int i = 0; i < 8; ++i) {
      auto span = arena.alloc_array<std::byte>(512);
      std::memset(span.data(), round, span.size());
    }
    EXPECT_EQ(arena.capacity(), warm_capacity) << "round " << round;
    arena.reset();
  }
}

TEST(Arena, ScopeRewindsToMarkAndNests) {
  Arena arena(256);
  auto outer = arena.alloc_array<std::int32_t>(8);
  outer[0] = 41;
  const std::size_t at_mark = arena.in_use();
  {
    Arena::Scope mark(arena);
    arena.allocate(1000);  // spills into further chunks
    {
      Arena::Scope inner(arena);
      arena.allocate(2000);
      EXPECT_GT(arena.in_use(), at_mark);
    }
    arena.allocate(64);
  }
  EXPECT_EQ(arena.in_use(), at_mark);
  EXPECT_EQ(outer[0], 41) << "rewind touched memory allocated before the mark";

  // Allocations after the rewind reuse the reclaimed space: repeating the
  // identical (nested) pattern under fresh scopes must be served entirely
  // from the warm chunks.
  const std::size_t warm_capacity = arena.capacity();
  for (int round = 0; round < 4; ++round) {
    Arena::Scope round_mark(arena);
    arena.allocate(1000);
    {
      Arena::Scope inner(arena);
      arena.allocate(2000);
    }
    arena.allocate(64);
    EXPECT_EQ(arena.capacity(), warm_capacity) << "round " << round;
  }
}

TEST(Arena, LargeBlockFallbackServesOversizedRequests) {
  Arena arena(64);
  // Much larger than the chunk size: must succeed with a dedicated chunk of
  // exactly the rounded request, not a multiple of 64.
  const std::size_t big = 64 * 1024 + 13;
  auto span = arena.alloc_array<std::byte>(big);
  ASSERT_EQ(span.size(), big);
  std::memset(span.data(), 0xAB, span.size());  // ASan checks the bounds
  EXPECT_EQ(std::to_integer<int>(span[big - 1]), 0xAB);
  EXPECT_GE(arena.in_use(), big);

  // Small allocations continue to work after the oversized chunk, and a
  // reset brings the oversized chunk back into rotation.
  auto small = arena.alloc_array<std::int64_t>(4);
  small[3] = 7;
  arena.reset();
  auto again = arena.alloc_array<std::byte>(big);
  std::memset(again.data(), 0xCD, again.size());
  EXPECT_EQ(arena.capacity(), arena.capacity());
  EXPECT_EQ(arena.high_water(), arena.high_water());
}

TEST(Arena, ZeroByteAllocationsAreValidAndDistinctFromCrash) {
  Arena arena;
  void* p = arena.allocate(0);
  EXPECT_NE(p, nullptr);
  // Must not advance past the chunk or crash on repetition.
  for (int i = 0; i < 100; ++i) EXPECT_NE(arena.allocate(0), nullptr);
}

TEST(Arena, CountsRoundedBytesDeterministically) {
  AllocCounterScope scope;
  Arena arena(128);
  arena.allocate(10, 8);  // rounds to 16
  arena.allocate(8, 8);   // exact
  EXPECT_EQ(scope.counters().arena_bytes, 24u);

  // The count is a pure function of the requests: repeating the pattern on
  // a warm arena (no new chunks) adds exactly the same number of bytes.
  arena.reset();
  arena.allocate(10, 8);
  arena.allocate(8, 8);
  EXPECT_EQ(scope.counters().arena_bytes, 48u);
}

TEST(Arena, AllocatorAdaptorBacksStdVector) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(arena)};
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_GT(arena.in_use(), 1000 * sizeof(int))
      << "growth reallocations should all have come from the arena";
}

TEST(Arena, RejectsUnsupportedAlignment) {
  Arena arena;
  EXPECT_THROW(arena.allocate(8, Arena::kMaxAlign * 2), vc2m::util::Error);
  EXPECT_THROW(arena.allocate(8, 3), vc2m::util::Error);
}

}  // namespace
