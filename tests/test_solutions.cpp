#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.h"
#include "core/solutions.h"
#include "model/platform.h"
#include "util/error.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vc2m::core {
namespace {

using model::PlatformSpec;
using model::Taskset;
using util::Rng;

Taskset generated(double util, std::uint64_t seed = 1, int vms = 1) {
  workload::GeneratorConfig cfg;
  cfg.grid = PlatformSpec::A().grid;
  cfg.target_ref_utilization = util;
  cfg.num_vms = vms;
  Rng rng(seed);
  return workload::generate_taskset(cfg, rng);
}

TEST(Solutions, NamesMatchThePaperLegend) {
  EXPECT_EQ(to_string(Solution::kHeuristicFlattening),
            "Heuristic (flattening)");
  EXPECT_EQ(to_string(Solution::kBaselineExistingCsa),
            "Baseline (existing CSA)");
  EXPECT_EQ(all_solutions().size(), 5u);
}

class AllSolutionsTest : public ::testing::TestWithParam<Solution> {};

TEST_P(AllSolutionsTest, LightWorkloadIsSchedulableEverywhere) {
  const auto ts = generated(0.25, 2);
  Rng rng(3);
  const auto res = solve(GetParam(), ts, PlatformSpec::A(), {}, rng);
  EXPECT_TRUE(res.schedulable) << to_string(GetParam());
  EXPECT_GE(res.seconds, 0.0);
}

TEST_P(AllSolutionsTest, ObviouslyImpossibleWorkloadFailsEverywhere) {
  const auto ts = generated(4.5, 4);
  Rng rng(5);
  const auto res = solve(GetParam(), ts, PlatformSpec::A(), {}, rng);
  EXPECT_FALSE(res.schedulable) << to_string(GetParam());
}

TEST_P(AllSolutionsTest, SchedulableResultHasConsistentMapping) {
  const auto ts = generated(0.9, 6);
  Rng rng(7);
  const auto res = solve(GetParam(), ts, PlatformSpec::A(), {}, rng);
  if (!res.schedulable) return;
  ASSERT_FALSE(res.vcpus.empty());
  std::size_t placed = 0;
  for (const auto& core : res.mapping.vcpus_on_core) placed += core.size();
  EXPECT_EQ(placed, res.vcpus.size());
}

INSTANTIATE_TEST_SUITE_P(
    FiveSolutions, AllSolutionsTest,
    ::testing::ValuesIn(all_solutions()),
    [](const auto& info) {
      switch (info.param) {
        case Solution::kHeuristicFlattening: return "HeuristicFlattening";
        case Solution::kHeuristicOverheadFree: return "HeuristicOverheadFree";
        case Solution::kHeuristicExistingCsa: return "HeuristicExistingCsa";
        case Solution::kEvenPartitionOverheadFree: return "EvenPartition";
        case Solution::kBaselineExistingCsa: return "Baseline";
      }
      return "Unknown";
    });

TEST(Solutions, Vc2mSchedulesWorkloadsTheBaselineCannot) {
  // The headline claim: at moderate utilization the baseline collapses
  // under abstraction overhead + worst-case WCETs while vC2M succeeds.
  int flattening = 0, baseline = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto ts = generated(1.0, 100 + seed);
    Rng r1(seed), r2(seed);
    flattening +=
        solve(Solution::kHeuristicFlattening, ts, PlatformSpec::A(), {}, r1)
            .schedulable;
    baseline +=
        solve(Solution::kBaselineExistingCsa, ts, PlatformSpec::A(), {}, r2)
            .schedulable;
  }
  EXPECT_GT(flattening, baseline);
  EXPECT_GE(flattening, 6);  // vC2M handles util 1.0 comfortably (Fig. 2a)
}

TEST(Solutions, MultiVmWorkloadsSupported) {
  const auto ts = generated(0.8, 9, /*vms=*/3);
  Rng rng(10);
  const auto res =
      solve(Solution::kHeuristicOverheadFree, ts, PlatformSpec::A(), {}, rng);
  EXPECT_TRUE(res.schedulable);
  for (const auto& v : res.vcpus)
    for (const auto t : v.tasks) EXPECT_EQ(ts[t].vm, v.vm);
}

TEST(Solutions, BaselineBudgetsIgnoreResources) {
  const auto ts = generated(0.4, 11);
  Rng rng(12);
  const auto res =
      solve(Solution::kBaselineExistingCsa, ts, PlatformSpec::A(), {}, rng);
  for (const auto& v : res.vcpus) {
    const auto& g = v.budget.grid();
    EXPECT_EQ(v.budget.at(g.c_min, g.b_min), v.budget.at(g.c_max, g.b_max));
  }
}

// ------------------------------------------------------------ registry ----

TEST(StrategyRegistry, FiveSolutionsAreRegisteredUnderTheirCliKeys) {
  auto& reg = StrategyRegistry::instance();
  for (const auto& key : default_solution_keys()) {
    const Strategy* s = reg.find(key);
    ASSERT_NE(s, nullptr) << key;
    EXPECT_EQ(s->key, key);
    EXPECT_NE(s->vm, nullptr);
    EXPECT_NE(s->hv, nullptr);
    EXPECT_FALSE(s->vm->name().empty());
    EXPECT_FALSE(s->hv->name().empty());
  }
  EXPECT_EQ(default_solution_keys().size(), all_solutions().size());
}

TEST(StrategyRegistry, EnumAndKeyLookupsAgree) {
  auto& reg = StrategyRegistry::instance();
  for (const Solution s : all_solutions())
    EXPECT_EQ(reg.require(solution_key(s)).display, to_string(s));
  EXPECT_EQ(solution_key(Solution::kHeuristicOverheadFree), "ovf");
  EXPECT_EQ(to_string(Solution::kEvenPartitionOverheadFree),
            "Evenly-partition (overhead-free CSA)");
}

TEST(StrategyRegistry, UnknownKeyDiesWithKnownKeyList) {
  auto& reg = StrategyRegistry::instance();
  EXPECT_EQ(reg.find("no-such-strategy"), nullptr);
  try {
    reg.require("no-such-strategy");
    FAIL() << "require() should have thrown";
  } catch (const util::Error& e) {
    EXPECT_NE(std::string(e.what()).find("flat"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("baseline"), std::string::npos);
  }
}

TEST(StrategyRegistry, SharedPoliciesComposeDistinctStrategies) {
  auto& reg = StrategyRegistry::instance();
  // The three heuristic solutions share one HV policy but differ at the
  // VM level; the two comparison solutions share the even-partition HV.
  EXPECT_EQ(reg.require("flat").hv, reg.require("ovf").hv);
  EXPECT_EQ(reg.require("even").hv, reg.require("baseline").hv);
  EXPECT_NE(reg.require("flat").vm, reg.require("ovf").vm);
  // The exact-search yardstick reuses the regulated VM level.
  EXPECT_EQ(reg.require("exact-ovf").vm, reg.require("ovf").vm);
  EXPECT_NE(reg.require("exact-ovf").hv, reg.require("ovf").hv);
}

TEST(StrategyRegistry, OnlyFlatteningSynchronizesReleases) {
  auto& reg = StrategyRegistry::instance();
  EXPECT_TRUE(reg.require("flat").vm->release_sync());
  for (const char* key : {"ovf", "existing", "even", "baseline"})
    EXPECT_FALSE(reg.require(key).vm->release_sync()) << key;
}

TEST(StrategyRegistry, SolveByKeyMatchesSolveByEnum) {
  const auto ts = generated(0.7, 21);
  Rng r1(22), r2(22);
  const auto by_enum =
      solve(Solution::kHeuristicOverheadFree, ts, PlatformSpec::A(), {}, r1);
  const auto by_key = solve("ovf", ts, PlatformSpec::A(), {}, r2);
  EXPECT_EQ(by_enum.schedulable, by_key.schedulable);
  ASSERT_EQ(by_enum.vcpus.size(), by_key.vcpus.size());
  EXPECT_EQ(by_enum.mapping.vcpus_on_core, by_key.mapping.vcpus_on_core);
  EXPECT_EQ(by_enum.mapping.cache, by_key.mapping.cache);
  EXPECT_EQ(by_enum.mapping.bw, by_key.mapping.bw);
}

TEST(StrategyRegistry, RegisteredStrategyWorksInSolveAndExperiment) {
  // A downstream composition: regulated VM level + even-partition HV.
  auto& reg = StrategyRegistry::instance();
  if (!reg.find("test-ovf-even"))
    reg.add({"test-ovf-even", "Test (ovf VMs, even partitions)",
             "test-only composition", reg.require("ovf").vm,
             reg.require("even").hv});
  const auto ts = generated(0.3, 30);
  Rng rng(31);
  const auto res = solve("test-ovf-even", ts, PlatformSpec::A(), {}, rng);
  EXPECT_TRUE(res.schedulable);

  ExperimentConfig cfg;
  cfg.platform = PlatformSpec::A();
  cfg.util_lo = 0.3;
  cfg.util_hi = 0.3;
  cfg.util_step = 0.1;
  cfg.tasksets_per_point = 2;
  cfg.solutions = {"test-ovf-even"};
  cfg.seed = 8;
  const auto result = run_schedulability_experiment(cfg);
  ASSERT_EQ(result.points.size(), 1u);
  std::ostringstream os;
  result.to_table().print(os);
  EXPECT_NE(os.str().find("Test (ovf VMs, even partitions)"),
            std::string::npos);
}

TEST(StrategyRegistry, RejectsDuplicateAndMalformedRegistrations) {
  auto& reg = StrategyRegistry::instance();
  const auto& ovf = reg.require("ovf");
  EXPECT_THROW(reg.add({"ovf", "dup", "", ovf.vm, ovf.hv}), util::Error);
  EXPECT_THROW(reg.add({"", "anon", "", ovf.vm, ovf.hv}), util::Error);
  EXPECT_THROW(reg.add({"half", "no hv", "", ovf.vm, nullptr}), util::Error);
}

// ---------------------------------------------------------- experiment ----

TEST(Experiment, SmallSweepProducesOrderedFractions) {
  ExperimentConfig cfg;
  cfg.platform = PlatformSpec::A();
  cfg.util_lo = 0.4;
  cfg.util_hi = 1.2;
  cfg.util_step = 0.4;
  cfg.tasksets_per_point = 6;
  cfg.seed = 99;
  const auto result = run_schedulability_experiment(cfg);
  ASSERT_EQ(result.points.size(), 3u);
  for (const auto& pt : result.points) {
    ASSERT_EQ(pt.per_solution.size(), 5u);
    for (const auto& sp : pt.per_solution) {
      EXPECT_EQ(sp.total, 6);
      EXPECT_GE(sp.fraction(), 0.0);
      EXPECT_LE(sp.fraction(), 1.0);
    }
  }
  // At 0.4 every solution should do well; flattening at least as well as
  // the baseline at every point.
  for (const auto& pt : result.points)
    EXPECT_GE(pt.per_solution[0].fraction() + 1e-12,
              pt.per_solution[4].fraction());
}

TEST(Experiment, BreakdownUtilizationIsMonotoneInThreshold) {
  ExperimentConfig cfg;
  cfg.platform = PlatformSpec::A();
  cfg.util_lo = 0.3;
  cfg.util_hi = 0.9;
  cfg.util_step = 0.3;
  cfg.tasksets_per_point = 4;
  cfg.solutions = {"flat"};
  cfg.seed = 7;
  const auto result = run_schedulability_experiment(cfg);
  EXPECT_GE(result.breakdown_utilization(0, 0.5),
            result.breakdown_utilization(0, 0.999));
}

TEST(Experiment, TableHasHeaderAndAllRows) {
  ExperimentConfig cfg;
  cfg.platform = PlatformSpec::A();
  cfg.util_lo = 0.5;
  cfg.util_hi = 0.5;
  cfg.util_step = 0.1;
  cfg.tasksets_per_point = 2;
  cfg.solutions = {"ovf", "baseline"};
  cfg.seed = 3;
  const auto result = run_schedulability_experiment(cfg);
  std::ostringstream os;
  result.to_table(/*runtimes=*/true).print(os);
  EXPECT_NE(os.str().find("0.50"), std::string::npos);
  EXPECT_NE(os.str().find("Baseline (existing CSA)"), std::string::npos);
}

TEST(Experiment, ProgressCallbackInvokedPerPoint) {
  ExperimentConfig cfg;
  cfg.platform = PlatformSpec::A();
  cfg.util_lo = 0.2;
  cfg.util_hi = 0.6;
  cfg.util_step = 0.2;
  cfg.tasksets_per_point = 1;
  cfg.solutions = {"flat"};
  cfg.seed = 5;
  int calls = 0;
  run_schedulability_experiment(cfg, [&](int done, int total) {
    ++calls;
    EXPECT_EQ(total, 3);
    EXPECT_EQ(done, calls);
  });
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace vc2m::core
