#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/solutions.h"
#include "model/platform.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace vc2m::core {
namespace {

using model::PlatformSpec;
using model::Taskset;
using util::Rng;

Taskset generated(double util, std::uint64_t seed = 1, int vms = 1) {
  workload::GeneratorConfig cfg;
  cfg.grid = PlatformSpec::A().grid;
  cfg.target_ref_utilization = util;
  cfg.num_vms = vms;
  Rng rng(seed);
  return workload::generate_taskset(cfg, rng);
}

TEST(Solutions, NamesMatchThePaperLegend) {
  EXPECT_EQ(to_string(Solution::kHeuristicFlattening),
            "Heuristic (flattening)");
  EXPECT_EQ(to_string(Solution::kBaselineExistingCsa),
            "Baseline (existing CSA)");
  EXPECT_EQ(all_solutions().size(), 5u);
}

class AllSolutionsTest : public ::testing::TestWithParam<Solution> {};

TEST_P(AllSolutionsTest, LightWorkloadIsSchedulableEverywhere) {
  const auto ts = generated(0.25, 2);
  Rng rng(3);
  const auto res = solve(GetParam(), ts, PlatformSpec::A(), {}, rng);
  EXPECT_TRUE(res.schedulable) << to_string(GetParam());
  EXPECT_GE(res.seconds, 0.0);
}

TEST_P(AllSolutionsTest, ObviouslyImpossibleWorkloadFailsEverywhere) {
  const auto ts = generated(4.5, 4);
  Rng rng(5);
  const auto res = solve(GetParam(), ts, PlatformSpec::A(), {}, rng);
  EXPECT_FALSE(res.schedulable) << to_string(GetParam());
}

TEST_P(AllSolutionsTest, SchedulableResultHasConsistentMapping) {
  const auto ts = generated(0.9, 6);
  Rng rng(7);
  const auto res = solve(GetParam(), ts, PlatformSpec::A(), {}, rng);
  if (!res.schedulable) return;
  ASSERT_FALSE(res.vcpus.empty());
  std::size_t placed = 0;
  for (const auto& core : res.mapping.vcpus_on_core) placed += core.size();
  EXPECT_EQ(placed, res.vcpus.size());
}

INSTANTIATE_TEST_SUITE_P(
    FiveSolutions, AllSolutionsTest,
    ::testing::ValuesIn(all_solutions()),
    [](const auto& info) {
      switch (info.param) {
        case Solution::kHeuristicFlattening: return "HeuristicFlattening";
        case Solution::kHeuristicOverheadFree: return "HeuristicOverheadFree";
        case Solution::kHeuristicExistingCsa: return "HeuristicExistingCsa";
        case Solution::kEvenPartitionOverheadFree: return "EvenPartition";
        case Solution::kBaselineExistingCsa: return "Baseline";
      }
      return "Unknown";
    });

TEST(Solutions, Vc2mSchedulesWorkloadsTheBaselineCannot) {
  // The headline claim: at moderate utilization the baseline collapses
  // under abstraction overhead + worst-case WCETs while vC2M succeeds.
  int flattening = 0, baseline = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto ts = generated(1.0, 100 + seed);
    Rng r1(seed), r2(seed);
    flattening +=
        solve(Solution::kHeuristicFlattening, ts, PlatformSpec::A(), {}, r1)
            .schedulable;
    baseline +=
        solve(Solution::kBaselineExistingCsa, ts, PlatformSpec::A(), {}, r2)
            .schedulable;
  }
  EXPECT_GT(flattening, baseline);
  EXPECT_GE(flattening, 6);  // vC2M handles util 1.0 comfortably (Fig. 2a)
}

TEST(Solutions, MultiVmWorkloadsSupported) {
  const auto ts = generated(0.8, 9, /*vms=*/3);
  Rng rng(10);
  const auto res =
      solve(Solution::kHeuristicOverheadFree, ts, PlatformSpec::A(), {}, rng);
  EXPECT_TRUE(res.schedulable);
  for (const auto& v : res.vcpus)
    for (const auto t : v.tasks) EXPECT_EQ(ts[t].vm, v.vm);
}

TEST(Solutions, BaselineBudgetsIgnoreResources) {
  const auto ts = generated(0.4, 11);
  Rng rng(12);
  const auto res =
      solve(Solution::kBaselineExistingCsa, ts, PlatformSpec::A(), {}, rng);
  for (const auto& v : res.vcpus) {
    const auto& g = v.budget.grid();
    EXPECT_EQ(v.budget.at(g.c_min, g.b_min), v.budget.at(g.c_max, g.b_max));
  }
}

// ---------------------------------------------------------- experiment ----

TEST(Experiment, SmallSweepProducesOrderedFractions) {
  ExperimentConfig cfg;
  cfg.platform = PlatformSpec::A();
  cfg.util_lo = 0.4;
  cfg.util_hi = 1.2;
  cfg.util_step = 0.4;
  cfg.tasksets_per_point = 6;
  cfg.seed = 99;
  const auto result = run_schedulability_experiment(cfg);
  ASSERT_EQ(result.points.size(), 3u);
  for (const auto& pt : result.points) {
    ASSERT_EQ(pt.per_solution.size(), 5u);
    for (const auto& sp : pt.per_solution) {
      EXPECT_EQ(sp.total, 6);
      EXPECT_GE(sp.fraction(), 0.0);
      EXPECT_LE(sp.fraction(), 1.0);
    }
  }
  // At 0.4 every solution should do well; flattening at least as well as
  // the baseline at every point.
  for (const auto& pt : result.points)
    EXPECT_GE(pt.per_solution[0].fraction() + 1e-12,
              pt.per_solution[4].fraction());
}

TEST(Experiment, BreakdownUtilizationIsMonotoneInThreshold) {
  ExperimentConfig cfg;
  cfg.platform = PlatformSpec::A();
  cfg.util_lo = 0.3;
  cfg.util_hi = 0.9;
  cfg.util_step = 0.3;
  cfg.tasksets_per_point = 4;
  cfg.solutions = {Solution::kHeuristicFlattening};
  cfg.seed = 7;
  const auto result = run_schedulability_experiment(cfg);
  EXPECT_GE(result.breakdown_utilization(0, 0.5),
            result.breakdown_utilization(0, 0.999));
}

TEST(Experiment, TableHasHeaderAndAllRows) {
  ExperimentConfig cfg;
  cfg.platform = PlatformSpec::A();
  cfg.util_lo = 0.5;
  cfg.util_hi = 0.5;
  cfg.util_step = 0.1;
  cfg.tasksets_per_point = 2;
  cfg.solutions = {Solution::kHeuristicOverheadFree,
                   Solution::kBaselineExistingCsa};
  cfg.seed = 3;
  const auto result = run_schedulability_experiment(cfg);
  std::ostringstream os;
  result.to_table(/*runtimes=*/true).print(os);
  EXPECT_NE(os.str().find("0.50"), std::string::npos);
  EXPECT_NE(os.str().find("Baseline (existing CSA)"), std::string::npos);
}

TEST(Experiment, ProgressCallbackInvokedPerPoint) {
  ExperimentConfig cfg;
  cfg.platform = PlatformSpec::A();
  cfg.util_lo = 0.2;
  cfg.util_hi = 0.6;
  cfg.util_step = 0.2;
  cfg.tasksets_per_point = 1;
  cfg.solutions = {Solution::kHeuristicFlattening};
  cfg.seed = 5;
  int calls = 0;
  run_schedulability_experiment(cfg, [&](int done, int total) {
    ++calls;
    EXPECT_EQ(total, 3);
    EXPECT_EQ(done, calls);
  });
  EXPECT_EQ(calls, 3);
}

}  // namespace
}  // namespace vc2m::core
