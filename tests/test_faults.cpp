// Fault-injection & enforcement suite: FaultSpec parsing, the four
// enforcement policies (strict/kill/throttle/degrade), each fault class
// end to end, trace-level determinism, and the experiment fault validator.
//
// Suite names matter: scripts/check.sh runs everything matching
// ^FaultValidatorParallel under TSan alongside the parallel-engine suites.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "obs/trace_check.h"
#include "sim/enforcement.h"
#include "sim/faults.h"
#include "sim/simulation.h"
#include "util/error.h"

namespace vc2m {
namespace {

using sim::EnforcementPolicy;
using sim::FaultSpec;
using sim::SimConfig;
using sim::SimTaskSpec;
using sim::SimVcpuSpec;
using util::Time;

// ------------------------------------------------------- spec parsing ----

TEST(FaultSpecParse, AcceptsTheFullKeySet) {
  const auto f = sim::parse_fault_spec(
      "overrun-factor=1.5,overrun-prob=0.25,jitter-ms=2,jitter-prob=0.5,"
      "revoke-interval-ms=10,revoke-window-ms=3,revoke-ways=2,"
      "refill-delay-ms=0.5,refill-prob=0.75,low-crit-frac=0.4,seed=99");
  EXPECT_DOUBLE_EQ(f.overrun_factor, 1.5);
  EXPECT_DOUBLE_EQ(f.overrun_prob, 0.25);
  EXPECT_EQ(f.max_release_jitter, Time::ms(2));
  EXPECT_DOUBLE_EQ(f.jitter_prob, 0.5);
  EXPECT_EQ(f.revoke_interval, Time::ms(10));
  EXPECT_EQ(f.revoke_window, Time::ms(3));
  EXPECT_EQ(f.revoke_ways, 2u);
  EXPECT_EQ(f.max_refill_delay, Time::us(500));
  EXPECT_DOUBLE_EQ(f.refill_delay_prob, 0.75);
  EXPECT_DOUBLE_EQ(f.low_crit_frac, 0.4);
  EXPECT_EQ(f.seed, 99u);
  EXPECT_TRUE(f.any());
}

TEST(FaultSpecParse, DefaultPlanIsInert) {
  EXPECT_FALSE(FaultSpec{}.any());
  // overrun-factor alone (prob defaults to 1) activates the class; a
  // zero probability deactivates it again.
  EXPECT_TRUE(sim::parse_fault_spec("overrun-factor=1.2").any());
  EXPECT_FALSE(
      sim::parse_fault_spec("overrun-factor=1.2,overrun-prob=0").any());
}

TEST(FaultSpecParse, RejectsMalformedSpecs) {
  const auto bad = [](const std::string& s) {
    EXPECT_THROW(sim::parse_fault_spec(s), util::Error) << s;
  };
  bad("overrun-factor");             // missing '='
  bad("=1.2");                       // empty key
  bad("bogus-key=1");                // unknown key
  bad("overrun-factor=abc");         // non-numeric
  bad("overrun-factor=1.2x");        // trailing characters
  bad("overrun-factor=nan");         // non-finite
  bad("overrun-factor=inf");
  bad("overrun-factor=0.5");         // < 1 is not an overrun
  bad("overrun-factor=1000");        // absurd
  bad("overrun-prob=1.5");           // probability out of range
  bad("overrun-prob=-0.1");
  bad("jitter-ms=-1");               // negative time
  bad("revoke-ways=-1");             // negative count
  bad("seed=1.5");                   // non-integer seed
}

// ------------------------------------------------ enforcement policies ----

SimTaskSpec cpu_task(Time period, Time work, std::size_t vcpu = 0) {
  SimTaskSpec t;
  t.period = period;
  t.cpu_work = work;
  t.vcpu = vcpu;
  return t;
}

SimVcpuSpec server(Time period, Time budget, std::size_t core = 0) {
  SimVcpuSpec v;
  v.period = period;
  v.budget = budget;
  v.core = core;
  return v;
}

/// One core, one full-budget VCPU, one task that *always* overruns to
/// twice its modeled 2 ms WCET — the canonical enforcement scenario.
SimConfig overrun_cfg(EnforcementPolicy policy) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(10), Time::ms(10))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2))};
  cfg.faults.overrun_factor = 2.0;
  cfg.faults.overrun_prob = 1.0;
  cfg.faults.seed = 7;
  cfg.enforcement.policy = policy;
  cfg.capture_trace = true;
  return cfg;
}

TEST(Enforcement, StrictLetsOverrunsRunToCompletion) {
  // Under strict the job budget is not enforced: the 4 ms of real work run
  // inside the 10 ms server budget, so jobs complete (late only if > p).
  sim::Simulation s(overrun_cfg(EnforcementPolicy::kStrict));
  s.run(Time::ms(100));
  const auto st = s.stats();
  EXPECT_EQ(st.jobs_completed, 10u);
  EXPECT_EQ(st.jobs_killed, 0u);
  EXPECT_EQ(st.deadline_misses, 0u);  // 4 ms < 10 ms deadline
  EXPECT_GT(st.faults_injected, 0u);  // overruns were still injected
}

TEST(Enforcement, KillAbortsTheJobAtItsBudget) {
  sim::Simulation s(overrun_cfg(EnforcementPolicy::kKill));
  s.run(Time::ms(100));
  const auto st = s.stats();
  // Every job overruns, so every job is killed exactly at its 2 ms
  // allowance — none completes, and a killed job cannot miss.
  EXPECT_EQ(st.jobs_completed, 0u);
  EXPECT_EQ(st.jobs_killed, 10u);
  EXPECT_EQ(st.deadline_misses, 0u);
  EXPECT_EQ(st.per_task[0].killed, 10u);
}

TEST(Enforcement, ThrottleDefersToTheNextReplenishment) {
  sim::Simulation s(overrun_cfg(EnforcementPolicy::kThrottle));
  s.run(Time::ms(100));
  const auto st = s.stats();
  // The job is parked at 2 ms, resumes with a fresh allowance at the next
  // VCPU replenishment (10 ms), and finishes at 12 ms — past its deadline
  // but without starving the rest of the system.
  EXPECT_GT(st.jobs_deferred, 0u);
  EXPECT_GT(st.jobs_completed, 0u);
  EXPECT_GT(st.deadline_misses, 0u);
  EXPECT_EQ(st.jobs_killed, 0u);
}

TEST(Enforcement, DegradeShedsOnlyLowCriticalityTasks) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(10), Time::ms(10))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2)),   // the overrunner
               cpu_task(Time::ms(10), Time::ms(1))};  // the shedding victim
  cfg.tasks[1].criticality = 0;
  cfg.faults.overrun_factor = 3.0;
  cfg.faults.overrun_prob = 1.0;
  cfg.faults.seed = 7;
  cfg.enforcement.policy = EnforcementPolicy::kDegrade;
  cfg.enforcement.degrade_resume_after = Time::ms(25);
  cfg.capture_trace = true;
  sim::Simulation s(cfg);
  s.run(Time::ms(200));
  const auto st = s.stats();
  EXPECT_GT(st.task_suspensions, 0u);
  // The critical task is never shed and keeps releasing every period; the
  // sheddable one skips releases while suspended.
  EXPECT_EQ(st.per_task[0].released, 21u);
  EXPECT_LT(st.per_task[1].released, 21u);
  EXPECT_EQ(st.task_criticality[0], 1);
  EXPECT_EQ(st.task_criticality[1], 0);
}

TEST(Enforcement, PolicyNamesRoundTrip) {
  for (const auto p :
       {EnforcementPolicy::kStrict, EnforcementPolicy::kKill,
        EnforcementPolicy::kThrottle, EnforcementPolicy::kDegrade}) {
    const auto back = sim::enforcement_policy_from_string(sim::to_string(p));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, p);
  }
  EXPECT_FALSE(sim::enforcement_policy_from_string("lenient").has_value());
}

// -------------------------------------------------------- fault classes ----

TEST(Faults, InertPlanLeavesTheTraceUntouched) {
  auto base = overrun_cfg(EnforcementPolicy::kStrict);
  base.faults = FaultSpec{};  // inert
  auto faulty = base;
  faulty.faults.overrun_factor = 2.0;
  faulty.faults.overrun_prob = 0.0;  // class disabled by probability
  ASSERT_FALSE(faulty.faults.any());

  sim::Simulation a(base), b(faulty);
  a.run(Time::ms(100));
  b.run(Time::ms(100));
  const auto ea = a.trace().events();
  const auto eb = b.trace().events();
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].when, eb[i].when) << i;
    EXPECT_EQ(ea[i].kind, eb[i].kind) << i;
  }
}

TEST(Faults, ReleaseJitterDelaysArrivalsOnANominalGrid) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.vcpus = {server(Time::ms(10), Time::ms(10))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2))};
  cfg.faults.max_release_jitter = Time::ms(3);
  cfg.faults.jitter_prob = 1.0;
  cfg.faults.seed = 11;
  cfg.capture_trace = true;
  sim::Simulation s(cfg);
  s.run(Time::ms(100));
  const auto st = s.stats();
  // Jitter delays each arrival but the release *grid* stays nominal, so
  // the task still releases 10 full jobs over 100 ms (the job released at
  // the horizon may be jittered past it).
  EXPECT_GE(st.jobs_released, 10u);
  EXPECT_GT(st.faults_injected, 0u);
  EXPECT_EQ(st.deadline_misses, 0u);  // 2 + 3 ms worst case fits 10 ms
  bool saw_jitter = false;
  for (const auto& ev : s.trace().events())
    if (ev.kind == sim::TraceKind::kFaultReleaseJitter) {
      saw_jitter = true;
      EXPECT_GT(ev.job, 0);  // the payload is the delay in ns
      EXPECT_LT(ev.job, Time::ms(3).raw_ns() + 1);
    }
  EXPECT_TRUE(saw_jitter);
}

TEST(Faults, PartitionRevocationShrinksThenRestores) {
  SimConfig cfg;
  cfg.num_cores = 2;
  cfg.cache_partitions = 8;
  cfg.cache_alloc = {4, 3};  // disjoint: the hw::Cat mirror engages
  cfg.vcpus = {server(Time::ms(10), Time::ms(10), 0),
               server(Time::ms(10), Time::ms(10), 1)};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2), 0),
               cpu_task(Time::ms(10), Time::ms(2), 1)};
  // Give the tasks a memory component so revocation actually changes
  // requirements via the miss curve.
  for (auto& t : cfg.tasks) {
    t.mem_work_ref = Time::ms(1);
    t.mem_requests_ref = 100;
  }
  cfg.faults.revoke_interval = Time::ms(15);
  cfg.faults.revoke_window = Time::ms(5);
  cfg.faults.revoke_ways = 1;
  cfg.faults.seed = 13;
  cfg.capture_trace = true;
  sim::Simulation s(cfg);
  s.run(Time::ms(200));

  std::size_t revokes = 0, restores = 0, cos_programs = 0;
  for (const auto& ev : s.trace().events()) {
    if (ev.kind == sim::TraceKind::kPartitionRevoke) {
      ++revokes;
      EXPECT_EQ(ev.job, 1);  // shrunk to revoke_ways
    }
    if (ev.kind == sim::TraceKind::kPartitionRestore) ++restores;
    if (ev.kind == sim::TraceKind::kCosProgram) ++cos_programs;
  }
  EXPECT_GT(revokes, 0u);
  // Every window closes except possibly the one straddling the horizon.
  EXPECT_GE(restores + 1, revokes);
  EXPECT_LE(restores, revokes);
  EXPECT_GE(cos_programs, revokes + restores);  // each reprograms the CAT

  const auto check = obs::check_trace(
      s.trace().events(), obs::TraceCheckConfig::from_sim(cfg, Time::ms(200)));
  EXPECT_TRUE(check.ok()) << check.summary();
}

TEST(Faults, RefillDelayPerturbsTheRegulatorPeriod) {
  SimConfig cfg;
  cfg.num_cores = 1;
  cfg.bw_regulation = true;
  cfg.bw_alloc = {2};
  cfg.vcpus = {server(Time::ms(10), Time::ms(10))};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2))};
  cfg.tasks[0].mem_work_ref = Time::ms(1);
  cfg.tasks[0].mem_requests_ref = 500;
  cfg.faults.max_refill_delay = Time::us(300);
  cfg.faults.refill_delay_prob = 1.0;
  cfg.faults.seed = 17;
  cfg.capture_trace = true;
  sim::Simulation s(cfg);
  s.run(Time::ms(100));
  const auto st = s.stats();
  EXPECT_GT(st.faults_injected, 0u);
  // Every refill is armed late, so strictly fewer than 100 periods fit.
  EXPECT_LT(st.refills, 100u);
  EXPECT_GT(st.refills, 0u);
  bool saw_delay = false;
  for (const auto& ev : s.trace().events())
    if (ev.kind == sim::TraceKind::kFaultRefillDelay) saw_delay = true;
  EXPECT_TRUE(saw_delay);
}

// --------------------------------------------------------- determinism ----

std::string trace_fingerprint(const sim::Simulation& s) {
  std::ostringstream os;
  for (const auto& ev : s.trace().events())
    os << ev.when.raw_ns() << '|' << static_cast<int>(ev.kind) << '|'
       << ev.core << '|' << ev.vcpu << '|' << ev.task << '|' << ev.job
       << '\n';
  return os.str();
}

SimConfig chaotic_cfg(std::uint64_t fault_seed) {
  SimConfig cfg;
  cfg.num_cores = 2;
  cfg.cache_partitions = 8;
  cfg.cache_alloc = {4, 3};
  cfg.vcpus = {server(Time::ms(10), Time::ms(6), 0),
               server(Time::ms(20), Time::ms(8), 1)};
  cfg.tasks = {cpu_task(Time::ms(10), Time::ms(2), 0),
               cpu_task(Time::ms(20), Time::ms(3), 1),
               cpu_task(Time::ms(40), Time::ms(4), 1)};
  cfg.tasks[1].mem_work_ref = Time::ms(1);
  cfg.tasks[1].mem_requests_ref = 200;
  cfg.faults = sim::parse_fault_spec(
      "overrun-factor=1.5,overrun-prob=0.4,jitter-ms=1,jitter-prob=0.3,"
      "revoke-interval-ms=25,revoke-ways=1,low-crit-frac=0.5");
  cfg.faults.seed = fault_seed;
  cfg.enforcement.policy = EnforcementPolicy::kDegrade;
  cfg.capture_trace = true;
  return cfg;
}

TEST(Faults, SameSeedReproducesABitIdenticalTrace) {
  sim::Simulation a(chaotic_cfg(21)), b(chaotic_cfg(21)), c(chaotic_cfg(22));
  a.run(Time::ms(400));
  b.run(Time::ms(400));
  c.run(Time::ms(400));
  EXPECT_EQ(trace_fingerprint(a), trace_fingerprint(b));
  EXPECT_NE(trace_fingerprint(a), trace_fingerprint(c));
}

TEST(Faults, EveryPolicyYieldsADistinctCheckerCleanTrace) {
  std::vector<std::string> prints;
  for (const auto p :
       {EnforcementPolicy::kStrict, EnforcementPolicy::kKill,
        EnforcementPolicy::kThrottle, EnforcementPolicy::kDegrade}) {
    auto cfg = overrun_cfg(p);
    cfg.tasks.push_back(cpu_task(Time::ms(20), Time::ms(1)));
    cfg.tasks[1].criticality = 0;
    sim::Simulation s(cfg);
    s.run(Time::ms(100));
    const auto check = obs::check_trace(
        s.trace().events(),
        obs::TraceCheckConfig::from_sim(cfg, Time::ms(100)));
    EXPECT_TRUE(check.ok()) << sim::to_string(p) << ": " << check.summary();
    prints.push_back(trace_fingerprint(s));
  }
  for (std::size_t i = 0; i < prints.size(); ++i)
    for (std::size_t j = i + 1; j < prints.size(); ++j)
      EXPECT_NE(prints[i], prints[j]) << "policies " << i << " and " << j;
}

// ------------------------------------------- experiment fault validator ----

core::ExperimentConfig validator_cfg(int jobs) {
  core::ExperimentConfig cfg;
  cfg.util_lo = 0.4;
  cfg.util_hi = 0.6;
  cfg.util_step = 0.1;
  cfg.tasksets_per_point = 3;
  cfg.seed = 5;
  cfg.jobs = jobs;
  cfg.solutions = {"flat", "baseline"};
  sim::EnforcementConfig enf;
  enf.policy = EnforcementPolicy::kDegrade;
  cfg.validate = sim::make_fault_validator(
      cfg.platform,
      sim::parse_fault_spec(
          "overrun-factor=1.1,overrun-prob=0.3,low-crit-frac=0.5"),
      enf, /*hyperperiods=*/1);
  return cfg;
}

TEST(FaultValidatorParallel, ValidatedCountsAreBitIdenticalAcrossJobs) {
  const auto run = [](int jobs) {
    return core::run_schedulability_experiment(validator_cfg(jobs));
  };
  const auto r1 = run(1), r2 = run(2), r8 = run(8);
  ASSERT_EQ(r1.points.size(), r2.points.size());
  ASSERT_EQ(r1.points.size(), r8.points.size());
  bool any_validated = false;
  for (std::size_t pi = 0; pi < r1.points.size(); ++pi) {
    for (std::size_t si = 0; si < r1.points[pi].per_solution.size(); ++si) {
      const auto& a = r1.points[pi].per_solution[si];
      const auto& b = r2.points[pi].per_solution[si];
      const auto& c = r8.points[pi].per_solution[si];
      EXPECT_EQ(a.schedulable, b.schedulable) << pi << "," << si;
      EXPECT_EQ(a.schedulable, c.schedulable) << pi << "," << si;
      EXPECT_EQ(a.validated, b.validated) << pi << "," << si;
      EXPECT_EQ(a.validated, c.validated) << pi << "," << si;
      EXPECT_LE(a.validated, a.schedulable) << pi << "," << si;
      if (a.validated > 0) any_validated = true;
    }
  }
  EXPECT_TRUE(any_validated) << "mild fault plan should pass somewhere";
  // The rendered table (including the +f columns) is bit-identical too.
  std::ostringstream t1, t8;
  r1.to_table().print(t1);
  r8.to_table().print(t8);
  EXPECT_EQ(t1.str(), t8.str());
}

TEST(FaultValidatorParallel, ValidatorFailsHopelessOverruns) {
  // A 3x overrun on every job under kStrict-equivalent kill policy cannot
  // keep critical tasks miss-free: the validator must reject essentially
  // everything it accepts under the mild plan.
  auto cfg = validator_cfg(2);
  sim::EnforcementConfig enf;
  enf.policy = EnforcementPolicy::kKill;
  cfg.validate = sim::make_fault_validator(
      cfg.platform, sim::parse_fault_spec("overrun-factor=3"), enf, 1);
  const auto r = core::run_schedulability_experiment(cfg);
  for (const auto& pt : r.points)
    for (const auto& sp : pt.per_solution) EXPECT_EQ(sp.validated, 0);
}

}  // namespace
}  // namespace vc2m
