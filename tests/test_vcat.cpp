#include <gtest/gtest.h>

#include "hw/cat.h"
#include "hw/msr.h"
#include "hw/vcat.h"
#include "util/error.h"

namespace vc2m::hw {
namespace {

class VCatTest : public ::testing::Test {
 protected:
  MsrFile msr_{4};
  Cat cat_{msr_, /*num_ways=*/20, /*num_cos=*/8, /*min_ways=*/2};
  VCat vcat_{cat_};
};

TEST_F(VCatTest, RegionAssignmentAndLookup) {
  vcat_.assign_region(/*vm=*/1, /*offset=*/0, /*count=*/8);
  vcat_.assign_region(/*vm=*/2, /*offset=*/8, /*count=*/12);
  ASSERT_TRUE(vcat_.region_of(1).has_value());
  EXPECT_EQ(vcat_.region_of(1)->count, 8u);
  EXPECT_EQ(vcat_.region_of(2)->offset, 8u);
  EXPECT_FALSE(vcat_.region_of(3).has_value());
}

TEST_F(VCatTest, OverlappingRegionsRejected) {
  vcat_.assign_region(1, 0, 10);
  EXPECT_THROW(vcat_.assign_region(2, 8, 4), util::Error);
  EXPECT_THROW(vcat_.assign_region(2, 0, 2), util::Error);
  vcat_.assign_region(2, 10, 10);  // adjacent is fine
}

TEST_F(VCatTest, RegionValidation) {
  EXPECT_THROW(vcat_.assign_region(1, 0, 1), util::Error);    // < min_ways
  EXPECT_THROW(vcat_.assign_region(1, 15, 8), util::Error);   // overruns
  vcat_.assign_region(1, 0, 4);
  EXPECT_THROW(vcat_.assign_region(1, 10, 4), util::Error);   // duplicate
}

TEST_F(VCatTest, GuestMaskTranslatedIntoRegion) {
  vcat_.assign_region(1, /*offset=*/8, /*count=*/8);
  vcat_.guest_write_cbm(1, /*vcos=*/0, 0b0001111);  // ways 0-3 of the region
  const auto phys = vcat_.physical_cbm(1, 0);
  ASSERT_TRUE(phys.has_value());
  EXPECT_EQ(*phys, static_cast<std::uint64_t>(0b1111) << 8);
}

TEST_F(VCatTest, GuestMaskEscapeRejected) {
  vcat_.assign_region(1, 8, 8);
  EXPECT_THROW(vcat_.guest_write_cbm(1, 0, 0x1FF), util::Error);  // 9 bits
  EXPECT_THROW(vcat_.guest_write_cbm(1, 0, 0b101), util::Error);  // holes
  EXPECT_THROW(vcat_.guest_write_cbm(1, 0, 0b1), util::Error);    // < min
}

TEST_F(VCatTest, BindCoreUsesBackingPhysicalCos) {
  vcat_.assign_region(1, 0, 8);
  vcat_.guest_write_cbm(1, /*vcos=*/3, 0b111111);
  vcat_.bind_core(1, /*core=*/2, /*vcos=*/3);
  EXPECT_EQ(cat_.effective_mask(2), 0b111111u);
  EXPECT_NE(cat_.cos_of_core(2), 0u);
}

TEST_F(VCatTest, BindUnprogrammedVcosRejected) {
  vcat_.assign_region(1, 0, 8);
  EXPECT_THROW(vcat_.bind_core(1, 0, 5), util::Error);
}

TEST_F(VCatTest, TwoVmsAreIsolated) {
  vcat_.assign_region(1, 0, 10);
  vcat_.assign_region(2, 10, 10);
  vcat_.guest_write_cbm(1, 0, 0b1111111111);  // its whole region
  vcat_.guest_write_cbm(2, 0, 0b1111111111);
  vcat_.bind_core(1, 0, 0);
  vcat_.bind_core(2, 1, 0);
  EXPECT_EQ(cat_.effective_mask(0) & cat_.effective_mask(1), 0u);
}

TEST_F(VCatTest, ResizeRewritesTranslations) {
  vcat_.assign_region(1, 0, 8);
  vcat_.guest_write_cbm(1, 0, 0b1111);
  vcat_.bind_core(1, 0, 0);
  // Dynamic repartitioning: slide the VM's region to ways 12..19.
  vcat_.resize_region(1, 12, 8);
  const auto phys = vcat_.physical_cbm(1, 0);
  ASSERT_TRUE(phys.has_value());
  EXPECT_EQ(*phys, static_cast<std::uint64_t>(0b1111) << 12);
  // The bound core follows automatically (same physical COS).
  EXPECT_EQ(cat_.effective_mask(0), static_cast<std::uint64_t>(0b1111) << 12);
}

TEST_F(VCatTest, ShrinkClipsOversizedVirtualMasks) {
  vcat_.assign_region(1, 0, 10);
  vcat_.guest_write_cbm(1, 0, 0b1111111111);  // all 10 ways
  vcat_.resize_region(1, 0, 4);
  const auto phys = vcat_.physical_cbm(1, 0);
  ASSERT_TRUE(phys.has_value());
  EXPECT_EQ(*phys, 0b1111u);  // clipped to the new region
}

TEST_F(VCatTest, RemoveVmFreesCosAndRebindsCores) {
  vcat_.assign_region(1, 0, 8);
  vcat_.guest_write_cbm(1, 0, 0b11111111);
  vcat_.bind_core(1, 3, 0);
  const unsigned before = vcat_.free_cos();
  vcat_.remove_vm(1);
  EXPECT_EQ(vcat_.free_cos(), before + 1);
  EXPECT_EQ(cat_.cos_of_core(3), 0u);  // back to the hypervisor default
  EXPECT_FALSE(vcat_.region_of(1).has_value());
}

TEST_F(VCatTest, CosExhaustion) {
  vcat_.assign_region(1, 0, 20);
  // 8 COS total, COS 0 reserved: 7 virtual classes fit, the 8th throws.
  for (unsigned vcos = 0; vcos < 7; ++vcos)
    vcat_.guest_write_cbm(1, vcos, 0b11);
  EXPECT_EQ(vcat_.free_cos(), 0u);
  EXPECT_THROW(vcat_.guest_write_cbm(1, 7, 0b11), util::Error);
}

TEST_F(VCatTest, RewritingAVcosReusesItsPhysicalCos) {
  vcat_.assign_region(1, 0, 8);
  vcat_.guest_write_cbm(1, 0, 0b1111);
  const unsigned free_before = vcat_.free_cos();
  vcat_.guest_write_cbm(1, 0, 0b11);  // update in place
  EXPECT_EQ(vcat_.free_cos(), free_before);
  EXPECT_EQ(*vcat_.physical_cbm(1, 0), 0b11u);
}

}  // namespace
}  // namespace vc2m::hw
