// Parallel experiment engine tests: ThreadPool unit + stress coverage, the
// determinism contract of run_schedulability_experiment (bit-identical
// results for any jobs count, including a hand-rolled serial reference),
// and the ExperimentResult precondition guards.
//
// Suite names matter: scripts/check.sh runs everything matching
// ^(ThreadPool|ParallelExperiment|ExperimentResultGuards) under TSan.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/experiment.h"
#include "util/instrument.h"
#include "util/thread_pool.h"

namespace vc2m {
namespace {

using util::ThreadPool;

// ------------------------------------------------------ ThreadPool unit ----

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.workers(), 3u);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i)
    pool.submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitWithZeroTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait();  // nothing submitted — must not block
  int calls = 0;
  pool.parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, SingleWorkerDrainsEverything) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.workers(), 1u);
  // With one worker, tasks run one at a time — the max observed
  // concurrency must be 1 even though the queue is deep.
  std::atomic<int> active{0}, peak{0}, done{0};
  for (int i = 0; i < 50; ++i)
    pool.submit([&] {
      const int now = active.fetch_add(1) + 1;
      int prev = peak.load();
      while (now > prev && !peak.compare_exchange_weak(prev, now)) {
      }
      active.fetch_sub(1);
      done.fetch_add(1);
    });
  pool.wait();
  EXPECT_EQ(done.load(), 50);
  EXPECT_EQ(peak.load(), 1);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 10; ++i)
    pool.submit([&] {
      count.fetch_add(1);
      pool.submit([&] { count.fetch_add(1); });
    });
  pool.wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPoolTest, ExceptionPropagatesToWait) {
  ThreadPool pool(2);
  std::atomic<int> survivors{0};
  for (int i = 0; i < 20; ++i) pool.submit([&] { survivors.fetch_add(1); });
  pool.submit([] { throw std::runtime_error("boom"); });
  for (int i = 0; i < 20; ++i) pool.submit([&] { survivors.fetch_add(1); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  // The throwing task does not cancel its siblings…
  EXPECT_EQ(survivors.load(), 40);
  // …and the pool is reusable after the error is consumed.
  pool.submit([&] { survivors.fetch_add(1); });
  pool.wait();
  EXPECT_EQ(survivors.load(), 41);
}

TEST(ThreadPoolTest, ExceptionPropagatesFromParallelFor) {
  ThreadPool pool(3);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("index 37");
                                 }),
               std::runtime_error);
}

// Results must not depend on which worker ran what or in which order:
// each task writes a pure function of its index into its own slot, and
// the output must match for 1, 2, and 8 workers.
TEST(ThreadPoolTest, TaskOrderingCannotAffectResults) {
  auto run = [](unsigned workers) {
    ThreadPool pool(workers);
    std::vector<std::uint64_t> out(500, 0);
    for (std::size_t i = 0; i < out.size(); ++i)
      pool.submit([&out, i] { out[i] = i * 2654435761u + 17; });
    pool.wait();
    return out;
  };
  const auto ref = run(1);
  EXPECT_EQ(run(2), ref);
  EXPECT_EQ(run(8), ref);
}

// --------------------------------------------------- ThreadPool stress ----

TEST(ThreadPoolStressTest, TenThousandTinyTasks) {
  ThreadPool pool(4);
  constexpr std::size_t kTasks = 10'000;
  std::vector<std::atomic<int>> hits(kTasks);
  for (auto& h : hits) h.store(0);
  for (std::size_t i = 0; i < kTasks; ++i)
    pool.submit([&hits, i] { hits[i].fetch_add(1); });
  pool.wait();
  for (std::size_t i = 0; i < kTasks; ++i)
    ASSERT_EQ(hits[i].load(), 1) << "task " << i;
}

TEST(ThreadPoolStressTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 10'000;
  for (const std::size_t grain : {std::size_t{0}, std::size_t{1},
                                  std::size_t{7}, std::size_t{4096}}) {
    std::vector<std::atomic<int>> hits(kN);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(
        kN, [&hits](std::size_t i) { hits[i].fetch_add(1); }, grain);
    std::size_t total = 0;
    for (std::size_t i = 0; i < kN; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " grain " << grain;
      total += static_cast<std::size_t>(hits[i].load());
    }
    EXPECT_EQ(total, kN);
  }
}

// ------------------------------------- experiment determinism regression ----

core::ExperimentConfig small_sweep(std::uint64_t seed, int jobs) {
  core::ExperimentConfig cfg;
  cfg.platform = model::PlatformSpec::A();
  cfg.util_lo = 0.4;
  cfg.util_hi = 1.0;
  cfg.util_step = 0.3;
  cfg.tasksets_per_point = 4;
  cfg.seed = seed;
  cfg.jobs = jobs;
  // Skip the slow existing-CSA heuristic; keep one representative of every
  // other analysis family so the determinism check spans them.
  cfg.solutions = {"flat", "ovf", "even", "baseline"};
  return cfg;
}

struct SweepOutput {
  core::ExperimentResult result;
  util::AllocCounters totals;
};

SweepOutput run_sweep(std::uint64_t seed, int jobs) {
  util::AllocCounterScope scope;
  SweepOutput out;
  out.result = core::run_schedulability_experiment(small_sweep(seed, jobs));
  out.totals = scope.counters();
  return out;
}

// The deterministic portion of two results must match bitwise; wall-clock
// fields (seconds) are the only legitimately run-dependent outputs.
void expect_identical(const SweepOutput& a, const SweepOutput& b,
                      const std::string& label) {
  ASSERT_EQ(a.result.points.size(), b.result.points.size()) << label;
  for (std::size_t pi = 0; pi < a.result.points.size(); ++pi) {
    const auto& pa = a.result.points[pi];
    const auto& pb = b.result.points[pi];
    EXPECT_EQ(pa.target_util, pb.target_util) << label;
    ASSERT_EQ(pa.per_solution.size(), pb.per_solution.size()) << label;
    for (std::size_t si = 0; si < pa.per_solution.size(); ++si) {
      EXPECT_EQ(pa.per_solution[si].schedulable,
                pb.per_solution[si].schedulable)
          << label << " point " << pi << " solution " << si;
      EXPECT_EQ(pa.per_solution[si].total, pb.per_solution[si].total)
          << label;
    }
  }
  // The rendered fraction table (what the benches print) is bit-identical.
  std::ostringstream ta, tb;
  a.result.to_table().print(ta);
  b.result.to_table().print(tb);
  EXPECT_EQ(ta.str(), tb.str()) << label;
  // Aggregated allocator effort matches exactly, including the
  // deterministically ordered floating-point kmeans shift sum.
  EXPECT_EQ(a.totals.kmeans_runs, b.totals.kmeans_runs) << label;
  EXPECT_EQ(a.totals.kmeans_iterations, b.totals.kmeans_iterations) << label;
  EXPECT_EQ(a.totals.kmeans_final_shift, b.totals.kmeans_final_shift)
      << label;
  EXPECT_EQ(a.totals.admission_tests, b.totals.admission_tests) << label;
  EXPECT_EQ(a.totals.admission_passed, b.totals.admission_passed) << label;
  EXPECT_EQ(a.totals.dbf_evaluations, b.totals.dbf_evaluations) << label;
  EXPECT_EQ(a.totals.candidate_packings, b.totals.candidate_packings)
      << label;
  EXPECT_EQ(a.totals.partition_grants, b.totals.partition_grants) << label;
  EXPECT_EQ(a.totals.vcpu_migrations, b.totals.vcpu_migrations) << label;
}

TEST(ParallelExperimentTest, ResultsAreBitIdenticalAcrossJobCounts) {
  for (const std::uint64_t seed : {1ull, 42ull, 20260806ull}) {
    const auto r1 = run_sweep(seed, 1);
    const auto r2 = run_sweep(seed, 2);
    const auto r8 = run_sweep(seed, 8);
    const std::string label = "seed " + std::to_string(seed);
    expect_identical(r1, r2, label + " jobs 1 vs 2");
    expect_identical(r1, r8, label + " jobs 1 vs 8");
  }
}

// Anchor against the pre-parallel implementation: re-derive the sweep with
// the exact serial loop the runner used before the thread pool existed
// (one master RNG, forked per taskset and per solve in order) and require
// identical schedulable counts.
TEST(ParallelExperimentTest, MatchesHandRolledSerialReference) {
  const auto cfg = small_sweep(/*seed=*/42, /*jobs=*/4);
  const auto parallel = core::run_schedulability_experiment(cfg);

  const int n_points = 3;  // 0.4, 0.7, 1.0
  ASSERT_EQ(parallel.points.size(), static_cast<std::size_t>(n_points));
  util::Rng master(cfg.seed);
  for (int pi = 0; pi < n_points; ++pi) {
    const double target = cfg.util_lo + cfg.util_step * pi;
    EXPECT_DOUBLE_EQ(parallel.points[pi].target_util, target);
    std::vector<int> schedulable(cfg.solutions.size(), 0);
    for (int rep = 0; rep < cfg.tasksets_per_point; ++rep) {
      workload::GeneratorConfig gen;
      gen.grid = cfg.platform.grid;
      gen.target_ref_utilization = target;
      gen.dist = cfg.dist;
      gen.num_vms = cfg.num_vms;
      util::Rng gen_rng = master.fork();
      const auto taskset = workload::generate_taskset(gen, gen_rng);
      for (std::size_t si = 0; si < cfg.solutions.size(); ++si) {
        util::Rng solve_rng = master.fork();
        const auto res = core::solve(cfg.solutions[si], taskset,
                                     cfg.platform, cfg.solve, solve_rng);
        schedulable[si] += res.schedulable ? 1 : 0;
      }
    }
    for (std::size_t si = 0; si < cfg.solutions.size(); ++si)
      EXPECT_EQ(parallel.points[pi].per_solution[si].schedulable,
                schedulable[si])
          << "point " << pi << " solution " << si;
  }
}

TEST(ParallelExperimentTest, ProgressIsMonotoneUnderParallelCompletion) {
  auto cfg = small_sweep(/*seed=*/7, /*jobs=*/8);
  cfg.solutions = {"flat"};
  std::mutex mu;
  int last = 0, calls = 0;
  core::run_schedulability_experiment(cfg, [&](int done, int total) {
    std::lock_guard<std::mutex> lk(mu);
    EXPECT_EQ(total, 3);
    EXPECT_EQ(done, last + 1);  // strictly increasing by one per point
    last = done;
    ++calls;
  });
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(last, 3);
}

// ------------------------------------------- ExperimentResult guards ----

TEST(ExperimentResultGuardsTest, BreakdownUtilizationRejectsEmptyPoints) {
  core::ExperimentResult empty;
  EXPECT_THROW(empty.breakdown_utilization(0), util::Error);
}

TEST(ExperimentResultGuardsTest, BreakdownUtilizationRejectsBadIndex) {
  core::ExperimentResult r;
  r.cfg.solutions = {"flat"};
  core::UtilizationPoint pt;
  pt.target_util = 0.5;
  pt.per_solution.assign(1, {});
  r.points.push_back(pt);
  EXPECT_NO_THROW(r.breakdown_utilization(0));
  EXPECT_THROW(r.breakdown_utilization(3), util::Error);
}

TEST(ExperimentResultGuardsTest, ToTableRejectsEmptyPoints) {
  core::ExperimentResult empty;
  EXPECT_THROW(empty.to_table(), util::Error);
}

TEST(ExperimentResultGuardsTest, ToTableRejectsMismatchedPerSolution) {
  core::ExperimentResult r;
  r.cfg.solutions = {"flat", "baseline"};
  core::UtilizationPoint pt;
  pt.target_util = 0.5;
  pt.per_solution.assign(1, {});  // config names two solutions
  r.points.push_back(pt);
  EXPECT_THROW(r.to_table(), util::Error);
  r.points.back().per_solution.assign(2, {});
  EXPECT_NO_THROW(r.to_table());
}

}  // namespace
}  // namespace vc2m
