file(REMOVE_RECURSE
  "libvc2m_model.a"
)
