file(REMOVE_RECURSE
  "CMakeFiles/vc2m_model.dir/task.cpp.o"
  "CMakeFiles/vc2m_model.dir/task.cpp.o.d"
  "libvc2m_model.a"
  "libvc2m_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc2m_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
