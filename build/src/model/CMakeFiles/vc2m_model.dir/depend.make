# Empty dependencies file for vc2m_model.
# This may be replaced when dependencies are built.
