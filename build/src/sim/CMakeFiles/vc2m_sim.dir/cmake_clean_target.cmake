file(REMOVE_RECURSE
  "libvc2m_sim.a"
)
