# Empty dependencies file for vc2m_sim.
# This may be replaced when dependencies are built.
