
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/bw_regulator.cpp" "src/sim/CMakeFiles/vc2m_sim.dir/bw_regulator.cpp.o" "gcc" "src/sim/CMakeFiles/vc2m_sim.dir/bw_regulator.cpp.o.d"
  "/root/repo/src/sim/deploy.cpp" "src/sim/CMakeFiles/vc2m_sim.dir/deploy.cpp.o" "gcc" "src/sim/CMakeFiles/vc2m_sim.dir/deploy.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/sim/CMakeFiles/vc2m_sim.dir/event_queue.cpp.o" "gcc" "src/sim/CMakeFiles/vc2m_sim.dir/event_queue.cpp.o.d"
  "/root/repo/src/sim/guest.cpp" "src/sim/CMakeFiles/vc2m_sim.dir/guest.cpp.o" "gcc" "src/sim/CMakeFiles/vc2m_sim.dir/guest.cpp.o.d"
  "/root/repo/src/sim/hypervisor.cpp" "src/sim/CMakeFiles/vc2m_sim.dir/hypervisor.cpp.o" "gcc" "src/sim/CMakeFiles/vc2m_sim.dir/hypervisor.cpp.o.d"
  "/root/repo/src/sim/profiling.cpp" "src/sim/CMakeFiles/vc2m_sim.dir/profiling.cpp.o" "gcc" "src/sim/CMakeFiles/vc2m_sim.dir/profiling.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/sim/CMakeFiles/vc2m_sim.dir/simulation.cpp.o" "gcc" "src/sim/CMakeFiles/vc2m_sim.dir/simulation.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/vc2m_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/vc2m_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/vc2m_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vc2m_model.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/vc2m_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vc2m_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/vc2m_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
