file(REMOVE_RECURSE
  "CMakeFiles/vc2m_sim.dir/bw_regulator.cpp.o"
  "CMakeFiles/vc2m_sim.dir/bw_regulator.cpp.o.d"
  "CMakeFiles/vc2m_sim.dir/deploy.cpp.o"
  "CMakeFiles/vc2m_sim.dir/deploy.cpp.o.d"
  "CMakeFiles/vc2m_sim.dir/event_queue.cpp.o"
  "CMakeFiles/vc2m_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/vc2m_sim.dir/guest.cpp.o"
  "CMakeFiles/vc2m_sim.dir/guest.cpp.o.d"
  "CMakeFiles/vc2m_sim.dir/hypervisor.cpp.o"
  "CMakeFiles/vc2m_sim.dir/hypervisor.cpp.o.d"
  "CMakeFiles/vc2m_sim.dir/profiling.cpp.o"
  "CMakeFiles/vc2m_sim.dir/profiling.cpp.o.d"
  "CMakeFiles/vc2m_sim.dir/simulation.cpp.o"
  "CMakeFiles/vc2m_sim.dir/simulation.cpp.o.d"
  "CMakeFiles/vc2m_sim.dir/trace.cpp.o"
  "CMakeFiles/vc2m_sim.dir/trace.cpp.o.d"
  "libvc2m_sim.a"
  "libvc2m_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc2m_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
