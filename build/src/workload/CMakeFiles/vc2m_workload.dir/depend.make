# Empty dependencies file for vc2m_workload.
# This may be replaced when dependencies are built.
