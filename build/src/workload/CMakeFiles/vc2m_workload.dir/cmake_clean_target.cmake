file(REMOVE_RECURSE
  "libvc2m_workload.a"
)
