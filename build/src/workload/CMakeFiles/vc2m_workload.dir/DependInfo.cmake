
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/generator.cpp" "src/workload/CMakeFiles/vc2m_workload.dir/generator.cpp.o" "gcc" "src/workload/CMakeFiles/vc2m_workload.dir/generator.cpp.o.d"
  "/root/repo/src/workload/parsec.cpp" "src/workload/CMakeFiles/vc2m_workload.dir/parsec.cpp.o" "gcc" "src/workload/CMakeFiles/vc2m_workload.dir/parsec.cpp.o.d"
  "/root/repo/src/workload/profile_io.cpp" "src/workload/CMakeFiles/vc2m_workload.dir/profile_io.cpp.o" "gcc" "src/workload/CMakeFiles/vc2m_workload.dir/profile_io.cpp.o.d"
  "/root/repo/src/workload/taskset_io.cpp" "src/workload/CMakeFiles/vc2m_workload.dir/taskset_io.cpp.o" "gcc" "src/workload/CMakeFiles/vc2m_workload.dir/taskset_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/vc2m_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
