file(REMOVE_RECURSE
  "CMakeFiles/vc2m_workload.dir/generator.cpp.o"
  "CMakeFiles/vc2m_workload.dir/generator.cpp.o.d"
  "CMakeFiles/vc2m_workload.dir/parsec.cpp.o"
  "CMakeFiles/vc2m_workload.dir/parsec.cpp.o.d"
  "CMakeFiles/vc2m_workload.dir/profile_io.cpp.o"
  "CMakeFiles/vc2m_workload.dir/profile_io.cpp.o.d"
  "CMakeFiles/vc2m_workload.dir/taskset_io.cpp.o"
  "CMakeFiles/vc2m_workload.dir/taskset_io.cpp.o.d"
  "libvc2m_workload.a"
  "libvc2m_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc2m_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
