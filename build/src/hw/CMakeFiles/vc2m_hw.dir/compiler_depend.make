# Empty compiler generated dependencies file for vc2m_hw.
# This may be replaced when dependencies are built.
