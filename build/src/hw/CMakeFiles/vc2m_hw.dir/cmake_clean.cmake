file(REMOVE_RECURSE
  "CMakeFiles/vc2m_hw.dir/cat.cpp.o"
  "CMakeFiles/vc2m_hw.dir/cat.cpp.o.d"
  "CMakeFiles/vc2m_hw.dir/vcat.cpp.o"
  "CMakeFiles/vc2m_hw.dir/vcat.cpp.o.d"
  "libvc2m_hw.a"
  "libvc2m_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc2m_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
