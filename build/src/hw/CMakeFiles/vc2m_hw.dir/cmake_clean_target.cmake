file(REMOVE_RECURSE
  "libvc2m_hw.a"
)
