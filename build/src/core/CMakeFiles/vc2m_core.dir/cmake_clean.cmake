file(REMOVE_RECURSE
  "CMakeFiles/vc2m_core.dir/admission.cpp.o"
  "CMakeFiles/vc2m_core.dir/admission.cpp.o.d"
  "CMakeFiles/vc2m_core.dir/exact.cpp.o"
  "CMakeFiles/vc2m_core.dir/exact.cpp.o.d"
  "CMakeFiles/vc2m_core.dir/experiment.cpp.o"
  "CMakeFiles/vc2m_core.dir/experiment.cpp.o.d"
  "CMakeFiles/vc2m_core.dir/hv_alloc.cpp.o"
  "CMakeFiles/vc2m_core.dir/hv_alloc.cpp.o.d"
  "CMakeFiles/vc2m_core.dir/kmeans.cpp.o"
  "CMakeFiles/vc2m_core.dir/kmeans.cpp.o.d"
  "CMakeFiles/vc2m_core.dir/solutions.cpp.o"
  "CMakeFiles/vc2m_core.dir/solutions.cpp.o.d"
  "CMakeFiles/vc2m_core.dir/vm_alloc.cpp.o"
  "CMakeFiles/vc2m_core.dir/vm_alloc.cpp.o.d"
  "libvc2m_core.a"
  "libvc2m_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc2m_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
