# Empty compiler generated dependencies file for vc2m_core.
# This may be replaced when dependencies are built.
