
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/admission.cpp" "src/core/CMakeFiles/vc2m_core.dir/admission.cpp.o" "gcc" "src/core/CMakeFiles/vc2m_core.dir/admission.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/core/CMakeFiles/vc2m_core.dir/exact.cpp.o" "gcc" "src/core/CMakeFiles/vc2m_core.dir/exact.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/vc2m_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/vc2m_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/hv_alloc.cpp" "src/core/CMakeFiles/vc2m_core.dir/hv_alloc.cpp.o" "gcc" "src/core/CMakeFiles/vc2m_core.dir/hv_alloc.cpp.o.d"
  "/root/repo/src/core/kmeans.cpp" "src/core/CMakeFiles/vc2m_core.dir/kmeans.cpp.o" "gcc" "src/core/CMakeFiles/vc2m_core.dir/kmeans.cpp.o.d"
  "/root/repo/src/core/solutions.cpp" "src/core/CMakeFiles/vc2m_core.dir/solutions.cpp.o" "gcc" "src/core/CMakeFiles/vc2m_core.dir/solutions.cpp.o.d"
  "/root/repo/src/core/vm_alloc.cpp" "src/core/CMakeFiles/vc2m_core.dir/vm_alloc.cpp.o" "gcc" "src/core/CMakeFiles/vc2m_core.dir/vm_alloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/vc2m_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vc2m_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/vc2m_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
