file(REMOVE_RECURSE
  "libvc2m_core.a"
)
