
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/dbf.cpp" "src/analysis/CMakeFiles/vc2m_analysis.dir/dbf.cpp.o" "gcc" "src/analysis/CMakeFiles/vc2m_analysis.dir/dbf.cpp.o.d"
  "/root/repo/src/analysis/prm.cpp" "src/analysis/CMakeFiles/vc2m_analysis.dir/prm.cpp.o" "gcc" "src/analysis/CMakeFiles/vc2m_analysis.dir/prm.cpp.o.d"
  "/root/repo/src/analysis/regulated.cpp" "src/analysis/CMakeFiles/vc2m_analysis.dir/regulated.cpp.o" "gcc" "src/analysis/CMakeFiles/vc2m_analysis.dir/regulated.cpp.o.d"
  "/root/repo/src/analysis/schedulability.cpp" "src/analysis/CMakeFiles/vc2m_analysis.dir/schedulability.cpp.o" "gcc" "src/analysis/CMakeFiles/vc2m_analysis.dir/schedulability.cpp.o.d"
  "/root/repo/src/analysis/theorems.cpp" "src/analysis/CMakeFiles/vc2m_analysis.dir/theorems.cpp.o" "gcc" "src/analysis/CMakeFiles/vc2m_analysis.dir/theorems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/vc2m_model.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
