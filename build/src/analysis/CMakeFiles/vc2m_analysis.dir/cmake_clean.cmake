file(REMOVE_RECURSE
  "CMakeFiles/vc2m_analysis.dir/dbf.cpp.o"
  "CMakeFiles/vc2m_analysis.dir/dbf.cpp.o.d"
  "CMakeFiles/vc2m_analysis.dir/prm.cpp.o"
  "CMakeFiles/vc2m_analysis.dir/prm.cpp.o.d"
  "CMakeFiles/vc2m_analysis.dir/regulated.cpp.o"
  "CMakeFiles/vc2m_analysis.dir/regulated.cpp.o.d"
  "CMakeFiles/vc2m_analysis.dir/schedulability.cpp.o"
  "CMakeFiles/vc2m_analysis.dir/schedulability.cpp.o.d"
  "CMakeFiles/vc2m_analysis.dir/theorems.cpp.o"
  "CMakeFiles/vc2m_analysis.dir/theorems.cpp.o.d"
  "libvc2m_analysis.a"
  "libvc2m_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc2m_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
