file(REMOVE_RECURSE
  "libvc2m_analysis.a"
)
