# Empty dependencies file for vc2m_analysis.
# This may be replaced when dependencies are built.
