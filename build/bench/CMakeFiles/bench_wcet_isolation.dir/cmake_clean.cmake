file(REMOVE_RECURSE
  "CMakeFiles/bench_wcet_isolation.dir/bench_wcet_isolation.cpp.o"
  "CMakeFiles/bench_wcet_isolation.dir/bench_wcet_isolation.cpp.o.d"
  "bench_wcet_isolation"
  "bench_wcet_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wcet_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
