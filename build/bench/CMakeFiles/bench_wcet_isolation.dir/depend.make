# Empty dependencies file for bench_wcet_isolation.
# This may be replaced when dependencies are built.
