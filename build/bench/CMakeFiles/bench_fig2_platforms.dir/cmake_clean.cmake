file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_platforms.dir/bench_fig2_platforms.cpp.o"
  "CMakeFiles/bench_fig2_platforms.dir/bench_fig2_platforms.cpp.o.d"
  "bench_fig2_platforms"
  "bench_fig2_platforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_platforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
