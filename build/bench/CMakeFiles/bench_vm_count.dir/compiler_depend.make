# Empty compiler generated dependencies file for bench_vm_count.
# This may be replaced when dependencies are built.
