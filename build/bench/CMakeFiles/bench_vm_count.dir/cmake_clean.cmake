file(REMOVE_RECURSE
  "CMakeFiles/bench_vm_count.dir/bench_vm_count.cpp.o"
  "CMakeFiles/bench_vm_count.dir/bench_vm_count.cpp.o.d"
  "bench_vm_count"
  "bench_vm_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_vm_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
