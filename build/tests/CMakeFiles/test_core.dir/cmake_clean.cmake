file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/test_admission.cpp.o"
  "CMakeFiles/test_core.dir/test_admission.cpp.o.d"
  "CMakeFiles/test_core.dir/test_core.cpp.o"
  "CMakeFiles/test_core.dir/test_core.cpp.o.d"
  "CMakeFiles/test_core.dir/test_exact.cpp.o"
  "CMakeFiles/test_core.dir/test_exact.cpp.o.d"
  "CMakeFiles/test_core.dir/test_solutions.cpp.o"
  "CMakeFiles/test_core.dir/test_solutions.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
