file(REMOVE_RECURSE
  "CMakeFiles/abstraction_overhead.dir/abstraction_overhead.cpp.o"
  "CMakeFiles/abstraction_overhead.dir/abstraction_overhead.cpp.o.d"
  "abstraction_overhead"
  "abstraction_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstraction_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
