# Empty dependencies file for abstraction_overhead.
# This may be replaced when dependencies are built.
