# Empty dependencies file for online_admission.
# This may be replaced when dependencies are built.
