# Empty dependencies file for bw_regulation_demo.
# This may be replaced when dependencies are built.
