file(REMOVE_RECURSE
  "CMakeFiles/bw_regulation_demo.dir/bw_regulation_demo.cpp.o"
  "CMakeFiles/bw_regulation_demo.dir/bw_regulation_demo.cpp.o.d"
  "bw_regulation_demo"
  "bw_regulation_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bw_regulation_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
