file(REMOVE_RECURSE
  "CMakeFiles/wcet_profiling.dir/wcet_profiling.cpp.o"
  "CMakeFiles/wcet_profiling.dir/wcet_profiling.cpp.o.d"
  "wcet_profiling"
  "wcet_profiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_profiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
