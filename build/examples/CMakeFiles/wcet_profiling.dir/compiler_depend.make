# Empty compiler generated dependencies file for wcet_profiling.
# This may be replaced when dependencies are built.
