# Empty dependencies file for automotive_consolidation.
# This may be replaced when dependencies are built.
