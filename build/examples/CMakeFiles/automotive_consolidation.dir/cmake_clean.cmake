file(REMOVE_RECURSE
  "CMakeFiles/automotive_consolidation.dir/automotive_consolidation.cpp.o"
  "CMakeFiles/automotive_consolidation.dir/automotive_consolidation.cpp.o.d"
  "automotive_consolidation"
  "automotive_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automotive_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
