file(REMOVE_RECURSE
  "CMakeFiles/vc2m.dir/vc2m_cli.cpp.o"
  "CMakeFiles/vc2m.dir/vc2m_cli.cpp.o.d"
  "vc2m"
  "vc2m.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vc2m.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
