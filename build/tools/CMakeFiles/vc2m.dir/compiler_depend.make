# Empty compiler generated dependencies file for vc2m.
# This may be replaced when dependencies are built.
