#!/usr/bin/env python3
"""Schema check for the scenario corpus and its run artifacts.

Validates from the outside (plain stdlib JSON / struct) what the C++
strict readers enforce from the inside, so a loader bug cannot silently
relax a format:

    scripts/scenarios_validate.py scenarios/                # corpus files
    scripts/scenarios_validate.py --report run.json         # vc2m-scenario-report/1
    scripts/scenarios_validate.py --serve-report out.json   # vc2m-serve-report/1
    scripts/scenarios_validate.py --timeline t.bin          # vc2m-metrics-timeline/1

Exits non-zero with a per-file message on the first violation.
"""

import argparse
import json
import pathlib
import struct
import sys

SCENARIO_SCHEMA = "vc2m-scenario/1"
REPORT_SCHEMA = "vc2m-scenario-report/1"
SERVE_SCHEMA = "vc2m-serve-report/1"
TIMELINE_SCHEMA = "vc2m-metrics-timeline/1"

PLATFORMS = {"A", "B", "C"}
# Domain caps mirrored from src/scenario/scenario.h (kMaxVms,
# kMaxHyperperiods): the C++ loader bound-checks before narrowing to int.
MAX_VMS = 1024
MAX_HYPERPERIODS = 1000000
POLICIES = {"strict", "kill", "throttle", "degrade"}
DISTS = {"uniform", "light", "medium", "heavy"}
CONSTRAINTS = {
    "no_feasible_budget", "task_overflows_vcpu", "vcpu_exceeds_core",
    "utilization_exceeds_cores", "core_over_utilized", "cache_pool_exhausted",
    "bw_pool_exhausted", "no_beneficial_grant", "core_limit",
    "no_feasible_partition",
}


class Bad(Exception):
    pass


def need(cond, msg):
    if not cond:
        raise Bad(msg)


def check_keys(obj, what, required, optional):
    need(isinstance(obj, dict), f"{what} must be an object")
    for key in required:
        need(key in obj, f"{what} is missing required key '{key}'")
    allowed = set(required) | set(optional)
    for key in obj:
        need(key in allowed, f"{what} has unknown key '{key}'")


def is_index(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def check_scenario(doc):
    check_keys(doc, "scenario",
               required=["schema", "name", "workload", "expect"],
               optional=["description", "platform", "solution", "seed",
                         "faults", "policy", "simulate"])
    need(doc["schema"] == SCENARIO_SCHEMA, f"bad schema {doc['schema']!r}")
    name = doc["name"]
    need(isinstance(name, str) and name and
         all(c.islower() or c.isdigit() or c == "-" for c in name),
         f"name {name!r} must match [a-z0-9-]+")
    need(doc.get("platform", "A") in PLATFORMS, "bad platform")
    need(doc.get("policy", "strict") in POLICIES, "bad policy")
    need(is_index(doc.get("seed", 0)), "seed must be a non-negative integer")

    wl = doc["workload"]
    if "file" in wl:
        check_keys(wl, "workload", required=["file"], optional=[])
        need(isinstance(wl["file"], str) and wl["file"], "empty workload file")
    else:
        check_keys(wl, "workload", required=["util"],
                   optional=["dist", "vms"])
        need(isinstance(wl["util"], (int, float)) and wl["util"] > 0,
             "workload util must be positive")
        need(wl.get("dist", "uniform") in DISTS, "bad workload dist")
        vms = wl.get("vms", 1)
        need(is_index(vms) and 1 <= vms <= MAX_VMS,
             f"workload vms must be an integer in 1..{MAX_VMS}")

    if "simulate" in doc:
        check_keys(doc["simulate"], "simulate", required=[],
                   optional=["hyperperiods"])
        hp = doc["simulate"].get("hyperperiods", 3)
        need(is_index(hp) and 1 <= hp <= MAX_HYPERPERIODS,
             f"simulate hyperperiods must be an integer in "
             f"1..{MAX_HYPERPERIODS}")

    e = doc["expect"]
    check_keys(e, "expect", required=["verdict"],
               optional=["digest", "trace_clean", "min_faults_injected",
                         "max_deadline_misses", "rejection_constraints"])
    need(e["verdict"] in ("schedulable", "unschedulable"), "bad verdict")
    schedulable = e["verdict"] == "schedulable"
    if "digest" in e:
        need(isinstance(e["digest"], str) and
             e["digest"].startswith("sched="), "digest must pin a solve")
    if "rejection_constraints" in e:
        need(not schedulable,
             "rejection_constraints require an unschedulable verdict")
        for c in e["rejection_constraints"]:
            need(c in CONSTRAINTS, f"unknown rejection constraint {c!r}")
    runtime = [k for k in ("trace_clean", "min_faults_injected",
                           "max_deadline_misses") if k in e]
    need(not runtime or "simulate" in doc,
         f"runtime expectations {runtime} need a simulate block")
    need("simulate" not in doc or schedulable,
         "simulate requires a schedulable expectation")
    need("min_faults_injected" not in e or doc.get("faults"),
         "min_faults_injected requires a faults plan")
    return name


METRIC_KEYS = [
    "jobs_released", "jobs_completed", "deadline_misses", "faults_injected",
    "jobs_killed", "jobs_deferred", "trace_events", "trace_violations",
]


def check_report(doc):
    check_keys(doc, "report",
               required=["schema", "git_rev", "corpus", "shard", "total",
                         "passed", "failed", "scenarios"],
               optional=[])
    need(doc["schema"] == REPORT_SCHEMA, f"bad schema {doc['schema']!r}")
    shard = doc["shard"]
    check_keys(shard, "shard", required=["index", "count"], optional=[])
    need(is_index(shard["index"]) and shard["count"] >= 1 and
         shard["index"] < shard["count"], "bad shard fields")
    records = doc["scenarios"]
    need(doc["total"] == len(records), "total != len(scenarios)")
    passed = sum(1 for r in records if r["passed"])
    need(doc["passed"] == passed, "passed count mismatch")
    need(doc["failed"] == len(records) - passed, "failed count mismatch")
    names = [r["name"] for r in records]
    need(names == sorted(names), "records not sorted by name")
    need(len(set(names)) == len(names), "duplicate records")
    for r in records:
        what = f"record {r.get('name', '?')!r}"
        check_keys(r, what,
                   required=["name", "file", "scenario_hash", "verdict",
                             "digest", "passed", "failures",
                             "rejection_constraints", "simulated"],
                   optional=["metrics"])
        h = r["scenario_hash"]
        need(isinstance(h, str) and len(h) == 16 and
             all(c in "0123456789abcdef" for c in h),
             f"{what}: scenario_hash must be 16 lowercase hex chars")
        need(r["verdict"] in ("schedulable", "unschedulable"),
             f"{what}: bad verdict")
        need(r["digest"].startswith("sched="), f"{what}: bad digest")
        if r["simulated"]:
            check_keys(r["metrics"], f"{what} metrics",
                       required=METRIC_KEYS, optional=[])
            for k in METRIC_KEYS:
                need(is_index(r["metrics"][k]), f"{what}: bad metric {k}")
        else:
            need("metrics" not in r, f"{what}: metrics without simulate")


SHED_POLICIES = {"reject-newest", "reject-largest", "criticality"}

SERVE_TOTAL_KEYS = [
    "requests", "arrivals", "admitted", "rejected", "probe_rejected",
    "removed", "resized", "resize_rejected", "not_present", "deferred",
    "retries", "shed", "timed_out", "downgrades", "commits", "snapshots",
]

SUMMARY_KEYS = ["count", "mean", "min", "max", "p50", "p90", "p95", "p99"]

LATENCY_CLASSES = ["admitted", "rejected", "deferred", "shed"]


def check_serve_report(doc):
    check_keys(doc, "serve report",
               required=["schema", "git_rev", "trace", "platform", "seed",
                         "config", "totals", "queue", "decisions",
                         "latency_us", "state"],
               optional=["interrupted"])
    need(doc["schema"] == SERVE_SCHEMA, f"bad schema {doc['schema']!r}")
    need(doc["platform"] in PLATFORMS, "bad platform")
    need(is_index(doc["seed"]), "seed must be a non-negative integer")
    need(isinstance(doc["trace"], str) and doc["trace"], "empty trace spec")

    cfg = doc["config"]
    check_keys(cfg, "config",
               required=["deadline_us", "shed_policy", "queue_cap",
                         "max_retries", "backoff_us", "snapshot_every"],
               optional=[])
    need(cfg["shed_policy"] in SHED_POLICIES,
         f"unknown shed policy {cfg['shed_policy']!r}")
    for k in ("deadline_us", "queue_cap", "max_retries", "backoff_us",
              "snapshot_every"):
        need(is_index(cfg[k]), f"config.{k} must be a non-negative integer")
    need(cfg["queue_cap"] >= 1, "config.queue_cap must be >= 1")

    t = doc["totals"]
    check_keys(t, "totals", required=SERVE_TOTAL_KEYS, optional=[])
    for k in SERVE_TOTAL_KEYS:
        need(is_index(t[k]), f"totals.{k} must be a non-negative integer")
    need(t["arrivals"] <= t["requests"], "arrivals exceed the trace length")

    q = doc["queue"]
    check_keys(q, "queue", required=["max_depth", "backpressure"],
               optional=[])
    need(is_index(q["max_depth"]) and is_index(q["backpressure"]),
         "queue fields must be non-negative integers")
    need(q["max_depth"] <= cfg["queue_cap"],
         "queue max_depth exceeds the configured cap")

    d = doc["decisions"]
    check_keys(d, "decisions", required=["events", "dropped"], optional=[])
    need(is_index(d["events"]) and is_index(d["dropped"]),
         "decisions fields must be non-negative integers")

    lat = doc["latency_us"]
    check_keys(lat, "latency_us", required=LATENCY_CLASSES, optional=[])
    for cls in LATENCY_CLASSES:
        s = lat[cls]
        check_keys(s, f"latency_us.{cls}", required=SUMMARY_KEYS, optional=[])
        need(is_index(s["count"]), f"latency_us.{cls}.count must be an integer")
        for k in SUMMARY_KEYS[1:]:
            need(isinstance(s[k], (int, float)) and
                 not isinstance(s[k], bool),
                 f"latency_us.{cls}.{k} must be a number")

    st = doc["state"]
    check_keys(st, "state",
               required=["vms", "vcpus", "cores_used", "digest"], optional=[])
    for k in ("vms", "vcpus", "cores_used"):
        need(is_index(st[k]), f"state.{k} must be a non-negative integer")
    need(isinstance(st["digest"], str) and st["digest"].startswith("sched="),
         "state.digest must pin a solve")

    interrupted = "interrupted" in doc
    if interrupted:
        need(doc["interrupted"] is True,
             "'interrupted' may only be present as true")

    # The same invariant the C++ strict reader enforces: every enqueued
    # attempt (arrival or retry) ends in exactly one terminal bucket or is
    # still deferred — unless the run was interrupted mid-stream.
    terminal = sum(t[k] for k in ("admitted", "rejected", "probe_rejected",
                                  "removed", "resized", "resize_rejected",
                                  "not_present", "shed", "timed_out"))
    need(interrupted or terminal + t["deferred"] == t["arrivals"] + t["retries"],
         "outcome totals do not cover the enqueued attempts")


# --- vc2m-metrics-timeline/1 (binary, journal framing) ----------------------
#
# Framing mirrored from src/service/journal.cpp: each frame is
# [u32 payload-len LE][u64 FNV-1a(payload) LE][payload]. Frame 0 is the
# header "vc2m-metrics-timeline/1|config=<hex16>|every=<N>"; every later
# frame is one pipe-separated metrics sample (src/service/telemetry.cpp).

SAMPLE_KEYS = [
    "sample", "served", "vt_ns", "queue", "retry", "est", "arrivals",
    "admitted", "rejected", "probe_rejected", "deferred", "timed_out",
    "shed", "downgrades", "backpressure", "commits", "dbf", "budget", "adm",
    "lat_admitted", "lat_rejected", "lat_deferred", "lat_shed",
]
# Monotone between consecutive samples (cumulative counters).
SAMPLE_CUMULATIVE = ["served", "arrivals", "admitted", "rejected",
                     "probe_rejected", "deferred", "timed_out", "shed",
                     "downgrades", "backpressure", "commits", "dbf",
                     "budget", "adm"]
SAMPLE_SIGNED = {"vt_ns", "est"}


def fnv1a(data):
    h = 0xCBF29CE484222325
    for b in data:
        h = ((h ^ b) * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


def timeline_frames(data):
    frames, offset = [], 0
    while offset < len(data):
        need(offset + 12 <= len(data),
             f"torn frame header at byte {offset}")
        (length,) = struct.unpack_from("<I", data, offset)
        (checksum,) = struct.unpack_from("<Q", data, offset + 4)
        need(offset + 12 + length <= len(data),
             f"torn frame payload at byte {offset}")
        payload = data[offset + 12:offset + 12 + length]
        need(fnv1a(payload) == checksum,
             f"frame checksum mismatch at byte {offset}")
        frames.append(payload.decode("utf-8", errors="strict"))
        offset += 12 + length
    return frames


def parse_hist(text, what):
    parts = text.split(" ")
    need(len(parts) >= 6, f"{what}: truncated histogram")
    count, nonpositive = (int(parts[0]), int(parts[1]))
    need(count >= 0 and nonpositive >= 0, f"{what}: negative counts")
    for bits in parts[2:5]:
        need(len(bits) == 16 and all(c in "0123456789abcdef" for c in bits),
             f"{what}: doubles must be 16 hex digits, got {bits!r}")
    npairs = int(parts[5])
    need(npairs == len(parts) - 6, f"{what}: bucket pair count mismatch")
    bucketed = 0
    for pair in parts[6:]:
        idx, _, cnt = pair.partition(":")
        need(idx.isdigit() and cnt.isdigit(), f"{what}: bad bucket {pair!r}")
        bucketed += int(cnt)
    need(bucketed + nonpositive == count,
         f"{what}: bucket counts do not sum to the sample count")
    return count


def parse_sample(payload, what):
    parts = payload.split("|")
    need(len(parts) == len(SAMPLE_KEYS),
         f"{what}: expected {len(SAMPLE_KEYS)} fields, got {len(parts)}")
    sample = {}
    for key, part in zip(SAMPLE_KEYS, parts):
        need(part.startswith(key + "="), f"{what}: field is not '{key}='")
        value = part[len(key) + 1:]
        if key.startswith("lat_"):
            sample[key] = parse_hist(value, f"{what}: {key}")
        elif key in SAMPLE_SIGNED:
            need(value.lstrip("-").isdigit(), f"{what}: bad {key} {value!r}")
            sample[key] = int(value)
        else:
            need(value.isdigit(), f"{what}: bad {key} {value!r}")
            sample[key] = int(value)
    return sample


def check_timeline(data):
    frames = timeline_frames(data)
    need(frames, "empty timeline (no header frame)")
    header = frames[0].split("|")
    need(len(header) == 3 and header[0] == TIMELINE_SCHEMA,
         f"bad timeline header {frames[0]!r}")
    need(header[1].startswith("config=") and len(header[1]) == 23 and
         all(c in "0123456789abcdef" for c in header[1][7:]),
         "header config digest must be 16 lowercase hex chars")
    need(header[2].startswith("every=") and header[2][6:].isdigit() and
         int(header[2][6:]) >= 1, "header cadence must be a positive integer")
    every = int(header[2][6:])

    prev = None
    for i, payload in enumerate(frames[1:]):
        s = parse_sample(payload, f"sample {i}")
        need(s["sample"] == i, f"sample {i}: index {s['sample']} out of order")
        need(s["served"] == (i + 1) * every,
             f"sample {i}: served {s['served']} breaks the cadence")
        lat_total = sum(s[k] for k in SAMPLE_KEYS if k.startswith("lat_"))
        need(lat_total <= s["served"],
             f"sample {i}: latency counts exceed the decisions")
        if prev is not None:
            for k in SAMPLE_CUMULATIVE:
                need(s[k] >= prev[k],
                     f"sample {i}: cumulative {k} moved backwards")
            need(s["vt_ns"] >= prev["vt_ns"],
                 f"sample {i}: virtual time moved backwards")
        prev = s
    return len(frames) - 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("path", help="scenario file/directory, or an artifact")
    ap.add_argument("--report", action="store_true",
                    help="validate a vc2m-scenario-report/1 instead")
    ap.add_argument("--serve-report", action="store_true",
                    help="validate a vc2m-serve-report/1 instead")
    ap.add_argument("--timeline", action="store_true",
                    help="validate a binary vc2m-metrics-timeline/1 instead")
    args = ap.parse_args()

    path = pathlib.Path(args.path)
    if args.timeline:
        files = [path]
    else:
        files = sorted(path.glob("*.json")) if path.is_dir() else [path]
    if not files:
        sys.exit(f"{path}: no scenario files")

    if sum((args.report, args.serve_report, args.timeline)) > 1:
        sys.exit("--report, --serve-report, and --timeline are mutually "
                 "exclusive")

    names = set()
    samples = 0
    for f in files:
        try:
            if args.timeline:
                samples += check_timeline(f.read_bytes())
                continue
            doc = json.loads(f.read_text())
            if args.serve_report:
                check_serve_report(doc)
            elif args.report:
                check_report(doc)
            else:
                name = check_scenario(doc)
                if name in names:
                    raise Bad(f"duplicate scenario name {name!r}")
                names.add(name)
        except (Bad, json.JSONDecodeError, KeyError, TypeError,
                ValueError) as err:
            sys.exit(f"{f}: {err}")
    if args.timeline:
        print(f"{len(files)} timeline(s) schema-valid ({samples} sample(s))")
        return
    kind = ("serve report(s)" if args.serve_report
            else "report(s)" if args.report else "scenario(s)")
    print(f"{len(files)} {kind} schema-valid")


if __name__ == "__main__":
    main()
