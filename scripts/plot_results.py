#!/usr/bin/env python3
"""Plot the bench CSV outputs as paper-style figures.

Usage:
    python3 scripts/plot_results.py [bench_results_dir] [output_dir]

Reads the CSV series written by bench_fig2_platforms,
bench_fig3_distributions, and bench_fig4_runtime (default directory
./bench_results) and writes PNGs mirroring the paper's Figures 2-4.
Requires matplotlib; degrades to a clear error message without it.
"""

import csv
import os
import sys


FIG_SERIES = {
    "fig2a_platform_A.csv": "Figure 2(a) — Platform A (4 cores, 20 partitions)",
    "fig2b_platform_B.csv": "Figure 2(b) — Platform B (6 cores, 20 partitions)",
    "fig2c_platform_C.csv": "Figure 2(c) — Platform C (4 cores, 12 partitions)",
    "fig3a_bimodal_light.csv": "Figure 3(a) — bimodal light",
    "fig3b_bimodal_medium.csv": "Figure 3(b) — bimodal medium",
    "fig3c_bimodal_heavy.csv": "Figure 3(c) — bimodal heavy",
}

STYLES = [
    ("tab:red", "+"),      # Heuristic (flattening)
    ("tab:orange", "o"),   # Heuristic (overhead-free CSA)
    ("tab:blue", "s"),     # Heuristic (existing CSA)
    ("tab:green", "^"),    # Evenly-partition (overhead-free CSA)
    ("tab:purple", "v"),   # Baseline (existing CSA)
]


def read_csv(path):
    with open(path, newline="") as f:
        rows = list(csv.reader(f))
    header = rows[0]
    data = [[float(x) for x in row] for row in rows[1:]]
    return header, data


def plot_schedulability(plt, path, title, out_path):
    header, data = read_csv(path)
    xs = [row[0] for row in data]
    fig, ax = plt.subplots(figsize=(5.2, 3.4))
    for col in range(1, len(header)):
        color, marker = STYLES[(col - 1) % len(STYLES)]
        ax.plot(xs, [row[col] for row in data], label=header[col],
                color=color, marker=marker, markersize=3, linewidth=1.2)
    ax.set_xlabel("Taskset reference utilization")
    ax.set_ylabel("Fraction of schedulable tasksets")
    ax.set_ylim(-0.02, 1.05)
    ax.set_title(title, fontsize=9)
    ax.legend(fontsize=6, loc="lower left")
    ax.grid(alpha=0.3)
    fig.tight_layout()
    fig.savefig(out_path, dpi=160)
    plt.close(fig)
    print(f"wrote {out_path}")


def plot_runtime(plt, path, out_path):
    header, data = read_csv(path)
    xs = [row[0] for row in data]
    fig, ax = plt.subplots(figsize=(5.2, 3.4))
    for col in range(1, len(header)):
        color, marker = STYLES[(col - 1) % len(STYLES)]
        ax.plot(xs, [row[col] for row in data], label=header[col],
                color=color, marker=marker, markersize=3, linewidth=1.2)
    ax.set_xlabel("Taskset reference utilization")
    ax.set_ylabel("Average running time (s)")
    ax.set_yscale("log")
    ax.set_title("Figure 4 — analysis running time", fontsize=9)
    ax.legend(fontsize=6, loc="upper left")
    ax.grid(alpha=0.3, which="both")
    fig.tight_layout()
    fig.savefig(out_path, dpi=160)
    plt.close(fig)
    print(f"wrote {out_path}")


def main():
    src = sys.argv[1] if len(sys.argv) > 1 else "bench_results"
    dst = sys.argv[2] if len(sys.argv) > 2 else src
    try:
        import matplotlib
        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    os.makedirs(dst, exist_ok=True)
    plotted = 0
    for name, title in FIG_SERIES.items():
        path = os.path.join(src, name)
        if os.path.exists(path):
            plot_schedulability(plt, path, title,
                                os.path.join(dst, name.replace(".csv", ".png")))
            plotted += 1
    runtime = os.path.join(src, "fig4_running_time.csv")
    if os.path.exists(runtime):
        plot_runtime(plt, runtime, os.path.join(dst, "fig4_running_time.png"))
        plotted += 1
    if plotted == 0:
        sys.exit(f"no CSV series found in {src}/ — run the benches first")


if __name__ == "__main__":
    main()
