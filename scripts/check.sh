#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
#   scripts/check.sh            # ASan + UBSan (full suite) + TSan (parallel tests)
#   scripts/check.sh address    # just one pass
#   scripts/check.sh thread     # just the TSan pass
#
# Each sanitizer gets its own build tree (build-asan/, build-ubsan/,
# build-tsan/) so the regular build/ stays untouched. address and
# undefined build and run everything; thread builds only the parallel test
# binary and runs the thread-pool/experiment suites (the rest of the test
# suite is single-threaded, and TSan's ~10x slowdown buys nothing there).
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
[ $# -eq 0 ] && sanitizers=(address undefined thread)

for san in "${sanitizers[@]}"; do
  case "$san" in
    address)   dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread)    dir=build-tsan ;;
    *)         dir="build-$san" ;;
  esac
  build_args=()
  ctest_args=(--output-on-failure -j "$(nproc)")
  if [ "$san" = thread ]; then
    build_args=(--target test_parallel)
    ctest_args+=(-R '^(ThreadPool|ParallelExperiment|ExperimentResultGuards)')
  fi
  echo "=== ${san}: configure (${dir}/) ==="
  cmake -B "$dir" -S . -DVC2M_SANITIZE="$san" >/dev/null
  echo "=== ${san}: build ==="
  cmake --build "$dir" -j "$(nproc)" ${build_args[@]+"${build_args[@]}"}
  echo "=== ${san}: ctest ==="
  (cd "$dir" && ctest ${ctest_args[@]+"${ctest_args[@]}"})
done

echo "All sanitizer runs passed."
