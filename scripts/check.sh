#!/usr/bin/env bash
# Build and run the full test suite under ASan and UBSan.
#
#   scripts/check.sh            # both sanitizers
#   scripts/check.sh address    # just one
#
# Each sanitizer gets its own build tree (build-asan/, build-ubsan/) so the
# regular build/ stays untouched. Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("${@:-address undefined}")
[ $# -eq 0 ] && sanitizers=(address undefined)

for san in "${sanitizers[@]}"; do
  case "$san" in
    address)   dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    *)         dir="build-$san" ;;
  esac
  echo "=== ${san}: configure (${dir}/) ==="
  cmake -B "$dir" -S . -DVC2M_SANITIZE="$san" >/dev/null
  echo "=== ${san}: build ==="
  cmake --build "$dir" -j "$(nproc)"
  echo "=== ${san}: ctest ==="
  (cd "$dir" && ctest --output-on-failure -j "$(nproc)")
done

echo "All sanitizer runs passed."
