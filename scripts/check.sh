#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
#   scripts/check.sh            # ASan + UBSan (full suite) + TSan (parallel
#                               # tests) + plain-build perf gate
#   scripts/check.sh address    # just one pass
#   scripts/check.sh thread     # just the TSan pass
#   scripts/check.sh perf       # just the Fig-4 perfdiff gate
#
# Each sanitizer gets its own build tree (build-asan/, build-ubsan/,
# build-tsan/) so the regular build/ stays untouched. address and
# undefined build and run everything; thread builds only the parallel test
# binaries and runs the thread-pool/experiment/fault-validator/scenario-
# matrix suites plus the admission-service suite (the rest of the test
# suite is single-threaded, and TSan's ~10x slowdown buys nothing there).
# The scenario-matrix suite matters for TSan specifically: it drives
# run_matrix with checkpointing at --jobs 2+, where worker-thread slot
# writes and the checkpoint snapshot must stay serialized; the service
# and telemetry suites ride along because `vc2m serve` shares the
# signal-flag / cancellation plumbing with the matrix runner and the
# stats-signal latch is read from the decision loop. The address pass also runs
# the serve smoke: crash-kill the service at every injected crash point
# and require --recover to reproduce the uninterrupted report byte for
# byte, fuzz torn/corrupted journals (recovery must warn, never crash),
# schema-validate the vc2m-serve-report/1 artifact, and sweep the strict
# numeric-flag matrix. The address pass also runs the telemetry smoke:
# telemetry must not perturb the report or the journal, the metrics
# timeline must be schema-valid, bit-identical across --inner-jobs and
# across crash + --recover, `vc2m timeline --diff` must pass a
# self-compare, SIGUSR1 must render a stats snapshot mid-run, and a
# corrupted-timeline fuzz loop must exit cleanly, never crash. The address pass also runs the scenario smoke: the curated
# corpus under scenarios/ (all four enforcement policies under fault plans,
# the infeasible-by-constraint pins, the stress scenarios) must pass through
# `vc2m scenario run`, a 2-way-sharded run merged back together must be
# byte-identical to the unsharded report, the report must be schema-valid
# (scripts/scenarios_validate.py), and two fuzz loops — corrupted taskset
# CSVs and corrupted/truncated scenario files — must exit with a clean
# util::Error, never an ASan report/crash. The address pass additionally
# re-runs the golden-equivalence suite explicitly (allocation engine
# bit-identical to the pre-registry seed, with strictly fewer dbf
# evaluations) and the bench_micro_ops --smoke memoization-counter check.
# Finally the address pass runs the perf smoke: bench_micro_ops --smoke
# --json must emit a schema-valid BENCH_*.json, `vc2m perfdiff` must pass a
# self-compare and must flag a synthetic 3x phase-time regression — and
# test_explain (golden digests bit-identical with decision recording on).
# The former fault-policy and feasible/infeasible explain smokes live in
# the scenario corpus now (fault-policy-*.json, infeasible-*.json).
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
[ $# -eq 0 ] && sanitizers=(address undefined thread perf)

scenario_smoke() {
  # $1 = build dir with a tools/vc2m binary. Runs the curated corpus (which
  # carries the former fault-policy and explain verdict smokes as pinned
  # scenarios), checks shard/merge byte-identity, and schema-validates both
  # the corpus and the merged report from the outside.
  local vc2m="$1/tools/vc2m"
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN

  echo "--- scenario corpus is schema-valid ---"
  python3 scripts/scenarios_validate.py scenarios/

  echo "--- scenario corpus passes (full matrix run) ---"
  "$vc2m" scenario run scenarios/ --jobs "$(nproc)" \
    --json "$work/full.json" \
    || { echo "scenario corpus failed"; return 1; }

  echo "--- 2-way-sharded merge is byte-identical to the unsharded run ---"
  "$vc2m" scenario run scenarios/ --jobs 2 --shard 0/2 \
    --json "$work/shard0.json" > /dev/null
  "$vc2m" scenario run scenarios/ --jobs 2 --shard 1/2 \
    --json "$work/shard1.json" > /dev/null
  "$vc2m" scenario merge "$work/shard0.json" "$work/shard1.json" \
    --json "$work/merged.json" > /dev/null
  cmp "$work/merged.json" "$work/full.json" \
    || { echo "merged shard report differs from the unsharded run"; return 1; }

  echo "--- scenario report is schema-valid ---"
  python3 scripts/scenarios_validate.py --report "$work/full.json"

  echo "--- fuzz: corrupted scenario files must fail cleanly ---"
  local seed_file=scenarios/cache-thrash-storm.json
  local ssize; ssize="$(wc -c < "$seed_file")"
  RANDOM=20260809
  for i in $(seq 1 24); do
    cp "$seed_file" "$work/fuzzed.json"
    for _ in 1 2 3; do
      local off=$((RANDOM % ssize)) byte=$((RANDOM % 255 + 1))
      printf "$(printf '\\%03o' "$byte")" |
        dd of="$work/fuzzed.json" bs=1 seek="$off" count=1 conv=notrunc status=none
    done
    local rc=0
    ASAN_OPTIONS=abort_on_error=1 "$vc2m" scenario validate "$work/fuzzed.json" \
      > /dev/null 2> "$work/fuzz-err.txt" || rc=$?
    if [ "$rc" -ge 128 ]; then
      echo "scenario fuzz iteration $i crashed (rc=$rc):"
      cat "$work/fuzz-err.txt"
      return 1
    fi
  done
  # Truncations walk the parser's every EOF path.
  for n in 0 1 17 60 120 200; do
    head -c "$n" "$seed_file" > "$work/truncated.json"
    local rc=0
    ASAN_OPTIONS=abort_on_error=1 "$vc2m" scenario validate "$work/truncated.json" \
      > /dev/null 2>&1 || rc=$?
    if [ "$rc" -ge 128 ] || [ "$rc" -eq 0 ]; then
      echo "truncated scenario (${n} bytes) rc=$rc (want clean nonzero exit)"
      return 1
    fi
  done
  echo "--- scenario smoke passed ---"
}

taskset_fuzz() {
  # $1 = build dir with a tools/vc2m binary.
  local vc2m="$1/tools/vc2m"
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN
  "$vc2m" generate --util 0.6 --seed 3 > "$work/tasks.csv"

  echo "--- fuzz: corrupted taskset CSVs must fail cleanly ---"
  # abort_on_error makes ASan die with a signal (rc >= 128) instead of
  # exit(1), so a crash is distinguishable from a clean util::Error exit.
  local size; size="$(wc -c < "$work/tasks.csv")"
  RANDOM=20260806
  for i in $(seq 1 32); do
    cp "$work/tasks.csv" "$work/fuzzed.csv"
    for _ in 1 2 3; do
      local off=$((RANDOM % size)) byte=$((RANDOM % 255 + 1))
      printf "$(printf '\\%03o' "$byte")" |
        dd of="$work/fuzzed.csv" bs=1 seek="$off" count=1 conv=notrunc status=none
    done
    local rc=0
    ASAN_OPTIONS=abort_on_error=1 "$vc2m" solve --file "$work/fuzzed.csv" \
      > /dev/null 2> "$work/fuzz-err.txt" || rc=$?
    if [ "$rc" -ge 128 ]; then
      echo "fuzz iteration $i crashed (rc=$rc):"
      cat "$work/fuzz-err.txt"
      return 1
    fi
  done
  echo "--- taskset fuzz passed ---"
}

serve_smoke() {
  # $1 = build dir with a tools/vc2m binary. Exercises the crash-safety
  # story of `vc2m serve` from the outside: a journaled baseline run, a
  # real crash-kill at every injected crash point followed by --recover
  # (the recovered report must be byte-identical to the baseline), a
  # torn/corrupted-journal fuzz loop (recovery must warn and finish, never
  # crash), and the strict-flag matrix (malformed numeric flag values must
  # exit 2 with a 'bad value' message, not feed garbage to the service).
  local vc2m="$1/tools/vc2m"
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN
  # remove/resize traffic keeps commits flowing (admit-only traces stop
  # committing once the platform fills), so snapshots keep rotating.
  local trace="poisson:requests=600,interarrival-us=300,util=0.1..0.4,remove-frac=0.35,resize-frac=0.1"
  local args=(--trace "$trace" --seed 7 --snapshot-every 20)

  echo "--- serve: journaled baseline run ---"
  "$vc2m" serve "${args[@]}" --journal "$work/base.wal" \
    --json "$work/base.json" > /dev/null

  echo "--- serve report is schema-valid ---"
  python3 scripts/scenarios_validate.py --serve-report "$work/base.json"

  echo "--- serve: crash-kill + --recover at every crash point ---"
  # std::_Exit(137) at the kill site: distinguishable both from a clean
  # exit and from an ASan abort (134).
  for crash in before-append:300 after-append:300 mid-snapshot:2; do
    rm -f "$work/j.wal" "$work/j.wal.snap"
    local rc=0
    ASAN_OPTIONS=abort_on_error=1 "$vc2m" serve "${args[@]}" \
      --journal "$work/j.wal" --crash-at "$crash" > /dev/null 2>&1 || rc=$?
    if [ "$rc" -ne 137 ]; then
      echo "crash point $crash: expected rc 137, got $rc"
      return 1
    fi
    "$vc2m" serve "${args[@]}" --journal "$work/j.wal" --recover \
      --json "$work/recovered.json" > /dev/null 2> "$work/recover-err.txt" \
      || { echo "recovery after $crash failed:"
           cat "$work/recover-err.txt"; return 1; }
    cmp "$work/recovered.json" "$work/base.json" \
      || { echo "recovered report after $crash differs from baseline"
           return 1; }
  done

  echo "--- fuzz: corrupted/truncated journals must recover cleanly ---"
  # base.wal (+ its snapshot) is a complete run; recovery replays it in
  # full. Any torn tail or flipped byte may cost records — recovery then
  # recomputes them live — but must warn and finish, never crash, and the
  # final report must still be byte-identical (replay == recompute).
  local jsize; jsize="$(wc -c < "$work/base.wal")"
  RANDOM=20260808
  for i in $(seq 1 16); do
    cp "$work/base.wal" "$work/fuzz.wal"
    cp "$work/base.wal.snap" "$work/fuzz.wal.snap" 2>/dev/null || true
    if [ $((i % 2)) -eq 0 ]; then
      truncate -s $((RANDOM % jsize)) "$work/fuzz.wal"
    else
      local off=$((RANDOM % jsize)) byte=$((RANDOM % 255 + 1))
      printf "$(printf '\\%03o' "$byte")" |
        dd of="$work/fuzz.wal" bs=1 seek="$off" count=1 conv=notrunc status=none
    fi
    local rc=0
    ASAN_OPTIONS=abort_on_error=1 "$vc2m" serve "${args[@]}" \
      --journal "$work/fuzz.wal" --recover --json "$work/fuzzed.json" \
      > /dev/null 2> "$work/fuzz-err.txt" || rc=$?
    if [ "$rc" -ge 128 ]; then
      echo "journal fuzz iteration $i crashed (rc=$rc):"
      cat "$work/fuzz-err.txt"
      return 1
    fi
    if [ "$rc" -eq 0 ]; then
      cmp "$work/fuzzed.json" "$work/base.json" \
        || { echo "journal fuzz iteration $i: recovered report differs"
             return 1; }
    fi
  done

  echo "--- strict flags: malformed numeric values must exit 2 ---"
  local bad rc flag value
  for bad in "--seed 12x" "--util nan" "--vms 1e3" "--jobs 2.5" \
             "--snapshot-every -1" "--deadline-us 5ms" "--backoff-us abc" \
             "--max-retries two" "--queue-cap 0x10"; do
    flag="${bad% *}" value="${bad#* }"
    rc=0
    "$vc2m" serve --trace "$trace" "$flag" "$value" \
      > /dev/null 2> "$work/flag-err.txt" || rc=$?
    if [ "$rc" -ne 2 ] || ! grep -q "bad value" "$work/flag-err.txt"; then
      echo "flag '$flag $value': expected rc 2 + 'bad value', got rc $rc:"
      cat "$work/flag-err.txt"
      return 1
    fi
  done
  echo "--- serve smoke passed ---"
}

telemetry_smoke() {
  # $1 = build dir with a tools/vc2m binary. Exercises the runtime
  # telemetry (docs/telemetry.md) from the outside: instrumentation must
  # not perturb the deterministic artifacts, the timeline must be
  # schema-valid and bit-identical across --inner-jobs and across a real
  # crash + --recover, the `vc2m timeline` reader must survive corrupted
  # input, and SIGUSR1 must render a stats snapshot mid-run.
  local vc2m="$1/tools/vc2m"
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN
  local trace="poisson:requests=600,interarrival-us=300,util=0.1..0.4,remove-frac=0.35,resize-frac=0.1"
  local args=(--trace "$trace" --seed 7 --snapshot-every 20)

  echo "--- telemetry: fully instrumented run ---"
  "$vc2m" serve "${args[@]}" --journal "$work/telem.wal" \
    --timeline "$work/t.bin" --sample-every 50 --stats-every 200 \
    --span-trace "$work/spans.json" --json "$work/telem.json" \
    > /dev/null 2> "$work/stats.txt"
  grep -q "\[vc2m serve\]" "$work/stats.txt" \
    || { echo "--stats-every rendered no snapshots"; return 1; }

  echo "--- telemetry leaves the report and the journal byte-identical ---"
  "$vc2m" serve "${args[@]}" --journal "$work/plain.wal" \
    --json "$work/plain.json" > /dev/null
  cmp "$work/telem.json" "$work/plain.json" \
    || { echo "telemetry perturbed the serve report"; return 1; }
  cmp "$work/telem.wal" "$work/plain.wal" \
    || { echo "telemetry perturbed the journal"; return 1; }

  echo "--- timeline is schema-valid ---"
  python3 scripts/scenarios_validate.py --timeline "$work/t.bin"

  echo "--- vc2m timeline: summary, csv, and self-diff ---"
  "$vc2m" timeline "$work/t.bin" > /dev/null
  "$vc2m" timeline "$work/t.bin" --csv | head -1 | grep -q "^file,sample," \
    || { echo "timeline --csv header missing"; return 1; }
  "$vc2m" timeline "$work/t.bin" --diff "$work/t.bin" \
    | grep -q "byte-identical" \
    || { echo "timeline self-diff failed"; return 1; }

  echo "--- timeline is bit-identical across --inner-jobs ---"
  "$vc2m" serve "${args[@]}" --inner-jobs 2 --timeline "$work/t_j2.bin" \
    --sample-every 50 > /dev/null
  "$vc2m" timeline "$work/t.bin" --diff "$work/t_j2.bin" > /dev/null \
    || { echo "timeline differs at --inner-jobs 2"; return 1; }

  echo "--- crash + --recover reproduces the timeline ---"
  rm -f "$work/c.wal" "$work/c.wal.snap" "$work/c.wal.spans" "$work/c.bin"
  local rc=0
  ASAN_OPTIONS=abort_on_error=1 "$vc2m" serve "${args[@]}" \
    --journal "$work/c.wal" --timeline "$work/c.bin" --sample-every 50 \
    --crash-at after-append:300 > /dev/null 2>&1 || rc=$?
  if [ "$rc" -ne 137 ]; then
    echo "telemetry crash run: expected rc 137, got $rc"; return 1
  fi
  [ -s "$work/c.wal.spans" ] \
    || { echo "crash left no span-ring dump next to the journal"; return 1; }
  "$vc2m" serve "${args[@]}" --journal "$work/c.wal" --timeline "$work/c.bin" \
    --sample-every 50 --recover --json "$work/crec.json" > /dev/null 2>&1 \
    || { echo "telemetry recovery failed"; return 1; }
  cmp "$work/c.bin" "$work/t.bin" \
    || { echo "recovered timeline differs from the uninterrupted run"
         return 1; }
  cmp "$work/crec.json" "$work/plain.json" \
    || { echo "recovered report differs from baseline"; return 1; }

  echo "--- SIGUSR1 renders a stats snapshot mid-run ---"
  local slow="poisson:requests=6000,interarrival-us=300,util=0.1..0.4"
  "$vc2m" serve --trace "$slow" --seed 7 \
    > /dev/null 2> "$work/usr1.txt" &
  local pid=$!
  sleep 0.5
  kill -USR1 "$pid" 2>/dev/null || true
  wait "$pid" || { echo "serve under SIGUSR1 failed"; return 1; }
  grep -q "\[vc2m serve\]" "$work/usr1.txt" \
    || { echo "SIGUSR1 rendered no stats snapshot"; return 1; }

  echo "--- fuzz: corrupted timelines must be read cleanly ---"
  local tsize; tsize="$(wc -c < "$work/t.bin")"
  RANDOM=20260810
  for i in $(seq 1 16); do
    cp "$work/t.bin" "$work/fuzz.bin"
    if [ $((i % 2)) -eq 0 ]; then
      truncate -s $((RANDOM % tsize)) "$work/fuzz.bin"
    else
      local off=$((RANDOM % tsize)) byte=$((RANDOM % 255 + 1))
      printf "$(printf '\\%03o' "$byte")" |
        dd of="$work/fuzz.bin" bs=1 seek="$off" count=1 conv=notrunc status=none
    fi
    rc=0
    ASAN_OPTIONS=abort_on_error=1 "$vc2m" timeline "$work/fuzz.bin" \
      > /dev/null 2> "$work/fuzz-err.txt" || rc=$?
    if [ "$rc" -ge 128 ]; then
      echo "timeline fuzz iteration $i crashed (rc=$rc):"
      cat "$work/fuzz-err.txt"
      return 1
    fi
  done
  echo "--- telemetry smoke passed ---"
}

perf_smoke() {
  # $1 = build dir with bench/bench_micro_ops and tools/vc2m binaries.
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN
  "$1/bench/bench_micro_ops" --smoke --json "$work/BENCH_smoke.json" \
    > /dev/null

  echo "--- bench report is schema-valid JSON ---"
  python3 - "$work/BENCH_smoke.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
required = ["schema", "name", "git_rev", "config", "counters", "phases",
            "histograms", "pool"]
missing = [k for k in required if k not in r]
assert not missing, f"missing top-level keys: {missing}"
assert r["schema"].startswith("vc2m-bench-report/"), r["schema"]
assert r["phases"], "empty phase profile"
assert "solve_seconds" in r["histograms"], "missing solve_seconds histogram"
EOF

  echo "--- perfdiff: self-compare must pass ---"
  "$1/tools/vc2m" perfdiff "$work/BENCH_smoke.json" "$work/BENCH_smoke.json" \
    > /dev/null \
    || { echo "perfdiff self-compare reported a regression"; return 1; }

  echo "--- perfdiff: synthetic 3x phase regression must fail ---"
  python3 - "$work/BENCH_smoke.json" "$work/BENCH_regressed.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
for p in r["phases"]:
    p["total_sec"] *= 3
json.dump(r, open(sys.argv[2], "w"))
EOF
  if "$1/tools/vc2m" perfdiff "$work/BENCH_smoke.json" \
      "$work/BENCH_regressed.json" > /dev/null; then
    echo "perfdiff failed to flag a 3x phase-time regression"
    return 1
  fi
  echo "--- perf smoke passed ---"
}

perf_gate() {
  # Plain (non-sanitized, RelWithDebInfo) build: sanitizer overhead would
  # drown the wall time the gate compares. Runs the committed Fig-4
  # configuration (50 tasksets/point, step 0.05, seed 42, --jobs 1) and
  # holds wall time, phase times, and effort counters to within
  # --max-regress of the checked-in baseline report.
  local dir=build-perf
  echo "=== perf: configure (${dir}/) ==="
  cmake -B "$dir" -S . >/dev/null
  echo "=== perf: build ==="
  cmake --build "$dir" -j "$(nproc)" --target bench_fig4_runtime vc2m
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN
  echo "=== perf: Fig-4 runtime sweep ==="
  "$dir/bench/bench_fig4_runtime" --jobs 1 --csv-dir "$work" \
    --json "$work/BENCH_fig4_current.json" > /dev/null
  echo "=== perf: perfdiff vs bench_results/BENCH_fig4_baseline.json ==="
  # --min-abs-sec 0.01: sub-10ms bookkeeping phases (fork_streams,
  # assemble) jitter past any sane relative threshold; the phases this
  # gate exists for (experiment, sweep, min_budget) are seconds-scale.
  "$dir/tools/vc2m" perfdiff bench_results/BENCH_fig4_baseline.json \
    "$work/BENCH_fig4_current.json" --max-regress 10% --min-abs-sec 0.01 \
    || { echo "Fig-4 sweep regressed past the committed baseline"; return 1; }
  echo "--- perf gate passed ---"
}

for san in "${sanitizers[@]}"; do
  if [ "$san" = perf ]; then
    perf_gate
    continue
  fi
  case "$san" in
    address)   dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread)    dir=build-tsan ;;
    *)         dir="build-$san" ;;
  esac
  build_args=()
  ctest_args=(--output-on-failure -j "$(nproc)")
  if [ "$san" = thread ]; then
    build_args=(--target test_parallel test_faults test_scenario test_service
                test_telemetry test_golden)
    ctest_args+=(-R '^(ThreadPool|ParallelExperiment|ExperimentResultGuards|FaultValidatorParallel|ScenarioMatrix|TraceGen|Journal|CrashSpec|ShedPolicy|Service|ServeReport|Timeline|TelemetryText|SpanRing|Spans|StatsSnapshot)')
  fi
  echo "=== ${san}: configure (${dir}/) ==="
  cmake -B "$dir" -S . -DVC2M_SANITIZE="$san" >/dev/null
  echo "=== ${san}: build ==="
  cmake --build "$dir" -j "$(nproc)" ${build_args[@]+"${build_args[@]}"}
  echo "=== ${san}: ctest ==="
  (cd "$dir" && ctest ${ctest_args[@]+"${ctest_args[@]}"})
  if [ "$san" = thread ]; then
    # The intra-solve min-budget striping (--inner-jobs) shares checkpoint
    # cache references and per-stripe arenas across the inner pool; the
    # golden grid drives sweeps at jobs x inner-jobs combinations under
    # TSan to prove the batch latch + serial reduction are race-free.
    echo "=== ${san}: inner-parallel min-budget sweeps (golden grid) ==="
    "$dir/tests/test_golden" --gtest_filter='*JobsByInner*'
  fi
  if [ "$san" = address ]; then
    echo "=== ${san}: scenario smoke (corpus + shard/merge + fuzz) ==="
    scenario_smoke "$dir"
    echo "=== ${san}: serve smoke (crash-kill/recover + journal fuzz + flags) ==="
    serve_smoke "$dir"
    echo "=== ${san}: telemetry smoke (timeline + spans + SIGUSR1 + fuzz) ==="
    telemetry_smoke "$dir"
    echo "=== ${san}: taskset fuzz ==="
    taskset_fuzz "$dir"
    echo "=== ${san}: golden equivalence (engine vs seed digests) ==="
    "$dir/tests/test_golden"
    echo "=== ${san}: memoization smoke (bench_micro_ops --smoke) ==="
    "$dir/bench/bench_micro_ops" --smoke
    echo "=== ${san}: perf smoke (bench report + perfdiff gate) ==="
    perf_smoke "$dir"
    echo "=== ${san}: explain recording stays bit-identical (test_explain) ==="
    "$dir/tests/test_explain"
  fi
done

echo "All sanitizer runs passed."
