#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
#   scripts/check.sh            # ASan + UBSan (full suite) + TSan (parallel tests)
#   scripts/check.sh address    # just one pass
#   scripts/check.sh thread     # just the TSan pass
#
# Each sanitizer gets its own build tree (build-asan/, build-ubsan/,
# build-tsan/) so the regular build/ stays untouched. address and
# undefined build and run everything; thread builds only the parallel test
# binaries and runs the thread-pool/experiment/fault-validator/scenario-
# matrix suites (the rest of the test suite is single-threaded, and TSan's
# ~10x slowdown buys nothing there). The scenario-matrix suite matters for
# TSan specifically: it drives run_matrix with checkpointing at --jobs 2+,
# where worker-thread slot writes and the checkpoint snapshot must stay
# serialized. The address pass also runs the scenario smoke: the curated
# corpus under scenarios/ (all four enforcement policies under fault plans,
# the infeasible-by-constraint pins, the stress scenarios) must pass through
# `vc2m scenario run`, a 2-way-sharded run merged back together must be
# byte-identical to the unsharded report, the report must be schema-valid
# (scripts/scenarios_validate.py), and two fuzz loops — corrupted taskset
# CSVs and corrupted/truncated scenario files — must exit with a clean
# util::Error, never an ASan report/crash. The address pass additionally
# re-runs the golden-equivalence suite explicitly (allocation engine
# bit-identical to the pre-registry seed, with strictly fewer dbf
# evaluations) and the bench_micro_ops --smoke memoization-counter check.
# Finally the address pass runs the perf smoke: bench_micro_ops --smoke
# --json must emit a schema-valid BENCH_*.json, `vc2m perfdiff` must pass a
# self-compare and must flag a synthetic 3x phase-time regression — and
# test_explain (golden digests bit-identical with decision recording on).
# The former fault-policy and feasible/infeasible explain smokes live in
# the scenario corpus now (fault-policy-*.json, infeasible-*.json).
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
[ $# -eq 0 ] && sanitizers=(address undefined thread)

scenario_smoke() {
  # $1 = build dir with a tools/vc2m binary. Runs the curated corpus (which
  # carries the former fault-policy and explain verdict smokes as pinned
  # scenarios), checks shard/merge byte-identity, and schema-validates both
  # the corpus and the merged report from the outside.
  local vc2m="$1/tools/vc2m"
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN

  echo "--- scenario corpus is schema-valid ---"
  python3 scripts/scenarios_validate.py scenarios/

  echo "--- scenario corpus passes (full matrix run) ---"
  "$vc2m" scenario run scenarios/ --jobs "$(nproc)" \
    --json "$work/full.json" \
    || { echo "scenario corpus failed"; return 1; }

  echo "--- 2-way-sharded merge is byte-identical to the unsharded run ---"
  "$vc2m" scenario run scenarios/ --jobs 2 --shard 0/2 \
    --json "$work/shard0.json" > /dev/null
  "$vc2m" scenario run scenarios/ --jobs 2 --shard 1/2 \
    --json "$work/shard1.json" > /dev/null
  "$vc2m" scenario merge "$work/shard0.json" "$work/shard1.json" \
    --json "$work/merged.json" > /dev/null
  cmp "$work/merged.json" "$work/full.json" \
    || { echo "merged shard report differs from the unsharded run"; return 1; }

  echo "--- scenario report is schema-valid ---"
  python3 scripts/scenarios_validate.py --report "$work/full.json"

  echo "--- fuzz: corrupted scenario files must fail cleanly ---"
  local seed_file=scenarios/cache-thrash-storm.json
  local ssize; ssize="$(wc -c < "$seed_file")"
  RANDOM=20260809
  for i in $(seq 1 24); do
    cp "$seed_file" "$work/fuzzed.json"
    for _ in 1 2 3; do
      local off=$((RANDOM % ssize)) byte=$((RANDOM % 255 + 1))
      printf "$(printf '\\%03o' "$byte")" |
        dd of="$work/fuzzed.json" bs=1 seek="$off" count=1 conv=notrunc status=none
    done
    local rc=0
    ASAN_OPTIONS=abort_on_error=1 "$vc2m" scenario validate "$work/fuzzed.json" \
      > /dev/null 2> "$work/fuzz-err.txt" || rc=$?
    if [ "$rc" -ge 128 ]; then
      echo "scenario fuzz iteration $i crashed (rc=$rc):"
      cat "$work/fuzz-err.txt"
      return 1
    fi
  done
  # Truncations walk the parser's every EOF path.
  for n in 0 1 17 60 120 200; do
    head -c "$n" "$seed_file" > "$work/truncated.json"
    local rc=0
    ASAN_OPTIONS=abort_on_error=1 "$vc2m" scenario validate "$work/truncated.json" \
      > /dev/null 2>&1 || rc=$?
    if [ "$rc" -ge 128 ] || [ "$rc" -eq 0 ]; then
      echo "truncated scenario (${n} bytes) rc=$rc (want clean nonzero exit)"
      return 1
    fi
  done
  echo "--- scenario smoke passed ---"
}

taskset_fuzz() {
  # $1 = build dir with a tools/vc2m binary.
  local vc2m="$1/tools/vc2m"
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN
  "$vc2m" generate --util 0.6 --seed 3 > "$work/tasks.csv"

  echo "--- fuzz: corrupted taskset CSVs must fail cleanly ---"
  # abort_on_error makes ASan die with a signal (rc >= 128) instead of
  # exit(1), so a crash is distinguishable from a clean util::Error exit.
  local size; size="$(wc -c < "$work/tasks.csv")"
  RANDOM=20260806
  for i in $(seq 1 32); do
    cp "$work/tasks.csv" "$work/fuzzed.csv"
    for _ in 1 2 3; do
      local off=$((RANDOM % size)) byte=$((RANDOM % 255 + 1))
      printf "$(printf '\\%03o' "$byte")" |
        dd of="$work/fuzzed.csv" bs=1 seek="$off" count=1 conv=notrunc status=none
    done
    local rc=0
    ASAN_OPTIONS=abort_on_error=1 "$vc2m" solve --file "$work/fuzzed.csv" \
      > /dev/null 2> "$work/fuzz-err.txt" || rc=$?
    if [ "$rc" -ge 128 ]; then
      echo "fuzz iteration $i crashed (rc=$rc):"
      cat "$work/fuzz-err.txt"
      return 1
    fi
  done
  echo "--- taskset fuzz passed ---"
}

perf_smoke() {
  # $1 = build dir with bench/bench_micro_ops and tools/vc2m binaries.
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN
  "$1/bench/bench_micro_ops" --smoke --json "$work/BENCH_smoke.json" \
    > /dev/null

  echo "--- bench report is schema-valid JSON ---"
  python3 - "$work/BENCH_smoke.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
required = ["schema", "name", "git_rev", "config", "counters", "phases",
            "histograms", "pool"]
missing = [k for k in required if k not in r]
assert not missing, f"missing top-level keys: {missing}"
assert r["schema"].startswith("vc2m-bench-report/"), r["schema"]
assert r["phases"], "empty phase profile"
assert "solve_seconds" in r["histograms"], "missing solve_seconds histogram"
EOF

  echo "--- perfdiff: self-compare must pass ---"
  "$1/tools/vc2m" perfdiff "$work/BENCH_smoke.json" "$work/BENCH_smoke.json" \
    > /dev/null \
    || { echo "perfdiff self-compare reported a regression"; return 1; }

  echo "--- perfdiff: synthetic 3x phase regression must fail ---"
  python3 - "$work/BENCH_smoke.json" "$work/BENCH_regressed.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
for p in r["phases"]:
    p["total_sec"] *= 3
json.dump(r, open(sys.argv[2], "w"))
EOF
  if "$1/tools/vc2m" perfdiff "$work/BENCH_smoke.json" \
      "$work/BENCH_regressed.json" > /dev/null; then
    echo "perfdiff failed to flag a 3x phase-time regression"
    return 1
  fi
  echo "--- perf smoke passed ---"
}

for san in "${sanitizers[@]}"; do
  case "$san" in
    address)   dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread)    dir=build-tsan ;;
    *)         dir="build-$san" ;;
  esac
  build_args=()
  ctest_args=(--output-on-failure -j "$(nproc)")
  if [ "$san" = thread ]; then
    build_args=(--target test_parallel test_faults test_scenario)
    ctest_args+=(-R '^(ThreadPool|ParallelExperiment|ExperimentResultGuards|FaultValidatorParallel|ScenarioMatrix)')
  fi
  echo "=== ${san}: configure (${dir}/) ==="
  cmake -B "$dir" -S . -DVC2M_SANITIZE="$san" >/dev/null
  echo "=== ${san}: build ==="
  cmake --build "$dir" -j "$(nproc)" ${build_args[@]+"${build_args[@]}"}
  echo "=== ${san}: ctest ==="
  (cd "$dir" && ctest ${ctest_args[@]+"${ctest_args[@]}"})
  if [ "$san" = address ]; then
    echo "=== ${san}: scenario smoke (corpus + shard/merge + fuzz) ==="
    scenario_smoke "$dir"
    echo "=== ${san}: taskset fuzz ==="
    taskset_fuzz "$dir"
    echo "=== ${san}: golden equivalence (engine vs seed digests) ==="
    "$dir/tests/test_golden"
    echo "=== ${san}: memoization smoke (bench_micro_ops --smoke) ==="
    "$dir/bench/bench_micro_ops" --smoke
    echo "=== ${san}: perf smoke (bench report + perfdiff gate) ==="
    perf_smoke "$dir"
    echo "=== ${san}: explain recording stays bit-identical (test_explain) ==="
    "$dir/tests/test_explain"
  fi
done

echo "All sanitizer runs passed."
