#!/usr/bin/env bash
# Build and run the test suite under sanitizers.
#
#   scripts/check.sh            # ASan + UBSan (full suite) + TSan (parallel tests)
#   scripts/check.sh address    # just one pass
#   scripts/check.sh thread     # just the TSan pass
#
# Each sanitizer gets its own build tree (build-asan/, build-ubsan/,
# build-tsan/) so the regular build/ stays untouched. address and
# undefined build and run everything; thread builds only the parallel test
# binaries and runs the thread-pool/experiment/fault-validator suites (the
# rest of the test suite is single-threaded, and TSan's ~10x slowdown buys
# nothing there). The address pass also runs the fault-injection CLI smoke
# (all four enforcement policies under a WCET-overrun plan) and a fuzz loop
# that corrupts a valid taskset CSV byte-by-byte: the CLI must exit with a
# clean util::Error, never an ASan report/crash. The address pass
# additionally re-runs the golden-equivalence suite explicitly (allocation
# engine bit-identical to the pre-registry seed, with strictly fewer dbf
# evaluations) and the bench_micro_ops --smoke memoization-counter check.
# Finally the address pass runs the perf smoke: bench_micro_ops --smoke
# --json must emit a schema-valid BENCH_*.json, `vc2m perfdiff` must pass a
# self-compare and must flag a synthetic 3x phase-time regression — and the
# explain smoke: `vc2m explain` on a feasible profile must print the
# headroom table, on an infeasible one a per-VM rejection chain with a
# named constraint and margin, the vc2m-explain-report/1 artifact must be
# schema-valid JSON that the strict reader round-trips, and the golden
# suite must stay bit-identical with decision recording on (test_explain).
# Exits non-zero on the first failure.
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
[ $# -eq 0 ] && sanitizers=(address undefined thread)

fault_smoke() {
  # $1 = build dir with a tools/vc2m binary.
  local vc2m="$1/tools/vc2m"
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN
  echo "--- fault smoke: four enforcement policies ---"
  "$vc2m" generate --util 0.6 --seed 3 > "$work/tasks.csv"
  for policy in strict kill throttle degrade; do
    "$vc2m" simulate --file "$work/tasks.csv" \
      --faults 'overrun-factor=1.2,overrun-prob=0.7,low-crit-frac=0.5,seed=9' \
      --policy "$policy" --report > "$work/out-$policy.txt" \
      || { echo "fault smoke failed for policy $policy"; cat "$work/out-$policy.txt"; return 1; }
    grep -q 'Trace invariants: OK' "$work/out-$policy.txt" \
      || { echo "trace checker not clean for policy $policy"; return 1; }
  done

  echo "--- fuzz: corrupted taskset CSVs must fail cleanly ---"
  # abort_on_error makes ASan die with a signal (rc >= 128) instead of
  # exit(1), so a crash is distinguishable from a clean util::Error exit.
  local size; size="$(wc -c < "$work/tasks.csv")"
  RANDOM=20260806
  for i in $(seq 1 32); do
    cp "$work/tasks.csv" "$work/fuzzed.csv"
    for _ in 1 2 3; do
      local off=$((RANDOM % size)) byte=$((RANDOM % 255 + 1))
      printf "$(printf '\\%03o' "$byte")" |
        dd of="$work/fuzzed.csv" bs=1 seek="$off" count=1 conv=notrunc status=none
    done
    local rc=0
    ASAN_OPTIONS=abort_on_error=1 "$vc2m" solve --file "$work/fuzzed.csv" \
      > /dev/null 2> "$work/fuzz-err.txt" || rc=$?
    if [ "$rc" -ge 128 ]; then
      echo "fuzz iteration $i crashed (rc=$rc):"
      cat "$work/fuzz-err.txt"
      return 1
    fi
  done
  echo "--- fault smoke + fuzz passed ---"
}

perf_smoke() {
  # $1 = build dir with bench/bench_micro_ops and tools/vc2m binaries.
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN
  "$1/bench/bench_micro_ops" --smoke --json "$work/BENCH_smoke.json" \
    > /dev/null

  echo "--- bench report is schema-valid JSON ---"
  python3 - "$work/BENCH_smoke.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
required = ["schema", "name", "git_rev", "config", "counters", "phases",
            "histograms", "pool"]
missing = [k for k in required if k not in r]
assert not missing, f"missing top-level keys: {missing}"
assert r["schema"].startswith("vc2m-bench-report/"), r["schema"]
assert r["phases"], "empty phase profile"
assert "solve_seconds" in r["histograms"], "missing solve_seconds histogram"
EOF

  echo "--- perfdiff: self-compare must pass ---"
  "$1/tools/vc2m" perfdiff "$work/BENCH_smoke.json" "$work/BENCH_smoke.json" \
    > /dev/null \
    || { echo "perfdiff self-compare reported a regression"; return 1; }

  echo "--- perfdiff: synthetic 3x phase regression must fail ---"
  python3 - "$work/BENCH_smoke.json" "$work/BENCH_regressed.json" <<'EOF'
import json, sys
r = json.load(open(sys.argv[1]))
for p in r["phases"]:
    p["total_sec"] *= 3
json.dump(r, open(sys.argv[2], "w"))
EOF
  if "$1/tools/vc2m" perfdiff "$work/BENCH_smoke.json" \
      "$work/BENCH_regressed.json" > /dev/null; then
    echo "perfdiff failed to flag a 3x phase-time regression"
    return 1
  fi
  echo "--- perf smoke passed ---"
}

explain_smoke() {
  # $1 = build dir with a tools/vc2m binary.
  local vc2m="$1/tools/vc2m"
  local work; work="$(mktemp -d)"
  trap 'rm -rf "$work"' RETURN

  echo "--- explain: feasible profile prints headroom ---"
  "$vc2m" generate --util 0.4 --vms 2 --seed 7 > "$work/feasible.csv"
  "$vc2m" explain "$work/feasible.csv" --solution ovf \
    --json "$work/feasible.json" > "$work/feasible.txt"
  grep -q 'verdict: SCHEDULABLE' "$work/feasible.txt" \
    || { echo "feasible explain missing verdict"; cat "$work/feasible.txt"; return 1; }
  grep -q 'headroom per core' "$work/feasible.txt" \
    || { echo "feasible explain missing headroom table"; return 1; }

  echo "--- explain: infeasible profile names constraint + margin per VM ---"
  "$vc2m" generate --util 3.5 --vms 3 --seed 9 > "$work/infeasible.csv"
  "$vc2m" explain "$work/infeasible.csv" --solution ovf \
    --json "$work/infeasible.json" > "$work/infeasible.txt"
  grep -q 'verdict: NOT SCHEDULABLE' "$work/infeasible.txt" \
    || { echo "infeasible explain missing verdict"; cat "$work/infeasible.txt"; return 1; }
  grep -Eq 'VM [0-9]+ rejected \[[a-z_]+\].*margin' "$work/infeasible.txt" \
    || { echo "infeasible explain missing rejection chain"; cat "$work/infeasible.txt"; return 1; }

  echo "--- explain reports are schema-valid JSON ---"
  python3 - "$work/feasible.json" "$work/infeasible.json" <<'EOF'
import json, sys
for path in sys.argv[1:]:
    r = json.load(open(path))
    required = ["schema", "strategy", "git_rev", "config", "schedulable",
                "cores_used", "headroom", "rejections", "events",
                "events_dropped"]
    missing = [k for k in required if k not in r]
    assert not missing, f"{path}: missing top-level keys: {missing}"
    assert r["schema"].startswith("vc2m-explain-report/"), r["schema"]
    assert r["events"], f"{path}: empty event stream"
    if r["schedulable"]:
        assert r["headroom"]["cores"], f"{path}: no per-core headroom"
    else:
        assert r["rejections"], f"{path}: no rejection chain"
        for rej in r["rejections"]:
            assert rej["constraint"] != "none", rej
            assert rej["margin"] > 0, rej
EOF

  echo "--- golden digests unchanged with decision recording on ---"
  "$1/tests/test_explain"
  echo "--- explain smoke passed ---"
}

for san in "${sanitizers[@]}"; do
  case "$san" in
    address)   dir=build-asan ;;
    undefined) dir=build-ubsan ;;
    thread)    dir=build-tsan ;;
    *)         dir="build-$san" ;;
  esac
  build_args=()
  ctest_args=(--output-on-failure -j "$(nproc)")
  if [ "$san" = thread ]; then
    build_args=(--target test_parallel test_faults)
    ctest_args+=(-R '^(ThreadPool|ParallelExperiment|ExperimentResultGuards|FaultValidatorParallel)')
  fi
  echo "=== ${san}: configure (${dir}/) ==="
  cmake -B "$dir" -S . -DVC2M_SANITIZE="$san" >/dev/null
  echo "=== ${san}: build ==="
  cmake --build "$dir" -j "$(nproc)" ${build_args[@]+"${build_args[@]}"}
  echo "=== ${san}: ctest ==="
  (cd "$dir" && ctest ${ctest_args[@]+"${ctest_args[@]}"})
  if [ "$san" = address ]; then
    echo "=== ${san}: fault smoke + fuzz ==="
    fault_smoke "$dir"
    echo "=== ${san}: golden equivalence (engine vs seed digests) ==="
    "$dir/tests/test_golden"
    echo "=== ${san}: memoization smoke (bench_micro_ops --smoke) ==="
    "$dir/bench/bench_micro_ops" --smoke
    echo "=== ${san}: perf smoke (bench report + perfdiff gate) ==="
    perf_smoke "$dir"
    echo "=== ${san}: explain smoke (rejection chains + headroom) ==="
    explain_smoke "$dir"
  fi
done

echo "All sanitizer runs passed."
