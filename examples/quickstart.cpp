// Quickstart: allocate CPU, cache, and memory bandwidth for a small
// real-time VM with vC2M, then program the Intel CAT model with the result.
//
//   $ ./quickstart
//
// Walks the full pipeline: PARSEC-profiled WCET surfaces → cache/BW-aware
// tasks → overhead-free VCPUs (Theorem 1 flattening) → hypervisor-level
// heuristic allocation → CAT capacity bitmasks.
#include <cstdio>
#include <iostream>

#include "core/solutions.h"
#include "hw/cat.h"
#include "model/platform.h"
#include "util/rng.h"
#include "workload/parsec.h"

namespace {

using namespace vc2m;

/// Build a task from a PARSEC profile: `ref_wcet` is the measured execution
/// time at the full allocation; the surface scales it per (c, b).
model::Task make_task(const std::string& benchmark, util::Time period,
                      util::Time ref_wcet, const model::ResourceGrid& grid) {
  const auto& profile = workload::find_profile(benchmark);
  model::Task t;
  t.period = period;
  t.wcet = model::WcetFn::from_slowdown(ref_wcet, profile.surface(grid));
  t.max_wcet = util::Time::ns(static_cast<std::int64_t>(
      static_cast<double>(ref_wcet.raw_ns()) * profile.max_slowdown(grid)));
  t.label = benchmark;
  return t;
}

}  // namespace

int main() {
  const auto platform = model::PlatformSpec::A();  // 4 cores, 20 partitions
  std::cout << "vC2M quickstart on " << platform.name << " ("
            << platform.cores << " cores, " << platform.total_cache()
            << " cache partitions, " << platform.total_bw()
            << " BW partitions)\n\n";

  // A small VM: one control task, one vision pipeline, one logger.
  model::Taskset tasks;
  tasks.push_back(
      make_task("swaptions", util::Time::ms(100), util::Time::ms(12),
                platform.grid));
  tasks.push_back(
      make_task("streamcluster", util::Time::ms(200), util::Time::ms(40),
                platform.grid));
  tasks.push_back(
      make_task("freqmine", util::Time::ms(400), util::Time::ms(95),
                platform.grid));

  std::cout << "Taskset (reference utilization "
            << model::total_reference_utilization(tasks) << "):\n";
  for (const auto& t : tasks)
    std::printf("  %-14s p=%6.0fms  e*=%6.1fms  e(Cmin,Bmin)=%6.1fms\n",
                t.label.c_str(), t.period.to_ms(),
                t.reference_wcet().to_ms(),
                t.wcet.at(platform.grid.c_min, platform.grid.b_min).to_ms());

  // Solve: Theorem-1 flattening + the heuristic multi-resource allocator.
  util::Rng rng(2026);
  const auto result = core::solve(core::Solution::kHeuristicFlattening, tasks,
                                  platform, {}, rng);
  if (!result.schedulable) {
    std::cout << "\nNot schedulable on this platform.\n";
    return 1;
  }

  std::cout << "\nSchedulable on " << result.mapping.cores_used
            << " core(s); allocation:\n";
  for (unsigned k = 0; k < result.mapping.cores_used; ++k) {
    std::printf("  core %u: cache=%2u ways, bw=%2u partitions, VCPUs:", k,
                result.mapping.cache[k], result.mapping.bw[k]);
    for (const auto vi : result.mapping.vcpus_on_core[k]) {
      const auto& v = result.vcpus[vi];
      std::printf(" [Pi=%.0fms Theta=%.1fms]", v.period.to_ms(),
                  v.budget.at(result.mapping.cache[k], result.mapping.bw[k])
                      .to_ms());
    }
    std::printf("\n");
  }

  // Program the CAT model exactly as the hypervisor would.
  hw::MsrFile msr(platform.cores);
  hw::Cat cat(msr, platform.total_cache(), /*num_cos=*/16,
              platform.grid.c_min);
  std::vector<unsigned> ways(platform.cores, 0);
  for (unsigned k = 0; k < result.mapping.cores_used; ++k)
    ways[k] = result.mapping.cache[k];
  cat.program_disjoint_plan(ways);

  std::cout << "\nProgrammed CAT capacity bitmasks (disjoint="
            << (cat.cores_disjoint() ? "yes" : "no") << "):\n";
  for (unsigned k = 0; k < result.mapping.cores_used; ++k)
    std::printf("  core %u: COS %u, CBM 0x%05llx\n", k, cat.cos_of_core(k),
                static_cast<unsigned long long>(cat.effective_mask(k)));
  return 0;
}
