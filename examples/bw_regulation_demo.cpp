// Memory-bandwidth regulation demo (§3.2, Fig. 1).
//
// A latency-critical control task shares the machine with a streaming
// memory hog on another core. Three configurations are simulated:
//   1. no isolation:   shared bus, no regulator — the hog steals bandwidth
//                      and the control task's response time balloons;
//   2. vC2M regulation: each core gets a bandwidth budget enforced by the
//                      PC-overflow/throttle mechanism — the control task is
//                      isolated, and the hog's core goes *idle* when
//                      throttled (not busy-spinning as MemGuard does);
//   3. hog alone:      reference without interference.
//
//   $ ./bw_regulation_demo
#include <cstdio>
#include <iostream>

#include "sim/simulation.h"
#include "util/table.h"

namespace {

using namespace vc2m;
using util::Time;

sim::SimConfig scenario(bool regulated) {
  sim::SimConfig cfg;
  cfg.num_cores = 2;
  cfg.cache_partitions = 20;
  cfg.cache_alloc = {10, 10};
  cfg.bw_alloc = {12, 8};  // control core gets 12 partitions, hog gets 8
  cfg.requests_per_partition = 1000;
  cfg.regulation_period = Time::ms(1);
  cfg.bw_regulation = regulated;
  cfg.bus_contention = true;
  cfg.bus_requests_per_period = 20'000;  // B · requests_per_partition

  // Core 0: the control task — modest memory traffic, tight deadline.
  sim::SimVcpuSpec v0;
  v0.period = Time::ms(10);
  v0.budget = Time::ms(10);
  v0.core = 0;
  cfg.vcpus.push_back(v0);
  sim::SimTaskSpec control;
  control.period = Time::ms(10);
  control.cpu_work = Time::ms(2);
  control.mem_work_ref = Time::ms(3);
  control.mem_requests_ref = 25'000;  // 5k requests/ms while executing
  control.vcpu = 0;
  cfg.tasks.push_back(control);

  // Core 1: the streaming hog — saturates the bus if allowed to.
  sim::SimVcpuSpec v1;
  v1.period = Time::ms(400);
  v1.budget = Time::ms(400);
  v1.core = 1;
  cfg.vcpus.push_back(v1);
  sim::SimTaskSpec hog;
  hog.period = Time::ms(400);
  hog.cpu_work = Time::ms(10);
  hog.mem_work_ref = Time::ms(40);
  hog.mem_requests_ref = 2'250'000;  // 45k requests/ms while executing
  hog.vcpu = 1;
  cfg.tasks.push_back(hog);
  return cfg;
}

struct RunResult {
  Time control_wcet;
  Time hog_wcet;
  std::uint64_t throttles;
  std::uint64_t control_misses;
  double hog_core_busy;
};

RunResult run(sim::SimConfig cfg, std::size_t control_idx,
              std::size_t hog_idx) {
  sim::Simulation s(std::move(cfg));
  s.run(Time::sec(2));
  const auto st = s.stats();
  const bool has_control = control_idx != hog_idx;
  return {has_control ? st.per_task[control_idx].max_response : Time::zero(),
          st.per_task[hog_idx].max_response, st.throttles,
          has_control ? st.per_task[control_idx].deadline_misses : 0,
          st.core_busy_fraction[1]};
}

}  // namespace

int main() {
  std::cout << "vC2M bandwidth regulation demo: control task (10ms period) "
               "vs streaming hog\n\n";

  const RunResult unregulated = run(scenario(false), 0, 1);
  const RunResult regulated = run(scenario(true), 0, 1);

  auto hog_only = scenario(false);
  hog_only.tasks.erase(hog_only.tasks.begin());
  hog_only.vcpus.erase(hog_only.vcpus.begin());
  for (auto& t : hog_only.tasks) t.vcpu = 0;
  const RunResult reference = run(hog_only, 0, 0);

  util::Table table({"configuration", "control WCET (ms)", "hog WCET (ms)",
                     "throttles", "control misses", "hog core busy"});
  table.add_row("no isolation", unregulated.control_wcet.to_ms(),
                unregulated.hog_wcet.to_ms(),
                static_cast<int>(unregulated.throttles),
                static_cast<int>(unregulated.control_misses),
                unregulated.hog_core_busy);
  table.add_row("vC2M regulation", regulated.control_wcet.to_ms(),
                regulated.hog_wcet.to_ms(),
                static_cast<int>(regulated.throttles),
                static_cast<int>(regulated.control_misses),
                regulated.hog_core_busy);
  table.add_row("hog alone (ref)", 0.0, reference.hog_wcet.to_ms(),
                static_cast<int>(reference.throttles), 0,
                reference.hog_core_busy);
  table.print(std::cout, "Isolation comparison (2s simulated)");

  std::cout << "\nNotes:\n"
               "  - without isolation the hog's 45k req/ms demand saturates\n"
               "    the 20k req/ms bus and stretches the control task past\n"
               "    its 10ms deadline;\n"
               "  - with vC2M the hog is throttled to its 8-partition budget\n"
               "    and its core sits idle for the rest of each regulation\n"
               "    period (lower busy fraction = energy saved);\n"
               "  - the control task keeps its bandwidth and misses nothing.\n";
  return 0;
}
