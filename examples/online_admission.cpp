// Online admission control: VMs joining and leaving a running system.
//
// The paper's allocator plans a static system; a deployed hypervisor also
// admits VMs at runtime. This example boots a base VM, admits three more
// one at a time (each with its own resource appetite), rejects one that
// would overload the platform, then removes a VM and shows the freed
// capacity. Existing VMs are never migrated and never lose partitions —
// admission only spends headroom.
//
//   $ ./online_admission
#include <cstdio>
#include <iostream>

#include "analysis/schedulability.h"
#include "core/admission.h"
#include "core/solutions.h"
#include "model/platform.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace {

using namespace vc2m;

model::Taskset make_vm(double util, int vm_id, std::uint64_t seed,
                       const model::PlatformSpec& platform) {
  workload::GeneratorConfig cfg;
  cfg.grid = platform.grid;
  cfg.target_ref_utilization = util;
  util::Rng rng(seed);
  auto tasks = workload::generate_taskset(cfg, rng);
  for (auto& t : tasks) t.vm = vm_id;
  return tasks;
}

void print_state(const core::AdmissionState& st,
                 const model::PlatformSpec& platform) {
  std::printf("    cores:");
  for (unsigned k = 0; k < st.mapping.cores_used; ++k)
    std::printf(" [c=%2u b=%2u u=%.2f]", st.mapping.cache[k],
                st.mapping.bw[k],
                analysis::core_utilization(st.vcpus,
                                           st.mapping.vcpus_on_core[k],
                                           st.mapping.cache[k],
                                           st.mapping.bw[k]));
  std::printf("  free: cache %u, bw %u\n",
              platform.total_cache() - st.mapping.total_cache(),
              platform.total_bw() - st.mapping.total_bw());
}

}  // namespace

int main() {
  const auto platform = model::PlatformSpec::A();
  std::cout << "Online admission on " << platform.name << "\n\n";

  // Boot VM 0 with the offline allocator.
  const auto base_tasks = make_vm(0.7, 0, 1, platform);
  util::Rng rng(2);
  const auto booted = core::solve(core::Solution::kHeuristicOverheadFree,
                                  base_tasks, platform, {}, rng);
  core::AdmissionState state{booted.vcpus, booted.mapping};
  std::printf("boot VM 0 (util 0.70): %s\n",
              booted.schedulable ? "placed" : "FAILED");
  print_state(state, platform);

  core::VmAllocConfig vm_cfg;
  vm_cfg.max_vcpus_per_vm = platform.cores;

  const struct {
    int id;
    double util;
  } arrivals[] = {{1, 0.45}, {2, 0.35}, {3, 1.60}, {4, 0.25}};
  for (const auto& a : arrivals) {
    const auto tasks = make_vm(a.util, a.id, 10 + a.id, platform);
    util::Rng admit_rng(20 + a.id);
    const auto res =
        core::admit_vm(state, tasks, a.id, platform, vm_cfg, admit_rng);
    std::printf("\nadmit VM %d (util %.2f, %zu tasks): %s\n", a.id, a.util,
                tasks.size(), res.admitted ? "ADMITTED" : "REJECTED");
    if (res.admitted) {
      state = res.state;
      print_state(state, platform);
    } else {
      std::printf("    running system untouched\n");
    }
  }

  std::cout << "\nshutdown VM 1:\n";
  state = core::remove_vm(state, 1);
  print_state(state, platform);

  std::cout << "\nNote how the rejected VM 3 left no trace, and how removal "
               "returns capacity\nfor future admissions without touching the "
               "surviving VMs' placements.\n";
  return 0;
}
