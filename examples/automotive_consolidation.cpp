// Automotive consolidation — the paper's motivating scenario (§1).
//
// Three vehicle functions, previously on separate ECUs, are consolidated as
// VMs on one multicore processor:
//   VM 0 (ADAS):         camera pipeline + sensor fusion — cache-sensitive,
//                        memory-hungry, short harmonic periods;
//   VM 1 (cluster):      instrument-cluster rendering — moderate load;
//   VM 2 (infotainment): media/codec tasks — bandwidth-heavy, long periods.
//
// The example runs all five solutions from the evaluation on the same
// consolidated workload and prints which of them can certify it, on how
// many cores, and with what cache/BW split — illustrating why holistic
// allocation is what makes the consolidation feasible.
//
//   $ ./automotive_consolidation
#include <cstdio>
#include <iostream>

#include "core/solutions.h"
#include "model/platform.h"
#include "util/rng.h"
#include "util/table.h"
#include "workload/parsec.h"

namespace {

using namespace vc2m;

model::Task make_task(const std::string& benchmark, int vm,
                      util::Time period, util::Time ref_wcet,
                      const model::ResourceGrid& grid) {
  const auto& profile = workload::find_profile(benchmark);
  model::Task t;
  t.period = period;
  t.wcet = model::WcetFn::from_slowdown(ref_wcet, profile.surface(grid));
  t.max_wcet = util::Time::ns(static_cast<std::int64_t>(
      static_cast<double>(ref_wcet.raw_ns()) * profile.max_slowdown(grid)));
  t.vm = vm;
  t.label = benchmark;
  return t;
}

}  // namespace

int main() {
  const auto platform = model::PlatformSpec::A();
  const auto& g = platform.grid;
  using util::Time;

  model::Taskset tasks;
  // VM 0 — ADAS: 100/200/400ms harmonic chain.
  tasks.push_back(make_task("bodytrack", 0, Time::ms(100), Time::ms(22), g));
  tasks.push_back(make_task("x264", 0, Time::ms(100), Time::ms(18), g));
  tasks.push_back(make_task("streamcluster", 0, Time::ms(200), Time::ms(36), g));
  tasks.push_back(make_task("facesim", 0, Time::ms(400), Time::ms(60), g));
  // VM 1 — instrument cluster.
  tasks.push_back(make_task("vips", 1, Time::ms(100), Time::ms(14), g));
  tasks.push_back(make_task("swaptions", 1, Time::ms(200), Time::ms(24), g));
  // VM 2 — infotainment.
  tasks.push_back(make_task("ferret", 2, Time::ms(400), Time::ms(70), g));
  tasks.push_back(make_task("dedup", 2, Time::ms(800), Time::ms(120), g));
  tasks.push_back(make_task("canneal", 2, Time::ms(800), Time::ms(90), g));

  std::cout << "Consolidated automotive workload on " << platform.name
            << ": " << tasks.size() << " tasks in 3 VMs, reference "
               "utilization "
            << model::total_reference_utilization(tasks) << "\n\n";

  util::Table table(
      {"solution", "schedulable", "cores", "cache used", "bw used"});
  for (const auto solution : core::all_solutions()) {
    util::Rng rng(7);  // same seed: identical clustering randomness
    const auto res = core::solve(solution, tasks, platform, {}, rng);
    table.add_row(core::to_string(solution), res.schedulable ? "yes" : "no",
                  res.schedulable ? static_cast<int>(res.mapping.cores_used)
                                  : 0,
                  res.schedulable ? static_cast<int>(res.mapping.total_cache())
                                  : 0,
                  res.schedulable ? static_cast<int>(res.mapping.total_bw())
                                  : 0);
  }
  table.print(std::cout, "Certification by solution");

  // Show the winning allocation in detail.
  util::Rng rng(7);
  const auto best = core::solve(core::Solution::kHeuristicFlattening, tasks,
                                platform, {}, rng);
  if (best.schedulable) {
    std::cout << "\nHeuristic (flattening) allocation detail:\n";
    for (unsigned k = 0; k < best.mapping.cores_used; ++k) {
      std::printf("  core %u (cache=%2u, bw=%2u):", k, best.mapping.cache[k],
                  best.mapping.bw[k]);
      for (const auto vi : best.mapping.vcpus_on_core[k]) {
        const auto& v = best.vcpus[vi];
        std::printf(" vm%d/%s", v.vm, tasks[v.tasks.front()].label.c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
