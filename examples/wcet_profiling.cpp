// WCET profiling under cache/BW allocations — the §3.3/§5.1 methodology.
//
// The paper obtains every benchmark's e(c,b) surface by running it on a
// dedicated VCPU/core under each allocation and measuring execution time.
// This example does the same against the simulated prototype for a few
// PARSEC profiles and prints a coarse slice of the surface, showing how
// WCET sensitivity to cache and bandwidth varies per benchmark — the
// observation the allocation heuristics exploit.
//
//   $ ./wcet_profiling [benchmark]
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "sim/profiling.h"
#include "util/table.h"
#include "workload/parsec.h"

int main(int argc, char** argv) {
  using namespace vc2m;
  using util::Time;

  std::vector<std::string> names = {"swaptions", "freqmine", "streamcluster"};
  if (argc > 1) names = {argv[1]};

  sim::ProfilingConfig cfg;
  cfg.jobs = 10;
  const std::vector<unsigned> cache_pts = {2, 4, 8, 20};
  const std::vector<unsigned> bw_pts = {1, 2, 5, 20};

  for (const auto& name : names) {
    const auto& profile = workload::find_profile(name);
    const auto w =
        sim::workload_from_profile(profile, Time::ms(10), cfg);

    std::cout << "\nBenchmark '" << name << "' (reference WCET 10ms, "
              << "mem share " << profile.mem_frac << ", bw saturation "
              << profile.bw_sat << " partitions)\n";
    std::vector<std::string> header{"cache \\ bw"};
    for (const unsigned b : bw_pts)
      header.push_back("b=" + std::to_string(b));
    util::Table table(header);
    table.set_precision(2);
    for (const unsigned c : cache_pts) {
      std::vector<std::string> row{"c=" + std::to_string(c)};
      for (const unsigned b : bw_pts) {
        const Time wcet = sim::profile_wcet(w, c, b, cfg);
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.2fms", wcet.to_ms());
        row.push_back(buf);
      }
      table.add_row_vec(std::move(row));
    }
    table.print(std::cout);
  }

  std::cout << "\nNote how the compute-bound benchmark is nearly flat while "
               "the streaming one\nstretches sharply at low bandwidth — the "
               "slowdown-vector clustering in the\nallocator groups tasks by "
               "exactly this shape.\n";
  return 0;
}
