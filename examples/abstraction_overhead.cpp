// The abstraction overhead, end to end — the paper's §1 motivating example.
//
// A single task with period 10ms and WCET 1ms (utilization 0.1) needs a
// VCPU budget of 5.5ms under the existing compositional analysis [13] —
// 55× the task's utilization. This example computes that number with the
// periodic-resource-model analysis, shows how vC2M's two remedies reduce
// it to exactly 1ms, and then *demonstrates* both on the simulator: the
// PRM-sized VCPU and the flattened, release-synchronized VCPU each meet
// every deadline, while a naive 1ms budget without synchronization misses.
//
//   $ ./abstraction_overhead
#include <cstdio>
#include <iostream>

#include "analysis/prm.h"
#include "analysis/regulated.h"
#include "sim/simulation.h"

int main() {
  using namespace vc2m;
  using util::Time;

  const Time p = Time::ms(10);
  const Time e = Time::ms(1);
  const std::vector<analysis::PTask> taskset{{p, e}};

  std::cout << "Task (p=10ms, e=1ms), utilization "
            << e.ratio(p) << "\n\n";

  // 1. Existing compositional analysis (periodic resource model).
  const auto prm_budget = analysis::min_budget_edf(taskset, p);
  // 2. Well-regulated VCPU (supply pattern repeats each period).
  const auto wr_budget = analysis::min_budget_regulated(taskset, p);

  std::printf("minimum VCPU budget at Pi = 10ms:\n");
  std::printf("  existing CSA (PRM)        : %5.2f ms  (bandwidth %.3f — "
              "%.1fx the utilization)\n",
              prm_budget->to_ms(), prm_budget->ratio(p),
              prm_budget->ratio(p) / e.ratio(p));
  std::printf("  well-regulated VCPU       : %5.2f ms  (bandwidth %.3f)\n",
              wr_budget->to_ms(), wr_budget->ratio(p));
  std::printf("  flattening + release sync : %5.2f ms  (bandwidth %.3f — "
              "overhead-free, Theorem 1)\n\n",
              e.to_ms(), e.ratio(p));

  // Demonstrate on the simulated prototype. The task is released 4ms into
  // the hyperperiod — a phase the hypervisor cannot know without the
  // synchronization hypercall.
  // Demonstration on the simulated prototype. Alone on a core, a periodic
  // server IS well-regulated, so the danger only appears with competition:
  // an interfering VCPU (Pi = 7.3ms, Theta = 3.2ms — deliberately not
  // harmonic with 10ms) jitters where our VCPU's budget lands within each
  // period. The task is released 1.5ms out of phase with the VCPU grid.
  auto run = [&](Time budget, bool sync, const char* label) {
    sim::SimConfig cfg;
    cfg.num_cores = 1;
    cfg.release_sync = sync;
    sim::SimVcpuSpec interferer;  // pure budget burner, no tasks
    interferer.period = Time::us(7'300);
    interferer.budget = Time::us(3'200);
    sim::SimVcpuSpec v;
    v.period = p;
    v.budget = budget;
    cfg.vcpus = {interferer, v};
    sim::SimTaskSpec t;
    t.period = p;
    t.cpu_work = e;
    t.offset = Time::us(1'500);
    t.vcpu = 1;
    cfg.tasks = {t};
    sim::Simulation s(cfg);
    s.run(Time::sec(4));
    const auto st = s.stats();
    std::printf("  %-36s: %3llu/%3llu deadlines met, max response %6.3f ms\n",
                label,
                static_cast<unsigned long long>(st.jobs_completed -
                                                st.deadline_misses),
                static_cast<unsigned long long>(st.jobs_completed),
                st.per_task[0].max_response.to_ms());
  };

  std::cout << "simulated with an interfering VCPU and a 1.5ms task phase:\n";
  run(*prm_budget, false, "PRM budget 5.5ms, no sync");
  run(e, false, "budget 1ms, no sync (naive)");
  run(e, true, "budget 1ms + release sync (vC2M)");

  std::cout
      << "\nUnder interference the naive 1ms budget misses — which is why "
         "the existing\nanalysis must provision 5.5ms for every possible "
         "phase. vC2M pins the phase\nwith the synchronization hypercall "
         "and keeps the budget at the utilization.\n";
  return 0;
}
