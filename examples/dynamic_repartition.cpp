// Dynamic cache repartitioning — vCAT's headline capability ([16]) driving
// the simulated prototype through a mode change.
//
// Scenario: a vision VM and a logging VM share the cache. In cruise mode
// the logger owns most of the ways; when the vehicle enters a complex
// intersection (t = 1s) the hypervisor resizes the vCAT regions so the
// vision pipeline gets the cache it needs, and resizes back at t = 2s.
// The example programs the actual vCAT/CAT register model for each mode
// and mirrors the allocation into the simulator, reporting the vision
// task's response times per mode.
//
//   $ ./dynamic_repartition
#include <cstdio>
#include <map>
#include <iostream>

#include "hw/cat.h"
#include "hw/msr.h"
#include "hw/vcat.h"
#include "sim/simulation.h"

int main() {
  using namespace vc2m;
  using util::Time;

  constexpr unsigned kWays = 20;

  // --- hypervisor side: vCAT regions for the two modes -------------------
  hw::MsrFile msr(2);
  hw::Cat cat(msr, kWays, /*num_cos=*/8, /*min_ways=*/2);
  hw::VCat vcat(cat);
  vcat.assign_region(/*vm=*/0, /*offset=*/0, /*count=*/4);    // vision (cruise)
  vcat.assign_region(/*vm=*/1, /*offset=*/4, /*count=*/16);   // logger
  vcat.guest_write_cbm(0, 0, hw::make_mask(0, 4));
  vcat.guest_write_cbm(1, 0, hw::make_mask(0, 16));
  vcat.bind_core(0, /*core=*/0, 0);
  vcat.bind_core(1, /*core=*/1, 0);
  std::printf("cruise mode : vision CBM 0x%05llx, logger CBM 0x%05llx\n",
              static_cast<unsigned long long>(cat.effective_mask(0)),
              static_cast<unsigned long long>(cat.effective_mask(1)));

  // Intersection mode, prepared up front: vision 14 ways, logger 6.
  // (vCAT rewrites all translations transactionally on resize.)
  const auto resize_to_intersection = [&] {
    vcat.resize_region(1, 14, 6);
    vcat.resize_region(0, 0, 14);
    vcat.guest_write_cbm(0, 0, hw::make_mask(0, 14));
  };

  // --- runtime side: the same mode change on the simulator ---------------
  sim::SimConfig cfg;
  cfg.num_cores = 2;
  cfg.cache_partitions = kWays;
  cfg.cache_alloc = {4, 16};  // cruise-mode split
  sim::SimVcpuSpec vision_vcpu;
  vision_vcpu.period = Time::ms(33);  // ~30 fps
  vision_vcpu.budget = Time::ms(33);
  vision_vcpu.core = 0;
  cfg.vcpus.push_back(vision_vcpu);
  sim::SimTaskSpec vision;
  vision.period = Time::ms(33);
  vision.cpu_work = Time::ms(6);
  vision.mem_work_ref = Time::ms(8);
  vision.miss_amp = 2.6;  // cache-hungry
  vision.ws_decay = 6.0;
  cfg.tasks.push_back(vision);

  sim::SimVcpuSpec logger_vcpu;
  logger_vcpu.period = Time::ms(100);
  logger_vcpu.budget = Time::ms(100);
  logger_vcpu.core = 1;
  cfg.vcpus.push_back(logger_vcpu);
  sim::SimTaskSpec logger;
  logger.period = Time::ms(100);
  logger.cpu_work = Time::ms(10);
  logger.mem_work_ref = Time::ms(10);
  logger.miss_amp = 1.4;
  logger.vcpu = 1;
  cfg.tasks.push_back(logger);

  cfg.capture_trace = true;
  sim::Simulation s(cfg);
  // Mode changes: intersection at 1s (vision 4→14 ways, logger 16→6),
  // back to cruise at 2s.
  s.schedule_cache_update(Time::sec(1), 0, 14);
  s.schedule_cache_update(Time::sec(1), 1, 6);
  s.schedule_cache_update(Time::sec(2), 0, 4);
  s.schedule_cache_update(Time::sec(2), 1, 16);

  resize_to_intersection();  // register model mirrors the t=1s change
  std::printf("intersection: vision CBM 0x%05llx, logger CBM 0x%05llx\n\n",
              static_cast<unsigned long long>(cat.effective_mask(0)),
              static_cast<unsigned long long>(cat.effective_mask(1)));

  s.run(Time::sec(3));

  // Per-phase worst response of the vision task, from the trace.
  struct Phase {
    const char* name;
    Time end;
    Time worst = Time::zero();
    int jobs = 0;
  };
  Phase phases[] = {{"cruise (4 ways)", Time::sec(1)},
                    {"intersection (14 ways)", Time::sec(2)},
                    {"cruise again (4 ways)", Time::sec(3)}};
  std::map<std::int64_t, Time> release_of;
  for (const auto& ev : s.trace().events()) {
    if (ev.task != 0) continue;
    if (ev.kind == sim::TraceKind::kJobRelease) release_of[ev.job] = ev.when;
    if (ev.kind == sim::TraceKind::kJobComplete &&
        release_of.count(ev.job)) {
      const Time response = ev.when - release_of[ev.job];
      for (auto& ph : phases)
        if (ev.when <= ph.end) {
          ph.worst = util::max(ph.worst, response);
          ++ph.jobs;
          break;
        }
    }
  }

  std::cout << "simulated vision pipeline (33ms period, per-phase worst "
               "response):\n";
  for (const auto& ph : phases)
    std::printf("  %-24s: %6.2f ms over %d jobs\n", ph.name, ph.worst.to_ms(),
                ph.jobs);

  std::cout << "\nDuring the intersection phase the vision VM holds 14 ways "
               "and its jobs\ncomplete near the full-cache requirement; vCAT "
               "applies both resizes without\nstopping either VM, and the "
               "register model above shows the exact CBMs.\n";
  return 0;
}
