#include "sim/bw_regulator.h"

#include <cmath>

#include "util/error.h"

namespace vc2m::sim {

namespace {
constexpr std::uint8_t kPmiVector = 0xEE;  // vector used by the prototype
}

BwRegulator::BwRegulator(EventQueue& queue, Trace& trace, Config cfg)
    : queue_(queue),
      trace_(trace),
      cfg_(std::move(cfg)),
      msr_(static_cast<unsigned>(cfg_.bw_alloc.size())),
      lapic_(static_cast<unsigned>(cfg_.bw_alloc.size())),
      used_(cfg_.bw_alloc.size(), 0.0),
      lifetime_(cfg_.bw_alloc.size(), 0.0),
      throttled_(cfg_.bw_alloc.size(), false) {
  VC2M_CHECK(!cfg_.bw_alloc.empty());
  VC2M_CHECK(cfg_.regulation_period > util::Time::zero());
  VC2M_CHECK(cfg_.requests_per_partition > 0);
  pcs_.reserve(cfg_.bw_alloc.size());
  for (unsigned core = 0; core < cfg_.bw_alloc.size(); ++core)
    pcs_.emplace_back(msr_, core);
}

void BwRegulator::set_callbacks(CoreFn on_throttle, CoreFn on_unthrottle,
                                std::function<void()> account_all) {
  on_throttle_ = std::move(on_throttle);
  on_unthrottle_ = std::move(on_unthrottle);
  account_all_ = std::move(account_all);
}

double BwRegulator::budget(unsigned core) const {
  return static_cast<double>(cfg_.bw_alloc.at(core)) *
         cfg_.requests_per_partition;
}

void BwRegulator::start() {
  if (!cfg_.enabled) return;
  // Setup (i)–(iv) of §3.2: program + preset the counters, route the PMI,
  // arm the periodic refill timer, clear overflow status.
  lapic_.set_handler(
      [this](unsigned core, std::uint8_t) { enforcer_handler(core); });
  for (unsigned core = 0; core < pcs_.size(); ++core) {
    pcs_[core].program_llc_misses();
    pcs_[core].preset_for_budget(
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(budget(core))));
    pcs_[core].clear_overflow();
    lapic_.configure_pmi(core, kPmiVector, /*masked=*/false);
  }
  queue_.schedule_after(cfg_.regulation_period, [this] { refill_all(); });
}

void BwRegulator::add_requests(unsigned core, double requests) {
  VC2M_CHECK(requests >= 0);
  if (requests == 0) return;
  used_.at(core) += requests;
  lifetime_.at(core) += requests;
  // Mirror whole requests into the architectural counter (the authoritative
  // continuous count keeps the fraction).
  const auto whole = static_cast<std::uint64_t>(requests);
  if (whole > 0 && cfg_.enabled) pcs_[core].count(whole);
}

util::Time BwRegulator::predict_overflow_delay(unsigned core,
                                               double rate) const {
  if (!cfg_.enabled || rate <= 0 || throttled_.at(core))
    return util::Time::max();
  const double remaining = budget(core) - used_.at(core);
  if (remaining <= 0) return util::Time::zero();
  const double delay_ns = remaining / rate;
  constexpr double kMaxNs = 9.0e18;
  if (delay_ns >= kMaxNs) return util::Time::max();
  return util::Time::ns(static_cast<std::int64_t>(std::ceil(delay_ns)));
}

void BwRegulator::trigger_overflow(unsigned core) {
  VC2M_CHECK(cfg_.enabled);
  VC2M_CHECK(!throttled_.at(core));
  // Saturate the PMC so the sticky overflow bit is set exactly as the
  // hardware would, then deliver the PMI (steps 1–2 of Fig. 1).
  pcs_[core].count(pcs_[core].remaining_before_overflow());
  const bool delivered = lapic_.deliver_pmi(core);
  VC2M_CHECK_MSG(delivered, "PMI masked or no handler installed");
}

void BwRegulator::enforcer_handler(unsigned core) {
  // Step 3 of Fig. 1: de-schedule the current VCPU and mark the core
  // throttled; the scheduler keeps it idle until the next refill.
  ScopedProbe probe(probe_ ? &probe_->throttle : nullptr);
  throttled_[core] = true;
  pcs_[core].clear_overflow();
  trace_.record({queue_.now(), TraceKind::kCoreThrottle,
                 static_cast<std::int32_t>(core)});
  if (on_throttle_) on_throttle_(core);
}

void BwRegulator::refill_all() {
  // Charge in-flight execution segments to the period that is ending.
  if (account_all_) account_all_();
  // Step 4 of Fig. 1: replenish every core's budget; invoke the scheduler
  // on each throttled core.
  {
    ScopedProbe probe(probe_ ? &probe_->refill : nullptr);
    for (unsigned core = 0; core < pcs_.size(); ++core) {
      used_[core] = 0;
      pcs_[core].preset_for_budget(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(budget(core))));
      pcs_[core].clear_overflow();
    }
  }
  ++refills_;
  trace_.record({queue_.now(), TraceKind::kBwRefill});
  for (unsigned core = 0; core < pcs_.size(); ++core) {
    if (throttled_[core]) {
      throttled_[core] = false;
      trace_.record({queue_.now(), TraceKind::kCoreUnthrottle,
                     static_cast<std::int32_t>(core)});
      if (on_unthrottle_) on_unthrottle_(core);
    }
  }
  util::Time next = cfg_.regulation_period;
  if (refill_delayer_) next += refill_delayer_();
  queue_.schedule_after(next, [this] { refill_all(); });
}

double BwRegulator::total_requests() const {
  double t = 0;
  for (const double r : lifetime_) t += r;
  return t;
}

}  // namespace vc2m::sim
