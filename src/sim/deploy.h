// Deploy an allocator result onto the simulated prototype.
//
// Bridges the analysis world (cache/BW-aware tasks, VCPU parameter
// surfaces, core mappings) to the runtime world (SimConfig): each VCPU's
// budget is evaluated at its core's allocated (c, b), each task becomes an
// execution model on its VCPU, the regulator is configured with the
// per-core bandwidth budgets, and — for flattening solutions — release
// synchronization is enabled.
//
// Two execution models are supported:
//   - kCpuOnly: a task's job requirement is exactly e(c,b) of the core it
//     landed on, with no memory traffic. This validates the *scheduling*
//     math (EDF feasibility of budgets/mappings) in isolation.
//   - kPhysical: the task runs the physical model of its PARSEC profile
//     (CPU + memory work, miss curve, request stream), with the WCET
//     surfaces re-measured on the simulator beforehand. This exercises the
//     full stack including the regulator.
#pragma once

#include <functional>
#include <vector>

#include "core/hv_alloc.h"
#include "model/platform.h"
#include "model/task.h"
#include "sim/profiling.h"
#include "sim/simulation.h"

namespace vc2m::sim {

enum class ExecModel {
  kCpuOnly,   ///< requirement = e(c,b) of the landing core; no memory
  kPhysical,  ///< PARSEC physical model + bandwidth regulation
};

struct DeployConfig {
  ExecModel exec = ExecModel::kCpuOnly;
  /// Per-task physical models, parallel to the taskset (kPhysical only).
  std::vector<WorkloadModel> workloads;
  /// Enable the release-synchronization hypercalls (Theorem 1 setups).
  bool release_sync = false;
  util::Time regulation_period = util::Time::ms(1);
  double requests_per_partition = 1000.0;
  bool capture_trace = false;
};

/// Build the SimConfig realizing `mapping` for `tasks`/`vcpus` on
/// `platform`. Only schedulable mappings may be deployed.
SimConfig deploy(const model::Taskset& tasks,
                 const std::vector<model::Vcpu>& vcpus,
                 const core::HvAllocResult& mapping,
                 const model::PlatformSpec& platform,
                 const DeployConfig& cfg);

}  // namespace vc2m::sim
