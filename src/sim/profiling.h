// WCET profiling on the simulated prototype — the §3.3 / §5.1 methodology.
//
// The paper obtains each benchmark's e(c,b) surface by running it on a
// dedicated VCPU on a dedicated core under every (cache, bandwidth)
// allocation and measuring execution times. This module reproduces that
// procedure against the simulator: a WorkloadModel (the physical description
// a ParsecProfile induces) is run alone under an allocation and the largest
// observed response time is the measured WCET. Job periods are deliberately
// misaligned with the regulation period so the measurement sweeps the
// throttling phase and captures the worst case.
#pragma once

#include "model/surface.h"
#include "model/task.h"
#include "sim/simulation.h"
#include "workload/parsec.h"

namespace vc2m::sim {

/// Physical description of one benchmark workload: the inputs the simulator
/// needs (split of CPU vs memory time, miss curve, request volume).
struct WorkloadModel {
  util::Time cpu_work;          ///< pure-CPU time per job
  util::Time mem_work_ref;      ///< memory time per job at full cache
  double miss_amp = 1.0;
  double ws_decay = 4.0;
  double mem_requests_ref = 0;  ///< requests per job at full cache
};

struct ProfilingConfig {
  unsigned cache_partitions = 20;  ///< platform C (miss-curve reference)
  util::Time regulation_period = util::Time::ms(1);
  double requests_per_partition = 1000.0;
  unsigned jobs = 25;  ///< runs per allocation, as in §5.1 (25 runs)
};

/// Derive a WorkloadModel from a ParsecProfile scaled to `ref_wcet` (the
/// execution time at the full allocation), consistent with the profiling
/// configuration's bandwidth unit.
WorkloadModel workload_from_profile(const workload::ParsecProfile& profile,
                                    util::Time ref_wcet,
                                    const ProfilingConfig& cfg);

/// Measured WCET of the workload running alone on a dedicated VCPU on a
/// dedicated core with c cache and b bandwidth partitions.
util::Time profile_wcet(const WorkloadModel& w, unsigned c, unsigned b,
                        const ProfilingConfig& cfg);

/// The full measured surface over a resource grid.
model::WcetFn profile_surface(const WorkloadModel& w,
                              const model::ResourceGrid& grid,
                              const ProfilingConfig& cfg);

}  // namespace vc2m::sim
