// Fault injection: plan parsing, the seeded fault streams, and the
// injection entry points the DES calls while it runs (see sim/faults.h).
#include "sim/faults.h"

#include <cmath>
#include <sstream>
#include <vector>

#include "hw/cat.h"
#include "hw/msr.h"
#include "model/task.h"
#include "sim/deploy.h"
#include "sim/simulation.h"
#include "util/error.h"

namespace vc2m::sim {

std::string to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kWcetOverrun: return "wcet-overrun";
    case FaultKind::kReleaseJitter: return "release-jitter";
    case FaultKind::kPartitionRevoke: return "partition-revoke";
    case FaultKind::kRefillDelay: return "refill-delay";
    case FaultKind::kCount_: break;
  }
  return "?";
}

bool FaultSpec::any() const {
  return (overrun_factor > 1.0 && overrun_prob > 0) ||
         (max_release_jitter > util::Time::zero() && jitter_prob > 0) ||
         revoke_interval > util::Time::zero() ||
         (max_refill_delay > util::Time::zero() && refill_delay_prob > 0);
}

void FaultSpec::validate() const {
  const auto check_prob = [](double p, const char* what) {
    if (!(p >= 0.0 && p <= 1.0))
      throw util::Error(std::string("fault spec: ") + what +
                        " must be a probability in [0, 1]");
  };
  if (!(overrun_factor >= 1.0) || !std::isfinite(overrun_factor))
    throw util::Error("fault spec: overrun-factor must be finite and >= 1");
  if (overrun_factor > 100.0)
    throw util::Error("fault spec: overrun-factor above 100 is not plausible");
  check_prob(overrun_prob, "overrun-prob");
  check_prob(jitter_prob, "jitter-prob");
  check_prob(refill_delay_prob, "refill-prob");
  if (!(low_crit_frac >= 0.0 && low_crit_frac <= 1.0))
    throw util::Error("fault spec: low-crit-frac must be in [0, 1]");
  if (max_release_jitter.is_negative())
    throw util::Error("fault spec: jitter-ms must be >= 0");
  if (max_refill_delay.is_negative())
    throw util::Error("fault spec: refill-delay-ms must be >= 0");
  if (revoke_interval.is_negative())
    throw util::Error("fault spec: revoke-interval-ms must be >= 0");
  if (revoke_interval > util::Time::zero()) {
    if (revoke_window <= util::Time::zero())
      throw util::Error("fault spec: revoke-window-ms must be > 0");
    if (revoke_ways < 1)
      throw util::Error("fault spec: revoke-ways must be >= 1");
  }
}

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  std::stringstream ss(spec);
  std::string item;
  const auto parse_double = [](const std::string& key,
                               const std::string& value) {
    std::size_t used = 0;
    double v = 0;
    try {
      v = std::stod(value, &used);
    } catch (const std::exception&) {
      throw util::Error("fault spec: bad value for " + key + ": " + value);
    }
    if (used != value.size() || !std::isfinite(v))
      throw util::Error("fault spec: bad value for " + key + ": " + value);
    return v;
  };
  const auto parse_ms = [&](const std::string& key, const std::string& value) {
    return util::Time::ns(static_cast<std::int64_t>(
        parse_double(key, value) * 1e6 + 0.5));
  };
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size())
      throw util::Error("fault spec: expected key=value, got: " + item);
    const std::string key = item.substr(0, eq);
    const std::string value = item.substr(eq + 1);
    if (key == "overrun-factor") {
      out.overrun_factor = parse_double(key, value);
    } else if (key == "overrun-prob") {
      out.overrun_prob = parse_double(key, value);
    } else if (key == "jitter-ms") {
      out.max_release_jitter = parse_ms(key, value);
    } else if (key == "jitter-prob") {
      out.jitter_prob = parse_double(key, value);
    } else if (key == "revoke-interval-ms") {
      out.revoke_interval = parse_ms(key, value);
    } else if (key == "revoke-window-ms") {
      out.revoke_window = parse_ms(key, value);
    } else if (key == "revoke-ways") {
      const double w = parse_double(key, value);
      if (w < 1 || w != std::floor(w))
        throw util::Error("fault spec: revoke-ways must be a positive integer");
      out.revoke_ways = static_cast<unsigned>(w);
    } else if (key == "refill-delay-ms") {
      out.max_refill_delay = parse_ms(key, value);
    } else if (key == "refill-prob") {
      out.refill_delay_prob = parse_double(key, value);
    } else if (key == "low-crit-frac") {
      out.low_crit_frac = parse_double(key, value);
    } else if (key == "seed") {
      const double s = parse_double(key, value);
      if (s < 0 || s != std::floor(s))
        throw util::Error("fault spec: seed must be a non-negative integer");
      out.seed = static_cast<std::uint64_t>(s);
    } else {
      throw util::Error("fault spec: unknown key: " + key);
    }
  }
  out.validate();
  return out;
}

void Simulation::setup_faults() {
  degrade_until_.assign(cores_.size(), util::Time::zero());
  const FaultSpec& f = cfg_.faults;
  f.validate();
  // Fork every stream in a fixed order whether or not its class is active,
  // so enabling one class never perturbs another's draws.
  util::Rng master(f.seed);
  fault_overrun_rng_ = master.fork();
  fault_jitter_rng_ = master.fork();
  fault_revoke_rng_ = master.fork();
  fault_refill_rng_ = master.fork();
  util::Rng crit_rng = master.fork();

  if (f.low_crit_frac > 0)
    for (auto& t : tasks_)
      if (t.spec.criticality == 1 && crit_rng.bernoulli(f.low_crit_frac))
        t.criticality = 0;

  if (f.max_refill_delay > util::Time::zero())
    regulator_->set_refill_delayer([this] { return draw_refill_delay(); });

  if (f.revoke_interval > util::Time::zero()) {
    // Mirror the deployed plan into the CAT model when it is disjoint, so
    // revocations run the real COS programming sequence; an overlapping
    // plan (e.g. the default "every core gets the whole cache") is still
    // revocable at the model level, just without CBM rewrites.
    unsigned total = 0;
    for (const auto& c : cores_) total += c.cache;
    if (total <= cfg_.cache_partitions) {
      cat_msr_ = std::make_unique<hw::MsrFile>(cfg_.num_cores);
      cat_ = std::make_unique<hw::Cat>(*cat_msr_, cfg_.cache_partitions,
                                       cfg_.num_cores + 2, /*min_ways=*/1);
      cat_->program_disjoint_plan(cfg_.cache_alloc);
    }
    schedule_next_revocation();
  }
}

double Simulation::draw_overrun_factor(std::size_t /*task_index*/) {
  const FaultSpec& f = cfg_.faults;
  if (f.overrun_factor <= 1.0 || f.overrun_prob <= 0) return 1.0;
  return fault_overrun_rng_.bernoulli(f.overrun_prob) ? f.overrun_factor : 1.0;
}

util::Time Simulation::draw_release_jitter(std::size_t task_index) {
  const FaultSpec& f = cfg_.faults;
  if (f.max_release_jitter <= util::Time::zero() || f.jitter_prob <= 0)
    return util::Time::zero();
  if (!fault_jitter_rng_.bernoulli(f.jitter_prob)) return util::Time::zero();
  // Clamp below the period so consecutive releases of one task never
  // reorder (the next release stays on the nominal grid).
  const util::Time cap = util::min(
      f.max_release_jitter,
      tasks_[task_index].spec.period - util::Time::ns(1));
  if (cap <= util::Time::zero()) return util::Time::zero();
  return util::Time::ns(fault_jitter_rng_.uniform_int(1, cap.raw_ns()));
}

util::Time Simulation::draw_refill_delay() {
  const FaultSpec& f = cfg_.faults;
  if (!fault_refill_rng_.bernoulli(f.refill_delay_prob))
    return util::Time::zero();
  const util::Time delay =
      util::Time::ns(fault_refill_rng_.uniform_int(
          1, f.max_refill_delay.raw_ns()));
  ++faults_injected_;
  trace_.record({queue_.now(), TraceKind::kFaultRefillDelay, -1, -1, -1,
                 delay.raw_ns()});
  if (observer_) observer_->on_fault_injected(FaultKind::kRefillDelay);
  return delay;
}

void Simulation::schedule_next_revocation() {
  // Jitter the gap to [0.5, 1.5) of the nominal interval so revocations
  // drift off any periodic resonance with the workload.
  const double u = fault_revoke_rng_.uniform(0.5, 1.5);
  const util::Time gap = util::Time::ns(static_cast<std::int64_t>(
      static_cast<double>(cfg_.faults.revoke_interval.raw_ns()) * u + 0.5));
  queue_.schedule(queue_.now() + util::max(gap, util::Time::ns(1)),
                  [this] { inject_revocation(); });
}

void Simulation::inject_revocation() {
  const FaultSpec& f = cfg_.faults;
  const std::size_t core = fault_revoke_rng_.index(cores_.size());
  const unsigned current = cores_[core].cache;
  const unsigned target = f.revoke_ways < current ? f.revoke_ways : current;
  if (revoke_active_ || target == current) {
    // Nothing to shrink (or a revocation is still in flight): skip this
    // occurrence, keep the cadence.
    schedule_next_revocation();
    return;
  }
  revoke_active_ = true;
  revoked_core_ = core;
  revoked_saved_ways_ = current;
  ++faults_injected_;
  trace_.record({queue_.now(), TraceKind::kPartitionRevoke,
                 static_cast<std::int32_t>(core), -1, -1,
                 static_cast<std::int64_t>(target)});
  if (observer_) observer_->on_fault_injected(FaultKind::kPartitionRevoke);
  apply_cache_update(core, target);
  queue_.schedule(queue_.now() + f.revoke_window,
                  [this] { restore_revocation(); });
}

void Simulation::restore_revocation() {
  VC2M_CHECK(revoke_active_ && revoked_core_ != kNone);
  const std::size_t core = revoked_core_;
  trace_.record({queue_.now(), TraceKind::kPartitionRestore,
                 static_cast<std::int32_t>(core), -1, -1,
                 static_cast<std::int64_t>(revoked_saved_ways_)});
  apply_cache_update(core, revoked_saved_ways_);
  revoke_active_ = false;
  revoked_core_ = kNone;
  schedule_next_revocation();
}

std::function<bool(const model::Taskset&, const core::SolveResult&,
                   std::uint64_t)>
make_fault_validator(const model::PlatformSpec& platform, FaultSpec spec,
                     EnforcementConfig enforcement, int hyperperiods) {
  spec.validate();
  VC2M_CHECK_MSG(hyperperiods >= 1, "fault validator needs >= 1 hyperperiod");
  return [platform, spec, enforcement, hyperperiods](
             const model::Taskset& tasks, const core::SolveResult& solved,
             std::uint64_t stream_seed) {
    if (!solved.schedulable) return false;
    DeployConfig dc;
    dc.exec = ExecModel::kCpuOnly;
    SimConfig sc =
        deploy(tasks, solved.vcpus, solved.mapping, platform, dc);
    sc.faults = spec;
    sc.faults.seed = stream_seed;  // the per-item experiment stream
    sc.enforcement = enforcement;
    Simulation sim(std::move(sc));
    sim.run(model::hyperperiod(tasks) * hyperperiods);
    const SimStats st = sim.stats();
    for (std::size_t i = 0; i < st.per_task.size(); ++i) {
      if (st.task_criticality[i] < 1) continue;  // sheddable by design
      if (st.per_task[i].deadline_misses > 0 || st.per_task[i].killed > 0)
        return false;
    }
    return true;
  };
}

}  // namespace vc2m::sim
