#include "sim/trace.h"

namespace vc2m::sim {

std::string to_string(TraceKind k) {
  switch (k) {
    case TraceKind::kJobRelease: return "job-release";
    case TraceKind::kJobComplete: return "job-complete";
    case TraceKind::kDeadlineMiss: return "deadline-miss";
    case TraceKind::kVcpuRelease: return "vcpu-release";
    case TraceKind::kVcpuBudgetExhausted: return "vcpu-budget-exhausted";
    case TraceKind::kVcpuSchedule: return "vcpu-schedule";
    case TraceKind::kVcpuDeschedule: return "vcpu-deschedule";
    case TraceKind::kTaskDispatch: return "task-dispatch";
    case TraceKind::kCoreThrottle: return "core-throttle";
    case TraceKind::kCoreUnthrottle: return "core-unthrottle";
    case TraceKind::kBwRefill: return "bw-refill";
    case TraceKind::kHypercall: return "hypercall";
    case TraceKind::kFaultWcetOverrun: return "fault-wcet-overrun";
    case TraceKind::kFaultReleaseJitter: return "fault-release-jitter";
    case TraceKind::kPartitionRevoke: return "partition-revoke";
    case TraceKind::kPartitionRestore: return "partition-restore";
    case TraceKind::kCosProgram: return "cos-program";
    case TraceKind::kFaultRefillDelay: return "fault-refill-delay";
    case TraceKind::kJobKilled: return "job-killed";
    case TraceKind::kJobDeferred: return "job-deferred";
    case TraceKind::kTaskSuspend: return "task-suspend";
    case TraceKind::kTaskResume: return "task-resume";
    case TraceKind::kVcpuBudgetOverrun: return "vcpu-budget-overrun";
    case TraceKind::kCount_: break;
  }
  return "?";
}

std::optional<TraceKind> trace_kind_from_string(const std::string& name) {
  for (std::size_t k = 0; k < static_cast<std::size_t>(TraceKind::kCount_);
       ++k)
    if (to_string(static_cast<TraceKind>(k)) == name)
      return static_cast<TraceKind>(k);
  return std::nullopt;
}

std::vector<TraceEvent> Trace::events_of(TraceKind k) const {
  std::vector<TraceEvent> out;
  out.reserve(count(k));
  for (const auto& ev : events_)
    if (ev.kind == k) out.push_back(ev);
  return out;
}

}  // namespace vc2m::sim
