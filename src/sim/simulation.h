// The vC2M prototype as a discrete-event simulation.
//
// Reproduces the runtime behaviour of the paper's Xen + LITMUS^RT prototype:
//   - a hypervisor-level partitioned-EDF scheduler (the modified RTDS) over
//     periodic-server VCPUs, with the deterministic tie-break of §3.2
//     (absolute deadline, then smaller period, then smaller VCPU index) and
//     throttled-core awareness;
//   - a guest-level EDF scheduler running each VM's tasks on its VCPUs
//     (tasks are pinned to VCPUs — partitioned at both levels);
//   - the memory-bandwidth regulator (BwRegulator), driven by the per-task
//     memory request rates the execution model derives from the core's
//     cache allocation;
//   - task↔VCPU release synchronization via the customized hypercall, with
//     independent VM/hypervisor clock bases (the protocol transfers only
//     the interval L, so it is immune to clock skew);
//   - per-job deadline-miss detection and a full scheduling trace.
//
// Execution model: a job's requirement on a core with c cache partitions is
//   R(c) = cpu_work + mem_work_ref · miss(c)
// and it issues memory requests uniformly at rate
//   ρ(c) = mem_requests_ref · miss(c) / R(c)
// while it executes, where miss(c) is the workload::miss_curve. Restricted
// bandwidth does NOT change R(c); it manifests through regulator throttling,
// exactly as on the real machine — the simulator *produces* e(c,b) rather
// than consuming it (profile with sim::profile_wcet to obtain surfaces).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "sim/bw_regulator.h"
#include "sim/event_queue.h"
#include "sim/hooks.h"
#include "sim/probe.h"
#include "sim/trace.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace vc2m::sim {

inline constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

struct SimTaskSpec {
  util::Time period;
  /// First release, in VM time, relative to task initialization (t = 0).
  util::Time offset = util::Time::zero();
  /// Pure-CPU portion of one job.
  util::Time cpu_work = util::Time::zero();
  /// Memory-stall portion of one job at the full cache allocation.
  util::Time mem_work_ref = util::Time::zero();
  /// Miss-curve parameters (see workload::miss_curve).
  double miss_amp = 1.0;
  double ws_decay = 4.0;
  /// Memory requests one job issues at the full cache allocation.
  double mem_requests_ref = 0.0;
  /// Sporadic arrivals: each release is delayed by a uniform random amount
  /// in [0, arrival_jitter] beyond the minimum inter-arrival `period`
  /// (zero = strictly periodic, the paper's model). Seeded by
  /// SimConfig::jitter_seed, so runs are reproducible.
  util::Time arrival_jitter = util::Time::zero();
  /// VCPU (index into SimConfig::vcpus) this task is pinned to.
  std::size_t vcpu = 0;
};

struct SimVcpuSpec {
  util::Time period;   ///< Π
  util::Time budget;   ///< Θ as provisioned for this VCPU's core
  std::size_t core = 0;
  int vm = 0;
  /// First release relative to t = 0 (ignored when release_sync is on —
  /// the hypercall then sets the first release).
  util::Time offset = util::Time::zero();
  /// Periodic (idling) server: consume budget even with no pending job.
  /// Required for well-regulated execution (Theorem 2); a non-idling
  /// (deferrable-style) server suspends when idle.
  bool idling_server = true;
};

struct SimConfig {
  unsigned num_cores = 1;
  /// Total cache partitions C (the miss curves need the reference point).
  unsigned cache_partitions = 20;
  /// Cache partitions allocated per core (size num_cores; defaults to C).
  std::vector<unsigned> cache_alloc;
  /// Bandwidth partitions allocated per core (size num_cores; defaults to
  /// the regulator being effectively unconstrained).
  std::vector<unsigned> bw_alloc;
  bool bw_regulation = false;
  util::Time regulation_period = util::Time::ms(1);
  double requests_per_partition = 1000.0;
  /// Shared-memory-bus contention model for *unregulated* interference
  /// studies (§3.3): when the aggregate delivered request rate of the
  /// running tasks exceeds the bus capacity, memory-active cores slow down
  /// (proportional bus shares). With BW regulation enabled and per-core
  /// budgets that sum to at most the capacity, the bus cannot saturate —
  /// which is precisely the isolation vC2M provides.
  bool bus_contention = false;
  /// Bus capacity in requests per regulation period; 0 means "the total
  /// bandwidth partitions' worth" (B · requests_per_partition).
  double bus_requests_per_period = 0;
  /// Task↔VCPU release synchronization (§3.2).
  bool release_sync = false;
  util::Time hypercall_delay = util::Time::us(1);
  /// How the release time crosses the VM/hypervisor boundary. The paper's
  /// design passes the *interval* L = vt_r − vt_0 precisely because the two
  /// clocks need not agree; passing the absolute VM-clock release time
  /// (kAbsoluteTime) mis-arms the VCPU by the clock skew.
  enum class SyncMode { kInterval, kAbsoluteTime };
  SyncMode sync_mode = SyncMode::kInterval;
  /// Offset of the VM's clock relative to the hypervisor's (wall) clock:
  /// VM time = wall time + skew. Only observable through kAbsoluteTime.
  util::Time vm_clock_skew = util::Time::zero();
  /// Cost charged (as budget + wall time) whenever a core switches to a
  /// different VCPU — models context-switch/cache-reload overhead. The
  /// analysis accounts for it by inflating VCPU budgets (§4.1 Remarks).
  util::Time vcpu_switch_cost = util::Time::zero();
  /// Record full event traces (counters are always on).
  bool capture_trace = false;
  /// Seed for sporadic arrival jitter.
  std::uint64_t jitter_seed = 1;

  std::vector<SimVcpuSpec> vcpus;
  std::vector<SimTaskSpec> tasks;
};

struct TaskStats {
  std::uint64_t released = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  util::Time max_tardiness = util::Time::zero();
  /// Largest observed response time (completion − release) — the measured
  /// WCET in the §3.3 profiling methodology.
  util::Time max_response = util::Time::zero();
  /// Streaming response-time statistics in milliseconds (mean/stddev/min).
  util::OnlineStats response_ms;
};

struct VcpuStats {
  std::uint64_t releases = 0;      ///< budget replenishments
  std::uint64_t exhaustions = 0;   ///< periods that ran the budget dry
  std::uint64_t switches_in = 0;   ///< times scheduled onto the core
  util::Time budget_consumed = util::Time::zero();
};

struct SimStats {
  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t deadline_misses = 0;
  util::Time max_tardiness = util::Time::zero();
  std::uint64_t vcpu_context_switches = 0;
  std::uint64_t task_dispatches = 0;
  std::uint64_t throttles = 0;
  std::uint64_t refills = 0;
  double total_mem_requests = 0;
  std::vector<double> core_busy_fraction;
  /// Wall time each core spent throttled by the BW regulator.
  std::vector<util::Time> core_throttled_time;
  std::vector<TaskStats> per_task;
  std::vector<VcpuStats> per_vcpu;
};

class Simulation {
 public:
  explicit Simulation(SimConfig cfg);
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Run the simulation for `duration` of simulated time (from t = 0).
  void run(util::Time duration);

  const Trace& trace() const { return trace_; }
  SimStats stats() const;
  const SimConfig& config() const { return cfg_; }
  const BwRegulator& regulator() const { return *regulator_; }

  /// Host-overhead probe for the Table 1/2 benches (owned by the caller,
  /// must outlive the simulation).
  void set_probe(HostProbe* probe);

  /// Semantic-event observer (src/obs metrics recorder; owned by the
  /// caller, must outlive the simulation). May be null.
  void set_observer(SimObserver* observer) { observer_ = observer; }

  /// Dynamic cache repartitioning (the vCAT capability): at `when`, core
  /// `core_index` switches to `ways` cache partitions. In-flight jobs keep
  /// their executed progress; the *remaining* work is re-scaled to the new
  /// miss rate, and memory request rates follow. Call before or during
  /// run() with `when` in the future.
  void schedule_cache_update(util::Time when, std::size_t core_index,
                             unsigned ways);

  /// Runtime VCPU parameter change (the `xl sched-rtds` operation): the
  /// new (period, budget) take effect at the VCPU's next replenishment —
  /// the current server period runs out under the old contract, so budget
  /// accounting is never broken mid-period.
  void schedule_vcpu_update(util::Time when, std::size_t vcpu_index,
                            util::Time period, util::Time budget);

 private:
  // ----- runtime state -----
  struct Job {
    std::int64_t seq = 0;
    util::Time release;
    util::Time deadline;
    util::Time remaining;
    bool missed = false;
  };
  struct TaskRt {
    SimTaskSpec spec;
    util::Time requirement;  // R(c) on its VCPU's core
    double req_rate = 0;     // requests per ns while executing
    std::deque<Job> pending; // released, incomplete jobs (FIFO = EDF here)
    std::int64_t next_seq = 0;
    TaskStats stats;
  };
  struct VcpuRt {
    SimVcpuSpec spec;
    std::vector<std::size_t> tasks;   // indices into tasks_
    bool released = false;            // in an active period with budget
    bool sync_applied = false;        // first hypercall already taken
    util::Time next_release = util::Time::max();
    util::Time deadline = util::Time::zero();
    util::Time budget_left = util::Time::zero();
    EventQueue::Id release_event = EventQueue::kInvalidId;
    /// Parameter change staged by schedule_vcpu_update; applied at the
    /// next replenishment.
    bool pending_update = false;
    util::Time pending_period = util::Time::zero();
    util::Time pending_budget = util::Time::zero();
    VcpuStats stats;
  };
  struct CoreRt {
    std::vector<std::size_t> vcpus;   // indices into vcpus_
    std::size_t running_vcpu = kNone;
    std::size_t running_task = kNone; // kNone while burning idle budget
    util::Time seg_start = util::Time::zero();
    EventQueue::Id seg_end_event = EventQueue::kInvalidId;
    bool resched_pending = false;
    util::Time busy = util::Time::zero();
    /// Remaining context-switch overhead to burn before the incoming
    /// VCPU's task may execute (consumes budget and wall time).
    util::Time overhead_left = util::Time::zero();
    util::Time throttled_time = util::Time::zero();
    util::Time throttle_start = util::Time::zero();
    unsigned cache = 0;
    unsigned bw = 0;
    /// Execution speed in (0, 1]: below 1 only when the shared bus is
    /// saturated and this core's memory requests are being stalled.
    double exec_rate = 1.0;
  };

  // ----- setup (simulation.cpp) -----
  void setup();
  void issue_release_sync(std::size_t task_index);
  /// (Re)derive a task's requirement R(c) and request rate from its
  /// landing core's current cache allocation.
  void refresh_task_model(std::size_t task_index);
  void apply_cache_update(std::size_t core_index, unsigned ways);

  // ----- hypervisor level (hypervisor.cpp) -----
  void defer_reschedule(std::size_t core_index);
  void plan_segment(std::size_t core_index);
  void recompute_bus_rates();
  void vcpu_release(std::size_t vcpu_index);
  void arm_vcpu_release(std::size_t vcpu_index, util::Time when);
  void interrupt_core(std::size_t core_index);
  void handle_boundaries(std::size_t core_index);
  void account_core(std::size_t core_index);
  void reschedule_core(std::size_t core_index);
  void segment_end(std::size_t core_index);
  std::size_t pick_vcpu(const CoreRt& core) const;
  bool vcpu_eligible(const VcpuRt& v) const;
  void on_throttle(unsigned core_index);
  void on_unthrottle(unsigned core_index);

  // ----- guest level (guest.cpp) -----
  void task_release(std::size_t task_index);
  void job_deadline_check(std::size_t task_index, std::int64_t seq);
  void complete_job(std::size_t task_index);
  std::size_t pick_task(const VcpuRt& v) const;

  SimConfig cfg_;
  EventQueue queue_;
  Trace trace_;
  std::unique_ptr<BwRegulator> regulator_;
  std::vector<TaskRt> tasks_;
  std::vector<VcpuRt> vcpus_;
  std::vector<CoreRt> cores_;
  util::Time duration_ = util::Time::zero();
  util::Rng jitter_rng_{1};
  std::uint64_t vcpu_switches_ = 0;
  std::uint64_t task_dispatches_ = 0;
  HostProbe* probe_ = nullptr;
  SimObserver* observer_ = nullptr;
};

}  // namespace vc2m::sim
