// The vC2M prototype as a discrete-event simulation.
//
// Reproduces the runtime behaviour of the paper's Xen + LITMUS^RT prototype:
//   - a hypervisor-level partitioned-EDF scheduler (the modified RTDS) over
//     periodic-server VCPUs, with the deterministic tie-break of §3.2
//     (absolute deadline, then smaller period, then smaller VCPU index) and
//     throttled-core awareness;
//   - a guest-level EDF scheduler running each VM's tasks on its VCPUs
//     (tasks are pinned to VCPUs — partitioned at both levels);
//   - the memory-bandwidth regulator (BwRegulator), driven by the per-task
//     memory request rates the execution model derives from the core's
//     cache allocation;
//   - task↔VCPU release synchronization via the customized hypercall, with
//     independent VM/hypervisor clock bases (the protocol transfers only
//     the interval L, so it is immune to clock skew);
//   - per-job deadline-miss detection and a full scheduling trace.
//
// Execution model: a job's requirement on a core with c cache partitions is
//   R(c) = cpu_work + mem_work_ref · miss(c)
// and it issues memory requests uniformly at rate
//   ρ(c) = mem_requests_ref · miss(c) / R(c)
// while it executes, where miss(c) is the workload::miss_curve. Restricted
// bandwidth does NOT change R(c); it manifests through regulator throttling,
// exactly as on the real machine — the simulator *produces* e(c,b) rather
// than consuming it (profile with sim::profile_wcet to obtain surfaces).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <memory>
#include <vector>

#include "sim/bw_regulator.h"
#include "sim/enforcement.h"
#include "sim/event_queue.h"
#include "sim/faults.h"
#include "sim/hooks.h"
#include "sim/probe.h"
#include "sim/trace.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace vc2m::hw {
class Cat;
class MsrFile;
}  // namespace vc2m::hw

namespace vc2m::sim {

inline constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

struct SimTaskSpec {
  util::Time period;
  /// First release, in VM time, relative to task initialization (t = 0).
  util::Time offset = util::Time::zero();
  /// Pure-CPU portion of one job.
  util::Time cpu_work = util::Time::zero();
  /// Memory-stall portion of one job at the full cache allocation.
  util::Time mem_work_ref = util::Time::zero();
  /// Miss-curve parameters (see workload::miss_curve).
  double miss_amp = 1.0;
  double ws_decay = 4.0;
  /// Memory requests one job issues at the full cache allocation.
  double mem_requests_ref = 0.0;
  /// Sporadic arrivals: each release is delayed by a uniform random amount
  /// in [0, arrival_jitter] beyond the minimum inter-arrival `period`
  /// (zero = strictly periodic, the paper's model). Seeded by
  /// SimConfig::jitter_seed, so runs are reproducible.
  util::Time arrival_jitter = util::Time::zero();
  /// Criticality level: 0 = sheddable under EnforcementPolicy::kDegrade,
  /// >= 1 = never shed. The fault plan's low_crit_frac demotes a seeded
  /// subset of default-criticality tasks at setup.
  int criticality = 1;
  /// VCPU (index into SimConfig::vcpus) this task is pinned to.
  std::size_t vcpu = 0;
};

struct SimVcpuSpec {
  util::Time period;   ///< Π
  util::Time budget;   ///< Θ as provisioned for this VCPU's core
  std::size_t core = 0;
  int vm = 0;
  /// First release relative to t = 0 (ignored when release_sync is on —
  /// the hypercall then sets the first release).
  util::Time offset = util::Time::zero();
  /// Periodic (idling) server: consume budget even with no pending job.
  /// Required for well-regulated execution (Theorem 2); a non-idling
  /// (deferrable-style) server suspends when idle.
  bool idling_server = true;
};

struct SimConfig {
  unsigned num_cores = 1;
  /// Total cache partitions C (the miss curves need the reference point).
  unsigned cache_partitions = 20;
  /// Cache partitions allocated per core (size num_cores; defaults to C).
  std::vector<unsigned> cache_alloc;
  /// Bandwidth partitions allocated per core (size num_cores; defaults to
  /// the regulator being effectively unconstrained).
  std::vector<unsigned> bw_alloc;
  bool bw_regulation = false;
  util::Time regulation_period = util::Time::ms(1);
  double requests_per_partition = 1000.0;
  /// Shared-memory-bus contention model for *unregulated* interference
  /// studies (§3.3): when the aggregate delivered request rate of the
  /// running tasks exceeds the bus capacity, memory-active cores slow down
  /// (proportional bus shares). With BW regulation enabled and per-core
  /// budgets that sum to at most the capacity, the bus cannot saturate —
  /// which is precisely the isolation vC2M provides.
  bool bus_contention = false;
  /// Bus capacity in requests per regulation period; 0 means "the total
  /// bandwidth partitions' worth" (B · requests_per_partition).
  double bus_requests_per_period = 0;
  /// Task↔VCPU release synchronization (§3.2).
  bool release_sync = false;
  util::Time hypercall_delay = util::Time::us(1);
  /// How the release time crosses the VM/hypervisor boundary. The paper's
  /// design passes the *interval* L = vt_r − vt_0 precisely because the two
  /// clocks need not agree; passing the absolute VM-clock release time
  /// (kAbsoluteTime) mis-arms the VCPU by the clock skew.
  enum class SyncMode { kInterval, kAbsoluteTime };
  SyncMode sync_mode = SyncMode::kInterval;
  /// Offset of the VM's clock relative to the hypervisor's (wall) clock:
  /// VM time = wall time + skew. Only observable through kAbsoluteTime.
  util::Time vm_clock_skew = util::Time::zero();
  /// Cost charged (as budget + wall time) whenever a core switches to a
  /// different VCPU — models context-switch/cache-reload overhead. The
  /// analysis accounts for it by inflating VCPU budgets (§4.1 Remarks).
  util::Time vcpu_switch_cost = util::Time::zero();
  /// Record full event traces (counters are always on).
  bool capture_trace = false;
  /// Seed for sporadic arrival jitter.
  std::uint64_t jitter_seed = 1;
  /// Fault-injection plan (sim/faults.h); inert when !faults.any().
  FaultSpec faults;
  /// What the scheduler does on WCET/budget overruns (sim/enforcement.h).
  EnforcementConfig enforcement;

  std::vector<SimVcpuSpec> vcpus;
  std::vector<SimTaskSpec> tasks;
};

struct TaskStats {
  std::uint64_t released = 0;
  std::uint64_t completed = 0;
  std::uint64_t deadline_misses = 0;
  util::Time max_tardiness = util::Time::zero();
  /// Largest observed response time (completion − release) — the measured
  /// WCET in the §3.3 profiling methodology.
  util::Time max_response = util::Time::zero();
  /// Streaming response-time statistics in milliseconds (mean/stddev/min).
  util::OnlineStats response_ms;
  std::uint64_t killed = 0;    ///< jobs aborted by EnforcementPolicy::kKill
  std::uint64_t deferred = 0;  ///< jobs deferred by EnforcementPolicy::kThrottle
};

struct VcpuStats {
  std::uint64_t releases = 0;      ///< budget replenishments
  std::uint64_t exhaustions = 0;   ///< periods that ran the budget dry
  std::uint64_t switches_in = 0;   ///< times scheduled onto the core
  util::Time budget_consumed = util::Time::zero();
};

struct SimStats {
  std::uint64_t jobs_released = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t deadline_misses = 0;
  util::Time max_tardiness = util::Time::zero();
  std::uint64_t vcpu_context_switches = 0;
  std::uint64_t task_dispatches = 0;
  std::uint64_t throttles = 0;
  std::uint64_t refills = 0;
  double total_mem_requests = 0;
  std::vector<double> core_busy_fraction;
  /// Wall time each core spent throttled by the BW regulator.
  std::vector<util::Time> core_throttled_time;
  std::vector<TaskStats> per_task;
  std::vector<VcpuStats> per_vcpu;
  /// Fault-injection / enforcement activity (zero when no faults planned
  /// and the strict policy holds).
  std::uint64_t faults_injected = 0;
  std::uint64_t jobs_killed = 0;
  std::uint64_t jobs_deferred = 0;
  std::uint64_t task_suspensions = 0;
  std::uint64_t vcpu_budget_overruns = 0;
  /// Effective per-task criticality after the fault plan's low_crit_frac
  /// demotions (parallel to per_task).
  std::vector<int> task_criticality;
};

class Simulation {
 public:
  explicit Simulation(SimConfig cfg);
  ~Simulation();
  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  /// Run the simulation for `duration` of simulated time (from t = 0).
  void run(util::Time duration);

  const Trace& trace() const { return trace_; }
  SimStats stats() const;
  const SimConfig& config() const { return cfg_; }
  const BwRegulator& regulator() const { return *regulator_; }

  /// Host-overhead probe for the Table 1/2 benches (owned by the caller,
  /// must outlive the simulation).
  void set_probe(HostProbe* probe);

  /// Semantic-event observer (src/obs metrics recorder; owned by the
  /// caller, must outlive the simulation). May be null.
  void set_observer(SimObserver* observer) { observer_ = observer; }

  /// Dynamic cache repartitioning (the vCAT capability): at `when`, core
  /// `core_index` switches to `ways` cache partitions. In-flight jobs keep
  /// their executed progress; the *remaining* work is re-scaled to the new
  /// miss rate, and memory request rates follow. Call before or during
  /// run() with `when` in the future.
  void schedule_cache_update(util::Time when, std::size_t core_index,
                             unsigned ways);

  /// Runtime VCPU parameter change (the `xl sched-rtds` operation): the
  /// new (period, budget) take effect at the VCPU's next replenishment —
  /// the current server period runs out under the old contract, so budget
  /// accounting is never broken mid-period.
  void schedule_vcpu_update(util::Time when, std::size_t vcpu_index,
                            util::Time period, util::Time budget);

 private:
  // ----- runtime state -----
  struct Job {
    std::int64_t seq = 0;
    util::Time release;
    util::Time deadline;
    util::Time remaining;
    bool missed = false;
    /// Enforcement allowance left — the modeled WCET at release, rescaled
    /// alongside `remaining` on cache updates. Tracked only under
    /// job-budget-enforcing policies (enforces_job_budget).
    util::Time budget_left = util::Time::zero();
    bool enforced = false;  ///< allowance hit zero; enforcement applied
    bool deferred = false;  ///< kThrottle: parked until next replenishment
  };
  struct TaskRt {
    SimTaskSpec spec;
    util::Time requirement;  // R(c) on its VCPU's core
    double req_rate = 0;     // requests per ns while executing
    std::deque<Job> pending; // released, incomplete jobs (FIFO = EDF here)
    std::int64_t next_seq = 0;
    int criticality = 1;     // spec.criticality after low_crit_frac demotion
    bool suspended = false;  // shed by EnforcementPolicy::kDegrade
    TaskStats stats;
  };
  struct VcpuRt {
    SimVcpuSpec spec;
    std::vector<std::size_t> tasks;   // indices into tasks_
    bool released = false;            // in an active period with budget
    bool sync_applied = false;        // first hypercall already taken
    util::Time next_release = util::Time::max();
    util::Time deadline = util::Time::zero();
    util::Time budget_left = util::Time::zero();
    EventQueue::Id release_event = EventQueue::kInvalidId;
    /// Parameter change staged by schedule_vcpu_update; applied at the
    /// next replenishment.
    bool pending_update = false;
    util::Time pending_period = util::Time::zero();
    util::Time pending_budget = util::Time::zero();
    VcpuStats stats;
  };
  struct CoreRt {
    std::vector<std::size_t> vcpus;   // indices into vcpus_
    std::size_t running_vcpu = kNone;
    std::size_t running_task = kNone; // kNone while burning idle budget
    util::Time seg_start = util::Time::zero();
    EventQueue::Id seg_end_event = EventQueue::kInvalidId;
    bool resched_pending = false;
    util::Time busy = util::Time::zero();
    /// Remaining context-switch overhead to burn before the incoming
    /// VCPU's task may execute (consumes budget and wall time).
    util::Time overhead_left = util::Time::zero();
    util::Time throttled_time = util::Time::zero();
    util::Time throttle_start = util::Time::zero();
    unsigned cache = 0;
    unsigned bw = 0;
    /// Execution speed in (0, 1]: below 1 only when the shared bus is
    /// saturated and this core's memory requests are being stalled.
    double exec_rate = 1.0;
  };

  // ----- setup (simulation.cpp) -----
  void setup();
  void issue_release_sync(std::size_t task_index);
  /// (Re)derive a task's requirement R(c) and request rate from its
  /// landing core's current cache allocation.
  void refresh_task_model(std::size_t task_index);
  void apply_cache_update(std::size_t core_index, unsigned ways);

  // ----- hypervisor level (hypervisor.cpp) -----
  void defer_reschedule(std::size_t core_index);
  void plan_segment(std::size_t core_index);
  void recompute_bus_rates();
  void vcpu_release(std::size_t vcpu_index);
  void arm_vcpu_release(std::size_t vcpu_index, util::Time when);
  void interrupt_core(std::size_t core_index);
  void handle_boundaries(std::size_t core_index);
  void account_core(std::size_t core_index);
  void reschedule_core(std::size_t core_index);
  void segment_end(std::size_t core_index);
  std::size_t pick_vcpu(const CoreRt& core) const;
  bool vcpu_eligible(const VcpuRt& v) const;
  void on_throttle(unsigned core_index);
  void on_unthrottle(unsigned core_index);

  // ----- guest level (guest.cpp) -----
  void task_release(std::size_t task_index);
  void release_job(std::size_t task_index, util::Time nominal,
                   bool schedule_next);
  void job_deadline_check(std::size_t task_index, std::int64_t seq);
  void complete_job(std::size_t task_index);
  std::size_t pick_task(const VcpuRt& v) const;
  /// Has a job the scheduler may run now (pending, not suspended by
  /// degradation, front job not deferred by throttling).
  bool task_runnable(const TaskRt& t) const;

  // ----- fault injection (faults.cpp) -----
  void setup_faults();
  util::Time draw_release_jitter(std::size_t task_index);
  double draw_overrun_factor(std::size_t task_index);
  util::Time draw_refill_delay();
  void schedule_next_revocation();
  void inject_revocation();
  void restore_revocation();

  // ----- enforcement (enforcement.cpp) -----
  /// The running job's allowance hit zero with work left: apply the
  /// configured policy. Called from handle_boundaries with accounts done.
  void enforce_job_budget(std::size_t core_index);
  void kill_job(std::size_t task_index);
  void defer_job(std::size_t task_index);
  void trigger_degrade(std::size_t core_index, bool interrupt);
  void resume_degraded(std::size_t core_index);
  void handle_vcpu_budget_overrun(std::size_t vcpu_index);

  SimConfig cfg_;
  EventQueue queue_;
  Trace trace_;
  std::unique_ptr<BwRegulator> regulator_;
  std::vector<TaskRt> tasks_;
  std::vector<VcpuRt> vcpus_;
  std::vector<CoreRt> cores_;
  util::Time duration_ = util::Time::zero();
  util::Rng jitter_rng_{1};
  std::uint64_t vcpu_switches_ = 0;
  std::uint64_t task_dispatches_ = 0;
  HostProbe* probe_ = nullptr;
  SimObserver* observer_ = nullptr;

  // ----- fault & enforcement state -----
  // Forked from Rng(cfg_.faults.seed) in a fixed order (setup_faults), so
  // the fault plan is bit-reproducible regardless of what else runs.
  util::Rng fault_overrun_rng_{1};
  util::Rng fault_jitter_rng_{1};
  util::Rng fault_revoke_rng_{1};
  util::Rng fault_refill_rng_{1};
  std::uint64_t faults_injected_ = 0;
  EnforcementStats enforce_;
  /// Per core: low-criticality tasks stay shed until this instant (zero =
  /// core not degraded).
  std::vector<util::Time> degrade_until_;
  /// CAT mirror for revocation events — kept when the deployed cache plan
  /// is disjoint (sum of ways <= C), so revocations exercise the real COS
  /// programming path.
  std::unique_ptr<hw::MsrFile> cat_msr_;
  std::unique_ptr<hw::Cat> cat_;
  bool revoke_active_ = false;
  std::size_t revoked_core_ = kNone;
  unsigned revoked_saved_ways_ = 0;
};

}  // namespace vc2m::sim
