// Guest-OS level scheduling: each VM's tasks run under EDF on the VCPUs
// they are pinned to (LITMUS^RT partitioned-EDF stand-in), with per-job
// deadline-miss detection.
#include "sim/simulation.h"
#include "util/error.h"

namespace vc2m::sim {

void Simulation::task_release(std::size_t task_index) {
  TaskRt& t = tasks_[task_index];
  const util::Time nominal = queue_.now();
  if (!t.suspended) {
    const util::Time jitter = draw_release_jitter(task_index);
    if (jitter > util::Time::zero()) {
      // The arrival is pushed past the nominal instant; the deadline and
      // the next release stay on the nominal grid, so jitter never drifts
      // the task's long-run rate.
      ++faults_injected_;
      trace_.record({nominal, TraceKind::kFaultReleaseJitter,
                     static_cast<std::int32_t>(
                         vcpus_[t.spec.vcpu].spec.core),
                     static_cast<std::int32_t>(t.spec.vcpu),
                     static_cast<std::int32_t>(task_index), jitter.raw_ns()});
      if (observer_) observer_->on_fault_injected(FaultKind::kReleaseJitter);
      queue_.schedule(nominal + jitter, [this, task_index, nominal] {
        release_job(task_index, nominal, /*schedule_next=*/false);
      });
      util::Time next = nominal + t.spec.period;
      if (t.spec.arrival_jitter > util::Time::zero())
        next += util::Time::ns(
            jitter_rng_.uniform_int(0, t.spec.arrival_jitter.raw_ns()));
      queue_.schedule(next, [this, task_index] { task_release(task_index); });
      return;
    }
  }
  release_job(task_index, nominal, /*schedule_next=*/true);
}

void Simulation::release_job(std::size_t task_index, util::Time nominal,
                             bool schedule_next) {
  TaskRt& t = tasks_[task_index];
  // A task shed by the degrade policy skips its releases entirely (no job,
  // no miss) until it is resumed — that is what "shedding" buys the core.
  const bool create = !t.suspended;
  if (create) {
    Job job;
    job.seq = t.next_seq++;
    job.release = queue_.now();
    job.deadline = nominal + t.spec.period;  // implicit deadline
    job.remaining = t.requirement;
    const double factor = draw_overrun_factor(task_index);
    if (factor > 1.0)
      job.remaining = util::Time::ns(static_cast<std::int64_t>(
          static_cast<double>(t.requirement.raw_ns()) * factor + 0.5));
    if (enforces_job_budget(cfg_.enforcement.policy))
      job.budget_left = t.requirement;  // the modeled-WCET allowance
    t.pending.push_back(job);
    ++t.stats.released;
    trace_.record({queue_.now(), TraceKind::kJobRelease,
                   static_cast<std::int32_t>(
                       vcpus_[t.spec.vcpu].spec.core),
                   static_cast<std::int32_t>(t.spec.vcpu),
                   static_cast<std::int32_t>(task_index), job.seq});
    if (factor > 1.0) {
      ++faults_injected_;
      trace_.record({queue_.now(), TraceKind::kFaultWcetOverrun,
                     static_cast<std::int32_t>(
                         vcpus_[t.spec.vcpu].spec.core),
                     static_cast<std::int32_t>(t.spec.vcpu),
                     static_cast<std::int32_t>(task_index), job.seq});
      if (observer_) observer_->on_fault_injected(FaultKind::kWcetOverrun);
    }

    const std::int64_t seq = job.seq;
    queue_.schedule(job.deadline, [this, task_index, seq] {
      job_deadline_check(task_index, seq);
    });
  }
  if (schedule_next) {
    // Next arrival: the minimum inter-arrival plus, for sporadic tasks, a
    // seeded random delay (the paper's workloads are strictly periodic).
    util::Time next = nominal + t.spec.period;
    if (t.spec.arrival_jitter > util::Time::zero())
      next += util::Time::ns(
          jitter_rng_.uniform_int(0, t.spec.arrival_jitter.raw_ns()));
    queue_.schedule(next, [this, task_index] { task_release(task_index); });
  }

  // The new job may preempt the VCPU's current job (guest EDF) or wake a
  // suspended non-idling server; always let the core re-decide.
  if (create) interrupt_core(vcpus_[t.spec.vcpu].spec.core);
}

void Simulation::job_deadline_check(std::size_t task_index,
                                    std::int64_t seq) {
  TaskRt& t = tasks_[task_index];
  // Bring execution accounting up to date: a job completing exactly at its
  // deadline must not be flagged (its segment-end event fires at the same
  // timestamp, possibly after this one).
  account_core(vcpus_[t.spec.vcpu].spec.core);

  for (auto& job : t.pending) {
    if (job.seq != seq) continue;
    if (job.remaining.is_zero() || job.missed) return;
    job.missed = true;
    ++t.stats.deadline_misses;
    trace_.record({queue_.now(), TraceKind::kDeadlineMiss,
                   static_cast<std::int32_t>(
                       vcpus_[t.spec.vcpu].spec.core),
                   static_cast<std::int32_t>(t.spec.vcpu),
                   static_cast<std::int32_t>(task_index), seq});
    // Degrade policy: a miss of a task that must not miss sheds the
    // low-criticality load on its core (trigger_degrade no-ops under every
    // other policy).
    if (t.criticality >= 1)
      trigger_degrade(vcpus_[t.spec.vcpu].spec.core, /*interrupt=*/true);
    return;
  }
  // Not pending any more: the job completed before its deadline.
}

void Simulation::complete_job(std::size_t task_index) {
  TaskRt& t = tasks_[task_index];
  VC2M_CHECK(!t.pending.empty());
  Job job = t.pending.front();
  VC2M_CHECK(job.remaining.is_zero());
  t.pending.pop_front();

  ++t.stats.completed;
  const util::Time response = queue_.now() - job.release;
  t.stats.max_response = util::max(t.stats.max_response, response);
  t.stats.response_ms.add(response.to_ms());
  if (queue_.now() > job.deadline) {
    const util::Time tardiness = queue_.now() - job.deadline;
    t.stats.max_tardiness = util::max(t.stats.max_tardiness, tardiness);
    if (!job.missed) ++t.stats.deadline_misses;  // missed, completed late
  }
  trace_.record({queue_.now(), TraceKind::kJobComplete,
                 static_cast<std::int32_t>(
                     vcpus_[t.spec.vcpu].spec.core),
                 static_cast<std::int32_t>(t.spec.vcpu),
                 static_cast<std::int32_t>(task_index), job.seq});
  if (observer_)
    observer_->on_job_complete(task_index, response, t.spec.period,
                               queue_.now() > job.deadline);
}

std::size_t Simulation::pick_task(const VcpuRt& v) const {
  // Guest EDF over the VCPU's pinned tasks: earliest front-job deadline,
  // ties by task index. Within one task, FIFO equals EDF (periodic,
  // implicit deadlines).
  std::size_t best = kNone;
  for (const std::size_t ti : v.tasks) {
    const TaskRt& t = tasks_[ti];
    if (!task_runnable(t)) continue;
    if (best == kNone ||
        t.pending.front().deadline < tasks_[best].pending.front().deadline)
      best = ti;
  }
  return best;
}

bool Simulation::task_runnable(const TaskRt& t) const {
  // Shed tasks are invisible to the scheduler; a throttled (deferred) front
  // job blocks its task until the VCPU's next replenishment (within one
  // task jobs are FIFO, so later jobs cannot overtake it).
  return !t.suspended && !t.pending.empty() && !t.pending.front().deferred;
}

}  // namespace vc2m::sim
