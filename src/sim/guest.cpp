// Guest-OS level scheduling: each VM's tasks run under EDF on the VCPUs
// they are pinned to (LITMUS^RT partitioned-EDF stand-in), with per-job
// deadline-miss detection.
#include "sim/simulation.h"
#include "util/error.h"

namespace vc2m::sim {

void Simulation::task_release(std::size_t task_index) {
  TaskRt& t = tasks_[task_index];
  Job job;
  job.seq = t.next_seq++;
  job.release = queue_.now();
  job.deadline = queue_.now() + t.spec.period;  // implicit deadline
  job.remaining = t.requirement;
  t.pending.push_back(job);
  ++t.stats.released;
  trace_.record({queue_.now(), TraceKind::kJobRelease,
                 static_cast<std::int32_t>(
                     vcpus_[t.spec.vcpu].spec.core),
                 static_cast<std::int32_t>(t.spec.vcpu),
                 static_cast<std::int32_t>(task_index), job.seq});

  const std::int64_t seq = job.seq;
  queue_.schedule(job.deadline, [this, task_index, seq] {
    job_deadline_check(task_index, seq);
  });
  // Next arrival: the minimum inter-arrival plus, for sporadic tasks, a
  // seeded random delay (the paper's workloads are strictly periodic).
  util::Time next = queue_.now() + t.spec.period;
  if (t.spec.arrival_jitter > util::Time::zero())
    next += util::Time::ns(
        jitter_rng_.uniform_int(0, t.spec.arrival_jitter.raw_ns()));
  queue_.schedule(next, [this, task_index] { task_release(task_index); });

  // The new job may preempt the VCPU's current job (guest EDF) or wake a
  // suspended non-idling server; always let the core re-decide.
  interrupt_core(vcpus_[t.spec.vcpu].spec.core);
}

void Simulation::job_deadline_check(std::size_t task_index,
                                    std::int64_t seq) {
  TaskRt& t = tasks_[task_index];
  // Bring execution accounting up to date: a job completing exactly at its
  // deadline must not be flagged (its segment-end event fires at the same
  // timestamp, possibly after this one).
  account_core(vcpus_[t.spec.vcpu].spec.core);

  for (auto& job : t.pending) {
    if (job.seq != seq) continue;
    if (job.remaining.is_zero() || job.missed) return;
    job.missed = true;
    ++t.stats.deadline_misses;
    trace_.record({queue_.now(), TraceKind::kDeadlineMiss,
                   static_cast<std::int32_t>(
                       vcpus_[t.spec.vcpu].spec.core),
                   static_cast<std::int32_t>(t.spec.vcpu),
                   static_cast<std::int32_t>(task_index), seq});
    return;
  }
  // Not pending any more: the job completed before its deadline.
}

void Simulation::complete_job(std::size_t task_index) {
  TaskRt& t = tasks_[task_index];
  VC2M_CHECK(!t.pending.empty());
  Job job = t.pending.front();
  VC2M_CHECK(job.remaining.is_zero());
  t.pending.pop_front();

  ++t.stats.completed;
  const util::Time response = queue_.now() - job.release;
  t.stats.max_response = util::max(t.stats.max_response, response);
  t.stats.response_ms.add(response.to_ms());
  if (queue_.now() > job.deadline) {
    const util::Time tardiness = queue_.now() - job.deadline;
    t.stats.max_tardiness = util::max(t.stats.max_tardiness, tardiness);
    if (!job.missed) ++t.stats.deadline_misses;  // missed, completed late
  }
  trace_.record({queue_.now(), TraceKind::kJobComplete,
                 static_cast<std::int32_t>(
                     vcpus_[t.spec.vcpu].spec.core),
                 static_cast<std::int32_t>(t.spec.vcpu),
                 static_cast<std::int32_t>(task_index), job.seq});
  if (observer_)
    observer_->on_job_complete(task_index, response, t.spec.period,
                               queue_.now() > job.deadline);
}

std::size_t Simulation::pick_task(const VcpuRt& v) const {
  // Guest EDF over the VCPU's pinned tasks: earliest front-job deadline,
  // ties by task index. Within one task, FIFO equals EDF (periodic,
  // implicit deadlines).
  std::size_t best = kNone;
  for (const std::size_t ti : v.tasks) {
    const TaskRt& t = tasks_[ti];
    if (t.pending.empty()) continue;
    if (best == kNone ||
        t.pending.front().deadline < tasks_[best].pending.front().deadline)
      best = ti;
  }
  return best;
}

}  // namespace vc2m::sim
