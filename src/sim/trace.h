// Scheduling trace and counters produced by the simulator.
//
// Mirrors the instrumentation of the prototype: every scheduling decision,
// budget event, throttle/refill, release and completion can be recorded with
// its timestamp for offline inspection; cheap counters are always on.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/time.h"

namespace vc2m::sim {

enum class TraceKind : std::uint8_t {
  kJobRelease,
  kJobComplete,
  kDeadlineMiss,
  kVcpuRelease,          // budget replenished at a period boundary
  kVcpuBudgetExhausted,
  kVcpuSchedule,         // VCPU starts running on a core
  kVcpuDeschedule,
  kTaskDispatch,         // guest-level task switch within a VCPU
  kCoreThrottle,
  kCoreUnthrottle,
  kBwRefill,
  kHypercall,            // release-synchronization hypercall executed
  // Fault-injection events (sim/faults.h). New kinds are appended so the
  // numeric ids in previously exported traces stay valid.
  kFaultWcetOverrun,     // job released with inflated work; job = seq
  kFaultReleaseJitter,   // release delayed; job = delay in ns
  kPartitionRevoke,      // core transiently shrunk; job = new way count
  kPartitionRestore,     // revoked ways handed back; job = restored ways
  kCosProgram,           // CAT COS reprogrammed for core; job = ways
  kFaultRefillDelay,     // regulator refill armed late; job = delay in ns
  // Enforcement events (sim/enforcement.h).
  kJobKilled,            // job aborted at allowance exhaustion (kKill)
  kJobDeferred,          // job parked until replenishment (kThrottle)
  kTaskSuspend,          // low-criticality task shed (kDegrade)
  kTaskResume,           // shed task readmitted
  kVcpuBudgetOverrun,    // VCPU overdrew its budget; job = overdraw in ns
  kCount_,
};

std::string to_string(TraceKind k);

/// Inverse of to_string (used when re-importing exported traces);
/// std::nullopt for unknown names.
std::optional<TraceKind> trace_kind_from_string(const std::string& name);

struct TraceEvent {
  util::Time when;
  TraceKind kind;
  std::int32_t core = -1;
  std::int32_t vcpu = -1;
  std::int32_t task = -1;
  std::int64_t job = -1;  ///< job sequence number within the task
};

class Trace {
 public:
  /// When capture is off (default) only the counters are maintained.
  explicit Trace(bool capture = false) : capture_(capture) {}

  void record(TraceEvent ev) {
    ++counts_[static_cast<std::size_t>(ev.kind)];
    if (capture_) events_.push_back(ev);
  }

  std::uint64_t count(TraceKind k) const {
    return counts_[static_cast<std::size_t>(k)];
  }

  bool capturing() const { return capture_; }
  const std::vector<TraceEvent>& events() const { return events_; }

  /// Events of one kind, in recorded (time) order (requires capture).
  /// The per-kind counter gives the exact size, so the copy allocates once.
  std::vector<TraceEvent> events_of(TraceKind k) const;

 private:
  bool capture_;
  std::vector<TraceEvent> events_;
  std::array<std::uint64_t, static_cast<std::size_t>(TraceKind::kCount_)>
      counts_{};
};

}  // namespace vc2m::sim
