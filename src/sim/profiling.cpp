#include "sim/profiling.h"

#include <cmath>

#include "util/error.h"

namespace vc2m::sim {

WorkloadModel workload_from_profile(const workload::ParsecProfile& profile,
                                    util::Time ref_wcet,
                                    const ProfilingConfig& cfg) {
  VC2M_CHECK(ref_wcet > util::Time::zero());
  WorkloadModel w;
  const double ref_ns = static_cast<double>(ref_wcet.raw_ns());
  w.cpu_work = util::Time::ns(
      static_cast<std::int64_t>((1.0 - profile.mem_frac) * ref_ns + 0.5));
  w.mem_work_ref = ref_wcet - w.cpu_work;
  w.miss_amp = profile.miss_amp;
  w.ws_decay = profile.ws_decay;
  // The profile saturates bw_sat partitions at the reference miss rate:
  // while executing it issues bw_sat partitions' worth of requests per
  // regulation period, i.e. ref_wcet/P periods' worth per job.
  const double periods_per_job =
      ref_ns / static_cast<double>(cfg.regulation_period.raw_ns());
  w.mem_requests_ref =
      profile.bw_sat * cfg.requests_per_partition * periods_per_job;
  return w;
}

util::Time profile_wcet(const WorkloadModel& w, unsigned c, unsigned b,
                        const ProfilingConfig& cfg) {
  VC2M_CHECK(c >= 1 && c <= cfg.cache_partitions);
  VC2M_CHECK(b >= 1);

  // Upper-bound the per-job completion time to size the measurement period:
  // requirement at c, inflated by the worst throttling ratio, plus slack.
  const double miss = workload::miss_curve(
      static_cast<double>(c), static_cast<double>(cfg.cache_partitions),
      w.miss_amp, w.ws_decay);
  const double req_ns = static_cast<double>(w.cpu_work.raw_ns()) +
                        static_cast<double>(w.mem_work_ref.raw_ns()) * miss;
  const double requests = w.mem_requests_ref * miss;
  const double budget_per_period =
      static_cast<double>(b) * cfg.requests_per_partition;
  const double periods_needed = requests / budget_per_period;
  const double bound_ns =
      req_ns +
      (periods_needed + 2.0) *
          static_cast<double>(cfg.regulation_period.raw_ns());

  // A period slightly past the bound and misaligned with the regulation
  // period, so successive jobs start at drifting throttle phases.
  const auto period = util::Time::ns(
      static_cast<std::int64_t>(bound_ns * 2.0) + 7'777'777);

  SimConfig sim_cfg;
  sim_cfg.num_cores = 1;
  sim_cfg.cache_partitions = cfg.cache_partitions;
  sim_cfg.cache_alloc = {c};
  sim_cfg.bw_alloc = {b};
  sim_cfg.bw_regulation = true;
  sim_cfg.regulation_period = cfg.regulation_period;
  sim_cfg.requests_per_partition = cfg.requests_per_partition;

  SimVcpuSpec vcpu;  // dedicated VCPU on a dedicated core
  vcpu.period = period;
  vcpu.budget = period;
  vcpu.core = 0;
  sim_cfg.vcpus = {vcpu};

  SimTaskSpec task;
  task.period = period;
  task.cpu_work = w.cpu_work;
  task.mem_work_ref = w.mem_work_ref;
  task.miss_amp = w.miss_amp;
  task.ws_decay = w.ws_decay;
  task.mem_requests_ref = w.mem_requests_ref;
  task.vcpu = 0;
  sim_cfg.tasks = {task};

  Simulation sim(sim_cfg);
  sim.run(period * static_cast<std::int64_t>(cfg.jobs));
  const auto stats = sim.stats();
  VC2M_CHECK_MSG(stats.jobs_completed >= cfg.jobs - 1,
                 "profiling run failed to complete its jobs");
  return stats.per_task[0].max_response;
}

model::WcetFn profile_surface(const WorkloadModel& w,
                              const model::ResourceGrid& grid,
                              const ProfilingConfig& cfg) {
  model::WcetFn f(grid);
  for (unsigned c = grid.c_min; c <= grid.c_max; ++c)
    for (unsigned b = grid.b_min; b <= grid.b_max; ++b)
      f.set(c, b, profile_wcet(w, c, b, cfg));
  return f;
}

}  // namespace vc2m::sim
