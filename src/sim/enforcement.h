// Enforcement policies: what the hypervisor/guest stack does when a job
// exhausts its modeled-WCET allowance (or a VCPU overdraws its budget).
//
// The vC2M analysis certifies allocations under the assumption that every
// job runs at most its e(c,b); the enforcement layer decides what happens
// when that assumption is violated at runtime (see sim/faults.h for the
// injection side):
//   - kStrict:   no job-level enforcement; an overrunning job simply keeps
//                executing (and misses deadlines), and a *VCPU* budget
//                overrun — impossible by construction — is a fatal error,
//                exactly the pre-enforcement behavior.
//   - kKill:     abort the job the instant its allowance is exhausted; the
//                task's later jobs are unaffected (job-level abort).
//   - kThrottle: defer the job to its VCPU's next replenishment, where it
//                receives a fresh allowance — the RTDS server behavior.
//   - kDegrade:  criticality-aware shedding: an overrun (or a deadline miss
//                of a criticality >= 1 task) suspends every criticality-0
//                task on the affected core until the shedding window
//                closes; the overrunning job itself keeps executing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "util/time.h"

namespace vc2m::sim {

enum class EnforcementPolicy : std::uint8_t {
  kStrict,
  kKill,
  kThrottle,
  kDegrade,
};

std::string to_string(EnforcementPolicy p);

/// Inverse of to_string ("strict" | "kill" | "throttle" | "degrade");
/// std::nullopt for unknown names.
std::optional<EnforcementPolicy> enforcement_policy_from_string(
    const std::string& name);

struct EnforcementConfig {
  EnforcementPolicy policy = EnforcementPolicy::kStrict;
  /// kDegrade: how long low-criticality tasks stay shed after the last
  /// trigger on their core (each new trigger extends the window).
  util::Time degrade_resume_after = util::Time::ms(20);
};

/// True when `policy` bounds per-job execution at the modeled WCET (i.e.
/// any policy but kStrict plans an enforcement boundary into segments).
inline bool enforces_job_budget(EnforcementPolicy policy) {
  return policy != EnforcementPolicy::kStrict;
}

/// Aggregate enforcement activity over a run (folded into SimStats).
struct EnforcementStats {
  std::uint64_t jobs_killed = 0;
  std::uint64_t jobs_deferred = 0;
  std::uint64_t task_suspensions = 0;
  std::uint64_t task_resumes = 0;
  std::uint64_t vcpu_budget_overruns = 0;
};

}  // namespace vc2m::sim
