#include "sim/event_queue.h"

#include "util/error.h"

namespace vc2m::sim {

EventQueue::Id EventQueue::schedule(util::Time when, EventFn fn) {
  VC2M_CHECK_MSG(when >= now_, "event scheduled in the past: " << when
                                                               << " < " << now_);
  VC2M_CHECK(fn != nullptr);
  const Key key{when, next_seq_++};
  const Id id = next_id_++;
  events_.emplace(key, std::make_pair(id, std::move(fn)));
  index_.emplace(id, key);
  return id;
}

EventQueue::Id EventQueue::schedule_after(util::Time delay, EventFn fn) {
  return schedule(now_ + delay, std::move(fn));
}

bool EventQueue::cancel(Id id) {
  if (id == kInvalidId) return false;
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  events_.erase(it->second);
  index_.erase(it);
  return true;
}

bool EventQueue::run_one() {
  if (events_.empty()) return false;
  auto it = events_.begin();
  VC2M_CHECK(it->first.when >= now_);
  now_ = it->first.when;
  EventFn fn = std::move(it->second.second);
  index_.erase(it->second.first);
  events_.erase(it);
  ++dispatched_;
  fn();
  return true;
}

void EventQueue::run_until(util::Time t) {
  VC2M_CHECK(t >= now_);
  while (!events_.empty() && events_.begin()->first.when <= t) run_one();
  now_ = t;
}

}  // namespace vc2m::sim
