#include "sim/simulation.h"

#include "hw/cat.h"
#include "hw/msr.h"
#include "util/error.h"
#include "workload/parsec.h"

namespace vc2m::sim {

Simulation::Simulation(SimConfig cfg)
    : cfg_(std::move(cfg)),
      trace_(cfg_.capture_trace),
      jitter_rng_(cfg_.jitter_seed) {
  setup();
}

Simulation::~Simulation() = default;

void Simulation::setup() {
  VC2M_CHECK(cfg_.num_cores >= 1);
  VC2M_CHECK(cfg_.cache_partitions >= 2);
  if (cfg_.cache_alloc.empty())
    cfg_.cache_alloc.assign(cfg_.num_cores, cfg_.cache_partitions);
  if (cfg_.bw_alloc.empty())
    cfg_.bw_alloc.assign(cfg_.num_cores, cfg_.cache_partitions);
  VC2M_CHECK(cfg_.cache_alloc.size() == cfg_.num_cores);
  VC2M_CHECK(cfg_.bw_alloc.size() == cfg_.num_cores);

  cores_.resize(cfg_.num_cores);
  for (unsigned k = 0; k < cfg_.num_cores; ++k) {
    cores_[k].cache = cfg_.cache_alloc[k];
    cores_[k].bw = cfg_.bw_alloc[k];
    VC2M_CHECK_MSG(cores_[k].cache >= 1 &&
                       cores_[k].cache <= cfg_.cache_partitions,
                   "core cache allocation out of range");
  }

  vcpus_.reserve(cfg_.vcpus.size());
  for (const auto& vs : cfg_.vcpus) {
    VC2M_CHECK(vs.period > util::Time::zero());
    VC2M_CHECK(vs.budget >= util::Time::zero() && vs.budget <= vs.period);
    VC2M_CHECK_MSG(vs.core < cfg_.num_cores, "VCPU pinned to missing core");
    VcpuRt v;
    v.spec = vs;
    vcpus_.push_back(std::move(v));
    cores_[vs.core].vcpus.push_back(vcpus_.size() - 1);
  }

  tasks_.reserve(cfg_.tasks.size());
  for (const auto& ts : cfg_.tasks) {
    VC2M_CHECK(ts.period > util::Time::zero());
    VC2M_CHECK_MSG(ts.vcpu < vcpus_.size(), "task pinned to missing VCPU");
    VC2M_CHECK_MSG(ts.criticality >= 0, "negative task criticality");
    TaskRt t;
    t.spec = ts;
    t.criticality = ts.criticality;
    tasks_.push_back(std::move(t));
    vcpus_[ts.vcpu].tasks.push_back(tasks_.size() - 1);
    refresh_task_model(tasks_.size() - 1);
    VC2M_CHECK_MSG(tasks_.back().requirement <= ts.period,
                   "job requirement exceeds the task period");
  }

  // Bandwidth regulator (constructed even when disabled so that throttled()
  // queries are uniform).
  BwRegulator::Config rc;
  rc.enabled = cfg_.bw_regulation;
  rc.regulation_period = cfg_.regulation_period;
  rc.requests_per_partition = cfg_.requests_per_partition;
  rc.bw_alloc = cfg_.bw_alloc;
  regulator_ = std::make_unique<BwRegulator>(queue_, trace_, rc);
  regulator_->set_callbacks(
      [this](unsigned core) { on_throttle(core); },
      [this](unsigned core) { on_unthrottle(core); },
      [this] {
        for (std::size_t k = 0; k < cores_.size(); ++k) account_core(k);
      });
  regulator_->start();

  // Fault plan: fork the seeded streams, demote low-criticality tasks,
  // arm revocations, hook the regulator's refill timer.
  setup_faults();

  // Initial releases. Tasks always release at their offset. VCPUs release
  // at their own offset unless release synchronization is on, in which case
  // the first hypercall arms them.
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const util::Time offset = tasks_[i].spec.offset;
    queue_.schedule(offset, [this, i] { task_release(i); });
    if (cfg_.release_sync) issue_release_sync(i);
  }
  if (!cfg_.release_sync)
    for (std::size_t j = 0; j < vcpus_.size(); ++j)
      arm_vcpu_release(j, vcpus_[j].spec.offset);
}

void Simulation::refresh_task_model(std::size_t task_index) {
  // Execution model: R(c) = cpu + mem·miss(c) and the uniform request rate
  // on the task's (pinned) core under its *current* cache allocation.
  TaskRt& t = tasks_[task_index];
  const SimTaskSpec& ts = t.spec;
  const unsigned c = cores_[vcpus_[ts.vcpu].spec.core].cache;
  const double miss = workload::miss_curve(
      static_cast<double>(c), static_cast<double>(cfg_.cache_partitions),
      ts.miss_amp, ts.ws_decay);
  const double mem_ns = static_cast<double>(ts.mem_work_ref.raw_ns()) * miss;
  t.requirement =
      ts.cpu_work + util::Time::ns(static_cast<std::int64_t>(mem_ns + 0.5));
  VC2M_CHECK_MSG(t.requirement > util::Time::zero(),
                 "job requirement must be positive");
  const double requests = ts.mem_requests_ref * miss;
  t.req_rate = requests / static_cast<double>(t.requirement.raw_ns());
}

void Simulation::schedule_cache_update(util::Time when,
                                       std::size_t core_index,
                                       unsigned ways) {
  VC2M_CHECK_MSG(core_index < cores_.size(), "no such core");
  VC2M_CHECK_MSG(ways >= 1 && ways <= cfg_.cache_partitions,
                 "cache ways out of range");
  queue_.schedule(when, [this, core_index, ways] {
    apply_cache_update(core_index, ways);
  });
}

void Simulation::apply_cache_update(std::size_t core_index, unsigned ways) {
  // Close the running segment under the old model, then re-derive every
  // affected task. In-flight jobs keep their *executed* share: the
  // remaining fraction of the job is re-scaled to the new requirement.
  account_core(core_index);
  CoreRt& c = cores_[core_index];
  const unsigned old_ways = c.cache;
  if (old_ways == ways) return;
  c.cache = ways;

  for (const std::size_t vi : c.vcpus) {
    for (const std::size_t ti : vcpus_[vi].tasks) {
      TaskRt& t = tasks_[ti];
      const util::Time old_req = t.requirement;
      refresh_task_model(ti);
      for (auto& job : t.pending) {
        const double frac = static_cast<double>(job.remaining.raw_ns()) /
                            static_cast<double>(old_req.raw_ns());
        job.remaining = util::Time::ns(static_cast<std::int64_t>(
            frac * static_cast<double>(t.requirement.raw_ns()) + 0.5));
        if (job.remaining.is_zero()) job.remaining = util::Time::ns(1);
        // The enforcement allowance is denominated in the same work units
        // as `remaining`, so it re-scales identically (nonzero only under
        // job-budget-enforcing policies).
        if (job.budget_left > util::Time::zero()) {
          const double bfrac =
              static_cast<double>(job.budget_left.raw_ns()) /
              static_cast<double>(old_req.raw_ns());
          job.budget_left = util::Time::ns(static_cast<std::int64_t>(
              bfrac * static_cast<double>(t.requirement.raw_ns()) + 0.5));
          if (job.budget_left.is_zero())
            job.budget_left = util::Time::ns(1);
        }
      }
    }
  }
  if (cat_) {
    // Re-run the COS programming sequence against the CAT mirror so the
    // trace shows the architectural consequence of the repartitioning. A
    // plan grown beyond the cache (possible through schedule_cache_update)
    // cannot stay mirrored.
    std::vector<unsigned> plan;
    unsigned total = 0;
    plan.reserve(cores_.size());
    for (const auto& ck : cores_) {
      plan.push_back(ck.cache);
      total += ck.cache;
    }
    if (total <= cfg_.cache_partitions) {
      cat_->program_disjoint_plan(plan);
      trace_.record({queue_.now(), TraceKind::kCosProgram,
                     static_cast<std::int32_t>(core_index), -1, -1,
                     static_cast<std::int64_t>(ways)});
    }
  }
  interrupt_core(core_index);
}

void Simulation::issue_release_sync(std::size_t task_index) {
  // The guest computes L = vt_r − vt_0 in VM time at initialization (t=0
  // wall, vt_0 = skew in VM time); only this *interval* crosses the
  // hypercall, so differing VM/hypervisor clock bases cancel out. The
  // hypercall executes after its delay and the hypervisor re-arms the
  // VCPU's first release at xt_0 + L.
  //
  // The kAbsoluteTime mode models the naive protocol the paper rejects:
  // the guest passes its release time vt_r = vt_0 + L *in VM time* and the
  // hypervisor mistakes it for its own timeline — the VCPU is mis-armed by
  // exactly the clock skew.
  const util::Time L = tasks_[task_index].spec.offset;
  queue_.schedule(cfg_.hypercall_delay, [this, task_index, L] {
    const std::size_t vi = tasks_[task_index].spec.vcpu;
    trace_.record({queue_.now(), TraceKind::kHypercall,
                   static_cast<std::int32_t>(vcpus_[vi].spec.core),
                   static_cast<std::int32_t>(vi),
                   static_cast<std::int32_t>(task_index)});
    VcpuRt& v = vcpus_[vi];
    if (v.sync_applied) return;  // first task's hypercall wins
    v.sync_applied = true;
    util::Time release;
    if (cfg_.sync_mode == SimConfig::SyncMode::kInterval) {
      release = queue_.now() + L;
    } else {
      // vt_r in VM time, misread as hypervisor time (never in the past).
      release = util::max(queue_.now(), cfg_.vm_clock_skew + L);
    }
    arm_vcpu_release(vi, release);
  });
}

void Simulation::set_probe(HostProbe* probe) {
  probe_ = probe;
  regulator_->set_probe(probe);
}

void Simulation::run(util::Time duration) {
  VC2M_CHECK(duration > util::Time::zero());
  duration_ = duration;
  queue_.run_until(duration);
}

SimStats Simulation::stats() const {
  SimStats s;
  for (const auto& t : tasks_) {
    s.jobs_released += t.stats.released;
    s.jobs_completed += t.stats.completed;
    s.deadline_misses += t.stats.deadline_misses;
    s.max_tardiness = util::max(s.max_tardiness, t.stats.max_tardiness);
    s.per_task.push_back(t.stats);
  }
  s.vcpu_context_switches = vcpu_switches_;
  s.task_dispatches = task_dispatches_;
  s.throttles = trace_.count(TraceKind::kCoreThrottle);
  s.refills = regulator_->refills();
  s.total_mem_requests = regulator_->total_requests();
  const double horizon = static_cast<double>(
      (duration_.is_zero() ? queue_.now() : duration_).raw_ns());
  for (const auto& c : cores_) {
    util::Time busy = c.busy;
    // Include the still-open segment so stats() can be called mid-run.
    if (c.running_vcpu != kNone) busy += queue_.now() - c.seg_start;
    s.core_busy_fraction.push_back(
        horizon > 0 ? static_cast<double>(busy.raw_ns()) / horizon : 0.0);
    s.core_throttled_time.push_back(c.throttled_time);
  }
  for (const auto& v : vcpus_) s.per_vcpu.push_back(v.stats);
  s.faults_injected = faults_injected_;
  s.jobs_killed = enforce_.jobs_killed;
  s.jobs_deferred = enforce_.jobs_deferred;
  s.task_suspensions = enforce_.task_suspensions;
  s.vcpu_budget_overruns = enforce_.vcpu_budget_overruns;
  s.task_criticality.reserve(tasks_.size());
  for (const auto& t : tasks_) s.task_criticality.push_back(t.criticality);
  return s;
}

}  // namespace vc2m::sim
