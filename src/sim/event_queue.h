// Discrete-event engine for the hypervisor simulator.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events
// dispatch FIFO and the simulation is fully deterministic. Events are
// cancelable — the scheduler cancels a core's pending segment-end event
// whenever the core is rescheduled early.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>

#include "util/time.h"

namespace vc2m::sim {

class EventQueue {
 public:
  using EventFn = std::function<void()>;
  using Id = std::uint64_t;
  static constexpr Id kInvalidId = 0;

  /// Schedule `fn` at absolute time `when` (>= now()). Returns a handle
  /// usable with cancel().
  Id schedule(util::Time when, EventFn fn);

  /// Convenience: schedule at now() + delay.
  Id schedule_after(util::Time delay, EventFn fn);

  /// Cancel a pending event. Safe to call with kInvalidId or an id that
  /// already fired (no-op). Returns true iff an event was removed.
  bool cancel(Id id);

  util::Time now() const { return now_; }
  bool empty() const { return events_.empty(); }
  std::size_t pending() const { return events_.size(); }

  /// Pop and dispatch the next event; advances the clock. Returns false if
  /// the queue is empty.
  bool run_one();

  /// Dispatch every event with time <= t; the clock ends at exactly t.
  void run_until(util::Time t);

  std::uint64_t dispatched() const { return dispatched_; }

 private:
  struct Key {
    util::Time when;
    std::uint64_t seq;
    friend bool operator<(const Key& a, const Key& b) {
      return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }
  };
  std::map<Key, std::pair<Id, EventFn>> events_;
  std::map<Id, Key> index_;
  util::Time now_ = util::Time::zero();
  std::uint64_t next_seq_ = 0;
  Id next_id_ = 1;
  std::uint64_t dispatched_ = 0;
};

}  // namespace vc2m::sim
