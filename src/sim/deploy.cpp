#include "sim/deploy.h"

#include "util/error.h"

namespace vc2m::sim {

SimConfig deploy(const model::Taskset& tasks,
                 const std::vector<model::Vcpu>& vcpus,
                 const core::HvAllocResult& mapping,
                 const model::PlatformSpec& platform,
                 const DeployConfig& cfg) {
  VC2M_CHECK_MSG(mapping.schedulable, "only schedulable mappings deploy");
  VC2M_CHECK(mapping.vcpus_on_core.size() == mapping.cores_used);
  if (cfg.exec == ExecModel::kPhysical)
    VC2M_CHECK_MSG(cfg.workloads.size() == tasks.size(),
                   "kPhysical needs one WorkloadModel per task");

  SimConfig sim;
  sim.num_cores = mapping.cores_used;
  sim.cache_partitions = platform.total_cache();
  sim.cache_alloc.assign(mapping.cache.begin(), mapping.cache.end());
  sim.bw_alloc.assign(mapping.bw.begin(), mapping.bw.end());
  sim.bw_regulation = cfg.exec == ExecModel::kPhysical;
  sim.bus_contention = cfg.exec == ExecModel::kPhysical;
  sim.regulation_period = cfg.regulation_period;
  sim.requests_per_partition = cfg.requests_per_partition;
  sim.release_sync = cfg.release_sync;
  sim.capture_trace = cfg.capture_trace;

  for (unsigned k = 0; k < mapping.cores_used; ++k) {
    const unsigned c = mapping.cache[k];
    const unsigned b = mapping.bw[k];
    for (const std::size_t vi : mapping.vcpus_on_core[k]) {
      VC2M_CHECK(vi < vcpus.size());
      const model::Vcpu& v = vcpus[vi];

      SimVcpuSpec vs;
      vs.period = v.period;
      vs.budget = v.budget.at(c, b);
      VC2M_CHECK_MSG(vs.budget <= vs.period,
                     "VCPU budget exceeds its period at the landing core's "
                     "allocation — the mapping cannot be schedulable");
      vs.core = k;
      vs.vm = v.vm;
      vs.idling_server = true;  // periodic servers (well-regulated execution)
      sim.vcpus.push_back(vs);
      const std::size_t sim_vcpu = sim.vcpus.size() - 1;

      for (const std::size_t ti : v.tasks) {
        VC2M_CHECK(ti < tasks.size());
        const model::Task& t = tasks[ti];
        SimTaskSpec ts;
        ts.period = t.period;
        ts.vcpu = sim_vcpu;
        if (cfg.exec == ExecModel::kCpuOnly) {
          // The job's requirement is its WCET at the landing allocation;
          // miss_amp = 1 keeps the simulator's cache scaling inert.
          ts.cpu_work = t.wcet.at(c, b);
          ts.miss_amp = 1.0;
        } else {
          const WorkloadModel& w = cfg.workloads[ti];
          ts.cpu_work = w.cpu_work;
          ts.mem_work_ref = w.mem_work_ref;
          ts.miss_amp = w.miss_amp;
          ts.ws_decay = w.ws_decay;
          ts.mem_requests_ref = w.mem_requests_ref;
        }
        sim.tasks.push_back(ts);
      }
    }
  }
  return sim;
}

}  // namespace vc2m::sim
