// Host-time probes for the overhead tables.
//
// Tables 1 and 2 of the paper report the wall-clock cost of the prototype's
// hot handlers (BW throttle, BW refill, VCPU budget replenishment,
// scheduling decision, context switch). The simulator optionally times its
// own implementations of those handlers with the host's steady clock; the
// bench binaries aggregate the samples into min/avg/max rows. Absolute
// values reflect this machine, not a Xen testbed — the comparison of
// interest is the relative shape (refill >> throttle; slow growth with VCPU
// count), which the handlers' algorithmic structure preserves.
#pragma once

#include <chrono>

#include "util/stats.h"

namespace vc2m::sim {

struct HostProbe {
  util::SampleStats throttle;        ///< BW enforcer handler body (µs)
  util::SampleStats refill;          ///< BW refiller handler body (µs)
  util::SampleStats replenish;       ///< VCPU budget replenishment (µs)
  util::SampleStats schedule;        ///< scheduler pick (µs)
  util::SampleStats context_switch;  ///< VCPU context-switch bookkeeping (µs)
};

/// RAII timer feeding one SampleStats in microseconds; no-op when the
/// stats pointer is null.
class ScopedProbe {
 public:
  explicit ScopedProbe(util::SampleStats* stats) : stats_(stats) {
    if (stats_) start_ = std::chrono::steady_clock::now();
  }
  ~ScopedProbe() {
    if (stats_) {
      const auto end = std::chrono::steady_clock::now();
      stats_->add(std::chrono::duration<double, std::micro>(end - start_)
                      .count());
    }
  }
  ScopedProbe(const ScopedProbe&) = delete;
  ScopedProbe& operator=(const ScopedProbe&) = delete;

 private:
  util::SampleStats* stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace vc2m::sim
