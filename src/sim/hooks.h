// Observer hooks the simulator fires at semantic boundaries.
//
// The trace records *what happened*; the observer carries the derived
// quantities (response times, per-period budget consumption, throttle
// durations) that a metrics layer wants without re-deriving them from the
// event stream. Like HostProbe, the observer is owned by the caller and
// optional — a null observer costs one pointer test per event.
#pragma once

#include <cstddef>
#include <cstdint>

#include "util/time.h"

namespace vc2m::sim {

enum class FaultKind : std::uint8_t;  // sim/faults.h

class SimObserver {
 public:
  virtual ~SimObserver() = default;

  /// A job finished: its response time (completion − release), the task's
  /// period (= relative deadline) and whether the deadline was missed.
  virtual void on_job_complete(std::size_t task, util::Time response,
                               util::Time period, bool missed) {
    (void)task; (void)response; (void)period; (void)missed;
  }

  /// A VCPU's server period ended (at the replenishment closing it):
  /// budget consumed over the period, the period's provisioned budget, and
  /// whether the budget ran dry before the period was over.
  virtual void on_vcpu_period_end(std::size_t vcpu, util::Time consumed,
                                  util::Time budget, bool exhausted) {
    (void)vcpu; (void)consumed; (void)budget; (void)exhausted;
  }

  /// A bandwidth-throttle window on `core` closed after `duration`.
  virtual void on_throttle_end(std::size_t core, util::Time duration) {
    (void)core; (void)duration;
  }

  /// A planned fault fired (sim/faults.h — overrun, jitter, revocation,
  /// refill delay).
  virtual void on_fault_injected(FaultKind kind) { (void)kind; }

  /// Enforcement actions (sim/enforcement.h).
  virtual void on_job_killed(std::size_t task) { (void)task; }
  virtual void on_job_deferred(std::size_t task) { (void)task; }
  virtual void on_task_suspended(std::size_t task) { (void)task; }
  virtual void on_task_resumed(std::size_t task) { (void)task; }
  /// A VCPU overdrew its budget by `overdraw` (only possible under
  /// injected faults; fatal under the strict policy).
  virtual void on_vcpu_budget_overrun(std::size_t vcpu, util::Time overdraw) {
    (void)vcpu; (void)overdraw;
  }
};

}  // namespace vc2m::sim
