// Deterministic fault injection for the simulator.
//
// A FaultSpec describes a seeded plan of runtime misbehaviors the DES
// injects while it runs; sim/enforcement.h describes what the scheduler
// does about them. Four fault classes are modeled:
//   (a) WCET overruns — a job's actual work is its modeled requirement
//       times `overrun_factor` with probability `overrun_prob`;
//   (b) release jitter — a job's arrival is delayed past its nominal
//       release instant (deadline and the next release stay on the nominal
//       grid, so jitter never drifts the task's long-run rate);
//   (c) partition revocation — a core transiently loses cache ways (the
//       vCAT reprogramming path, mirrored through the hw::Cat model) for
//       `revoke_window`, then gets them back;
//   (d) refill delays — the bandwidth regulator's periodic replenishment
//       timer fires late (models ISR/timer latency; inert unless BW
//       regulation is enabled).
//
// Determinism contract (docs/robustness.md): all fault streams are forked
// from util::Rng(seed) in a fixed order at setup, and the simulation itself
// is single-threaded, so the same SimConfig (faults included) reproduces a
// bit-identical trace — including when fault-validating sweeps run over the
// experiment thread pool at any --jobs count.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "core/solutions.h"
#include "model/platform.h"
#include "model/task.h"
#include "sim/enforcement.h"
#include "util/time.h"

namespace vc2m::sim {

enum class FaultKind : std::uint8_t {
  kWcetOverrun,
  kReleaseJitter,
  kPartitionRevoke,
  kRefillDelay,
  kCount_,
};

std::string to_string(FaultKind k);

struct FaultSpec {
  /// (a) WCET overrun: each job's work is requirement × factor with
  /// probability `overrun_prob`. factor <= 1 disables the class.
  double overrun_factor = 1.0;
  double overrun_prob = 1.0;

  /// (b) Release jitter: with probability `jitter_prob` a release is
  /// delayed by uniform (0, max_release_jitter] (clamped below the task
  /// period so releases never reorder). zero disables the class.
  util::Time max_release_jitter = util::Time::zero();
  double jitter_prob = 1.0;

  /// (c) Partition revocation: roughly every `revoke_interval` (jittered to
  /// [0.5, 1.5) of it) a random core is shrunk to `revoke_ways` cache ways
  /// for `revoke_window`, then restored. At most one revocation is in
  /// flight at a time. zero interval disables the class.
  util::Time revoke_interval = util::Time::zero();
  util::Time revoke_window = util::Time::ms(2);
  unsigned revoke_ways = 1;

  /// (d) Refill delay: with probability `refill_delay_prob` the regulator's
  /// next refill is armed uniform (0, max_refill_delay] late. zero disables
  /// the class.
  util::Time max_refill_delay = util::Time::zero();
  double refill_delay_prob = 1.0;

  /// Fraction of (default-criticality) tasks marked criticality 0 at setup
  /// — the shedding victims of EnforcementPolicy::kDegrade.
  double low_crit_frac = 0.0;

  /// Master seed of the fault plan; every fault stream forks from it.
  std::uint64_t seed = 1;

  /// True when at least one fault class is active.
  bool any() const;
  /// Throws util::Error on out-of-range parameters.
  void validate() const;
};

/// Parse a comma-separated `key=value` spec, e.g.
///   "overrun-factor=1.2,overrun-prob=0.5,seed=7"
/// Keys: overrun-factor, overrun-prob, jitter-ms, jitter-prob,
/// revoke-interval-ms, revoke-window-ms, revoke-ways, refill-delay-ms,
/// refill-prob, low-crit-frac, seed. Throws util::Error on unknown keys or
/// malformed values.
FaultSpec parse_fault_spec(const std::string& spec);

/// Build an ExperimentConfig::validate functor: deploy each schedulable
/// allocation (kCpuOnly), simulate `hyperperiods` hyperperiods under
/// `spec` + `enforcement` (the per-item stream seed replaces spec.seed),
/// and pass iff no criticality >= 1 task misses a deadline or has a job
/// killed. Thread-safe: each call builds its own Simulation.
std::function<bool(const model::Taskset&, const core::SolveResult&,
                   std::uint64_t)>
make_fault_validator(const model::PlatformSpec& platform, FaultSpec spec,
                     EnforcementConfig enforcement, int hyperperiods = 1);

}  // namespace vc2m::sim
