// The memory-bandwidth regulator of §3.2 (Fig. 1).
//
// Setup: an unused perf counter on each core is programmed to count LLC
// misses (≈ memory requests) and preset so it overflows exactly when the
// core exhausts its bandwidth budget; the LAPIC is configured to deliver the
// PC-overflow interrupt to the core; a periodic timer replenishes every
// core's budget each regulation period.
//
// Regulation: on overflow, the BW enforcer handler asks the hypervisor's
// scheduler to de-schedule the core's current VCPU and leave the core idle —
// *idle*, not busy-spinning as MemGuard does — until the BW refiller
// replenishes the budget at the next period boundary and re-invokes the
// scheduler.
//
// The regulator keeps an authoritative continuous request count per core
// (the DES integrates request rates over execution segments exactly) and
// mirrors it into the architectural PMC/LAPIC models so the hardware
// programming sequence is exercised end to end.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "hw/lapic.h"
#include "hw/msr.h"
#include "hw/perf_counter.h"
#include "sim/event_queue.h"
#include "sim/probe.h"
#include "sim/trace.h"

namespace vc2m::sim {

class BwRegulator {
 public:
  struct Config {
    bool enabled = true;
    util::Time regulation_period = util::Time::ms(1);
    /// Budget units: memory requests one bandwidth partition may issue per
    /// regulation period.
    double requests_per_partition = 1000.0;
    /// Bandwidth partitions allocated to each core.
    std::vector<unsigned> bw_alloc;
  };

  using CoreFn = std::function<void(unsigned core)>;

  BwRegulator(EventQueue& queue, Trace& trace, Config cfg);

  /// De-schedule / re-schedule callbacks into the hypervisor scheduler,
  /// plus a pre-refill hook that forces execution accounting on all cores
  /// so requests issued before a period boundary are charged to the old
  /// period.
  void set_callbacks(CoreFn on_throttle, CoreFn on_unthrottle,
                     std::function<void()> account_all);

  /// Setup component: program PCs + LAPIC and arm the refill timer.
  void start();

  bool enabled() const { return cfg_.enabled; }
  bool throttled(unsigned core) const { return throttled_.at(core); }
  double budget(unsigned core) const;
  double used(unsigned core) const { return used_.at(core); }

  /// Account `requests` issued by `core` during a finished execution
  /// segment. The caller bounds segments so a segment never crosses the
  /// budget boundary by more than rounding slop.
  void add_requests(unsigned core, double requests);

  /// Time until the core's counter overflows if requests accrue at `rate`
  /// (requests per nanosecond); Time::max() when regulation is off, the
  /// rate is zero, or the core is already throttled.
  util::Time predict_overflow_delay(unsigned core, double rate) const;

  /// Fire the PC-overflow path for `core`: saturate the PMC, deliver the
  /// PMI through the LAPIC, run the BW enforcer handler (throttle).
  void trigger_overflow(unsigned core);

  std::uint64_t refills() const { return refills_; }
  double total_requests() const;
  double requests_on(unsigned core) const { return lifetime_.at(core); }

  /// Optional host-overhead probe (Table 1).
  void set_probe(HostProbe* probe) { probe_ = probe; }

  /// Fault hook (sim/faults.h): extra delay added when arming the next
  /// periodic refill — models timer/ISR latency. Null = refills on time.
  void set_refill_delayer(std::function<util::Time()> delayer) {
    refill_delayer_ = std::move(delayer);
  }

  const hw::MsrFile& msr() const { return msr_; }

 private:
  void refill_all();
  void enforcer_handler(unsigned core);

  EventQueue& queue_;
  Trace& trace_;
  Config cfg_;
  hw::MsrFile msr_;
  hw::Lapic lapic_;
  std::vector<hw::PerfCounter> pcs_;
  std::vector<double> used_;      ///< requests this period (authoritative)
  std::vector<double> lifetime_;  ///< requests since start
  std::vector<bool> throttled_;
  CoreFn on_throttle_;
  CoreFn on_unthrottle_;
  std::function<void()> account_all_;
  std::function<util::Time()> refill_delayer_;
  std::uint64_t refills_ = 0;
  HostProbe* probe_ = nullptr;
};

}  // namespace vc2m::sim
