// Enforcement policies for WCET/budget overruns (see sim/enforcement.h).
//
// All entry points run at interrupt boundaries: execution accounting is up
// to date and a deferred reschedule is (or will be) pending, so actions
// here only mutate scheduler state — the next reschedule_core commits the
// consequences.
#include "sim/enforcement.h"

#include "sim/simulation.h"
#include "util/error.h"

namespace vc2m::sim {

std::string to_string(EnforcementPolicy p) {
  switch (p) {
    case EnforcementPolicy::kStrict: return "strict";
    case EnforcementPolicy::kKill: return "kill";
    case EnforcementPolicy::kThrottle: return "throttle";
    case EnforcementPolicy::kDegrade: return "degrade";
  }
  return "?";
}

std::optional<EnforcementPolicy> enforcement_policy_from_string(
    const std::string& name) {
  for (const auto p :
       {EnforcementPolicy::kStrict, EnforcementPolicy::kKill,
        EnforcementPolicy::kThrottle, EnforcementPolicy::kDegrade})
    if (to_string(p) == name) return p;
  return std::nullopt;
}

void Simulation::enforce_job_budget(std::size_t core_index) {
  CoreRt& c = cores_[core_index];
  const std::size_t ti = c.running_task;
  VC2M_CHECK(ti != kNone && !tasks_[ti].pending.empty());
  tasks_[ti].pending.front().enforced = true;
  switch (cfg_.enforcement.policy) {
    case EnforcementPolicy::kStrict:
      break;  // unreachable: strict tracks no job allowance
    case EnforcementPolicy::kKill:
      kill_job(ti);
      break;
    case EnforcementPolicy::kThrottle:
      defer_job(ti);
      break;
    case EnforcementPolicy::kDegrade:
      // The overrunning job keeps executing (enforced = no further bound);
      // low-criticality tasks on the core pay for it.
      trigger_degrade(core_index, /*interrupt=*/false);
      break;
  }
}

void Simulation::kill_job(std::size_t task_index) {
  TaskRt& t = tasks_[task_index];
  VC2M_CHECK(!t.pending.empty());
  const Job job = t.pending.front();
  t.pending.pop_front();
  ++t.stats.killed;
  ++enforce_.jobs_killed;
  trace_.record({queue_.now(), TraceKind::kJobKilled,
                 static_cast<std::int32_t>(vcpus_[t.spec.vcpu].spec.core),
                 static_cast<std::int32_t>(t.spec.vcpu),
                 static_cast<std::int32_t>(task_index), job.seq});
  if (observer_) observer_->on_job_killed(task_index);
  // The job's deadline-check event finds it gone from `pending` and stays
  // silent: an aborted job is accounted as a kill, not a miss (unless the
  // miss already happened before the abort).
}

void Simulation::defer_job(std::size_t task_index) {
  TaskRt& t = tasks_[task_index];
  VC2M_CHECK(!t.pending.empty());
  Job& job = t.pending.front();
  job.deferred = true;
  ++t.stats.deferred;
  ++enforce_.jobs_deferred;
  trace_.record({queue_.now(), TraceKind::kJobDeferred,
                 static_cast<std::int32_t>(vcpus_[t.spec.vcpu].spec.core),
                 static_cast<std::int32_t>(t.spec.vcpu),
                 static_cast<std::int32_t>(task_index), job.seq});
  if (observer_) observer_->on_job_deferred(task_index);
  // vcpu_release grants a fresh allowance and clears the deferral at the
  // VCPU's next replenishment — the RTDS behavior.
}

void Simulation::trigger_degrade(std::size_t core_index, bool interrupt) {
  if (cfg_.enforcement.policy != EnforcementPolicy::kDegrade) return;
  // (Re)open the shedding window; every trigger extends it.
  degrade_until_[core_index] =
      queue_.now() + cfg_.enforcement.degrade_resume_after;
  bool suspended_any = false;
  for (const std::size_t vi : cores_[core_index].vcpus) {
    for (const std::size_t ti : vcpus_[vi].tasks) {
      TaskRt& t = tasks_[ti];
      if (t.criticality > 0 || t.suspended) continue;
      t.suspended = true;
      suspended_any = true;
      ++enforce_.task_suspensions;
      trace_.record({queue_.now(), TraceKind::kTaskSuspend,
                     static_cast<std::int32_t>(core_index),
                     static_cast<std::int32_t>(vi),
                     static_cast<std::int32_t>(ti)});
      if (observer_) observer_->on_task_suspended(ti);
    }
  }
  // Each trigger arms its own resume probe; stale probes (the window was
  // extended past them) no-op in resume_degraded.
  queue_.schedule(degrade_until_[core_index],
                  [this, core_index] { resume_degraded(core_index); });
  if (interrupt && suspended_any) interrupt_core(core_index);
}

void Simulation::resume_degraded(std::size_t core_index) {
  if (degrade_until_[core_index].is_zero()) return;        // already resumed
  if (queue_.now() < degrade_until_[core_index]) return;   // window extended
  degrade_until_[core_index] = util::Time::zero();
  bool resumed_any = false;
  for (const std::size_t vi : cores_[core_index].vcpus) {
    for (const std::size_t ti : vcpus_[vi].tasks) {
      TaskRt& t = tasks_[ti];
      if (!t.suspended) continue;
      t.suspended = false;
      resumed_any = true;
      ++enforce_.task_resumes;
      trace_.record({queue_.now(), TraceKind::kTaskResume,
                     static_cast<std::int32_t>(core_index),
                     static_cast<std::int32_t>(vi),
                     static_cast<std::int32_t>(ti)});
      if (observer_) observer_->on_task_resumed(ti);
    }
  }
  // A resumed task waits for its next (nominal-grid) release; nothing runs
  // right now, but the core may still re-decide (a non-idling server's
  // eligibility can change).
  if (resumed_any) interrupt_core(core_index);
}

void Simulation::handle_vcpu_budget_overrun(std::size_t vcpu_index) {
  VcpuRt& v = vcpus_[vcpu_index];
  const util::Time overdraw = -v.budget_left;
  if (cfg_.enforcement.policy == EnforcementPolicy::kStrict) {
    // The pre-enforcement contract: segments are bounded by the remaining
    // budget, so an overdraw means scheduler-internal breakage.
    VC2M_CHECK_MSG(false, "VCPU budget overrun");
  }
  ++enforce_.vcpu_budget_overruns;
  trace_.record({queue_.now(), TraceKind::kVcpuBudgetOverrun,
                 static_cast<std::int32_t>(v.spec.core),
                 static_cast<std::int32_t>(vcpu_index), -1,
                 overdraw.raw_ns()});
  if (observer_) observer_->on_vcpu_budget_overrun(vcpu_index, overdraw);
  // Forgive the overdraw and suspend the server for the rest of its period
  // (handle_boundaries sees the zero budget and deschedules it).
  v.budget_left = util::Time::zero();
}

}  // namespace vc2m::sim
