// Hypervisor-level scheduling: the modified-RTDS partitioned-EDF scheduler
// over periodic-server VCPUs, with throttled-core awareness and the
// deterministic tie-break of §3.2.
#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/simulation.h"
#include "util/error.h"

namespace vc2m::sim {

void Simulation::arm_vcpu_release(std::size_t vcpu_index, util::Time when) {
  VcpuRt& v = vcpus_[vcpu_index];
  queue_.cancel(v.release_event);
  v.next_release = when;
  v.release_event =
      queue_.schedule(when, [this, vcpu_index] { vcpu_release(vcpu_index); });
}

void Simulation::schedule_vcpu_update(util::Time when,
                                      std::size_t vcpu_index,
                                      util::Time period, util::Time budget) {
  VC2M_CHECK_MSG(vcpu_index < vcpus_.size(), "no such VCPU");
  VC2M_CHECK(period > util::Time::zero());
  VC2M_CHECK(budget > util::Time::zero() && budget <= period);
  queue_.schedule(when, [this, vcpu_index, period, budget] {
    VcpuRt& v = vcpus_[vcpu_index];
    v.pending_update = true;
    v.pending_period = period;
    v.pending_budget = budget;
  });
}

void Simulation::vcpu_release(std::size_t vcpu_index) {
  VcpuRt& v = vcpus_[vcpu_index];
  // Close the running segment against the *old* budget before replenishing
  // (the release instant can coincide with the exhaustion boundary).
  account_core(v.spec.core);
  if (observer_ && v.stats.releases > 0) {
    // The period ending now consumed budget − remaining under the old
    // contract; budget_left is already exact after the accounting above.
    observer_->on_vcpu_period_end(vcpu_index, v.spec.budget - v.budget_left,
                                  v.spec.budget, !v.released);
  }
  if (v.pending_update) {
    // The staged `xl sched-rtds`-style change becomes the server contract
    // for the period that starts now.
    v.spec.period = v.pending_period;
    v.spec.budget = v.pending_budget;
    v.pending_update = false;
  }
  {
    // Table 2, "CPU budget replenishment": reset the server for the new
    // period (budget, deadline, re-armed timer).
    ScopedProbe probe(probe_ ? &probe_->replenish : nullptr);
    v.released = true;
    v.budget_left = v.spec.budget;
    v.deadline = queue_.now() + v.spec.period;
    v.release_event = EventQueue::kInvalidId;
    ++v.stats.releases;
  }
  // Throttle policy: deferred jobs wake at the replenishment with a fresh
  // modeled-WCET allowance (the RTDS behavior).
  for (const std::size_t ti : v.tasks) {
    TaskRt& t = tasks_[ti];
    if (t.pending.empty() || !t.pending.front().deferred) continue;
    Job& job = t.pending.front();
    job.deferred = false;
    job.enforced = false;
    job.budget_left = t.requirement;
  }
  arm_vcpu_release(vcpu_index, queue_.now() + v.spec.period);
  trace_.record({queue_.now(), TraceKind::kVcpuRelease,
                 static_cast<std::int32_t>(v.spec.core),
                 static_cast<std::int32_t>(vcpu_index)});
  interrupt_core(v.spec.core);
}

void Simulation::interrupt_core(std::size_t core_index) {
  account_core(core_index);
  CoreRt& c = cores_[core_index];
  queue_.cancel(c.seg_end_event);
  c.seg_end_event = EventQueue::kInvalidId;
  handle_boundaries(core_index);
  defer_reschedule(core_index);
}

void Simulation::defer_reschedule(std::size_t core_index) {
  // Defer the actual scheduling decision to the end of the current
  // timestamp: several releases can fire at the same instant, and deciding
  // after each one would manufacture transient zero-length schedules the
  // real scheduler (which handles a timer tick as one batch) never makes.
  // FIFO dispatch at equal timestamps guarantees the deferred event runs
  // after every already-queued same-instant event.
  CoreRt& c = cores_[core_index];
  if (!c.resched_pending) {
    c.resched_pending = true;
    queue_.schedule(queue_.now(), [this, core_index] {
      cores_[core_index].resched_pending = false;
      reschedule_core(core_index);
    });
  }
}

void Simulation::handle_boundaries(std::size_t core_index) {
  // Execution boundaries the just-finished accounting may have reached.
  // Several can coincide (a job completing exactly as the budget runs out);
  // each handler is idempotent.
  CoreRt& c = cores_[core_index];
  if (c.running_task != kNone && !tasks_[c.running_task].pending.empty() &&
      tasks_[c.running_task].pending.front().remaining.is_zero())
    complete_job(c.running_task);

  if (c.running_task != kNone && !tasks_[c.running_task].pending.empty()) {
    // The running job exhausted its modeled-WCET allowance with work left:
    // hand it to the enforcement policy (a fresh front job after the
    // completion above still has its full allowance).
    const Job& job = tasks_[c.running_task].pending.front();
    if (enforces_job_budget(cfg_.enforcement.policy) && !job.enforced &&
        !job.deferred && job.budget_left.is_zero() &&
        !job.remaining.is_zero())
      enforce_job_budget(core_index);
  }

  if (c.running_vcpu != kNone) {
    VcpuRt& v = vcpus_[c.running_vcpu];
    if (v.released && v.budget_left.is_zero()) {
      v.released = false;  // suspended until the next replenishment
      ++v.stats.exhaustions;
      trace_.record({queue_.now(), TraceKind::kVcpuBudgetExhausted,
                     static_cast<std::int32_t>(core_index),
                     static_cast<std::int32_t>(c.running_vcpu)});
    }
  }
}

void Simulation::account_core(std::size_t core_index) {
  CoreRt& c = cores_[core_index];
  if (c.running_vcpu == kNone) return;
  const util::Time delta = queue_.now() - c.seg_start;
  if (delta <= util::Time::zero()) return;
  c.busy += delta;
  c.seg_start = queue_.now();

  VcpuRt& v = vcpus_[c.running_vcpu];
  v.budget_left -= delta;  // budget is core occupancy, bus stalls included
  v.stats.budget_consumed += delta;
  // Segments are bounded by the remaining budget, so an overdraw is
  // impossible by construction — fatal under the strict policy, a
  // recoverable BudgetOverrun event under every other one.
  if (v.budget_left.is_negative())
    handle_vcpu_budget_overrun(c.running_vcpu);

  if (!c.overhead_left.is_zero()) {
    // The core is burning context-switch overhead: budget and wall time
    // pass, the task makes no progress.
    const util::Time burned = util::min(delta, c.overhead_left);
    c.overhead_left -= burned;
    VC2M_CHECK_MSG(c.running_task == kNone,
                   "no task may run during switch overhead");
    return;
  }

  if (c.running_task != kNone) {
    TaskRt& t = tasks_[c.running_task];
    VC2M_CHECK(!t.pending.empty());
    Job& job = t.pending.front();
    // Executed work advances at the core's bus-limited speed; clamp to the
    // job's remaining work to absorb float rounding at segment boundaries.
    util::Time progress = delta;
    if (c.exec_rate < 1.0)
      progress = util::Time::ns(static_cast<std::int64_t>(
          static_cast<double>(delta.raw_ns()) * c.exec_rate + 0.5));
    progress = util::min(progress, job.remaining);
    job.remaining -= progress;
    if (enforces_job_budget(cfg_.enforcement.policy) && !job.enforced) {
      job.budget_left -= progress;
      if (job.budget_left.is_negative())
        job.budget_left = util::Time::zero();
    }
    regulator_->add_requests(
        static_cast<unsigned>(core_index),
        t.req_rate * static_cast<double>(progress.raw_ns()));
  }
}

bool Simulation::vcpu_eligible(const VcpuRt& v) const {
  if (!v.released || v.budget_left <= util::Time::zero()) return false;
  if (v.spec.idling_server) return true;
  // A non-idling server suspends while it has no runnable job.
  for (const std::size_t ti : v.tasks)
    if (task_runnable(tasks_[ti])) return true;
  return false;
}

std::size_t Simulation::pick_vcpu(const CoreRt& core) const {
  // EDF with the deterministic tie-break: earliest absolute deadline, then
  // smaller period, then smaller VCPU index (§3.2, prerequisite for
  // well-regulated execution).
  std::size_t best = kNone;
  for (const std::size_t vi : core.vcpus) {
    const VcpuRt& v = vcpus_[vi];
    if (!vcpu_eligible(v)) continue;
    if (best == kNone) {
      best = vi;
      continue;
    }
    const VcpuRt& b = vcpus_[best];
    if (v.deadline != b.deadline) {
      if (v.deadline < b.deadline) best = vi;
    } else if (v.spec.period != b.spec.period) {
      if (v.spec.period < b.spec.period) best = vi;
    } else if (vi < best) {
      best = vi;
    }
  }
  return best;
}

void Simulation::reschedule_core(std::size_t core_index) {
  CoreRt& c = cores_[core_index];
  const auto core_u = static_cast<unsigned>(core_index);

  // The core may sit exactly on its bandwidth boundary (an interrupt can
  // land at the same instant the budget runs out). Fire the enforcer first;
  // it throttles the core and re-enters this function with the throttled
  // flag set.
  if (regulator_->enabled() && !regulator_->throttled(core_u) &&
      regulator_->used(core_u) >= regulator_->budget(core_u) - 0.5) {
    regulator_->trigger_overflow(core_u);
    return;
  }

  const std::size_t prev_vcpu = c.running_vcpu;
  const std::size_t prev_task = c.running_task;

  std::size_t next_vcpu = kNone;
  std::size_t next_task = kNone;
  {
    // Table 2, "Scheduling": the pick itself.
    ScopedProbe probe(probe_ ? &probe_->schedule : nullptr);
    if (!regulator_->throttled(static_cast<unsigned>(core_index))) {
      next_vcpu = pick_vcpu(c);
      if (next_vcpu != kNone) next_task = pick_task(vcpus_[next_vcpu]);
    }
  }

  if (next_vcpu != prev_vcpu) {
    // A fresh switch (re)starts the context-switch overhead window; the
    // incoming VCPU's task may only run once it is burned.
    c.overhead_left = next_vcpu != kNone ? cfg_.vcpu_switch_cost
                                         : util::Time::zero();
    // Table 2, "Context switching": bookkeeping for the VCPU swap.
    ScopedProbe probe(probe_ ? &probe_->context_switch : nullptr);
    if (prev_vcpu != kNone)
      trace_.record({queue_.now(), TraceKind::kVcpuDeschedule,
                     static_cast<std::int32_t>(core_index),
                     static_cast<std::int32_t>(prev_vcpu)});
    if (next_vcpu != kNone) {
      trace_.record({queue_.now(), TraceKind::kVcpuSchedule,
                     static_cast<std::int32_t>(core_index),
                     static_cast<std::int32_t>(next_vcpu)});
      ++vcpu_switches_;
      ++vcpus_[next_vcpu].stats.switches_in;
    }
  }
  if (!c.overhead_left.is_zero()) next_task = kNone;  // overhead burns first
  if (next_task != kNone &&
      (next_task != prev_task || next_vcpu != prev_vcpu)) {
    ++task_dispatches_;
    trace_.record({queue_.now(), TraceKind::kTaskDispatch,
                   static_cast<std::int32_t>(core_index),
                   static_cast<std::int32_t>(next_vcpu),
                   static_cast<std::int32_t>(next_task)});
  }

  c.running_vcpu = next_vcpu;
  c.running_task = next_task;
  if (next_vcpu != kNone) {
    c.seg_start = queue_.now();
    plan_segment(core_index);
  }
  // Every commit — including one that idles the core — changes the set of
  // bus consumers, so the shared-bus shares must be refreshed.
  if (cfg_.bus_contention) recompute_bus_rates();
}

void Simulation::plan_segment(std::size_t core_index) {
  CoreRt& c = cores_[core_index];
  if (c.running_vcpu == kNone) return;
  const VcpuRt& v = vcpus_[c.running_vcpu];
  util::Time seg = v.budget_left;  // budget exhaustion bound (wall time)
  if (!c.overhead_left.is_zero()) {
    // Burn the switch overhead as its own segment; the follow-up
    // reschedule dispatches the task.
    seg = util::min(seg, c.overhead_left);
  }
  if (c.running_task != kNone) {
    const TaskRt& t = tasks_[c.running_task];
    // Completion bound, stretched by the bus-limited execution speed. An
    // enforcing policy additionally bounds the segment at the job's
    // remaining allowance, so enforcement fires exactly on time.
    const Job& job = t.pending.front();
    util::Time completion = job.remaining;
    if (enforces_job_budget(cfg_.enforcement.policy) && !job.enforced)
      completion = util::min(completion, job.budget_left);
    if (c.exec_rate < 1.0)
      completion = util::Time::ns(static_cast<std::int64_t>(std::ceil(
          static_cast<double>(completion.raw_ns()) / c.exec_rate)));
    seg = util::min(seg, completion);
    const util::Time ovf = regulator_->predict_overflow_delay(
        static_cast<unsigned>(core_index), t.req_rate * c.exec_rate);
    if (ovf != util::Time::max()) seg = util::min(seg, ovf);
  }
  VC2M_CHECK_MSG(seg > util::Time::zero(), "zero-length execution segment");
  c.seg_end_event = queue_.schedule(
      queue_.now() + seg, [this, core_index] { segment_end(core_index); });
}

void Simulation::recompute_bus_rates() {
  // Proportional bus sharing: an oversubscribed memory bus serves each
  // core's requests in proportion to its issue rate (FR-FCFS-like), so a
  // saturated bus slows *every* memory-active core by the common factor
  // capacity/Σdemand — this is exactly the cross-core interference the
  // paper's regulation removes (a heavy streamer degrades even light
  // victims, as the MemGuard experiments show).
  const double period_ns =
      static_cast<double>(cfg_.regulation_period.raw_ns());
  const double capacity = (cfg_.bus_requests_per_period > 0
                               ? cfg_.bus_requests_per_period
                               : static_cast<double>(cfg_.cache_partitions) *
                                     cfg_.requests_per_partition) /
                          period_ns;  // requests per ns

  std::vector<double> new_rate(cores_.size(), 1.0);
  double total_demand = 0;
  for (std::size_t k = 0; k < cores_.size(); ++k)
    if (cores_[k].running_task != kNone)
      total_demand += tasks_[cores_[k].running_task].req_rate;
  if (total_demand > capacity) {
    const double f = capacity / total_demand;
    for (std::size_t k = 0; k < cores_.size(); ++k)
      if (cores_[k].running_task != kNone &&
          tasks_[cores_[k].running_task].req_rate > 0)
        new_rate[k] = f;
  }

  for (std::size_t k = 0; k < cores_.size(); ++k) {
    if (std::abs(new_rate[k] - cores_[k].exec_rate) < 1e-12) continue;
    // Charge the elapsed part of the segment at the old speed, then let the
    // core re-decide (the accounting may land exactly on a budget or
    // completion boundary, so the full interrupt path is required).
    account_core(k);
    cores_[k].exec_rate = new_rate[k];
    queue_.cancel(cores_[k].seg_end_event);
    cores_[k].seg_end_event = EventQueue::kInvalidId;
    handle_boundaries(k);
    defer_reschedule(k);
  }
}

void Simulation::segment_end(std::size_t core_index) {
  // Identical to an interrupt; the pending-event id is already consumed.
  // A bandwidth overflow coinciding with this boundary is handled by the
  // guard at the top of reschedule_core.
  cores_[core_index].seg_end_event = EventQueue::kInvalidId;
  interrupt_core(core_index);
}

void Simulation::on_throttle(unsigned core_index) {
  // The BW enforcer handler asked the scheduler to de-schedule the core's
  // VCPU; reschedule_core sees the throttled flag and leaves the core idle.
  cores_[core_index].throttle_start = queue_.now();
  interrupt_core(core_index);
}

void Simulation::on_unthrottle(unsigned core_index) {
  CoreRt& c = cores_[core_index];
  const util::Time window = queue_.now() - c.throttle_start;
  c.throttled_time += window;
  if (observer_) observer_->on_throttle_end(core_index, window);
  interrupt_core(core_index);
}

}  // namespace vc2m::sim
