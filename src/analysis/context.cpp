#include "analysis/context.h"

#include "analysis/prm.h"
#include "util/phase_profiler.h"

namespace vc2m::analysis {

std::optional<util::Time> AnalysisContext::min_budget(
    std::span<const PTask> tasks, util::Time period,
    std::optional<util::Time> feasible_hint) {
  std::vector<std::int64_t> key;
  key.reserve(2 * tasks.size() + 1);
  key.push_back(period.raw_ns());
  for (const auto& t : tasks) {
    key.push_back(t.period.raw_ns());
    key.push_back(t.wcet.raw_ns());
  }

  const auto it = budget_memo_.find(key);
  if (it != budget_memo_.end()) {
    if (auto* ctr = util::alloc_counters()) ++ctr->budget_cache_hits;
    return it->second;
  }

  if (auto* ctr = util::alloc_counters()) ++ctr->budget_evaluations;
  VC2M_PROFILE_PHASE("min_budget");
  const auto theta = feasible_hint
                         ? min_budget_edf_bounded(tasks, period, *feasible_hint)
                         : min_budget_edf(tasks, period);
  budget_memo_.emplace(std::move(key), theta);
  return theta;
}

}  // namespace vc2m::analysis
