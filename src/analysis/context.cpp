#include "analysis/context.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>

#include "analysis/prm.h"
#include "obs/decision_log.h"
#include "util/phase_profiler.h"
#include "util/thread_pool.h"

namespace vc2m::analysis {

namespace {
std::atomic<bool> g_fast_kernels{true};
}  // namespace

bool fast_kernels_enabled() {
  return g_fast_kernels.load(std::memory_order_relaxed);
}

void set_fast_kernels(bool enabled) {
  g_fast_kernels.store(enabled, std::memory_order_relaxed);
}

void AnalysisContext::emit_budget_search(
    std::span<const PTask> tasks, util::Time period,
    const std::optional<util::Time>& theta) {
  auto* log = obs::decision_log();
  if (!log) return;
  obs::DecisionEvent e;
  e.kind = obs::DecisionKind::kBudgetSearch;
  if (theta) {
    e.accepted = true;
    e.value = theta->ratio(period);
    e.margin = 1.0 - e.value;
  } else {
    double u = 0;
    for (const auto& t : tasks) u += t.wcet.ratio(t.period);
    e.constraint = obs::DecisionConstraint::kNoFeasibleBudget;
    e.value = u;
    e.margin = std::max(0.0, u - 1.0);
  }
  log->emit(e);
}

const AnalysisContext::CheckpointEntry& AnalysisContext::checkpoints_for(
    std::span<const PTask> tasks, util::Time period) {
  std::vector<std::int64_t> key;
  key.reserve(tasks.size() + 1);
  key.push_back(period.raw_ns());
  for (const auto& t : tasks) key.push_back(t.period.raw_ns());

  const auto it = checkpoint_cache_.find(key);
  if (it != checkpoint_cache_.end()) return it->second;

  VC2M_PROFILE_PHASE("checkpoints");
  if (auto* ctr = util::alloc_counters()) ++ctr->soa_rebuilds;
  soa_.assign(tasks);
  const util::Time horizon = util::lcm(soa_.hyperperiod(), period);
  CheckpointEntry entry;
  entry.periods = soa_.period;
  merge_checkpoints(entry.periods, horizon, entry.points);
  // unordered_map values are node-stable: the reference survives rehashes.
  return checkpoint_cache_.emplace(std::move(key), std::move(entry))
      .first->second;
}

std::optional<util::Time> AnalysisContext::compute_min_budget_fast(
    std::span<const PTask> tasks, util::Time period, const CheckpointEntry* ck,
    double total_util, util::Arena& scratch) {
  // Mirrors min_budget_edf's early-outs exactly; when neither fires the
  // caller has resolved `ck` (over-utilized groups never build checkpoints,
  // matching the reference path's order of operations).
  if (tasks.empty()) return util::Time::zero();
  if (total_util > 1.0 + 1e-12) return std::nullopt;

  util::Arena::Scope mark(scratch);
  auto wcets = scratch.alloc_array<std::int64_t>(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    wcets[i] = tasks[i].wcet.raw_ns();
  auto demand = scratch.alloc_array<util::Time>(ck->points.size());
  demand_at(ck->periods, wcets, ck->points, demand);
  return min_budget_on_curve(DemandCurve{ck->points, demand}, total_util,
                             period);
}

std::optional<util::Time> AnalysisContext::min_budget(
    std::span<const PTask> tasks, util::Time period,
    std::optional<util::Time> feasible_hint) {
  std::vector<std::int64_t> key;
  key.reserve(2 * tasks.size() + 1);
  key.push_back(period.raw_ns());
  for (const auto& t : tasks) {
    key.push_back(t.period.raw_ns());
    key.push_back(t.wcet.raw_ns());
  }

  const auto it = budget_memo_.find(key);
  if (it != budget_memo_.end()) {
    if (auto* ctr = util::alloc_counters()) ++ctr->budget_cache_hits;
    return it->second;
  }

  if (auto* ctr = util::alloc_counters()) ++ctr->budget_evaluations;
  VC2M_PROFILE_PHASE("min_budget");
  std::optional<util::Time> theta;
  if (fast_kernels_enabled()) {
    // The hint is ignored on purpose: with the demand curve precomputed the
    // extra binary-search probes cost only sbf comparisons, and the result
    // is identical with or without the bound.
    const double u = total_utilization(tasks);
    const CheckpointEntry* ck = nullptr;
    if (!tasks.empty() && u <= 1.0 + 1e-12)
      ck = &checkpoints_for(tasks, period);
    theta = compute_min_budget_fast(tasks, period, ck, u, arena_);
  } else {
    theta = feasible_hint
                ? min_budget_edf_bounded(tasks, period, *feasible_hint)
                : min_budget_edf(tasks, period);
  }
  emit_budget_search(tasks, period, theta);
  budget_memo_.emplace(std::move(key), theta);
  return theta;
}

std::vector<AnalysisContext::BatchResult> AnalysisContext::min_budget_batch(
    std::span<const std::span<const PTask>> queries, util::Time period) {
  std::vector<BatchResult> out(queries.size());
  if (queries.empty()) return out;
  VC2M_PROFILE_PHASE("min_budget_surface");

  // One distinct, unmemoized query; duplicates within the batch alias it.
  struct Job {
    std::size_t first;              ///< first query index asking this key
    std::vector<std::int64_t> key;  ///< committed to the memo afterwards
    double util = 0;
    const CheckpointEntry* ck = nullptr;
    std::optional<util::Time> theta;
    util::AllocCounters counters;  ///< striped runs only
  };
  std::vector<Job> jobs;
  std::vector<std::size_t> job_of(queries.size(), SIZE_MAX);
  std::unordered_map<std::vector<std::int64_t>, std::size_t, KeyHash>
      batch_index;

  // Serial pass 1 — memo and duplicate resolution, with counter semantics
  // identical to a serial min_budget() loop over the queries: fresh key →
  // budget_evaluations, repeated or memoized key → budget_cache_hits.
  auto* ctr = util::alloc_counters();
  std::vector<std::int64_t> key;
  for (std::size_t q = 0; q < queries.size(); ++q) {
    key.clear();
    key.reserve(2 * queries[q].size() + 1);
    key.push_back(period.raw_ns());
    for (const auto& t : queries[q]) {
      key.push_back(t.period.raw_ns());
      key.push_back(t.wcet.raw_ns());
    }
    if (const auto hit = budget_memo_.find(key); hit != budget_memo_.end()) {
      if (ctr) ++ctr->budget_cache_hits;
      out[q] = BatchResult{hit->second, false};
      continue;
    }
    if (const auto dup = batch_index.find(key); dup != batch_index.end()) {
      // A serial loop would have memoized the first occurrence already.
      if (ctr) ++ctr->budget_cache_hits;
      job_of[q] = dup->second;
      continue;
    }
    if (ctr) ++ctr->budget_evaluations;
    job_of[q] = jobs.size();
    batch_index.emplace(key, jobs.size());
    jobs.push_back(Job{q, key, total_utilization(queries[q]), nullptr,
                       std::nullopt, util::AllocCounters{}});
  }

  if (!jobs.empty()) {
    if (ctr) ctr->inner_tasks += jobs.size();

    // Serial pass 2 — resolve checkpoint streams. Cache fills (and any
    // lcm-overflow / checkpoint-cap failure they raise) happen here in
    // deterministic batch order, never on a worker. Over-utilized groups
    // skip the build, like the reference path.
    for (auto& job : jobs)
      if (!queries[job.first].empty() && job.util <= 1.0 + 1e-12)
        job.ck = &checkpoints_for(queries[job.first], period);

    const std::size_t stripes =
        (inner_pool_ != nullptr && inner_jobs_ > 1)
            ? std::min<std::size_t>(static_cast<std::size_t>(inner_jobs_),
                                    jobs.size())
            : 1;
    if (stripes <= 1) {
      // Serial compute: counters land directly in the context scope, in job
      // order — the baseline the striped path reproduces.
      for (auto& job : jobs)
        job.theta = compute_min_budget_fast(queries[job.first], period,
                                            job.ck, job.util, arena_);
    } else {
      // Striped compute: job j runs on stripe j % stripes. Each stripe has
      // its own arena (arenas are single-threaded) and each job its own
      // counter scope (null parent on a pool worker, so nothing merges
      // implicitly); the slots are merged below on the calling thread.
      // Every counter a job touches is a uint64 add, so the totals are
      // bit-identical to the serial path regardless of stripe count.
      //
      // The batch waits on its own latch, not ThreadPool::wait(): pool
      // tasks must not call wait(), and the pool may be shared by batches
      // of concurrently running solves.
      std::vector<util::Arena> stripe_arenas(stripes);
      std::mutex mu;
      std::condition_variable cv;
      std::size_t remaining = stripes;
      std::exception_ptr error;
      for (std::size_t s = 0; s < stripes; ++s) {
        inner_pool_->submit([&, s] {
          try {
            for (std::size_t j = s; j < jobs.size(); j += stripes) {
              util::AllocCounterScope scope;
              jobs[j].theta = compute_min_budget_fast(
                  queries[jobs[j].first], period, jobs[j].ck, jobs[j].util,
                  stripe_arenas[s]);
              jobs[j].counters = scope.counters();
            }
          } catch (...) {
            const std::lock_guard<std::mutex> lk(mu);
            if (!error) error = std::current_exception();
          }
          {
            // Notify while still holding the mutex: the waiter cannot
            // return from wait() (and destroy cv/mu/the arenas) until this
            // unlock, so the notify never touches a dead condvar.
            const std::lock_guard<std::mutex> lk(mu);
            --remaining;
            cv.notify_one();
          }
        });
      }
      std::unique_lock<std::mutex> lk(mu);
      cv.wait(lk, [&] { return remaining == 0; });
      lk.unlock();
      if (error) std::rethrow_exception(error);
      if (ctr)
        for (const auto& job : jobs) ctr->merge(job.counters);
    }

    for (auto& job : jobs) budget_memo_.emplace(std::move(job.key), job.theta);
  }

  for (std::size_t q = 0; q < queries.size(); ++q)
    if (job_of[q] != SIZE_MAX)
      out[q] = BatchResult{jobs[job_of[q]].theta,
                           q == jobs[job_of[q]].first};
  return out;
}

}  // namespace vc2m::analysis
