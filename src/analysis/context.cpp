#include "analysis/context.h"

#include <algorithm>

#include "analysis/prm.h"
#include "obs/decision_log.h"
#include "util/phase_profiler.h"

namespace vc2m::analysis {

std::optional<util::Time> AnalysisContext::min_budget(
    std::span<const PTask> tasks, util::Time period,
    std::optional<util::Time> feasible_hint) {
  std::vector<std::int64_t> key;
  key.reserve(2 * tasks.size() + 1);
  key.push_back(period.raw_ns());
  for (const auto& t : tasks) {
    key.push_back(t.period.raw_ns());
    key.push_back(t.wcet.raw_ns());
  }

  const auto it = budget_memo_.find(key);
  if (it != budget_memo_.end()) {
    if (auto* ctr = util::alloc_counters()) ++ctr->budget_cache_hits;
    return it->second;
  }

  if (auto* ctr = util::alloc_counters()) ++ctr->budget_evaluations;
  VC2M_PROFILE_PHASE("min_budget");
  const auto theta = feasible_hint
                         ? min_budget_edf_bounded(tasks, period, *feasible_hint)
                         : min_budget_edf(tasks, period);
  if (auto* log = obs::decision_log()) {
    obs::DecisionEvent e;
    e.kind = obs::DecisionKind::kBudgetSearch;
    if (theta) {
      e.accepted = true;
      e.value = theta->ratio(period);
      e.margin = 1.0 - e.value;
    } else {
      double u = 0;
      for (const auto& t : tasks) u += t.wcet.ratio(t.period);
      e.constraint = obs::DecisionConstraint::kNoFeasibleBudget;
      e.value = u;
      e.margin = std::max(0.0, u - 1.0);
    }
    log->emit(e);
  }
  budget_memo_.emplace(std::move(key), theta);
  return theta;
}

}  // namespace vc2m::analysis
