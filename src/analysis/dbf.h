// EDF demand-bound functions for implicit-deadline periodic tasks.
//
// The compositional analyses in this library all reduce to comparing the
// demand of a (plain, resource-agnostic) periodic taskset against the supply
// of a resource model. `PTask` is that plain view: a (period, wcet) pair
// obtained by evaluating a cache/BW-aware task at one grid point.
#pragma once

#include <span>
#include <vector>

#include "util/time.h"

namespace vc2m::analysis {

/// A plain implicit-deadline periodic task (p, e) with e already fixed for a
/// concrete (cache, bandwidth) allocation.
struct PTask {
  util::Time period;
  util::Time wcet;
};

/// EDF demand bound: dbf(t) = Σ_i ⌊t / p_i⌋ · e_i (implicit deadlines).
util::Time dbf(std::span<const PTask> tasks, util::Time t);

/// Σ e_i / p_i.
double total_utilization(std::span<const PTask> tasks);

/// Hyperperiod (LCM of all periods).
util::Time hyperperiod(std::span<const PTask> tasks);

/// The points where dbf() jumps within (0, horizon]: every multiple of every
/// period. Sorted, deduplicated. Since dbf is a right-continuous step
/// function and every relevant supply bound is non-decreasing, verifying
/// dbf(t) <= sbf(t) at these points verifies it everywhere.
std::vector<util::Time> dbf_checkpoints(std::span<const PTask> tasks,
                                        util::Time horizon);

}  // namespace vc2m::analysis
