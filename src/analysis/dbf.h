// EDF demand-bound functions for implicit-deadline periodic tasks.
//
// The compositional analyses in this library all reduce to comparing the
// demand of a (plain, resource-agnostic) periodic taskset against the supply
// of a resource model. `PTask` is that plain view: a (period, wcet) pair
// obtained by evaluating a cache/BW-aware task at one grid point.
//
// Two call styles coexist:
//  - The span-of-PTask functions are the reference kernels (readable,
//    allocation-per-call); tests pin the fast path against them.
//  - `TaskArrays` is the structure-of-arrays view the hot path uses:
//    contiguous period/wcet/utilization columns validated once at assign()
//    time, so the demand-sum inner loops are branchless (no per-element
//    VC2M_CHECK) and cache-dense. AnalysisContext builds and caches these
//    (docs/performance.md).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/time.h"

namespace vc2m::analysis {

/// A plain implicit-deadline periodic task (p, e) with e already fixed for a
/// concrete (cache, bandwidth) allocation.
struct PTask {
  util::Time period;
  util::Time wcet;
};

/// EDF demand bound: dbf(t) = Σ_i ⌊t / p_i⌋ · e_i (implicit deadlines).
util::Time dbf(std::span<const PTask> tasks, util::Time t);

/// Σ e_i / p_i.
double total_utilization(std::span<const PTask> tasks);

/// Hyperperiod (LCM of all periods). Fails loudly (util::lcm overflow
/// check) when the exact hyperperiod exceeds 64-bit nanoseconds.
util::Time hyperperiod(std::span<const PTask> tasks);

/// Hard cap on the number of checkpoints one dbf_checkpoints call may
/// produce. Worst-case transient memory is Σ_i horizon/p_i Time values
/// *before* dedup — a 1 ns period against a 1 s horizon would be 10⁹ points
/// (8 GB) — so the count is computed first and checked against this cap
/// (2²² points ≈ 32 MiB) instead of letting the allocation OOM.
inline constexpr std::int64_t kDbfCheckpointCap = std::int64_t{1} << 22;

/// The points where dbf() jumps within (0, horizon]: every multiple of every
/// period. Sorted, deduplicated. Since dbf is a right-continuous step
/// function and every relevant supply bound is non-decreasing, verifying
/// dbf(t) <= sbf(t) at these points verifies it everywhere. Fails (with the
/// offending count) when the pre-dedup point count exceeds
/// kDbfCheckpointCap.
std::vector<util::Time> dbf_checkpoints(std::span<const PTask> tasks,
                                        util::Time horizon);

/// Structure-of-arrays view of a PTask span: contiguous raw-ns period and
/// wcet columns plus the in-task-order utilization sum (bit-identical to
/// total_utilization(), which matters because schedulability compares it
/// against bandwidth with an epsilon). Periods are validated positive once
/// here, so the kernels below run check-free inner loops.
struct TaskArrays {
  std::vector<std::int64_t> period;  ///< p_i in raw ns
  std::vector<std::int64_t> wcet;    ///< e_i in raw ns
  double total_util = 0;             ///< Σ e_i/p_i, summed in task order

  void assign(std::span<const PTask> tasks);
  std::size_t size() const { return period.size(); }
  bool empty() const { return period.empty(); }

  /// Hyperperiod of the period column (checked util::lcm).
  util::Time hyperperiod() const;
};

/// Demand at each checkpoint over SoA columns: out[k] = Σ_i ⌊points[k]/p_i⌋
/// e_i. The wcet column is passed separately so one cached period column
/// serves many wcet surfaces (grid cells). Counts one dbf evaluation per
/// point — each out[k] is exactly one dbf(t).
void demand_at(std::span<const std::int64_t> periods,
               std::span<const std::int64_t> wcets,
               std::span<const util::Time> points,
               std::span<util::Time> out);

/// dbf_checkpoints over a period column: a k-way merge of the per-task
/// arithmetic streams (p, 2p, 3p, …) into `out`, already sorted and
/// deduplicated — no materialize-then-sort. Same cap and same result as
/// dbf_checkpoints(). `out` is cleared first.
void merge_checkpoints(std::span<const std::int64_t> periods,
                       util::Time horizon, std::vector<util::Time>& out);

}  // namespace vc2m::analysis
