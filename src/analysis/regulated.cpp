#include "analysis/regulated.h"

#include "util/error.h"

namespace vc2m::analysis {

util::Time RegulatedSupply::sbf(util::Time t) const {
  VC2M_CHECK(budget >= util::Time::zero() && budget <= period);
  if (t <= util::Time::zero()) return util::Time::zero();
  const std::int64_t k = t / period;
  const util::Time rem = t % period;
  const util::Time gap = period - budget;  // Π − Θ, exposed once
  const util::Time partial = util::max(util::Time::zero(), rem - gap);
  return budget * k + util::min(partial, budget);
}

bool edf_schedulable_on_regulated(std::span<const PTask> tasks,
                                  const RegulatedSupply& supply) {
  VC2M_CHECK(supply.period > util::Time::zero());
  if (tasks.empty()) return true;
  if (total_utilization(tasks) > supply.bandwidth() + 1e-12) return false;

  const util::Time horizon =
      util::lcm(hyperperiod(tasks), supply.period);
  for (const util::Time t : dbf_checkpoints(tasks, horizon))
    if (dbf(tasks, t) > supply.sbf(t)) return false;
  return true;
}

std::optional<util::Time> min_budget_regulated(std::span<const PTask> tasks,
                                               util::Time period) {
  VC2M_CHECK(period > util::Time::zero());
  if (tasks.empty()) return util::Time::zero();
  const double u = total_utilization(tasks);
  if (u > 1.0 + 1e-12) return std::nullopt;
  if (!edf_schedulable_on_regulated(tasks, {period, period}))
    return std::nullopt;

  util::Time lo = util::Time::ns(static_cast<std::int64_t>(
      u * static_cast<double>(period.raw_ns())));
  util::Time hi = period;
  while (lo < hi) {
    const util::Time mid =
        util::Time::ns(lo.raw_ns() + (hi.raw_ns() - lo.raw_ns()) / 2);
    if (edf_schedulable_on_regulated(tasks, {period, mid}))
      hi = mid;
    else
      lo = mid + util::Time::ns(1);
  }
  return hi;
}

}  // namespace vc2m::analysis
