#include "analysis/regulated.h"

#include <vector>

#include "analysis/context.h"
#include "util/error.h"

namespace vc2m::analysis {

util::Time RegulatedSupply::sbf(util::Time t) const {
  VC2M_CHECK(budget >= util::Time::zero() && budget <= period);
  if (t <= util::Time::zero()) return util::Time::zero();
  const std::int64_t k = t / period;
  const util::Time rem = t % period;
  const util::Time gap = period - budget;  // Π − Θ, exposed once
  const util::Time partial = util::max(util::Time::zero(), rem - gap);
  return budget * k + util::min(partial, budget);
}

bool edf_schedulable_on_regulated(std::span<const PTask> tasks,
                                  const RegulatedSupply& supply) {
  VC2M_CHECK(supply.period > util::Time::zero());
  if (tasks.empty()) return true;
  if (total_utilization(tasks) > supply.bandwidth() + 1e-12) return false;

  const util::Time horizon =
      util::lcm(hyperperiod(tasks), supply.period);
  for (const util::Time t : dbf_checkpoints(tasks, horizon))
    if (dbf(tasks, t) > supply.sbf(t)) return false;
  return true;
}

std::optional<util::Time> min_budget_regulated(std::span<const PTask> tasks,
                                               util::Time period) {
  VC2M_CHECK(period > util::Time::zero());
  if (tasks.empty()) return util::Time::zero();
  const double u = total_utilization(tasks);
  if (u > 1.0 + 1e-12) return std::nullopt;
  if (!fast_kernels_enabled()) {
    if (!edf_schedulable_on_regulated(tasks, {period, period}))
      return std::nullopt;

    util::Time lo = util::Time::ns(static_cast<std::int64_t>(
        u * static_cast<double>(period.raw_ns())));
    util::Time hi = period;
    while (lo < hi) {
      const util::Time mid =
          util::Time::ns(lo.raw_ns() + (hi.raw_ns() - lo.raw_ns()) / 2);
      if (edf_schedulable_on_regulated(tasks, {period, mid}))
        hi = mid;
      else
        lo = mid + util::Time::ns(1);
    }
    return hi;
  }

  // Fast path: the checkpoint set and the demand at each checkpoint do not
  // depend on the probed Θ, so compute both once and re-run only the
  // Θ-dependent supply comparisons per probe. Demand and supply are exact
  // integers and the rate condition uses the identical u, so every probe's
  // verdict — and the returned minimum — is bit-identical to the reference
  // path above.
  const util::Time horizon = util::lcm(hyperperiod(tasks), period);
  TaskArrays soa;
  soa.assign(tasks);
  std::vector<util::Time> points;
  merge_checkpoints(soa.period, horizon, points);
  std::vector<util::Time> demand(points.size());
  demand_at(soa.period, soa.wcet, points, demand);
  const auto schedulable = [&](util::Time theta) {
    const RegulatedSupply supply{period, theta};
    if (u > supply.bandwidth() + 1e-12) return false;
    for (std::size_t k = 0; k < points.size(); ++k)
      if (demand[k] > supply.sbf(points[k])) return false;
    return true;
  };

  if (!schedulable(period)) return std::nullopt;
  util::Time lo = util::Time::ns(static_cast<std::int64_t>(
      u * static_cast<double>(period.raw_ns())));
  util::Time hi = period;
  while (lo < hi) {
    const util::Time mid =
        util::Time::ns(lo.raw_ns() + (hi.raw_ns() - lo.raw_ns()) / 2);
    if (schedulable(mid))
      hi = mid;
    else
      lo = mid + util::Time::ns(1);
  }
  return hi;
}

}  // namespace vc2m::analysis
