// The overhead-free VCPU interfaces of §4.2.
//
// Theorem 1 (flattening): a task scheduled alone on a VCPU whose release is
// synchronized with the task's is schedulable iff the VCPU — viewed as a
// periodic task (Π = p_i, Θ(c,b) = e_i(c,b)) — is schedulable. The VCPU
// bandwidth equals the task utilization: zero abstraction overhead.
//
// Theorem 2 (well-regulated VCPUs): a *harmonic* taskset is EDF-schedulable
// on a well-regulated VCPU (execution pattern repeating each period) with
// period Π = min_i p_i and budget Θ(c,b) = Π · Σ_i e_i(c,b)/p_i. The VCPU
// bandwidth equals the taskset utilization: again zero overhead.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "model/task.h"

namespace vc2m::analysis {

/// Theorem 1: the dedicated, release-synchronized VCPU for one task.
/// `task_index` is recorded in the VCPU's task list.
model::Vcpu flattened_vcpu(const model::Task& task, std::size_t task_index);

/// One flattened VCPU per task, in task order.
std::vector<model::Vcpu> flatten(const model::Taskset& tasks);

/// Theorem 2: the well-regulated VCPU serving the (harmonic) tasks at
/// `task_indices` within `tasks`. Throws util::Error if the selected tasks
/// are not harmonic. Budgets are computed with exact integer arithmetic
/// (Π divides every period) and rounded up to the nanosecond.
model::Vcpu regulated_vcpu(const model::Taskset& tasks,
                           std::span<const std::size_t> task_indices);

/// Partition `task_indices` into harmonic chains: within each returned
/// group every pair of periods is harmonic (one divides the other), so
/// each group satisfies Theorem 2's precondition. Greedy first-fit over
/// tasks sorted by period; a fully harmonic input yields a single group.
std::vector<std::vector<std::size_t>> harmonic_groups(
    const model::Taskset& tasks, std::span<const std::size_t> task_indices);

}  // namespace vc2m::analysis
