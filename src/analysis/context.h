// Shared memoization context for one allocation run.
//
// Both allocation levels (vm_alloc, hv_alloc) and the online paths
// (admission, exact search) ask the same analysis questions repeatedly: the
// existing-CSA minimum budget for a task group at a grid point, and the
// effort counters everything reports through. An AnalysisContext is created
// once per run (one solve(), one admission decision), threaded through both
// levels, and memoizes those answers — so a budget computed while
// parameterizing a VCPU is never re-derived by a later stage asking for the
// identical (period, taskset) pair.
//
// The memo is bit-identity-preserving: a hit returns exactly the value the
// unmemoized analysis::min_budget_edf call produced for the identical key.
// Beyond the memo, the context owns the analysis fast path
// (docs/performance.md):
//  - a per-solve bump Arena for all scratch (checkpoint buffers, demand
//    curves, per-cell task views, packing work arrays);
//  - a checkpoint/SoA cache keyed by (Π, periods): every grid cell of one
//    VCPU shares one sorted checkpoint stream instead of re-deriving and
//    re-sorting it per binary-search probe;
//  - min_budget_batch(), which answers a whole min-budget surface in one
//    call, optionally striping the per-cell searches over a thread pool
//    with a serial-order reduction so results *and* AllocCounters are
//    bit-identical at any inner-jobs count.
//
// set_fast_kernels(false) routes every query through the original
// span-of-PTask reference kernels; allocations and budget_evaluations are
// identical either way (tests/test_golden.cpp pins this), only
// dbf_evaluations and wall time differ.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "analysis/dbf.h"
#include "util/arena.h"
#include "util/instrument.h"
#include "util/time.h"

namespace vc2m::util {
class ThreadPool;
}

namespace vc2m::analysis {

/// Process-wide toggle for the SoA/arena fast kernels (default on). The
/// verdicts, minima and budget_evaluations are identical either way; the
/// toggle exists so tests and A/B benches can pin that equivalence.
bool fast_kernels_enabled();
void set_fast_kernels(bool enabled);

class AnalysisContext {
 public:
  /// Opens an AllocCounterScope: every instrumented call made while this
  /// context is alive lands in counters() (and merges into any enclosing
  /// scope on destruction). Use on one thread only (min_budget_batch may
  /// fan work out to a configured pool, but the context API itself is
  /// single-caller).
  AnalysisContext() = default;
  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  /// Memoized analysis::min_budget_edf. `feasible_hint`, when set, must be
  /// a budget believed feasible for `tasks` (e.g. the minimum budget of the
  /// same task group at a grid point with fewer resources — budget surfaces
  /// are non-increasing in cache/BW); it bounds the binary search from
  /// above. Hints are verified before use, so a wrong hint costs one
  /// schedulability test but never changes the returned minimum. The fast
  /// path ignores hints entirely: its precomputed demand curve makes the
  /// extra binary-search probes nearly free, and the result is identical.
  std::optional<util::Time> min_budget(
      std::span<const PTask> tasks, util::Time period,
      std::optional<util::Time> feasible_hint = std::nullopt);

  /// One query of a min-budget surface batch. `searched` is true when this
  /// query ran a fresh search (a memo miss — exactly the queries for which
  /// a serial ctx.min_budget() sequence would have emitted a kBudgetSearch
  /// decision event; use emit_budget_search() to reproduce it).
  struct BatchResult {
    std::optional<util::Time> theta;
    bool searched = false;
  };

  /// Answer `queries` (task groups sharing the VCPU period Π) exactly as a
  /// serial loop of min_budget(queries[j], period) would — same memo
  /// hit/miss pattern, same budget_evaluations/budget_cache_hits, same
  /// minima — but over the fast kernels, with duplicate queries coalesced
  /// and the distinct searches optionally striped over the pool configured
  /// via set_inner_parallelism(). Counters from striped work are merged in
  /// job-index order on the calling thread, so AllocCounters totals are
  /// bit-identical at any inner-jobs value (docs/performance.md spells out
  /// the determinism contract). Emits no decision events; the caller
  /// replays them in cell order to keep event streams identical too.
  std::vector<BatchResult> min_budget_batch(
      std::span<const std::span<const PTask>> queries, util::Time period);

  /// Emit the kBudgetSearch decision event a serial min_budget(tasks,
  /// period) miss would have emitted for this outcome (no-op when no
  /// decision log is active).
  static void emit_budget_search(std::span<const PTask> tasks,
                                 util::Time period,
                                 const std::optional<util::Time>& theta);

  /// Configure intra-solve parallelism for min_budget_batch: stripe the
  /// per-cell searches over `pool` with `jobs` stripes. `pool` is borrowed
  /// and must not be the pool whose worker is calling the batch (the batch
  /// blocks until its stripes finish). jobs <= 1 or a null pool means
  /// serial. Results and counters do not depend on the setting.
  void set_inner_parallelism(util::ThreadPool* pool, int jobs) {
    inner_pool_ = pool;
    inner_jobs_ = jobs;
  }

  /// Telemetry correlation: the id of the service request this context is
  /// solving for (-1 = not request-scoped). Purely informational — nothing
  /// in the analysis reads it; the admission layer stamps it so span-level
  /// tooling can attribute a context's counters to one request.
  void set_request_id(std::int64_t id) { request_id_ = id; }
  std::int64_t request_id() const { return request_id_; }

  /// The per-solve scratch arena. Callers may draw scratch from it under an
  /// Arena::Scope mark; everything is reclaimed when the context dies.
  util::Arena& arena() { return arena_; }

  /// The effort counters collected so far by this context's scope.
  const util::AllocCounters& counters() const { return scope_.counters(); }

 private:
  // Key = [Π, p_0, e_0, p_1, e_1, ...] in caller order (identical queries
  // build identical task vectors, so order sensitivity costs nothing and
  // avoids a canonicalization pass).
  struct KeyHash {
    std::size_t operator()(const std::vector<std::int64_t>& key) const {
      std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the words
      for (const std::int64_t w : key) {
        h ^= static_cast<std::uint64_t>(w);
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };

  /// One cached checkpoint stream: the sorted, deduplicated dbf checkpoints
  /// of a (Π, periods) pair up to lcm(hyperperiod, Π), plus the period
  /// column the demand kernel consumes. Shared by every wcet surface (grid
  /// cell) asking about the same periods.
  struct CheckpointEntry {
    std::vector<std::int64_t> periods;
    std::vector<util::Time> points;
  };

  /// Cache lookup/build for the checkpoint stream of (tasks' periods, Π).
  /// Serial only (called before any striped dispatch). Counts soa_rebuilds
  /// on build.
  const CheckpointEntry& checkpoints_for(std::span<const PTask> tasks,
                                         util::Time period);

  /// The fast-kernel min-budget computation (no memo, no events): demand
  /// precomputed once over the cached checkpoints, then the binary search
  /// re-runs only supply comparisons. `scratch` backs the wcet/demand
  /// columns. Bit-identical result to min_budget_edf(tasks, period).
  std::optional<util::Time> compute_min_budget_fast(
      std::span<const PTask> tasks, util::Time period,
      const CheckpointEntry* ck, double total_util, util::Arena& scratch);

  std::unordered_map<std::vector<std::int64_t>, std::optional<util::Time>,
                     KeyHash>
      budget_memo_;
  std::unordered_map<std::vector<std::int64_t>, CheckpointEntry, KeyHash>
      checkpoint_cache_;
  TaskArrays soa_;  ///< reusable SoA build buffer for cache fills
  util::Arena arena_;
  util::ThreadPool* inner_pool_ = nullptr;
  int inner_jobs_ = 1;
  std::int64_t request_id_ = -1;
  util::AllocCounterScope scope_;
};

}  // namespace vc2m::analysis
