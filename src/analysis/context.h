// Shared memoization context for one allocation run.
//
// Both allocation levels (vm_alloc, hv_alloc) and the online paths
// (admission, exact search) ask the same analysis questions repeatedly: the
// existing-CSA minimum budget for a task group at a grid point, and the
// effort counters everything reports through. An AnalysisContext is created
// once per run (one solve(), one admission decision), threaded through both
// levels, and memoizes those answers — so a budget computed while
// parameterizing a VCPU is never re-derived by a later stage asking for the
// identical (period, taskset) pair.
//
// The memo is bit-identity-preserving: a hit returns exactly the value the
// unmemoized analysis::min_budget_edf call produced for the identical key,
// and the hinted search (analysis::min_budget_edf_bounded) returns the same
// unique minimum while evaluating fewer demand bounds. The per-core caches
// live in core::CoreLoad; this context owns the cross-cutting state.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "analysis/dbf.h"
#include "util/instrument.h"
#include "util/time.h"

namespace vc2m::analysis {

class AnalysisContext {
 public:
  /// Opens an AllocCounterScope: every instrumented call made while this
  /// context is alive lands in counters() (and merges into any enclosing
  /// scope on destruction). Use on one thread only.
  AnalysisContext() = default;
  AnalysisContext(const AnalysisContext&) = delete;
  AnalysisContext& operator=(const AnalysisContext&) = delete;

  /// Memoized analysis::min_budget_edf. `feasible_hint`, when set, must be
  /// a budget believed feasible for `tasks` (e.g. the minimum budget of the
  /// same task group at a grid point with fewer resources — budget surfaces
  /// are non-increasing in cache/BW); it bounds the binary search from
  /// above. Hints are verified before use, so a wrong hint costs one
  /// schedulability test but never changes the returned minimum.
  std::optional<util::Time> min_budget(
      std::span<const PTask> tasks, util::Time period,
      std::optional<util::Time> feasible_hint = std::nullopt);

  /// The effort counters collected so far by this context's scope.
  const util::AllocCounters& counters() const { return scope_.counters(); }

 private:
  // Key = [Π, p_0, e_0, p_1, e_1, ...] in caller order (identical queries
  // build identical task vectors, so order sensitivity costs nothing and
  // avoids a canonicalization pass).
  struct KeyHash {
    std::size_t operator()(const std::vector<std::int64_t>& key) const {
      std::uint64_t h = 1469598103934665603ull;  // FNV-1a over the words
      for (const std::int64_t w : key) {
        h ^= static_cast<std::uint64_t>(w);
        h *= 1099511628211ull;
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::vector<std::int64_t>, std::optional<util::Time>,
                     KeyHash>
      budget_memo_;
  util::AllocCounterScope scope_;
};

}  // namespace vc2m::analysis
