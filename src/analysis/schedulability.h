// Per-core schedulability tests for partitioned EDF over VCPUs.
//
// Once VCPU parameters are fixed, a core hosting VCPUs {V_j} with c cache
// and b bandwidth partitions is schedulable iff Σ_j Θ_j(c,b)/Π_j ≤ 1 —
// VCPUs are implicit-deadline periodic servers under EDF. The comparison is
// performed with exact integer arithmetic when the period LCM is small
// (always true for the harmonic workloads of §5) and falls back to long
// double otherwise.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "model/task.h"

namespace vc2m::analysis {

/// Period-LCM cap for the exact integer Σ Θ/Π ≤ 1 comparison; when the LCM
/// of the periods on a core exceeds this, the test (and core::CoreLoad's
/// incremental variant) falls back to long-double accumulation.
inline constexpr std::int64_t kPeriodLcmCap = std::int64_t{1} << 50;

/// Σ_j Θ_j(c,b)/Π_j over the given VCPUs.
double core_utilization(std::span<const model::Vcpu> vcpus, unsigned c,
                        unsigned b);

/// Like core_utilization but over a subset given by indices into `vcpus`.
double core_utilization(std::span<const model::Vcpu> vcpus,
                        std::span<const std::size_t> on_core, unsigned c,
                        unsigned b);

/// Exact test Σ_j Θ_j(c,b)/Π_j ≤ 1 (EDF on one core).
bool core_schedulable(std::span<const model::Vcpu> vcpus, unsigned c,
                      unsigned b);

bool core_schedulable(std::span<const model::Vcpu> vcpus,
                      std::span<const std::size_t> on_core, unsigned c,
                      unsigned b);

/// Intra-core overhead accounting (the [17]-style inflation of §4.1/§4.3):
/// adds `per_job` to every WCET grid entry of every task (cache-related
/// preemption/migration delay per job), and `per_period` to every budget
/// entry of every VCPU (VCPU preemption/completion events per server
/// period). Applied *before* the VM-level / hypervisor-level allocation.
void inflate_tasks(model::Taskset& tasks, util::Time per_job);
void inflate_vcpus(std::vector<model::Vcpu>& vcpus, util::Time per_period);

}  // namespace vc2m::analysis
