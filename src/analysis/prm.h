// The periodic resource model of Shin & Lee [13] — the "existing CSA".
//
// A VCPU abstracted as Γ = (Π, Θ) supplies Θ units of CPU time in every
// period Π, in the worst case delayed by up to 2(Π − Θ). The existing
// compositional analysis computes, for the tasks mapped onto a VCPU, the
// minimum budget Θ such that EDF meets all deadlines given the worst-case
// supply — this minimum is what carries the *abstraction overhead* vC2M
// removes: e.g. a single task (p=10, e=1) with utilization 0.1 needs
// Θ = 5.5 at Π = 10, a bandwidth 5.5× the task's utilization.
#pragma once

#include <optional>
#include <span>

#include "analysis/dbf.h"
#include "util/time.h"

namespace vc2m::analysis {

/// Periodic resource model Γ = (Π, Θ).
struct Prm {
  util::Time period;  ///< Π
  util::Time budget;  ///< Θ

  /// Worst-case supply bound function sbf_Γ(t) (exact form of [13]):
  ///   sbf(t) = (k−1)Θ + max(0, t − 2(Π−Θ) − (k−1)Π),
  ///   k = ⌊(t − (Π−Θ))/Π⌋ + 1, for t ≥ Π−Θ; 0 otherwise.
  util::Time sbf(util::Time t) const;

  /// Linear lower bound lsbf(t) = (Θ/Π)·(t − 2(Π−Θ)), clipped at 0.
  double lsbf(util::Time t) const;

  double bandwidth() const { return budget.ratio(period); }
};

/// True iff the taskset is EDF-schedulable on the supply of `prm`:
/// dbf(t) ≤ sbf(t) at every demand checkpoint up to lcm(hyperperiod, Π),
/// plus the long-run rate condition U ≤ Θ/Π.
bool edf_schedulable_on_prm(std::span<const PTask> tasks, const Prm& prm);

/// Minimum integer-nanosecond budget Θ such that the taskset is
/// EDF-schedulable on (Π = period, Θ); std::nullopt if even Θ = Π fails
/// (i.e. the taskset exceeds a dedicated core).
std::optional<util::Time> min_budget_edf(std::span<const PTask> tasks,
                                         util::Time period);

/// min_budget_edf with a caller-supplied upper bound for the binary search:
/// `feasible_hi` should be a budget believed feasible for `tasks` (e.g. the
/// minimum budget of the same tasks under a pointwise-larger WCET surface —
/// budget surfaces are non-increasing in cache/BW). The hint is verified
/// with one schedulability test before it replaces the Θ = Π feasibility
/// probe; if it does not hold, the full search runs instead. The returned
/// minimum is always identical to min_budget_edf(tasks, period) — the hint
/// only reduces how many demand-bound evaluations finding it takes.
std::optional<util::Time> min_budget_edf_bounded(std::span<const PTask> tasks,
                                                 util::Time period,
                                                 util::Time feasible_hi);

// ---------------------------------------------------------------------------
// Precomputed-demand fast path (the SoA kernels; see docs/performance.md).
//
// Inside one min-budget binary search the taskset is fixed: the checkpoint
// set and the demand at every checkpoint do not depend on the probed Θ.
// The reference path above nevertheless re-derives both per probe (a fresh
// dbf_checkpoints allocation + sort, then one dbf() per point). The curve
// form computes demand once and re-runs only the Θ-dependent sbf
// comparisons — the verdict of every probe, and therefore the returned
// minimum, is bit-identical to the reference (integer demand/supply, and
// the same ordered double sum for the rate condition).

/// One task group's demand, precomputed over the dbf checkpoints of its
/// (periods, horizon) pair. Both spans borrow caller storage (typically an
/// AnalysisContext cache + arena).
struct DemandCurve {
  std::span<const util::Time> points;  ///< sorted dbf checkpoints
  std::span<const util::Time> demand;  ///< dbf at each point
};

/// edf_schedulable_on_prm on a precomputed curve. `total_util` must be
/// total_utilization() of the same tasks (the bit-identical ordered sum);
/// `curve` must cover the checkpoints of lcm(hyperperiod, prm.period).
bool curve_schedulable(const DemandCurve& curve, double total_util,
                       const Prm& prm);

/// min_budget_edf on a precomputed curve: same probes, same binary-search
/// arithmetic, same minimum — demand evaluated zero times (the curve
/// carries it).
std::optional<util::Time> min_budget_on_curve(const DemandCurve& curve,
                                              double total_util,
                                              util::Time period);

}  // namespace vc2m::analysis
