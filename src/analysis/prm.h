// The periodic resource model of Shin & Lee [13] — the "existing CSA".
//
// A VCPU abstracted as Γ = (Π, Θ) supplies Θ units of CPU time in every
// period Π, in the worst case delayed by up to 2(Π − Θ). The existing
// compositional analysis computes, for the tasks mapped onto a VCPU, the
// minimum budget Θ such that EDF meets all deadlines given the worst-case
// supply — this minimum is what carries the *abstraction overhead* vC2M
// removes: e.g. a single task (p=10, e=1) with utilization 0.1 needs
// Θ = 5.5 at Π = 10, a bandwidth 5.5× the task's utilization.
#pragma once

#include <optional>
#include <span>

#include "analysis/dbf.h"
#include "util/time.h"

namespace vc2m::analysis {

/// Periodic resource model Γ = (Π, Θ).
struct Prm {
  util::Time period;  ///< Π
  util::Time budget;  ///< Θ

  /// Worst-case supply bound function sbf_Γ(t) (exact form of [13]):
  ///   sbf(t) = (k−1)Θ + max(0, t − 2(Π−Θ) − (k−1)Π),
  ///   k = ⌊(t − (Π−Θ))/Π⌋ + 1, for t ≥ Π−Θ; 0 otherwise.
  util::Time sbf(util::Time t) const;

  /// Linear lower bound lsbf(t) = (Θ/Π)·(t − 2(Π−Θ)), clipped at 0.
  double lsbf(util::Time t) const;

  double bandwidth() const { return budget.ratio(period); }
};

/// True iff the taskset is EDF-schedulable on the supply of `prm`:
/// dbf(t) ≤ sbf(t) at every demand checkpoint up to lcm(hyperperiod, Π),
/// plus the long-run rate condition U ≤ Θ/Π.
bool edf_schedulable_on_prm(std::span<const PTask> tasks, const Prm& prm);

/// Minimum integer-nanosecond budget Θ such that the taskset is
/// EDF-schedulable on (Π = period, Θ); std::nullopt if even Θ = Π fails
/// (i.e. the taskset exceeds a dedicated core).
std::optional<util::Time> min_budget_edf(std::span<const PTask> tasks,
                                         util::Time period);

/// min_budget_edf with a caller-supplied upper bound for the binary search:
/// `feasible_hi` should be a budget believed feasible for `tasks` (e.g. the
/// minimum budget of the same tasks under a pointwise-larger WCET surface —
/// budget surfaces are non-increasing in cache/BW). The hint is verified
/// with one schedulability test before it replaces the Θ = Π feasibility
/// probe; if it does not hold, the full search runs instead. The returned
/// minimum is always identical to min_budget_edf(tasks, period) — the hint
/// only reduces how many demand-bound evaluations finding it takes.
std::optional<util::Time> min_budget_edf_bounded(std::span<const PTask> tasks,
                                                 util::Time period,
                                                 util::Time feasible_hi);

}  // namespace vc2m::analysis
