#include "analysis/theorems.h"

#include <algorithm>
#include <numeric>

#include "util/error.h"

namespace vc2m::analysis {

model::Vcpu flattened_vcpu(const model::Task& task, std::size_t task_index) {
  model::Vcpu v;
  v.period = task.period;
  v.budget = task.wcet;  // Θ(c,b) = e(c,b), Theorem 1
  v.vm = task.vm;
  v.tasks = {task_index};
  return v;
}

std::vector<model::Vcpu> flatten(const model::Taskset& tasks) {
  std::vector<model::Vcpu> vcpus;
  vcpus.reserve(tasks.size());
  for (std::size_t i = 0; i < tasks.size(); ++i)
    vcpus.push_back(flattened_vcpu(tasks[i], i));
  return vcpus;
}

model::Vcpu regulated_vcpu(const model::Taskset& tasks,
                           std::span<const std::size_t> task_indices) {
  VC2M_CHECK_MSG(!task_indices.empty(), "a VCPU must serve at least one task");

  // Π = min period; harmonicity requires Π to divide every period.
  util::Time pi = tasks[task_indices.front()].period;
  for (const std::size_t i : task_indices)
    pi = util::min(pi, tasks[i].period);
  std::int64_t den = 1;  // lcm of the period ratios q_i = p_i / Π
  for (const std::size_t i : task_indices) {
    const auto& t = tasks[i];
    VC2M_CHECK_MSG(t.period % pi == util::Time::zero(),
                   "Theorem 2 requires a harmonic taskset (period "
                       << t.period << " vs Π " << pi << ")");
    den = std::lcm(den, t.period / pi);
  }

  const auto& grid = tasks[task_indices.front()].wcet.grid();
  model::Vcpu v;
  v.period = pi;
  v.vm = tasks[task_indices.front()].vm;
  v.tasks.assign(task_indices.begin(), task_indices.end());
  v.budget = model::WcetFn(grid);

  // Θ(c,b) = Π · Σ e_i(c,b)/p_i = Σ e_i(c,b)/q_i, computed exactly over the
  // common denominator `den` and rounded up to the nanosecond.
  for (unsigned c = grid.c_min; c <= grid.c_max; ++c)
    for (unsigned b = grid.b_min; b <= grid.b_max; ++b) {
      __int128 num = 0;
      for (const std::size_t i : task_indices) {
        const auto& t = tasks[i];
        VC2M_CHECK_MSG(t.wcet.grid() == grid,
                       "tasks on one VCPU must share a resource grid");
        const std::int64_t q = t.period / pi;
        num += static_cast<__int128>(t.wcet.at(c, b).raw_ns()) * (den / q);
      }
      const auto theta = static_cast<std::int64_t>((num + den - 1) / den);
      v.budget.set(c, b, util::Time::ns(theta));
    }
  return v;
}

std::vector<std::vector<std::size_t>> harmonic_groups(
    const model::Taskset& tasks, std::span<const std::size_t> task_indices) {
  std::vector<std::size_t> order(task_indices.begin(), task_indices.end());
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return tasks[a].period < tasks[b].period;
  });

  std::vector<std::vector<std::size_t>> groups;
  for (const std::size_t i : order) {
    bool placed = false;
    for (auto& group : groups) {
      const bool fits = std::all_of(
          group.begin(), group.end(), [&](std::size_t j) {
            return util::harmonic_pair(tasks[i].period, tasks[j].period);
          });
      if (fits) {
        group.push_back(i);
        placed = true;
        break;
      }
    }
    if (!placed) groups.push_back({i});
  }
  return groups;
}

}  // namespace vc2m::analysis
