// Supply analysis of well-regulated VCPUs (technical report [15]).
//
// A VCPU is *well-regulated* when its execution pattern repeats in every
// period: it executes at time t iff it executes at t + kΠ. vC2M enforces
// this with periodic servers, harmonic VCPU periods, a common release
// offset, and the deterministic EDF tie-break (§3.2).
//
// Regularity shrinks the worst-case supply gap: a periodic-resource-model
// VCPU can deliver its budget at the very start of one period and the very
// end of the next (gap 2(Π−Θ)), but a repeating pattern exposes at most one
// gap of (Π−Θ) to any window. The resulting supply bound dominates the PRM
// sbf, and for harmonic tasksets released in phase with the VCPU the
// schedulability condition collapses to U ≤ Θ/Π — the overhead-free
// interface of Theorem 2.
#pragma once

#include <optional>
#include <span>

#include "analysis/dbf.h"
#include "util/time.h"

namespace vc2m::analysis {

/// Supply model of a well-regulated VCPU Γ = (Π, Θ).
struct RegulatedSupply {
  util::Time period;  ///< Π
  util::Time budget;  ///< Θ

  /// Worst-case supply over any window of length t:
  ///   sbf_wr(t) = kΘ + max(0, (t − kΠ) − (Π−Θ)),  k = ⌊t/Π⌋.
  /// Exactly one (Π−Θ) gap is exposed, versus the PRM's two.
  util::Time sbf(util::Time t) const;

  double bandwidth() const { return budget.ratio(period); }
};

/// EDF schedulability of an arbitrary (not necessarily harmonic) taskset on
/// a well-regulated VCPU: dbf(t) ≤ sbf_wr(t) at all demand checkpoints up
/// to lcm(hyperperiod, Π), plus the rate condition.
bool edf_schedulable_on_regulated(std::span<const PTask> tasks,
                                  const RegulatedSupply& supply);

/// Minimum budget under the regulated supply (analogue of
/// min_budget_edf); never larger than the PRM minimum.
std::optional<util::Time> min_budget_regulated(std::span<const PTask> tasks,
                                               util::Time period);

}  // namespace vc2m::analysis
