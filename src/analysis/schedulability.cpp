#include "analysis/schedulability.h"

#include <ranges>

#include "util/error.h"
#include "util/instrument.h"
#include "util/time.h"

namespace vc2m::analysis {
namespace {

/// Exact Σ Θ/Π ≤ 1 via a common multiple of the periods when it fits;
/// long-double fallback for pathological period sets. Templated over the
/// index range so the whole-set overloads can pass an iota view instead of
/// materializing a fresh index vector per admission test (these run inside
/// the hv_alloc grant/balance loops).
template <typename IndexRange>
bool utilization_at_most_one(std::span<const model::Vcpu> vcpus,
                             const IndexRange& on_core, unsigned c,
                             unsigned b) {
  std::int64_t l = 1;
  bool exact = true;
  for (const std::size_t j : on_core) {
    const std::int64_t p = vcpus[j].period.raw_ns();
    VC2M_CHECK(p > 0);
    const std::int64_t g = std::gcd(l, p);
    if (l / g > kPeriodLcmCap / p) {
      exact = false;
      break;
    }
    l = l / g * p;
  }
  if (exact) {
    __int128 demand = 0;
    for (const std::size_t j : on_core)
      demand += static_cast<__int128>(vcpus[j].budget.at(c, b).raw_ns()) *
                (l / vcpus[j].period.raw_ns());
    return demand <= static_cast<__int128>(l);
  }
  long double u = 0;
  for (const std::size_t j : on_core)
    u += static_cast<long double>(vcpus[j].budget.at(c, b).raw_ns()) /
         static_cast<long double>(vcpus[j].period.raw_ns());
  return u <= 1.0L;
}

inline auto all_indices(std::size_t n) {
  return std::views::iota(std::size_t{0}, n);
}

}  // namespace

double core_utilization(std::span<const model::Vcpu> vcpus,
                        std::span<const std::size_t> on_core, unsigned c,
                        unsigned b) {
  double u = 0;
  for (const std::size_t j : on_core) u += vcpus[j].utilization(c, b);
  return u;
}

double core_utilization(std::span<const model::Vcpu> vcpus, unsigned c,
                        unsigned b) {
  double u = 0;
  for (const std::size_t j : all_indices(vcpus.size()))
    u += vcpus[j].utilization(c, b);
  return u;
}

bool core_schedulable(std::span<const model::Vcpu> vcpus,
                      std::span<const std::size_t> on_core, unsigned c,
                      unsigned b) {
  const bool ok = utilization_at_most_one(vcpus, on_core, c, b);
  if (auto* ctr = util::alloc_counters()) {
    ++ctr->admission_tests;
    ctr->admission_passed += ok ? 1 : 0;
  }
  return ok;
}

bool core_schedulable(std::span<const model::Vcpu> vcpus, unsigned c,
                      unsigned b) {
  const bool ok = utilization_at_most_one(vcpus, all_indices(vcpus.size()), c, b);
  if (auto* ctr = util::alloc_counters()) {
    ++ctr->admission_tests;
    ctr->admission_passed += ok ? 1 : 0;
  }
  return ok;
}

void inflate_tasks(model::Taskset& tasks, util::Time per_job) {
  if (per_job.is_zero()) return;
  for (auto& t : tasks) {
    const auto& g = t.wcet.grid();
    for (unsigned c = g.c_min; c <= g.c_max; ++c)
      for (unsigned b = g.b_min; b <= g.b_max; ++b)
        t.wcet.set(c, b, t.wcet.at(c, b) + per_job);
    t.max_wcet += per_job;
  }
}

void inflate_vcpus(std::vector<model::Vcpu>& vcpus, util::Time per_period) {
  if (per_period.is_zero()) return;
  for (auto& v : vcpus) {
    const auto& g = v.budget.grid();
    for (unsigned c = g.c_min; c <= g.c_max; ++c)
      for (unsigned b = g.b_min; b <= g.b_max; ++b)
        v.budget.set(c, b, v.budget.at(c, b) + per_period);
  }
}

}  // namespace vc2m::analysis
