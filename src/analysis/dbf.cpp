#include "analysis/dbf.h"

#include <algorithm>

#include "util/error.h"
#include "util/instrument.h"

namespace vc2m::analysis {

util::Time dbf(std::span<const PTask> tasks, util::Time t) {
  if (auto* ctr = util::alloc_counters()) ++ctr->dbf_evaluations;
  util::Time demand = util::Time::zero();
  for (const auto& tk : tasks) {
    VC2M_CHECK(tk.period > util::Time::zero());
    demand += tk.wcet * (t / tk.period);
  }
  return demand;
}

double total_utilization(std::span<const PTask> tasks) {
  double u = 0;
  for (const auto& tk : tasks) u += tk.wcet.ratio(tk.period);
  return u;
}

util::Time hyperperiod(std::span<const PTask> tasks) {
  util::Time h = util::Time::ns(1);
  for (const auto& tk : tasks) h = util::lcm(h, tk.period);
  return h;
}

std::vector<util::Time> dbf_checkpoints(std::span<const PTask> tasks,
                                        util::Time horizon) {
  std::vector<util::Time> pts;
  for (const auto& tk : tasks) {
    VC2M_CHECK(tk.period > util::Time::zero());
    for (util::Time t = tk.period; t <= horizon; t += tk.period)
      pts.push_back(t);
  }
  std::sort(pts.begin(), pts.end());
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  return pts;
}

}  // namespace vc2m::analysis
