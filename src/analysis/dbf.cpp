#include "analysis/dbf.h"

#include <algorithm>
#include <queue>

#include "util/error.h"
#include "util/instrument.h"

namespace vc2m::analysis {

util::Time dbf(std::span<const PTask> tasks, util::Time t) {
  if (auto* ctr = util::alloc_counters()) ++ctr->dbf_evaluations;
  util::Time demand = util::Time::zero();
  for (const auto& tk : tasks) {
    VC2M_CHECK(tk.period > util::Time::zero());
    demand += tk.wcet * (t / tk.period);
  }
  return demand;
}

double total_utilization(std::span<const PTask> tasks) {
  double u = 0;
  for (const auto& tk : tasks) u += tk.wcet.ratio(tk.period);
  return u;
}

util::Time hyperperiod(std::span<const PTask> tasks) {
  util::Time h = util::Time::ns(1);
  for (const auto& tk : tasks) h = util::lcm(h, tk.period);
  return h;
}

std::vector<util::Time> dbf_checkpoints(std::span<const PTask> tasks,
                                        util::Time horizon) {
  std::vector<std::int64_t> periods;
  periods.reserve(tasks.size());
  for (const auto& tk : tasks) {
    VC2M_CHECK(tk.period > util::Time::zero());
    periods.push_back(tk.period.raw_ns());
  }
  std::vector<util::Time> pts;
  merge_checkpoints(periods, horizon, pts);
  return pts;
}

void TaskArrays::assign(std::span<const PTask> tasks) {
  period.clear();
  wcet.clear();
  period.reserve(tasks.size());
  wcet.reserve(tasks.size());
  total_util = 0;
  for (const auto& tk : tasks) {
    VC2M_CHECK(tk.period > util::Time::zero());
    period.push_back(tk.period.raw_ns());
    wcet.push_back(tk.wcet.raw_ns());
    // Same expression as Time::ratio so the sum is bit-identical to
    // total_utilization() over the same span.
    total_util += static_cast<double>(tk.wcet.raw_ns()) /
                  static_cast<double>(tk.period.raw_ns());
  }
}

util::Time TaskArrays::hyperperiod() const {
  util::Time h = util::Time::ns(1);
  for (const std::int64_t p : period) h = util::lcm(h, util::Time::ns(p));
  return h;
}

void demand_at(std::span<const std::int64_t> periods,
               std::span<const std::int64_t> wcets,
               std::span<const util::Time> points,
               std::span<util::Time> out) {
  VC2M_CHECK(periods.size() == wcets.size());
  VC2M_CHECK(out.size() >= points.size());
  if (auto* ctr = util::alloc_counters())
    ctr->dbf_evaluations += points.size();
  const std::size_t n = periods.size();
  for (std::size_t k = 0; k < points.size(); ++k) {
    const std::int64_t t = points[k].raw_ns();
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) acc += wcets[i] * (t / periods[i]);
    out[k] = util::Time::ns(acc);
  }
}

void merge_checkpoints(std::span<const std::int64_t> periods,
                       util::Time horizon, std::vector<util::Time>& out) {
  out.clear();
  const std::int64_t h = horizon.raw_ns();

  // Deduplicate the period streams (equal periods emit identical multiples)
  // and count the pre-dedup total so a pathological horizon/period ratio
  // fails with a clear message instead of attempting a gigabyte push_back
  // loop. unsigned __int128 keeps the count exact even when a single stream
  // alone would overflow 64 bits.
  std::vector<std::int64_t> uniq(periods.begin(), periods.end());
  std::sort(uniq.begin(), uniq.end());
  uniq.erase(std::unique(uniq.begin(), uniq.end()), uniq.end());
  unsigned __int128 count = 0;
  for (const std::int64_t p : uniq) {
    VC2M_CHECK_MSG(p > 0, "checkpoint stream requires positive periods");
    count += static_cast<unsigned __int128>(h / p);
  }
  VC2M_CHECK_MSG(
      count <= static_cast<unsigned __int128>(kDbfCheckpointCap),
      "dbf checkpoint count "
          << static_cast<double>(count) << " exceeds the cap "
          << kDbfCheckpointCap
          << " (horizon/period ratios too extreme — e.g. a 1 ns period "
             "against a long horizon); refusing to materialize "
          << static_cast<double>(count) * sizeof(util::Time) * 1e-6
          << " MB of checkpoints");
  out.reserve(static_cast<std::size_t>(count));

  // K-way merge of the arithmetic streams (p, 2p, …): pop the smallest next
  // multiple, emit it once, advance every stream sitting on that value.
  // Emits sorted + deduplicated directly — no materialize-then-sort.
  using Head = std::pair<std::int64_t, std::int64_t>;  // (next, step)
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heap;
  for (const std::int64_t p : uniq)
    if (p <= h) heap.push({p, p});
  std::int64_t last = -1;
  while (!heap.empty()) {
    const auto [next, step] = heap.top();
    heap.pop();
    if (next != last) {
      out.push_back(util::Time::ns(next));
      last = next;
    }
    if (next <= h - step) heap.push({next + step, step});
  }
}

}  // namespace vc2m::analysis
