#include "analysis/prm.h"

#include <algorithm>

#include "util/error.h"

namespace vc2m::analysis {

util::Time Prm::sbf(util::Time t) const {
  VC2M_CHECK(budget >= util::Time::zero() && budget <= period);
  const util::Time gap = period - budget;  // Π − Θ
  if (t <= gap) return util::Time::zero();
  const std::int64_t k = (t - gap) / period + 1;  // ⌊(t−(Π−Θ))/Π⌋ + 1
  const util::Time whole = budget * (k - 1);
  const util::Time partial =
      util::max(util::Time::zero(), t - gap - gap - period * (k - 1));
  // The partial chunk can never exceed one budget.
  return whole + util::min(partial, budget);
}

double Prm::lsbf(util::Time t) const {
  const util::Time gap2 = (period - budget) * 2;
  if (t <= gap2) return 0.0;
  return bandwidth() * static_cast<double>((t - gap2).raw_ns());
}

bool edf_schedulable_on_prm(std::span<const PTask> tasks, const Prm& prm) {
  VC2M_CHECK(prm.period > util::Time::zero());
  VC2M_CHECK(prm.budget >= util::Time::zero() && prm.budget <= prm.period);
  if (tasks.empty()) return true;

  // Long-run rate condition.
  if (total_utilization(tasks) > prm.bandwidth() + 1e-12) return false;

  const util::Time horizon = util::lcm(hyperperiod(tasks), prm.period);
  for (const util::Time t : dbf_checkpoints(tasks, horizon))
    if (dbf(tasks, t) > prm.sbf(t)) return false;
  return true;
}

namespace {

/// Budget feasibility is monotone in Θ: binary search the minimum feasible
/// budget in [U·Π, hi]. `hi` must be feasible, so the minimum exists.
util::Time search_min_budget(std::span<const PTask> tasks, util::Time period,
                             double u, util::Time hi) {
  util::Time lo = util::Time::ns(static_cast<std::int64_t>(
      u * static_cast<double>(period.raw_ns())));  // U·Π is a lower bound
  while (lo < hi) {
    const util::Time mid = util::Time::ns(
        lo.raw_ns() + (hi.raw_ns() - lo.raw_ns()) / 2);
    if (edf_schedulable_on_prm(tasks, Prm{period, mid}))
      hi = mid;
    else
      lo = mid + util::Time::ns(1);
  }
  return hi;
}

}  // namespace

std::optional<util::Time> min_budget_edf(std::span<const PTask> tasks,
                                         util::Time period) {
  VC2M_CHECK(period > util::Time::zero());
  if (tasks.empty()) return util::Time::zero();

  const double u = total_utilization(tasks);
  if (u > 1.0 + 1e-12) return std::nullopt;

  // Feasible at Θ = Π iff schedulable on a dedicated core.
  if (!edf_schedulable_on_prm(tasks, Prm{period, period})) return std::nullopt;

  return search_min_budget(tasks, period, u, period);
}

std::optional<util::Time> min_budget_edf_bounded(std::span<const PTask> tasks,
                                                 util::Time period,
                                                 util::Time feasible_hi) {
  VC2M_CHECK(period > util::Time::zero());
  if (tasks.empty()) return util::Time::zero();

  const double u = total_utilization(tasks);
  if (u > 1.0 + 1e-12) return std::nullopt;

  // A hint at or above Π adds nothing over the Θ = Π probe; and a hint
  // below the U·Π lower bound cannot bracket the search from above.
  if (feasible_hi >= period ||
      feasible_hi < util::Time::ns(static_cast<std::int64_t>(
                        u * static_cast<double>(period.raw_ns()))))
    return min_budget_edf(tasks, period);

  // Verify the hint (one schedulability test): when it holds it doubles as
  // the Θ = Π feasibility probe and tightens the search window; when it
  // does not, fall back to the unhinted path so the result never changes.
  if (!edf_schedulable_on_prm(tasks, Prm{period, feasible_hi}))
    return min_budget_edf(tasks, period);

  return search_min_budget(tasks, period, u, feasible_hi);
}

bool curve_schedulable(const DemandCurve& curve, double total_util,
                       const Prm& prm) {
  VC2M_CHECK(prm.period > util::Time::zero());
  VC2M_CHECK(prm.budget >= util::Time::zero() && prm.budget <= prm.period);

  // Long-run rate condition — the identical expression (and epsilon) the
  // reference path applies, on the identical ordered utilization sum.
  if (total_util > prm.bandwidth() + 1e-12) return false;

  const std::size_t n = curve.points.size();
  for (std::size_t k = 0; k < n; ++k)
    if (curve.demand[k] > prm.sbf(curve.points[k])) return false;
  return true;
}

std::optional<util::Time> min_budget_on_curve(const DemandCurve& curve,
                                              double total_util,
                                              util::Time period) {
  VC2M_CHECK(period > util::Time::zero());
  if (curve.points.empty() && curve.demand.empty() && total_util == 0.0)
    return util::Time::zero();

  if (total_util > 1.0 + 1e-12) return std::nullopt;

  // Feasible at Θ = Π iff schedulable on a dedicated core.
  if (!curve_schedulable(curve, total_util, Prm{period, period}))
    return std::nullopt;

  // Identical bracket and midpoint arithmetic to search_min_budget.
  util::Time lo = util::Time::ns(static_cast<std::int64_t>(
      total_util * static_cast<double>(period.raw_ns())));
  util::Time hi = period;
  while (lo < hi) {
    const util::Time mid =
        util::Time::ns(lo.raw_ns() + (hi.raw_ns() - lo.raw_ns()) / 2);
    if (curve_schedulable(curve, total_util, Prm{period, mid}))
      hi = mid;
    else
      lo = mid + util::Time::ns(1);
  }
  return hi;
}

}  // namespace vc2m::analysis
