// The crash-safe online admission-control service behind `vc2m serve`.
//
// The service consumes a deterministic request trace (service/trace_gen.h)
// through a single-server virtual-time queue: requests arrive at their
// trace timestamps, wait in a bounded FIFO, and are processed one at a
// time; the virtual cost of each decision is a deterministic function of
// how hard the allocator worked (AllocCounters deltas), so end-to-end
// latencies, queue depths, and every counter in the report are exact
// replayable quantities — a run is a pure function of (trace, seed,
// config), byte-identical on every machine and after every recovery.
//
// Three robustness mechanisms interlock:
//
//  - Transactions. admit/resize go through the purely functional
//    core::admit_vm / core::resize_vm: a rejected request leaves the
//    running system untouched by construction, and the per-request
//    decision log records why either way.
//
//  - Crash safety. With --journal, every terminal decision is appended to
//    a checksummed write-ahead journal (service/journal.h) and fsync'd
//    before the service proceeds; every `snapshot_every` commits the full
//    service state is written to <journal>.snap (atomic tmp+rename) and
//    the journal rotates. Recovery (--recover) loads the snapshot, replays
//    the journal — recomputing only the state-mutating decisions and
//    folding the rest from the records — and continues live, reproducing
//    the uninterrupted run bit for bit. Torn or truncated journal tails
//    are truncated back to the last valid record with a warning, never a
//    crash.
//
//  - Overload shedding. A per-request deadline budget downgrades the full
//    solver to a cheap, sound headroom probe when the EWMA cost estimate
//    no longer fits (probe rejections are real rejections; probe passes
//    defer the request with exponential backoff until the retry budget
//    runs out). When the bounded queue overflows, a shed policy picks a
//    victim deterministically: reject-newest drops the incoming request,
//    reject-largest the heaviest queued admit/resize, criticality-aware
//    the heaviest best-effort entry (removes are never shed — they free
//    capacity).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/vm_alloc.h"
#include "model/platform.h"
#include "obs/request_span.h"
#include "service/report.h"
#include "service/trace_gen.h"
#include "util/time.h"

namespace vc2m::service {

inline constexpr const char* kSnapshotSchema = "vc2m-admission-snapshot/1";

/// Victim selection when the bounded queue is full.
enum class ShedPolicy : std::uint8_t {
  kRejectNewest,  ///< drop the incoming request
  kRejectLargest, ///< drop the largest queued admit/resize (newest on ties)
  kCriticality,   ///< drop best-effort (criticality 0) entries first
};

const char* to_string(ShedPolicy p);
bool shed_policy_from_string(const std::string& s, ShedPolicy& out);

/// Terminal and intermediate fates of one request attempt. Serialized by
/// name into journal records; values are append-only.
enum class Outcome : std::uint8_t {
  kAdmitted,        ///< full solve placed the VM (commit)
  kRejected,        ///< full solve found no feasible placement
  kProbeRejected,   ///< downgraded headroom probe proved infeasibility
  kDeferred,        ///< probe passed; retry scheduled (non-terminal)
  kTimedOut,        ///< retry budget exhausted under deadline pressure
  kShed,            ///< dropped by the overload policy at enqueue
  kRemoved,         ///< VM removed (commit)
  kNotPresent,      ///< remove/resize of a VM the service never admitted
  kResized,         ///< remove+re-admit committed atomically
  kResizeRejected,  ///< re-admit failed; original VM untouched (rollback)
};

const char* to_string(Outcome o);
bool outcome_from_string(const std::string& s, Outcome& out);

/// One write-ahead journal record: the fate of one request attempt, with
/// enough folded state (cost, task count, decision-event count, allocator
/// effort deltas) that recovery can replay non-mutating decisions without
/// re-running the solver while keeping every cumulative counter — and
/// therefore the metrics timeline — bit-identical. Serialized as
/// "seq=N|attempt=A|kind=K|outcome=O|vm=V|tasks=T|events=E|cost_ns=C|latency_ns=L|dbf=D|budget=B|adm=M".
struct JournalRecord {
  std::uint64_t seq = 0;
  unsigned attempt = 0;
  RequestKind kind = RequestKind::kAdmit;
  Outcome outcome = Outcome::kAdmitted;
  int vm = 0;
  std::uint64_t tasks = 0;
  std::uint64_t events = 0;      ///< decision-log events this attempt emitted
  std::int64_t cost_ns = 0;      ///< virtual processing cost
  std::int64_t latency_ns = 0;   ///< arrival -> completion (0 when deferred)
  std::uint64_t dbf_evals = 0;      ///< AllocCounters.dbf_evaluations delta
  std::uint64_t budget_evals = 0;   ///< AllocCounters.budget_evaluations delta
  std::uint64_t admission_tests = 0;  ///< AllocCounters.admission_tests delta
};

std::string serialize(const JournalRecord& r);
/// Strict parse; throws util::Error on any malformed field.
JournalRecord parse_journal_record(const std::string& payload);

/// Injectable kill sites for the crash-recovery tests: the process calls
/// std::_Exit(137) at the chosen point, leaving the on-disk state exactly
/// as a real crash would.
enum class CrashPoint : std::uint8_t {
  kNone,
  kBeforeAppend,  ///< decision made, journal record not yet written
  kAfterAppend,   ///< record durable, nothing after it ran
  kMidSnapshot,   ///< snapshot tmp file half-written, no rename
};

struct CrashSpec {
  CrashPoint point = CrashPoint::kNone;
  /// kBeforeAppend/kAfterAppend: the trace seq whose first journal append
  /// triggers the kill. kMidSnapshot: the 1-based snapshot write to kill.
  std::uint64_t at = 0;
};

/// Parse "before-append:SEQ" | "after-append:SEQ" | "mid-snapshot:K".
CrashSpec parse_crash_spec(const std::string& spec);

struct ServiceConfig {
  model::PlatformSpec platform = model::PlatformSpec::A();
  std::string platform_name = "A";
  TraceConfig trace;
  std::uint64_t seed = 42;
  /// Per-attempt deadline budget; zero disables the downgrade ladder.
  util::Time deadline = util::Time::zero();
  ShedPolicy shed = ShedPolicy::kRejectNewest;
  std::size_t queue_cap = 64;
  unsigned max_retries = 3;
  util::Time backoff = util::Time::ms(10);  ///< retry delay, doubled per try
  std::uint64_t snapshot_every = 1000;      ///< commits per snapshot; 0 = off
  std::string journal_path;                 ///< empty = no journaling
  bool recover = false;     ///< replay <journal> (+ snapshot) before going live
  CrashSpec crash;
  core::VmAllocConfig vm_cfg;
  /// Cooperative cancellation (SIGINT/SIGTERM): checked between requests.
  const std::atomic<bool>* cancel = nullptr;
  /// Test hook: behave as if interrupted after N served requests (0 = off) —
  /// exercises the interrupted-report path without killing the process.
  std::uint64_t stop_after = 0;

  // --- Runtime telemetry (docs/telemetry.md). None of these fields enter
  //     config_digest: telemetry on/off, and any sampling rate, must leave
  //     the report and the journal byte-identical and recovery-compatible.
  std::string timeline_path;  ///< metrics timeline file; empty = off
  /// Decisions (journal records) per timeline sample. Sampling is counted
  /// in virtual-time events, so the timeline is bit-identical at any
  /// --jobs/--inner-jobs and across --recover.
  std::uint64_t sample_every = 100;
  /// Render a deterministic stats snapshot to `stats_out` every N
  /// decisions; 0 = off.
  std::uint64_t stats_every = 0;
  /// Live introspection latch (SIGUSR1): when set, the next decision
  /// renders a stats snapshot and clears it.
  std::atomic<bool>* stats_signal = nullptr;
  std::ostream* stats_out = nullptr;  ///< stats sink; null = std::cerr
  /// Bounded post-mortem ring: the last K request spans, dumped to
  /// <journal>.spans on crash/interrupt. 0 disables the ring.
  std::size_t span_ring = 64;
  /// Keep every request span in ServiceResult.spans (for --span-trace and
  /// the tests); the ring is maintained either way.
  bool collect_spans = false;
};

struct ServiceResult {
  ServeReport report;
  bool interrupted = false;
  /// Non-fatal recovery findings (torn tail truncated, stale journal
  /// ignored, snapshot discarded); the CLI prints them to stderr so the
  /// report JSON stays byte-identical to an uninterrupted run's.
  std::vector<std::string> warnings;
  /// Every request span, in decision order (only when cfg.collect_spans).
  std::vector<obs::RequestSpan> spans;
};

/// Run the service over the configured trace (optionally recovering from a
/// previous run's journal first). Throws util::Error on I/O failures and
/// on replay divergence (a journal that disagrees with recomputation).
ServiceResult run_service(const ServiceConfig& cfg);

/// One bounded-queue slot (exposed for the shed-policy unit tests).
struct QueueEntry {
  std::uint64_t seq = 0;
  unsigned attempt = 0;
  util::Time ready_at;  ///< arrival time, or the retry time for attempt > 0
};

/// Pick the victim when `incoming` would overflow a full queue: an index
/// into `queue`, or queue.size() to shed the incoming entry itself.
/// Deterministic lexicographic-max selection; `trace` supplies each
/// entry's kind, utilization, and criticality.
std::size_t shed_victim(ShedPolicy policy,
                        const std::vector<QueueEntry>& queue,
                        const QueueEntry& incoming,
                        const std::vector<ServeRequest>& trace);

/// The canonical config digest stored in journal headers and snapshots:
/// recovery refuses to mix artifacts from a differently-configured run.
std::string config_digest(const ServiceConfig& cfg);

}  // namespace vc2m::service
