#include "service/report.h"

#include <cmath>
#include <fstream>
#include <iterator>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "util/error.h"
#include "util/file.h"

namespace vc2m::service {

namespace {

using obs::json::Value;
using Kind = Value::Kind;

std::string get_string(const Value& obj, const std::string& key,
                       const std::string& what) {
  const Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == Kind::kString,
                 what << ": missing string field '" << key << "'");
  return v->str;
}

std::uint64_t get_count(const Value& obj, const std::string& key,
                        const std::string& what) {
  const Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == Kind::kNumber && v->number >= 0 &&
                     v->number == std::floor(v->number),
                 what << ": field '" << key
                      << "' must be a non-negative integer");
  return static_cast<std::uint64_t>(v->number);
}

double get_number(const Value& obj, const std::string& key,
                  const std::string& what) {
  const Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == Kind::kNumber,
                 what << ": missing numeric field '" << key << "'");
  return v->number;
}

const Value& get_object(const Value& obj, const std::string& key,
                        const std::string& what) {
  const Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == Kind::kObject,
                 what << ": missing object field '" << key << "'");
  return *v;
}

void write_summary(std::ostream& os, const obs::HistogramSummary& h) {
  os << "{\"count\": " << h.count << ", \"mean\": " << obs::json::number(h.mean)
     << ", \"min\": " << obs::json::number(h.min)
     << ", \"max\": " << obs::json::number(h.max)
     << ", \"p50\": " << obs::json::number(h.p50)
     << ", \"p90\": " << obs::json::number(h.p90)
     << ", \"p95\": " << obs::json::number(h.p95)
     << ", \"p99\": " << obs::json::number(h.p99) << "}";
}

obs::HistogramSummary parse_summary(const Value& v, const std::string& what) {
  obs::HistogramSummary h;
  h.count = get_count(v, "count", what);
  h.mean = get_number(v, "mean", what);
  h.min = get_number(v, "min", what);
  h.max = get_number(v, "max", what);
  h.p50 = get_number(v, "p50", what);
  h.p90 = get_number(v, "p90", what);
  h.p95 = get_number(v, "p95", what);
  h.p99 = get_number(v, "p99", what);
  return h;
}

/// Forward compatibility: fields this reader does not know are reported,
/// never rejected — a newer writer may legitimately add them.
void surface_unknown(const Value& obj, const char* const* known,
                     std::size_t n_known, const std::string& what,
                     std::vector<std::string>* notes) {
  if (!notes) return;
  for (const auto& [k, v] : obj.object) {
    bool hit = false;
    for (std::size_t i = 0; i < n_known && !hit; ++i) hit = k == known[i];
    if (!hit)
      notes->push_back(what + ": unknown field '" + k +
                       "' (written by a newer vc2m?) — ignored");
  }
}

}  // namespace

void write_serve_report(std::ostream& os, const ServeReport& r) {
  os << "{\n";
  os << "\"schema\": \"" << obs::json::escape(r.schema) << "\",\n";
  os << "\"git_rev\": \"" << obs::json::escape(r.git_rev) << "\",\n";
  os << "\"trace\": \"" << obs::json::escape(r.trace) << "\",\n";
  os << "\"platform\": \"" << obs::json::escape(r.platform) << "\",\n";
  os << "\"seed\": " << r.seed << ",\n";
  os << "\"config\": {\"deadline_us\": " << r.deadline_us
     << ", \"shed_policy\": \"" << obs::json::escape(r.shed_policy)
     << "\", \"queue_cap\": " << r.queue_cap
     << ", \"max_retries\": " << r.max_retries
     << ", \"backoff_us\": " << r.backoff_us
     << ", \"snapshot_every\": " << r.snapshot_every << "},\n";
  os << "\"totals\": {\"requests\": " << r.requests
     << ", \"arrivals\": " << r.arrivals << ", \"admitted\": " << r.admitted
     << ", \"rejected\": " << r.rejected
     << ", \"probe_rejected\": " << r.probe_rejected
     << ", \"removed\": " << r.removed << ", \"resized\": " << r.resized
     << ", \"resize_rejected\": " << r.resize_rejected
     << ", \"not_present\": " << r.not_present
     << ", \"deferred\": " << r.deferred << ", \"retries\": " << r.retries
     << ", \"shed\": " << r.shed << ", \"timed_out\": " << r.timed_out
     << ", \"downgrades\": " << r.downgrades << ", \"commits\": " << r.commits
     << ", \"snapshots\": " << r.snapshots << "},\n";
  os << "\"queue\": {\"max_depth\": " << r.queue_max_depth
     << ", \"backpressure\": " << r.backpressure << "},\n";
  os << "\"decisions\": {\"events\": " << r.decision_events
     << ", \"dropped\": " << r.decision_dropped << "},\n";
  os << "\"latency_us\": {\"admitted\": ";
  write_summary(os, r.latency_admitted_us);
  os << ", \"rejected\": ";
  write_summary(os, r.latency_rejected_us);
  os << ", \"deferred\": ";
  write_summary(os, r.latency_deferred_us);
  os << ", \"shed\": ";
  write_summary(os, r.latency_shed_us);
  os << "},\n";
  os << "\"state\": {\"vms\": " << r.vms << ", \"vcpus\": " << r.vcpus
     << ", \"cores_used\": " << r.cores_used << ", \"digest\": \""
     << obs::json::escape(r.digest) << "\"}";
  if (r.interrupted) os << ",\n\"interrupted\": true";
  os << "\n}\n";
}

void write_serve_report_file(const std::string& path, const ServeReport& r) {
  auto f = util::open_output_file(path, "serve report");
  write_serve_report(f, r);
  util::close_output_file(f, path, "serve report");
}

ServeReport read_serve_report(std::istream& is, const std::string& what,
                              std::vector<std::string>* notes) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const Value root = obs::json::parse(buf.str(), what);
  VC2M_CHECK_MSG(root.kind == Kind::kObject,
                 what << ": top level must be an object");
  static constexpr const char* kKnown[] = {
      "schema", "git_rev",   "trace",     "platform",   "seed",  "config",
      "totals", "queue",     "decisions", "latency_us", "state",
      "interrupted"};
  surface_unknown(root, kKnown, std::size(kKnown), what, notes);
  ServeReport r;
  r.schema = get_string(root, "schema", what);
  VC2M_CHECK_MSG(r.schema == kServeReportSchema,
                 what << ": unsupported schema '" << r.schema << "'");
  r.git_rev = get_string(root, "git_rev", what);
  r.trace = get_string(root, "trace", what);
  r.platform = get_string(root, "platform", what);
  r.seed = get_count(root, "seed", what);
  const Value& cfg = get_object(root, "config", what);
  r.deadline_us = static_cast<std::int64_t>(get_count(cfg, "deadline_us", what));
  r.shed_policy = get_string(cfg, "shed_policy", what);
  r.queue_cap = get_count(cfg, "queue_cap", what);
  r.max_retries = get_count(cfg, "max_retries", what);
  r.backoff_us = static_cast<std::int64_t>(get_count(cfg, "backoff_us", what));
  r.snapshot_every = get_count(cfg, "snapshot_every", what);
  const Value& t = get_object(root, "totals", what);
  r.requests = get_count(t, "requests", what);
  r.arrivals = get_count(t, "arrivals", what);
  r.admitted = get_count(t, "admitted", what);
  r.rejected = get_count(t, "rejected", what);
  r.probe_rejected = get_count(t, "probe_rejected", what);
  r.removed = get_count(t, "removed", what);
  r.resized = get_count(t, "resized", what);
  r.resize_rejected = get_count(t, "resize_rejected", what);
  r.not_present = get_count(t, "not_present", what);
  r.deferred = get_count(t, "deferred", what);
  r.retries = get_count(t, "retries", what);
  r.shed = get_count(t, "shed", what);
  r.timed_out = get_count(t, "timed_out", what);
  r.downgrades = get_count(t, "downgrades", what);
  r.commits = get_count(t, "commits", what);
  r.snapshots = get_count(t, "snapshots", what);
  const Value& q = get_object(root, "queue", what);
  r.queue_max_depth = get_count(q, "max_depth", what);
  r.backpressure = get_count(q, "backpressure", what);
  const Value& d = get_object(root, "decisions", what);
  r.decision_events = get_count(d, "events", what);
  r.decision_dropped = get_count(d, "dropped", what);
  const Value& lat = get_object(root, "latency_us", what);
  r.latency_admitted_us = parse_summary(get_object(lat, "admitted", what), what);
  r.latency_rejected_us = parse_summary(get_object(lat, "rejected", what), what);
  r.latency_deferred_us = parse_summary(get_object(lat, "deferred", what), what);
  r.latency_shed_us = parse_summary(get_object(lat, "shed", what), what);
  const Value& s = get_object(root, "state", what);
  r.vms = get_count(s, "vms", what);
  r.vcpus = get_count(s, "vcpus", what);
  r.cores_used = get_count(s, "cores_used", what);
  r.digest = get_string(s, "digest", what);
  if (const Value* flag = root.find("interrupted")) {
    VC2M_CHECK_MSG(flag->kind == Kind::kBool && flag->boolean,
                   what << ": 'interrupted' may only be present as true");
    r.interrupted = true;
  }
  // Terminal outcomes must account for every enqueued attempt: arrivals plus
  // re-enqueued retries all end in exactly one terminal bucket.
  const std::uint64_t terminal = r.admitted + r.rejected + r.probe_rejected +
                                 r.removed + r.resized + r.resize_rejected +
                                 r.not_present + r.shed + r.timed_out;
  VC2M_CHECK_MSG(r.interrupted ||
                     terminal + r.deferred == r.arrivals + r.retries,
                 what << ": outcome totals do not cover the enqueued attempts");
  return r;
}

ServeReport read_serve_report_file(const std::string& path,
                                   std::vector<std::string>* notes) {
  std::ifstream f(path);
  if (!f.good()) throw util::Error("cannot open serve report '" + path + "'");
  return read_serve_report(f, path, notes);
}

}  // namespace vc2m::service
