// Seeded request-trace generation for the admission-control service.
//
// A trace is a deterministic stream of admit/remove/resize requests with
// virtual arrival timestamps. Three arrival patterns are supported:
//   poisson — exponential interarrivals at a constant mean rate,
//   flash   — poisson with a rate burst (×flash-x) over a window of the
//             trace (a flash crowd hitting the control plane),
//   diurnal — poisson with the rate modulated sinusoidally over `cycles`
//             day-night cycles across the trace.
//
// Requests carry generative parameters only (target utilization, taskset
// seed) — the actual taskset is materialized lazily when the service
// processes the request, so a 10^5-request trace costs megabytes, not
// gigabytes. Everything is a pure function of (spec, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/resource_grid.h"
#include "model/task.h"
#include "util/rng.h"
#include "util/time.h"

namespace vc2m::service {

enum class RequestKind : std::uint8_t { kAdmit, kRemove, kResize };

const char* to_string(RequestKind k);

struct ServeRequest {
  std::uint64_t seq = 0;   ///< index into the trace (stable identity)
  util::Time at;           ///< virtual arrival time
  RequestKind kind = RequestKind::kAdmit;
  int vm = 0;
  double util = 0;         ///< admit/resize: target reference utilization
  /// 0 = best-effort (first to be shed under the criticality policy, the
  /// same class the kDegrade enforcement policy sheds); >= 1 = critical.
  int criticality = 1;
  std::uint64_t taskset_seed = 0;  ///< admit/resize: workload stream seed
};

enum class TracePattern : std::uint8_t { kPoisson, kFlash, kDiurnal };

const char* to_string(TracePattern p);

struct TraceConfig {
  TracePattern pattern = TracePattern::kPoisson;
  std::uint64_t requests = 100000;
  util::Time mean_interarrival = util::Time::us(500);
  double util_lo = 0.1;
  double util_hi = 0.5;
  double remove_frac = 0.25;   ///< fraction of requests removing a live VM
  double resize_frac = 0.10;   ///< fraction resizing a live VM
  double low_crit_frac = 0.5;  ///< fraction of admits with criticality 0
  // flash: rate multiplied by `flash_x` for requests in
  // [flash_at, flash_at + flash_len) (fractions of the trace).
  double flash_at = 0.5;
  double flash_len = 0.1;
  double flash_x = 8.0;
  // diurnal: rate multiplier 1 + amp * sin(2π · cycles · i/n).
  double diurnal_cycles = 2.0;
  double diurnal_amp = 0.8;
  std::string spec;  ///< the original spec string (echoed in reports)
};

/// Parse "PATTERN[:key=value[,key=value...]]", e.g.
/// "poisson:requests=2000,interarrival-us=300,util=0.1..0.4" or
/// "flash:flash-x=12,flash-at=0.6". Keys: requests, interarrival-us,
/// util=LO..HI, remove-frac, resize-frac, low-crit-frac, flash-at,
/// flash-len, flash-x, cycles, amp. Throws util::Error on anything else.
TraceConfig parse_trace_spec(const std::string& spec);

/// Generate the full request stream. Deterministic given (cfg, seed); VM
/// ids are unique and increasing, removes/resizes target VMs the generator
/// has admitted and not yet removed (the service may still see a remove for
/// a VM it rejected — that is the not-present path, by design).
std::vector<ServeRequest> generate_trace(const TraceConfig& cfg,
                                         std::uint64_t seed);

/// Materialize the taskset behind an admit/resize request (tasks carry
/// req.vm). Pure function of (req, grid).
model::Taskset materialize_taskset(const ServeRequest& req,
                                   const model::ResourceGrid& grid);

}  // namespace vc2m::service
