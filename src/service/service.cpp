#include "service/service.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>

#include <chrono>
#include <iostream>

#include "core/admission.h"
#include "core/strategy.h"
#include "obs/decision_log.h"
#include "obs/request_span.h"
#include "scenario/digest.h"
#include "service/journal.h"
#include "service/telemetry.h"
#include "util/error.h"
#include "util/instrument.h"
#include "util/log_histogram.h"
#include "util/thread_pool.h"

namespace vc2m::service {

namespace {

// ---------------------------------------------------------------------------
// Strict scalar parsing shared by the record/spec parsers.

std::uint64_t parse_u64(const std::string& s, const char* what) {
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  VC2M_CHECK_MSG(!s.empty() && s[0] != '-' && end == s.c_str() + s.size() &&
                     errno == 0,
                 what << ": bad number '" << s << "'");
  return v;
}

std::int64_t parse_i64(const std::string& s, const char* what) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  VC2M_CHECK_MSG(!s.empty() && end == s.c_str() + s.size() && errno == 0,
                 what << ": bad number '" << s << "'");
  return v;
}

bool request_kind_from_string(const std::string& s, RequestKind& out) {
  if (s == "admit") out = RequestKind::kAdmit;
  else if (s == "remove") out = RequestKind::kRemove;
  else if (s == "resize") out = RequestKind::kResize;
  else return false;
  return true;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto p = s.find(sep, start);
    out.push_back(s.substr(start, p - start));
    if (p == std::string::npos) return out;
    start = p + 1;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Enum names (stable: they appear in journal records and reports).

const char* to_string(ShedPolicy p) {
  switch (p) {
    case ShedPolicy::kRejectNewest: return "reject-newest";
    case ShedPolicy::kRejectLargest: return "reject-largest";
    case ShedPolicy::kCriticality: return "criticality";
  }
  return "?";
}

bool shed_policy_from_string(const std::string& s, ShedPolicy& out) {
  if (s == "reject-newest") out = ShedPolicy::kRejectNewest;
  else if (s == "reject-largest") out = ShedPolicy::kRejectLargest;
  else if (s == "criticality") out = ShedPolicy::kCriticality;
  else return false;
  return true;
}

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kAdmitted: return "admitted";
    case Outcome::kRejected: return "rejected";
    case Outcome::kProbeRejected: return "probe_rejected";
    case Outcome::kDeferred: return "deferred";
    case Outcome::kTimedOut: return "timed_out";
    case Outcome::kShed: return "shed";
    case Outcome::kRemoved: return "removed";
    case Outcome::kNotPresent: return "not_present";
    case Outcome::kResized: return "resized";
    case Outcome::kResizeRejected: return "resize_rejected";
  }
  return "?";
}

bool outcome_from_string(const std::string& s, Outcome& out) {
  static constexpr Outcome all[] = {
      Outcome::kAdmitted,      Outcome::kRejected, Outcome::kProbeRejected,
      Outcome::kDeferred,      Outcome::kTimedOut, Outcome::kShed,
      Outcome::kRemoved,       Outcome::kNotPresent,
      Outcome::kResized,       Outcome::kResizeRejected};
  for (const Outcome o : all)
    if (s == to_string(o)) {
      out = o;
      return true;
    }
  return false;
}

// ---------------------------------------------------------------------------
// Journal records.

std::string serialize(const JournalRecord& r) {
  std::ostringstream os;
  os << "seq=" << r.seq << "|attempt=" << r.attempt << "|kind="
     << to_string(r.kind) << "|outcome=" << to_string(r.outcome)
     << "|vm=" << r.vm << "|tasks=" << r.tasks << "|events=" << r.events
     << "|cost_ns=" << r.cost_ns << "|latency_ns=" << r.latency_ns
     << "|dbf=" << r.dbf_evals << "|budget=" << r.budget_evals
     << "|adm=" << r.admission_tests;
  return os.str();
}

JournalRecord parse_journal_record(const std::string& payload) {
  const auto parts = split(payload, '|');
  VC2M_CHECK_MSG(parts.size() == 12,
                 "journal record: want 12 fields, got " << parts.size());
  auto field = [&](std::size_t i, const char* key) -> std::string {
    const std::string prefix = std::string(key) + "=";
    VC2M_CHECK_MSG(parts[i].rfind(prefix, 0) == 0,
                   "journal record: field " << i << " must be '" << key
                                            << "=...'");
    return parts[i].substr(prefix.size());
  };
  JournalRecord r;
  r.seq = parse_u64(field(0, "seq"), "journal record");
  r.attempt =
      static_cast<unsigned>(parse_u64(field(1, "attempt"), "journal record"));
  VC2M_CHECK_MSG(request_kind_from_string(field(2, "kind"), r.kind),
                 "journal record: unknown kind '" << field(2, "kind") << "'");
  VC2M_CHECK_MSG(outcome_from_string(field(3, "outcome"), r.outcome),
                 "journal record: unknown outcome '" << field(3, "outcome")
                                                     << "'");
  r.vm = static_cast<int>(parse_i64(field(4, "vm"), "journal record"));
  r.tasks = parse_u64(field(5, "tasks"), "journal record");
  r.events = parse_u64(field(6, "events"), "journal record");
  r.cost_ns = parse_i64(field(7, "cost_ns"), "journal record");
  r.latency_ns = parse_i64(field(8, "latency_ns"), "journal record");
  r.dbf_evals = parse_u64(field(9, "dbf"), "journal record");
  r.budget_evals = parse_u64(field(10, "budget"), "journal record");
  r.admission_tests = parse_u64(field(11, "adm"), "journal record");
  return r;
}

CrashSpec parse_crash_spec(const std::string& spec) {
  const auto colon = spec.find(':');
  VC2M_CHECK_MSG(colon != std::string::npos,
                 "crash spec: want POINT:N, got '" << spec << "'");
  const std::string point = spec.substr(0, colon);
  CrashSpec out;
  if (point == "before-append") out.point = CrashPoint::kBeforeAppend;
  else if (point == "after-append") out.point = CrashPoint::kAfterAppend;
  else if (point == "mid-snapshot") out.point = CrashPoint::kMidSnapshot;
  else
    throw util::Error("crash spec: unknown point '" + point +
                      "' (before-append|after-append|mid-snapshot)");
  out.at = parse_u64(spec.substr(colon + 1), "crash spec");
  return out;
}

std::string config_digest(const ServiceConfig& cfg) {
  std::ostringstream os;
  os << "trace="
     << (cfg.trace.spec.empty() ? to_string(cfg.trace.pattern) : cfg.trace.spec)
     << "|seed=" << cfg.seed << "|platform=" << cfg.platform_name
     << "|deadline_ns=" << cfg.deadline.raw_ns()
     << "|shed=" << to_string(cfg.shed) << "|queue_cap=" << cfg.queue_cap
     << "|max_retries=" << cfg.max_retries
     << "|backoff_ns=" << cfg.backoff.raw_ns()
     << "|snapshot_every=" << cfg.snapshot_every;
  return scenario::text_digest(os.str());
}

// ---------------------------------------------------------------------------
// Shed policies.

std::size_t shed_victim(ShedPolicy policy, const std::vector<QueueEntry>& queue,
                        const QueueEntry& incoming,
                        const std::vector<ServeRequest>& trace) {
  if (policy == ShedPolicy::kRejectNewest) return queue.size();
  // Lexicographic-max victim key. Removes free capacity, so they get
  // weight -1 (and count as critical under the criticality policy): a
  // remove is only ever shed when the whole queue is removes.
  auto key = [&](const QueueEntry& e) {
    const ServeRequest& req = trace[e.seq];
    const bool is_remove = req.kind == RequestKind::kRemove;
    const double weight = is_remove ? -1.0 : req.util;
    const int sheddable =
        (policy == ShedPolicy::kCriticality && !is_remove &&
         req.criticality == 0)
            ? 1
            : 0;
    return std::tuple<int, double, std::uint64_t>(sheddable, weight, e.seq);
  };
  std::size_t best = queue.size();
  auto best_key = key(incoming);
  for (std::size_t i = 0; i < queue.size(); ++i) {
    const auto k = key(queue[i]);
    if (k > best_key) {
      best_key = k;
      best = i;
    }
  }
  return best;
}

// ---------------------------------------------------------------------------
// The service state machine.

namespace {

struct Stats {
  std::uint64_t arrivals = 0, admitted = 0, rejected = 0, probe_rejected = 0,
                removed = 0, resized = 0, resize_rejected = 0, not_present = 0,
                deferred = 0, retries = 0, shed = 0, timed_out = 0,
                downgrades = 0, queue_max_depth = 0, backpressure = 0,
                decision_events = 0, decision_dropped = 0,
                // Cumulative allocator effort, folded from the journal's
                // per-record deltas on recovery so the metrics timeline is
                // replay-stable even for decisions whose solver run is
                // skipped.
                dbf_evals = 0, budget_evals = 0, admission_tests = 0;
};

// Fixed serialization order of the stats counters in a snapshot.
std::array<std::uint64_t*, 20> stat_fields(Stats& s) {
  return {&s.arrivals,     &s.admitted,       &s.rejected,
          &s.probe_rejected, &s.removed,      &s.resized,
          &s.resize_rejected, &s.not_present, &s.deferred,
          &s.retries,      &s.shed,           &s.timed_out,
          &s.downgrades,   &s.queue_max_depth, &s.backpressure,
          &s.decision_events, &s.decision_dropped,
          &s.dbf_evals,    &s.budget_evals,   &s.admission_tests};
}

/// Decisions taken so far — one per journal record: every terminal outcome
/// plus every deferral. The timeline sampler counts in this unit, and the
/// sum is derivable from Stats so it restores with any snapshot.
std::uint64_t decisions_of(const Stats& s) {
  return s.admitted + s.rejected + s.probe_rejected + s.deferred +
         s.timed_out + s.shed + s.removed + s.not_present + s.resized +
         s.resize_rejected;
}

struct State {
  core::AdmissionState adm;
  std::vector<QueueEntry> queue;  ///< bounded FIFO
  std::vector<QueueEntry> retry;  ///< min-heap by (ready_at, seq)
  std::uint64_t trace_next = 0;
  util::Time busy_until = util::Time::zero();
  std::int64_t est_ns_per_task = 200'000;  ///< EWMA full-solve cost estimate
  std::uint64_t commits = 0;
  std::uint64_t ordinal = 0;  ///< snapshots successfully written
  Stats stats;
  /// Per-outcome-class latency histograms (µs): admitted ∪ removed ∪
  /// resized, the rejection family, deferrals (arrival → defer decision),
  /// and sheds. The serve report and the timeline sample all four.
  util::LogHistogram lat_admitted, lat_rejected, lat_deferred, lat_shed;
};

bool retry_after(const QueueEntry& a, const QueueEntry& b) {
  return a.ready_at > b.ready_at ||
         (a.ready_at == b.ready_at && a.seq > b.seq);
}

bool mutating(Outcome o) {
  return o == Outcome::kAdmitted || o == Outcome::kRemoved ||
         o == Outcome::kResized;
}

bool vm_present(const core::AdmissionState& adm, int vm) {
  for (const auto& v : adm.vcpus)
    if (v.vm == vm) return true;
  return false;
}

/// Sound upper bound on the capacity the new VM could ever get: per used
/// core, 1 minus the residents' utilization at full resources (their
/// minimum — budget surfaces are non-increasing in cache/BW), plus one
/// full core per unopened core. A demand lower bound exceeding this cannot
/// be admitted by any allocation, so probe rejections are real rejections.
double headroom_upper_bound(const core::AdmissionState& adm,
                            const model::PlatformSpec& platform) {
  double h = 0;
  for (const auto& members : adm.mapping.vcpus_on_core) {
    double used = 0;
    for (const std::size_t vi : members)
      used += adm.vcpus[vi].utilization(platform.grid.c_max,
                                        platform.grid.b_max);
    h += std::max(0.0, 1.0 - used);
  }
  const std::size_t open = adm.mapping.vcpus_on_core.size();
  if (platform.cores > open)
    h += static_cast<double>(platform.cores - open);
  return h;
}

// Deterministic virtual cost of one decision, from what the allocator
// actually did (counter deltas). The constants are a plausible ns-scale
// model; what matters is determinism, not wall-clock fidelity.
std::int64_t solve_cost(const util::AllocCounters& c) {
  return 20'000 + 800 * static_cast<std::int64_t>(c.dbf_evaluations) +
         500 * static_cast<std::int64_t>(c.budget_evaluations) +
         120 * static_cast<std::int64_t>(c.admission_tests);
}

std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t seq,
                       unsigned attempt) {
  std::uint64_t h = seed ^ 0xCBF29CE484222325ull;
  h = (h ^ (seq + 0x9E3779B97F4A7C15ull)) * 0x100000001B3ull;
  h = (h ^ (attempt + 1)) * 0x100000001B3ull;
  return h;
}

// ---------------------------------------------------------------------------
// Snapshot serialization. Line-based text, FNV-checksummed; doubles as hex
// bit patterns so restore is exact.

std::string snapshot_text(State& st, const std::string& digest,
                          std::uint64_t journal_base,
                          std::uint64_t journal_records) {
  std::ostringstream os;
  os << kSnapshotSchema << "\n";
  os << "config=" << digest << "\n";
  os << "ordinal=" << st.ordinal << "\n";
  os << "journal_base=" << journal_base << "\n";
  os << "journal_records=" << journal_records << "\n";
  os << "trace_next=" << st.trace_next << "\n";
  os << "busy_until=" << st.busy_until.raw_ns() << "\n";
  os << "est=" << st.est_ns_per_task << "\n";
  os << "commits=" << st.commits << "\n";
  os << "stats=";
  bool first = true;
  for (const std::uint64_t* f : stat_fields(st.stats)) {
    os << (first ? "" : " ") << *f;
    first = false;
  }
  os << "\n";
  os << "hist_admitted=" << serialize_histogram(st.lat_admitted) << "\n";
  os << "hist_rejected=" << serialize_histogram(st.lat_rejected) << "\n";
  os << "hist_deferred=" << serialize_histogram(st.lat_deferred) << "\n";
  os << "hist_shed=" << serialize_histogram(st.lat_shed) << "\n";
  os << "queue=" << st.queue.size() << "\n";
  for (const auto& e : st.queue)
    os << "q " << e.seq << " " << e.attempt << " " << e.ready_at.raw_ns()
       << "\n";
  os << "retry=" << st.retry.size() << "\n";
  for (const auto& e : st.retry)
    os << "r " << e.seq << " " << e.attempt << " " << e.ready_at.raw_ns()
       << "\n";
  os << "vcpus=" << st.adm.vcpus.size() << "\n";
  for (const auto& v : st.adm.vcpus) {
    os << "v " << v.vm << " " << v.period.raw_ns() << " " << v.tasks.size();
    for (const std::size_t t : v.tasks) os << " " << t;
    const auto& g = v.budget.grid();
    os << " " << g.c_min << " " << g.c_max << " " << g.b_min << " " << g.b_max;
    for (unsigned c = g.c_min; c <= g.c_max; ++c)
      for (unsigned b = g.b_min; b <= g.b_max; ++b)
        os << " " << v.budget.at(c, b).raw_ns();
    os << "\n";
  }
  const auto& m = st.adm.mapping;
  os << "cores=" << m.vcpus_on_core.size() << " " << (m.schedulable ? 1 : 0)
     << " " << m.cores_used << "\n";
  for (std::size_t k = 0; k < m.vcpus_on_core.size(); ++k) {
    os << "c " << m.cache[k] << " " << m.bw[k] << " "
       << m.vcpus_on_core[k].size();
    for (const std::size_t vi : m.vcpus_on_core[k]) os << " " << vi;
    os << "\n";
  }
  return os.str();
}

/// Restore from a snapshot file. Returns true on success; a missing file
/// is a silent false, anything wrong with an existing file is a warning
/// plus false (the caller recomputes from scratch — same result, slower).
bool load_snapshot(const std::string& path, const std::string& digest,
                   State& st, std::uint64_t& journal_base,
                   std::uint64_t& journal_records,
                   std::vector<std::string>& warnings) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return false;
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();
  const auto pos = text.rfind("\nfnv=");
  if (pos == std::string::npos) {
    warnings.push_back("recover: snapshot '" + path +
                       "' has no checksum line — discarding it");
    return false;
  }
  const std::string body = text.substr(0, pos + 1);
  std::string sum = text.substr(pos + 5);
  while (!sum.empty() && sum.back() == '\n') sum.pop_back();
  if (scenario::text_digest(body) != sum) {
    warnings.push_back("recover: snapshot '" + path +
                       "' fails its checksum — discarding it");
    return false;
  }
  // The checksum vouches for the bytes; parse failures past this point mean
  // a schema change, which also discards (with a warning), never crashes.
  try {
    std::istringstream is(body);
    std::string line;
    auto next_line = [&]() -> std::string& {
      VC2M_CHECK_MSG(static_cast<bool>(std::getline(is, line)),
                     "snapshot truncated");
      return line;
    };
    auto next_kv = [&](const char* key) -> std::string {
      const std::string& l = next_line();
      const std::string prefix = std::string(key) + "=";
      VC2M_CHECK_MSG(l.rfind(prefix, 0) == 0,
                     "snapshot: expected '" << key << "=' line");
      return l.substr(prefix.size());
    };
    VC2M_CHECK_MSG(next_line() == kSnapshotSchema, "snapshot: bad schema");
    if (next_kv("config") != digest) {
      warnings.push_back(
          "recover: snapshot '" + path +
          "' was written by a different configuration — discarding it");
      return false;
    }
    State out;
    out.ordinal = parse_u64(next_kv("ordinal"), "snapshot");
    journal_base = parse_u64(next_kv("journal_base"), "snapshot");
    journal_records = parse_u64(next_kv("journal_records"), "snapshot");
    out.trace_next = parse_u64(next_kv("trace_next"), "snapshot");
    out.busy_until =
        util::Time::ns(parse_i64(next_kv("busy_until"), "snapshot"));
    out.est_ns_per_task = parse_i64(next_kv("est"), "snapshot");
    out.commits = parse_u64(next_kv("commits"), "snapshot");
    {
      std::istringstream ls(next_kv("stats"));
      for (std::uint64_t* fld : stat_fields(out.stats)) {
        VC2M_CHECK_MSG(static_cast<bool>(ls >> *fld), "snapshot: short stats");
      }
    }
    out.lat_admitted = parse_histogram(next_kv("hist_admitted"));
    out.lat_rejected = parse_histogram(next_kv("hist_rejected"));
    out.lat_deferred = parse_histogram(next_kv("hist_deferred"));
    out.lat_shed = parse_histogram(next_kv("hist_shed"));
    auto read_entries = [&](const char* key, const char* tag,
                            std::vector<QueueEntry>& into) {
      const std::uint64_t n = parse_u64(next_kv(key), "snapshot");
      for (std::uint64_t i = 0; i < n; ++i) {
        std::istringstream ls(next_line());
        std::string t;
        QueueEntry e;
        std::int64_t ready = 0;
        VC2M_CHECK_MSG(
            static_cast<bool>(ls >> t >> e.seq >> e.attempt >> ready) &&
                t == tag,
            "snapshot: bad queue entry");
        e.ready_at = util::Time::ns(ready);
        into.push_back(e);
      }
    };
    read_entries("queue", "q", out.queue);
    read_entries("retry", "r", out.retry);
    const std::uint64_t nv = parse_u64(next_kv("vcpus"), "snapshot");
    for (std::uint64_t i = 0; i < nv; ++i) {
      std::istringstream ls(next_line());
      std::string tag;
      model::Vcpu v;
      std::int64_t period = 0;
      std::size_t ntasks = 0;
      VC2M_CHECK_MSG(
          static_cast<bool>(ls >> tag >> v.vm >> period >> ntasks) &&
              tag == "v",
          "snapshot: bad vcpu line");
      v.period = util::Time::ns(period);
      v.tasks.resize(ntasks);
      for (auto& t : v.tasks)
        VC2M_CHECK_MSG(static_cast<bool>(ls >> t), "snapshot: short vcpu");
      model::ResourceGrid g;
      VC2M_CHECK_MSG(
          static_cast<bool>(ls >> g.c_min >> g.c_max >> g.b_min >> g.b_max),
          "snapshot: bad vcpu grid");
      model::WcetFn fn(g);
      for (unsigned c = g.c_min; c <= g.c_max; ++c)
        for (unsigned b = g.b_min; b <= g.b_max; ++b) {
          std::int64_t ns = 0;
          VC2M_CHECK_MSG(static_cast<bool>(ls >> ns),
                         "snapshot: short budget surface");
          fn.set(c, b, util::Time::ns(ns));
        }
      v.budget = fn;
      out.adm.vcpus.push_back(std::move(v));
    }
    {
      std::istringstream ls(next_kv("cores"));
      std::size_t ncores = 0;
      int sched = 0;
      VC2M_CHECK_MSG(static_cast<bool>(ls >> ncores >> sched >>
                                       out.adm.mapping.cores_used),
                     "snapshot: bad cores line");
      out.adm.mapping.schedulable = sched != 0;
      for (std::size_t k = 0; k < ncores; ++k) {
        std::istringstream cl(next_line());
        std::string tag;
        unsigned cache = 0, bw = 0;
        std::size_t n = 0;
        VC2M_CHECK_MSG(
            static_cast<bool>(cl >> tag >> cache >> bw >> n) && tag == "c",
            "snapshot: bad core line");
        std::vector<std::size_t> members(n);
        for (auto& vi : members)
          VC2M_CHECK_MSG(static_cast<bool>(cl >> vi), "snapshot: short core");
        out.adm.mapping.cache.push_back(cache);
        out.adm.mapping.bw.push_back(bw);
        out.adm.mapping.vcpus_on_core.push_back(std::move(members));
      }
    }
    st = std::move(out);
    return true;
  } catch (const std::exception& e) {
    warnings.push_back("recover: snapshot '" + path +
                       "' did not parse (" + e.what() + ") — discarding it");
    return false;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// run_service

ServiceResult run_service(const ServiceConfig& cfg_in) {
  ServiceConfig cfg = cfg_in;
  // Single-decision service path: admissions solve one surface at a time,
  // so stripe them over a service-lifetime inner pool when the platform has
  // spare hardware threads (verdicts and journal digests are bit-identical
  // at any inner-jobs value; the digest does not cover vm_cfg).
  std::unique_ptr<util::ThreadPool> inner_pool;
  if (cfg.vm_cfg.inner_pool == nullptr && cfg.vm_cfg.inner_jobs != 1) {
    const unsigned w = cfg.vm_cfg.inner_jobs == 0
                           ? util::ThreadPool::hardware_workers()
                           : static_cast<unsigned>(cfg.vm_cfg.inner_jobs);
    if (w > 1) {
      inner_pool = std::make_unique<util::ThreadPool>(w);
      cfg.vm_cfg.inner_pool = inner_pool.get();
      cfg.vm_cfg.inner_jobs = static_cast<int>(w);
    } else {
      cfg.vm_cfg.inner_jobs = 1;
    }
  }
  ServiceResult result;
  const auto trace = generate_trace(cfg.trace, cfg.seed);
  const std::string digest = config_digest(cfg);
  const bool journaling = !cfg.journal_path.empty();
  const std::string snap_path =
      journaling ? cfg.journal_path + ".snap" : std::string();

  State st;
  JournalWriter writer;
  std::vector<JournalRecord> pending;  ///< journal records left to replay
  std::size_t cursor = 0;
  bool replaying = false;
  std::uint64_t journal_base = 0;    ///< base of the on-disk journal
  std::uint64_t journal_records = 0; ///< records in the on-disk journal
  std::uint64_t journal_valid_bytes = 0;
  std::uint64_t snapshot_writes = 0;  ///< crash-injection counter

  if (journaling && cfg.recover) {
    std::uint64_t snap_jb = 0, snap_jr = 0;
    const bool have_snap = load_snapshot(snap_path, digest, st, snap_jb,
                                         snap_jr, result.warnings);
    const JournalScan scan = scan_journal(cfg.journal_path);
    bool use_journal = false;
    std::size_t skip = 0;
    if (!scan.exists) {
      if (!have_snap)
        result.warnings.push_back("recover: no journal or snapshot at '" +
                                  cfg.journal_path + "' — starting fresh");
    } else if (!scan.header_ok) {
      result.warnings.push_back("recover: journal '" + cfg.journal_path +
                                "' has no valid header — ignoring it");
    } else if (scan.config_digest != digest) {
      result.warnings.push_back(
          "recover: journal '" + cfg.journal_path +
          "' was written by a different configuration — ignoring it");
    } else if (scan.base == st.ordinal) {
      use_journal = true;
    } else if (have_snap && scan.base == snap_jb) {
      // Crash landed between the snapshot rename and the journal rotation:
      // the first snap_jr records are already folded into the snapshot.
      use_journal = true;
      skip = snap_jr;
    } else {
      result.warnings.push_back(
          "recover: journal base " + std::to_string(scan.base) +
          " matches neither snapshot ordinal " + std::to_string(st.ordinal) +
          " nor its fold point — ignoring the journal");
    }
    if (use_journal && scan.torn)
      result.warnings.push_back(
          "recover: journal '" + cfg.journal_path +
          "' has a torn tail — truncated to the last valid record (" +
          std::to_string(scan.valid_bytes) + " bytes)");
    if (use_journal && skip > scan.records.size()) {
      result.warnings.push_back(
          "recover: journal is shorter than the snapshot's fold point — "
          "ignoring it");
      use_journal = false;
    }
    if (use_journal) {
      for (std::size_t i = skip; i < scan.records.size(); ++i)
        pending.push_back(parse_journal_record(scan.records[i]));
      journal_base = scan.base;
      journal_records = scan.records.size();
      journal_valid_bytes = scan.valid_bytes;
      replaying = !pending.empty();
      if (!replaying) writer.open_append(cfg.journal_path, scan.valid_bytes);
    } else {
      writer.open_fresh(cfg.journal_path, digest, st.ordinal);
      journal_base = st.ordinal;
      journal_records = 0;
    }
  } else if (journaling) {
    // Fresh run: a stale snapshot from an earlier run must not be offered
    // to a later --recover against the new journal.
    std::remove(snap_path.c_str());
    writer.open_fresh(cfg.journal_path, digest, 0);
  }

  // -- telemetry --------------------------------------------------------
  //
  // The metrics timeline is sampled every `sample_every` decisions and
  // framed like the journal. On --recover the replay regenerates the same
  // sample stream; samples that survive on disk are byte-verified instead
  // of rewritten, and appends resume past them — so a crash + --recover
  // run reproduces the uninterrupted timeline bit for bit.

  const bool timeline_on = !cfg.timeline_path.empty() && cfg.sample_every > 0;
  JournalWriter tl_writer;
  SpanRing ring(cfg.span_ring);
  std::vector<std::string> tl_raw;        ///< surviving samples to verify
  std::vector<std::uint64_t> tl_end;      ///< file offset after sample i
  const std::string tl_header =
      timeline_on ? timeline_header_payload(digest, cfg.sample_every)
                  : std::string();
  if (timeline_on) {
    bool fresh = true;
    if (cfg.recover) {
      TimelineScan tls = scan_timeline(cfg.timeline_path);
      for (const auto& w : tls.warnings)
        result.warnings.push_back("recover: timeline '" + cfg.timeline_path +
                                  "': " + w);
      if (tls.exists && tls.header_ok && tls.config_digest == digest &&
          tls.every == cfg.sample_every) {
        if (tls.torn) {
          result.warnings.push_back(
              "recover: timeline '" + cfg.timeline_path +
              "' has a torn tail — truncated to the last valid sample (" +
              std::to_string(tls.valid_bytes) + " bytes)");
          // Physically drop the torn bytes now: an uninterrupted run never
          // has them, and the replay may not append anything past them.
          tl_writer.open_append(cfg.timeline_path, tls.valid_bytes);
        }
        std::uint64_t off = 12 + tl_header.size();
        tl_raw = std::move(tls.raw);
        for (const auto& r : tl_raw) {
          off += 12 + r.size();
          tl_end.push_back(off);
        }
        fresh = false;
      } else if (tls.exists) {
        result.warnings.push_back(
            "recover: timeline '" + cfg.timeline_path +
            "' does not match this configuration — starting a fresh "
            "timeline (earlier samples cannot be reproduced)");
      }
    }
    if (fresh) tl_writer.open_with_header(cfg.timeline_path, tl_header);
  }

  auto dump_ring = [&]() {
    if (journaling && cfg.span_ring > 0)
      write_span_dump(cfg.journal_path + ".spans", ring);
  };

  /// Everything a sample or a stats snapshot shows, read off the live
  /// state. Virtual-time quantities only — deterministic by construction.
  auto build_sample = [&](std::int64_t vt_ns) {
    MetricsSample ms;
    ms.served = decisions_of(st.stats);
    ms.vt_ns = vt_ns;
    ms.queue_depth = st.queue.size();
    ms.retry_depth = st.retry.size();
    ms.est_ns_per_task = st.est_ns_per_task;
    ms.arrivals = st.stats.arrivals;
    ms.admitted = st.stats.admitted;
    ms.rejected = st.stats.rejected;
    ms.probe_rejected = st.stats.probe_rejected;
    ms.deferred = st.stats.deferred;
    ms.timed_out = st.stats.timed_out;
    ms.shed = st.stats.shed;
    ms.downgrades = st.stats.downgrades;
    ms.backpressure = st.stats.backpressure;
    ms.commits = st.commits;
    ms.dbf_evals = st.stats.dbf_evals;
    ms.budget_evals = st.stats.budget_evals;
    ms.admission_tests = st.stats.admission_tests;
    ms.lat_admitted = st.lat_admitted;
    ms.lat_rejected = st.lat_rejected;
    ms.lat_deferred = st.lat_deferred;
    ms.lat_shed = st.lat_shed;
    return ms;
  };

  auto take_sample = [&](std::int64_t vt_ns) {
    const std::uint64_t d = decisions_of(st.stats);
    MetricsSample ms = build_sample(vt_ns);
    ms.index = d / cfg.sample_every - 1;
    const std::string payload = serialize(ms);
    // Recovery resumes from a snapshot, so the first regenerated sample can
    // land mid-file: match by sample index, not file position. Samples
    // before the resume point are trusted as-is — the scan already proved
    // them checksummed, index-sequential, and written under this config
    // digest, and every counter is cumulative so none of them feeds the
    // regenerated tail.
    const auto idx = static_cast<std::size_t>(ms.index);
    if (idx < tl_raw.size()) {
      if (payload == tl_raw[idx]) return;  // already durable; nothing to write
      result.warnings.push_back(
          "recover: timeline sample " + std::to_string(ms.index) +
          " diverges from the recorded run — rewriting from that sample");
      const std::uint64_t keep =
          idx == 0 ? 12 + tl_header.size() : tl_end[idx - 1];
      tl_writer.open_append(cfg.timeline_path, keep);
      tl_raw.resize(idx);
      tl_end.resize(idx);
      tl_writer.append(payload);
      return;
    }
    if (!tl_writer.is_open())
      tl_writer.open_append(cfg.timeline_path,
                            tl_end.empty() ? 12 + tl_header.size()
                                           : tl_end.back());
    tl_writer.append(payload);
  };

  // -- helpers bound to the local state --------------------------------

  auto update_est = [&](std::int64_t cost_ns, std::uint64_t tasks) {
    const std::int64_t per =
        cost_ns / std::max<std::int64_t>(1, static_cast<std::int64_t>(tasks));
    st.est_ns_per_task =
        std::max<std::int64_t>(1, (3 * st.est_ns_per_task + per) / 4);
  };

  auto bump_outcome = [&](Outcome o) {
    switch (o) {
      case Outcome::kAdmitted: ++st.stats.admitted; break;
      case Outcome::kRejected: ++st.stats.rejected; break;
      case Outcome::kProbeRejected: ++st.stats.probe_rejected; break;
      case Outcome::kTimedOut: ++st.stats.timed_out; break;
      case Outcome::kShed: ++st.stats.shed; break;
      case Outcome::kRemoved: ++st.stats.removed; break;
      case Outcome::kNotPresent: ++st.stats.not_present; break;
      case Outcome::kResized: ++st.stats.resized; break;
      case Outcome::kResizeRejected: ++st.stats.resize_rejected; break;
      case Outcome::kDeferred: break;  // non-terminal, counted separately
    }
  };

  auto write_snapshot_and_rotate = [&]() {
    ++snapshot_writes;
    ++st.ordinal;
    const std::string body =
        snapshot_text(st, digest, journal_base, journal_records);
    const std::string text =
        body + "fnv=" + scenario::text_digest(body) + "\n";
    const std::string tmp = snap_path + ".tmp";
    if (cfg.crash.point == CrashPoint::kMidSnapshot &&
        snapshot_writes == cfg.crash.at) {
      write_file_durable(tmp, text.substr(0, text.size() / 2));
      dump_ring();
      std::_Exit(137);
    }
    write_file_durable(tmp, text);
    if (std::rename(tmp.c_str(), snap_path.c_str()) != 0)
      throw util::Error("cannot rename snapshot '" + tmp + "' to '" +
                        snap_path + "': " + std::strerror(errno));
    writer.open_fresh(cfg.journal_path, digest, st.ordinal);
    journal_base = st.ordinal;
    journal_records = 0;
  };

  /// The per-outcome-class latency histogram a terminal outcome feeds.
  auto hist_for = [&](Outcome o) -> util::LogHistogram& {
    switch (o) {
      case Outcome::kAdmitted:
      case Outcome::kRemoved:
      case Outcome::kResized:
        return st.lat_admitted;
      case Outcome::kShed:
        return st.lat_shed;
      case Outcome::kDeferred:
        return st.lat_deferred;
      default:
        return st.lat_rejected;
    }
  };

  /// The single choke point every decision passes through: verify (replay)
  /// or append (live) the record — flipping to live mode when the replay
  /// cursor reaches the end of the journal — then run the telemetry tail:
  /// fold the record's allocator-effort deltas, push the request span
  /// (only once the record is durable, so the ring always mirrors the
  /// journal tail), take a timeline sample on cadence, and render stats
  /// snapshots on cadence or SIGUSR1. Callers bump the outcome counters
  /// before calling, so decisions_of already counts this record.
  auto commit_record = [&](const JournalRecord& rec, util::Time queued,
                           util::Time dequeued, std::int64_t wall_ns) {
    st.stats.dbf_evals += rec.dbf_evals;
    st.stats.budget_evals += rec.budget_evals;
    st.stats.admission_tests += rec.admission_tests;

    bool appended = false;
    if (journaling) {
      if (replaying) {
        const JournalRecord& exp = pending[cursor];
        VC2M_CHECK_MSG(exp.seq == rec.seq && exp.attempt == rec.attempt &&
                           exp.kind == rec.kind &&
                           exp.outcome == rec.outcome &&
                           exp.cost_ns == rec.cost_ns,
                       "journal replay diverged at record "
                           << cursor << ": journal says seq=" << exp.seq
                           << " outcome=" << to_string(exp.outcome)
                           << ", recomputation says seq=" << rec.seq
                           << " outcome=" << to_string(rec.outcome));
        ++cursor;
        if (cursor == pending.size()) {
          writer.open_append(cfg.journal_path, journal_valid_bytes);
          replaying = false;
        }
      } else {
        if (cfg.crash.point == CrashPoint::kBeforeAppend &&
            rec.seq == cfg.crash.at) {
          // The current span is deliberately not in the dump: its record
          // never became durable, and the ring must match the journal tail.
          dump_ring();
          std::_Exit(137);
        }
        writer.append(serialize(rec));
        ++journal_records;
        appended = true;
      }
    }

    obs::RequestSpan span;
    span.seq = rec.seq;
    span.attempt = rec.attempt;
    span.kind = to_string(rec.kind);
    span.outcome = to_string(rec.outcome);
    span.vm = rec.vm;
    span.queued_ns = queued.raw_ns();
    span.dequeued_ns = dequeued.raw_ns();
    span.solved_ns = dequeued.raw_ns() + rec.cost_ns;
    span.cost_ns = rec.cost_ns;
    span.latency_ns = rec.latency_ns;
    span.wall_ns = wall_ns;
    ring.push(span);
    if (cfg.collect_spans) result.spans.push_back(span);

    if (appended && cfg.crash.point == CrashPoint::kAfterAppend &&
        rec.seq == cfg.crash.at) {
      dump_ring();
      std::_Exit(137);
    }

    const std::uint64_t d = decisions_of(st.stats);
    if (timeline_on && d % cfg.sample_every == 0) take_sample(span.solved_ns);
    const bool poked =
        cfg.stats_signal != nullptr &&
        cfg.stats_signal->exchange(false, std::memory_order_relaxed);
    if (poked || (cfg.stats_every && d % cfg.stats_every == 0))
      (cfg.stats_out ? *cfg.stats_out : std::cerr)
          << render_stats_snapshot(build_sample(span.solved_ns))
          << std::flush;
  };

  auto push_retry = [&](QueueEntry e) {
    st.retry.push_back(e);
    std::push_heap(st.retry.begin(), st.retry.end(), retry_after);
  };

  auto enqueue = [&](QueueEntry e, bool is_retry) {
    if (is_retry) ++st.stats.retries;
    else ++st.stats.arrivals;
    if (st.queue.size() >= cfg.queue_cap) {
      const std::size_t v = shed_victim(cfg.shed, st.queue, e, trace);
      const QueueEntry victim = v == st.queue.size() ? e : st.queue[v];
      JournalRecord rec;
      rec.seq = victim.seq;
      rec.attempt = victim.attempt;
      rec.kind = trace[victim.seq].kind;
      rec.outcome = Outcome::kShed;
      rec.vm = trace[victim.seq].vm;
      rec.latency_ns = (e.ready_at - trace[victim.seq].at).raw_ns();
      st.lat_shed.add(static_cast<double>(rec.latency_ns) / 1000.0);
      bump_outcome(Outcome::kShed);
      // Shed spans never reach the server: queued at the victim's ready
      // time, cut at the moment the overflowing arrival displaced it.
      commit_record(rec, victim.ready_at, e.ready_at, /*wall_ns=*/0);
      if (v != st.queue.size()) {
        st.queue.erase(st.queue.begin() + static_cast<std::ptrdiff_t>(v));
        st.queue.push_back(e);
      }
    } else {
      st.queue.push_back(e);
    }
    if (st.queue.size() * 4 >= cfg.queue_cap * 3) ++st.stats.backpressure;
    st.stats.queue_max_depth =
        std::max<std::uint64_t>(st.stats.queue_max_depth, st.queue.size());
  };

  auto serve = [&](const QueueEntry& entry) {
    const auto wall_start = std::chrono::steady_clock::now();
    const ServeRequest& req = trace[entry.seq];
    const util::Time ts = util::max(st.busy_until, entry.ready_at);
    JournalRecord rec;
    rec.seq = entry.seq;
    rec.attempt = entry.attempt;
    rec.kind = req.kind;
    rec.vm = req.vm;

    const JournalRecord* peek =
        replaying && cursor < pending.size() ? &pending[cursor] : nullptr;
    if (peek)
      VC2M_CHECK_MSG(peek->seq == entry.seq && peek->attempt == entry.attempt &&
                         peek->kind == req.kind,
                     "journal replay diverged: journal record "
                         << cursor << " is seq=" << peek->seq
                         << ", the request stream produced seq=" << entry.seq);
    // During replay, decisions that did not change the admitted state are
    // folded straight from the journal — the whole point of the journal is
    // that recovery skips re-running the solver for them. State-mutating
    // decisions are recomputed (the journal carries no state deltas) and
    // verified against the record.
    if (peek && !mutating(peek->outcome)) {
      rec.outcome = peek->outcome;
      rec.cost_ns = peek->cost_ns;
      rec.tasks = peek->tasks;
      rec.events = peek->events;
      rec.dbf_evals = peek->dbf_evals;
      rec.budget_evals = peek->budget_evals;
      rec.admission_tests = peek->admission_tests;
      st.stats.decision_events += rec.events;
      if (rec.outcome == Outcome::kRejected ||
          rec.outcome == Outcome::kResizeRejected)
        update_est(rec.cost_ns, rec.tasks);
      if (rec.outcome == Outcome::kProbeRejected ||
          rec.outcome == Outcome::kDeferred ||
          rec.outcome == Outcome::kTimedOut)
        ++st.stats.downgrades;  // these outcomes only exist past a downgrade
    } else {
      util::AllocCounterScope counters;
      obs::DecisionLog local;
      {
        obs::DecisionLogScope scope(local);
        if (req.kind == RequestKind::kRemove) {
          if (!vm_present(st.adm, req.vm)) {
            rec.outcome = Outcome::kNotPresent;
            rec.cost_ns = 2'000;
          } else {
            const std::size_t before = st.adm.vcpus.size();
            st.adm = core::remove_vm(st.adm, req.vm);
            rec.outcome = Outcome::kRemoved;
            rec.cost_ns =
                8'000 + 2'000 * static_cast<std::int64_t>(
                                    before - st.adm.vcpus.size());
          }
        } else if (req.kind == RequestKind::kResize &&
                   !vm_present(st.adm, req.vm)) {
          rec.outcome = Outcome::kNotPresent;
          rec.cost_ns = 2'000;
        } else {
          const model::Taskset tasks =
              materialize_taskset(req, cfg.platform.grid);
          rec.tasks = tasks.size();
          bool downgrade = false;
          if (cfg.deadline > util::Time::zero()) {
            const util::Time projected =
                (ts - entry.ready_at) +
                util::Time::ns(st.est_ns_per_task *
                               static_cast<std::int64_t>(tasks.size()));
            downgrade = projected > cfg.deadline;
          }
          if (downgrade) {
            ++st.stats.downgrades;
            rec.cost_ns =
                4'000 +
                200 * static_cast<std::int64_t>(st.adm.vcpus.size()) +
                100 * static_cast<std::int64_t>(tasks.size());
            const double demand = model::total_reference_utilization(tasks);
            if (demand > headroom_upper_bound(st.adm, cfg.platform))
              rec.outcome = Outcome::kProbeRejected;
            else if (entry.attempt < cfg.max_retries)
              rec.outcome = Outcome::kDeferred;
            else
              rec.outcome = Outcome::kTimedOut;
          } else {
            util::Rng rng(mix_seed(cfg.seed, entry.seq, entry.attempt));
            core::VmAllocConfig vmc = cfg.vm_cfg;
            vmc.request_id = static_cast<std::int64_t>(entry.seq);
            core::AdmitResult r =
                req.kind == RequestKind::kAdmit
                    ? core::admit_vm(st.adm, tasks, req.vm, cfg.platform,
                                     vmc, rng)
                    : core::resize_vm(st.adm, tasks, req.vm, cfg.platform,
                                      vmc, rng);
            if (r.admitted) {
              st.adm = std::move(r.state);
              rec.outcome = req.kind == RequestKind::kAdmit
                                ? Outcome::kAdmitted
                                : Outcome::kResized;
            } else {
              rec.outcome = req.kind == RequestKind::kAdmit
                                ? Outcome::kRejected
                                : Outcome::kResizeRejected;
            }
            rec.cost_ns = solve_cost(counters.counters());
            update_est(rec.cost_ns, rec.tasks);
          }
        }
      }
      rec.events = local.events().size();
      st.stats.decision_events += rec.events;
      st.stats.decision_dropped += local.dropped();
      const util::AllocCounters ac = counters.counters();
      rec.dbf_evals = ac.dbf_evaluations;
      rec.budget_evals = ac.budget_evaluations;
      rec.admission_tests = ac.admission_tests;
    }

    st.busy_until = ts + util::Time::ns(rec.cost_ns);
    if (rec.outcome == Outcome::kDeferred) {
      ++st.stats.deferred;
      // A deferral's wait so far (arrival → defer decision) is observable
      // latency too; rec.latency_ns stays 0 because the attempt is not
      // terminal.
      st.lat_deferred.add(
          static_cast<double>((st.busy_until - req.at).raw_ns()) / 1000.0);
      push_retry({entry.seq, entry.attempt + 1,
                  st.busy_until + cfg.backoff * (std::int64_t{1}
                                                 << entry.attempt)});
    } else {
      rec.latency_ns = (st.busy_until - req.at).raw_ns();
      hist_for(rec.outcome).add(static_cast<double>(rec.latency_ns) / 1000.0);
      bump_outcome(rec.outcome);
    }
    const std::int64_t wall_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - wall_start)
            .count();
    commit_record(rec, entry.ready_at, ts, wall_ns);
    if (mutating(rec.outcome)) {
      ++st.commits;
      if (!replaying && journaling && cfg.snapshot_every &&
          st.commits % cfg.snapshot_every == 0)
        write_snapshot_and_rotate();
    }
  };

  // -- the event loop --------------------------------------------------

  std::uint64_t served = 0;
  bool interrupted = false;
  while (true) {
    if ((cfg.cancel && cfg.cancel->load(std::memory_order_relaxed)) ||
        (cfg.stop_after && served >= cfg.stop_after)) {
      interrupted = true;
      break;
    }
    const util::Time ta = st.trace_next < trace.size()
                              ? trace[st.trace_next].at
                              : util::Time::max();
    const util::Time tr =
        st.retry.empty() ? util::Time::max() : st.retry.front().ready_at;
    const util::Time tnext = util::min(ta, tr);
    auto enqueue_next = [&]() {
      if (ta <= tr) {  // arrival wins ties
        const ServeRequest& r = trace[st.trace_next];
        ++st.trace_next;
        enqueue({r.seq, 0, r.at}, /*is_retry=*/false);
      } else {
        std::pop_heap(st.retry.begin(), st.retry.end(), retry_after);
        const QueueEntry e = st.retry.back();
        st.retry.pop_back();
        enqueue(e, /*is_retry=*/true);
      }
    };
    if (!st.queue.empty()) {
      const util::Time ts = util::max(st.busy_until, st.queue.front().ready_at);
      if (tnext != util::Time::max() && tnext <= ts) {
        enqueue_next();
      } else {
        const QueueEntry entry = st.queue.front();
        st.queue.erase(st.queue.begin());
        serve(entry);
        ++served;
      }
    } else {
      if (tnext == util::Time::max()) break;
      enqueue_next();
    }
  }
  if (interrupted) dump_ring();
  writer.close();
  tl_writer.close();

  // -- report ----------------------------------------------------------

  ServeReport rep;
  rep.git_rev = obs::build_git_rev();
  rep.trace =
      cfg.trace.spec.empty() ? to_string(cfg.trace.pattern) : cfg.trace.spec;
  rep.platform = cfg.platform_name;
  rep.seed = cfg.seed;
  rep.deadline_us = cfg.deadline.raw_ns() / 1000;
  rep.shed_policy = to_string(cfg.shed);
  rep.queue_cap = cfg.queue_cap;
  rep.max_retries = cfg.max_retries;
  rep.backoff_us = cfg.backoff.raw_ns() / 1000;
  rep.snapshot_every = cfg.snapshot_every;
  rep.requests = trace.size();
  const Stats& s = st.stats;
  rep.arrivals = s.arrivals;
  rep.admitted = s.admitted;
  rep.rejected = s.rejected;
  rep.probe_rejected = s.probe_rejected;
  rep.removed = s.removed;
  rep.resized = s.resized;
  rep.resize_rejected = s.resize_rejected;
  rep.not_present = s.not_present;
  rep.deferred = s.deferred;
  rep.retries = s.retries;
  rep.shed = s.shed;
  rep.timed_out = s.timed_out;
  rep.downgrades = s.downgrades;
  rep.commits = st.commits;
  // Snapshot count is derived from the commit count, not from how many
  // writes this process performed: a recovered run restores mid-stream and
  // must still report what the uninterrupted run would have.
  rep.snapshots = journaling && cfg.snapshot_every
                      ? st.commits / cfg.snapshot_every
                      : 0;
  rep.queue_max_depth = s.queue_max_depth;
  rep.backpressure = s.backpressure;
  rep.decision_events = s.decision_events;
  rep.decision_dropped = s.decision_dropped;
  if (!st.lat_admitted.empty())
    rep.latency_admitted_us = obs::HistogramSummary::of(st.lat_admitted);
  if (!st.lat_rejected.empty())
    rep.latency_rejected_us = obs::HistogramSummary::of(st.lat_rejected);
  if (!st.lat_deferred.empty())
    rep.latency_deferred_us = obs::HistogramSummary::of(st.lat_deferred);
  if (!st.lat_shed.empty())
    rep.latency_shed_us = obs::HistogramSummary::of(st.lat_shed);
  std::set<int> vms;
  for (const auto& v : st.adm.vcpus) vms.insert(v.vm);
  rep.vms = vms.size();
  rep.vcpus = st.adm.vcpus.size();
  rep.cores_used = st.adm.mapping.cores_used;
  core::SolveResult sr;
  sr.schedulable = st.adm.mapping.schedulable;
  sr.vcpus = st.adm.vcpus;
  sr.mapping = st.adm.mapping;
  rep.digest = scenario::solve_digest(sr);
  rep.interrupted = interrupted;
  result.report = std::move(rep);
  result.interrupted = interrupted;
  return result;
}

}  // namespace vc2m::service
