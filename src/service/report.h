// The versioned serve-report artifact ("vc2m-serve-report/1"): the
// machine-readable outcome of one `vc2m serve` run, written through the
// same strict obs/json layer as the bench/explain/scenario reports.
//
// Every field is deterministic — counters fold in processing order, the
// latency distribution is a virtual-time LogHistogram, and the final-state
// digest reuses the frozen scenario digest format — so a report is
// byte-identical for a fixed (trace, seed, config) whether the run was
// uninterrupted or crash-killed and recovered (scripts/check.sh diffs the
// two byte for byte). Wall-clock timing deliberately stays out.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/bench_report.h"

namespace vc2m::service {

inline constexpr const char* kServeReportSchema = "vc2m-serve-report/1";

struct ServeReport {
  std::string schema = kServeReportSchema;
  std::string git_rev;
  std::string trace;      ///< the trace spec string
  std::string platform;   ///< "A" | "B" | "C"
  std::uint64_t seed = 0;
  // Config echo (what the run actually used).
  std::int64_t deadline_us = 0;  ///< 0 = no per-request deadline
  std::string shed_policy;
  std::uint64_t queue_cap = 0;
  std::uint64_t max_retries = 0;
  std::int64_t backoff_us = 0;
  std::uint64_t snapshot_every = 0;
  // Totals (terminal outcomes partition the processed requests).
  std::uint64_t requests = 0;        ///< trace length
  std::uint64_t arrivals = 0;        ///< arrivals enqueued before the end
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;        ///< full-solver capacity rejections
  std::uint64_t probe_rejected = 0;  ///< headroom-probe rejections
  std::uint64_t removed = 0;
  std::uint64_t resized = 0;
  std::uint64_t resize_rejected = 0;
  std::uint64_t not_present = 0;     ///< remove/resize of an absent VM
  std::uint64_t deferred = 0;        ///< deferral events (non-terminal)
  std::uint64_t retries = 0;         ///< re-enqueued deferred requests
  std::uint64_t shed = 0;            ///< dropped by the overload policy
  std::uint64_t timed_out = 0;       ///< retry budget exhausted
  std::uint64_t downgrades = 0;      ///< full solve -> headroom probe
  std::uint64_t commits = 0;
  std::uint64_t snapshots = 0;
  // Queue behaviour.
  std::uint64_t queue_max_depth = 0;
  std::uint64_t backpressure = 0;    ///< enqueues at >= 3/4 capacity
  // Decision-log provenance volume (events emitted per request, summed).
  std::uint64_t decision_events = 0;
  std::uint64_t decision_dropped = 0;
  /// Virtual end-to-end latency (arrival -> decision), µs, split by
  /// outcome class: admitted = {admitted, removed, resized}; rejected =
  /// {rejected, probe_rejected, resize_rejected, not_present, timed_out};
  /// deferred = arrival -> defer decision; shed = arrival -> shed.
  obs::HistogramSummary latency_admitted_us;
  obs::HistogramSummary latency_rejected_us;
  obs::HistogramSummary latency_deferred_us;
  obs::HistogramSummary latency_shed_us;
  // Final admitted state.
  std::uint64_t vms = 0;
  std::uint64_t vcpus = 0;
  std::uint64_t cores_used = 0;
  std::string digest;  ///< scenario/digest.h solve digest of the state
  /// True when the run stopped early on SIGINT/SIGTERM; such a partial
  /// report is still schema-valid and internally consistent.
  bool interrupted = false;
};

void write_serve_report(std::ostream& os, const ServeReport& r);
void write_serve_report_file(const std::string& path, const ServeReport& r);

/// Strict reader (throws util::Error on malformed JSON, a bad schema, or
/// missing/ill-typed fields). Unknown top-level fields — a newer writer's
/// additions — are surfaced through `notes` (when given) instead of being
/// rejected, so old readers keep working across forward-compatible schema
/// growth.
ServeReport read_serve_report(std::istream& is,
                              const std::string& what = "serve report",
                              std::vector<std::string>* notes = nullptr);
ServeReport read_serve_report_file(const std::string& path,
                                   std::vector<std::string>* notes = nullptr);

}  // namespace vc2m::service
