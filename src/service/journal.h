// Write-ahead journal for the admission-control service
// ("vc2m-admission-journal/1").
//
// The journal is an append-only sequence of framed records:
//
//   [u32 payload length (LE)] [u64 FNV-1a of the payload (LE)] [payload]
//
// The first record is a header naming the schema, a digest of the service
// configuration, and the snapshot ordinal the journal continues from
// ("base"). Every append is fsync()'d before the service proceeds, so a
// decision the caller observed is durable.
//
// The scanner is deliberately tolerant: a torn or truncated tail (the
// crash window of an in-flight append) yields the valid prefix plus a
// `torn` flag — recovery truncates the file back to the last valid record
// with a warning and continues. Corruption is detected by the per-record
// checksum; a mangled byte anywhere in a frame invalidates that frame and
// everything after it. Nothing in this layer ever crashes on bad input.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vc2m::service {

inline constexpr const char* kJournalSchema = "vc2m-admission-journal/1";

/// Append-side handle. All writes go through a POSIX fd so each append can
/// be fsync()'d; throws util::Error on any I/O failure.
///
/// The framing is schema-agnostic: `open_with_header` writes any header
/// payload, so other framed artifacts (the metrics timeline) share the
/// writer and the tolerant scanner below.
class JournalWriter {
 public:
  JournalWriter() = default;
  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Create/truncate `path` and write the admission-journal header record.
  void open_fresh(const std::string& path, const std::string& config_digest,
                  std::uint64_t base);

  /// Create/truncate `path` and write `header_payload` as the first frame.
  void open_with_header(const std::string& path,
                        const std::string& header_payload);

  /// Open an existing journal for appends after `valid_bytes` (the scan
  /// result); the file is truncated to that length first, which is how a
  /// torn tail is dropped.
  void open_append(const std::string& path, std::uint64_t valid_bytes);

  /// Frame, append, and fsync one record payload.
  void append(const std::string& payload);

  bool is_open() const { return fd_ >= 0; }
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Schema-agnostic scan of any framed file: every checksum-valid frame's
/// payload in order (the first one is the header, uninterpreted), the byte
/// length of the valid prefix, and whether trailing bytes were dropped. The
/// scanner never throws for malformed content.
struct FrameScan {
  bool exists = false;
  std::vector<std::string> payloads;  ///< valid frame payloads, in order
  std::uint64_t valid_bytes = 0;      ///< prefix length covering them
  bool torn = false;                  ///< trailing bytes past the prefix
};

FrameScan scan_frames(const std::string& path);

/// Result of scanning a journal file. `header_ok` is false when the file
/// is missing, empty, or its first frame is invalid — the scanner never
/// throws for malformed content (only for I/O errors opening a file that
/// exists but cannot be read).
struct JournalScan {
  bool exists = false;
  bool header_ok = false;
  std::string config_digest;
  std::uint64_t base = 0;             ///< snapshot ordinal this continues
  std::vector<std::string> records;   ///< valid record payloads, in order
  std::uint64_t valid_bytes = 0;      ///< prefix length covering them
  bool torn = false;                  ///< trailing bytes past the prefix
};

JournalScan scan_journal(const std::string& path);

/// The header payload format (shared by writer and scanner):
/// "vc2m-admission-journal/1|config=<hex16>|base=<N>".
std::string journal_header_payload(const std::string& config_digest,
                                   std::uint64_t base);

/// Create/truncate `path`, write `bytes`, and fsync before closing — the
/// durable half of the snapshot's write-tmp-then-rename protocol. Throws
/// util::Error on any I/O failure.
void write_file_durable(const std::string& path, const std::string& bytes);

}  // namespace vc2m::service
