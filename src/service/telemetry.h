// Runtime telemetry for the admission-control service
// ("vc2m-metrics-timeline/1") — docs/telemetry.md.
//
// The timeline is a framed, checksummed sequence of metrics samples using
// the journal framing (service/journal.h): a header naming the schema, the
// config digest, and the sampling cadence, then one frame per sample. A
// sample is taken every `every` *decisions* — journal-record events in
// virtual time — so the file is a pure function of (trace, seed, config,
// every): bit-identical at any --jobs/--inner-jobs and reproduced exactly
// by a crash + --recover run. Reopen is torn-tail tolerant like the
// journal: a partial trailing frame (or a frame that fails the strict
// sample parse) truncates back to the last good sample with a warning,
// never a crash.
//
// The span ring is the post-mortem half: a bounded buffer of the last K
// request spans, dumped as "vc2m-span-dump/1" text next to the journal
// when the service crashes or is interrupted. Because a span is pushed
// only after its journal record is durable, the dump's tail always
// matches the journal's tail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/request_span.h"
#include "util/log_histogram.h"

namespace vc2m::service {

inline constexpr const char* kTimelineSchema = "vc2m-metrics-timeline/1";
inline constexpr const char* kSpanDumpSchema = "vc2m-span-dump/1";

/// One timeline sample: the service's externally observable state after
/// `served` decisions. Every counter is cumulative — including the
/// AllocCounters trio — so any sample stands alone and recovery can resume
/// sampling from a snapshot without reconstructing a delta baseline.
/// Display layers (vc2m timeline --csv) derive deltas when they want them.
struct MetricsSample {
  std::uint64_t index = 0;   ///< 0-based sample number
  std::uint64_t served = 0;  ///< decisions (journal records) so far
  std::int64_t vt_ns = 0;    ///< virtual time of the last decision
  std::uint64_t queue_depth = 0;
  std::uint64_t retry_depth = 0;
  std::int64_t est_ns_per_task = 0;  ///< EWMA solver-cost estimate
  std::uint64_t arrivals = 0;
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t probe_rejected = 0;
  std::uint64_t deferred = 0;
  std::uint64_t timed_out = 0;
  std::uint64_t shed = 0;
  std::uint64_t downgrades = 0;
  std::uint64_t backpressure = 0;
  std::uint64_t commits = 0;
  std::uint64_t dbf_evals = 0;        ///< cumulative dbf_evaluations
  std::uint64_t budget_evals = 0;     ///< cumulative budget_evaluations
  std::uint64_t admission_tests = 0;  ///< cumulative admission_tests
  /// Per-outcome-class latency histograms (µs), cumulative. Classes:
  /// admitted = {admitted, removed, resized}; rejected = {rejected,
  /// probe_rejected, resize_rejected, not_present, timed_out}; deferred =
  /// arrival → defer decision; shed = arrival → shed decision.
  util::LogHistogram lat_admitted, lat_rejected, lat_deferred, lat_shed;
};

/// Exact text round-trip of a histogram's internal state:
/// "<count> <nonpositive> <sum_bits> <min_bits> <max_bits> <npairs>
/// i:c..." with doubles as 16-hex-digit bit patterns. Shared by the
/// timeline samples and the service snapshot.
std::string serialize_histogram(const util::LogHistogram& h);
/// Strict parse; throws util::Error on any malformed field.
util::LogHistogram parse_histogram(const std::string& text);

std::string serialize(const MetricsSample& s);
/// Strict parse; throws util::Error on any malformed field.
MetricsSample parse_metrics_sample(const std::string& payload);

/// "vc2m-metrics-timeline/1|config=<hex16>|every=<N>".
std::string timeline_header_payload(const std::string& config_digest,
                                    std::uint64_t every);

/// Tolerant timeline scan. `header_ok` is false when the file is missing,
/// empty, or its first frame is not a timeline header. A frame whose
/// checksum is valid but whose payload fails the strict sample parse ends
/// the valid prefix (with a warning), exactly like a torn tail — the
/// scanner never throws for malformed content.
struct TimelineScan {
  bool exists = false;
  bool header_ok = false;
  std::string config_digest;
  std::uint64_t every = 0;
  std::vector<MetricsSample> samples;
  std::vector<std::string> raw;   ///< serialized payloads, one per sample
  std::uint64_t valid_bytes = 0;  ///< prefix covering header + samples
  bool torn = false;              ///< trailing bytes past the prefix
  std::vector<std::string> warnings;
};

TimelineScan scan_timeline(const std::string& path);

/// Bounded ring of the most recent request spans (oldest evicted first).
/// capacity 0 disables it (push is a no-op).
class SpanRing {
 public:
  explicit SpanRing(std::size_t capacity) : cap_(capacity) {}

  void push(const obs::RequestSpan& s) {
    if (cap_ == 0) return;
    if (buf_.size() < cap_) {
      buf_.push_back(s);
    } else {
      buf_[next_] = s;
      next_ = (next_ + 1) % cap_;
    }
  }

  std::size_t size() const { return buf_.size(); }

  /// Spans oldest → newest.
  std::vector<obs::RequestSpan> snapshot() const {
    std::vector<obs::RequestSpan> out;
    out.reserve(buf_.size());
    for (std::size_t i = 0; i < buf_.size(); ++i)
      out.push_back(buf_[(next_ + i) % buf_.size()]);
    return out;
  }

 private:
  std::size_t cap_ = 0;
  std::vector<obs::RequestSpan> buf_;
  std::size_t next_ = 0;  ///< eviction cursor once full
};

/// Durable ring dump: "vc2m-span-dump/1 <count>" then one serialized span
/// per line. Written with write_file_durable; throws on I/O failure.
void write_span_dump(const std::string& path, const SpanRing& ring);
/// Strict re-read; throws util::Error on malformed content.
std::vector<obs::RequestSpan> read_span_dump(const std::string& path);

/// Deterministic multi-line stats snapshot (the --stats-every / SIGUSR1
/// rendering): virtual-time quantities only, identical for the same
/// sample on every machine.
std::string render_stats_snapshot(const MetricsSample& s);

}  // namespace vc2m::service
