#include "service/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "util/error.h"

namespace vc2m::service {

namespace {

// Frames larger than this are treated as corruption: no legitimate record
// payload comes anywhere close, and an honest bound stops a mangled length
// field from making the scanner "wait" for gigabytes of payload.
constexpr std::uint32_t kMaxPayload = 1u << 20;

std::uint64_t fnv1a(const char* data, std::size_t n) {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001B3ull;
  }
  return h;
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t get_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

std::uint64_t get_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i)
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  return v;
}

void write_all(int fd, const std::string& path, const char* data,
               std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw util::Error("journal '" + path + "': write failed: " +
                        std::strerror(errno));
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

std::string journal_header_payload(const std::string& config_digest,
                                   std::uint64_t base) {
  std::ostringstream os;
  os << kJournalSchema << "|config=" << config_digest << "|base=" << base;
  return os.str();
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::open_fresh(const std::string& path,
                               const std::string& config_digest,
                               std::uint64_t base) {
  open_with_header(path, journal_header_payload(config_digest, base));
}

void JournalWriter::open_with_header(const std::string& path,
                                     const std::string& header_payload) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd_ < 0)
    throw util::Error("cannot open journal '" + path + "': " +
                      std::strerror(errno));
  path_ = path;
  append(header_payload);
}

void JournalWriter::open_append(const std::string& path,
                                std::uint64_t valid_bytes) {
  close();
  fd_ = ::open(path.c_str(), O_WRONLY, 0644);
  if (fd_ < 0)
    throw util::Error("cannot open journal '" + path + "': " +
                      std::strerror(errno));
  path_ = path;
  if (::ftruncate(fd_, static_cast<off_t>(valid_bytes)) != 0)
    throw util::Error("cannot truncate journal '" + path + "': " +
                      std::strerror(errno));
  if (::lseek(fd_, 0, SEEK_END) < 0)
    throw util::Error("cannot seek journal '" + path + "': " +
                      std::strerror(errno));
}

void JournalWriter::append(const std::string& payload) {
  VC2M_CHECK_MSG(fd_ >= 0, "journal append before open");
  VC2M_CHECK_MSG(payload.size() <= kMaxPayload, "journal payload too large");
  std::string frame;
  frame.reserve(12 + payload.size());
  put_u32(frame, static_cast<std::uint32_t>(payload.size()));
  put_u64(frame, fnv1a(payload.data(), payload.size()));
  frame += payload;
  write_all(fd_, path_, frame.data(), frame.size());
  if (::fsync(fd_) != 0)
    throw util::Error("journal '" + path_ + "': fsync failed: " +
                      std::strerror(errno));
}

void JournalWriter::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void write_file_durable(const std::string& path, const std::string& bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0)
    throw util::Error("cannot open '" + path + "': " + std::strerror(errno));
  try {
    write_all(fd, path, bytes.data(), bytes.size());
    if (::fsync(fd) != 0)
      throw util::Error("'" + path + "': fsync failed: " +
                        std::strerror(errno));
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
}

FrameScan scan_frames(const std::string& path) {
  FrameScan out;
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return out;  // missing file: exists stays false
  out.exists = true;
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string bytes = buf.str();

  std::size_t off = 0;
  while (off + 12 <= bytes.size()) {
    const std::uint32_t len = get_u32(bytes.data() + off);
    const std::uint64_t sum = get_u64(bytes.data() + off + 4);
    if (len > kMaxPayload || off + 12 + len > bytes.size()) break;
    if (fnv1a(bytes.data() + off + 12, len) != sum) break;
    out.payloads.push_back(bytes.substr(off + 12, len));
    off += 12 + len;
    out.valid_bytes = off;
  }
  out.torn = out.valid_bytes < bytes.size();
  return out;
}

JournalScan scan_journal(const std::string& path) {
  JournalScan out;
  FrameScan frames = scan_frames(path);
  out.exists = frames.exists;
  if (!frames.exists) return out;
  out.valid_bytes = frames.valid_bytes;
  out.torn = frames.torn;

  if (!frames.payloads.empty()) {
    // Header: "<schema>|config=<hex>|base=<N>".
    const std::string& payload = frames.payloads.front();
    const std::string schema_prefix = std::string(kJournalSchema) + "|";
    if (payload.rfind(schema_prefix, 0) == 0) {
      std::string rest = payload.substr(schema_prefix.size());
      const auto bar = rest.find('|');
      if (bar != std::string::npos && rest.rfind("config=", 0) == 0 &&
          rest.find("base=", bar + 1) == bar + 1) {
        const std::string base_str = rest.substr(bar + 6);
        char* end = nullptr;
        errno = 0;
        const unsigned long long base =
            std::strtoull(base_str.c_str(), &end, 10);
        if (!base_str.empty() && end == base_str.c_str() + base_str.size() &&
            errno == 0) {
          out.config_digest = rest.substr(7, bar - 7);
          out.base = base;
          out.header_ok = true;
        }
      }
    }
  }
  if (!out.header_ok) {
    // Without a valid header nothing after it is trustworthy.
    out.valid_bytes = 0;
    out.torn = !frames.payloads.empty() || frames.torn;
    return out;
  }
  out.records.assign(std::make_move_iterator(frames.payloads.begin() + 1),
                     std::make_move_iterator(frames.payloads.end()));
  return out;
}

}  // namespace vc2m::service
