#include "service/telemetry.h"

#include <bit>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "service/journal.h"
#include "util/error.h"

namespace vc2m::service {

namespace {

std::uint64_t parse_u64(const std::string& s, const char* what) {
  VC2M_CHECK_MSG(!s.empty() && s.find('-') == std::string::npos,
                 "telemetry: bad " << what << " '" << s << "'");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  VC2M_CHECK_MSG(end == s.c_str() + s.size() && errno == 0,
                 "telemetry: bad " << what << " '" << s << "'");
  return v;
}

std::int64_t parse_i64(const std::string& s, const char* what) {
  VC2M_CHECK_MSG(!s.empty(), "telemetry: bad " << what << " '" << s << "'");
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  VC2M_CHECK_MSG(end == s.c_str() + s.size() && errno == 0,
                 "telemetry: bad " << what << " '" << s << "'");
  return v;
}

/// Exact double round-trip as a 16-hex-digit bit pattern (mirrors the
/// service snapshot's encoding).
std::string double_bits(double d) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(std::bit_cast<std::uint64_t>(d)));
  return buf;
}

double bits_double(const std::string& s) {
  VC2M_CHECK_MSG(s.size() == 16, "telemetry: bad double bits '" << s << "'");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 16);
  VC2M_CHECK_MSG(end == s.c_str() + 16 && errno == 0,
                 "telemetry: bad double bits '" << s << "'");
  return std::bit_cast<double>(static_cast<std::uint64_t>(v));
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::string serialize_histogram(const util::LogHistogram& h) {
  const auto snap = h.snapshot();
  std::ostringstream os;
  os << snap.count << ' ' << snap.nonpositive << ' ' << double_bits(snap.sum)
     << ' ' << double_bits(snap.min) << ' ' << double_bits(snap.max) << ' '
     << snap.counts.size();
  for (const auto& [i, c] : snap.counts) os << ' ' << i << ':' << c;
  return os.str();
}

util::LogHistogram parse_histogram(const std::string& text) {
  const auto parts = split(text, ' ');
  VC2M_CHECK_MSG(parts.size() >= 6, "telemetry: truncated histogram");
  util::LogHistogram::Snapshot snap;
  snap.count = parse_u64(parts[0], "histogram count");
  snap.nonpositive = parse_u64(parts[1], "histogram nonpositive");
  snap.sum = bits_double(parts[2]);
  snap.min = bits_double(parts[3]);
  snap.max = bits_double(parts[4]);
  const std::uint64_t pairs = parse_u64(parts[5], "histogram pair count");
  VC2M_CHECK_MSG(parts.size() == 6 + pairs,
                 "telemetry: histogram pair count mismatch");
  for (std::uint64_t k = 0; k < pairs; ++k) {
    const std::string& cell = parts[6 + k];
    const auto colon = cell.find(':');
    VC2M_CHECK_MSG(colon != std::string::npos,
                   "telemetry: bad histogram bucket '" << cell << "'");
    snap.counts.emplace_back(
        parse_u64(cell.substr(0, colon), "histogram bucket index"),
        parse_u64(cell.substr(colon + 1), "histogram bucket count"));
  }
  return util::LogHistogram::from_snapshot(snap);
}

std::string serialize(const MetricsSample& s) {
  std::ostringstream os;
  os << "sample=" << s.index << "|served=" << s.served
     << "|vt_ns=" << s.vt_ns << "|queue=" << s.queue_depth
     << "|retry=" << s.retry_depth << "|est=" << s.est_ns_per_task
     << "|arrivals=" << s.arrivals << "|admitted=" << s.admitted
     << "|rejected=" << s.rejected << "|probe_rejected=" << s.probe_rejected
     << "|deferred=" << s.deferred << "|timed_out=" << s.timed_out
     << "|shed=" << s.shed << "|downgrades=" << s.downgrades
     << "|backpressure=" << s.backpressure << "|commits=" << s.commits
     << "|dbf=" << s.dbf_evals << "|budget=" << s.budget_evals
     << "|adm=" << s.admission_tests
     << "|lat_admitted=" << serialize_histogram(s.lat_admitted)
     << "|lat_rejected=" << serialize_histogram(s.lat_rejected)
     << "|lat_deferred=" << serialize_histogram(s.lat_deferred)
     << "|lat_shed=" << serialize_histogram(s.lat_shed);
  return os.str();
}

MetricsSample parse_metrics_sample(const std::string& payload) {
  const auto parts = split(payload, '|');
  VC2M_CHECK_MSG(parts.size() == 23,
                 "metrics sample: expected 23 fields, got " << parts.size());
  auto field = [&](std::size_t i, const char* key) -> std::string {
    const std::string prefix = std::string(key) + "=";
    VC2M_CHECK_MSG(parts[i].rfind(prefix, 0) == 0,
                   "metrics sample: field " << i << " is not '" << key
                                            << "='");
    return parts[i].substr(prefix.size());
  };
  MetricsSample s;
  s.index = parse_u64(field(0, "sample"), "sample");
  s.served = parse_u64(field(1, "served"), "served");
  s.vt_ns = parse_i64(field(2, "vt_ns"), "vt_ns");
  s.queue_depth = parse_u64(field(3, "queue"), "queue");
  s.retry_depth = parse_u64(field(4, "retry"), "retry");
  s.est_ns_per_task = parse_i64(field(5, "est"), "est");
  s.arrivals = parse_u64(field(6, "arrivals"), "arrivals");
  s.admitted = parse_u64(field(7, "admitted"), "admitted");
  s.rejected = parse_u64(field(8, "rejected"), "rejected");
  s.probe_rejected = parse_u64(field(9, "probe_rejected"), "probe_rejected");
  s.deferred = parse_u64(field(10, "deferred"), "deferred");
  s.timed_out = parse_u64(field(11, "timed_out"), "timed_out");
  s.shed = parse_u64(field(12, "shed"), "shed");
  s.downgrades = parse_u64(field(13, "downgrades"), "downgrades");
  s.backpressure = parse_u64(field(14, "backpressure"), "backpressure");
  s.commits = parse_u64(field(15, "commits"), "commits");
  s.dbf_evals = parse_u64(field(16, "dbf"), "dbf");
  s.budget_evals = parse_u64(field(17, "budget"), "budget");
  s.admission_tests = parse_u64(field(18, "adm"), "adm");
  s.lat_admitted = parse_histogram(field(19, "lat_admitted"));
  s.lat_rejected = parse_histogram(field(20, "lat_rejected"));
  s.lat_deferred = parse_histogram(field(21, "lat_deferred"));
  s.lat_shed = parse_histogram(field(22, "lat_shed"));
  return s;
}

std::string timeline_header_payload(const std::string& config_digest,
                                    std::uint64_t every) {
  std::ostringstream os;
  os << kTimelineSchema << "|config=" << config_digest << "|every=" << every;
  return os.str();
}

TimelineScan scan_timeline(const std::string& path) {
  TimelineScan out;
  FrameScan frames = scan_frames(path);
  out.exists = frames.exists;
  if (!frames.exists) return out;
  out.valid_bytes = frames.valid_bytes;
  out.torn = frames.torn;

  if (!frames.payloads.empty()) {
    const std::string& payload = frames.payloads.front();
    const std::string schema_prefix = std::string(kTimelineSchema) + "|";
    if (payload.rfind(schema_prefix, 0) == 0) {
      std::string rest = payload.substr(schema_prefix.size());
      const auto bar = rest.find('|');
      if (bar != std::string::npos && rest.rfind("config=", 0) == 0 &&
          rest.find("every=", bar + 1) == bar + 1) {
        const std::string every_str = rest.substr(bar + 7);
        char* end = nullptr;
        errno = 0;
        const unsigned long long every =
            std::strtoull(every_str.c_str(), &end, 10);
        if (!every_str.empty() &&
            end == every_str.c_str() + every_str.size() && errno == 0 &&
            every > 0) {
          out.config_digest = rest.substr(7, bar - 7);
          out.every = every;
          out.header_ok = true;
        }
      }
    }
  }
  if (!out.header_ok) {
    out.valid_bytes = 0;
    out.torn = !frames.payloads.empty() || frames.torn;
    return out;
  }

  // A checksum-valid frame whose payload is not a well-formed sample ends
  // the valid prefix exactly like a torn tail would.
  std::uint64_t off = 12 + frames.payloads.front().size();
  for (std::size_t i = 1; i < frames.payloads.size(); ++i) {
    try {
      MetricsSample s = parse_metrics_sample(frames.payloads[i]);
      if (s.index != out.samples.size()) {
        std::ostringstream w;
        w << "timeline sample " << i - 1 << " has index " << s.index
          << " (expected " << out.samples.size()
          << ") — truncating to the last consistent sample";
        out.warnings.push_back(w.str());
        out.valid_bytes = off;
        out.torn = true;
        return out;
      }
      out.samples.push_back(std::move(s));
      out.raw.push_back(frames.payloads[i]);
    } catch (const util::Error& e) {
      std::ostringstream w;
      w << "timeline sample " << i - 1
        << " is malformed — truncating to the last valid sample ("
        << e.what() << ")";
      out.warnings.push_back(w.str());
      out.valid_bytes = off;
      out.torn = true;
      return out;
    }
    off += 12 + frames.payloads[i].size();
  }
  return out;
}

void write_span_dump(const std::string& path, const SpanRing& ring) {
  const auto spans = ring.snapshot();
  std::ostringstream os;
  os << kSpanDumpSchema << ' ' << spans.size() << '\n';
  for (const auto& s : spans) os << obs::serialize(s) << '\n';
  write_file_durable(path, os.str());
}

std::vector<obs::RequestSpan> read_span_dump(const std::string& path) {
  std::ifstream f(path);
  VC2M_CHECK_MSG(f.good(), "cannot open span dump '" << path << "'");
  std::string line;
  VC2M_CHECK_MSG(std::getline(f, line) &&
                     line.rfind(std::string(kSpanDumpSchema) + " ", 0) == 0,
                 "'" << path << "' is not a " << kSpanDumpSchema << " dump");
  const std::uint64_t count =
      parse_u64(line.substr(std::string(kSpanDumpSchema).size() + 1),
                "span dump count");
  std::vector<obs::RequestSpan> out;
  while (std::getline(f, line)) {
    if (line.empty()) continue;
    out.push_back(obs::parse_request_span(line));
  }
  VC2M_CHECK_MSG(out.size() == count,
                 "span dump '" << path << "': header says " << count
                               << " spans, found " << out.size());
  return out;
}

std::string render_stats_snapshot(const MetricsSample& s) {
  auto lat = [](const util::LogHistogram& h) {
    char buf[80];
    if (h.empty()) return std::string("-/- (0)");
    std::snprintf(buf, sizeof buf, "%.1f/%.1f (%llu)", h.quantile(0.50),
                  h.quantile(0.95),
                  static_cast<unsigned long long>(h.count()));
    return std::string(buf);
  };
  char vt[40];
  std::snprintf(vt, sizeof vt, "%.3f", static_cast<double>(s.vt_ns) / 1e6);
  std::ostringstream os;
  os << "[vc2m serve] served=" << s.served << " vt_ms=" << vt
     << " queue=" << s.queue_depth << " retry=" << s.retry_depth
     << " est_ns_per_task=" << s.est_ns_per_task << '\n'
     << "  outcomes: arrivals=" << s.arrivals << " admitted=" << s.admitted
     << " rejected=" << s.rejected << " probe_rejected=" << s.probe_rejected
     << " deferred=" << s.deferred << " timed_out=" << s.timed_out
     << " shed=" << s.shed << " downgrades=" << s.downgrades
     << " backpressure=" << s.backpressure << " commits=" << s.commits
     << '\n'
     << "  effort: dbf=" << s.dbf_evals << " budget=" << s.budget_evals
     << " admission=" << s.admission_tests
     << '\n'
     << "  latency_us p50/p95 (count): admitted=" << lat(s.lat_admitted)
     << " rejected=" << lat(s.lat_rejected)
     << " deferred=" << lat(s.lat_deferred) << " shed=" << lat(s.lat_shed)
     << '\n';
  return os.str();
}

}  // namespace vc2m::service
