#include "service/trace_gen.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/error.h"
#include "workload/generator.h"

namespace vc2m::service {

namespace {

constexpr double kPi = 3.14159265358979323846;

double parse_num(const std::string& key, const std::string& s) {
  if (s.empty()) throw util::Error("trace spec: empty value for '" + key + "'");
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || !std::isfinite(v))
    throw util::Error("trace spec: bad value '" + s + "' for '" + key + "'");
  return v;
}

std::uint64_t parse_count(const std::string& key, const std::string& s) {
  const double v = parse_num(key, s);
  if (v < 0 || v != std::floor(v))
    throw util::Error("trace spec: '" + key +
                      "' must be a non-negative integer, got '" + s + "'");
  return static_cast<std::uint64_t>(v);
}

void parse_range(const std::string& key, const std::string& s, double& lo,
                 double& hi) {
  const auto dots = s.find("..");
  if (dots == std::string::npos)
    throw util::Error("trace spec: '" + key + "' wants LO..HI, got '" + s +
                      "'");
  lo = parse_num(key, s.substr(0, dots));
  hi = parse_num(key, s.substr(dots + 2));
  if (lo <= 0 || hi < lo)
    throw util::Error("trace spec: '" + key + "' wants 0 < LO <= HI, got '" +
                      s + "'");
}

}  // namespace

const char* to_string(RequestKind k) {
  switch (k) {
    case RequestKind::kAdmit: return "admit";
    case RequestKind::kRemove: return "remove";
    case RequestKind::kResize: return "resize";
  }
  return "?";
}

const char* to_string(TracePattern p) {
  switch (p) {
    case TracePattern::kPoisson: return "poisson";
    case TracePattern::kFlash: return "flash";
    case TracePattern::kDiurnal: return "diurnal";
  }
  return "?";
}

TraceConfig parse_trace_spec(const std::string& spec) {
  TraceConfig cfg;
  cfg.spec = spec;
  const auto colon = spec.find(':');
  const std::string pattern = spec.substr(0, colon);
  if (pattern == "poisson") cfg.pattern = TracePattern::kPoisson;
  else if (pattern == "flash") cfg.pattern = TracePattern::kFlash;
  else if (pattern == "diurnal") cfg.pattern = TracePattern::kDiurnal;
  else
    throw util::Error("trace spec: unknown pattern '" + pattern +
                      "' (poisson|flash|diurnal)");
  if (colon == std::string::npos) return cfg;

  std::istringstream is(spec.substr(colon + 1));
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto eq = item.find('=');
    if (eq == std::string::npos || eq == 0)
      throw util::Error("trace spec: want key=value, got '" + item + "'");
    const std::string key = item.substr(0, eq);
    const std::string val = item.substr(eq + 1);
    if (key == "requests") {
      cfg.requests = parse_count(key, val);
      if (cfg.requests == 0)
        throw util::Error("trace spec: requests must be >= 1");
    } else if (key == "interarrival-us") {
      const double us = parse_num(key, val);
      if (us <= 0)
        throw util::Error("trace spec: interarrival-us must be > 0");
      cfg.mean_interarrival = util::Time::ns(
          static_cast<std::int64_t>(us * 1000.0 + 0.5));
    } else if (key == "util") {
      parse_range(key, val, cfg.util_lo, cfg.util_hi);
    } else if (key == "remove-frac") {
      cfg.remove_frac = parse_num(key, val);
    } else if (key == "resize-frac") {
      cfg.resize_frac = parse_num(key, val);
    } else if (key == "low-crit-frac") {
      cfg.low_crit_frac = parse_num(key, val);
    } else if (key == "flash-at") {
      cfg.flash_at = parse_num(key, val);
    } else if (key == "flash-len") {
      cfg.flash_len = parse_num(key, val);
    } else if (key == "flash-x") {
      cfg.flash_x = parse_num(key, val);
    } else if (key == "cycles") {
      cfg.diurnal_cycles = parse_num(key, val);
    } else if (key == "amp") {
      cfg.diurnal_amp = parse_num(key, val);
    } else {
      throw util::Error("trace spec: unknown key '" + key + "'");
    }
  }
  if (cfg.remove_frac < 0 || cfg.resize_frac < 0 ||
      cfg.remove_frac + cfg.resize_frac > 0.9)
    throw util::Error("trace spec: remove-frac + resize-frac must stay in "
                      "[0, 0.9]");
  if (cfg.low_crit_frac < 0 || cfg.low_crit_frac > 1)
    throw util::Error("trace spec: low-crit-frac must be in [0, 1]");
  if (cfg.flash_x <= 0 || cfg.flash_len < 0 || cfg.flash_at < 0)
    throw util::Error("trace spec: flash parameters must be positive");
  if (cfg.diurnal_amp < 0 || cfg.diurnal_amp >= 1)
    throw util::Error("trace spec: amp must be in [0, 1)");
  return cfg;
}

std::vector<ServeRequest> generate_trace(const TraceConfig& cfg,
                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<ServeRequest> out;
  out.reserve(cfg.requests);
  std::vector<std::pair<int, int>> live;  // (vm, criticality) the generator
                                          // believes admitted
  std::int64_t clock_ns = 0;
  int next_vm = 1;
  const double n = static_cast<double>(cfg.requests);
  for (std::uint64_t i = 0; i < cfg.requests; ++i) {
    // Rate modulation: >1 means a denser burst (shorter interarrivals).
    double rate = 1.0;
    const double pos = static_cast<double>(i) / n;
    if (cfg.pattern == TracePattern::kFlash && pos >= cfg.flash_at &&
        pos < cfg.flash_at + cfg.flash_len)
      rate = cfg.flash_x;
    else if (cfg.pattern == TracePattern::kDiurnal)
      rate = 1.0 + cfg.diurnal_amp *
                       std::sin(2.0 * kPi * cfg.diurnal_cycles * pos);
    // Exponential interarrival with mean (mean_interarrival / rate);
    // 1 - uniform01() keeps the argument strictly positive.
    const double gap_ns =
        -static_cast<double>(cfg.mean_interarrival.raw_ns()) / rate *
        std::log(1.0 - rng.uniform01());
    clock_ns += static_cast<std::int64_t>(gap_ns) + 1;

    ServeRequest req;
    req.seq = i;
    req.at = util::Time::ns(clock_ns);
    const double kind_draw = rng.uniform01();
    if (kind_draw < cfg.remove_frac && !live.empty()) {
      req.kind = RequestKind::kRemove;
      const std::size_t pick = rng.index(live.size());
      req.vm = live[pick].first;
      req.criticality = live[pick].second;
      live[pick] = live.back();
      live.pop_back();
    } else if (kind_draw < cfg.remove_frac + cfg.resize_frac &&
               !live.empty()) {
      req.kind = RequestKind::kResize;
      const std::size_t pick = rng.index(live.size());
      req.vm = live[pick].first;
      req.criticality = live[pick].second;
      req.util = rng.uniform(cfg.util_lo, cfg.util_hi);
      req.taskset_seed = rng();
    } else {
      req.kind = RequestKind::kAdmit;
      req.vm = next_vm++;
      req.util = rng.uniform(cfg.util_lo, cfg.util_hi);
      req.criticality = rng.bernoulli(cfg.low_crit_frac) ? 0 : 1;
      req.taskset_seed = rng();
      live.emplace_back(req.vm, req.criticality);
    }
    out.push_back(req);
  }
  return out;
}

model::Taskset materialize_taskset(const ServeRequest& req,
                                   const model::ResourceGrid& grid) {
  VC2M_CHECK_MSG(req.kind != RequestKind::kRemove,
                 "remove requests carry no taskset");
  workload::GeneratorConfig gen;
  gen.grid = grid;
  gen.target_ref_utilization = req.util;
  gen.num_vms = 1;
  util::Rng rng(req.taskset_seed);
  auto tasks = workload::generate_taskset(gen, rng);
  for (auto& t : tasks) t.vm = req.vm;
  return tasks;
}

}  // namespace vc2m::service
