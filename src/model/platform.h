// Evaluation platforms (§5.1).
//
// The paper evaluates three platform configurations modelled after the Intel
// Xeon 2618L v3 (A), Xeon D-1528 (B), and Xeon D-1518 (C). The number of
// bandwidth partitions equals the number of cache partitions on each
// platform (C = B), and C_min = 2 (the architectural minimum CBM width on
// these parts) while B_min = 1.
#pragma once

#include <string>

#include "model/resource_grid.h"

namespace vc2m::model {

struct PlatformSpec {
  std::string name;
  unsigned cores = 0;
  ResourceGrid grid;

  unsigned total_cache() const { return grid.c_max; }
  unsigned total_bw() const { return grid.b_max; }

  static ResourceGrid make_grid(unsigned partitions) {
    return ResourceGrid{/*c_min=*/2, /*c_max=*/partitions,
                        /*b_min=*/1, /*b_max=*/partitions};
  }

  /// Platform A: 4 cores, 20 cache/BW partitions (Xeon E5-2618L v3).
  static PlatformSpec A() { return {"Platform A", 4, make_grid(20)}; }
  /// Platform B: 6 cores, 20 cache/BW partitions (Xeon D-1528).
  static PlatformSpec B() { return {"Platform B", 6, make_grid(20)}; }
  /// Platform C: 4 cores, 12 cache/BW partitions (Xeon D-1518).
  static PlatformSpec C() { return {"Platform C", 4, make_grid(12)}; }
};

}  // namespace vc2m::model
