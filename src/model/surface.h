// Dense functions over the (cache, bandwidth) grid.
//
// `Surface` holds a real-valued function over a ResourceGrid (slowdown
// vectors s(c,b)); `WcetFn` holds an integer-time-valued one (WCETs e(c,b)
// and VCPU budgets Θ(c,b)). Both are the currency passed between the
// workload generator, the analyses, and the allocators.
#pragma once

#include <vector>

#include "model/resource_grid.h"
#include "util/time.h"

namespace vc2m::model {

/// Real-valued function over a resource grid (e.g. a slowdown vector).
class Surface {
 public:
  Surface() = default;
  explicit Surface(const ResourceGrid& grid, double fill = 0.0)
      : grid_(grid), values_(grid.size(), fill) {
    grid_.validate();
  }

  const ResourceGrid& grid() const { return grid_; }
  bool empty() const { return values_.empty(); }

  double at(unsigned c, unsigned b) const { return values_[grid_.index(c, b)]; }
  void set(unsigned c, unsigned b, double v) { values_[grid_.index(c, b)] = v; }

  /// Value at the full allocation (C, B) — the reference point.
  double reference() const { return at(grid_.c_max, grid_.b_max); }

  /// Largest value on the grid (for slowdown vectors: at (C_min, B_min)).
  double max_value() const {
    double m = values_.empty() ? 0.0 : values_.front();
    for (const double v : values_) m = v > m ? v : m;
    return m;
  }

  /// True iff the function never increases when either resource grows —
  /// the physical property every WCET/slowdown surface must satisfy.
  bool monotone_nonincreasing() const {
    for (unsigned c = grid_.c_min; c <= grid_.c_max; ++c)
      for (unsigned b = grid_.b_min; b <= grid_.b_max; ++b) {
        if (c + 1 <= grid_.c_max && at(c + 1, b) > at(c, b) + 1e-12) return false;
        if (b + 1 <= grid_.b_max && at(c, b + 1) > at(c, b) + 1e-12) return false;
      }
    return true;
  }

  /// Flat view in row-major (cache-major) order; the KMeans feature vector.
  const std::vector<double>& flat() const { return values_; }
  std::vector<double>& flat() { return values_; }

 private:
  ResourceGrid grid_;
  std::vector<double> values_;
};

/// Integer-time-valued function over a resource grid: task WCETs e(c,b) or
/// VCPU budgets Θ(c,b).
class WcetFn {
 public:
  WcetFn() = default;
  explicit WcetFn(const ResourceGrid& grid,
                  util::Time fill = util::Time::zero())
      : grid_(grid), values_(grid.size(), fill) {
    grid_.validate();
  }

  /// e(c,b) = round(reference * s(c,b)); s must have s(C,B) == 1.
  static WcetFn from_slowdown(util::Time reference, const Surface& s) {
    WcetFn f(s.grid());
    for (unsigned c = s.grid().c_min; c <= s.grid().c_max; ++c)
      for (unsigned b = s.grid().b_min; b <= s.grid().b_max; ++b) {
        const double ns = static_cast<double>(reference.raw_ns()) * s.at(c, b);
        f.set(c, b, util::Time::ns(static_cast<std::int64_t>(ns + 0.5)));
      }
    return f;
  }

  const ResourceGrid& grid() const { return grid_; }
  bool empty() const { return values_.empty(); }

  util::Time at(unsigned c, unsigned b) const {
    return values_[grid_.index(c, b)];
  }
  void set(unsigned c, unsigned b, util::Time v) {
    values_[grid_.index(c, b)] = v;
  }

  /// Reference value e* = e(C, B).
  util::Time reference() const { return at(grid_.c_max, grid_.b_max); }

  /// Slowdown vector s(c,b) = e(c,b)/e(C,B).
  Surface slowdown() const {
    Surface s(grid_);
    const double ref = static_cast<double>(reference().raw_ns());
    VC2M_CHECK_MSG(ref > 0, "reference WCET must be positive");
    for (unsigned c = grid_.c_min; c <= grid_.c_max; ++c)
      for (unsigned b = grid_.b_min; b <= grid_.b_max; ++b)
        s.set(c, b, static_cast<double>(at(c, b).raw_ns()) / ref);
    return s;
  }

  bool monotone_nonincreasing() const {
    for (unsigned c = grid_.c_min; c <= grid_.c_max; ++c)
      for (unsigned b = grid_.b_min; b <= grid_.b_max; ++b) {
        if (c + 1 <= grid_.c_max && at(c + 1, b) > at(c, b)) return false;
        if (b + 1 <= grid_.b_max && at(c, b + 1) > at(c, b)) return false;
      }
    return true;
  }

  /// Pointwise sum (used when aggregating task demand onto a VCPU).
  WcetFn& operator+=(const WcetFn& o) {
    VC2M_CHECK(grid_ == o.grid_);
    for (std::size_t i = 0; i < values_.size(); ++i) values_[i] += o.values_[i];
    return *this;
  }

 private:
  ResourceGrid grid_;
  std::vector<util::Time> values_;
};

}  // namespace vc2m::model
