// Cache- and bandwidth-aware task and VCPU models (§4.1).
//
// A task is τ_i = (p_i, {e_i(c,b)}): an implicit-deadline periodic task whose
// WCET depends on the cache and bandwidth partitions allocated to its core.
// A VCPU is V_j = (Π_j, {Θ_j(c,b)}): a periodic server whose budget likewise
// depends on the resources of the core it runs on.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "model/surface.h"
#include "util/time.h"

namespace vc2m::model {

struct Task {
  util::Time period;  ///< p_i (= relative deadline; implicit deadlines)
  WcetFn wcet;        ///< e_i(c, b)
  /// Maximum WCET e_i^max: execution under worst-case bandwidth with the
  /// cache disabled (§5.1). This point lies *outside* the CAT grid; the
  /// Baseline solution, which allocates no cache, analyzes tasks at this
  /// value. Equals e*_i · s^max of the backing benchmark.
  util::Time max_wcet;
  int vm = 0;         ///< owning virtual machine
  std::string label;  ///< e.g. the PARSEC benchmark backing the WCETs

  /// Reference WCET e*_i = e_i(C, B).
  util::Time reference_wcet() const { return wcet.reference(); }

  /// Reference utilization e*_i / p_i.
  double reference_utilization() const {
    return reference_wcet().ratio(period);
  }

  /// Utilization under a specific allocation, e_i(c,b)/p_i.
  double utilization(unsigned c, unsigned b) const {
    return wcet.at(c, b).ratio(period);
  }

  Surface slowdown() const { return wcet.slowdown(); }
};

using Taskset = std::vector<Task>;

/// Total reference utilization Σ e*_i/p_i of a taskset.
double total_reference_utilization(const Taskset& ts);

/// True iff every pair of periods is harmonic (one divides the other).
bool harmonic(const Taskset& ts);

/// Hyperperiod (LCM of periods); callers must ensure it stays representable
/// — harmonic tasksets make it equal to the largest period.
util::Time hyperperiod(const Taskset& ts);

struct Vcpu {
  util::Time period;  ///< Π_j
  WcetFn budget;      ///< Θ_j(c, b)
  int vm = 0;         ///< owning virtual machine
  std::vector<std::size_t> tasks;  ///< indices (into the VM taskset) it serves

  /// Reference budget Θ*_j = Θ_j(C, B).
  util::Time reference_budget() const { return budget.reference(); }

  /// Reference CPU-bandwidth Θ*_j / Π_j.
  double reference_utilization() const {
    return reference_budget().ratio(period);
  }

  /// CPU-bandwidth under a specific allocation, Θ_j(c,b)/Π_j.
  double utilization(unsigned c, unsigned b) const {
    return budget.at(c, b).ratio(period);
  }

  Surface slowdown() const { return budget.slowdown(); }
};

double total_reference_utilization(const std::vector<Vcpu>& vs);

}  // namespace vc2m::model
