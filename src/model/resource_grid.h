// The (cache, bandwidth) allocation domain of §4.1.
//
// A platform exposes C equal-size cache partitions and B equal-size memory
// bandwidth partitions; a core may be allocated c ∈ [C_min, C] cache
// partitions and b ∈ [B_min, B] bandwidth partitions. Every per-task WCET
// function e_i(c,b) and per-VCPU budget function Θ_j(c,b) is defined over
// this rectangular grid.
#pragma once

#include <cstddef>

#include "util/error.h"

namespace vc2m::model {

struct ResourceGrid {
  unsigned c_min = 1;  ///< minimum cache partitions per core (C_min)
  unsigned c_max = 1;  ///< total cache partitions (C)
  unsigned b_min = 1;  ///< minimum bandwidth partitions per core (B_min)
  unsigned b_max = 1;  ///< total bandwidth partitions (B)

  constexpr unsigned cache_levels() const { return c_max - c_min + 1; }
  constexpr unsigned bw_levels() const { return b_max - b_min + 1; }
  constexpr std::size_t size() const {
    return static_cast<std::size_t>(cache_levels()) * bw_levels();
  }

  constexpr bool contains(unsigned c, unsigned b) const {
    return c >= c_min && c <= c_max && b >= b_min && b <= b_max;
  }

  /// Row-major index of (c, b) into a flattened surface.
  std::size_t index(unsigned c, unsigned b) const {
    VC2M_CHECK_MSG(contains(c, b),
                   "(" << c << "," << b << ") outside resource grid");
    return static_cast<std::size_t>(c - c_min) * bw_levels() + (b - b_min);
  }

  void validate() const {
    VC2M_CHECK(c_min >= 1 && c_min <= c_max);
    VC2M_CHECK(b_min >= 1 && b_min <= b_max);
  }

  friend constexpr bool operator==(const ResourceGrid&,
                                   const ResourceGrid&) = default;
};

}  // namespace vc2m::model
