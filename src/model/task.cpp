#include "model/task.h"

namespace vc2m::model {

double total_reference_utilization(const Taskset& ts) {
  double u = 0;
  for (const auto& t : ts) u += t.reference_utilization();
  return u;
}

bool harmonic(const Taskset& ts) {
  for (std::size_t i = 0; i < ts.size(); ++i)
    for (std::size_t j = i + 1; j < ts.size(); ++j)
      if (!util::harmonic_pair(ts[i].period, ts[j].period)) return false;
  return true;
}

util::Time hyperperiod(const Taskset& ts) {
  util::Time h = util::Time::ns(1);
  for (const auto& t : ts) h = util::lcm(h, t.period);
  return h;
}

double total_reference_utilization(const std::vector<Vcpu>& vs) {
  double u = 0;
  for (const auto& v : vs) u += v.reference_utilization();
  return u;
}

}  // namespace vc2m::model
