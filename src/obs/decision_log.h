// Decision provenance for the allocation engine: a flight recorder.
//
// The solver makes thousands of coupled decisions per run — which budget a
// (c,b) cell gets, which core a VCPU lands on, which partition grant is
// worth its cost — and the final allocation alone cannot answer "why was
// this VM rejected?" or "why is core 2 so full?". While a DecisionLogScope
// is open, every consequential step is appended to a DecisionLog as a
// typed DecisionEvent carrying the rejecting constraint and the numeric
// margin by which it was missed (or met). `vc2m explain` and the
// vc2m-explain-report/1 artifact (obs/explain.h) are built on this stream.
//
// Recording follows the util::AllocCounters contract exactly:
//  - Off by default. Every emit site is one thread-local pointer test
//    (`if (auto* log = obs::decision_log())`); with no scope open the hot
//    paths stay effectively free.
//  - Passive. Emission never touches allocator state, consumes no RNG, and
//    never changes a verdict — tests/test_explain.cpp pins the engine
//    bit-identical to tests/golden/engine.golden with recording enabled.
//  - Deterministic. Within one solve the event order is the solver's own
//    deterministic visit order; core::run_schedulability_experiment
//    captures per-work-item logs and concatenates them in serial
//    (point, taskset, solution) order, so the merged stream is
//    bit-identical at any --jobs count.
//
// This header is deliberately link-free (all hot-path members inline, no
// vc2m_obs symbols) so the lower layers — src/analysis, src/core — can
// emit without a dependency cycle; the cold helpers (names, one-line
// descriptions) live in decision_log.cpp inside vc2m_obs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace vc2m::obs {

/// What kind of step a DecisionEvent records. Values are append-only: the
/// vc2m-explain-report/1 schema serializes them by name (decision_log.cpp).
enum class DecisionKind : std::uint8_t {
  kSolveBegin,      ///< one solve() starts: value = task count
  kVmOutcome,       ///< VM-level phase done: value = VCPU count (0 = failed)
  kBudgetSearch,    ///< one fresh min-budget search (analysis context)
  kBudgetPoint,     ///< one (c,b) cell of a VCPU's budget surface
  kBinPack,         ///< best-fit packing attempt of one item
  kVcpuScreen,      ///< hv fast screen: one VCPU vs a whole core
  kCapacityScreen,  ///< hv fast screen: total utilization vs core count
  kPackingCandidate,///< one Phase-1 candidate packing (m cores, permutation)
  kPartitionGrant,  ///< Phase-2 grant of one cache/BW partition
  kGrantExhausted,  ///< Phase 2 gave up: pools dry or no beneficial grant
  kMigration,       ///< Phase-3 VCPU move between cores
  kHvAttempt,       ///< outcome of one core-count attempt (m cores)
  kAdmitPlacement,  ///< online admission: one VCPU vs one candidate core
  kAdmitVerdict,    ///< online admission: final per-VM verdict
  kExactPartition,  ///< exact search: resource split over one partition
  kVerdict,         ///< final solve verdict
};

/// The constraint that bound when a step was rejected (kNone on accepts).
enum class DecisionConstraint : std::uint8_t {
  kNone,
  kNoFeasibleBudget,       ///< no Θ ≤ Π exists for the task group
  kTaskOverflowsVcpu,      ///< packing weight exceeds a unit VCPU
  kVcpuExceedsCore,        ///< one VCPU > 1.0 even at (C_max, B_max)
  kUtilizationExceedsCores,///< Σ utilization > available cores
  kCoreOverUtilized,       ///< Σ Θ/Π > 1 on one core
  kCachePoolExhausted,     ///< free cache partitions ran out
  kBwPoolExhausted,        ///< free bandwidth partitions ran out
  kNoBeneficialGrant,      ///< no remaining grant reduces utilization
  kCoreLimit,              ///< no more physical cores to open
  kNoFeasiblePartition,    ///< exact search: no resource split fits
};

/// One recorded decision. Field use depends on `kind` (see the emit sites
/// and docs/explainability.md for the per-kind contract); unused id fields
/// stay -1 and unused numeric fields stay 0.
struct DecisionEvent {
  DecisionKind kind{};
  bool accepted = false;
  DecisionConstraint constraint = DecisionConstraint::kNone;
  std::int32_t vm = -1;      ///< implicated VM id, when exactly one is
  std::int32_t entity = -1;  ///< VCPU/task/item index, per kind
  std::int32_t core = -1;    ///< core index (or core count for kHvAttempt)
  std::int32_t cache = -1;   ///< cache partitions at the decision point
  std::int32_t bw = -1;      ///< bandwidth partitions at the decision point
  double value = 0;   ///< principal quantity (Θ ms, utilization, residual…)
  /// Signed margin of the decision: how much slack was left when accepted
  /// (≥ 0), or how far the binding constraint was missed when rejected
  /// (> 0 = shortfall). Always in the same unit as `value`'s dimension.
  double margin = 0;

  friend bool operator==(const DecisionEvent&, const DecisionEvent&) = default;
};

/// An append-only event stream with a hard size cap: a runaway search can
/// emit millions of events, and the recorder must stay bounded the same
/// way the log-bucketed histograms are. Events past the cap are counted,
/// not stored — ExplainReport surfaces `events_dropped` so a truncated
/// explanation is never mistaken for a complete one.
class DecisionLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 20;

  explicit DecisionLog(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  void emit(const DecisionEvent& e) {
    if (events_.size() < capacity_) {
      events_.push_back(e);
    } else {
      ++dropped_;
    }
  }

  /// Append another log's events (and dropped count) in order — the serial
  /// merge the experiment runner performs per work item.
  void append(const DecisionLog& o) {
    for (const auto& e : o.events_) emit(e);
    dropped_ += o.dropped_;
  }

  const std::vector<DecisionEvent>& events() const { return events_; }
  std::size_t dropped() const { return dropped_; }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return events_.empty() && dropped_ == 0; }
  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  std::size_t capacity_;
  std::vector<DecisionEvent> events_;
  std::size_t dropped_ = 0;
};

namespace detail {
inline thread_local DecisionLog* g_decision_log = nullptr;
}

/// The active recorder, or nullptr when no scope is open. Emit sites use
/// `if (auto* log = obs::decision_log()) log->emit({...});` — one branch.
inline DecisionLog* decision_log() { return detail::g_decision_log; }

/// RAII recording scope. By default the scope owns its log and, like
/// util::AllocCounterScope, appends it to any enclosing scope's log on
/// destruction (so an outer "whole experiment" scope sees nested solves in
/// order). Binding an external sink instead (the experiment work items do
/// this) records into it directly and skips the merge — the caller then
/// owns ordering.
class DecisionLogScope {
 public:
  DecisionLogScope() : prev_(detail::g_decision_log), sink_(&owned_) {
    detail::g_decision_log = sink_;
  }
  explicit DecisionLogScope(DecisionLog& sink)
      : prev_(detail::g_decision_log), sink_(&sink), external_(true) {
    detail::g_decision_log = sink_;
  }
  ~DecisionLogScope() {
    detail::g_decision_log = prev_;
    if (!external_ && prev_) prev_->append(owned_);
  }
  DecisionLogScope(const DecisionLogScope&) = delete;
  DecisionLogScope& operator=(const DecisionLogScope&) = delete;

  const DecisionLog& log() const { return *sink_; }

 private:
  DecisionLog* prev_;
  DecisionLog* sink_;
  DecisionLog owned_;
  bool external_ = false;
};

// ---------------------------------------------------------------------------
// Cold helpers (vc2m_obs, decision_log.cpp) — rendering and schema names.

/// Stable serialization names ("budget_point", "no_feasible_budget", …) —
/// the vc2m-explain-report/1 schema uses these, so they never change.
const char* to_string(DecisionKind k);
const char* to_string(DecisionConstraint c);

/// Parse the stable names back (read side of the explain report). Returns
/// false on an unknown name.
bool decision_kind_from_string(const std::string& s, DecisionKind& out);
bool decision_constraint_from_string(const std::string& s,
                                     DecisionConstraint& out);

/// One human-readable line for an event, e.g.
/// "budget point vm 1 (c=4,b=2): rejected — no_feasible_budget, short by
///  0.18 budget".
std::string describe(const DecisionEvent& e);

}  // namespace vc2m::obs
