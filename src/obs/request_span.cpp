#include "obs/request_span.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <istream>
#include <map>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/file.h"

namespace vc2m::obs {

namespace {

std::uint64_t parse_u64(const std::string& s, const char* what) {
  VC2M_CHECK_MSG(!s.empty() && s.find('-') == std::string::npos,
                 "request span: bad " << what << " '" << s << "'");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  VC2M_CHECK_MSG(end == s.c_str() + s.size() && errno == 0,
                 "request span: bad " << what << " '" << s << "'");
  return v;
}

std::int64_t parse_i64(const std::string& s, const char* what) {
  VC2M_CHECK_MSG(!s.empty(), "request span: bad " << what << " '" << s << "'");
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  VC2M_CHECK_MSG(end == s.c_str() + s.size() && errno == 0,
                 "request span: bad " << what << " '" << s << "'");
  return v;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

/// Chrome `ts` is in microseconds; three decimals keep ns precision.
std::string ts_us(std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) / 1e3);
  return buf;
}

}  // namespace

std::string serialize(const RequestSpan& s) {
  std::ostringstream os;
  os << "seq=" << s.seq << "|attempt=" << s.attempt << "|kind=" << s.kind
     << "|outcome=" << s.outcome << "|vm=" << s.vm
     << "|queued_ns=" << s.queued_ns << "|dequeued_ns=" << s.dequeued_ns
     << "|solved_ns=" << s.solved_ns << "|cost_ns=" << s.cost_ns
     << "|latency_ns=" << s.latency_ns << "|wall_ns=" << s.wall_ns;
  return os.str();
}

RequestSpan parse_request_span(const std::string& payload) {
  const auto parts = split(payload, '|');
  VC2M_CHECK_MSG(parts.size() == 11,
                 "request span: expected 11 fields, got " << parts.size());
  auto field = [&](std::size_t i, const char* key) -> std::string {
    const std::string prefix = std::string(key) + "=";
    VC2M_CHECK_MSG(parts[i].rfind(prefix, 0) == 0,
                   "request span: field " << i << " is not '" << key << "='");
    return parts[i].substr(prefix.size());
  };
  RequestSpan s;
  s.seq = parse_u64(field(0, "seq"), "seq");
  s.attempt = static_cast<unsigned>(parse_u64(field(1, "attempt"), "attempt"));
  s.kind = field(2, "kind");
  VC2M_CHECK_MSG(!s.kind.empty(), "request span: empty kind");
  s.outcome = field(3, "outcome");
  VC2M_CHECK_MSG(!s.outcome.empty(), "request span: empty outcome");
  s.vm = static_cast<int>(parse_i64(field(4, "vm"), "vm"));
  s.queued_ns = parse_i64(field(5, "queued_ns"), "queued_ns");
  s.dequeued_ns = parse_i64(field(6, "dequeued_ns"), "dequeued_ns");
  s.solved_ns = parse_i64(field(7, "solved_ns"), "solved_ns");
  s.cost_ns = parse_i64(field(8, "cost_ns"), "cost_ns");
  s.latency_ns = parse_i64(field(9, "latency_ns"), "latency_ns");
  s.wall_ns = parse_i64(field(10, "wall_ns"), "wall_ns");
  return s;
}

void write_span_trace(std::ostream& os, std::span<const RequestSpan> spans) {
  os << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"generator\": "
        "\"vc2m\", \"spans\": \""
     << spans.size() << "\"},\n\"vc2mSpans\": [\n";
  for (std::size_t i = 0; i < spans.size(); ++i)
    os << '"' << serialize(spans[i]) << '"'
       << (i + 1 < spans.size() ? ",\n" : "\n");
  os << "],\n\"traceEvents\": [\n";

  bool first = true;
  auto line = [&](const std::string& s) {
    os << (first ? "" : ",\n") << s;
    first = false;
  };
  line("{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
       "\"args\":{\"name\":\"requests\"}}");

  // One thread per trace seq, named once; attempts stack on that track.
  std::vector<std::uint64_t> seqs;
  seqs.reserve(spans.size());
  for (const auto& s : spans) seqs.push_back(s.seq);
  std::sort(seqs.begin(), seqs.end());
  seqs.erase(std::unique(seqs.begin(), seqs.end()), seqs.end());
  for (const std::uint64_t seq : seqs) {
    std::ostringstream m;
    m << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << seq
      << ",\"name\":\"thread_name\",\"args\":{\"name\":\"req " << seq
      << "\"}}";
    line(m.str());
  }

  for (const auto& s : spans) {
    if (s.dequeued_ns > s.queued_ns) {
      std::ostringstream q;
      q << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.seq
        << ",\"ts\":" << ts_us(s.queued_ns)
        << ",\"dur\":" << ts_us(s.dequeued_ns - s.queued_ns)
        << ",\"cat\":\"queue\",\"name\":\"queued a" << s.attempt << "\"}";
      line(q.str());
    }
    std::ostringstream x;
    x << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << s.seq
      << ",\"ts\":" << ts_us(s.dequeued_ns)
      << ",\"dur\":" << ts_us(s.solved_ns - s.dequeued_ns)
      << ",\"cat\":\"solve\",\"name\":\"" << s.kind << " a" << s.attempt
      << " -> " << s.outcome << "\"}";
    line(x.str());
  }
  os << "\n]\n}\n";
}

void write_span_trace_file(const std::string& path,
                           std::span<const RequestSpan> spans) {
  auto f = util::open_output_file(path, "span trace");
  write_span_trace(f, spans);
  util::close_output_file(f, path, "span trace");
}

std::vector<RequestSpan> read_span_trace(std::istream& is) {
  std::vector<RequestSpan> out;
  std::string line;
  bool in_spans = false, found = false;
  while (std::getline(is, line)) {
    if (!in_spans) {
      if (line.rfind("\"vc2mSpans\"", 0) == 0) in_spans = found = true;
      continue;
    }
    if (line.rfind("]", 0) == 0) break;
    VC2M_CHECK_MSG(line.size() >= 2 && line.front() == '"',
                   "malformed vc2mSpans record: " << line);
    std::string payload = line.substr(1);
    if (!payload.empty() && payload.back() == ',') payload.pop_back();
    VC2M_CHECK_MSG(!payload.empty() && payload.back() == '"',
                   "malformed vc2mSpans record: " << line);
    payload.pop_back();
    out.push_back(parse_request_span(payload));
  }
  VC2M_CHECK_MSG(found, "no vc2mSpans array (not a vc2m span trace?)");
  return out;
}

std::vector<RequestSpan> read_span_trace_file(const std::string& path) {
  std::ifstream f(path);
  VC2M_CHECK_MSG(f.good(), "cannot open " << path);
  return read_span_trace(f);
}

std::string SpanCheckResult::summary() const {
  std::ostringstream os;
  os << (ok() ? "OK" : "FAIL") << ": " << spans << " spans, "
     << total_violations << " violations";
  return os.str();
}

SpanCheckResult check_request_spans(std::span<const RequestSpan> spans,
                                    std::size_t max_violations) {
  SpanCheckResult res;
  res.spans = spans.size();
  auto flag = [&](const RequestSpan& s, const std::string& what) {
    ++res.total_violations;
    if (res.violations.size() < max_violations)
      res.violations.push_back({s.seq, s.attempt, what});
  };

  // Per-request attempt sequences, in input order (arbitrary input order
  // is fine — nesting is checked after sorting by attempt).
  std::map<std::uint64_t, std::vector<const RequestSpan*>> by_seq;
  for (const auto& s : spans) {
    if (s.queued_ns > s.dequeued_ns)
      flag(s, "queued after dequeued");
    if (s.dequeued_ns > s.solved_ns)
      flag(s, "dequeued after solved");
    if (s.cost_ns < 0) flag(s, "negative cost");
    if (s.cost_ns != s.solved_ns - s.dequeued_ns)
      flag(s, "cost does not match solve segment");
    by_seq[s.seq].push_back(&s);
  }

  for (auto& [seq, attempts] : by_seq) {
    std::sort(attempts.begin(), attempts.end(),
              [](const RequestSpan* a, const RequestSpan* b) {
                return a->attempt < b->attempt;
              });
    for (std::size_t i = 0; i < attempts.size(); ++i) {
      if (i == 0) continue;
      const RequestSpan& prev = *attempts[i - 1];
      const RequestSpan& cur = *attempts[i];
      if (cur.attempt == prev.attempt) {
        flag(cur, "duplicate (seq, attempt)");
        continue;
      }
      if (cur.queued_ns < prev.solved_ns)
        flag(cur, "attempt overlaps the previous attempt");
      if (prev.outcome != "deferred")
        flag(cur, "retry of a terminally decided request");
    }
  }
  return res;
}

}  // namespace vc2m::obs
