#include "obs/decision_log.h"

#include <array>
#include <cstdio>
#include <string_view>

namespace vc2m::obs {
namespace {

// Index-aligned with the enums; append-only, like the enums themselves.
constexpr std::array<std::string_view, 16> kKindNames = {
    "solve_begin",    "vm_outcome",        "budget_search",
    "budget_point",   "bin_pack",          "vcpu_screen",
    "capacity_screen","packing_candidate", "partition_grant",
    "grant_exhausted","migration",         "hv_attempt",
    "admit_placement","admit_verdict",     "exact_partition",
    "verdict",
};

constexpr std::array<std::string_view, 11> kConstraintNames = {
    "none",
    "no_feasible_budget",
    "task_overflows_vcpu",
    "vcpu_exceeds_core",
    "utilization_exceeds_cores",
    "core_over_utilized",
    "cache_pool_exhausted",
    "bw_pool_exhausted",
    "no_beneficial_grant",
    "core_limit",
    "no_feasible_partition",
};

std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

}  // namespace

const char* to_string(DecisionKind k) {
  auto i = static_cast<std::size_t>(k);
  return i < kKindNames.size() ? kKindNames[i].data() : "unknown";
}

const char* to_string(DecisionConstraint c) {
  auto i = static_cast<std::size_t>(c);
  return i < kConstraintNames.size() ? kConstraintNames[i].data() : "unknown";
}

bool decision_kind_from_string(const std::string& s, DecisionKind& out) {
  for (std::size_t i = 0; i < kKindNames.size(); ++i) {
    if (kKindNames[i] == s) {
      out = static_cast<DecisionKind>(i);
      return true;
    }
  }
  return false;
}

bool decision_constraint_from_string(const std::string& s,
                                     DecisionConstraint& out) {
  for (std::size_t i = 0; i < kConstraintNames.size(); ++i) {
    if (kConstraintNames[i] == s) {
      out = static_cast<DecisionConstraint>(i);
      return true;
    }
  }
  return false;
}

std::string describe(const DecisionEvent& e) {
  std::string s = to_string(e.kind);
  if (e.vm >= 0) s += " vm " + std::to_string(e.vm);
  if (e.entity >= 0) s += " #" + std::to_string(e.entity);
  if (e.core >= 0) {
    s += (e.kind == DecisionKind::kHvAttempt ? " cores " : " core ") +
         std::to_string(e.core);
  }
  if (e.cache >= 0 || e.bw >= 0) {
    s += " (c=" + std::to_string(e.cache) + ",b=" + std::to_string(e.bw) + ")";
  }
  s += e.accepted ? ": accepted" : ": rejected";
  s += fmt(", value %.6g", e.value);
  if (e.accepted) {
    s += fmt(", slack %.6g", e.margin);
  } else {
    if (e.constraint != DecisionConstraint::kNone) {
      s += " — ";
      s += to_string(e.constraint);
    }
    s += fmt(", short by %.6g", e.margin);
  }
  return s;
}

}  // namespace vc2m::obs
