// Request-scoped spans for the admission-control service.
//
// A span is the life of one request *attempt* through the serve queue:
// queued (arrival or retry-ready time) → dequeued (the server picked it
// up) → solved (the decision's virtual completion), plus the terminal
// outcome the journal recorded for the same (seq, attempt). All three
// timestamps are virtual-time nanoseconds, so spans are deterministic and
// bit-identical at any --jobs; `wall_ns` carries the informational
// wall-clock duration of the real solver call and is excluded from every
// deterministic artifact comparison.
//
// Spans export as per-request Perfetto tracks (one thread per trace seq,
// a "queued" segment and a "solve" segment per attempt) with a lossless
// `vc2mSpans` array for re-import, mirroring obs/trace_export. The
// checker validates the structural invariants the service guarantees by
// construction: timestamps are ordered, attempts on one request nest
// without overlap, cost matches the solve segment, and (seq, attempt)
// pairs are unique.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace vc2m::obs {

/// One request attempt's span. `kind` and `outcome` are the service's
/// stable serialization names (e.g. "admit", "deferred"); obs treats them
/// as opaque labels so this layer stays independent of the service.
struct RequestSpan {
  std::uint64_t seq = 0;
  unsigned attempt = 0;
  std::string kind;
  std::string outcome;
  int vm = 0;
  std::int64_t queued_ns = 0;    ///< arrival (attempt 0) or retry-ready time
  std::int64_t dequeued_ns = 0;  ///< server pickup; == solved_ns when shed
  std::int64_t solved_ns = 0;    ///< decision completion (virtual)
  std::int64_t cost_ns = 0;      ///< virtual solve cost; solved - dequeued
  std::int64_t latency_ns = 0;   ///< arrival → terminal (0 when deferred)
  std::int64_t wall_ns = 0;      ///< informational wall clock; not checked
};

/// Pipe-separated text form, one span per payload — the format of the
/// ring-buffer dump written next to the journal on crash/interrupt.
std::string serialize(const RequestSpan& s);
/// Strict parse; throws util::Error on any malformed field.
RequestSpan parse_request_span(const std::string& payload);

/// Chrome trace_event JSON with one "requests" process, one thread per
/// trace seq, and a lossless `vc2mSpans` array; opens in ui.perfetto.dev.
void write_span_trace(std::ostream& os, std::span<const RequestSpan> spans);
void write_span_trace_file(const std::string& path,
                           std::span<const RequestSpan> spans);
/// Re-import the `vc2mSpans` array. Throws util::Error when absent or
/// malformed.
std::vector<RequestSpan> read_span_trace(std::istream& is);
std::vector<RequestSpan> read_span_trace_file(const std::string& path);

struct SpanViolation {
  std::uint64_t seq = 0;
  unsigned attempt = 0;
  std::string what;
};

struct SpanCheckResult {
  std::size_t spans = 0;             ///< spans examined
  std::size_t total_violations = 0;  ///< including those past the cap
  std::vector<SpanViolation> violations;

  bool ok() const { return total_violations == 0; }
  /// One-line verdict, e.g. "OK: 120 spans, 0 violations".
  std::string summary() const;
};

/// Structural invariants: queued ≤ dequeued ≤ solved, cost == solved −
/// dequeued, (seq, attempt) unique, successive attempts of one seq nest
/// without overlap (attempt k+1 queued ≥ attempt k solved), and a retry
/// only follows a "deferred" outcome (the one outcome name this layer
/// knows). Spans may arrive in any order; violations past
/// `max_violations` are counted, not stored.
SpanCheckResult check_request_spans(std::span<const RequestSpan> spans,
                                    std::size_t max_violations = 32);

}  // namespace vc2m::obs
