// Minimal JSON layer shared by the obs report readers and writers.
//
// vc2m writes two JSON artifact families — vc2m-bench-report/1 and
// vc2m-explain-report/1 — and reads both back (perfdiff, explain
// round-trip). The reader is a small recursive-descent parser with no
// third-party dependency; it accepts exactly the documents the writers
// produce plus ordinary whitespace variation, and it is deliberately
// strict where lenience would hide corruption:
//
//  - duplicate object keys are rejected with the byte offset of the second
//    occurrence (a truncated-then-rewritten report would otherwise have one
//    of its values silently shadowed);
//  - non-finite numbers (NaN / Infinity / values overflowing a double) are
//    rejected with their byte offset — they are not valid JSON, and a NaN
//    that slipped into a gate comparison would poison every verdict.
//
// Errors throw util::Error with "<what> JSON: ... at offset N" messages,
// where <what> names the artifact being parsed.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace vc2m::obs::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;
  /// Byte offset of this value's first character in the parsed document,
  /// so semantic validators (unknown key, wrong type) can point at the
  /// exact position the way the parser's own errors do.
  std::size_t offset = 0;
  /// For an object member's value: byte offset of its key's opening quote.
  std::size_t key_offset = 0;

  /// Object member lookup (kObject only); nullptr when absent. Keys are
  /// unique — parse() rejects duplicates.
  const Value* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

/// Parse one complete JSON document. `what` names the artifact in error
/// messages (e.g. "bench report"). Throws util::Error on malformed input,
/// trailing garbage, duplicate object keys, or non-finite numbers.
Value parse(const std::string& text, const std::string& what);

/// Escape a string for embedding between double quotes.
std::string escape(const std::string& s);

/// Serialize a finite double ("%.9g"); non-finite values write "0", keeping
/// every emitted artifact parseable by the strict reader above.
std::string number(double v);

}  // namespace vc2m::obs::json
