// MetricsRecorder: a sim::SimObserver that streams semantic simulator
// events into a MetricsRegistry.
//
// Live (per-event) metrics:
//   task.<i>.response_ratio      histogram of response time / period
//   task.<i>.misses              counter
//   vcpu.<j>.budget_fraction     histogram of consumed / budget per period
//   vcpu.<j>.overruns            counter of budget-exhausted periods
//   core.<k>.throttles           counter of throttle windows
//   core.<k>.throttled_ns        counter of nanoseconds spent throttled
//   sim.response_ratio           the all-tasks histogram
//
// Fault-injection / enforcement metrics (sim/faults.h, sim/enforcement.h):
//   fault.<kind>                 counter per injected fault kind
//   sim.faults_injected          counter across all kinds
//   task.<i>.killed / deferred   enforcement actions against the task
//   vcpu.<j>.budget_overruns     declared (non-strict) VCPU overruns
//   enforce.*                    global enforcement action counters
//
// finalize() folds the end-of-run SimStats in as gauges:
//   core.<k>.busy_fraction / throttled_fraction / idle_fraction
//   sim.jobs_released / jobs_completed / deadline_misses / ...
//
// record_alloc_counters() publishes an allocator run (util::AllocCounters)
// under alloc.* so one registry can carry a whole experiment.
#pragma once

#include "obs/metrics.h"
#include "sim/hooks.h"
#include "sim/simulation.h"
#include "util/instrument.h"

namespace vc2m::obs {

/// Bucket edges for ratio-of-allowance histograms (response/period,
/// consumed/budget): fine below 1.0 — the region that proves schedulability
/// margins — plus overload buckets above.
const std::vector<double>& ratio_bounds();

class MetricsRecorder : public sim::SimObserver {
 public:
  /// The registry must outlive the recorder; the recorder must outlive the
  /// simulation it observes.
  explicit MetricsRecorder(MetricsRegistry& registry) : reg_(registry) {}

  void on_job_complete(std::size_t task, util::Time response,
                       util::Time period, bool missed) override;
  void on_vcpu_period_end(std::size_t vcpu, util::Time consumed,
                          util::Time budget, bool exhausted) override;
  void on_throttle_end(std::size_t core, util::Time duration) override;
  void on_fault_injected(sim::FaultKind kind) override;
  void on_job_killed(std::size_t task) override;
  void on_job_deferred(std::size_t task) override;
  void on_task_suspended(std::size_t task) override;
  void on_task_resumed(std::size_t task) override;
  void on_vcpu_budget_overrun(std::size_t vcpu, util::Time overdraw) override;

  /// Fold the run's final statistics into the registry (per-core busy /
  /// throttled / idle fractions and the global counters).
  void finalize(const sim::SimStats& stats, util::Time duration);

  MetricsRegistry& registry() { return reg_; }

 private:
  MetricsRegistry& reg_;
};

/// Publish one allocator run's effort counters under alloc.*.
void record_alloc_counters(MetricsRegistry& registry,
                           const util::AllocCounters& counters);

}  // namespace vc2m::obs
