// Trace invariant checker: replays a simulator trace and verifies the
// properties the vC2M design guarantees by construction.
//
// Checked on any trace (no configuration needed):
//   1. at most one VCPU occupies a core at a time, and schedule/deschedule
//      events pair up (no deschedule of an idle core, no double schedule);
//   2. nothing executes on a throttled core — no VCPU is scheduled onto it,
//      no task is dispatched on it, and a VCPU running when the throttle
//      hits is descheduled at that same instant;
//   3. every job completion and deadline miss refers to a previously
//      released, still-outstanding job (no duplicate completions).
//
// Checked when the trace's configuration is supplied (from_sim):
//   4. a VCPU's core occupancy within one server period never exceeds its
//      budget (occupancy is the budget in this model — idle budget burn and
//      switch overhead included);
//   5. every job whose deadline falls inside the horizon is matched by a
//      completion or a deadline miss.
//
// The config-gated checks assume static VCPU parameters; traces produced
// with schedule_vcpu_update in play should be checked without a config.
//
// Events must be in recorded (causal) order — same-timestamp sequences like
// throttle→deschedule are meaningful in that order. Traces re-imported via
// obs::read_trace_file preserve it.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "sim/simulation.h"
#include "sim/trace.h"

namespace vc2m::obs {

struct TraceCheckConfig {
  std::vector<util::Time> vcpu_budgets;  ///< empty: skip the budget check
  std::vector<int> vcpu_cores;           ///< empty: skip the placement check
  std::vector<util::Time> task_periods;  ///< empty: skip unmatched releases
  /// End of the simulated window; zero = unknown (skips unmatched releases).
  util::Time horizon = util::Time::zero();
  /// Reporting cap; violations beyond it are counted, not stored.
  std::size_t max_violations = 32;

  static TraceCheckConfig from_sim(const sim::SimConfig& cfg,
                                   util::Time horizon);
};

struct TraceViolation {
  util::Time when;
  std::string what;
};

struct TraceCheckResult {
  std::size_t events = 0;            ///< events examined
  std::size_t total_violations = 0;  ///< including those past the cap
  std::vector<TraceViolation> violations;
  std::uint64_t releases = 0, completions = 0, misses = 0;

  bool ok() const { return total_violations == 0; }
  /// One-line verdict, e.g. "OK: 1234 events, 57 jobs, 0 violations".
  std::string summary() const;
};

TraceCheckResult check_trace(std::span<const sim::TraceEvent> events,
                             const TraceCheckConfig& cfg = {});

}  // namespace vc2m::obs
