#include "obs/metrics.h"

#include <algorithm>

namespace vc2m::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  VC2M_CHECK_MSG(!bounds_.empty(), "histogram needs at least one bucket edge");
  VC2M_CHECK_MSG(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bucket edges must be ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::add(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  ++counts_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
}

double Histogram::quantile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Nearest-rank over the cumulative bucket counts.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1)) + 1;
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += counts_[i];
    if (cum >= rank)
      return i < bounds_.size() ? bounds_[i] : max_;  // overflow: observed max
  }
  return max_;
}

void MetricsRegistry::check_unique(const std::string& name, int self) const {
  VC2M_CHECK_MSG((self == 0 || counters_.find(name) == counters_.end()) &&
                     (self == 1 || gauges_.find(name) == gauges_.end()) &&
                     (self == 2 || histograms_.find(name) == histograms_.end()),
                 "metric '" << name << "' already registered as another kind");
}

Counter& MetricsRegistry::counter(const std::string& name) {
  check_unique(name, 0);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  check_unique(name, 1);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  check_unique(name, 2);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram(std::move(bounds))).first->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(size());
  for (const auto& [name, c] : counters_)
    out.push_back({name, MetricSample::Kind::kCounter,
                   static_cast<double>(c.value()), c.value(), 0, 0});
  for (const auto& [name, g] : gauges_)
    out.push_back({name, MetricSample::Kind::kGauge, g.value(), 0, 0, 0});
  for (const auto& [name, h] : histograms_)
    out.push_back({name, MetricSample::Kind::kHistogram, h.mean(), h.count(),
                   h.min(), h.max(), h.quantile(0.50), h.quantile(0.95),
                   h.quantile(0.99)});
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace vc2m::obs
