#include "obs/trace_export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/file.h"

namespace vc2m::obs {

namespace {

constexpr int kCorePid = 1;   ///< Chrome "process" grouping the core tracks
constexpr int kVcpuPid = 2;   ///< ... and the VCPU tracks
constexpr int kTelemetryPid = 3;  ///< counter tracks (pool telemetry etc.)

/// Chrome `ts` is in microseconds; three decimals keep ns precision.
std::string ts_us(util::Time t) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(t.raw_ns()) / 1e3);
  return buf;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

struct JsonWriter {
  std::ostream& os;
  bool first = true;
  void line(const std::string& s) {
    os << (first ? "" : ",\n") << s;
    first = false;
  }
};

void meta_event(JsonWriter& w, int pid, int tid, const char* key,
                const std::string& name) {
  std::ostringstream os;
  os << "{\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"name\":\"" << key << "\",\"args\":{\"name\":\""
     << json_escape(name) << "\"}}";
  w.line(os.str());
}

void complete_event(JsonWriter& w, int pid, int tid, const char* cat,
                    const std::string& name, util::Time start,
                    util::Time end) {
  std::ostringstream os;
  os << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << ts_us(start) << ",\"dur\":" << ts_us(end - start)
     << ",\"cat\":\"" << cat << "\",\"name\":\"" << json_escape(name)
     << "\"}";
  w.line(os.str());
}

void instant_event(JsonWriter& w, int pid, int tid, const char* scope,
                   const char* cat, const std::string& name, util::Time at,
                   std::int32_t task = -1, std::int64_t job = -1) {
  std::ostringstream os;
  os << "{\"ph\":\"i\",\"pid\":" << pid << ",\"tid\":" << tid
     << ",\"ts\":" << ts_us(at) << ",\"s\":\"" << scope << "\",\"cat\":\""
     << cat << "\",\"name\":\"" << json_escape(name) << "\"";
  if (task >= 0) {
    os << ",\"args\":{\"task\":" << task;
    if (job >= 0) os << ",\"job\":" << job;
    os << "}";
  }
  os << "}";
  w.line(os.str());
}

void counter_event(JsonWriter& w, const std::string& track, util::Time at,
                   double value) {
  char num[40];
  std::snprintf(num, sizeof num, "%.3f", value);
  std::ostringstream os;
  os << "{\"ph\":\"C\",\"pid\":" << kTelemetryPid << ",\"tid\":0,\"ts\":"
     << ts_us(at) << ",\"name\":\"" << json_escape(track)
     << "\",\"args\":{\"value\":" << num << "}}";
  w.line(os.str());
}

std::string task_label(const TraceMeta& meta, std::int32_t task) {
  if (task >= 0 && static_cast<std::size_t>(task) < meta.task_labels.size() &&
      !meta.task_labels[static_cast<std::size_t>(task)].empty())
    return meta.task_labels[static_cast<std::size_t>(task)];
  return "task " + std::to_string(task);
}

}  // namespace

TraceMeta TraceMeta::from_config(const sim::SimConfig& cfg) {
  TraceMeta m;
  m.num_cores = cfg.num_cores;
  m.vcpu_core.reserve(cfg.vcpus.size());
  m.vcpu_vm.reserve(cfg.vcpus.size());
  for (const auto& v : cfg.vcpus) {
    m.vcpu_core.push_back(static_cast<int>(v.core));
    m.vcpu_vm.push_back(v.vm);
  }
  return m;
}

void write_chrome_trace(std::ostream& os,
                        std::span<const sim::TraceEvent> events,
                        const TraceMeta& meta) {
  // Track counts: declared sizes, widened by whatever the events mention.
  std::size_t num_cores = meta.num_cores;
  std::size_t num_vcpus = meta.vcpu_core.size();
  util::Time end = util::Time::zero();
  for (const auto& ev : events) {
    if (ev.core >= 0)
      num_cores = std::max(num_cores, static_cast<std::size_t>(ev.core) + 1);
    if (ev.vcpu >= 0)
      num_vcpus = std::max(num_vcpus, static_cast<std::size_t>(ev.vcpu) + 1);
    end = util::max(end, ev.when);
  }

  os << "{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {\"generator\": "
        "\"vc2m\", \"events\": \""
     << events.size() << "\"},\n\"vc2mEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& ev = events[i];
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"t\":%" PRId64 ",\"k\":%d,\"c\":%d,\"v\":%d,\"x\":%d,"
                  "\"j\":%" PRId64 "}",
                  ev.when.raw_ns(), static_cast<int>(ev.kind), ev.core,
                  ev.vcpu, ev.task, ev.job);
    os << buf << (i + 1 < events.size() ? ",\n" : "\n");
  }
  os << "],\n\"traceEvents\": [\n";

  JsonWriter w{os};
  meta_event(w, kCorePid, 0, "process_name", "cores");
  meta_event(w, kVcpuPid, 0, "process_name", "VCPUs");
  for (std::size_t k = 0; k < num_cores; ++k)
    meta_event(w, kCorePid, static_cast<int>(k), "thread_name",
               "core " + std::to_string(k));
  for (std::size_t j = 0; j < num_vcpus; ++j) {
    std::string name = "vcpu " + std::to_string(j);
    if (j < meta.vcpu_vm.size() && meta.vcpu_vm[j] >= 0)
      name += " (vm " + std::to_string(meta.vcpu_vm[j]) + ")";
    meta_event(w, kVcpuPid, static_cast<int>(j), "thread_name", name);
  }

  // Counter tracks ("C" events) live in their own "telemetry" process so
  // the schedule tracks stay uncluttered. Nothing is emitted when no track
  // has samples, keeping golden traces byte-identical.
  bool any_counters = false;
  for (const auto& track : meta.counters)
    any_counters = any_counters || !track.samples.empty();
  if (any_counters) {
    meta_event(w, kTelemetryPid, 0, "process_name", "telemetry");
    for (const auto& track : meta.counters)
      for (const auto& [at, value] : track.samples)
        counter_event(w, track.name, at, value);
  }

  // Single pass: pair schedule/deschedule and throttle/unthrottle into
  // complete ("X") events, task dispatches into VCPU-track segments, the
  // rest into instants. Events are in recorded (causal) order.
  struct Open {
    bool active = false;
    util::Time start;
    std::int32_t id = -1;  // vcpu on core tracks, task on vcpu tracks
  };
  std::vector<Open> core_run(num_cores), core_throttle(num_cores),
      vcpu_task(num_vcpus);

  auto close_task_segment = [&](std::int32_t vcpu, util::Time at) {
    Open& o = vcpu_task[static_cast<std::size_t>(vcpu)];
    if (!o.active) return;
    complete_event(w, kVcpuPid, vcpu, "task", task_label(meta, o.id),
                   o.start, at);
    o.active = false;
  };

  for (const auto& ev : events) {
    switch (ev.kind) {
      case sim::TraceKind::kVcpuSchedule: {
        Open& o = core_run[static_cast<std::size_t>(ev.core)];
        o = {true, ev.when, ev.vcpu};
        break;
      }
      case sim::TraceKind::kVcpuDeschedule: {
        Open& o = core_run[static_cast<std::size_t>(ev.core)];
        if (o.active)
          complete_event(w, kCorePid, ev.core, "sched",
                         "vcpu " + std::to_string(o.id), o.start, ev.when);
        o.active = false;
        if (ev.vcpu >= 0) close_task_segment(ev.vcpu, ev.when);
        break;
      }
      case sim::TraceKind::kTaskDispatch: {
        close_task_segment(ev.vcpu, ev.when);
        vcpu_task[static_cast<std::size_t>(ev.vcpu)] = {true, ev.when,
                                                        ev.task};
        break;
      }
      case sim::TraceKind::kCoreThrottle:
        core_throttle[static_cast<std::size_t>(ev.core)] = {true, ev.when,
                                                            ev.core};
        break;
      case sim::TraceKind::kCoreUnthrottle: {
        Open& o = core_throttle[static_cast<std::size_t>(ev.core)];
        if (o.active)
          complete_event(w, kCorePid, ev.core, "bw", "throttled", o.start,
                         ev.when);
        o.active = false;
        break;
      }
      case sim::TraceKind::kJobRelease:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "job",
                      "release " + task_label(meta, ev.task), ev.when,
                      ev.task, ev.job);
        break;
      case sim::TraceKind::kJobComplete:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "job",
                      "complete " + task_label(meta, ev.task), ev.when,
                      ev.task, ev.job);
        break;
      case sim::TraceKind::kDeadlineMiss:
        instant_event(w, kVcpuPid, ev.vcpu, "g", "job",
                      "MISS " + task_label(meta, ev.task), ev.when, ev.task,
                      ev.job);
        break;
      case sim::TraceKind::kVcpuRelease:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "server", "replenish",
                      ev.when);
        break;
      case sim::TraceKind::kVcpuBudgetExhausted:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "server",
                      "budget-exhausted", ev.when);
        break;
      case sim::TraceKind::kHypercall:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "sync", "hypercall",
                      ev.when, ev.task);
        break;
      case sim::TraceKind::kBwRefill:
        instant_event(w, kCorePid, 0, "p", "bw", "bw-refill", ev.when);
        break;
      case sim::TraceKind::kFaultWcetOverrun:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "fault",
                      "overrun " + task_label(meta, ev.task), ev.when,
                      ev.task, ev.job);
        break;
      case sim::TraceKind::kFaultReleaseJitter:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "fault",
                      "jitter " + task_label(meta, ev.task), ev.when,
                      ev.task);
        break;
      case sim::TraceKind::kFaultRefillDelay:
        instant_event(w, kCorePid, 0, "p", "fault", "refill-delay", ev.when);
        break;
      case sim::TraceKind::kPartitionRevoke:
        instant_event(w, kCorePid, ev.core, "t", "fault",
                      "revoke->" + std::to_string(ev.job) + "w", ev.when);
        break;
      case sim::TraceKind::kPartitionRestore:
        instant_event(w, kCorePid, ev.core, "t", "fault",
                      "restore->" + std::to_string(ev.job) + "w", ev.when);
        break;
      case sim::TraceKind::kCosProgram:
        instant_event(w, kCorePid, ev.core, "t", "cos",
                      "cos " + std::to_string(ev.job) + "w", ev.when);
        break;
      case sim::TraceKind::kJobKilled:
        instant_event(w, kVcpuPid, ev.vcpu, "g", "job",
                      "KILL " + task_label(meta, ev.task), ev.when, ev.task,
                      ev.job);
        break;
      case sim::TraceKind::kJobDeferred:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "job",
                      "defer " + task_label(meta, ev.task), ev.when, ev.task,
                      ev.job);
        break;
      case sim::TraceKind::kTaskSuspend:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "enforce",
                      "suspend " + task_label(meta, ev.task), ev.when,
                      ev.task);
        break;
      case sim::TraceKind::kTaskResume:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "enforce",
                      "resume " + task_label(meta, ev.task), ev.when,
                      ev.task);
        break;
      case sim::TraceKind::kVcpuBudgetOverrun:
        instant_event(w, kVcpuPid, ev.vcpu, "t", "server", "budget-overrun",
                      ev.when);
        break;
      case sim::TraceKind::kCount_:
        break;
    }
  }

  // Close whatever is still open at the last event's timestamp so the
  // viewer shows the full extent of the run.
  for (std::size_t k = 0; k < num_cores; ++k) {
    if (core_run[k].active)
      complete_event(w, kCorePid, static_cast<int>(k), "sched",
                     "vcpu " + std::to_string(core_run[k].id),
                     core_run[k].start, end);
    if (core_throttle[k].active)
      complete_event(w, kCorePid, static_cast<int>(k), "bw", "throttled",
                     core_throttle[k].start, end);
  }
  for (std::size_t j = 0; j < num_vcpus; ++j)
    if (vcpu_task[j].active)
      complete_event(w, kVcpuPid, static_cast<int>(j), "task",
                     task_label(meta, vcpu_task[j].id), vcpu_task[j].start,
                     end);

  os << "\n]\n}\n";
}

void write_trace_csv(std::ostream& os,
                     std::span<const sim::TraceEvent> events) {
  os << "time_ns,kind,core,vcpu,task,job\n";
  for (const auto& ev : events)
    os << ev.when.raw_ns() << ',' << sim::to_string(ev.kind) << ','
       << ev.core << ',' << ev.vcpu << ',' << ev.task << ',' << ev.job
       << '\n';
}

std::vector<sim::TraceEvent> read_trace_csv(std::istream& is) {
  std::vector<sim::TraceEvent> out;
  std::string line;
  std::getline(is, line);  // header
  VC2M_CHECK_MSG(line.rfind("time_ns,", 0) == 0,
                 "not a vc2m trace CSV (missing header)");
  std::size_t lineno = 1;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string cell;
    std::vector<std::string> cells;
    while (std::getline(ls, cell, ',')) cells.push_back(cell);
    VC2M_CHECK_MSG(cells.size() == 6,
                   "trace CSV line " << lineno << ": expected 6 fields");
    const auto kind = sim::trace_kind_from_string(cells[1]);
    VC2M_CHECK_MSG(kind.has_value(), "trace CSV line "
                                         << lineno << ": unknown kind '"
                                         << cells[1] << "'");
    sim::TraceEvent ev;
    ev.when = util::Time::ns(std::stoll(cells[0]));
    ev.kind = *kind;
    ev.core = std::stoi(cells[2]);
    ev.vcpu = std::stoi(cells[3]);
    ev.task = std::stoi(cells[4]);
    ev.job = std::stoll(cells[5]);
    out.push_back(ev);
  }
  return out;
}

std::vector<sim::TraceEvent> read_chrome_trace(std::istream& is) {
  std::vector<sim::TraceEvent> out;
  std::string line;
  bool in_events = false, found = false;
  while (std::getline(is, line)) {
    if (!in_events) {
      if (line.rfind("\"vc2mEvents\"", 0) == 0) in_events = found = true;
      continue;
    }
    if (line.rfind("]", 0) == 0) break;
    std::int64_t t = 0, j = -1;
    int k = 0, core = -1, vcpu = -1, task = -1;
    const int matched = std::sscanf(
        line.c_str(),
        "{\"t\":%" SCNd64 ",\"k\":%d,\"c\":%d,\"v\":%d,\"x\":%d,\"j\":%" SCNd64
        "}",
        &t, &k, &core, &vcpu, &task, &j);
    VC2M_CHECK_MSG(matched == 6, "malformed vc2mEvents record: " << line);
    VC2M_CHECK_MSG(
        k >= 0 && k < static_cast<int>(sim::TraceKind::kCount_),
        "vc2mEvents record with unknown kind " << k);
    out.push_back({util::Time::ns(t), static_cast<sim::TraceKind>(k), core,
                   vcpu, task, j});
  }
  VC2M_CHECK_MSG(found, "no vc2mEvents array (not a vc2m-written trace?)");
  return out;
}

namespace {
bool has_suffix(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}
}  // namespace

void write_trace_file(const std::string& path,
                      std::span<const sim::TraceEvent> events,
                      const TraceMeta& meta) {
  auto f = util::open_output_file(path, "trace file");
  if (has_suffix(path, ".csv"))
    write_trace_csv(f, events);
  else
    write_chrome_trace(f, events, meta);
  util::close_output_file(f, path, "trace file");
}

std::vector<sim::TraceEvent> read_trace_file(const std::string& path) {
  std::ifstream f(path);
  VC2M_CHECK_MSG(f.good(), "cannot open " << path);
  return has_suffix(path, ".csv") ? read_trace_csv(f) : read_chrome_trace(f);
}

}  // namespace vc2m::obs
