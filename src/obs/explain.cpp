#include "obs/explain.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <limits>
#include <ostream>
#include <set>
#include <sstream>

#include "analysis/schedulability.h"
#include "obs/bench_report.h"
#include "obs/json.h"
#include "util/error.h"
#include "util/file.h"

namespace vc2m::obs {

namespace {

std::string fmt(const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof buf, format, args);
  va_end(args);
  return buf;
}

/// Specificity rank of a VM-attributed rejecting event: lower wins. An
/// oversized VCPU or an infeasible budget surface names the real cause; a
/// phase outcome only restates that something failed.
int vm_rank(DecisionKind k) {
  switch (k) {
    case DecisionKind::kVcpuScreen: return 0;
    case DecisionKind::kBudgetPoint: return 1;
    case DecisionKind::kBinPack: return 2;
    case DecisionKind::kHvAttempt: return 3;
    case DecisionKind::kVmOutcome: return 4;
    case DecisionKind::kAdmitVerdict: return 5;
    default: return 9;
  }
}

/// Specificity rank of a system-level rejecting event (no single VM).
int system_rank(DecisionKind k) {
  switch (k) {
    case DecisionKind::kCapacityScreen: return 0;
    case DecisionKind::kGrantExhausted: return 1;
    case DecisionKind::kMigration: return 2;
    case DecisionKind::kExactPartition: return 3;
    case DecisionKind::kBinPack: return 4;
    case DecisionKind::kHvAttempt: return 5;
    case DecisionKind::kVmOutcome: return 6;
    case DecisionKind::kVerdict: return 8;
    default: return 9;
  }
}

std::string constraint_detail(const DecisionEvent& e) {
  switch (e.constraint) {
    case DecisionConstraint::kNoFeasibleBudget:
      return fmt("no (c,b) cell with Θ≤Π at (c=%d,b=%d); best cell short by "
                 "%.3g budget",
                 e.cache, e.bw, e.margin);
    case DecisionConstraint::kVcpuExceedsCore:
      return fmt("VCPU #%d needs utilization %.3g even at the full "
                 "allocation (c=%d,b=%d) — over a whole core by %.3g",
                 e.entity, e.value, e.cache, e.bw, e.margin);
    case DecisionConstraint::kTaskOverflowsVcpu:
      return fmt("an item of weight %.3g overflows a unit bin by %.3g",
                 e.value, e.margin);
    case DecisionConstraint::kUtilizationExceedsCores:
      return fmt("total best-case demand %.3g exceeds %d cores by %.3g",
                 e.value, e.core, e.margin);
    case DecisionConstraint::kCoreOverUtilized:
      return fmt("core %d stays at utilization %.3g — over by %.3g",
                 e.core, e.value, e.margin);
    case DecisionConstraint::kCachePoolExhausted:
      return fmt("cache partition pool exhausted; closest core still %.3g "
                 "over capacity",
                 e.margin);
    case DecisionConstraint::kBwPoolExhausted:
      return fmt("bandwidth partition pool exhausted; closest core still "
                 "%.3g over capacity",
                 e.margin);
    case DecisionConstraint::kNoBeneficialGrant:
      return fmt("no remaining partition grant reduces utilization; closest "
                 "core still %.3g over capacity",
                 e.margin);
    case DecisionConstraint::kCoreLimit:
      return fmt("no packing onto up to %d cores admits the load", e.core);
    case DecisionConstraint::kNoFeasiblePartition:
      return "no cache/bandwidth split over the pools is feasible";
    case DecisionConstraint::kNone: break;
  }
  return describe(e);
}

/// The binding rejection for one VM: the most specific rejecting event
/// attributed to it, with budget-surface rejections aggregated (the margin
/// of the *best* cell is what the VM was short by).
VmRejection vm_rejection(int vm, const std::vector<DecisionEvent>& events) {
  VmRejection out;
  out.vm = vm;
  const DecisionEvent* best = nullptr;
  int best_rank = std::numeric_limits<int>::max();
  std::size_t budget_cells = 0;
  for (const auto& e : events) {
    if (e.accepted || e.vm != vm) continue;
    const int rank = vm_rank(e.kind);
    if (e.kind == DecisionKind::kBudgetPoint) ++budget_cells;
    if (rank < best_rank ||
        (rank == best_rank && best && e.margin < best->margin)) {
      best_rank = rank;
      best = &e;
    }
  }
  if (!best) return out;  // caller falls back to the system-level cause
  out.constraint = best->constraint;
  out.margin = best->margin;
  out.detail = constraint_detail(*best);
  if (best->kind == DecisionKind::kBudgetPoint && budget_cells > 1)
    out.detail += fmt(" (%zu cells infeasible)", budget_cells);
  return out;
}

/// The system-level binding rejection (capacity screens, grant exhaustion)
/// — attached to every rejected VM without a cause of its own.
const DecisionEvent* system_cause(const std::vector<DecisionEvent>& events) {
  const DecisionEvent* best = nullptr;
  int best_rank = std::numeric_limits<int>::max();
  for (const auto& e : events) {
    if (e.accepted || e.vm >= 0) continue;
    const int rank = system_rank(e.kind);
    if (rank < best_rank ||
        (rank == best_rank && best && e.margin < best->margin)) {
      best_rank = rank;
      best = &e;
    }
  }
  return best;
}

HeadroomReport build_headroom(const core::SolveResult& result,
                              const model::PlatformSpec& platform) {
  HeadroomReport h;
  const auto& grid = platform.grid;
  const auto& mapping = result.mapping;
  std::span<const model::Vcpu> vcpus(result.vcpus);
  unsigned used_c = 0, used_b = 0;
  for (unsigned k = 0; k < mapping.cores_used; ++k) {
    const auto& members = mapping.vcpus_on_core[k];
    CoreHeadroom ch;
    ch.core = k;
    ch.cache = mapping.cache[k];
    ch.bw = mapping.bw[k];
    ch.vcpus = members.size();
    ch.utilization =
        analysis::core_utilization(vcpus, members, ch.cache, ch.bw);
    ch.slack = 1.0 - ch.utilization;
    // Shrink each resource independently, one partition at a time, for as
    // long as the core stays schedulable — purely counterfactual probing,
    // the allocation itself is never modified.
    unsigned c = ch.cache;
    while (c > grid.c_min &&
           analysis::core_schedulable(vcpus, members, c - 1, ch.bw))
      --c;
    ch.reclaimable_cache = ch.cache - c;
    unsigned b = ch.bw;
    while (b > grid.b_min &&
           analysis::core_schedulable(vcpus, members, ch.cache, b - 1))
      --b;
    ch.reclaimable_bw = ch.bw - b;
    used_c += ch.cache;
    used_b += ch.bw;
    h.cores.push_back(ch);
  }
  h.spare_cache = platform.total_cache() - used_c;
  h.spare_bw = platform.total_bw() - used_b;
  return h;
}

// ---------------------------------------------------------------------------
// JSON (schema "vc2m-explain-report/1", written in the bench-report style).

void write_event(std::ostream& os, const DecisionEvent& e) {
  os << "{\"kind\": \"" << to_string(e.kind) << "\", \"accepted\": "
     << (e.accepted ? "true" : "false") << ", \"constraint\": \""
     << to_string(e.constraint) << "\", \"vm\": " << e.vm
     << ", \"entity\": " << e.entity << ", \"core\": " << e.core
     << ", \"cache\": " << e.cache << ", \"bw\": " << e.bw
     << ", \"value\": " << json::number(e.value)
     << ", \"margin\": " << json::number(e.margin) << "}";
}

double get_number(const json::Value& obj, const std::string& key) {
  const json::Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == json::Value::Kind::kNumber,
                 "explain report JSON: missing number field '" << key << "'");
  return v->number;
}

std::string get_string(const json::Value& obj, const std::string& key) {
  const json::Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == json::Value::Kind::kString,
                 "explain report JSON: missing string field '" << key << "'");
  return v->str;
}

bool get_bool(const json::Value& obj, const std::string& key) {
  const json::Value* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == json::Value::Kind::kBool,
                 "explain report JSON: missing boolean field '" << key << "'");
  return v->boolean;
}

DecisionEvent parse_event(const json::Value& v) {
  VC2M_CHECK_MSG(v.kind == json::Value::Kind::kObject,
                 "explain report JSON: events must be objects");
  DecisionEvent e;
  const std::string kind = get_string(v, "kind");
  VC2M_CHECK_MSG(decision_kind_from_string(kind, e.kind),
                 "explain report JSON: unknown event kind '" << kind << "'");
  e.accepted = get_bool(v, "accepted");
  const std::string constraint = get_string(v, "constraint");
  VC2M_CHECK_MSG(decision_constraint_from_string(constraint, e.constraint),
                 "explain report JSON: unknown constraint '" << constraint
                                                             << "'");
  e.vm = static_cast<std::int32_t>(get_number(v, "vm"));
  e.entity = static_cast<std::int32_t>(get_number(v, "entity"));
  e.core = static_cast<std::int32_t>(get_number(v, "core"));
  e.cache = static_cast<std::int32_t>(get_number(v, "cache"));
  e.bw = static_cast<std::int32_t>(get_number(v, "bw"));
  e.value = get_number(v, "value");
  e.margin = get_number(v, "margin");
  return e;
}

}  // namespace

ExplainReport build_explain_report(const DecisionLog& log,
                                   const core::SolveResult& result,
                                   const model::Taskset& tasks,
                                   const model::PlatformSpec& platform) {
  ExplainReport r;
  r.git_rev = build_git_rev();
  r.schedulable = result.schedulable;
  r.cores_used = result.mapping.cores_used;
  r.events = log.events();
  r.events_dropped = log.dropped();

  if (result.schedulable) {
    r.headroom = build_headroom(result, platform);
  } else {
    r.headroom.spare_cache = platform.total_cache();
    r.headroom.spare_bw = platform.total_bw();
    std::set<int> vms;
    for (const auto& t : tasks) vms.insert(t.vm);
    const DecisionEvent* fallback = system_cause(r.events);
    for (const int vm : vms) {
      VmRejection rej = vm_rejection(vm, r.events);
      if (rej.constraint == DecisionConstraint::kNone && fallback) {
        rej.constraint = fallback->constraint;
        rej.margin = fallback->margin;
        rej.detail = constraint_detail(*fallback);
      }
      if (rej.constraint == DecisionConstraint::kNone)
        rej.detail = r.events_dropped > 0
                         ? "no rejecting event retained (log truncated)"
                         : "no rejecting event recorded";
      r.rejections.push_back(std::move(rej));
    }
  }
  return r;
}

ExplainReport explain_solve(const core::Strategy& strategy,
                            const model::Taskset& tasks,
                            const model::PlatformSpec& platform,
                            const core::SolveConfig& cfg, util::Rng& rng,
                            core::SolveResult* out_result) {
  DecisionLogScope scope;
  core::SolveResult result = core::solve(strategy, tasks, platform, cfg, rng);
  ExplainReport r =
      build_explain_report(scope.log(), result, tasks, platform);
  r.strategy = strategy.key;
  r.config["strategy_display"] = strategy.display;
  r.config["cores"] = std::to_string(platform.cores);
  r.config["total_cache"] = std::to_string(platform.total_cache());
  r.config["total_bw"] = std::to_string(platform.total_bw());
  r.config["tasks"] = std::to_string(tasks.size());
  std::set<int> vms;
  for (const auto& t : tasks) vms.insert(t.vm);
  r.config["vms"] = std::to_string(vms.size());
  if (out_result) *out_result = std::move(result);
  return r;
}

void write_explain_report(std::ostream& os, const ExplainReport& r) {
  os << "{\n";
  os << "\"schema\": \"" << json::escape(r.schema) << "\",\n";
  os << "\"strategy\": \"" << json::escape(r.strategy) << "\",\n";
  os << "\"git_rev\": \"" << json::escape(r.git_rev) << "\",\n";

  os << "\"config\": {";
  bool first = true;
  for (const auto& [k, v] : r.config) {
    os << (first ? "\n" : ",\n") << "  \"" << json::escape(k) << "\": \""
       << json::escape(v) << "\"";
    first = false;
  }
  os << (first ? "" : "\n") << "},\n";

  os << "\"schedulable\": " << (r.schedulable ? "true" : "false") << ",\n";
  os << "\"cores_used\": " << r.cores_used << ",\n";

  os << "\"headroom\": {\"spare_cache\": " << r.headroom.spare_cache
     << ", \"spare_bw\": " << r.headroom.spare_bw << ", \"cores\": [";
  for (std::size_t i = 0; i < r.headroom.cores.size(); ++i) {
    const auto& c = r.headroom.cores[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"core\": " << c.core
       << ", \"cache\": " << c.cache << ", \"bw\": " << c.bw
       << ", \"vcpus\": " << c.vcpus
       << ", \"utilization\": " << json::number(c.utilization)
       << ", \"slack\": " << json::number(c.slack)
       << ", \"reclaimable_cache\": " << c.reclaimable_cache
       << ", \"reclaimable_bw\": " << c.reclaimable_bw << "}";
  }
  os << (r.headroom.cores.empty() ? "" : "\n") << "]},\n";

  os << "\"rejections\": [";
  for (std::size_t i = 0; i < r.rejections.size(); ++i) {
    const auto& rej = r.rejections[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"vm\": " << rej.vm
       << ", \"constraint\": \"" << to_string(rej.constraint)
       << "\", \"margin\": " << json::number(rej.margin) << ", \"detail\": \""
       << json::escape(rej.detail) << "\"}";
  }
  os << (r.rejections.empty() ? "" : "\n") << "],\n";

  os << "\"events_dropped\": " << r.events_dropped << ",\n";
  os << "\"events\": [";
  for (std::size_t i = 0; i < r.events.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "  ";
    write_event(os, r.events[i]);
  }
  os << (r.events.empty() ? "" : "\n") << "]\n";
  os << "}\n";
}

void write_explain_report_file(const std::string& path,
                               const ExplainReport& r) {
  auto f = util::open_output_file(path, "explain report");
  write_explain_report(f, r);
  util::close_output_file(f, path, "explain report");
}

ExplainReport read_explain_report(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const json::Value root = json::parse(buf.str(), "explain report");
  VC2M_CHECK_MSG(root.kind == json::Value::Kind::kObject,
                 "explain report JSON: top level must be an object");

  ExplainReport r;
  r.schema = get_string(root, "schema");
  VC2M_CHECK_MSG(r.schema.rfind("vc2m-explain-report/", 0) == 0,
                 "not a vc2m explain report (schema '" << r.schema << "')");
  r.strategy = get_string(root, "strategy");
  r.git_rev = get_string(root, "git_rev");
  if (const json::Value* cfg = root.find("config")) {
    VC2M_CHECK_MSG(cfg->kind == json::Value::Kind::kObject,
                   "explain report JSON: 'config' must be an object");
    for (const auto& [k, v] : cfg->object) {
      VC2M_CHECK_MSG(v.kind == json::Value::Kind::kString,
                     "explain report JSON: config values must be strings");
      r.config[k] = v.str;
    }
  }
  r.schedulable = get_bool(root, "schedulable");
  r.cores_used = static_cast<unsigned>(get_number(root, "cores_used"));

  const json::Value* h = root.find("headroom");
  VC2M_CHECK_MSG(h && h->kind == json::Value::Kind::kObject,
                 "explain report JSON: missing 'headroom' object");
  r.headroom.spare_cache =
      static_cast<unsigned>(get_number(*h, "spare_cache"));
  r.headroom.spare_bw = static_cast<unsigned>(get_number(*h, "spare_bw"));
  if (const json::Value* cores = h->find("cores")) {
    VC2M_CHECK_MSG(cores->kind == json::Value::Kind::kArray,
                   "explain report JSON: 'headroom.cores' must be an array");
    for (const auto& v : cores->array) {
      VC2M_CHECK_MSG(v.kind == json::Value::Kind::kObject,
                     "explain report JSON: headroom cores must be objects");
      CoreHeadroom c;
      c.core = static_cast<unsigned>(get_number(v, "core"));
      c.cache = static_cast<unsigned>(get_number(v, "cache"));
      c.bw = static_cast<unsigned>(get_number(v, "bw"));
      c.vcpus = static_cast<std::size_t>(get_number(v, "vcpus"));
      c.utilization = get_number(v, "utilization");
      c.slack = get_number(v, "slack");
      c.reclaimable_cache =
          static_cast<unsigned>(get_number(v, "reclaimable_cache"));
      c.reclaimable_bw =
          static_cast<unsigned>(get_number(v, "reclaimable_bw"));
      r.headroom.cores.push_back(c);
    }
  }

  if (const json::Value* rejs = root.find("rejections")) {
    VC2M_CHECK_MSG(rejs->kind == json::Value::Kind::kArray,
                   "explain report JSON: 'rejections' must be an array");
    for (const auto& v : rejs->array) {
      VC2M_CHECK_MSG(v.kind == json::Value::Kind::kObject,
                     "explain report JSON: rejections must be objects");
      VmRejection rej;
      rej.vm = static_cast<int>(get_number(v, "vm"));
      const std::string c = get_string(v, "constraint");
      VC2M_CHECK_MSG(decision_constraint_from_string(c, rej.constraint),
                     "explain report JSON: unknown constraint '" << c << "'");
      rej.margin = get_number(v, "margin");
      rej.detail = get_string(v, "detail");
      r.rejections.push_back(std::move(rej));
    }
  }

  r.events_dropped =
      static_cast<std::uint64_t>(get_number(root, "events_dropped"));
  if (const json::Value* evs = root.find("events")) {
    VC2M_CHECK_MSG(evs->kind == json::Value::Kind::kArray,
                   "explain report JSON: 'events' must be an array");
    for (const auto& v : evs->array) r.events.push_back(parse_event(v));
  }
  return r;
}

ExplainReport read_explain_report_file(const std::string& path) {
  std::ifstream f(path);
  VC2M_CHECK_MSG(f.good(), "cannot open " << path);
  return read_explain_report(f);
}

void render_explain(std::ostream& os, const ExplainReport& r,
                    bool show_events) {
  os << "strategy " << r.strategy;
  if (const auto it = r.config.find("strategy_display");
      it != r.config.end())
    os << " — " << it->second;
  os << " (rev " << r.git_rev << ")\n";
  if (r.schedulable) {
    os << "verdict: SCHEDULABLE on " << r.cores_used << " core"
       << (r.cores_used == 1 ? "" : "s") << "\n\n";
    os << "headroom per core:\n";
    os << "  core  cache  bw  vcpus   util  slack  reclaim(c)  reclaim(b)\n";
    for (const auto& c : r.headroom.cores) {
      os << fmt("  %4u  %5u  %2u  %5zu  %5.3f  %5.3f  %10u  %10u\n", c.core,
                c.cache, c.bw, c.vcpus, c.utilization, c.slack,
                c.reclaimable_cache, c.reclaimable_bw);
    }
    os << "spare pools: " << r.headroom.spare_cache << " cache, "
       << r.headroom.spare_bw << " bw partitions\n";
  } else {
    os << "verdict: NOT SCHEDULABLE\n\n";
    os << "rejection chain:\n";
    for (const auto& rej : r.rejections) {
      os << "  VM " << rej.vm << " rejected ["
         << to_string(rej.constraint) << "]: " << rej.detail;
      if (rej.margin > 0) os << fmt(" (margin %.3g)", rej.margin);
      os << "\n";
    }
  }
  os << "\nevents: " << r.events.size() << " recorded";
  if (r.events_dropped > 0) os << " (" << r.events_dropped << " dropped)";
  os << "\n";
  if (show_events)
    for (const auto& e : r.events) os << "  " << describe(e) << "\n";
}

}  // namespace vc2m::obs
