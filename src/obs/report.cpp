#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <string>

#include "util/table.h"

namespace vc2m::obs {

namespace {

std::string pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", fraction * 100.0);
  return buf;
}

std::string fmt(double v, int precision = 3) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

}  // namespace

void write_report(std::ostream& os, const sim::SimConfig& cfg,
                  const sim::SimStats& stats, const MetricsRegistry& registry,
                  util::Time duration, const util::AllocCounters* alloc) {
  os << "Simulated " << duration.to_ms() << " ms on " << cfg.num_cores
     << " core" << (cfg.num_cores == 1 ? "" : "s") << ": "
     << stats.jobs_released << " jobs released, " << stats.jobs_completed
     << " completed, " << stats.deadline_misses << " deadline miss"
     << (stats.deadline_misses == 1 ? "" : "es");
  if (stats.deadline_misses > 0)
    os << " (max tardiness " << stats.max_tardiness.to_ms() << " ms)";
  os << ".\n\n";

  {
    util::Table t({"core", "busy", "throttled", "idle", "throttles"});
    for (std::size_t k = 0; k < stats.core_busy_fraction.size(); ++k) {
      const double busy = stats.core_busy_fraction[k];
      const double throttled =
          duration.is_zero() || k >= stats.core_throttled_time.size()
              ? 0.0
              : stats.core_throttled_time[k].ratio(duration);
      const auto* throttles =
          registry.find_counter("core." + std::to_string(k) + ".throttles");
      t.add_row(k, pct(busy), pct(throttled),
                pct(std::max(0.0, 1.0 - busy - throttled)),
                throttles ? throttles->value() : 0);
    }
    t.print(os, "Cores");
    os << '\n';
  }

  {
    util::Table t({"task", "released", "completed", "misses", "max resp ms",
                   "max ratio", "mean ratio", "p95 ratio"});
    for (std::size_t i = 0; i < stats.per_task.size(); ++i) {
      const auto& ts = stats.per_task[i];
      const util::Time period =
          i < cfg.tasks.size() ? cfg.tasks[i].period : util::Time::zero();
      const double max_ratio =
          period.is_zero() ? 0.0 : ts.max_response.ratio(period);
      const auto* h = registry.find_histogram(
          "task." + std::to_string(i) + ".response_ratio");
      t.add_row(i, ts.released, ts.completed, ts.deadline_misses,
                fmt(ts.max_response.to_ms()), fmt(max_ratio),
                h ? fmt(h->mean()) : "-", h ? fmt(h->quantile(0.95)) : "-");
    }
    t.print(os, "Tasks (response time / period; ratio > 1 = deadline miss)");
    os << '\n';
  }

  {
    util::Table t({"vcpu", "core", "releases", "overruns", "consumed ms",
                   "mean budget frac"});
    for (std::size_t j = 0; j < stats.per_vcpu.size(); ++j) {
      const auto& vs = stats.per_vcpu[j];
      const auto* h = registry.find_histogram(
          "vcpu." + std::to_string(j) + ".budget_fraction");
      t.add_row(j, j < cfg.vcpus.size()
                       ? std::to_string(cfg.vcpus[j].core)
                       : std::string("-"),
                vs.releases, vs.exhaustions, fmt(vs.budget_consumed.to_ms()),
                h ? fmt(h->mean()) : "-");
    }
    t.print(os, "VCPUs (periodic servers)");
    os << '\n';
  }

  if (alloc) {
    util::Table t({"allocator metric", "value"});
    t.add_row("k-means runs", alloc->kmeans_runs);
    t.add_row("k-means iterations", alloc->kmeans_iterations);
    t.add_row("k-means final shift", fmt(alloc->kmeans_final_shift, 6));
    t.add_row("candidate packings", alloc->candidate_packings);
    t.add_row("admission tests", alloc->admission_tests);
    t.add_row("admission passed", alloc->admission_passed);
    t.add_row("dbf evaluations", alloc->dbf_evaluations);
    t.add_row("min-budget searches", alloc->budget_evaluations);
    t.add_row("budget memo hits", alloc->budget_cache_hits);
    t.add_row("core-load memo hits", alloc->load_cache_hits);
    t.add_row("arena bytes", alloc->arena_bytes);
    t.add_row("checkpoint set builds", alloc->soa_rebuilds);
    t.add_row("batched budget queries", alloc->inner_tasks);
    t.add_row("partition grants", alloc->partition_grants);
    t.add_row("vcpu migrations", alloc->vcpu_migrations);
    t.add_row("VM-level alloc seconds", fmt(alloc->vm_alloc_seconds, 6));
    t.add_row("HV-level alloc seconds", fmt(alloc->hv_alloc_seconds, 6));
    t.print(os, "Allocator effort");
    os << '\n';
  }
}

void write_metrics_dump(std::ostream& os, const MetricsRegistry& registry) {
  for (const auto& m : registry.snapshot()) {
    os << m.name << ' ';
    switch (m.kind) {
      case MetricSample::Kind::kCounter:
        os << static_cast<std::uint64_t>(m.value);
        break;
      case MetricSample::Kind::kGauge:
        os << fmt(m.value, 6);
        break;
      case MetricSample::Kind::kHistogram:
        os << "count=" << m.count << " mean=" << fmt(m.value, 6)
           << " min=" << fmt(m.min, 6) << " max=" << fmt(m.max, 6);
        break;
    }
    os << '\n';
    // Histograms get companion quantile lines so a dump diffs without
    // access to the live registry.
    if (m.kind == MetricSample::Kind::kHistogram) {
      os << m.name << ".p50 " << fmt(m.p50, 6) << '\n';
      os << m.name << ".p95 " << fmt(m.p95, 6) << '\n';
      os << m.name << ".p99 " << fmt(m.p99, 6) << '\n';
    }
  }
}

}  // namespace vc2m::obs
