#include "obs/trace_check.h"

#include <map>
#include <set>
#include <sstream>

namespace vc2m::obs {

namespace {

struct CoreState {
  std::int32_t running = -1;      // VCPU index, -1 = idle
  util::Time run_start;
  bool throttled = false;
  util::Time throttle_start;
  bool revoked = false;           // open partition-revocation window
  std::int64_t revoke_limit = 0;  // max cache ways while revoked
};

struct VcpuState {
  util::Time consumed;            // occupancy in the current server period
  bool seen_release = false;      // budget check starts at the first one
  bool overrun = false;           // declared overrun; cleared at next release
};

struct JobState {
  util::Time release;
  bool completed = false;
  bool missed = false;
  bool killed = false;            // enforcement killed it; terminal state
};

class Checker {
 public:
  Checker(const TraceCheckConfig& cfg) : cfg_(cfg) {}

  TraceCheckResult run(std::span<const sim::TraceEvent> events) {
    for (const auto& ev : events) {
      ++res_.events;
      switch (ev.kind) {
        case sim::TraceKind::kVcpuSchedule: handle_schedule(ev); break;
        case sim::TraceKind::kVcpuDeschedule: handle_deschedule(ev); break;
        case sim::TraceKind::kCoreThrottle: handle_throttle(ev); break;
        case sim::TraceKind::kCoreUnthrottle: handle_unthrottle(ev); break;
        case sim::TraceKind::kVcpuRelease: handle_vcpu_release(ev); break;
        case sim::TraceKind::kTaskDispatch: handle_dispatch(ev); break;
        case sim::TraceKind::kJobRelease: handle_job_release(ev); break;
        case sim::TraceKind::kJobComplete: handle_job_complete(ev); break;
        case sim::TraceKind::kDeadlineMiss: handle_miss(ev); break;
        case sim::TraceKind::kJobKilled: handle_job_kill(ev); break;
        case sim::TraceKind::kTaskSuspend: handle_suspend(ev); break;
        case sim::TraceKind::kTaskResume: handle_resume(ev); break;
        case sim::TraceKind::kPartitionRevoke: handle_revoke(ev); break;
        case sim::TraceKind::kPartitionRestore: handle_restore(ev); break;
        case sim::TraceKind::kCosProgram: handle_cos_program(ev); break;
        case sim::TraceKind::kVcpuBudgetOverrun:
          vcpu(ev.vcpu).overrun = true;
          break;
        case sim::TraceKind::kVcpuBudgetExhausted:
        case sim::TraceKind::kBwRefill:
        case sim::TraceKind::kHypercall:
        case sim::TraceKind::kFaultWcetOverrun:
        case sim::TraceKind::kFaultReleaseJitter:
        case sim::TraceKind::kFaultRefillDelay:
        case sim::TraceKind::kJobDeferred:
        case sim::TraceKind::kCount_:
          break;
      }
    }
    finish();
    return std::move(res_);
  }

 private:
  CoreState& core(std::int32_t c) {
    if (static_cast<std::size_t>(c) >= cores_.size())
      cores_.resize(static_cast<std::size_t>(c) + 1);
    return cores_[static_cast<std::size_t>(c)];
  }
  VcpuState& vcpu(std::int32_t v) {
    if (static_cast<std::size_t>(v) >= vcpus_.size())
      vcpus_.resize(static_cast<std::size_t>(v) + 1);
    return vcpus_[static_cast<std::size_t>(v)];
  }

  template <typename... Parts>
  void violation(util::Time when, Parts&&... parts) {
    ++res_.total_violations;
    if (res_.violations.size() >= cfg_.max_violations) return;
    std::ostringstream os;
    (os << ... << parts);
    res_.violations.push_back({when, os.str()});
  }

  /// Close the running VCPU's occupancy segment at `now` and charge it
  /// against the budget (config-gated).
  void charge(CoreState& c, util::Time now) {
    if (c.running < 0) return;
    VcpuState& v = vcpu(c.running);
    v.consumed += now - c.run_start;
    c.run_start = now;
    // A declared budget overrun (enforced, non-strict run) licenses the
    // overdraw for the rest of this server period.
    const auto vi = static_cast<std::size_t>(c.running);
    if (v.seen_release && !v.overrun && vi < cfg_.vcpu_budgets.size() &&
        v.consumed > cfg_.vcpu_budgets[vi])
      violation(now, "vcpu ", c.running, " overdrew its budget: consumed ",
                v.consumed.raw_ns(), " ns of ",
                cfg_.vcpu_budgets[vi].raw_ns(), " ns");
  }

  void handle_schedule(const sim::TraceEvent& ev) {
    CoreState& c = core(ev.core);
    if (c.running >= 0)
      violation(ev.when, "vcpu ", ev.vcpu, " scheduled on core ", ev.core,
                " while vcpu ", c.running, " still occupies it");
    if (c.throttled)
      violation(ev.when, "vcpu ", ev.vcpu, " scheduled on core ", ev.core,
                " while it is throttled");
    const auto vi = static_cast<std::size_t>(ev.vcpu);
    if (vi < cfg_.vcpu_cores.size() && cfg_.vcpu_cores[vi] != ev.core)
      violation(ev.when, "vcpu ", ev.vcpu, " scheduled on core ", ev.core,
                " but is partitioned to core ", cfg_.vcpu_cores[vi]);
    c.running = ev.vcpu;
    c.run_start = ev.when;
  }

  void handle_deschedule(const sim::TraceEvent& ev) {
    CoreState& c = core(ev.core);
    if (c.running != ev.vcpu) {
      violation(ev.when, "deschedule of vcpu ", ev.vcpu, " on core ",
                ev.core, " but ",
                (c.running < 0 ? std::string("the core is idle")
                               : "vcpu " + std::to_string(c.running) +
                                     " is running"));
      return;
    }
    const util::Time run_start = c.run_start;  // charge() advances it
    charge(c, ev.when);
    // Invariant 2: any overlap of this run segment with an open throttle
    // window means the VCPU executed on a throttled core. The legal
    // same-instant throttle→deschedule sequence yields zero overlap.
    if (c.throttled && ev.when > util::max(run_start, c.throttle_start))
      violation(ev.when, "vcpu ", ev.vcpu, " ran on core ", ev.core,
                " during a throttle window");
    c.running = -1;
  }

  void handle_throttle(const sim::TraceEvent& ev) {
    CoreState& c = core(ev.core);
    if (c.throttled)
      violation(ev.when, "core ", ev.core, " throttled twice");
    c.throttled = true;
    c.throttle_start = ev.when;
  }

  void handle_unthrottle(const sim::TraceEvent& ev) {
    CoreState& c = core(ev.core);
    if (!c.throttled) {
      violation(ev.when, "core ", ev.core, " unthrottled but not throttled");
      return;
    }
    if (c.running >= 0 && ev.when > util::max(c.run_start, c.throttle_start))
      violation(ev.when, "vcpu ", c.running, " ran on core ", ev.core,
                " during a throttle window");
    c.throttled = false;
  }

  void handle_vcpu_release(const sim::TraceEvent& ev) {
    // Server period boundary: occupancy since the previous release must fit
    // the old budget (charge checks), then the meter resets.
    if (ev.core >= 0) {
      CoreState& c = core(ev.core);
      if (c.running == ev.vcpu) charge(c, ev.when);
    }
    VcpuState& v = vcpu(ev.vcpu);
    v.consumed = util::Time::zero();
    v.seen_release = true;
    v.overrun = false;
  }

  void handle_dispatch(const sim::TraceEvent& ev) {
    CoreState& c = core(ev.core);
    if (c.throttled)
      violation(ev.when, "task ", ev.task, " dispatched on core ", ev.core,
                " while it is throttled");
    if (c.running != ev.vcpu)
      violation(ev.when, "task ", ev.task, " dispatched on vcpu ", ev.vcpu,
                " which is not running on core ", ev.core);
    if (suspended_.count(ev.task))
      violation(ev.when, "task ", ev.task,
                " dispatched while suspended by degradation");
  }

  void handle_job_release(const sim::TraceEvent& ev) {
    ++res_.releases;
    const auto key = std::make_pair(ev.task, ev.job);
    if (!jobs_.emplace(key, JobState{ev.when}).second)
      violation(ev.when, "task ", ev.task, " job ", ev.job,
                " released twice");
  }

  void handle_job_complete(const sim::TraceEvent& ev) {
    ++res_.completions;
    const auto it = jobs_.find({ev.task, ev.job});
    if (it == jobs_.end()) {
      violation(ev.when, "task ", ev.task, " job ", ev.job,
                " completed but was never released");
      return;
    }
    if (it->second.completed)
      violation(ev.when, "task ", ev.task, " job ", ev.job,
                " completed twice");
    // Invariant 6: a killed job must never execute (and thus complete)
    // afterwards — the kill removed it from its task's pending queue.
    if (it->second.killed)
      violation(ev.when, "task ", ev.task, " job ", ev.job,
                " completed after being killed");
    it->second.completed = true;
  }

  void handle_miss(const sim::TraceEvent& ev) {
    ++res_.misses;
    const auto it = jobs_.find({ev.task, ev.job});
    if (it == jobs_.end()) {
      violation(ev.when, "task ", ev.task, " job ", ev.job,
                " missed its deadline but was never released");
      return;
    }
    if (it->second.completed)
      violation(ev.when, "task ", ev.task, " job ", ev.job,
                " missed its deadline after completing");
    if (it->second.killed)
      violation(ev.when, "task ", ev.task, " job ", ev.job,
                " missed its deadline after being killed");
    it->second.missed = true;
  }

  void handle_job_kill(const sim::TraceEvent& ev) {
    const auto it = jobs_.find({ev.task, ev.job});
    if (it == jobs_.end()) {
      violation(ev.when, "task ", ev.task, " job ", ev.job,
                " killed but was never released");
      return;
    }
    if (it->second.completed)
      violation(ev.when, "task ", ev.task, " job ", ev.job,
                " killed after completing");
    if (it->second.killed)
      violation(ev.when, "task ", ev.task, " job ", ev.job, " killed twice");
    it->second.killed = true;
  }

  void handle_suspend(const sim::TraceEvent& ev) {
    if (!suspended_.insert(ev.task).second)
      violation(ev.when, "task ", ev.task, " suspended twice");
  }

  void handle_resume(const sim::TraceEvent& ev) {
    if (suspended_.erase(ev.task) == 0)
      violation(ev.when, "task ", ev.task, " resumed but not suspended");
  }

  void handle_revoke(const sim::TraceEvent& ev) {
    CoreState& c = core(ev.core);
    if (c.revoked)
      violation(ev.when, "core ", ev.core,
                " partition revoked while a revocation is already open");
    c.revoked = true;
    c.revoke_limit = ev.job;  // job field carries the shrunken way count
  }

  void handle_restore(const sim::TraceEvent& ev) {
    CoreState& c = core(ev.core);
    if (!c.revoked) {
      violation(ev.when, "core ", ev.core,
                " partition restored but not revoked");
      return;
    }
    c.revoked = false;
  }

  void handle_cos_program(const sim::TraceEvent& ev) {
    // Invariant 7: while a core's partition is revoked to W ways, no COS
    // binding may hand the core more than W ways.
    CoreState& c = core(ev.core);
    if (c.revoked && ev.job > c.revoke_limit)
      violation(ev.when, "core ", ev.core, " bound to ", ev.job,
                " cache ways while its partition is revoked to ",
                c.revoke_limit);
  }

  void finish() {
    if (cfg_.task_periods.empty() || cfg_.horizon.is_zero()) return;
    // Invariant 5: a release whose implicit deadline lies inside the
    // horizon must have been completed or declared missed.
    for (const auto& [key, job] : jobs_) {
      if (job.completed || job.missed || job.killed) continue;
      const auto task = static_cast<std::size_t>(key.first);
      if (task >= cfg_.task_periods.size()) continue;
      if (job.release + cfg_.task_periods[task] <= cfg_.horizon)
        violation(job.release, "task ", key.first, " job ", key.second,
                  " released but neither completed nor missed by the "
                  "horizon");
    }
  }

  const TraceCheckConfig& cfg_;
  TraceCheckResult res_;
  std::vector<CoreState> cores_;
  std::vector<VcpuState> vcpus_;
  std::map<std::pair<std::int32_t, std::int64_t>, JobState> jobs_;
  std::set<std::int32_t> suspended_;
};

}  // namespace

TraceCheckConfig TraceCheckConfig::from_sim(const sim::SimConfig& cfg,
                                            util::Time horizon) {
  TraceCheckConfig out;
  out.horizon = horizon;
  out.vcpu_budgets.reserve(cfg.vcpus.size());
  out.vcpu_cores.reserve(cfg.vcpus.size());
  for (const auto& v : cfg.vcpus) {
    out.vcpu_budgets.push_back(v.budget);
    out.vcpu_cores.push_back(static_cast<int>(v.core));
  }
  out.task_periods.reserve(cfg.tasks.size());
  for (const auto& t : cfg.tasks) out.task_periods.push_back(t.period);
  return out;
}

TraceCheckResult check_trace(std::span<const sim::TraceEvent> events,
                             const TraceCheckConfig& cfg) {
  return Checker(cfg).run(events);
}

std::string TraceCheckResult::summary() const {
  std::ostringstream os;
  os << (ok() ? "OK" : "FAIL") << ": " << events << " events, " << releases
     << " releases, " << completions << " completions, " << misses
     << " misses, " << total_violations << " violation"
     << (total_violations == 1 ? "" : "s");
  return os.str();
}

}  // namespace vc2m::obs
