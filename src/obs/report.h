// Human-readable metrics report for `vc2m simulate --report`.
//
// Renders the end-of-run picture as aligned tables (util::Table): per-core
// utilization / throttle / idle fractions, per-task response-time ratios
// (max and registry-histogram quantiles), per-VCPU server behaviour, and —
// when an allocator produced the deployment — the allocator effort
// counters. write_metrics_dump() is the raw alternative: every metric in
// the registry, name-sorted, one per line.
#pragma once

#include <iosfwd>

#include "obs/metrics.h"
#include "sim/simulation.h"
#include "util/instrument.h"

namespace vc2m::obs {

/// The full report. `registry` may carry the MetricsRecorder's histograms
/// (used for response-ratio quantiles); pass an empty registry to skip the
/// quantile columns. `alloc` is optional.
void write_report(std::ostream& os, const sim::SimConfig& cfg,
                  const sim::SimStats& stats, const MetricsRegistry& registry,
                  util::Time duration,
                  const util::AllocCounters* alloc = nullptr);

/// Raw dump: one `name value` line per metric, deterministic order.
void write_metrics_dump(std::ostream& os, const MetricsRegistry& registry);

}  // namespace vc2m::obs
