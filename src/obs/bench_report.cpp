#include "obs/bench_report.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/json.h"
#include "util/error.h"
#include "util/file.h"

namespace vc2m::obs {

namespace {

// The JSON primitives live in obs/json.{h,cpp}, shared with the explain
// report; these aliases keep the writer below readable.
std::string json_escape(const std::string& s) { return json::escape(s); }
std::string num(double v) { return json::number(v); }

void write_phase(std::ostream& os, const PhaseStats& p, int indent) {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  os << pad << "{\"name\": \"" << json_escape(p.name)
     << "\", \"count\": " << p.count << ", \"total_sec\": " << num(p.total_sec)
     << ", \"self_sec\": " << num(p.self_sec) << ", \"children\": [";
  for (std::size_t i = 0; i < p.children.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_phase(os, p.children[i], indent + 2);
  }
  if (!p.children.empty()) os << "\n" << pad;
  os << "]}";
}

void write_histogram(std::ostream& os, const HistogramSummary& h) {
  os << "{\"count\": " << h.count << ", \"mean\": " << num(h.mean)
     << ", \"min\": " << num(h.min) << ", \"max\": " << num(h.max)
     << ", \"p50\": " << num(h.p50) << ", \"p90\": " << num(h.p90)
     << ", \"p95\": " << num(h.p95) << ", \"p99\": " << num(h.p99) << "}";
}

// The reader parses through obs::json (strict: duplicate keys and
// non-finite numbers are rejected with byte offsets).
using JsonValue = json::Value;

double get_number(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == JsonValue::Kind::kNumber,
                 "bench report JSON: missing number field '" << key << "'");
  return v->number;
}

std::string get_string(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  VC2M_CHECK_MSG(v && v->kind == JsonValue::Kind::kString,
                 "bench report JSON: missing string field '" << key << "'");
  return v->str;
}

PhaseStats parse_phase(const JsonValue& v) {
  VC2M_CHECK_MSG(v.kind == JsonValue::Kind::kObject,
                 "bench report JSON: phase entries must be objects");
  PhaseStats p;
  p.name = get_string(v, "name");
  p.count = static_cast<std::uint64_t>(get_number(v, "count"));
  p.total_sec = get_number(v, "total_sec");
  p.self_sec = get_number(v, "self_sec");
  if (const JsonValue* kids = v.find("children")) {
    VC2M_CHECK_MSG(kids->kind == JsonValue::Kind::kArray,
                   "bench report JSON: 'children' must be an array");
    for (const auto& c : kids->array) p.children.push_back(parse_phase(c));
  }
  return p;
}

HistogramSummary parse_histogram(const JsonValue& v) {
  VC2M_CHECK_MSG(v.kind == JsonValue::Kind::kObject,
                 "bench report JSON: histogram entries must be objects");
  HistogramSummary h;
  h.count = static_cast<std::uint64_t>(get_number(v, "count"));
  h.mean = get_number(v, "mean");
  h.min = get_number(v, "min");
  h.max = get_number(v, "max");
  h.p50 = get_number(v, "p50");
  h.p90 = get_number(v, "p90");
  h.p95 = get_number(v, "p95");
  h.p99 = get_number(v, "p99");
  return h;
}

/// Counters where growth means the run did *better* (more reuse, more
/// admissions) or that measure solution quality rather than effort — the
/// diff gate must not flag them as regressions.
bool counter_exempt(const std::string& name) {
  const auto ends_with = [&](const char* suffix) {
    const std::string suf(suffix);
    return name.size() >= suf.size() &&
           name.compare(name.size() - suf.size(), suf.size(), suf) == 0;
  };
  // arena_bytes tracks scratch reuse (higher = more work routed through the
  // arena, not more effort); inner_tasks counts batched queries, which the
  // legacy kernels report as zero.
  return ends_with("cache_hits") || ends_with("passed") ||
         ends_with("final_shift") || ends_with("arena_bytes") ||
         ends_with("inner_tasks");
}

}  // namespace

HistogramSummary HistogramSummary::of(const util::LogHistogram& h) {
  HistogramSummary out;
  out.count = h.count();
  if (h.empty()) return out;
  out.mean = h.mean();
  out.min = h.min();
  out.max = h.max();
  out.p50 = h.quantile(0.50);
  out.p90 = h.quantile(0.90);
  out.p95 = h.quantile(0.95);
  out.p99 = h.quantile(0.99);
  return out;
}

HistogramSummary HistogramSummary::of(const util::SampleStats& s) {
  HistogramSummary out;
  out.count = s.count();
  if (s.empty()) return out;
  out.mean = s.mean();
  out.min = s.min();
  out.max = s.max();
  out.p50 = s.p(0.50);
  out.p90 = s.p(0.90);
  out.p95 = s.p(0.95);
  out.p99 = s.p(0.99);
  return out;
}

PoolSummary PoolSummary::of(const util::PoolTelemetry& t) {
  PoolSummary out;
  out.workers.reserve(t.workers.size());
  for (const auto& w : t.workers)
    out.workers.push_back({w.executed, w.steals,
                           static_cast<double>(w.idle_ns) * 1e-9,
                           static_cast<std::uint64_t>(w.max_queue)});
  return out;
}

std::string build_git_rev() {
#ifdef VC2M_GIT_REV
  return VC2M_GIT_REV;
#else
  return "unknown";
#endif
}

void set_counters(BenchReport& r, const util::AllocCounters& c) {
  r.counters["kmeans_runs"] = static_cast<double>(c.kmeans_runs);
  r.counters["kmeans_iterations"] = static_cast<double>(c.kmeans_iterations);
  r.counters["kmeans_final_shift"] = c.kmeans_final_shift;
  r.counters["admission_tests"] = static_cast<double>(c.admission_tests);
  r.counters["admission_passed"] = static_cast<double>(c.admission_passed);
  r.counters["dbf_evaluations"] = static_cast<double>(c.dbf_evaluations);
  r.counters["budget_evaluations"] =
      static_cast<double>(c.budget_evaluations);
  r.counters["budget_cache_hits"] = static_cast<double>(c.budget_cache_hits);
  r.counters["load_cache_hits"] = static_cast<double>(c.load_cache_hits);
  r.counters["arena_bytes"] = static_cast<double>(c.arena_bytes);
  r.counters["soa_rebuilds"] = static_cast<double>(c.soa_rebuilds);
  r.counters["inner_tasks"] = static_cast<double>(c.inner_tasks);
  r.counters["candidate_packings"] =
      static_cast<double>(c.candidate_packings);
  r.counters["partition_grants"] = static_cast<double>(c.partition_grants);
  r.counters["vcpu_migrations"] = static_cast<double>(c.vcpu_migrations);
  r.counters["vm_alloc_seconds"] = c.vm_alloc_seconds;
  r.counters["hv_alloc_seconds"] = c.hv_alloc_seconds;
}

void write_bench_report(std::ostream& os, const BenchReport& r) {
  os << "{\n";
  os << "\"schema\": \"" << json_escape(r.schema) << "\",\n";
  os << "\"name\": \"" << json_escape(r.name) << "\",\n";
  os << "\"git_rev\": \"" << json_escape(r.git_rev) << "\",\n";

  os << "\"config\": {";
  bool first = true;
  for (const auto& [k, v] : r.config) {
    os << (first ? "\n" : ",\n") << "  \"" << json_escape(k) << "\": \""
       << json_escape(v) << "\"";
    first = false;
  }
  os << (first ? "" : "\n") << "},\n";

  os << "\"counters\": {";
  first = true;
  for (const auto& [k, v] : r.counters) {
    os << (first ? "\n" : ",\n") << "  \"" << json_escape(k)
       << "\": " << num(v);
    first = false;
  }
  os << (first ? "" : "\n") << "},\n";

  os << "\"phases\": [";
  for (std::size_t i = 0; i < r.phases.children.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_phase(os, r.phases.children[i], 2);
  }
  os << (r.phases.children.empty() ? "" : "\n") << "],\n";

  os << "\"histograms\": {";
  first = true;
  for (const auto& [k, h] : r.histograms) {
    os << (first ? "\n" : ",\n") << "  \"" << json_escape(k) << "\": ";
    write_histogram(os, h);
    first = false;
  }
  os << (first ? "" : "\n") << "},\n";

  os << "\"pool\": {\"workers\": [";
  for (std::size_t i = 0; i < r.pool.workers.size(); ++i) {
    const auto& w = r.pool.workers[i];
    os << (i == 0 ? "\n" : ",\n") << "  {\"executed\": " << w.executed
       << ", \"steals\": " << w.steals << ", \"idle_sec\": " << num(w.idle_sec)
       << ", \"max_queue\": " << w.max_queue << "}";
  }
  os << (r.pool.workers.empty() ? "" : "\n") << "]}\n";
  os << "}\n";
}

void write_bench_report_file(const std::string& path, const BenchReport& r) {
  auto f = util::open_output_file(path, "bench report");
  write_bench_report(f, r);
  util::close_output_file(f, path, "bench report");
}

BenchReport read_bench_report(std::istream& is) {
  std::ostringstream buf;
  buf << is.rdbuf();
  const std::string text = buf.str();
  JsonValue root = json::parse(text, "bench report");
  VC2M_CHECK_MSG(root.kind == JsonValue::Kind::kObject,
                 "bench report JSON: top level must be an object");

  BenchReport r;
  r.schema = get_string(root, "schema");
  VC2M_CHECK_MSG(r.schema.rfind("vc2m-bench-report/", 0) == 0,
                 "not a vc2m bench report (schema '" << r.schema << "')");
  r.name = get_string(root, "name");
  r.git_rev = get_string(root, "git_rev");

  if (const JsonValue* cfg = root.find("config")) {
    VC2M_CHECK_MSG(cfg->kind == JsonValue::Kind::kObject,
                   "bench report JSON: 'config' must be an object");
    for (const auto& [k, v] : cfg->object) {
      VC2M_CHECK_MSG(v.kind == JsonValue::Kind::kString,
                     "bench report JSON: config values must be strings");
      r.config[k] = v.str;
    }
  }
  if (const JsonValue* ctr = root.find("counters")) {
    VC2M_CHECK_MSG(ctr->kind == JsonValue::Kind::kObject,
                   "bench report JSON: 'counters' must be an object");
    for (const auto& [k, v] : ctr->object) {
      VC2M_CHECK_MSG(v.kind == JsonValue::Kind::kNumber,
                     "bench report JSON: counter values must be numbers");
      r.counters[k] = v.number;
    }
  }
  if (const JsonValue* ph = root.find("phases")) {
    VC2M_CHECK_MSG(ph->kind == JsonValue::Kind::kArray,
                   "bench report JSON: 'phases' must be an array");
    for (const auto& p : ph->array)
      r.phases.children.push_back(parse_phase(p));
  }
  if (const JsonValue* hs = root.find("histograms")) {
    VC2M_CHECK_MSG(hs->kind == JsonValue::Kind::kObject,
                   "bench report JSON: 'histograms' must be an object");
    for (const auto& [k, v] : hs->object) r.histograms[k] = parse_histogram(v);
  }
  if (const JsonValue* pool = root.find("pool")) {
    VC2M_CHECK_MSG(pool->kind == JsonValue::Kind::kObject,
                   "bench report JSON: 'pool' must be an object");
    if (const JsonValue* ws = pool->find("workers")) {
      VC2M_CHECK_MSG(ws->kind == JsonValue::Kind::kArray,
                     "bench report JSON: 'pool.workers' must be an array");
      for (const auto& w : ws->array) {
        VC2M_CHECK_MSG(w.kind == JsonValue::Kind::kObject,
                       "bench report JSON: pool workers must be objects");
        PoolSummary::Worker out;
        out.executed = static_cast<std::uint64_t>(get_number(w, "executed"));
        out.steals = static_cast<std::uint64_t>(get_number(w, "steals"));
        out.idle_sec = get_number(w, "idle_sec");
        out.max_queue = static_cast<std::uint64_t>(get_number(w, "max_queue"));
        r.pool.workers.push_back(out);
      }
    }
  }
  return r;
}

BenchReport read_bench_report_file(const std::string& path) {
  std::ifstream f(path);
  VC2M_CHECK_MSG(f.good(), "cannot open " << path);
  return read_bench_report(f);
}

PerfDiffResult diff_reports(const BenchReport& base, const BenchReport& current,
                            const PerfDiffOptions& opt) {
  PerfDiffResult d;
  const auto regressed = [&](double b, double c, double floor) {
    return c > b * (1.0 + opt.max_regress) && c - b > floor;
  };

  // Phases: compare total wall seconds per path.
  std::map<std::string, FlatPhase> base_phases, cur_phases;
  for (const auto& p : flatten_profile(base.phases)) base_phases[p.path] = p;
  for (const auto& p : flatten_profile(current.phases)) cur_phases[p.path] = p;
  for (const auto& [path, bp] : base_phases) {
    const auto it = cur_phases.find(path);
    if (it == cur_phases.end()) {
      d.notes.push_back("phase '" + path + "' only in base report");
      continue;
    }
    PerfDiffEntry e;
    e.kind = "phase";
    e.key = path;
    e.base = bp.total_sec;
    e.current = it->second.total_sec;
    e.regression = regressed(e.base, e.current, opt.min_abs_sec);
    d.entries.push_back(e);
  }
  for (const auto& [path, cp] : cur_phases)
    if (!base_phases.count(path))
      d.notes.push_back("phase '" + path + "' only in current report");

  // Counters: effort must not grow; more-is-better counters are exempt.
  for (const auto& [name, b] : base.counters) {
    const auto it = current.counters.find(name);
    if (it == current.counters.end()) {
      d.notes.push_back("counter '" + name + "' only in base report");
      continue;
    }
    if (counter_exempt(name)) continue;
    PerfDiffEntry e;
    e.kind = "counter";
    e.key = name;
    e.base = b;
    e.current = it->second;
    const bool is_time = name.size() >= 8 &&
                         name.compare(name.size() - 8, 8, "_seconds") == 0;
    e.regression = regressed(e.base, e.current,
                             is_time ? opt.min_abs_sec : opt.min_abs_count);
    d.entries.push_back(e);
  }
  for (const auto& [name, c] : current.counters)
    if (!base.counters.count(name))
      d.notes.push_back("counter '" + name + "' only in current report");

  // Histograms: gate the p95 (tail latency), report mean informationally.
  for (const auto& [name, b] : base.histograms) {
    const auto it = current.histograms.find(name);
    if (it == current.histograms.end()) {
      d.notes.push_back("histogram '" + name + "' only in base report");
      continue;
    }
    PerfDiffEntry p95;
    p95.kind = "histogram";
    p95.key = name + ".p95";
    p95.base = b.p95;
    p95.current = it->second.p95;
    p95.regression = regressed(p95.base, p95.current, opt.min_abs_sec);
    d.entries.push_back(p95);
    PerfDiffEntry mean;
    mean.kind = "histogram";
    mean.key = name + ".mean";
    mean.base = b.mean;
    mean.current = it->second.mean;
    mean.regression = false;  // informational; the p95 is the gate
    d.entries.push_back(mean);
  }
  for (const auto& [name, c] : current.histograms)
    if (!base.histograms.count(name))
      d.notes.push_back("histogram '" + name + "' only in current report");

  // Pool telemetry: informational only — steals and idle time depend on OS
  // scheduling, so they never gate.
  if (!base.pool.empty() && !current.pool.empty()) {
    std::uint64_t be = 0, bs = 0, ce = 0, cs = 0;
    for (const auto& w : base.pool.workers) {
      be += w.executed;
      bs += w.steals;
    }
    for (const auto& w : current.pool.workers) {
      ce += w.executed;
      cs += w.steals;
    }
    PerfDiffEntry exec{"pool", "total_executed", static_cast<double>(be),
                       static_cast<double>(ce), false};
    PerfDiffEntry steals{"pool", "total_steals", static_cast<double>(bs),
                         static_cast<double>(cs), false};
    d.entries.push_back(exec);
    d.entries.push_back(steals);
  }

  return d;
}

void write_perfdiff(std::ostream& os, const PerfDiffResult& d) {
  const auto saved_flags = os.flags();
  const auto saved_precision = os.precision();
  std::size_t key_width = 8;
  for (const auto& e : d.entries)
    key_width = std::max(key_width, e.kind.size() + 1 + e.key.size());
  key_width += 2;
  os << "quantity" << std::string(key_width - 8, ' ') << std::setw(14)
     << "base" << std::setw(14) << "current" << std::setw(10) << "delta"
     << "\n";
  for (const auto& e : d.entries) {
    const std::string label = e.kind + ":" + e.key;
    double pct = 0;
    if (e.base != 0)
      pct = (e.current - e.base) / e.base * 100.0;
    else if (e.current != 0)
      pct = 100.0;
    char delta[24];
    std::snprintf(delta, sizeof delta, "%+.1f%%", pct);
    os << label << std::string(key_width - label.size(), ' ') << std::setw(14)
       << std::fixed << std::setprecision(4) << e.base << std::setw(14)
       << e.current << std::setw(10) << delta
       << (e.regression ? "  REGRESS" : "") << "\n";
  }
  for (const auto& n : d.notes) os << "note: " << n << "\n";
  os.flags(saved_flags);
  os.precision(saved_precision);
}

}  // namespace vc2m::obs
